// Command quickstart demonstrates the EasyDRAM public API: assemble the
// time-scaled system, run a small custom workload, and inspect the results.
package main

import (
	"fmt"
	"log"

	"easydram"
)

func main() {
	// The default system is the paper's headline configuration: a
	// Cortex-A57-class core emulated at 1.43 GHz via time scaling, with a
	// 512 KiB L2 over DDR4-1333.
	sys, err := easydram.NewSystem(easydram.TimeScaled())
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	// A workload is a generator of processor operations: loads, stores,
	// compute, cache flushes, and technique invocations.
	kernel := easydram.NewKernel("stream-sum", func(g *easydram.Gen) {
		const elems = 1 << 16
		for i := 0; i < elems; i++ {
			g.Load(uint64(i) * 8) // a[i]
			g.Compute(1)          // sum += a[i]
		}
	})

	res, err := sys.Run(kernel)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Printf("executed %d instructions in %d emulated processor cycles (%v)\n",
		res.CPU.Instructions, res.ProcCycles, res.EmulatedTime)
	fmt.Printf("cache: %d L1 hits, %d L2 hits, %d main-memory reads (MPKI %.2f)\n",
		res.CPU.L1Hits, res.CPU.L2Hits, res.CPU.MemReads, res.MPKI())
	fmt.Printf("FPGA wall time: %v (simulation speed %.1f MHz)\n",
		res.WallTime, res.SimSpeedMHz)
	fmt.Printf("DRAM commands: %d ACT, %d RD, %d REF\n",
		res.Chip.ACTs, res.Chip.RDs, res.Chip.REFs)
}
