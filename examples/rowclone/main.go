// Command rowclone reproduces the heart of the paper's first case study
// (§7): bulk data copy with in-DRAM RowClone operations versus CPU
// loads/stores, evaluated end to end on the time-scaled system.
package main

import (
	"flag"
	"fmt"
	"log"

	"easydram"
	"easydram/internal/workload"
)

func main() {
	size := flag.Int("size", 1<<20, "bytes to copy")
	flush := flag.Bool("clflush", false, "model cached (dirty) source data that must be flushed")
	flag.Parse()

	// Plan on a scratch system: the allocator searches each source row's
	// subarray for a destination row that clones reliably, testing real
	// (modelled) DRAM behaviour.
	planSys, err := easydram.NewSystem(easydram.TimeScaled())
	if err != nil {
		log.Fatalf("rowclone: %v", err)
	}
	planner, err := easydram.NewPlanner(planSys, 3)
	if err != nil {
		log.Fatalf("rowclone: %v", err)
	}
	src, err := planner.AllocArray(*size)
	if err != nil {
		log.Fatalf("rowclone: %v", err)
	}
	plan, err := planner.PlanCopy(src, *size, *flush)
	if err != nil {
		log.Fatalf("rowclone: %v", err)
	}
	dst, err := planner.AllocArray(*size)
	if err != nil {
		log.Fatalf("rowclone: %v", err)
	}

	baseSys, err := easydram.NewSystem(easydram.TimeScaled())
	if err != nil {
		log.Fatalf("rowclone: %v", err)
	}
	base, err := baseSys.Run(workload.CopyBench(src, dst, *size, *flush))
	if err != nil {
		log.Fatalf("rowclone: %v", err)
	}

	rcSys, err := easydram.NewSystem(easydram.TimeScaled())
	if err != nil {
		log.Fatalf("rowclone: %v", err)
	}
	rc, err := rcSys.Run(plan.Kernel())
	if err != nil {
		log.Fatalf("rowclone: %v", err)
	}

	clones, fallbacks := 0, 0
	for _, a := range plan.Actions {
		if a.Clone {
			clones++
		} else {
			fallbacks++
		}
	}
	fmt.Printf("copy %d bytes (%d rows): %d RowClone, %d CPU fallback\n",
		*size, len(plan.Actions), clones, fallbacks)
	fmt.Printf("CPU baseline: %d cycles\n", base.Window())
	fmt.Printf("RowClone:     %d cycles\n", rc.Window())
	fmt.Printf("speedup:      %.1fx\n", float64(base.Window())/float64(rc.Window()))
}
