// Command lowlatency reproduces the paper's second case study (§8): reduce
// DRAM access latency by profiling which rows operate reliably at an
// aggressive tRCD, tracking weak rows in a Bloom filter, and activating
// strong rows faster.
package main

import (
	"flag"
	"fmt"
	"log"

	"easydram"
	"easydram/internal/workload"
)

func main() {
	n := flag.Int("n", 360, "gemver problem size")
	flag.Parse()
	kernel := workload.PBGemver(*n)
	extent := workload.Extent(kernel)

	// Step 1: characterize the rows the workload touches with profiling
	// requests served by the software memory controller (§8.1).
	profSys, err := easydram.NewSystem(easydram.TimeScaled(), easydram.WithDataTracking())
	if err != nil {
		log.Fatalf("lowlatency: %v", err)
	}
	provider, weakFrac, err := profSys.ProfileWeakRows(0, extent, easydram.ReducedTRCD, 0.001)
	if err != nil {
		log.Fatalf("lowlatency: %v", err)
	}
	fmt.Printf("profiled %d MiB: %.1f%% weak rows (reduced tRCD %v, nominal 13.5ns)\n",
		extent>>20, 100*weakFrac, easydram.ReducedTRCD)

	// Step 2: run the workload with nominal timing and with the
	// profiling-backed reduced tRCD.
	baseSys, err := easydram.NewSystem(easydram.TimeScaled())
	if err != nil {
		log.Fatalf("lowlatency: %v", err)
	}
	base, err := baseSys.Run(kernel)
	if err != nil {
		log.Fatalf("lowlatency: %v", err)
	}

	fastSys, err := easydram.NewSystem(easydram.TimeScaled(), easydram.WithReducedTRCD(provider))
	if err != nil {
		log.Fatalf("lowlatency: %v", err)
	}
	fast, err := fastSys.Run(kernel)
	if err != nil {
		log.Fatalf("lowlatency: %v", err)
	}

	fmt.Printf("nominal tRCD: %d cycles\n", base.ProcCycles)
	fmt.Printf("reduced tRCD: %d cycles\n", fast.ProcCycles)
	fmt.Printf("speedup: %.2f%% (corrupted reads: %d — the Bloom filter keeps weak rows safe)\n",
		(float64(base.ProcCycles)/float64(fast.ProcCycles)-1)*100, fast.Chip.CorruptedReads)
}
