// Command customscheduler shows why a software-defined memory controller
// matters: a new scheduling policy is a few dozen lines of Go against the
// easydram.Scheduler interface, swapped in with one option. It defines
// WritesDrain — a policy that drains the writeback backlog before serving
// reads once the backlog crosses a threshold (a simplified write-drain
// mode, the opposite bet to FR-FCFS's read priority) — and compares it
// against the built-in FR-FCFS and FCFS policies on a workload with heavy
// row-buffer locality.
//
// WritesDrain also implements easydram.BurstScheduler (PickBurst), so with
// a burst cap set (easydram.WithBurstCap) the controller serves its
// same-row runs through one DRAM Bender program per run — same emulated
// cycles, fewer host-side programs.
package main

import (
	"fmt"
	"log"

	"easydram"
)

// WritesDrain serves reads first (oldest row hit, then oldest) until the
// buffered write backlog reaches Threshold; then it drains writes the same
// way until none remain. Real controllers batch writes like this to
// amortise bus turnarounds.
type WritesDrain struct {
	// Threshold is the write backlog that triggers drain mode.
	Threshold int
	draining  bool
}

// Name implements easydram.Scheduler.
func (s *WritesDrain) Name() string { return "writes-drain" }

// pickClass returns the oldest entry of the wanted class (reads or
// writes/writebacks), preferring row hits; -1 if the class is empty.
func pickClass(table []easydram.SchedEntry, openRows []int, writes bool) int {
	hit, oldest := -1, -1
	for i := range table {
		e := &table[i]
		if !e.IsAccess() || (e.Kind != easydram.ReqRead) != writes {
			continue
		}
		if oldest < 0 || e.Seq < table[oldest].Seq {
			oldest = i
		}
		if openRows[e.Addr.Bank] == e.Addr.Row && (hit < 0 || e.Seq < table[hit].Seq) {
			hit = i
		}
	}
	if hit >= 0 {
		return hit
	}
	return oldest
}

// Pick implements easydram.Scheduler.
func (s *WritesDrain) Pick(table []easydram.SchedEntry, openRows []int) int {
	writes := 0
	for i := range table {
		if table[i].IsAccess() && table[i].Kind != easydram.ReqRead {
			writes++
		}
	}
	if writes >= s.Threshold {
		s.draining = true
	}
	if writes == 0 {
		s.draining = false
	}
	if s.draining {
		if w := pickClass(table, openRows, true); w >= 0 {
			return w
		}
	}
	if r := pickClass(table, openRows, false); r >= 0 {
		return r
	}
	if w := pickClass(table, openRows, true); w >= 0 {
		return w
	}
	// Only technique requests remain: oldest first.
	oldest := 0
	for i := range table {
		if table[i].Seq < table[oldest].Seq {
			oldest = i
		}
	}
	return oldest
}

// PickBurst implements easydram.BurstScheduler: the winner plus the
// same-class, same-(bank, row) entries WritesDrain would provably serve
// next, oldest first. It stops as soon as an older same-class row hit
// exists on another bank (that hit would win the next serial pick), so the
// controller's burst service stays bit-identical to serial picks.
func (s *WritesDrain) PickBurst(table []easydram.SchedEntry, openRows []int, cap int, buf []int) []int {
	w := s.Pick(table, openRows)
	buf = append(buf, w)
	winner := &table[w]
	if cap <= 1 || !winner.IsAccess() {
		return buf
	}
	winnerWrite := winner.Kind != easydram.ReqRead
	// Oldest same-class row hit elsewhere bounds the run.
	minOtherHit := ^uint64(0)
	for i := range table {
		e := &table[i]
		if i == w || !e.IsAccess() || (e.Kind != easydram.ReqRead) != winnerWrite {
			continue
		}
		if e.Addr.Bank == winner.Addr.Bank && e.Addr.Row == winner.Addr.Row {
			continue
		}
		if openRows[e.Addr.Bank] == e.Addr.Row && e.Seq < minOtherHit {
			minOtherHit = e.Seq
		}
	}
	lastSeq := winner.Seq
	for len(buf) < cap {
		next := -1
		for i := range table {
			e := &table[i]
			if !e.IsAccess() || (e.Kind != easydram.ReqRead) != winnerWrite || e.Seq <= lastSeq {
				continue
			}
			if e.Addr.Bank != winner.Addr.Bank || e.Addr.Row != winner.Addr.Row {
				continue
			}
			if next < 0 || e.Seq < table[next].Seq {
				next = i
			}
		}
		if next < 0 || table[next].Seq > minOtherHit {
			break
		}
		buf = append(buf, next)
		lastSeq = table[next].Seq
	}
	return buf
}

// readsVsWrites mixes a latency-critical dependent-load chain with store
// bursts whose evictions flood the controller with writebacks — the traffic
// where read-priority and write-drain policies pull apart.
func readsVsWrites() easydram.Kernel {
	return easydram.NewKernel("reads-vs-writes", func(g *easydram.Gen) {
		const iters = 2048
		loadBase := uint64(0)
		storeBase := uint64(256 << 20)
		for i := 0; i < iters; i++ {
			// A store burst that thrashes the caches and generates dirty
			// evictions (posted writebacks).
			for j := 0; j < 8; j++ {
				g.Store(storeBase + uint64(i*8+j)*4096)
			}
			// The latency-critical pointer chase.
			g.LoadDep(loadBase + uint64(i)*8192)
		}
	})
}

func main() {
	schedulers := []struct {
		name string
		opt  easydram.Option
	}{
		{"fr-fcfs", easydram.WithScheduler("fr-fcfs")},
		{"fcfs", easydram.WithScheduler("fcfs")},
		{"writes-drain", easydram.WithCustomScheduler(&WritesDrain{Threshold: 12})},
	}
	for _, s := range schedulers {
		sys, err := easydram.NewSystem(easydram.TimeScaled(), s.opt)
		if err != nil {
			log.Fatalf("customscheduler: %v", err)
		}
		res, err := sys.Run(readsVsWrites())
		if err != nil {
			log.Fatalf("customscheduler: %v", err)
		}
		fmt.Printf("%-12s %8d cycles  row hits %5d  row misses %5d\n",
			s.name, res.ProcCycles, res.Ctrl.RowHits, res.Ctrl.RowMisses)
	}
	fmt.Println("FR-FCFS reorders requests to exploit open rows; FCFS serves them in arrival order;")
	fmt.Println("WritesDrain batches the writeback backlog — a custom policy in ~70 lines.")

	// The same custom policy with row-hit burst service: identical emulated
	// cycles, fewer host-side Bender programs (WritesDrain implements
	// BurstScheduler). Refresh is off because burst service engages only in
	// refresh-free configurations.
	for _, cap := range []int{0, 8} {
		sys, err := easydram.NewSystem(easydram.TimeScaled(),
			easydram.WithCustomScheduler(&WritesDrain{Threshold: 12}),
			easydram.WithRefresh(false), easydram.WithBurstCap(cap))
		if err != nil {
			log.Fatalf("customscheduler: %v", err)
		}
		res, err := sys.Run(readsVsWrites())
		if err != nil {
			log.Fatalf("customscheduler: %v", err)
		}
		fmt.Printf("writes-drain burst-cap=%d: %8d cycles, %d bursts (avg len %.1f), %d Bender programs\n",
			cap, res.ProcCycles, res.Ctrl.BurstsServed, res.Ctrl.AvgBurstLen(), res.Tile.ProgramsRun)
	}
}
