// Command customscheduler shows why a software-defined memory controller
// matters: swapping the scheduling policy is a one-line change. It compares
// FR-FCFS against FCFS on a workload with heavy row-buffer locality.
package main

import (
	"fmt"
	"log"

	"easydram"
)

// readsVsWrites mixes a latency-critical dependent-load chain with store
// bursts whose evictions flood the controller with writebacks. FR-FCFS
// prioritises the reads the processor is waiting on; FCFS makes them queue
// behind the writeback backlog.
func readsVsWrites() easydram.Kernel {
	return easydram.NewKernel("reads-vs-writes", func(g *easydram.Gen) {
		const iters = 2048
		loadBase := uint64(0)
		storeBase := uint64(256 << 20)
		for i := 0; i < iters; i++ {
			// A store burst that thrashes the caches and generates dirty
			// evictions (posted writebacks).
			for j := 0; j < 8; j++ {
				g.Store(storeBase + uint64(i*8+j)*4096)
			}
			// The latency-critical pointer chase.
			g.LoadDep(loadBase + uint64(i)*8192)
		}
	})
}

func main() {
	for _, sched := range []string{"fr-fcfs", "fcfs"} {
		sys, err := easydram.NewSystem(easydram.TimeScaled(), easydram.WithScheduler(sched))
		if err != nil {
			log.Fatalf("customscheduler: %v", err)
		}
		res, err := sys.Run(readsVsWrites())
		if err != nil {
			log.Fatalf("customscheduler: %v", err)
		}
		fmt.Printf("%-8s %8d cycles  row hits %5d  row misses %5d\n",
			sched, res.ProcCycles, res.Ctrl.RowHits, res.Ctrl.RowMisses)
	}
	fmt.Println("FR-FCFS reorders requests to exploit open rows; FCFS serves them in arrival order.")
}
