// Command bitwise demonstrates the in-DRAM bulk bitwise extension
// (ComputeDRAM/Ambit class): a many-row activation computes the majority of
// three rows, which — with a preset control row — is a bulk AND or OR of
// two 8 KiB operands, executed entirely inside the DRAM array.
package main

import (
	"fmt"
	"log"

	"easydram/internal/alloc"
	"easydram/internal/core"
	"easydram/internal/techniques"
)

func main() {
	cfg := core.TimeScalingA57()
	cfg.DRAM = core.TechniqueDRAM()
	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatalf("bitwise: %v", err)
	}
	a, err := alloc.New(sys.Mapper(), cfg.DRAM.SubarrayRows, cfg.DRAM.RowsPerBank)
	if err != nil {
		log.Fatalf("bitwise: %v", err)
	}

	ops := 0
	committed := 0
	for i := 0; i < 16; i++ {
		tr, err := techniques.FindBitwiseTriple(a)
		if err != nil {
			break
		}
		if err := techniques.InitRowPattern(sys, tr.A, 0b1111_0000); err != nil {
			log.Fatalf("bitwise: %v", err)
		}
		if err := techniques.InitRowPattern(sys, tr.B, 0b1010_1010); err != nil {
			log.Fatalf("bitwise: %v", err)
		}
		if err := techniques.InitRowPattern(sys, tr.Ctl, 0x00); err != nil {
			log.Fatalf("bitwise: %v", err)
		}
		ok, err := techniques.BulkAND(sys, tr)
		if err != nil {
			log.Fatalf("bitwise: %v", err)
		}
		ops++
		if !ok {
			continue // this triple's rows do not share charge cleanly
		}
		committed++
		if committed == 1 {
			got, err := techniques.ReadRowByte(sys, tr.Ctl)
			if err != nil {
				log.Fatalf("bitwise: %v", err)
			}
			fmt.Printf("first committed op: 0b11110000 AND 0b10101010 = 0b%08b (8 KiB in one DRAM op)\n", got)
		}
	}
	fmt.Printf("%d/%d row triples committed in-DRAM AND operations\n", committed, ops)
	fmt.Printf("(like RowClone, success is a per-triple property of the chip;\n the allocator profiles and avoids unreliable triples)\n")
}
