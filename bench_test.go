package easydram

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run with `go test -bench . -benchtime 1x`). Each benchmark
// prints the regenerated table via b.Log and reports the headline numbers
// as benchmark metrics, so `go test -bench` output alone records the
// paper-vs-measured comparison. Ablation benchmarks beyond the paper's
// evaluation sit at the bottom.

import (
	"testing"
	"time"

	"easydram/internal/core"
	"easydram/internal/experiments"
	"easydram/internal/smc"
	"easydram/internal/stats"
	"easydram/internal/techniques"
	"easydram/internal/workload"
)

// benchOptions is the scale used by the benchmark harness: full sweep
// points, evaluation-class kernel sizes.
func benchOptions() experiments.Options {
	opt := experiments.Default()
	return opt
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		b.ReportMetric(res.MeasuredCyclesPerSec/1e6, "Mcycles/s")
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Table())
		// Paper: the software MC inflates request time by an order of
		// magnitude; time scaling restores the real system's behaviour.
		b.ReportMetric(res.LatencyRatio(experiments.PlatformSMC, experiments.PlatformReal), "smc/real-latency-ratio")
	}
}

// BenchmarkValidation regenerates the §6 time-scaling validation.
// Paper: <0.1% average, <1% maximum execution-time error over 29 workloads.
func BenchmarkValidation(b *testing.B) {
	opt := benchOptions()
	opt.KernelSize = workload.Small // two full system runs per kernel
	for i := 0; i < b.N; i++ {
		res, err := experiments.Validation(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Table())
		b.ReportMetric(res.AvgPct, "avg-err-%")
		b.ReportMetric(res.MaxPct, "max-err-%")
	}
}

// BenchmarkFigure8 regenerates the lmbench latency profile.
// Paper: EasyDRAM-TS tracks the Cortex-A57 curve; EasyDRAM-NoTS reports a
// far lower main-memory plateau.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Table())
		b.ReportMetric(res.PlateauCycles(experiments.NameTS), "ts-mem-cycles")
		b.ReportMetric(res.PlateauCycles(experiments.NameNoTS), "nots-mem-cycles")
		b.ReportMetric(res.PlateauCycles(experiments.NameCortex), "a57-mem-cycles")
	}
}

// BenchmarkFigure10 regenerates RowClone - No Flush.
// Paper averages: Copy 306.7x (NoTS) / 15.0x (TS) / 27.2x (Ramulator);
// Init 36.7x / 1.8x / 17.3x.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RowClone(benchOptions(), false)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Table())
		b.ReportMetric(stats.Mean(res.Copy[experiments.NameNoTS]), "copy-nots-x")
		b.ReportMetric(stats.Mean(res.Copy[experiments.NameTS]), "copy-ts-x")
		b.ReportMetric(stats.Mean(res.Copy[experiments.NameRamulator]), "copy-ram-x")
		b.ReportMetric(stats.Mean(res.Init[experiments.NameNoTS]), "init-nots-x")
		b.ReportMetric(stats.Mean(res.Init[experiments.NameTS]), "init-ts-x")
		b.ReportMetric(stats.Mean(res.Init[experiments.NameRamulator]), "init-ram-x")
	}
}

// BenchmarkFigure11 regenerates RowClone - CLFLUSH.
// Paper: Copy 3.1x (NoTS) / 4.04x (TS) average; Init degrades at small
// sizes.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RowClone(benchOptions(), true)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Table())
		b.ReportMetric(stats.Mean(res.Copy[experiments.NameTS]), "copy-ts-x")
		b.ReportMetric(stats.Mean(res.Copy[experiments.NameNoTS]), "copy-nots-x")
		b.ReportMetric(res.Init[experiments.NameTS][0], "init-ts-smallest-x")
	}
}

// BenchmarkFigure12 regenerates the tRCD characterization heatmap.
// Paper: 84.5% of rows reliable at <=9.0 ns, weak rows spatially clustered.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Heatmap())
		b.ReportMetric(100*res.StrongFraction, "strong-%")
	}
}

// BenchmarkFigure13 regenerates the tRCD-reduction speedups.
// Paper: +2.75% average / +9.76% max (EasyDRAM), +2.58% / +7.04%
// (Ramulator 2.0).
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure13(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Table())
		b.ReportMetric(res.AvgSpeedupPct(experiments.NameTS), "easydram-avg-%")
		b.ReportMetric(res.MaxSpeedupPct(experiments.NameTS), "easydram-max-%")
		b.ReportMetric(res.AvgSpeedupPct(experiments.NameRamulator), "ramulator-avg-%")
	}
}

// BenchmarkFigure14 regenerates the simulation-speed comparison.
// Paper: EasyDRAM 5.9x (avg) / 20.3x (max) faster than Ramulator 2.0.
func BenchmarkFigure14(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure13(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.SpeedTable())
		e := stats.Geomean(res.SimSpeedMHz[experiments.NameTS])
		m := stats.Geomean(res.SimSpeedMHz[experiments.NameRamulator])
		b.ReportMetric(e, "easydram-MHz")
		b.ReportMetric(m, "ramulator-MHz")
		if m > 0 {
			b.ReportMetric(e/m, "speed-ratio")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations beyond the paper's evaluation (DESIGN.md §4.5).

// BenchmarkAblationScheduler compares FR-FCFS against FCFS on a
// memory-intensive kernel under time scaling.
func BenchmarkAblationScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var cycles [2]float64
		for j, sched := range []string{"fr-fcfs", "fcfs"} {
			sys, err := NewSystem(TimeScaled(), WithScheduler(sched))
			if err != nil {
				b.Fatal(err)
			}
			res, err := sys.Run(workload.PBGemver(360))
			if err != nil {
				b.Fatal(err)
			}
			cycles[j] = float64(res.ProcCycles)
		}
		b.ReportMetric(cycles[1]/cycles[0], "fcfs/frfcfs-time")
	}
}

// BenchmarkAblationMLP sweeps the out-of-order core's memory-level
// parallelism, showing why streaming baselines accelerate with MLP (the
// mechanism behind the Init workload's modest RowClone gains).
func BenchmarkAblationMLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := 0.0
		for _, mlp := range []int{1, 2, 4, 8} {
			cfg := core.TimeScalingA57()
			cfg.CPU.MLP = mlp
			sys, err := core.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sys.Run(workload.CPUInit(0, 1<<20).Stream())
			if err != nil {
				b.Fatal(err)
			}
			if mlp == 1 {
				base = float64(res.ProcCycles)
			} else if mlp == 8 {
				b.ReportMetric(base/float64(res.ProcCycles), "mlp8/mlp1-speedup")
			}
		}
	}
}

// BenchmarkAblationCtrlLatency sweeps the modeled hardware-controller
// latency, quantifying how sensitive time-scaled results are to this
// calibration constant.
func BenchmarkAblationCtrlLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var first, last float64
		for _, ns := range []int64{20, 40, 80} {
			cfg := core.TimeScalingA57()
			cfg.ModeledCtrlLatency = clockPS(ns * 1000)
			sys, err := core.NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sys.Run(workload.LatMemRd(8<<20, 4000).Stream())
			if err != nil {
				b.Fatal(err)
			}
			perMiss := float64(res.Window()) / 4000
			if ns == 20 {
				first = perMiss
			}
			last = perMiss
		}
		b.ReportMetric(last-first, "miss-cycles-per-60ns-ctrl")
	}
}

// BenchmarkAblationBloomFP sweeps the weak-row Bloom filter's target
// false-positive rate: a sloppier filter costs strong rows their reduced
// tRCD but never corrupts data.
func BenchmarkAblationBloomFP(b *testing.B) {
	k := workload.PBGemver(260)
	extent := workload.Extent(k)
	for i := 0; i < b.N; i++ {
		for _, fp := range []float64{0.001, 0.05, 0.3} {
			prof, err := NewSystem(TimeScaled(), WithDataTracking())
			if err != nil {
				b.Fatal(err)
			}
			provider, _, err := prof.ProfileWeakRows(0, extent, ReducedTRCD, fp)
			if err != nil {
				b.Fatal(err)
			}
			sys, err := NewSystem(TimeScaled(), WithReducedTRCD(provider))
			if err != nil {
				b.Fatal(err)
			}
			res, err := sys.Run(k)
			if err != nil {
				b.Fatal(err)
			}
			if res.Chip.CorruptedReads != 0 {
				b.Fatalf("fp=%v corrupted %d reads", fp, res.Chip.CorruptedReads)
			}
			if fp == 0.3 {
				b.ReportMetric(float64(res.ProcCycles), "cycles-at-fp0.3")
			}
		}
	}
}

// clockPS converts raw picoseconds (avoids importing clock in this file's
// public-facing API surface).
func clockPS(v int64) PS { return PS(v) }

// BenchmarkWeakRowCharacterization measures the §8.1 weak-row profiling
// pass both ways: the whole-row fast path (one host round-trip and one
// Bender program per row) against the legacy per-line path (one round-trip
// per cache line). It reports the host round-trip reduction — the dominant
// cost of Figure 13's characterization stage — plus the fast path's row
// throughput, and fails if the weak-row sets ever diverge.
func BenchmarkWeakRowCharacterization(b *testing.B) {
	cfg := core.TimeScalingA57()
	cfg.DRAM = core.TechniqueDRAM()
	const rows = 512
	var span uint64
	for i := 0; i < b.N; i++ {
		rowSys, err := core.NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		span = uint64(rows) * uint64(rowSys.Mapper().RowBytes())
		t0 := time.Now()
		weakRow, _, err := techniques.ProfileWeakRows(rowSys, 0, span, techniques.ReducedTRCD)
		if err != nil {
			b.Fatal(err)
		}
		rowSecs := time.Since(t0).Seconds()

		lineSys, err := core.NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		weakLine, _, err := techniques.ProfileWeakRowsPerLine(lineSys, 0, span, techniques.ReducedTRCD)
		if err != nil {
			b.Fatal(err)
		}
		if len(weakRow) != len(weakLine) {
			b.Fatalf("paths diverge: %d vs %d weak rows", len(weakRow), len(weakLine))
		}
		for j := range weakRow {
			if weakRow[j] != weakLine[j] {
				b.Fatalf("weak sets diverge at %d", j)
			}
		}
		b.ReportMetric(float64(lineSys.HostRequests())/float64(rowSys.HostRequests()), "roundtrip-reduction-x")
		b.ReportMetric(float64(rows)/rowSecs, "rows/s")
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the simulator substrate itself.

func BenchmarkSubstrateCacheAccess(b *testing.B) {
	sys, err := NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	// One long streaming kernel; report simulated ops per host second via
	// the standard ns/op metric. The kernel is shared with cmd/benchall's
	// snapshot metrics (workload.SubstrateStream) so the CI bench-trend
	// gate measures exactly this code.
	if _, err := sys.Run(workload.SubstrateStream(b.N)); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSubstrateMissPath(b *testing.B) {
	sys, err := NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Run(workload.SubstrateMisses(b.N)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSubstrateRowHitBurst measures row-hit burst service through the
// SMC hot path itself: groups of RowBurstDepth same-row requests pending
// together, served either serially (one scheduler pick, one Bender program,
// one execution, one timing-check pass per request) or as a burst (one of
// each per GROUP, with per-request modeled costs charged exactly as serial
// service charges them — emulated timing is bit-identical, pinned by
// core.TestBurstServiceBitIdentical). The timed region is the burst path;
// an untimed serial run of the same request count yields the vs-serial-x
// speedup. End-to-end workload effect is bounded by the SMC's share of the
// full engine loop; this benchmark isolates the service path the burst
// optimization targets.
func BenchmarkSubstrateRowHitBurst(b *testing.B) {
	const depth = workload.RowBurstDepth
	mk := func() *smc.BenchHarness {
		h, err := smc.NewBenchHarness()
		if err != nil {
			b.Fatal(err)
		}
		return h
	}
	run := func(h *smc.BenchHarness, n, budget int) {
		if err := h.ServeRowBursts(n, depth, budget); err != nil {
			b.Fatal(err)
		}
	}
	burst, serial := mk(), mk()
	run(burst, 50000, depth) // warm buffers outside the timer
	run(serial, 50000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	run(burst, b.N, depth)
	b.StopTimer()
	burstNs := b.Elapsed()
	t0 := time.Now()
	run(serial, b.N, 1)
	serialNs := time.Since(t0)
	if burstNs > 0 {
		b.ReportMetric(float64(serialNs)/float64(burstNs), "vs-serial-x")
	}
	b.ReportMetric(burst.Ctl.Stats().AvgBurstLen(), "avg-burst-len")
}

// BenchmarkSubstrateFaultFree measures what fault tolerance charges the SMC
// service path when nothing goes wrong: every fault seam armed (chip
// disturb counting with an unreachable threshold, the verify-and-retry
// read path) and no fault ever firing. Shared with cmd/benchall's
// substrate/fault_free_* snapshot metrics; its ns/op is benchtrend-gated
// against regression and its allocs/op must stay exactly zero — recovery
// must not put allocations on the fault-free hot path.
func BenchmarkSubstrateFaultFree(b *testing.B) {
	h, err := smc.NewFaultFreeBenchHarness()
	if err != nil {
		b.Fatal(err)
	}
	// Warm buffers outside the timer (slab, FIFO, and chip table growth).
	if err := h.ServeRowBursts(50000, workload.RowBurstDepth, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := h.ServeRowBursts(b.N, workload.RowBurstDepth, 1); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSubstrateMultiChannel measures the per-channel service fan-out
// through the SMC layer itself: consecutive cache lines spread round-robin
// over a 4-channel line-interleaved topology, each channel served by its
// own controller instance. The ns/op is the host cost of the fan-out
// (gated by benchtrend alongside the other substrate loops, 0 allocs/op);
// the chan-overlap-x metric is the modeled-time service overlap — the sum
// of per-channel busy time over its maximum, ~4 for balanced traffic on 4
// channels, and a pure property of the service model (machine-independent,
// gated by benchtrend: a drop means channels stopped overlapping).
func BenchmarkSubstrateMultiChannel(b *testing.B) {
	const channels = 4
	h, err := smc.NewMultiBenchHarness(channels)
	if err != nil {
		b.Fatal(err)
	}
	// Warm buffers outside the timer (slab, FIFO, and chip table growth).
	if err := h.ServeInterleaved(50000, 2*channels); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := h.ServeInterleaved(b.N, 2*channels); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(h.Overlap(), "chan-overlap-x")
}

// BenchmarkEnergyExtension measures RowClone's DRAM-energy advantage for
// bulk copy (the RowClone paper's second headline; extension experiment).
func BenchmarkEnergyExtension(b *testing.B) {
	opt := benchOptions()
	opt.Sizes = []int{1 << 20, 16 << 20}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Energy(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Table())
		b.ReportMetric(res.Ratio[len(res.Ratio)-1], "energy-advantage-x")
	}
}

// BenchmarkAblationPagePolicy sweeps open-page vs closed-page management.
func BenchmarkAblationPagePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPagePolicy(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + r.Table())
		b.ReportMetric(r.Relative[1], "closed/open-time")
	}
}

// BenchmarkAblationPrefetcher measures the next-line prefetcher on
// streaming traffic.
func BenchmarkAblationPrefetcher(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPrefetcher(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + r.Table())
		b.ReportMetric(r.Relative[1], "prefetch/base-time")
	}
}

// BenchmarkAblationDDR5 swaps DRAM generations.
func BenchmarkAblationDDR5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationDDR5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + r.Table())
		b.ReportMetric(r.Relative[len(r.Relative)-1], "ddr5/ddr4-time")
	}
}
