package easydram

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"easydram/internal/snapshot"
)

// profilingSystem builds a fresh data-tracking system for characterization
// with the given seed; warm-start correctness depends on every build with
// the same seed deriving the same compatibility key.
func profilingSystem(t *testing.T, seed uint64) *System {
	t.Helper()
	sys, err := NewSystem(TimeScaled(), WithDataTracking(), WithSeed(seed))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestWarmStartFacade(t *testing.T) {
	const extent = 64 * 8192
	path := filepath.Join(t.TempDir(), "p.ezdrprof")

	// Cold start: the store is absent, so this characterizes fresh, saves,
	// and must NOT count a fallback (missing ≠ degraded).
	before := SnapshotFallbacks()
	cold, warm, err := profilingSystem(t, 3).ProfileWeakRowsWarm(path, 0, extent, ReducedTRCD, 0.01)
	if err != nil {
		t.Fatalf("cold warm-start: %v", err)
	}
	if warm {
		t.Error("first run reported warm with no store on disk")
	}
	if d := SnapshotFallbacks() - before; d != 0 {
		t.Errorf("cold start from an absent store counted %d fallbacks", d)
	}

	// Warm start: a fresh system with the same seed loads the stored
	// profile, and the loaded artifact is bit-identical to the computed one.
	hot, warm, err := profilingSystem(t, 3).ProfileWeakRowsWarm(path, 0, extent, ReducedTRCD, 0.01)
	if err != nil {
		t.Fatalf("warm start: %v", err)
	}
	if !warm {
		t.Error("second run did not use the stored profile")
	}
	if !reflect.DeepEqual(hot.p, cold.p) {
		t.Error("loaded profile differs from the characterized one")
	}

	// The warm profile drives a run through the channel-aware provider.
	provider := hot.Provider(profilingSystem(t, 3), ReducedTRCD)
	fast, err := NewSystem(TimeScaled(), WithSeed(3), WithChannelReducedTRCD(provider))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fast.Run(NewKernel("touch", func(g *Gen) {
		for i := 0; i < 512; i++ {
			g.Load(uint64(i) * 512)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Chip.CorruptedReads != 0 {
		t.Fatalf("profile-driven reduced-tRCD run corrupted %d reads", res.Chip.CorruptedReads)
	}

	// A stale store (different silicon seed) must degrade: fallback counted,
	// fresh characterization, no error.
	before = SnapshotFallbacks()
	_, warm, err = profilingSystem(t, 4).ProfileWeakRowsWarm(path, 0, extent, ReducedTRCD, 0.01)
	if err != nil {
		t.Fatalf("stale-store warm-start: %v", err)
	}
	if warm {
		t.Error("profile keyed to other silicon was accepted")
	}
	if d := SnapshotFallbacks() - before; d != 1 {
		t.Errorf("stale store counted %d fallbacks, want 1", d)
	}

	// A corrupt store likewise degrades gracefully.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	before = SnapshotFallbacks()
	_, warm, err = profilingSystem(t, 4).ProfileWeakRowsWarm(path, 0, extent, ReducedTRCD, 0.01)
	if err != nil {
		t.Fatalf("corrupt-store warm-start: %v", err)
	}
	if warm {
		t.Error("corrupt profile was accepted")
	}
	if d := SnapshotFallbacks() - before; d != 1 {
		t.Errorf("corrupt store counted %d fallbacks, want 1", d)
	}
}

// TestMultiChannelCharacterize pins the lifted single-channel restriction:
// a 2-channel, 2-rank module characterizes end to end, covers both
// channels, and its provider reduces tRCD somewhere while never corrupting
// a read.
func TestMultiChannelCharacterize(t *testing.T) {
	sys, err := NewSystem(TimeScaled(), WithDataTracking(), WithSeed(5), WithTopology(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	const extent = 64 * 8192
	p, err := sys.Characterize(0, extent, ReducedTRCD, 0.01)
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	if p.Channels() != 2 {
		t.Fatalf("2-channel module characterized %d channels", p.Channels())
	}
	if p.Rows() == 0 {
		t.Fatal("no rows profiled")
	}

	provider := p.Provider(sys, ReducedTRCD)
	fast, err := NewSystem(TimeScaled(), WithSeed(5), WithTopology(2, 2), WithChannelReducedTRCD(provider))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fast.Run(NewKernel("touch", func(g *Gen) {
		for i := 0; i < 2048; i++ {
			g.Load(uint64(i) * 512)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Chip.CorruptedReads != 0 {
		t.Fatalf("multi-channel reduced-tRCD run corrupted %d reads", res.Chip.CorruptedReads)
	}
}

func checkpointKernel() Kernel {
	return NewKernel("ckpt", func(g *Gen) {
		for i := 0; i < 4096; i++ {
			g.Load(uint64(i) * 64)
			g.Compute(4)
		}
	})
}

func TestCheckpointRestoreFacade(t *testing.T) {
	newSys := func() *System {
		sys, err := NewSystem(TimeScaled(), WithSeed(2))
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		return sys
	}
	k := checkpointKernel()

	base, err := newSys().Run(k)
	if err != nil {
		t.Fatalf("base run: %v", err)
	}

	ckRes, blob, err := newSys().Checkpoint(k, base.ProcCycles/2)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if !reflect.DeepEqual(ckRes, base) {
		t.Error("requesting a checkpoint changed the run result")
	}
	if blob == nil {
		t.Fatal("no quiescent point found mid-run (kernel should quiesce between loads)")
	}

	// Round-trip the blob through the durable store.
	path := filepath.Join(t.TempDir(), "run.ezdrckpt")
	if err := SaveSnapshot(path, blob); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	loaded, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}

	restored, err := newSys().Restore(k, loaded)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !reflect.DeepEqual(restored, base) {
		t.Error("restored run is not bit-identical to the uninterrupted run")
	}

	// Degradation: corrupt blobs and mismatched configurations are named
	// errors, never panics.
	bad := append([]byte(nil), loaded...)
	bad[len(bad)/2] ^= 0x01
	if _, err := newSys().Restore(k, bad); err == nil {
		t.Error("corrupt blob restored silently")
	}
	other, err := NewSystem(TimeScaled(), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Restore(k, loaded); err == nil {
		t.Error("blob restored into a differently-configured system")
	} else if !errors.Is(err, snapshot.ErrKeyMismatch) {
		t.Errorf("mismatched config: %v, want ErrKeyMismatch", err)
	}
}
