package easydram

import (
	"testing"
)

func TestNewSystemDefault(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	res, err := sys.Run(NewKernel("tiny", func(g *Gen) {
		for i := 0; i < 256; i++ {
			g.Load(uint64(i) * 64)
			g.Compute(2)
		}
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ProcCycles == 0 || res.CPU.Loads != 256 {
		t.Fatalf("result = %+v", res)
	}
}

func TestOptionsCompose(t *testing.T) {
	sys, err := NewSystem(TimeScaled(), WithSeed(7), WithScheduler("fcfs"), WithRefresh(false), WithMaxCycles(1<<30))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	cfg := sys.Config()
	if cfg.DRAM.Seed != 7 || cfg.RefreshEnabled || cfg.Scheduler.Name() != "fcfs" {
		t.Fatalf("options not applied: %+v", cfg)
	}
}

func TestWithTopologyOption(t *testing.T) {
	sys, err := NewSystem(TimeScaled(), WithTopology(2, 2), WithInterleave("row"))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	cfg := sys.Config()
	if cfg.Topology.Channels != 2 || cfg.Topology.Ranks != 2 {
		t.Fatalf("topology not applied: %+v", cfg.Topology)
	}
	res, err := sys.Run(NewKernel("spread", func(g *Gen) {
		for i := 0; i < 1024; i++ {
			g.Load(uint64(i) * 64)
		}
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.CPU.Loads != 1024 || res.Ctrl.Served == 0 {
		t.Fatalf("result = %+v", res)
	}
	if _, err := NewSystem(WithTopology(3, 1)); err == nil {
		t.Fatalf("non-power-of-two channel count must fail")
	}
	if _, err := NewSystem(WithTopology(2, 1), WithInterleave("diagonal")); err == nil {
		t.Fatalf("unknown interleave name must fail")
	}
}

func TestNoTimeScalingOption(t *testing.T) {
	sys, err := NewSystem(NoTimeScaling())
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if sys.Config().Scaling {
		t.Fatalf("NoTimeScaling must disable scaling")
	}
}

func TestValidationPairAgrees(t *testing.T) {
	scaled, ref := ValidationPair()
	k := NewKernel("v", func(g *Gen) {
		for i := 0; i < 500; i++ {
			g.Load(uint64(i) * 4096)
			g.Compute(20)
		}
	})
	s1, err := NewSystem(scaled)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSystem(ref)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	diff := float64(r1.ProcCycles-r2.ProcCycles) / float64(r2.ProcCycles)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.01 {
		t.Fatalf("validation pair differs by %.3f%%", 100*diff)
	}
}

func TestMapAddrAndRowBytes(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.RowBytes() != 8192 {
		t.Fatalf("RowBytes = %d", sys.RowBytes())
	}
	bank, row, col := sys.MapAddr(8192)
	if bank != 1 || row != 0 || col != 0 {
		t.Fatalf("MapAddr(8192) = (%d,%d,%d)", bank, row, col)
	}
}

func TestProfileLineFacade(t *testing.T) {
	sys, err := NewSystem(TimeScaled(), WithDataTracking())
	if err != nil {
		t.Fatal(err)
	}
	ok, err := sys.ProfileLine(0, 13500)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("nominal profiling must pass")
	}
}

func TestPlannerCopyPlan(t *testing.T) {
	sys, err := NewSystem(TimeScaled())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlanner(sys, 2)
	if err != nil {
		t.Fatalf("NewPlanner: %v", err)
	}
	src, err := p.AllocArray(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.PlanCopy(src, 64<<10, false)
	if err != nil {
		t.Fatalf("PlanCopy: %v", err)
	}
	if len(plan.Actions) != 8 {
		t.Fatalf("64 KiB should need 8 row actions, got %d", len(plan.Actions))
	}
	// The plan is runnable end to end.
	runner, err := NewSystem(TimeScaled())
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(plan.Kernel())
	if err != nil {
		t.Fatalf("running plan: %v", err)
	}
	if res.CPU.RowClones == 0 {
		t.Fatalf("plan performed no RowClones")
	}
}

func TestProfileWeakRowsFacade(t *testing.T) {
	sys, err := NewSystem(TimeScaled(), WithDataTracking())
	if err != nil {
		t.Fatal(err)
	}
	provider, weakFrac, err := sys.ProfileWeakRows(0, 64*8192, ReducedTRCD, 0.01)
	if err != nil {
		t.Fatalf("ProfileWeakRows: %v", err)
	}
	if weakFrac < 0 || weakFrac > 1 {
		t.Fatalf("weak fraction %v", weakFrac)
	}
	// The provider must be usable as a system option.
	fast, err := NewSystem(TimeScaled(), WithReducedTRCD(provider))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fast.Run(NewKernel("touch", func(g *Gen) {
		for i := 0; i < 512; i++ {
			g.Load(uint64(i) * 512)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Chip.CorruptedReads != 0 {
		t.Fatalf("reduced-tRCD run corrupted %d reads", res.Chip.CorruptedReads)
	}
}

func TestRamulatorBaselineOption(t *testing.T) {
	sys, err := NewSystem(RamulatorBaseline())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Config().DRAM.Ideal {
		t.Fatalf("baseline must be ideal")
	}
}

func TestWithFaultsOption(t *testing.T) {
	fc := DefaultFaults()
	sys, err := NewSystem(TimeScaled(), WithFaults(fc), WithMitigation("trr"))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	cfg := sys.Config()
	if !cfg.Faults.Enabled() || !cfg.Faults.Recovery.Enabled || cfg.Mitigation.Policy != "trr" {
		t.Fatalf("fault options not applied: %+v", cfg.Faults)
	}
	res, err := sys.Run(NewKernel("tiny", func(g *Gen) {
		for i := 0; i < 512; i++ {
			g.Load(uint64(i) * 64)
		}
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ProcCycles == 0 {
		t.Fatalf("result = %+v", res)
	}
	if _, err := NewSystem(WithMitigation("bogus")); err == nil {
		t.Fatal("unknown mitigation policy accepted")
	}
	if _, err := NewSystem(WithFaults(FaultConfig{Chip: fc.Chip, Link: fc.Link})); err == nil {
		t.Fatal("link faults without recovery accepted")
	}
}

func TestWithCoresFacade(t *testing.T) {
	sys, err := NewSystem(NoTimeScaling(), WithCores(2))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if sys.Config().Cores != 2 {
		t.Fatalf("WithCores not applied: %+v", sys.Config().Cores)
	}
	hog := NewKernel("hog", func(g *Gen) {
		for i := 0; i < 2048; i++ {
			g.Load(uint64(i) * 64)
		}
	})
	chase := NewKernel("chase", func(g *Gen) {
		for i := 0; i < 256; i++ {
			g.Load(uint64(i%64) * 8192)
		}
	})
	res, err := sys.RunKernels([]Kernel{hog, chase})
	if err != nil {
		t.Fatalf("RunKernels: %v", err)
	}
	if len(res.PerCore) != 2 || res.PerCore[0].ProcCycles == 0 || res.PerCore[1].ProcCycles == 0 {
		t.Fatalf("per-core results missing: %+v", res.PerCore)
	}
	if res.ProcCycles < res.PerCore[0].ProcCycles || res.ProcCycles < res.PerCore[1].ProcCycles {
		t.Fatalf("makespan %d below a core's completion", res.ProcCycles)
	}

	mix, err := MixByName("mixed")
	if err != nil {
		t.Fatalf("MixByName: %v", err)
	}
	mixSys, err := NewSystem(NoTimeScaling(), WithCores(2))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	mres, err := mixSys.RunMix(mix)
	if err != nil {
		t.Fatalf("RunMix: %v", err)
	}
	if len(mres.PerCore) != 2 {
		t.Fatalf("RunMix per-core results: %+v", mres.PerCore)
	}
	if len(Mixes()) != 3 {
		t.Fatalf("want 3 mixes, got %d", len(Mixes()))
	}

	// Kernel-count mismatch and single-kernel Run on a multi-core system
	// must both be rejected.
	if _, err := mixSys.RunKernels([]Kernel{hog}); err == nil {
		t.Fatal("kernel-count mismatch accepted")
	}
	two, err := NewSystem(NoTimeScaling(), WithCores(2))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if _, err := two.Run(hog); err == nil {
		t.Fatal("Run on a multi-core system accepted")
	}
}
