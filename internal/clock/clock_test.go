package clock

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPSUnits(t *testing.T) {
	if Nanosecond != 1000 || Microsecond != 1_000_000 || Second != 1e12 {
		t.Fatalf("unit constants wrong: ns=%d us=%d s=%d", Nanosecond, Microsecond, Second)
	}
	if got := (1500 * Nanosecond).Microseconds(); got != 1.5 {
		t.Fatalf("Microseconds = %v, want 1.5", got)
	}
	if got := PS(2500).Nanoseconds(); got != 2.5 {
		t.Fatalf("Nanoseconds = %v, want 2.5", got)
	}
}

func TestPSString(t *testing.T) {
	cases := map[PS]string{
		500:               "500ps",
		1500:              "1.500ns",
		2 * Microsecond:   "2.000us",
		3 * Millisecond:   "3.000ms",
		1250 * Nanosecond: "1.250us",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("PS(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestNewClockPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for zero period")
		}
	}()
	NewClock("bad", 0)
}

func TestFromMHz(t *testing.T) {
	c := FromMHz("hundred", 100)
	if c.Period() != 10000 {
		t.Fatalf("100 MHz period = %d ps, want 10000", c.Period())
	}
	if got := c.FreqMHz(); got < 99.99 || got > 100.01 {
		t.Fatalf("FreqMHz = %v", got)
	}
}

func TestPresets(t *testing.T) {
	for _, c := range []Clock{FPGA100MHz, Proc1GHz, Proc50MHz, ProcA57, DDR4Bus1333} {
		if !c.Valid() {
			t.Errorf("preset %v invalid", c)
		}
	}
	if Proc1GHz.Period() != 1000 {
		t.Fatalf("1 GHz period = %d", Proc1GHz.Period())
	}
	if Proc50MHz.Period() != 20000 {
		t.Fatalf("50 MHz period = %d", Proc50MHz.Period())
	}
}

func TestConversionsExact(t *testing.T) {
	c := Proc1GHz
	if c.ToTime(1234) != 1234*1000 {
		t.Fatalf("ToTime wrong")
	}
	if c.CyclesCeil(999) != 1 || c.CyclesCeil(1000) != 1 || c.CyclesCeil(1001) != 2 {
		t.Fatalf("CyclesCeil boundary wrong")
	}
	if c.CyclesFloor(999) != 0 || c.CyclesFloor(1000) != 1 || c.CyclesFloor(1999) != 1 {
		t.Fatalf("CyclesFloor boundary wrong")
	}
	if c.CyclesCeil(-5) != 0 || c.CyclesFloor(-5) != 0 {
		t.Fatalf("negative durations must clamp to zero cycles")
	}
}

func TestRescale(t *testing.T) {
	// 100 cycles at 100 MHz = 1000 ns = 1000 cycles at 1 GHz.
	if got := FPGA100MHz.Rescale(100, Proc1GHz); got != 1000 {
		t.Fatalf("Rescale = %d, want 1000", got)
	}
	// 3 cycles at 1 GHz = 3 ns -> ceil to 1 cycle of 100 MHz.
	if got := Proc1GHz.Rescale(3, FPGA100MHz); got != 1 {
		t.Fatalf("Rescale = %d, want 1", got)
	}
}

// Property: ceil/floor bracket the exact conversion.
func TestCycleConversionProperty(t *testing.T) {
	c := NewClock("p7", 699)
	f := func(raw int64) bool {
		d := PS(raw % (1 << 40))
		if d < 0 {
			d = -d
		}
		lo, hi := c.CyclesFloor(d), c.CyclesCeil(d)
		return c.ToTime(lo) <= d && c.ToTime(hi) >= d && hi-lo <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockString(t *testing.T) {
	if !strings.Contains(FPGA100MHz.String(), "100.00MHz") {
		t.Fatalf("String() = %q", FPGA100MHz.String())
	}
}
