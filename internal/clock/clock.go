// Package clock provides picosecond-exact clock domains and cycle/time
// conversion used throughout the EasyDRAM emulation.
//
// All simulated time is integer picoseconds (PS). A Clock is defined by its
// integer period in picoseconds, never by a floating-point frequency, so
// repeated conversions are exact and the emulation is deterministic.
package clock

import "fmt"

// PS is a duration or point in simulated time, in picoseconds.
type PS int64

// Convenient duration units.
const (
	Picosecond  PS = 1
	Nanosecond  PS = 1000
	Microsecond PS = 1000 * Nanosecond
	Millisecond PS = 1000 * Microsecond
	Second      PS = 1000 * Millisecond
)

// Nanoseconds reports t as a floating-point nanosecond count.
func (t PS) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point microsecond count.
func (t PS) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a floating-point second count.
func (t PS) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the duration with an auto-selected unit.
func (t PS) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Cycles counts clock cycles in some clock domain.
type Cycles int64

// Clock is a fixed-frequency clock domain defined by an integer period.
// The zero value is invalid; construct clocks with NewClock or the presets.
type Clock struct {
	periodPS PS
	name     string
}

// NewClock returns a clock with the given period in picoseconds.
// It panics if periodPS is not positive; clock definitions are static
// configuration, and an invalid period is a programming error.
func NewClock(name string, periodPS PS) Clock {
	if periodPS <= 0 {
		panic(fmt.Sprintf("clock: non-positive period %d for %q", periodPS, name))
	}
	return Clock{periodPS: periodPS, name: name}
}

// FromMHz returns a clock whose period is the closest integer picosecond
// count for the given frequency in MHz.
func FromMHz(name string, mhz float64) Clock {
	if mhz <= 0 {
		panic(fmt.Sprintf("clock: non-positive frequency %f for %q", mhz, name))
	}
	period := PS(1e6/mhz + 0.5)
	return NewClock(name, period)
}

// Common preset clocks used by the paper's configurations.
var (
	// FPGA100MHz is the FPGA fabric clock used by EasyDRAM's prototype.
	FPGA100MHz = NewClock("fpga-100mhz", 10000)
	// Proc1GHz is the validation reference processor clock (§6).
	Proc1GHz = NewClock("proc-1ghz", 1000)
	// Proc50MHz is the PiDRAM-like in-order processor clock (§7).
	Proc50MHz = NewClock("proc-50mhz", 20000)
	// ProcA57 approximates the Jetson Nano Cortex-A57 at 1.43 GHz.
	ProcA57 = NewClock("proc-a57-1.43ghz", 699)
	// DDR4Bus1333 is the DDR4-1333 I/O bus clock (666.67 MHz, 1500 ps).
	DDR4Bus1333 = NewClock("ddr4-1333-bus", 1500)
)

// Name reports the clock's configured name.
func (c Clock) Name() string { return c.name }

// Period reports the clock period in picoseconds.
func (c Clock) Period() PS { return c.periodPS }

// FreqMHz reports the clock frequency in MHz.
func (c Clock) FreqMHz() float64 { return 1e6 / float64(c.periodPS) }

// Valid reports whether the clock was constructed with a positive period.
func (c Clock) Valid() bool { return c.periodPS > 0 }

// ToTime converts a cycle count in this domain to picoseconds.
func (c Clock) ToTime(n Cycles) PS { return PS(n) * c.periodPS }

// CyclesCeil converts a duration to cycles, rounding up. A memory response
// that takes a fraction of a cycle still occupies the whole cycle.
func (c Clock) CyclesCeil(t PS) Cycles {
	if t <= 0 {
		return 0
	}
	return Cycles((t + c.periodPS - 1) / c.periodPS)
}

// CyclesFloor converts a duration to cycles, rounding down.
func (c Clock) CyclesFloor(t PS) Cycles {
	if t <= 0 {
		return 0
	}
	return Cycles(t / c.periodPS)
}

// Rescale converts a cycle count from domain c to domain dst, rounding up.
// Rescale is the fundamental time-scaling conversion: "n cycles of c is how
// many cycles of dst".
func (c Clock) Rescale(n Cycles, dst Clock) Cycles {
	return dst.CyclesCeil(c.ToTime(n))
}

func (c Clock) String() string {
	return fmt.Sprintf("%s(%.2fMHz)", c.name, c.FreqMHz())
}
