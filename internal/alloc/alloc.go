// Package alloc implements EasyDRAM's RowClone-aware memory allocator
// (§7.1). It hands out whole DRAM rows (solving the alignment and
// granularity problems), understands which rows share a subarray (the
// mapping problem), and searches for destination rows that can actually be
// cloned to, falling back to CPU copies when none exists.
package alloc

import (
	"fmt"

	"easydram/internal/smc"
)

// Allocator tracks row-granularity allocations over the physical address
// space defined by a mapper.
type Allocator struct {
	mapper       smc.Mapper
	subarrayRows int
	rowBytes     uint64
	banks        uint64

	used map[uint64]bool // row-block base addresses in use
	next uint64          // next never-allocated row-block index
	max  uint64          // total row blocks available
}

// New returns an allocator for the given mapping and subarray size.
func New(m smc.Mapper, subarrayRows, rowsPerBank int) (*Allocator, error) {
	if subarrayRows <= 0 {
		return nil, fmt.Errorf("alloc: subarray size must be positive, got %d", subarrayRows)
	}
	return &Allocator{
		mapper:       m,
		subarrayRows: subarrayRows,
		rowBytes:     uint64(m.RowBytes()),
		banks:        uint64(m.Banks()),
		used:         make(map[uint64]bool),
		max:          uint64(rowsPerBank) * uint64(m.Banks()),
	}, nil
}

// RowBytes reports the row size in bytes.
func (a *Allocator) RowBytes() int { return int(a.rowBytes) }

// RowsFor reports the number of rows covering n bytes.
func (a *Allocator) RowsFor(n int) int {
	return int((uint64(n) + a.rowBytes - 1) / a.rowBytes)
}

func (a *Allocator) blockBase(idx uint64) uint64 { return idx * a.rowBytes }
func (a *Allocator) blockIdx(base uint64) uint64 { return base / a.rowBytes }

// AllocContiguous reserves n consecutive rows and returns the base address
// of the first.
func (a *Allocator) AllocContiguous(n int) (uint64, error) {
	for {
		start := a.next
		ok := true
		for i := uint64(0); i < uint64(n); i++ {
			if start+i >= a.max {
				return 0, fmt.Errorf("alloc: out of rows (need %d contiguous)", n)
			}
			if a.used[a.blockBase(start+i)] {
				ok = false
				a.next = start + i + 1
				break
			}
		}
		if !ok {
			continue
		}
		for i := uint64(0); i < uint64(n); i++ {
			a.used[a.blockBase(start+i)] = true
		}
		a.next = start + uint64(n)
		return a.blockBase(start), nil
	}
}

// Rows lists the row base addresses of an n-byte region starting at base.
func (a *Allocator) Rows(base uint64, n int) []uint64 {
	rows := a.RowsFor(n)
	out := make([]uint64, rows)
	for i := range out {
		out[i] = base + uint64(i)*a.rowBytes
	}
	return out
}

// Claim marks the row containing base as used (for externally placed data).
func (a *Allocator) Claim(base uint64) {
	a.used[base&^(a.rowBytes-1)] = true
}

// SameSubarray reports whether two row bases share a bank and subarray.
func (a *Allocator) SameSubarray(r1, r2 uint64) bool {
	i, j := a.blockIdx(r1), a.blockIdx(r2)
	if i%a.banks != j%a.banks {
		return false
	}
	return (i/a.banks)/uint64(a.subarrayRows) == (j/a.banks)/uint64(a.subarrayRows)
}

// SubarrayOf identifies the (bank, subarray) pair of a row base.
func (a *Allocator) SubarrayOf(rowBase uint64) (bank, subarray int) {
	i := a.blockIdx(rowBase)
	return int(i % a.banks), int((i / a.banks) / uint64(a.subarrayRows))
}

// FreeRowsInSubarray returns up to max free row bases sharing rowBase's
// bank and subarray, nearest-first.
func (a *Allocator) FreeRowsInSubarray(rowBase uint64, max int) []uint64 {
	i := a.blockIdx(rowBase)
	bank := i % a.banks
	row := i / a.banks
	saStart := row / uint64(a.subarrayRows) * uint64(a.subarrayRows)
	var out []uint64
	for off := uint64(0); off < uint64(a.subarrayRows) && len(out) < max; off++ {
		cand := saStart + off
		if cand == row {
			continue
		}
		base := a.blockBase(cand*a.banks + bank)
		if base/a.rowBytes >= a.max || a.used[base] {
			continue
		}
		out = append(out, base)
	}
	return out
}

// TakeRow marks a specific free row as used. It returns an error if the row
// is already taken.
func (a *Allocator) TakeRow(base uint64) error {
	if a.used[base] {
		return fmt.Errorf("alloc: row %#x already in use", base)
	}
	a.used[base] = true
	return nil
}
