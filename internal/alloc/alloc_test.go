package alloc

import (
	"testing"

	"easydram/internal/smc"
)

func newTestAllocator(t *testing.T) *Allocator {
	t.Helper()
	m, err := smc.NewRowBankCol(16, 128)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(m, 512, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAllocContiguous(t *testing.T) {
	a := newTestAllocator(t)
	b1, err := a.AllocContiguous(4)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a.AllocContiguous(2)
	if err != nil {
		t.Fatal(err)
	}
	if b2 < b1+4*8192 {
		t.Fatalf("allocations overlap: %x %x", b1, b2)
	}
	rows := a.Rows(b1, 4*8192)
	if len(rows) != 4 || rows[1] != b1+8192 {
		t.Fatalf("Rows = %v", rows)
	}
}

func TestRowsFor(t *testing.T) {
	a := newTestAllocator(t)
	if a.RowsFor(1) != 1 || a.RowsFor(8192) != 1 || a.RowsFor(8193) != 2 {
		t.Fatalf("RowsFor wrong")
	}
	if a.RowBytes() != 8192 {
		t.Fatalf("RowBytes = %d", a.RowBytes())
	}
}

func TestSameSubarray(t *testing.T) {
	a := newTestAllocator(t)
	// Blocks 0 and 16 are (bank 0, rows 0 and 1): same subarray.
	if !a.SameSubarray(0, 16*8192) {
		t.Fatalf("rows 0,1 of bank 0 must share a subarray")
	}
	// Blocks 0 and 1 are different banks.
	if a.SameSubarray(0, 8192) {
		t.Fatalf("different banks cannot share a subarray")
	}
	// Rows 0 and 512 of bank 0: different subarrays (512-row subarrays).
	if a.SameSubarray(0, 512*16*8192) {
		t.Fatalf("rows 0 and 512 must be in different subarrays")
	}
}

func TestSubarrayOf(t *testing.T) {
	a := newTestAllocator(t)
	bank, sa := a.SubarrayOf(3 * 8192) // block 3: bank 3, row 0
	if bank != 3 || sa != 0 {
		t.Fatalf("SubarrayOf = (%d,%d)", bank, sa)
	}
	bank, sa = a.SubarrayOf(uint64(600*16+2) * 8192) // bank 2, row 600
	if bank != 2 || sa != 1 {
		t.Fatalf("SubarrayOf = (%d,%d)", bank, sa)
	}
}

func TestFreeRowsInSubarrayExcludesUsed(t *testing.T) {
	a := newTestAllocator(t)
	base, err := a.AllocContiguous(1) // block 0: bank 0, row 0
	if err != nil {
		t.Fatal(err)
	}
	free := a.FreeRowsInSubarray(base, 8)
	if len(free) != 8 {
		t.Fatalf("got %d candidates", len(free))
	}
	for _, f := range free {
		if f == base {
			t.Fatalf("candidate includes the row itself")
		}
		if !a.SameSubarray(base, f) {
			t.Fatalf("candidate %x not in the same subarray", f)
		}
	}
	// Take the first candidate; it must disappear from the next search.
	if err := a.TakeRow(free[0]); err != nil {
		t.Fatal(err)
	}
	free2 := a.FreeRowsInSubarray(base, 8)
	for _, f := range free2 {
		if f == free[0] {
			t.Fatalf("taken row still offered")
		}
	}
}

func TestTakeRowTwiceFails(t *testing.T) {
	a := newTestAllocator(t)
	if err := a.TakeRow(8192); err != nil {
		t.Fatal(err)
	}
	if err := a.TakeRow(8192); err == nil {
		t.Fatalf("double take must fail")
	}
}

func TestAllocSkipsTakenRows(t *testing.T) {
	a := newTestAllocator(t)
	if err := a.TakeRow(8192); err != nil { // block 1
		t.Fatal(err)
	}
	b, err := a.AllocContiguous(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range a.Rows(b, 3*8192) {
		if r == 8192 {
			t.Fatalf("allocation reused a taken row")
		}
	}
}

func TestExhaustion(t *testing.T) {
	m, err := smc.NewRowBankCol(16, 128)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(m, 512, 512) // 512 rows/bank x 16 banks = 8192 blocks
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocContiguous(8192); err != nil {
		t.Fatalf("full allocation should fit: %v", err)
	}
	if _, err := a.AllocContiguous(1); err == nil {
		t.Fatalf("allocation past capacity must fail")
	}
}

func TestClaim(t *testing.T) {
	a := newTestAllocator(t)
	a.Claim(100) // row 0 of bank 0 (unaligned address, same row block)
	free := a.FreeRowsInSubarray(16*8192, 512)
	for _, f := range free {
		if f == 0 {
			t.Fatalf("claimed row offered as free")
		}
	}
}

func TestNewValidation(t *testing.T) {
	m, _ := smc.NewRowBankCol(16, 128)
	if _, err := New(m, 0, 4096); err == nil {
		t.Fatalf("zero subarray size must fail")
	}
}
