package workload

import (
	"testing"
)

func collect(t *testing.T, k Kernel) []Op {
	t.Helper()
	s := k.Stream()
	defer s.Close()
	var ops []Op
	var op Op
	for s.Next(&op) {
		ops = append(ops, op)
	}
	return ops
}

func TestGenCoalescesCompute(t *testing.T) {
	k := Kernel{Name: "c", Body: func(g *Gen) {
		g.Compute(3)
		g.Compute(4)
		g.Load(0)
		g.Compute(5)
	}}
	ops := collect(t, k)
	if len(ops) != 3 {
		t.Fatalf("ops = %v", ops)
	}
	if ops[0].Kind != OpCompute || ops[0].N != 7 {
		t.Fatalf("coalesced compute = %+v", ops[0])
	}
	if ops[2].Kind != OpCompute || ops[2].N != 5 {
		t.Fatalf("trailing compute = %+v", ops[2])
	}
}

func TestGenOps(t *testing.T) {
	k := Kernel{Name: "all", Body: func(g *Gen) {
		g.Load(64)
		g.LoadDep(128)
		g.Store(192)
		g.Flush(256)
		g.RowClone(0, 8192)
		g.Barrier()
		g.Mark()
	}}
	ops := collect(t, k)
	wantKinds := []OpKind{OpLoad, OpLoad, OpStore, OpFlush, OpRowClone, OpBarrier, OpBarrier, OpMark}
	if len(ops) != len(wantKinds) {
		t.Fatalf("got %d ops, want %d: %v", len(ops), len(wantKinds), ops)
	}
	for i, k := range wantKinds {
		if ops[i].Kind != k {
			t.Fatalf("op %d = %v, want %v", i, ops[i].Kind, k)
		}
	}
	if !ops[1].Dep {
		t.Fatalf("LoadDep must set Dep")
	}
	if ops[4].Src != 0 || ops[4].Addr != 8192 {
		t.Fatalf("rowclone op = %+v", ops[4])
	}
}

func TestGoStreamMatchesDirectEmission(t *testing.T) {
	// Stream a kernel large enough to cross several slabs and verify order.
	k := Kernel{Name: "big", Body: func(g *Gen) {
		for i := 0; i < 3*slabSize; i++ {
			g.Load(uint64(i) * 64)
		}
	}}
	ops := collect(t, k)
	if len(ops) != 3*slabSize {
		t.Fatalf("streamed %d ops, want %d", len(ops), 3*slabSize)
	}
	for i, op := range ops {
		if op.Addr != uint64(i)*64 {
			t.Fatalf("op %d out of order: %+v", i, op)
		}
	}
}

func TestStreamCloseMidway(t *testing.T) {
	k := Kernel{Name: "huge", Body: func(g *Gen) {
		for i := 0; i < 100*slabSize; i++ {
			g.Load(uint64(i))
		}
	}}
	s := k.Stream()
	var op Op
	for i := 0; i < 10; i++ {
		if !s.Next(&op) {
			t.Fatalf("stream ended early")
		}
	}
	s.Close() // must unblock and stop the producer goroutine
	if s.Next(&op) {
		t.Fatalf("closed stream must not produce")
	}
}

func TestSliceStream(t *testing.T) {
	s := NewSliceStream([]Op{{Kind: OpLoad, Addr: 1}, {Kind: OpStore, Addr: 2}})
	var op Op
	if !s.Next(&op) || op.Addr != 1 {
		t.Fatalf("first op wrong")
	}
	if !s.Next(&op) || op.Addr != 2 {
		t.Fatalf("second op wrong")
	}
	if s.Next(&op) {
		t.Fatalf("exhausted stream must stop")
	}
	s.Close()
}

func TestExtent(t *testing.T) {
	k := Kernel{Name: "e", Body: func(g *Gen) {
		g.Load(100)
		g.Store(5000)
		g.RowClone(0, 16384)
	}}
	if got := Extent(k); got != 16384+8192 {
		t.Fatalf("Extent = %d, want %d", got, 16384+8192)
	}
}

func TestOpKindString(t *testing.T) {
	names := map[OpKind]string{
		OpCompute: "compute", OpLoad: "load", OpStore: "store",
		OpFlush: "flush", OpRowClone: "rowclone", OpBarrier: "barrier", OpMark: "mark",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
}

func TestArenaRowAlignment(t *testing.T) {
	ar := NewArena(0)
	a := ar.Mat(10, 10)
	b := ar.Vec(3)
	if a.Base%arenaAlign != 0 || b.Base%arenaAlign != 0 {
		t.Fatalf("allocations not row-aligned: %x %x", a.Base, b.Base)
	}
	if b.Base < a.Base+10*10*8 {
		t.Fatalf("allocations overlap")
	}
	if a.At(2, 3) != a.Base+(2*10+3)*8 {
		t.Fatalf("Mat.At wrong")
	}
	c := ar.Cube(2, 3, 4)
	if c.At(1, 2, 3) != c.Base+((1*3+2)*4+3)*8 {
		t.Fatalf("Cube.At wrong")
	}
}

func TestTrafficGenerators(t *testing.T) {
	cases := []Kernel{
		StreamTriad(256),
		RandomAccess(1<<20, 500),
		Strided(0, 4096, 100),
		ComputeBound(50, 64),
	}
	for _, k := range cases {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			ops := collect(t, k)
			if len(ops) == 0 {
				t.Fatalf("no ops emitted")
			}
			loads := 0
			for _, op := range ops {
				if op.Kind == OpLoad {
					loads++
				}
			}
			if loads == 0 {
				t.Fatalf("no loads emitted")
			}
		})
	}
}

func TestRandomAccessDeterministic(t *testing.T) {
	a := collect(t, RandomAccess(1<<16, 100))
	b := collect(t, RandomAccess(1<<16, 100))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("random-access stream not reproducible at op %d", i)
		}
	}
}

func TestRandomAccessSpreads(t *testing.T) {
	ops := collect(t, RandomAccess(1<<20, 1000))
	distinct := map[uint64]bool{}
	for _, op := range ops {
		if op.Kind == OpLoad {
			distinct[op.Addr] = true
		}
	}
	if len(distinct) < 500 {
		t.Fatalf("only %d distinct addresses across 1000 random accesses", len(distinct))
	}
}
