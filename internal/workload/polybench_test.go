package workload

import (
	"testing"
)

// kernelProfile summarises an op stream for sanity checks.
type kernelProfile struct {
	loads, stores, computeN, total int64
	maxAddr                        uint64
}

func profile(t *testing.T, k Kernel) kernelProfile {
	t.Helper()
	s := k.Stream()
	defer s.Close()
	var p kernelProfile
	var op Op
	for s.Next(&op) {
		p.total++
		switch op.Kind {
		case OpLoad:
			p.loads++
			if op.Addr > p.maxAddr {
				p.maxAddr = op.Addr
			}
		case OpStore:
			p.stores++
			if op.Addr > p.maxAddr {
				p.maxAddr = op.Addr
			}
		case OpCompute:
			p.computeN += op.N
		}
	}
	return p
}

// TestValidationSuiteComplete pins the paper's kernel count: 28 PolyBench
// benchmarks (§6).
func TestValidationSuiteComplete(t *testing.T) {
	suite := ValidationSuite(Tiny)
	if len(suite) != 28 {
		t.Fatalf("validation suite has %d kernels, want 28", len(suite))
	}
	seen := map[string]bool{}
	for _, k := range suite {
		if seen[k.Name] {
			t.Fatalf("duplicate kernel %q", k.Name)
		}
		seen[k.Name] = true
	}
}

// TestFig13SuiteOrder pins the 11 workloads of Figure 13, in the paper's
// order.
func TestFig13SuiteOrder(t *testing.T) {
	want := []string{
		"gemver", "mvt", "gesummv", "syrk", "symm", "correlation",
		"covariance", "trisolv", "gramschmidt", "gemm", "durbin",
	}
	suite := Fig13Suite(Tiny)
	if len(suite) != len(want) {
		t.Fatalf("fig13 suite has %d kernels", len(suite))
	}
	for i, k := range suite {
		if k.Name != want[i] {
			t.Fatalf("kernel %d = %q, want %q", i, k.Name, want[i])
		}
	}
}

// TestEveryKernelEmitsWork runs every kernel at Tiny size and checks basic
// structural properties: reads and writes exist and the stream terminates.
func TestEveryKernelEmitsWork(t *testing.T) {
	for _, k := range ValidationSuite(Tiny) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			p := profile(t, k)
			if p.total == 0 || p.loads == 0 {
				t.Fatalf("kernel emitted no work: %+v", p)
			}
			if p.stores == 0 {
				t.Fatalf("kernel emitted no stores: %+v", p)
			}
		})
	}
}

// TestKernelsDeterministic verifies a kernel emits the identical stream on
// every run (required for reproducible experiments).
func TestKernelsDeterministic(t *testing.T) {
	k := PBGemver(24)
	a := collect(t, k)
	b := collect(t, k)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSizeClassesScale checks Eval emits more work than Tiny.
func TestSizeClassesScale(t *testing.T) {
	tiny := profile(t, PBGemm(8, 8, 8))
	big := profile(t, PBGemm(24, 24, 24))
	if big.total <= tiny.total {
		t.Fatalf("bigger gemm emitted less work")
	}
}

// TestGemmOpCount checks gemm's loop-nest arithmetic: the k-loop emits
// 3 memory ops per iteration plus the beta pass.
func TestGemmOpCount(t *testing.T) {
	const n = 8
	p := profile(t, PBGemm(n, n, n))
	// beta pass (C) + hoisted A per (i,k) + (B,C) per inner iteration.
	wantLoads := int64(n*n + n*n + 2*n*n*n)
	if p.loads != wantLoads {
		t.Fatalf("gemm loads = %d, want %d", p.loads, wantLoads)
	}
	wantStores := int64(n*n + n*n*n)
	if p.stores != wantStores {
		t.Fatalf("gemm stores = %d, want %d", p.stores, wantStores)
	}
}

// TestDurbinIsCacheResident pins the paper's observation that durbin is the
// least memory-intensive workload: its footprint fits in the 512 KiB L2.
func TestDurbinIsCacheResident(t *testing.T) {
	p := profile(t, PBDurbin(256))
	if p.maxAddr >= 512<<10 {
		t.Fatalf("durbin footprint %d bytes exceeds L2", p.maxAddr)
	}
}

// TestStencilsTouchBothBuffers checks double-buffered stencils alternate.
func TestStencilsTouchBothBuffers(t *testing.T) {
	p := profile(t, PBJacobi2d(16, 2))
	// two n*n grids -> footprint beyond one grid.
	if p.maxAddr < 16*16*8 {
		t.Fatalf("jacobi-2d never touched the second buffer")
	}
}

// TestExtraKernels covers the two PolyBench kernels outside the paper's
// 28-benchmark validation set.
func TestExtraKernels(t *testing.T) {
	for _, k := range []Kernel{PBLudcmp(16), PBNussinov(16)} {
		p := profile(t, k)
		if p.loads == 0 || p.stores == 0 {
			t.Fatalf("%s emitted no work: %+v", k.Name, p)
		}
	}
}
