package workload

// Suites group the PolyBench kernels into the sets the paper evaluates.
// A SizeClass scales the kernel dimensions: tests use Tiny (seconds of
// host time for whole suites), benches use Eval (the class whose working
// sets reproduce each kernel's cache-residency behaviour relative to the
// 512 KiB L2 of the modelled system).

// SizeClass selects kernel dimensions.
type SizeClass int

// Size classes.
const (
	// Tiny keeps whole-suite runs under a few host seconds (unit tests).
	Tiny SizeClass = iota
	// Small is used by validation sweeps (two systems per kernel).
	Small
	// Eval reproduces the paper's cache-residency classes per kernel.
	Eval
)

// dims3 selects (a,b,c) by class.
func (s SizeClass) pick(tiny, small, eval int) int {
	switch s {
	case Tiny:
		return tiny
	case Small:
		return small
	default:
		return eval
	}
}

// Fig13Suite returns the 11 kernels of Figures 13 and 14, in the paper's
// order.
func Fig13Suite(s SizeClass) []Kernel {
	return []Kernel{
		PBGemver(s.pick(48, 160, 520)),
		PBMvt(s.pick(48, 160, 520)),
		PBGesummv(s.pick(48, 160, 420)),
		PBSyrk(s.pick(24, 72, 220), s.pick(24, 72, 240)),
		PBSymm(s.pick(24, 72, 200), s.pick(24, 72, 220)),
		PBCorrelation(s.pick(24, 64, 220), s.pick(28, 80, 260)),
		PBCovariance(s.pick(24, 64, 220), s.pick(28, 80, 260)),
		PBTrisolv(s.pick(48, 160, 600)),
		PBGramschmidt(s.pick(24, 64, 180), s.pick(24, 64, 200)),
		PBGemm(s.pick(24, 64, 180), s.pick(24, 64, 180), s.pick(24, 64, 190)),
		PBDurbin(s.pick(64, 256, 1400)),
	}
}

// ValidationSuite returns the 28 PolyBench kernels used by the §6 time-
// scaling validation.
func ValidationSuite(s SizeClass) []Kernel {
	n := func(tiny, small, eval int) int { return s.pick(tiny, small, eval) }
	suite := Fig13Suite(s)
	suite = append(suite,
		PB2mm(n(16, 40, 96), n(16, 40, 104), n(16, 40, 112), n(16, 40, 120)),
		PB3mm(n(14, 36, 88), n(14, 36, 96), n(14, 36, 104), n(14, 36, 112), n(14, 36, 120)),
		PBAtax(n(32, 96, 360), n(32, 96, 320)),
		PBBicg(n(32, 96, 360), n(32, 96, 320)),
		PBCholesky(n(24, 64, 160)),
		PBDeriche(n(24, 96, 256), n(24, 72, 192)),
		PBDoitgen(n(8, 20, 40), n(8, 20, 44), n(8, 16, 36)),
		PBSyr2k(n(20, 56, 160), n(20, 56, 176)),
		PBTrmm(n(24, 64, 180), n(24, 64, 200)),
		PBLu(n(24, 64, 160)),
		PBFloydWarshall(n(20, 48, 120)),
		PBAdi(n(24, 64, 160), n(2, 4, 8)),
		PBFdtd2d(n(24, 64, 180), n(24, 64, 200), n(2, 4, 8)),
		PBHeat3d(n(10, 20, 52), n(2, 3, 6)),
		PBJacobi1d(n(256, 1024, 16384), n(4, 16, 40)),
		PBJacobi2d(n(24, 72, 250), n(2, 4, 8)),
		PBSeidel2d(n(24, 72, 250), n(2, 4, 8)),
	)
	return suite
}
