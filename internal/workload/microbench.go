package workload

import "fmt"

// Microbenchmarks: the lmbench-style memory-read-latency pointer chase
// (§6, Figure 8) and the Copy/Init workloads of the RowClone case study
// (§7, Figures 10 and 11).

// LatMemRd is the lmbench lat_mem_rd pointer chase: `accesses` dependent
// line-granularity loads walking a working set of sizeBytes. One warm-up
// pass runs before the measurement window, like lmbench's steady-state
// measurement.
func LatMemRd(sizeBytes int, accesses int) Kernel {
	name := fmt.Sprintf("lat_mem_rd-%dKiB", sizeBytes/1024)
	return Kernel{Name: name, Body: func(g *Gen) {
		lines := sizeBytes / 64
		if lines < 1 {
			lines = 1
		}
		// Walk with a large prime stride so consecutive accesses do not sit
		// in the same row or set, like lmbench's shuffled chain.
		const strideLines = 97
		chase := func(n int) {
			idx := 0
			for i := 0; i < n; i++ {
				g.LoadDep(uint64(idx) * 64)
				idx = (idx + strideLines) % lines
			}
		}
		chase(lines) // warm-up pass over the whole working set
		g.Mark()
		chase(accesses)
		g.Mark()
	}}
}

// SubstrateStream is the cache-hit-heavy streaming kernel of the substrate
// microbenchmarks: n line-granularity loads sweeping a 64 MiB footprint, so
// almost every access is an L1/L2 hit. BenchmarkSubstrateCacheAccess and
// cmd/benchall's snapshot metrics share this one definition so the CI-gated
// substrate numbers measure exactly the benchmarked code.
func SubstrateStream(n int) Kernel {
	return Kernel{Name: "substrate-stream", Body: func(g *Gen) {
		for i := 0; i < n; i++ {
			g.Load(uint64(i%(1<<20)) * 64)
		}
	}}
}

// SubstrateMisses is the miss-path companion of SubstrateStream: n dependent
// loads striding 128 KiB through a 2 GiB span, so every access misses the
// hierarchy and exercises the full engine/controller/DRAM service loop.
func SubstrateMisses(n int) Kernel {
	return Kernel{Name: "substrate-misses", Body: func(g *Gen) {
		const span = uint64(1) << 31 // stay inside the module's address space
		for i := 0; i < n; i++ {
			g.LoadDep(uint64(i) * 131072 % span)
		}
	}}
}

// RowBurstDepth is the group size of SubstrateRowBurst: the number of
// same-row misses outstanding together, which is also the row-hit burst
// length an SMC with a sufficient burst cap serves per step.
const RowBurstDepth = 8

// SubstrateRowBurst is the row-locality companion of SubstrateMisses: n
// line-granularity loads in groups of RowBurstDepth independent loads to
// consecutive lines of one DRAM row, each group closed by a barrier. With a
// core whose MLP covers the group, all of a group's misses are outstanding
// together, so the controller's request table holds a full same-row run —
// the traffic shape the row-hit burst service path (BenchmarkSubstrateRow-
// HitBurst, core.Config.BurstCap) exists for. Lines are touched once each,
// so every access misses the caches.
func SubstrateRowBurst(n int) Kernel {
	return Kernel{Name: "substrate-rowburst", Body: func(g *Gen) {
		const span = uint64(1) << 31
		for i := 0; i < n; i++ {
			g.Load(uint64(i) * 64 % span)
			if i%RowBurstDepth == RowBurstDepth-1 {
				g.Barrier()
			}
		}
	}}
}

// CPUCopy copies n bytes from src to dst with 8-byte loads and stores — the
// baseline the RowClone case study normalises against.
func CPUCopy(src, dst uint64, n int) Kernel {
	return Kernel{Name: fmt.Sprintf("cpu-copy-%d", n), Body: func(g *Gen) {
		for off := uint64(0); off < uint64(n); off += wordBytes {
			g.Load(src + off)
			g.Store(dst + off)
		}
	}}
}

// CPUInit initialises n bytes at dst with 8-byte stores.
func CPUInit(dst uint64, n int) Kernel {
	return Kernel{Name: fmt.Sprintf("cpu-init-%d", n), Body: func(g *Gen) {
		for off := uint64(0); off < uint64(n); off += wordBytes {
			g.Compute(1)
			g.Store(dst + off)
		}
	}}
}

// RowAction is one row of a RowClone plan.
type RowAction struct {
	// Clone performs an in-DRAM copy from Src to Dst; otherwise the row
	// falls back to CPU loads/stores.
	Clone bool
	// Src and Dst are row-aligned physical base addresses.
	Src uint64
	Dst uint64
}

// RowClonePlan describes how a bulk copy or initialisation is executed,
// as computed by the techniques allocator (§7.1).
type RowClonePlan struct {
	// Name labels the workload.
	Name string
	// RowBytes is the DRAM row size.
	RowBytes int
	// InitSources lists row-aligned source rows the CPU must initialise
	// (and flush to DRAM) before cloning: the per-subarray pattern rows of
	// the Init workload.
	InitSources []uint64
	// Actions covers every destination row of the operation.
	Actions []RowAction
	// Flush selects the CLFLUSH setting: before each clone, dirty source
	// lines are written back and destination lines invalidated.
	Flush bool
	// Init marks an initialisation (fallback uses stores only; clones copy
	// from the subarray pattern row).
	Init bool
}

// Kernel renders the plan as an op stream. The measured region (between
// the two marks) covers the copy/init operations themselves; pattern-row
// initialisation and cache warming happen before the window, mirroring the
// paper's two settings: in the CLFLUSH setting the source rows start with
// dirty cached copies and the destination rows with clean ones, all of
// which the technique must flush or invalidate for coherence.
func (p RowClonePlan) Kernel() Kernel {
	return Kernel{Name: p.Name, Body: func(g *Gen) {
		rb := uint64(p.RowBytes)
		if p.Flush {
			for _, act := range p.Actions {
				if p.Init {
					for off := uint64(0); off < rb; off += wordBytes {
						g.Store(act.Dst + off) // dirty cached destination
					}
					continue
				}
				for off := uint64(0); off < rb; off += wordBytes {
					g.Store(act.Src + off) // dirty cached source
				}
				for off := uint64(0); off < rb; off += 64 {
					g.Load(act.Dst + off) // clean cached destination
				}
			}
		}
		for _, srcRow := range p.InitSources {
			for off := uint64(0); off < rb; off += wordBytes {
				g.Compute(1)
				g.Store(srcRow + off)
			}
			// The pattern row must reach DRAM before it can be cloned.
			for off := uint64(0); off < rb; off += 64 {
				g.Flush(srcRow + off)
			}
		}
		g.Mark()
		for _, act := range p.Actions {
			if !act.Clone {
				for off := uint64(0); off < rb; off += wordBytes {
					if !p.Init {
						g.Load(act.Src + off)
					} else {
						g.Compute(1)
					}
					g.Store(act.Dst + off)
				}
				continue
			}
			if p.Flush {
				for off := uint64(0); off < rb; off += 64 {
					if !p.Init {
						g.Flush(act.Src + off)
					}
					g.Flush(act.Dst + off)
				}
			}
			g.RowClone(act.Src, act.Dst)
		}
		g.Mark()
	}}
}

// CopyBench is the CPU-copy baseline with the same initial cache state and
// measurement window as the RowClone variant.
func CopyBench(src, dst uint64, size int, clflushSetting bool) Kernel {
	name := fmt.Sprintf("cpu-copy-%s", settingName(clflushSetting))
	return Kernel{Name: name, Body: func(g *Gen) {
		if clflushSetting {
			for off := uint64(0); off < uint64(size); off += wordBytes {
				g.Store(src + off)
			}
			for off := uint64(0); off < uint64(size); off += 64 {
				g.Load(dst + off)
			}
		}
		g.Mark()
		for off := uint64(0); off < uint64(size); off += wordBytes {
			g.Load(src + off)
			g.Store(dst + off)
		}
		g.Mark()
	}}
}

// InitBench is the CPU-init baseline with the same initial cache state and
// measurement window as the RowClone variant.
func InitBench(dst uint64, size int, clflushSetting bool) Kernel {
	name := fmt.Sprintf("cpu-init-%s", settingName(clflushSetting))
	return Kernel{Name: name, Body: func(g *Gen) {
		if clflushSetting {
			for off := uint64(0); off < uint64(size); off += wordBytes {
				g.Store(dst + off)
			}
		}
		g.Mark()
		for off := uint64(0); off < uint64(size); off += wordBytes {
			g.Compute(1)
			g.Store(dst + off)
		}
		g.Mark()
	}}
}

func settingName(clflush bool) string {
	if clflush {
		return "clflush"
	}
	return "noflush"
}
