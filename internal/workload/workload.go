// Package workload generates the memory-operation streams the modelled
// processors execute: the 28 PolyBench kernels used for validation, the
// lmbench memory-read-latency microbenchmark, and the Copy/Init RowClone
// microbenchmarks from the paper's case studies.
//
// Kernels are written as ordinary nested Go loops that emit Ops through a
// Gen; a Stream adapter runs the kernel body in a goroutine and hands the
// consumer batched op slabs, so kernel code stays readable while the
// consumer pays (amortised) nothing for the channel hop.
package workload

import (
	"fmt"
	"sync"
)

// OpKind classifies one processor operation.
type OpKind uint8

// Operation kinds.
const (
	// OpCompute represents N back-to-back non-memory instructions.
	OpCompute OpKind = iota + 1
	// OpLoad reads the line containing Addr.
	OpLoad
	// OpStore writes the line containing Addr (write-allocate).
	OpStore
	// OpFlush writes the line containing Addr back to DRAM and invalidates
	// it (EasyDRAM's memory-mapped CLFLUSH register).
	OpFlush
	// OpRowClone asks the memory controller to copy row Src to row Addr.
	OpRowClone
	// OpBarrier waits until every outstanding request (including posted
	// writebacks) has completed.
	OpBarrier
	// OpMark records the current processor cycle into the run result
	// (measurement window boundary). It implies no memory activity.
	OpMark
)

// String names the operation kind for logs and error messages.
func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpFlush:
		return "flush"
	case OpRowClone:
		return "rowclone"
	case OpBarrier:
		return "barrier"
	case OpMark:
		return "mark"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one processor operation.
type Op struct {
	Kind OpKind
	// N is the instruction count for OpCompute.
	N int64
	// Addr is the target byte address (load/store/flush/rowclone dest).
	Addr uint64
	// Src is the RowClone source address.
	Src uint64
	// Dep marks an operation whose address depends on the most recent
	// load's value (pointer chase); it cannot issue until that load
	// completes.
	Dep bool
}

// Stream supplies ops in program order.
type Stream interface {
	// Next fills op and reports whether an op was produced.
	Next(op *Op) bool
	// Close releases resources; the stream must not be used afterwards.
	Close()
}

// Kernel is a named op-stream factory, so a kernel can be run multiple
// times (once per system configuration).
type Kernel struct {
	Name string
	// Body emits the kernel's operations.
	Body func(g *Gen)
}

// Stream starts the kernel body and returns its op stream.
func (k Kernel) Stream() Stream { return newGoStream(k.Body) }

// Gen is the emission context handed to kernel bodies.
type Gen struct {
	emit func(Op)
	// pendingCompute coalesces consecutive Compute emissions.
	pendingCompute int64
}

// Compute emits n instructions of non-memory work (coalesced).
func (g *Gen) Compute(n int64) {
	if n > 0 {
		g.pendingCompute += n
	}
}

func (g *Gen) flushCompute() {
	if g.pendingCompute > 0 {
		g.emit(Op{Kind: OpCompute, N: g.pendingCompute})
		g.pendingCompute = 0
	}
}

// Load emits a load of addr.
func (g *Gen) Load(addr uint64) {
	g.flushCompute()
	g.emit(Op{Kind: OpLoad, Addr: addr})
}

// LoadDep emits a load whose address depends on the previous load.
func (g *Gen) LoadDep(addr uint64) {
	g.flushCompute()
	g.emit(Op{Kind: OpLoad, Addr: addr, Dep: true})
}

// Store emits a store to addr.
func (g *Gen) Store(addr uint64) {
	g.flushCompute()
	g.emit(Op{Kind: OpStore, Addr: addr})
}

// Flush emits a cache-line flush of addr.
func (g *Gen) Flush(addr uint64) {
	g.flushCompute()
	g.emit(Op{Kind: OpFlush, Addr: addr})
}

// RowClone emits an in-DRAM copy of the row at src to the row at dst.
func (g *Gen) RowClone(src, dst uint64) {
	g.flushCompute()
	g.emit(Op{Kind: OpRowClone, Addr: dst, Src: src})
}

// Barrier emits a full memory barrier.
func (g *Gen) Barrier() {
	g.flushCompute()
	g.emit(Op{Kind: OpBarrier})
}

// Mark emits a measurement-window boundary (implies a barrier first, so a
// window never charges work from outside it).
func (g *Gen) Mark() {
	g.Barrier()
	g.emit(Op{Kind: OpMark})
}

// slabSize is the op batch size moved per channel operation.
const slabSize = 4096

// goStream runs a kernel body in a goroutine and streams op slabs. Spent
// slabs are recycled back to the producer through the free channel, so a
// steady-state stream allocates no new slabs after the pipeline fills.
type goStream struct {
	ch   chan []Op
	free chan []Op
	stop chan struct{}
	buf  []Op
	idx  int
	done bool
	// stopOnce guards the close of stop: the producer goroutine selects on
	// the stop field concurrently, so Close must never write the field
	// itself (an early abort — rejected restore blob, cycle-cap bail — can
	// close the stream while the producer is mid-emit).
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newGoStream(body func(*Gen)) *goStream {
	s := &goStream{
		ch:   make(chan []Op, 2),
		free: make(chan []Op, 2),
		stop: make(chan struct{}),
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(s.ch)
		nextSlab := func() []Op {
			select {
			case slab := <-s.free:
				return slab
			default:
				return make([]Op, 0, slabSize)
			}
		}
		slab := nextSlab()
		aborted := false
		g := &Gen{emit: func(op Op) {
			if aborted {
				return
			}
			slab = append(slab, op)
			if len(slab) == slabSize {
				select {
				case s.ch <- slab:
					slab = nextSlab()
				case <-s.stop:
					aborted = true
				}
			}
		}}
		body(g)
		if aborted {
			return
		}
		g.flushCompute()
		if len(slab) > 0 {
			select {
			case s.ch <- slab:
			case <-s.stop:
			}
		}
	}()
	return s
}

func (s *goStream) Next(op *Op) bool {
	if s.done {
		return false
	}
	if s.idx >= len(s.buf) {
		// Recycle the spent slab before blocking on the next one; the
		// consumer never touches it again.
		if cap(s.buf) == slabSize {
			select {
			case s.free <- s.buf[:0]:
			default:
			}
		}
		slab, ok := <-s.ch
		if !ok {
			s.done = true
			return false
		}
		s.buf, s.idx = slab, 0
	}
	*op = s.buf[s.idx]
	s.idx++
	return true
}

func (s *goStream) Close() {
	s.stopOnce.Do(func() {
		close(s.stop)
		// Drain so the producer unblocks and exits.
		for range s.ch {
		}
		s.wg.Wait()
	})
	s.done = true
}

// Extent scans the kernel's op stream and reports one past the highest
// byte address it touches (used to size characterization ranges).
func Extent(k Kernel) uint64 {
	s := k.Stream()
	defer s.Close()
	var op Op
	var max uint64
	for s.Next(&op) {
		switch op.Kind {
		case OpLoad, OpStore, OpFlush:
			if end := op.Addr + 64; end > max {
				max = end
			}
		case OpRowClone:
			if end := op.Addr + 8192; end > max {
				max = end
			}
		}
	}
	return max
}

// SliceStream adapts a fixed []Op (tests and microbenchmarks).
type SliceStream struct {
	ops []Op
	idx int
}

// NewSliceStream returns a Stream over ops.
func NewSliceStream(ops []Op) *SliceStream { return &SliceStream{ops: ops} }

// Next implements Stream.
func (s *SliceStream) Next(op *Op) bool {
	if s.idx >= len(s.ops) {
		return false
	}
	*op = s.ops[s.idx]
	s.idx++
	return true
}

// Close implements Stream.
func (s *SliceStream) Close() {}

var _ Stream = (*goStream)(nil)
var _ Stream = (*SliceStream)(nil)
