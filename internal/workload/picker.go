package workload

import (
	"fmt"
	"sort"
)

// fuzzKernel is one entry of the differential fuzzer's kernel pool: a
// single-size-parameter kernel constructor plus the dimension range it may
// be instantiated over. MaxDim bounds the cost of the heavier loop nests
// (an O(n^3) kernel at dim 48 emits as many ops as an O(n^2) kernel at dim
// ~330, so the cubic entries get tighter caps).
type fuzzKernel struct {
	build  func(dim int) Kernel
	minDim int
	maxDim int
}

// fuzzPool is the kernel pool the seeded picker draws from. Every entry is
// replayable from (name, dim) alone, which is what lets a fuzz case
// serialize to JSON and reproduce byte-identically later. The pool mixes
// dense linear algebra (row-friendly), triangular/recurrence kernels
// (irregular reuse), an all-pairs cubic nest, a streaming kernel, and a
// pointer-chase microbenchmark, so fuzz cases exercise row-hit bursts,
// row conflicts, and dependent-miss chains alike.
// Dimension minimums are set so a kernel at its floor still runs a few
// thousand emulated cycles: the differential envelope judges RELATIVE
// cycle error, and a run shorter than that cannot amortize the engines'
// constant ~20-cycle startup difference, so a shorter run would turn
// measurement quantization into fake envelope breaches (the engine
// additionally floors envelope judgment on baseline cycles).
var fuzzPool = map[string]fuzzKernel{
	"gemver":         {func(d int) Kernel { return PBGemver(d) }, 20, 48},
	"gesummv":        {func(d int) Kernel { return PBGesummv(d) }, 28, 56},
	"mvt":            {func(d int) Kernel { return PBMvt(d) }, 26, 56},
	"trisolv":        {func(d int) Kernel { return PBTrisolv(d) }, 48, 96},
	"durbin":         {func(d int) Kernel { return PBDurbin(d) }, 32, 80},
	"cholesky":       {func(d int) Kernel { return PBCholesky(d) }, 20, 40},
	"lu":             {func(d int) Kernel { return PBLu(d) }, 16, 36},
	"floyd-warshall": {func(d int) Kernel { return PBFloydWarshall(d) }, 12, 28},
	"jacobi-1d":      {func(d int) Kernel { return PBJacobi1d(d, 4) }, 96, 256},
	"triad":          {func(d int) Kernel { return StreamTriad(d) }, 1024, 4096},
	"latmemrd":       {func(d int) Kernel { return LatMemRd(d<<10, 4*d) }, 16, 128},
}

// fuzzPoolNames is the pool in deterministic (sorted) order; the seeded
// picker indexes into it, so map iteration order never leaks into a draw.
var fuzzPoolNames = func() []string {
	names := make([]string, 0, len(fuzzPool))
	for n := range fuzzPool {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}()

// FuzzKernelNames lists the pool in deterministic order.
func FuzzKernelNames() []string {
	return append([]string(nil), fuzzPoolNames...)
}

// PickKernel maps two hash draws to a (name, dim) pair from the fuzz pool:
// sel selects the kernel, size selects a dimension uniformly inside the
// kernel's own [minDim, maxDim] range. Pure function of its inputs.
func PickKernel(sel, size uint64) (name string, dim int) {
	name = fuzzPoolNames[sel%uint64(len(fuzzPoolNames))]
	k := fuzzPool[name]
	span := uint64(k.maxDim - k.minDim + 1)
	return name, k.minDim + int(size%span)
}

// BuildKernel instantiates a pool kernel by name at the given dimension
// (clamped into the kernel's valid range), the replay path for serialized
// fuzz cases.
func BuildKernel(name string, dim int) (Kernel, error) {
	k, ok := fuzzPool[name]
	if !ok {
		return Kernel{}, fmt.Errorf("workload: unknown fuzz kernel %q", name)
	}
	if dim < k.minDim {
		dim = k.minDim
	}
	if dim > k.maxDim {
		dim = k.maxDim
	}
	return k.build(dim), nil
}

// MinKernelDim reports the smallest dimension BuildKernel accepts for name
// (the floor the fuzz minimizer shrinks toward). Unknown names report 0.
func MinKernelDim(name string) int {
	return fuzzPool[name].minDim
}
