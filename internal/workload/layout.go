package workload

// Data-layout helpers: PolyBench kernels operate on dense double-precision
// arrays laid out row-major in a flat physical address space.

const wordBytes = 8

// Arena hands out disjoint, row-aligned array allocations.
type Arena struct {
	next uint64
}

// NewArena returns an arena starting at base.
func NewArena(base uint64) *Arena { return &Arena{next: base} }

const arenaAlign = 8192 // DRAM row size; keeps arrays row-aligned

// Reserve returns the base of an n-byte block (row-aligned).
func (a *Arena) Reserve(n uint64) uint64 {
	base := a.next
	a.next += (n + arenaAlign - 1) &^ uint64(arenaAlign-1)
	return base
}

// Mat allocates an n x m matrix of doubles.
func (a *Arena) Mat(n, m int) Mat {
	return Mat{Base: a.Reserve(uint64(n) * uint64(m) * wordBytes), N: n, M: m}
}

// Vec allocates an n-vector of doubles.
func (a *Arena) Vec(n int) Vec {
	return Vec{Base: a.Reserve(uint64(n) * wordBytes), N: n}
}

// Cube allocates an n x m x p tensor of doubles.
func (a *Arena) Cube(n, m, p int) Cube {
	return Cube{Base: a.Reserve(uint64(n) * uint64(m) * uint64(p) * wordBytes), N: n, M: m, P: p}
}

// Mat is a row-major matrix of doubles.
type Mat struct {
	Base uint64
	N, M int
}

// At returns the address of element (i,j).
func (m Mat) At(i, j int) uint64 { return m.Base + uint64(i*m.M+j)*wordBytes }

// Vec is a vector of doubles.
type Vec struct {
	Base uint64
	N    int
}

// At returns the address of element i.
func (v Vec) At(i int) uint64 { return v.Base + uint64(i)*wordBytes }

// Cube is a row-major rank-3 tensor of doubles.
type Cube struct {
	Base    uint64
	N, M, P int
}

// At returns the address of element (i,j,k).
func (c Cube) At(i, j, k int) uint64 {
	return c.Base + uint64((i*c.M+j)*c.P+k)*wordBytes
}
