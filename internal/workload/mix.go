package workload

import "fmt"

// Multiprogram traffic mixes for the multi-core emulated host: named
// compositions of the existing kernels, one per core, with every core's
// addresses relocated into its own disjoint window so the private-L1/
// shared-L2 fabric never sees a line live in two L1s (the coherence
// simplification cache.MultiHierarchy documents). The mixes are the
// workloads of the fairness sweep (internal/experiments): "streaming" is
// all row-hit-friendly bandwidth traffic, "latency" is all dependent
// pointer chases, and "mixed" pits the two against each other — the
// configuration where FR-FCFS's row-hit-first greed starves the chase and
// an interference scheduler like BLISS is supposed to help.

// MixWindowBytes is each core's private address window in a mix: large
// enough for every composed kernel's working set, small enough that 64
// cores still sit in the low address space.
const MixWindowBytes = 16 << 20

// Mix is a named multiprogram composition: KernelAt(i, n) is the workload
// core i of n runs (before windowing).
type Mix struct {
	// Name identifies the mix on command lines and in reports.
	Name string
	// Desc is a one-line description for usage listings.
	Desc string
	// KernelAt returns core i-of-n's kernel, not yet relocated.
	KernelAt func(i, n int) Kernel
}

// mixStreaming is a row-hit-heavy bandwidth kernel: one sequential sweep,
// line by line, so misses land in long same-row runs on one bank at a time
// — the traffic FR-FCFS's row-hit-first policy rewards hardest (and the
// streak BLISS's per-bank blacklist caps).
func mixStreaming() Kernel { return Strided(0, 64, 16384) }

// mixLatency is a latency-sensitive kernel: a dependent pointer chase over
// a working set larger than the shared L2 — every miss is a row-miss-prone
// DRAM round trip with no memory-level parallelism to hide it — with a
// compute gap between loads, the low-MPKI shape of a latency-critical
// program (a dense chase would itself be memory traffic heavy enough to
// perturb the schedulers it is supposed to measure).
func mixLatency() Kernel {
	const (
		sizeBytes   = 16 << 10
		accesses    = 4000
		computeGap  = 200
		strideLines = 97
	)
	return Kernel{Name: "mix-chase", Body: func(g *Gen) {
		lines := sizeBytes / 64
		idx := 0
		chase := func(n int) {
			for i := 0; i < n; i++ {
				g.LoadDep(uint64(idx) * 64)
				g.Compute(computeGap)
				idx = (idx + strideLines) % lines
			}
		}
		chase(lines / 4) // partial warm-up
		g.Mark()
		chase(accesses)
		g.Mark()
	}}
}

// Mixes returns the named multiprogram mixes, in presentation order.
func Mixes() []Mix {
	return []Mix{
		{
			Name:     "streaming",
			Desc:     "every core runs a sequential triad sweep (bandwidth-bound, row-hit heavy)",
			KernelAt: func(i, n int) Kernel { return mixStreaming() },
		},
		{
			Name:     "latency",
			Desc:     "every core runs a dependent pointer chase (latency-bound, row-miss heavy)",
			KernelAt: func(i, n int) Kernel { return mixLatency() },
		},
		{
			Name: "mixed",
			Desc: "the last core chases pointers, the rest stream (the BLISS-vs-FR-FCFS fairness scenario)",
			KernelAt: func(i, n int) Kernel {
				// Bandwidth hogs plus one latency-sensitive program: the
				// hogs' open-row runs starve each other (and delay the
				// chase) under FR-FCFS's row-hit-first greed, and BLISS's
				// streak cap is supposed to bound the damage.
				if i == n-1 {
					return mixLatency()
				}
				return mixStreaming()
			},
		},
	}
}

// MixNames returns the names of all defined mixes, in order.
func MixNames() []string {
	ms := Mixes()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name
	}
	return names
}

// MixByName resolves a mix by name.
func MixByName(name string) (Mix, error) {
	for _, m := range Mixes() {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q (have %v)", name, MixNames())
}

// CoreStream returns core i-of-n's stream: its kernel relocated into the
// core's private window. The same stream, run alone on a single-core
// system, is the baseline of the core's slowdown.
func (m Mix) CoreStream(i, n int) Stream {
	return OffsetStream(m.KernelAt(i, n).Stream(), uint64(i)*MixWindowBytes)
}

// Streams returns the n per-core streams of the mix, in core order.
func (m Mix) Streams(n int) []Stream {
	out := make([]Stream, n)
	for i := range out {
		out[i] = m.CoreStream(i, n)
	}
	return out
}

// OffsetStream returns s with every operand address shifted up by delta
// bytes (RowClone sources included), relocating a kernel into a private
// window without touching its access pattern.
func OffsetStream(s Stream, delta uint64) Stream {
	if delta == 0 {
		return s
	}
	return &offsetStream{s: s, delta: delta}
}

type offsetStream struct {
	s     Stream
	delta uint64
}

func (o *offsetStream) Next(op *Op) bool {
	if !o.s.Next(op) {
		return false
	}
	switch op.Kind {
	case OpLoad, OpStore, OpFlush:
		op.Addr += o.delta
	case OpRowClone:
		op.Addr += o.delta
		op.Src += o.delta
	}
	return true
}

func (o *offsetStream) Close() { o.s.Close() }
