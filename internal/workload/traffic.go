package workload

// Synthetic traffic generators: the classic microbenchmark patterns used to
// stress memory systems (streaming, random, strided, pointer chase with
// compute). They complement the PolyBench kernels with controllable memory
// intensity, and back the ablation studies.

// StreamTriad is the STREAM triad: a[i] = b[i] + s*c[i] over n doubles.
func StreamTriad(n int) Kernel {
	return Kernel{Name: "stream-triad", Body: func(g *Gen) {
		ar := NewArena(0)
		a, b, c := ar.Vec(n), ar.Vec(n), ar.Vec(n)
		for i := 0; i < n; i++ {
			g.Load(b.At(i))
			g.Load(c.At(i))
			g.Compute(2)
			g.Store(a.At(i))
		}
	}}
}

// RandomAccess performs n independent loads spread pseudo-randomly over a
// working set of sizeBytes (GUPS-style). The address sequence is a
// deterministic LCG, so runs are reproducible.
func RandomAccess(sizeBytes, n int) Kernel {
	return Kernel{Name: "random-access", Body: func(g *Gen) {
		lines := uint64(sizeBytes / 64)
		if lines == 0 {
			lines = 1
		}
		state := uint64(88172645463325252)
		for i := 0; i < n; i++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			g.Load((state % lines) * 64)
		}
	}}
}

// Strided walks a region with a fixed byte stride (bank-conflict and
// row-buffer studies).
func Strided(startAddr uint64, strideBytes, n int) Kernel {
	return Kernel{Name: "strided", Body: func(g *Gen) {
		for i := 0; i < n; i++ {
			g.Load(startAddr + uint64(i*strideBytes))
		}
	}}
}

// ComputeBound interleaves compute bursts with occasional misses, giving a
// configurable miss rate: one load per `gap` compute instructions over a
// large working set.
func ComputeBound(gap int, n int) Kernel {
	return Kernel{Name: "compute-bound", Body: func(g *Gen) {
		for i := 0; i < n; i++ {
			g.Compute(int64(gap))
			g.Load(uint64(i) * 131072)
		}
	}}
}
