package workload

// PolyBench kernel op-stream generators. Each generator follows the loop
// nest of the corresponding PolyBench/C kernel: every array-element read
// emits a load, every write a store, and the arithmetic between them is
// charged as compute instructions. Sizes are parameters; the suites at the
// bottom provide the dimension sets used by the paper's experiments.

// PBGemm is C = alpha*A*B + beta*C.
func PBGemm(ni, nj, nk int) Kernel {
	return Kernel{Name: "gemm", Body: func(g *Gen) {
		ar := NewArena(0)
		c, a, b := ar.Mat(ni, nj), ar.Mat(ni, nk), ar.Mat(nk, nj)
		for i := 0; i < ni; i++ {
			for j := 0; j < nj; j++ {
				g.Load(c.At(i, j))
				g.Compute(1)
				g.Store(c.At(i, j))
			}
			for k := 0; k < nk; k++ {
				g.Load(a.At(i, k))
				for j := 0; j < nj; j++ {
					g.Load(b.At(k, j))
					g.Load(c.At(i, j))
					g.Compute(2)
					g.Store(c.At(i, j))
				}
			}
		}
	}}
}

// PBGemver is the BLAS gemver composite kernel.
func PBGemver(n int) Kernel {
	return Kernel{Name: "gemver", Body: func(g *Gen) {
		ar := NewArena(0)
		a := ar.Mat(n, n)
		u1, v1, u2, v2 := ar.Vec(n), ar.Vec(n), ar.Vec(n), ar.Vec(n)
		x, y, z, w := ar.Vec(n), ar.Vec(n), ar.Vec(n), ar.Vec(n)
		for i := 0; i < n; i++ {
			g.Load(u1.At(i))
			g.Load(u2.At(i))
			for j := 0; j < n; j++ {
				g.Load(a.At(i, j))
				g.Load(v1.At(j))
				g.Load(v2.At(j))
				g.Compute(4)
				g.Store(a.At(i, j))
			}
		}
		for i := 0; i < n; i++ {
			g.Load(x.At(i))
			for j := 0; j < n; j++ {
				g.Load(a.At(j, i)) // transposed access
				g.Load(y.At(j))
				g.Compute(2)
			}
			g.Store(x.At(i))
		}
		for i := 0; i < n; i++ {
			g.Load(x.At(i))
			g.Load(z.At(i))
			g.Compute(1)
			g.Store(x.At(i))
		}
		for i := 0; i < n; i++ {
			g.Compute(1)
			for j := 0; j < n; j++ {
				g.Load(a.At(i, j))
				g.Load(x.At(j))
				g.Compute(2)
			}
			g.Store(w.At(i))
		}
	}}
}

// PBGesummv is y = alpha*A*x + beta*B*x.
func PBGesummv(n int) Kernel {
	return Kernel{Name: "gesummv", Body: func(g *Gen) {
		ar := NewArena(0)
		a, b := ar.Mat(n, n), ar.Mat(n, n)
		x, y := ar.Vec(n), ar.Vec(n)
		for i := 0; i < n; i++ {
			g.Compute(2)
			for j := 0; j < n; j++ {
				g.Load(a.At(i, j))
				g.Load(b.At(i, j))
				g.Load(x.At(j))
				g.Compute(4)
			}
			g.Compute(3)
			g.Store(y.At(i))
		}
	}}
}

// PBSyrk is C = alpha*A*A^T + beta*C on the lower triangle.
func PBSyrk(n, m int) Kernel {
	return Kernel{Name: "syrk", Body: func(g *Gen) {
		ar := NewArena(0)
		c, a := ar.Mat(n, n), ar.Mat(n, m)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				g.Load(c.At(i, j))
				g.Compute(1)
				g.Store(c.At(i, j))
			}
			for k := 0; k < m; k++ {
				g.Load(a.At(i, k))
				for j := 0; j <= i; j++ {
					g.Load(a.At(j, k))
					g.Load(c.At(i, j))
					g.Compute(2)
					g.Store(c.At(i, j))
				}
			}
		}
	}}
}

// PBSyr2k is C = alpha*(A*B^T + B*A^T) + beta*C on the lower triangle.
func PBSyr2k(n, m int) Kernel {
	return Kernel{Name: "syr2k", Body: func(g *Gen) {
		ar := NewArena(0)
		c, a, b := ar.Mat(n, n), ar.Mat(n, m), ar.Mat(n, m)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				g.Load(c.At(i, j))
				g.Compute(1)
				g.Store(c.At(i, j))
			}
			for k := 0; k < m; k++ {
				g.Load(a.At(i, k))
				g.Load(b.At(i, k))
				for j := 0; j <= i; j++ {
					g.Load(a.At(j, k))
					g.Load(b.At(j, k))
					g.Load(c.At(i, j))
					g.Compute(5)
					g.Store(c.At(i, j))
				}
			}
		}
	}}
}

// PBSymm is C = alpha*A*B + beta*C with symmetric A.
func PBSymm(m, n int) Kernel {
	return Kernel{Name: "symm", Body: func(g *Gen) {
		ar := NewArena(0)
		c, a, b := ar.Mat(m, n), ar.Mat(m, m), ar.Mat(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				g.Load(b.At(i, j))
				for k := 0; k < i; k++ {
					g.Load(a.At(i, k))
					g.Load(c.At(k, j))
					g.Compute(2)
					g.Store(c.At(k, j))
					g.Load(b.At(k, j))
					g.Compute(2)
				}
				g.Load(c.At(i, j))
				g.Load(a.At(i, i))
				g.Compute(4)
				g.Store(c.At(i, j))
			}
		}
	}}
}

// PBTrmm is B = alpha*A^T*B with unit-lower-triangular A.
func PBTrmm(m, n int) Kernel {
	return Kernel{Name: "trmm", Body: func(g *Gen) {
		ar := NewArena(0)
		a, b := ar.Mat(m, m), ar.Mat(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				g.Load(b.At(i, j))
				for k := i + 1; k < m; k++ {
					g.Load(a.At(k, i))
					g.Load(b.At(k, j))
					g.Compute(2)
				}
				g.Compute(1)
				g.Store(b.At(i, j))
			}
		}
	}}
}

// PB2mm is D = alpha*A*B*C + beta*D.
func PB2mm(ni, nj, nk, nl int) Kernel {
	return Kernel{Name: "2mm", Body: func(g *Gen) {
		ar := NewArena(0)
		tmp, a, b := ar.Mat(ni, nj), ar.Mat(ni, nk), ar.Mat(nk, nj)
		c, d := ar.Mat(nj, nl), ar.Mat(ni, nl)
		for i := 0; i < ni; i++ {
			for j := 0; j < nj; j++ {
				g.Compute(1)
				for k := 0; k < nk; k++ {
					g.Load(a.At(i, k))
					g.Load(b.At(k, j))
					g.Compute(2)
				}
				g.Store(tmp.At(i, j))
			}
		}
		for i := 0; i < ni; i++ {
			for j := 0; j < nl; j++ {
				g.Load(d.At(i, j))
				g.Compute(1)
				for k := 0; k < nj; k++ {
					g.Load(tmp.At(i, k))
					g.Load(c.At(k, j))
					g.Compute(2)
				}
				g.Store(d.At(i, j))
			}
		}
	}}
}

// PB3mm is G = (A*B)*(C*D).
func PB3mm(ni, nj, nk, nl, nm int) Kernel {
	return Kernel{Name: "3mm", Body: func(g *Gen) {
		ar := NewArena(0)
		e, a, b := ar.Mat(ni, nj), ar.Mat(ni, nk), ar.Mat(nk, nj)
		f, c, d := ar.Mat(nj, nl), ar.Mat(nj, nm), ar.Mat(nm, nl)
		gg := ar.Mat(ni, nl)
		mm := func(dst, x, y Mat, p, q, r int) {
			for i := 0; i < p; i++ {
				for j := 0; j < q; j++ {
					for k := 0; k < r; k++ {
						g.Load(x.At(i, k))
						g.Load(y.At(k, j))
						g.Compute(2)
					}
					g.Store(dst.At(i, j))
				}
			}
		}
		mm(e, a, b, ni, nj, nk)
		mm(f, c, d, nj, nl, nm)
		mm(gg, e, f, ni, nl, nj)
	}}
}

// PBAtax is y = A^T*(A*x).
func PBAtax(m, n int) Kernel {
	return Kernel{Name: "atax", Body: func(g *Gen) {
		ar := NewArena(0)
		a := ar.Mat(m, n)
		x, y, tmp := ar.Vec(n), ar.Vec(n), ar.Vec(m)
		for i := 0; i < n; i++ {
			g.Store(y.At(i))
		}
		for i := 0; i < m; i++ {
			g.Compute(1)
			for j := 0; j < n; j++ {
				g.Load(a.At(i, j))
				g.Load(x.At(j))
				g.Compute(2)
			}
			g.Store(tmp.At(i))
			g.Load(tmp.At(i))
			for j := 0; j < n; j++ {
				g.Load(y.At(j))
				g.Load(a.At(i, j))
				g.Compute(2)
				g.Store(y.At(j))
			}
		}
	}}
}

// PBBicg is the BiCG sub-kernel: s = A^T*r, q = A*p.
func PBBicg(m, n int) Kernel {
	return Kernel{Name: "bicg", Body: func(g *Gen) {
		ar := NewArena(0)
		a := ar.Mat(n, m)
		s, q, p, r := ar.Vec(m), ar.Vec(n), ar.Vec(m), ar.Vec(n)
		for i := 0; i < m; i++ {
			g.Store(s.At(i))
		}
		for i := 0; i < n; i++ {
			g.Compute(1)
			g.Load(r.At(i))
			for j := 0; j < m; j++ {
				g.Load(s.At(j))
				g.Load(a.At(i, j))
				g.Compute(2)
				g.Store(s.At(j))
				g.Load(a.At(i, j))
				g.Load(p.At(j))
				g.Compute(2)
			}
			g.Store(q.At(i))
		}
	}}
}

// PBDoitgen is the multiresolution analysis kernel.
func PBDoitgen(nr, nq, np int) Kernel {
	return Kernel{Name: "doitgen", Body: func(g *Gen) {
		ar := NewArena(0)
		a := ar.Cube(nr, nq, np)
		c4 := ar.Mat(np, np)
		sum := ar.Vec(np)
		for r := 0; r < nr; r++ {
			for q := 0; q < nq; q++ {
				for p := 0; p < np; p++ {
					g.Compute(1)
					for s := 0; s < np; s++ {
						g.Load(a.At(r, q, s))
						g.Load(c4.At(s, p))
						g.Compute(2)
					}
					g.Store(sum.At(p))
				}
				for p := 0; p < np; p++ {
					g.Load(sum.At(p))
					g.Store(a.At(r, q, p))
				}
			}
		}
	}}
}

// PBMvt is x1 += A*y1; x2 += A^T*y2.
func PBMvt(n int) Kernel {
	return Kernel{Name: "mvt", Body: func(g *Gen) {
		ar := NewArena(0)
		a := ar.Mat(n, n)
		x1, x2, y1, y2 := ar.Vec(n), ar.Vec(n), ar.Vec(n), ar.Vec(n)
		for i := 0; i < n; i++ {
			g.Load(x1.At(i))
			for j := 0; j < n; j++ {
				g.Load(a.At(i, j))
				g.Load(y1.At(j))
				g.Compute(2)
			}
			g.Store(x1.At(i))
		}
		for i := 0; i < n; i++ {
			g.Load(x2.At(i))
			for j := 0; j < n; j++ {
				g.Load(a.At(j, i))
				g.Load(y2.At(j))
				g.Compute(2)
			}
			g.Store(x2.At(i))
		}
	}}
}

// PBCholesky is the Cholesky decomposition.
func PBCholesky(n int) Kernel {
	return Kernel{Name: "cholesky", Body: func(g *Gen) {
		ar := NewArena(0)
		a := ar.Mat(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				g.Load(a.At(i, j))
				for k := 0; k < j; k++ {
					g.Load(a.At(i, k))
					g.Load(a.At(j, k))
					g.Compute(2)
				}
				g.Load(a.At(j, j))
				g.Compute(1)
				g.Store(a.At(i, j))
			}
			g.Load(a.At(i, i))
			for k := 0; k < i; k++ {
				g.Load(a.At(i, k))
				g.Compute(2)
			}
			g.Compute(8) // sqrt
			g.Store(a.At(i, i))
		}
	}}
}

// PBDurbin is the Durbin Toeplitz solver (the paper's least memory-
// intensive workload: MPKI ~ 0.01).
func PBDurbin(n int) Kernel {
	return Kernel{Name: "durbin", Body: func(g *Gen) {
		ar := NewArena(0)
		r, y, z := ar.Vec(n), ar.Vec(n), ar.Vec(n)
		g.Load(r.At(0))
		g.Store(y.At(0))
		g.Compute(3)
		for k := 1; k < n; k++ {
			g.Compute(2)
			g.Load(r.At(k))
			for i := 0; i < k; i++ {
				g.Load(r.At(k - i - 1))
				g.Load(y.At(i))
				g.Compute(2)
			}
			g.Compute(4)
			for i := 0; i < k; i++ {
				g.Load(y.At(i))
				g.Load(y.At(k - i - 1))
				g.Compute(2)
				g.Store(z.At(i))
			}
			for i := 0; i < k; i++ {
				g.Load(z.At(i))
				g.Store(y.At(i))
			}
			g.Store(y.At(k))
		}
	}}
}

// PBGramschmidt is the modified Gram-Schmidt QR decomposition.
func PBGramschmidt(m, n int) Kernel {
	return Kernel{Name: "gramschmidt", Body: func(g *Gen) {
		ar := NewArena(0)
		a, q, r := ar.Mat(m, n), ar.Mat(m, n), ar.Mat(n, n)
		for k := 0; k < n; k++ {
			g.Compute(1)
			for i := 0; i < m; i++ {
				g.Load(a.At(i, k))
				g.Compute(2)
			}
			g.Compute(8) // sqrt
			g.Store(r.At(k, k))
			for i := 0; i < m; i++ {
				g.Load(a.At(i, k))
				g.Load(r.At(k, k))
				g.Compute(1)
				g.Store(q.At(i, k))
			}
			for j := k + 1; j < n; j++ {
				g.Compute(1)
				for i := 0; i < m; i++ {
					g.Load(q.At(i, k))
					g.Load(a.At(i, j))
					g.Compute(2)
				}
				g.Store(r.At(k, j))
				for i := 0; i < m; i++ {
					g.Load(a.At(i, j))
					g.Load(q.At(i, k))
					g.Load(r.At(k, j))
					g.Compute(2)
					g.Store(a.At(i, j))
				}
			}
		}
	}}
}

// PBLu is LU decomposition without pivoting.
func PBLu(n int) Kernel {
	return Kernel{Name: "lu", Body: func(g *Gen) {
		ar := NewArena(0)
		a := ar.Mat(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				g.Load(a.At(i, j))
				for k := 0; k < j; k++ {
					g.Load(a.At(i, k))
					g.Load(a.At(k, j))
					g.Compute(2)
				}
				g.Load(a.At(j, j))
				g.Compute(1)
				g.Store(a.At(i, j))
			}
			for j := i; j < n; j++ {
				g.Load(a.At(i, j))
				for k := 0; k < i; k++ {
					g.Load(a.At(i, k))
					g.Load(a.At(k, j))
					g.Compute(2)
				}
				g.Store(a.At(i, j))
			}
		}
	}}
}

// PBTrisolv is forward substitution for a lower-triangular system.
func PBTrisolv(n int) Kernel {
	return Kernel{Name: "trisolv", Body: func(g *Gen) {
		ar := NewArena(0)
		l := ar.Mat(n, n)
		x, b := ar.Vec(n), ar.Vec(n)
		for i := 0; i < n; i++ {
			g.Load(b.At(i))
			for j := 0; j < i; j++ {
				g.Load(l.At(i, j))
				g.Load(x.At(j))
				g.Compute(2)
			}
			g.Load(l.At(i, i))
			g.Compute(1)
			g.Store(x.At(i))
		}
	}}
}

// PBCorrelation computes the correlation matrix of an m x n dataset.
func PBCorrelation(m, n int) Kernel {
	return Kernel{Name: "correlation", Body: func(g *Gen) {
		ar := NewArena(0)
		data := ar.Mat(n, m)
		corr := ar.Mat(m, m)
		mean, stddev := ar.Vec(m), ar.Vec(m)
		for j := 0; j < m; j++ {
			g.Compute(1)
			for i := 0; i < n; i++ {
				g.Load(data.At(i, j))
				g.Compute(1)
			}
			g.Compute(1)
			g.Store(mean.At(j))
		}
		for j := 0; j < m; j++ {
			g.Load(mean.At(j))
			g.Compute(1)
			for i := 0; i < n; i++ {
				g.Load(data.At(i, j))
				g.Compute(3)
			}
			g.Compute(10) // sqrt + guard
			g.Store(stddev.At(j))
		}
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				g.Load(data.At(i, j))
				g.Load(mean.At(j))
				g.Load(stddev.At(j))
				g.Compute(3)
				g.Store(data.At(i, j))
			}
		}
		for i := 0; i < m-1; i++ {
			g.Store(corr.At(i, i))
			for j := i + 1; j < m; j++ {
				g.Compute(1)
				for k := 0; k < n; k++ {
					g.Load(data.At(k, i))
					g.Load(data.At(k, j))
					g.Compute(2)
				}
				g.Store(corr.At(i, j))
				g.Store(corr.At(j, i))
			}
		}
	}}
}

// PBCovariance computes the covariance matrix of an m x n dataset.
func PBCovariance(m, n int) Kernel {
	return Kernel{Name: "covariance", Body: func(g *Gen) {
		ar := NewArena(0)
		data := ar.Mat(n, m)
		cov := ar.Mat(m, m)
		mean := ar.Vec(m)
		for j := 0; j < m; j++ {
			g.Compute(1)
			for i := 0; i < n; i++ {
				g.Load(data.At(i, j))
				g.Compute(1)
			}
			g.Compute(1)
			g.Store(mean.At(j))
		}
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				g.Load(data.At(i, j))
				g.Load(mean.At(j))
				g.Compute(1)
				g.Store(data.At(i, j))
			}
		}
		for i := 0; i < m; i++ {
			for j := i; j < m; j++ {
				g.Compute(1)
				for k := 0; k < n; k++ {
					g.Load(data.At(k, i))
					g.Load(data.At(k, j))
					g.Compute(2)
				}
				g.Compute(1)
				g.Store(cov.At(i, j))
				g.Store(cov.At(j, i))
			}
		}
	}}
}

// PBDeriche is the Deriche recursive edge filter over a w x h image.
func PBDeriche(w, h int) Kernel {
	return Kernel{Name: "deriche", Body: func(g *Gen) {
		ar := NewArena(0)
		imgIn, imgOut := ar.Mat(w, h), ar.Mat(w, h)
		y1, y2 := ar.Mat(w, h), ar.Mat(w, h)
		for i := 0; i < w; i++ {
			g.Compute(3)
			for j := 0; j < h; j++ {
				g.Load(imgIn.At(i, j))
				g.Compute(6)
				g.Store(y1.At(i, j))
			}
		}
		for i := 0; i < w; i++ {
			g.Compute(3)
			for j := h - 1; j >= 0; j-- {
				g.Load(imgIn.At(i, j))
				g.Compute(6)
				g.Store(y2.At(i, j))
			}
		}
		for i := 0; i < w; i++ {
			for j := 0; j < h; j++ {
				g.Load(y1.At(i, j))
				g.Load(y2.At(i, j))
				g.Compute(2)
				g.Store(imgOut.At(i, j))
			}
		}
		for j := 0; j < h; j++ {
			g.Compute(3)
			for i := 0; i < w; i++ {
				g.Load(imgOut.At(i, j))
				g.Compute(6)
				g.Store(y1.At(i, j))
			}
		}
		for j := 0; j < h; j++ {
			g.Compute(3)
			for i := w - 1; i >= 0; i-- {
				g.Load(imgOut.At(i, j))
				g.Compute(6)
				g.Store(y2.At(i, j))
			}
		}
		for i := 0; i < w; i++ {
			for j := 0; j < h; j++ {
				g.Load(y1.At(i, j))
				g.Load(y2.At(i, j))
				g.Compute(2)
				g.Store(imgOut.At(i, j))
			}
		}
	}}
}

// PBFloydWarshall is all-pairs shortest paths.
func PBFloydWarshall(n int) Kernel {
	return Kernel{Name: "floyd-warshall", Body: func(g *Gen) {
		ar := NewArena(0)
		p := ar.Mat(n, n)
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				g.Load(p.At(i, k))
				for j := 0; j < n; j++ {
					g.Load(p.At(i, j))
					g.Load(p.At(k, j))
					g.Compute(2)
					g.Store(p.At(i, j))
				}
			}
		}
	}}
}

// PBAdi is the alternating-direction-implicit stencil.
func PBAdi(n, tsteps int) Kernel {
	return Kernel{Name: "adi", Body: func(g *Gen) {
		ar := NewArena(0)
		u, v, p, q := ar.Mat(n, n), ar.Mat(n, n), ar.Mat(n, n), ar.Mat(n, n)
		for t := 0; t < tsteps; t++ {
			for i := 1; i < n-1; i++ {
				g.Store(v.At(0, i))
				g.Store(p.At(i, 0))
				g.Store(q.At(i, 0))
				for j := 1; j < n-1; j++ {
					g.Load(p.At(i, j-1))
					g.Load(q.At(i, j-1))
					g.Load(u.At(j, i-1))
					g.Load(u.At(j, i))
					g.Load(u.At(j, i+1))
					g.Compute(10)
					g.Store(p.At(i, j))
					g.Store(q.At(i, j))
				}
				for j := n - 2; j >= 1; j-- {
					g.Load(p.At(i, j))
					g.Load(v.At(j+1, i))
					g.Load(q.At(i, j))
					g.Compute(2)
					g.Store(v.At(j, i))
				}
			}
			for i := 1; i < n-1; i++ {
				g.Store(u.At(i, 0))
				g.Store(p.At(i, 0))
				g.Store(q.At(i, 0))
				for j := 1; j < n-1; j++ {
					g.Load(p.At(i, j-1))
					g.Load(q.At(i, j-1))
					g.Load(v.At(i-1, j))
					g.Load(v.At(i, j))
					g.Load(v.At(i+1, j))
					g.Compute(10)
					g.Store(p.At(i, j))
					g.Store(q.At(i, j))
				}
				for j := n - 2; j >= 1; j-- {
					g.Load(p.At(i, j))
					g.Load(u.At(i, j+1))
					g.Load(q.At(i, j))
					g.Compute(2)
					g.Store(u.At(i, j))
				}
			}
		}
	}}
}

// PBFdtd2d is the 2-D finite-difference time-domain stencil.
func PBFdtd2d(nx, ny, tsteps int) Kernel {
	return Kernel{Name: "fdtd-2d", Body: func(g *Gen) {
		ar := NewArena(0)
		ex, ey, hz := ar.Mat(nx, ny), ar.Mat(nx, ny), ar.Mat(nx, ny)
		for t := 0; t < tsteps; t++ {
			for j := 0; j < ny; j++ {
				g.Store(ey.At(0, j))
			}
			for i := 1; i < nx; i++ {
				for j := 0; j < ny; j++ {
					g.Load(ey.At(i, j))
					g.Load(hz.At(i, j))
					g.Load(hz.At(i-1, j))
					g.Compute(2)
					g.Store(ey.At(i, j))
				}
			}
			for i := 0; i < nx; i++ {
				for j := 1; j < ny; j++ {
					g.Load(ex.At(i, j))
					g.Load(hz.At(i, j))
					g.Load(hz.At(i, j-1))
					g.Compute(2)
					g.Store(ex.At(i, j))
				}
			}
			for i := 0; i < nx-1; i++ {
				for j := 0; j < ny-1; j++ {
					g.Load(hz.At(i, j))
					g.Load(ex.At(i, j+1))
					g.Load(ex.At(i, j))
					g.Load(ey.At(i+1, j))
					g.Load(ey.At(i, j))
					g.Compute(5)
					g.Store(hz.At(i, j))
				}
			}
		}
	}}
}

// PBHeat3d is the 3-D heat-equation stencil.
func PBHeat3d(n, tsteps int) Kernel {
	return Kernel{Name: "heat-3d", Body: func(g *Gen) {
		ar := NewArena(0)
		a, b := ar.Cube(n, n, n), ar.Cube(n, n, n)
		step := func(dst, src Cube) {
			for i := 1; i < n-1; i++ {
				for j := 1; j < n-1; j++ {
					for k := 1; k < n-1; k++ {
						g.Load(src.At(i+1, j, k))
						g.Load(src.At(i, j, k))
						g.Load(src.At(i-1, j, k))
						g.Load(src.At(i, j+1, k))
						g.Load(src.At(i, j-1, k))
						g.Load(src.At(i, j, k+1))
						g.Load(src.At(i, j, k-1))
						g.Compute(10)
						g.Store(dst.At(i, j, k))
					}
				}
			}
		}
		for t := 0; t < tsteps; t++ {
			step(b, a)
			step(a, b)
		}
	}}
}

// PBJacobi1d is the 1-D Jacobi stencil.
func PBJacobi1d(n, tsteps int) Kernel {
	return Kernel{Name: "jacobi-1d", Body: func(g *Gen) {
		ar := NewArena(0)
		a, b := ar.Vec(n), ar.Vec(n)
		for t := 0; t < tsteps; t++ {
			for i := 1; i < n-1; i++ {
				g.Load(a.At(i - 1))
				g.Load(a.At(i))
				g.Load(a.At(i + 1))
				g.Compute(3)
				g.Store(b.At(i))
			}
			for i := 1; i < n-1; i++ {
				g.Load(b.At(i - 1))
				g.Load(b.At(i))
				g.Load(b.At(i + 1))
				g.Compute(3)
				g.Store(a.At(i))
			}
		}
	}}
}

// PBJacobi2d is the 2-D Jacobi stencil.
func PBJacobi2d(n, tsteps int) Kernel {
	return Kernel{Name: "jacobi-2d", Body: func(g *Gen) {
		ar := NewArena(0)
		a, b := ar.Mat(n, n), ar.Mat(n, n)
		step := func(dst, src Mat) {
			for i := 1; i < n-1; i++ {
				for j := 1; j < n-1; j++ {
					g.Load(src.At(i, j))
					g.Load(src.At(i, j-1))
					g.Load(src.At(i, j+1))
					g.Load(src.At(i-1, j))
					g.Load(src.At(i+1, j))
					g.Compute(5)
					g.Store(dst.At(i, j))
				}
			}
		}
		for t := 0; t < tsteps; t++ {
			step(b, a)
			step(a, b)
		}
	}}
}

// PBSeidel2d is the 2-D Gauss-Seidel stencil.
func PBSeidel2d(n, tsteps int) Kernel {
	return Kernel{Name: "seidel-2d", Body: func(g *Gen) {
		ar := NewArena(0)
		a := ar.Mat(n, n)
		for t := 0; t < tsteps; t++ {
			for i := 1; i < n-1; i++ {
				for j := 1; j < n-1; j++ {
					g.Load(a.At(i-1, j-1))
					g.Load(a.At(i-1, j))
					g.Load(a.At(i-1, j+1))
					g.Load(a.At(i, j-1))
					g.Load(a.At(i, j))
					g.Load(a.At(i, j+1))
					g.Load(a.At(i+1, j-1))
					g.Load(a.At(i+1, j))
					g.Load(a.At(i+1, j+1))
					g.Compute(9)
					g.Store(a.At(i, j))
				}
			}
		}
	}}
}

// PBLudcmp is LU decomposition followed by forward/backward substitution
// (not part of the paper's 28-kernel validation set; provided for
// completeness of the PolyBench linear-algebra solvers).
func PBLudcmp(n int) Kernel {
	return Kernel{Name: "ludcmp", Body: func(g *Gen) {
		ar := NewArena(0)
		a := ar.Mat(n, n)
		b, x, y := ar.Vec(n), ar.Vec(n), ar.Vec(n)
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				g.Load(a.At(i, j))
				for k := 0; k < j; k++ {
					g.Load(a.At(i, k))
					g.Load(a.At(k, j))
					g.Compute(2)
				}
				g.Load(a.At(j, j))
				g.Compute(1)
				g.Store(a.At(i, j))
			}
			for j := i; j < n; j++ {
				g.Load(a.At(i, j))
				for k := 0; k < i; k++ {
					g.Load(a.At(i, k))
					g.Load(a.At(k, j))
					g.Compute(2)
				}
				g.Store(a.At(i, j))
			}
		}
		for i := 0; i < n; i++ {
			g.Load(b.At(i))
			for j := 0; j < i; j++ {
				g.Load(a.At(i, j))
				g.Load(y.At(j))
				g.Compute(2)
			}
			g.Store(y.At(i))
		}
		for i := n - 1; i >= 0; i-- {
			g.Load(y.At(i))
			for j := i + 1; j < n; j++ {
				g.Load(a.At(i, j))
				g.Load(x.At(j))
				g.Compute(2)
			}
			g.Load(a.At(i, i))
			g.Compute(1)
			g.Store(x.At(i))
		}
	}}
}

// PBNussinov is the Nussinov RNA secondary-structure dynamic program (also
// outside the paper's validation set; provided for completeness).
func PBNussinov(n int) Kernel {
	return Kernel{Name: "nussinov", Body: func(g *Gen) {
		ar := NewArena(0)
		table := ar.Mat(n, n)
		seq := ar.Vec(n)
		for i := n - 1; i >= 0; i-- {
			for j := i + 1; j < n; j++ {
				g.Load(table.At(i, j))
				if j-1 >= 0 {
					g.Load(table.At(i, j-1))
					g.Compute(1)
				}
				if i+1 < n {
					g.Load(table.At(i+1, j))
					g.Compute(1)
				}
				if j-1 >= 0 && i+1 < n {
					g.Load(table.At(i+1, j-1))
					g.Load(seq.At(i))
					g.Load(seq.At(j))
					g.Compute(3)
				}
				for k := i + 1; k < j; k++ {
					g.Load(table.At(i, k))
					g.Load(table.At(k+1, j))
					g.Compute(2)
				}
				g.Store(table.At(i, j))
			}
		}
	}}
}
