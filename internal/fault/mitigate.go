package fault

import "fmt"

// Mitigator is a RowHammer mitigation policy plugged into the software
// memory controller, the same way BLISS plugs in as a scheduler: the SMC
// consults it on every row activation (the only command that disturbs
// neighbours) and refreshes whatever victim rows it nominates before
// opening the target row. Implementations are per-channel (the controller
// owns one instance each, like cloned schedulers) and must be
// deterministic: draws key on seeded counters, never on host state.
type Mitigator interface {
	// Name identifies the policy ("para", "trr").
	Name() string
	// OnActivate observes an ACT of (bank, row) and appends the victim
	// rows to refresh before it to victims, returning the extended slice.
	// Most calls return it unchanged.
	OnActivate(bank, row int, victims []int) []int
}

// MitigationConfig selects and parameterises a mitigation policy.
type MitigationConfig struct {
	// Policy names the mitigation: "" or "none" disables it, "para" is
	// probabilistic adjacent-row refresh, "trr" is counter-overflow
	// target-row-refresh.
	Policy string
	// PARAProb is PARA's per-activation refresh probability (0 selects the
	// default, 1/16).
	PARAProb float64
	// TRRThreshold is TRR's per-row activation budget before its
	// neighbours are refreshed (0 selects the default, 16). Choosing it so
	// 2*TRRThreshold stays below the chip's minimum disturb threshold makes
	// the policy structurally flip-free.
	TRRThreshold int
	// Seed salts PARA's draws.
	Seed uint64
}

// Enabled reports whether a policy is selected.
func (c MitigationConfig) Enabled() bool { return c.Policy != "" && c.Policy != "none" }

// Validate reports configuration errors.
func (c MitigationConfig) Validate() error {
	switch c.Policy {
	case "", "none", "para", "trr":
	default:
		return fmt.Errorf("fault: unknown mitigation policy %q (want none, para, or trr)", c.Policy)
	}
	if err := checkRate("PARA refresh", c.PARAProb); err != nil {
		return err
	}
	if c.TRRThreshold < 0 {
		return fmt.Errorf("fault: TRR threshold must be non-negative, got %d", c.TRRThreshold)
	}
	return nil
}

// NewMitigator constructs the policy instance for one channel (nil when no
// policy is selected). rowsPerBank bounds victim addresses; channel
// diversifies PARA's seed the way per-rank seeds diversify the chip models.
func NewMitigator(cfg MitigationConfig, rowsPerBank, channel int) (Mitigator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	if rowsPerBank <= 0 {
		return nil, fmt.Errorf("fault: mitigation needs a positive rows-per-bank, got %d", rowsPerBank)
	}
	switch cfg.Policy {
	case "para":
		p := cfg.PARAProb
		if p == 0 {
			p = 1.0 / 16
		}
		return &para{
			rows: rowsPerBank,
			seed: splitmix(cfg.Seed ^ saltPARA ^ uint64(channel)*0x9e3779b97f4a7c15),
			p:    rateToThreshold(p),
		}, nil
	case "trr":
		th := cfg.TRRThreshold
		if th == 0 {
			th = 16
		}
		return &trr{rows: rowsPerBank, threshold: int32(th), counts: map[uint64]int32{}}, nil
	}
	panic("unreachable")
}

// para is PARA (Kim et al., ISCA 2014): on every activation, refresh the
// target's neighbours with a small probability. Stateless beyond a draw
// counter, so its protection is probabilistic — a long enough unlucky gap
// can still let a flip escape, which the disturb sweep makes visible.
type para struct {
	rows int
	seed uint64
	acts uint64
	p    uint64
}

func (m *para) Name() string { return "para" }

func (m *para) OnActivate(bank, row int, victims []int) []int {
	m.acts++
	if splitmix(m.seed^m.acts*0x9e3779b97f4a7c15)>>32 >= m.p {
		return victims
	}
	return appendVictims(victims, row, m.rows)
}

// trr is counter-overflow target-row-refresh: an exact per-row activation
// counter (the modeled SMC has ordinary memory, so unlike in-DRAM TRR it
// needs no sampling); when a row's count crosses the threshold, its
// neighbours are refreshed and the count resets. Victim counters therefore
// never exceed 2*threshold between refreshes, so a threshold below half the
// chip's minimum disturb threshold guarantees zero escaped flips.
type trr struct {
	rows      int
	threshold int32
	counts    map[uint64]int32
}

func (m *trr) Name() string { return "trr" }

func (m *trr) OnActivate(bank, row int, victims []int) []int {
	k := uint64(bank)<<40 | uint64(uint32(row))
	n := m.counts[k] + 1
	if n < m.threshold {
		m.counts[k] = n
		return victims
	}
	m.counts[k] = 0
	return appendVictims(victims, row, m.rows)
}

func appendVictims(victims []int, row, rows int) []int {
	if row > 0 {
		victims = append(victims, row-1)
	}
	if row+1 < rows {
		victims = append(victims, row+1)
	}
	return victims
}
