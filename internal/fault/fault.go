// Package fault models silicon and host-link failures for the EasyDRAM
// stack, plus the controller-side recovery contract used to survive them.
//
// Injection is split by layer, mirroring where real failures originate:
//
//   - ChipModel: cell-level faults observed through DRAM commands — read
//     disturb (RowHammer-style bit flips in rows physically adjacent to a
//     heavily activated aggressor), transient read corruption, and stuck-at
//     lines that never read back correctly;
//   - LinkModel: host-interface faults at the EasyTile/DRAM Bender seam —
//     transient program-launch failures, corrupted readback lines, and
//     short (truncated) readbacks;
//   - RecoveryConfig: the SMC's verify-and-retry parameters (bounded
//     attempts, exponential emulated-time backoff, quarantine spares);
//   - MitigationConfig / Mitigator (mitigate.go): pluggable RowHammer
//     mitigation policies consulted on every row activation.
//
// Like internal/variation, every draw is a pure function of (seed, salt,
// coordinates or a monotone event counter) hashed with SplitMix64, so a
// fault trace is reproducible bit-for-bit for a fixed seed regardless of
// host parallelism — the property all fault-determinism tests pin.
package fault

import (
	"fmt"

	"easydram/internal/clock"
)

// Per-property salts, following internal/variation's salt-per-property
// idiom so no two draws ever share a hash stream.
const (
	saltDisturb   = 0xd1577b
	saltTransient = 0x7a9e57
	saltStuck     = 0x57ac4a
	saltFlip      = 0xf11b17
	saltLaunch    = 0x1a07c4
	saltCorrupt   = 0xc0a2b7
	saltDrop      = 0x0d20b5
	saltPARA      = 0x00ba2a
	saltModel     = 0xfa1700
)

// ChipConfig configures chip-level fault injection. The zero value injects
// nothing.
type ChipConfig struct {
	// DisturbEnabled turns on per-row activation disturb counting: every
	// ACT increments a victim counter on the two physically adjacent rows
	// (and restores the activated row's own cells); a victim whose counter
	// crosses its seeded threshold suffers a bit flip.
	DisturbEnabled bool
	// DisturbMinThreshold is the smallest disturb threshold any row can
	// have. A mitigation policy that refreshes victims before any counter
	// reaches it is structurally flip-free.
	DisturbMinThreshold int
	// DisturbJitter spreads per-row thresholds over
	// [DisturbMinThreshold, DisturbMinThreshold+DisturbJitter) with a
	// seeded per-row draw (0 = uniform thresholds).
	DisturbJitter int
	// TransientReadRate is the per-read probability of a transient
	// (retry-correctable) corruption.
	TransientReadRate float64
	// StuckAtRate is the per-line probability that a (bank, row, column)
	// cell group is stuck: its reads are always corrupt, and retrying
	// never helps.
	StuckAtRate float64
	// Seed is an extra user salt mixed into every draw (the chip's own
	// variation seed is mixed in by the model constructor).
	Seed uint64
}

// Enabled reports whether any chip-level injection is configured.
func (c ChipConfig) Enabled() bool {
	return c.DisturbEnabled || c.TransientReadRate > 0 || c.StuckAtRate > 0
}

// Validate reports configuration errors.
func (c ChipConfig) Validate() error {
	if c.DisturbEnabled && c.DisturbMinThreshold <= 0 {
		return fmt.Errorf("fault: disturb threshold must be positive, got %d", c.DisturbMinThreshold)
	}
	if c.DisturbJitter < 0 {
		return fmt.Errorf("fault: disturb jitter must be non-negative, got %d", c.DisturbJitter)
	}
	if err := checkRate("transient read", c.TransientReadRate); err != nil {
		return err
	}
	return checkRate("stuck-at", c.StuckAtRate)
}

// ChipModel draws chip-level faults. One model serves one rank; per-rank
// seed diversity comes from the rank's own variation seed, exactly as the
// variation model gets it.
type ChipModel struct {
	cc   ChipConfig
	seed uint64
	cols int

	transientP uint64 // TransientReadRate scaled to a 32-bit threshold
	stuckP     uint64
	// reads is the monotone read counter transient draws key on: the n-th
	// read of a rank corrupts or not as a pure function of (seed, n), so a
	// fixed command stream replays the identical fault trace.
	reads uint64
}

// NewChipModel builds a model for a rank with the given columns per row.
// seed is the rank's variation seed; cc.Seed is mixed in as a user salt.
func NewChipModel(cc ChipConfig, seed uint64, colsPerRow int) (*ChipModel, error) {
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	if colsPerRow <= 0 {
		return nil, fmt.Errorf("fault: columns per row must be positive, got %d", colsPerRow)
	}
	return &ChipModel{
		cc:         cc,
		seed:       splitmix(seed ^ cc.Seed ^ saltModel),
		cols:       colsPerRow,
		transientP: rateToThreshold(cc.TransientReadRate),
		stuckP:     rateToThreshold(cc.StuckAtRate),
	}, nil
}

// DisturbEnabled reports whether disturb counting is on.
func (m *ChipModel) DisturbEnabled() bool { return m.cc.DisturbEnabled }

// DisturbThreshold returns the activation count at which the given row
// (as a victim) flips a bit. Stable per row.
func (m *ChipModel) DisturbThreshold(bank, row int) int32 {
	th := m.cc.DisturbMinThreshold
	if m.cc.DisturbJitter > 0 {
		th += int(splitmix(m.seed^saltDisturb^key(bank, row, 0)) % uint64(m.cc.DisturbJitter))
	}
	return int32(th)
}

// FlipMask picks the column and single-bit XOR mask of the nth disturb flip
// in (bank, row). Keying on the flip ordinal makes repeated flips of one
// victim land on varying cells.
func (m *ChipModel) FlipMask(bank, row int, nth int64) (col int, mask uint64) {
	h := splitmix(m.seed ^ saltFlip ^ key(bank, row, int(nth)))
	return int(h % uint64(m.cols)), 1 << ((h >> 32) & 63)
}

// TransientRead draws the next read's transient corruption. It advances the
// read counter, so call it exactly once per RD the chip serves.
func (m *ChipModel) TransientRead() (mask uint64, corrupt bool) {
	if m.transientP == 0 {
		return 0, false
	}
	m.reads++
	h := splitmix(m.seed ^ saltTransient ^ m.reads*0x9e3779b97f4a7c15)
	if h>>32 >= m.transientP {
		return 0, false
	}
	return nonzero(splitmix(h)), true
}

// StuckAt reports whether the (bank, row, col) line is stuck, with the XOR
// mask its reads come back corrupted by. Stable per line.
func (m *ChipModel) StuckAt(bank, row, col int) (mask uint64, stuck bool) {
	if m.stuckP == 0 {
		return 0, false
	}
	h := splitmix(m.seed ^ saltStuck ^ key(bank, row, col))
	if h>>32 >= m.stuckP {
		return 0, false
	}
	return nonzero(splitmix(h)), true
}

// LinkConfig configures host-link fault injection at the tile/Bender seam.
// The zero value injects nothing.
type LinkConfig struct {
	// ExecFailRate is the per-program probability that launching a Bender
	// program fails transiently (nothing executes; the SMC must re-flush).
	ExecFailRate float64
	// ReadbackCorruptRate is the per-drain probability that one readback
	// line crosses the link corrupted.
	ReadbackCorruptRate float64
	// ReadbackDropRate is the per-drain probability that the readback
	// arrives short by its final line.
	ReadbackDropRate float64
	// Seed is an extra user salt mixed into every draw.
	Seed uint64
}

// Enabled reports whether any link-level injection is configured.
func (c LinkConfig) Enabled() bool {
	return c.ExecFailRate > 0 || c.ReadbackCorruptRate > 0 || c.ReadbackDropRate > 0
}

// Validate reports configuration errors.
func (c LinkConfig) Validate() error {
	if err := checkRate("exec fail", c.ExecFailRate); err != nil {
		return err
	}
	if err := checkRate("readback corrupt", c.ReadbackCorruptRate); err != nil {
		return err
	}
	return checkRate("readback drop", c.ReadbackDropRate)
}

// LinkModel draws host-link faults. One model serves one channel's tile;
// draws key on monotone per-event counters, so a fixed program stream
// replays the identical fault trace.
type LinkModel struct {
	seed     uint64
	pFail    uint64
	pCorrupt uint64
	pDrop    uint64
	launches uint64
	corrupts uint64
	drops    uint64
}

// NewLinkModel builds a link model; seed should already carry the channel
// identity (cfg.Seed is mixed in as a user salt).
func NewLinkModel(cfg LinkConfig, seed uint64) *LinkModel {
	return &LinkModel{
		seed:     splitmix(seed ^ cfg.Seed ^ saltModel),
		pFail:    rateToThreshold(cfg.ExecFailRate),
		pCorrupt: rateToThreshold(cfg.ReadbackCorruptRate),
		pDrop:    rateToThreshold(cfg.ReadbackDropRate),
	}
}

// FailLaunch draws the next program launch's transient failure.
func (m *LinkModel) FailLaunch() bool {
	if m.pFail == 0 {
		return false
	}
	m.launches++
	return splitmix(m.seed^saltLaunch^m.launches*0x9e3779b97f4a7c15)>>32 < m.pFail
}

// CorruptReadback draws corruption for a drained readback of n lines,
// returning the victim index and XOR mask when it strikes.
func (m *LinkModel) CorruptReadback(n int) (idx int, mask uint64, ok bool) {
	if m.pCorrupt == 0 || n <= 0 {
		return 0, 0, false
	}
	m.corrupts++
	h := splitmix(m.seed ^ saltCorrupt ^ m.corrupts*0x9e3779b97f4a7c15)
	if h>>32 >= m.pCorrupt {
		return 0, 0, false
	}
	return int(splitmix(h) % uint64(n)), nonzero(splitmix(h ^ 1)), true
}

// DropTail draws whether a drained readback loses its final line.
func (m *LinkModel) DropTail() bool {
	if m.pDrop == 0 {
		return false
	}
	m.drops++
	return splitmix(m.seed^saltDrop^m.drops*0x9e3779b97f4a7c15)>>32 < m.pDrop
}

// RecoveryConfig parameterises the SMC's verify-and-retry path and its
// graceful-degradation quarantine.
type RecoveryConfig struct {
	// Enabled turns on readback verification, bounded retries, and row
	// quarantine. Required whenever link-level exec failures are injected
	// (an unrecovered launch failure aborts the run).
	Enabled bool
	// MaxRetries bounds the re-read / re-launch attempts per request
	// (0 selects the default, 3).
	MaxRetries int
	// Backoff is the emulated-time wait before the first retry; it doubles
	// per attempt (0 selects the default, 100 ns).
	Backoff clock.PS
	// SpareRows is the per-bank spare region size quarantined rows remap
	// into (0 selects the default, 64).
	SpareRows int
}

// Normalize fills defaulted fields.
func (c RecoveryConfig) Normalize() RecoveryConfig {
	if !c.Enabled {
		return c
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * clock.Nanosecond
	}
	if c.SpareRows <= 0 {
		c.SpareRows = 64
	}
	return c
}

// Validate reports configuration errors.
func (c RecoveryConfig) Validate() error {
	if c.MaxRetries < 0 || c.SpareRows < 0 || c.Backoff < 0 {
		return fmt.Errorf("fault: recovery parameters must be non-negative")
	}
	return nil
}

// Config bundles the full fault-injection setup a system runs under. The
// zero value injects nothing and enables no recovery seam, keeping every
// hot path byte-identical to a fault-free build.
type Config struct {
	Chip     ChipConfig
	Link     LinkConfig
	Recovery RecoveryConfig
}

// Enabled reports whether any injection or recovery seam is configured.
func (c Config) Enabled() bool {
	return c.Chip.Enabled() || c.Link.Enabled() || c.Recovery.Enabled
}

// Validate reports configuration errors, including cross-layer ones.
func (c Config) Validate() error {
	if err := c.Chip.Validate(); err != nil {
		return err
	}
	if err := c.Link.Validate(); err != nil {
		return err
	}
	if err := c.Recovery.Validate(); err != nil {
		return err
	}
	if c.Link.ExecFailRate > 0 && !c.Recovery.Enabled {
		return fmt.Errorf("fault: link exec failures require recovery (an unrecovered launch failure aborts the run)")
	}
	return nil
}

// DefaultConfig returns a representative all-layers injection setup for
// demos (cmd/easydram -faults): light transient and link noise, rare
// stuck-at lines, disturb thresholds low enough to matter under
// deliberately hammering workloads, and recovery on.
func DefaultConfig() Config {
	return Config{
		Chip: ChipConfig{
			DisturbEnabled:      true,
			DisturbMinThreshold: 4096,
			DisturbJitter:       4096,
			TransientReadRate:   1e-4,
			StuckAtRate:         1e-5,
		},
		Link: LinkConfig{
			ExecFailRate:        1e-4,
			ReadbackCorruptRate: 1e-4,
			ReadbackDropRate:    1e-4,
		},
		Recovery: RecoveryConfig{Enabled: true}.Normalize(),
	}
}

// rateToThreshold scales a probability to the 32-bit compare threshold the
// draw functions test hash high bits against.
func rateToThreshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << 32
	}
	return uint64(p * (1 << 32))
}

func checkRate(what string, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("fault: %s rate must be in [0,1], got %g", what, p)
	}
	return nil
}

func nonzero(h uint64) uint64 {
	if h == 0 {
		return 1
	}
	return h
}

// key and splitmix mirror internal/variation's coordinate-hashing scheme
// (the helpers are unexported there by design: each package owns its salt
// space).
func key(a, b, c int) uint64 {
	return uint64(a)*0x9e3779b97f4a7c15 ^ uint64(b)*0xbf58476d1ce4e5b9 ^ uint64(c)*0x94d049bb133111eb
}

// splitmix is SplitMix64: a high-quality, allocation-free stateless hash.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
