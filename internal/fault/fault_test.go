package fault

import "testing"

func TestChipModelDeterminism(t *testing.T) {
	cc := ChipConfig{
		DisturbEnabled:      true,
		DisturbMinThreshold: 64,
		DisturbJitter:       64,
		TransientReadRate:   0.01,
		StuckAtRate:         0.01,
	}
	a, err := NewChipModel(cc, 42, 128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChipModel(cc, 42, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if ta, tb := a.DisturbThreshold(i%16, i), b.DisturbThreshold(i%16, i); ta != tb {
			t.Fatalf("threshold(%d) diverged: %d vs %d", i, ta, tb)
		}
		ma, oka := a.TransientRead()
		mb, okb := b.TransientRead()
		if ma != mb || oka != okb {
			t.Fatalf("transient draw %d diverged", i)
		}
		sa, ska := a.StuckAt(i%16, i, i%128)
		sb, skb := b.StuckAt(i%16, i, i%128)
		if sa != sb || ska != skb {
			t.Fatalf("stuck draw %d diverged", i)
		}
	}
	c, _ := NewChipModel(cc, 43, 128)
	same := 0
	for i := 0; i < 256; i++ {
		if a.DisturbThreshold(0, i) == c.DisturbThreshold(0, i) {
			same++
		}
	}
	if same == 256 {
		t.Fatal("different seeds produced identical threshold maps")
	}
}

func TestDisturbThresholdRange(t *testing.T) {
	cc := ChipConfig{DisturbEnabled: true, DisturbMinThreshold: 100, DisturbJitter: 50}
	m, err := NewChipModel(cc, 7, 64)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4096; r++ {
		th := m.DisturbThreshold(3, r)
		if th < 100 || th >= 150 {
			t.Fatalf("row %d threshold %d outside [100,150)", r, th)
		}
	}
	// No jitter: uniform.
	u, _ := NewChipModel(ChipConfig{DisturbEnabled: true, DisturbMinThreshold: 100}, 7, 64)
	if th := u.DisturbThreshold(0, 123); th != 100 {
		t.Fatalf("jitter-free threshold = %d, want 100", th)
	}
}

func TestTransientRateCalibration(t *testing.T) {
	m, err := NewChipModel(ChipConfig{TransientReadRate: 0.02}, 99, 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if mask, ok := m.TransientRead(); ok {
			hits++
			if mask == 0 {
				t.Fatal("corrupting draw returned a zero mask")
			}
		}
	}
	got := float64(hits) / n
	if got < 0.015 || got > 0.025 {
		t.Fatalf("transient rate = %f, want ~0.02", got)
	}
}

func TestStuckAtStable(t *testing.T) {
	m, err := NewChipModel(ChipConfig{StuckAtRate: 0.05}, 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Find a stuck line, then verify the draw is stable.
	for r := 0; r < 10000; r++ {
		mask, stuck := m.StuckAt(1, r, 3)
		for i := 0; i < 3; i++ {
			m2, s2 := m.StuckAt(1, r, 3)
			if m2 != mask || s2 != stuck {
				t.Fatalf("stuck-at draw for row %d not stable", r)
			}
		}
		if stuck {
			return
		}
	}
	t.Fatal("no stuck line found at rate 0.05 over 10000 rows")
}

func TestLinkModelDeterminism(t *testing.T) {
	lc := LinkConfig{ExecFailRate: 0.05, ReadbackCorruptRate: 0.05, ReadbackDropRate: 0.05}
	a := NewLinkModel(lc, 11)
	b := NewLinkModel(lc, 11)
	fails := 0
	for i := 0; i < 2000; i++ {
		fa, fb := a.FailLaunch(), b.FailLaunch()
		if fa != fb {
			t.Fatalf("launch draw %d diverged", i)
		}
		if fa {
			fails++
		}
		ia, ma, oa := a.CorruptReadback(8)
		ib, mb, ob := b.CorruptReadback(8)
		if ia != ib || ma != mb || oa != ob {
			t.Fatalf("corrupt draw %d diverged", i)
		}
		if da, db := a.DropTail(), b.DropTail(); da != db {
			t.Fatalf("drop draw %d diverged", i)
		}
	}
	if fails == 0 {
		t.Fatal("no launch failures at rate 0.05 over 2000 draws")
	}
}

func TestTRRMitigator(t *testing.T) {
	m, err := NewMitigator(MitigationConfig{Policy: "trr", TRRThreshold: 4}, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	var refreshes int
	for i := 1; i <= 12; i++ {
		v := m.OnActivate(0, 100, nil)
		if i%4 == 0 {
			if len(v) != 2 || v[0] != 99 || v[1] != 101 {
				t.Fatalf("ACT %d: victims = %v, want [99 101]", i, v)
			}
			refreshes++
		} else if len(v) != 0 {
			t.Fatalf("ACT %d: unexpected victims %v", i, v)
		}
	}
	if refreshes != 3 {
		t.Fatalf("refreshes = %d, want 3", refreshes)
	}
	// Edge rows clip their out-of-range neighbour.
	for i := 0; i < 4; i++ {
		if v := m.OnActivate(1, 0, nil); i == 3 && (len(v) != 1 || v[0] != 1) {
			t.Fatalf("edge victims = %v, want [1]", v)
		}
	}
}

func TestPARAMitigatorDeterministic(t *testing.T) {
	cfg := MitigationConfig{Policy: "para", PARAProb: 0.25, Seed: 3}
	a, err := NewMitigator(cfg, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewMitigator(cfg, 1024, 0)
	other, _ := NewMitigator(cfg, 1024, 1)
	sameAsOther := true
	hits := 0
	for i := 0; i < 4000; i++ {
		va := a.OnActivate(0, 500, nil)
		vb := b.OnActivate(0, 500, nil)
		if len(va) != len(vb) {
			t.Fatalf("ACT %d: PARA draws diverged for one seed", i)
		}
		if len(va) != len(other.OnActivate(0, 500, nil)) {
			sameAsOther = false
		}
		if len(va) > 0 {
			hits++
			if va[0] != 499 || va[1] != 501 {
				t.Fatalf("victims = %v, want [499 501]", va)
			}
		}
	}
	if hits < 800 || hits > 1200 {
		t.Fatalf("PARA refreshed on %d/4000 ACTs, want ~1000", hits)
	}
	if sameAsOther {
		t.Fatal("per-channel PARA instances drew identically")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Chip: ChipConfig{DisturbEnabled: true}},                                             // threshold missing
		{Chip: ChipConfig{TransientReadRate: 1.5}},                                           // rate out of range
		{Link: LinkConfig{ExecFailRate: 0.1}},                                                // exec fail without recovery
		{Chip: ChipConfig{DisturbEnabled: true, DisturbJitter: -1, DisturbMinThreshold: 10}}, // negative jitter
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d validated but should not have", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	if DefaultConfig().Enabled() != true {
		t.Fatal("DefaultConfig not enabled")
	}
	if (Config{}).Enabled() {
		t.Fatal("zero Config reports enabled")
	}
	if _, err := NewMitigator(MitigationConfig{Policy: "blah"}, 1024, 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if m, err := NewMitigator(MitigationConfig{}, 1024, 0); err != nil || m != nil {
		t.Fatalf("none policy: got %v, %v; want nil, nil", m, err)
	}
}
