package fault

import (
	"sort"

	"easydram/internal/snapshot"
)

// Checkpoint hooks. Every draw in this package is a pure function of
// (seed, salt, coordinates or a monotone counter), so the only dynamic
// state a restored run needs is the counters themselves: replaying from a
// checkpoint with the counters restored reproduces the identical fault
// trace the uninterrupted run would have drawn.

// SaveState serializes the chip model's dynamic state (the read counter
// transient draws key on).
func (m *ChipModel) SaveState(e *snapshot.Enc) { e.U64(m.reads) }

// LoadState restores state written by SaveState.
func (m *ChipModel) LoadState(d *snapshot.Dec) { m.reads = d.U64() }

// SaveState serializes the link model's per-event draw counters.
func (m *LinkModel) SaveState(e *snapshot.Enc) {
	e.U64(m.launches)
	e.U64(m.corrupts)
	e.U64(m.drops)
}

// LoadState restores state written by SaveState.
func (m *LinkModel) LoadState(d *snapshot.Dec) {
	m.launches = d.U64()
	m.corrupts = d.U64()
	m.drops = d.U64()
}

// SaveMitigatorState serializes a policy instance's dynamic state (nil-safe:
// no policy encodes as an empty marker, and a policy-name tag guards
// against restoring one policy's state into another).
func SaveMitigatorState(e *snapshot.Enc, m Mitigator) {
	if m == nil {
		e.String("")
		return
	}
	e.String(m.Name())
	switch p := m.(type) {
	case *para:
		e.U64(p.acts)
	case *trr:
		// Map iteration order is not deterministic; export sorted so a
		// checkpoint of a given state is always byte-identical.
		keys := make([]uint64, 0, len(p.counts))
		for k := range p.counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		e.Int(len(keys))
		for _, k := range keys {
			e.U64(k)
			e.I64(int64(p.counts[k]))
		}
	}
}

// LoadMitigatorState restores state written by SaveMitigatorState into a
// freshly constructed instance of the same policy.
func LoadMitigatorState(d *snapshot.Dec, m Mitigator) {
	name := d.String()
	if d.Err() != nil {
		return
	}
	want := ""
	if m != nil {
		want = m.Name()
	}
	if name != want {
		d.Failf("mitigator policy mismatch: snapshot %q, system %q", name, want)
		return
	}
	switch p := m.(type) {
	case *para:
		p.acts = d.U64()
	case *trr:
		n := d.Int()
		if d.Err() != nil {
			return
		}
		if n < 0 || n > d.Remaining()/16 {
			d.Fail(snapshot.ErrTruncated)
			return
		}
		p.counts = make(map[uint64]int32, n)
		for i := 0; i < n; i++ {
			k := d.U64()
			v := d.I64()
			p.counts[k] = int32(v)
		}
	}
}
