package bender

import (
	"easydram/internal/clock"
	"easydram/internal/dram"
	"easydram/internal/timing"
)

// Builder assembles Bender programs. It provides both raw instruction
// emission and the timing-aware command sequences the EasyAPI exposes
// (read_sequence, write_sequence, rowclone, reduced-tRCD reads).
//
// A Builder tracks the cursor position in bus cycles so WAITs can be
// computed from timing parameters. The zero value is not usable; construct
// with NewBuilder.
type Builder struct {
	p    timing.Params
	prog []Instr
	wr   [][]byte
	// cursor is the bus time the program occupies so far: one bus cycle per
	// SEND-class command, the programmed delay per WAIT, tRFC per REF. It
	// mirrors the executor's time advance exactly (control instructions are
	// free), which is what lets the burst service path attribute a precise
	// slice of one program's bus time to each coalesced request.
	cursor clock.PS
}

// NewBuilder returns a Builder that computes delays from p.
func NewBuilder(p timing.Params) *Builder {
	return &Builder{p: p}
}

// Reset clears the program and write buffer for reuse.
func (b *Builder) Reset() {
	b.prog = b.prog[:0]
	b.wr = b.wr[:0]
	b.cursor = 0
}

// Cursor reports the bus time the program assembled so far will occupy,
// exactly as the executor will account it (commands one bus cycle each,
// WAITs their programmed delay, REF tRFC). Loops emitted via Loop are not
// position-independent and are not reflected beyond one iteration; the
// service paths that consume Cursor never use loops.
func (b *Builder) Cursor() clock.PS { return b.cursor }

// Len reports the current instruction count.
func (b *Builder) Len() int { return len(b.prog) }

// Program returns the assembled program terminated by END. The returned
// slice aliases the builder; call Reset before building the next program.
func (b *Builder) Program() []Instr {
	return append(b.prog, Instr{Op: OpEND})
}

// WriteBuf returns the accumulated write-data buffer.
func (b *Builder) WriteBuf() [][]byte { return b.wr }

// Emit appends a raw instruction.
func (b *Builder) Emit(in Instr) *Builder {
	b.prog = append(b.prog, in)
	switch in.Op {
	case OpNOP, OpACT, OpPRE, OpRD, OpWR:
		b.cursor += b.p.Bus.Period()
	case OpWAIT:
		b.cursor += clock.PS(in.A) * b.p.Bus.Period()
	case OpREF:
		b.cursor += b.p.TRFC
	}
	return b
}

// busCycles converts a duration to bus cycles, rounding up, and subtracts
// the one cycle the preceding command slot already consumed.
func (b *Builder) waitAfterCmd(t clock.PS) int {
	n := int(b.p.Bus.CyclesCeil(t))
	if n > 0 {
		n-- // the command itself occupied one bus cycle
	}
	return n
}

// Wait appends a WAIT for the given duration (rounded up to bus cycles).
func (b *Builder) Wait(t clock.PS) *Builder {
	b.waitCycles(int(b.p.Bus.CyclesCeil(t)))
	return b
}

// ACT appends an activate with nominal tRCD spacing left to the caller.
func (b *Builder) ACT(bank, row int) *Builder {
	return b.Emit(Instr{Op: OpACT, A: bank, B: row})
}

// ACTWithRCD appends an activate annotated with a reduced tRCD (the RD that
// follows will arrive rcd after the ACT).
func (b *Builder) ACTWithRCD(bank, row int, rcd clock.PS) *Builder {
	return b.Emit(Instr{Op: OpACT, A: bank, B: row, C: int(rcd)})
}

// PRE appends a precharge.
func (b *Builder) PRE(bank int) *Builder {
	return b.Emit(Instr{Op: OpPRE, A: bank})
}

// RD appends a column read.
func (b *Builder) RD(bank, col int) *Builder {
	return b.Emit(Instr{Op: OpRD, A: bank, B: col})
}

// WR appends a column write carrying data (copied into the write buffer).
// A nil data slice emits a timing-only write that leaves stored contents
// unchanged (used when the emulated datapath does not model values).
func (b *Builder) WR(bank, col int, data []byte) *Builder {
	if data == nil {
		return b.Emit(Instr{Op: OpWR, A: bank, B: col, C: -1})
	}
	return b.WRStaged(bank, col, b.StageWrite(data))
}

// REF appends a refresh command.
func (b *Builder) REF() *Builder { return b.Emit(Instr{Op: OpREF}) }

// StageWrite copies data into the write buffer once and returns its index,
// so many WR instructions can share one staged line (bulk patterns).
func (b *Builder) StageWrite(data []byte) int {
	idx := len(b.wr)
	cp := make([]byte, dram.LineBytes)
	copy(cp, data)
	b.wr = append(b.wr, cp)
	return idx
}

// WRStaged appends a column write sourcing a previously staged buffer entry
// (see StageWrite).
func (b *Builder) WRStaged(bank, col, idx int) *Builder {
	return b.Emit(Instr{Op: OpWR, A: bank, B: col, C: idx})
}

// ReadSequence appends a standard-compliant closed-row read:
// ACT, wait tRCD, RD, wait max(tRTP, read completion), PRE, wait tRP.
// It is the EasyAPI read_sequence building block.
func (b *Builder) ReadSequence(a dram.Addr) *Builder {
	return b.ReadSequenceRCD(a, b.p.TRCD)
}

// ReadSequenceRCD is ReadSequence with an explicit (possibly reduced) tRCD.
func (b *Builder) ReadSequenceRCD(a dram.Addr, rcd clock.PS) *Builder {
	b.ACTWithRCD(a.Bank, a.Row, rcd)
	b.waitCycles(b.waitAfterCmd(rcd))
	b.RD(a.Bank, a.Col)
	// Leave the row open; the SMC decides when to precharge (open-row
	// policy). Reads complete tCL+tBL after RD, which the executor's
	// elapsed time must cover before the data can be consumed.
	return b
}

// ReadHit appends a RD to an already-open row.
func (b *Builder) ReadHit(a dram.Addr) *Builder {
	return b.RD(a.Bank, a.Col)
}

// WriteSequence appends a standard-compliant closed-row write.
func (b *Builder) WriteSequence(a dram.Addr, data []byte) *Builder {
	b.ACT(a.Bank, a.Row)
	b.waitCycles(b.waitAfterCmd(b.p.TRCD))
	b.WR(a.Bank, a.Col, data)
	return b
}

// PrechargeAfterRead appends the tail of a closed-row access: wait for the
// column operation to finish, then PRE and wait tRP.
func (b *Builder) PrechargeAfterRead(bank int) *Builder {
	b.waitCycles(b.waitAfterCmd(b.p.TRTP))
	b.PRE(bank)
	b.waitCycles(b.waitAfterCmd(b.p.TRP))
	return b
}

// rowCloneSettle is the post-clone restoration margin: real RowClone
// deployments (PiDRAM) pad the sequence so the destination row's cells
// restore fully before any subsequent access, which dominates the per-clone
// cost beyond the raw ACT-PRE-ACT triple.
const rowCloneSettle = 100 * clock.Nanosecond

// RowClone appends the FPM RowClone command sequence: ACT(src),
// early PRE, early ACT(dst) — deliberately violating tRAS and tRP — then a
// settle delay and a standard precharge to leave the bank closed.
//
// The early gaps (2 bus cycles each, 3 ns at DDR4-1333) match the
// characterized windows in the ComputeDRAM/PiDRAM literature.
func (b *Builder) RowClone(bank, srcRow, dstRow int) *Builder {
	b.ACT(bank, srcRow)
	b.waitCycles(1)
	b.PRE(bank)
	b.waitCycles(1)
	b.ACT(bank, dstRow)
	// Let the destination row restore fully before closing it.
	b.waitCycles(b.waitAfterCmd(b.p.TRAS + rowCloneSettle))
	b.PRE(bank)
	b.waitCycles(b.waitAfterCmd(b.p.TRP))
	return b
}

// BitwiseMAJ appends the ComputeDRAM-style many-row-activation sequence:
// back-to-back ACT(r1), PRE, ACT(r2) with no waits, which activates r1, r2
// and r1|r2 simultaneously and leaves all three at the bitwise majority of
// their contents. A settle delay and precharge close the bank.
func (b *Builder) BitwiseMAJ(bank, r1, r2 int) *Builder {
	b.ACT(bank, r1)
	b.PRE(bank)
	b.ACT(bank, r2)
	b.waitCycles(b.waitAfterCmd(b.p.TRAS + rowCloneSettle))
	b.PRE(bank)
	b.waitCycles(b.waitAfterCmd(b.p.TRP))
	return b
}

// ProfileLine appends the §8.1 single-line profiling sequence: initialize
// the line with pattern at nominal timing, close the row, then test it with
// ProfileCheck. The bank must start precharged; the sequence leaves it
// precharged.
func (b *Builder) ProfileLine(a dram.Addr, pattern []byte, rcd clock.PS) *Builder {
	b.ACT(a.Bank, a.Row)
	b.Wait(b.p.TRCD - b.p.Bus.Period())
	b.WR(a.Bank, a.Col, pattern)
	b.Wait(b.p.TCWL + b.p.TBL + b.p.TWR)
	b.PRE(a.Bank)
	b.Wait(b.p.TRP - b.p.Bus.Period())
	return b.ProfileCheck(a, rcd)
}

// ProfileCheck appends the reduced-tRCD test half of a profiling sequence:
// activate with rcd, read the column exactly rcd after the ACT, and close
// the row again. Every profiled line — whether tested one at a time or as
// part of a whole-row program — goes through this sequence, so the
// effective tRCD the chip model observes is identical on both paths.
func (b *Builder) ProfileCheck(a dram.Addr, rcd clock.PS) *Builder {
	b.ACTWithRCD(a.Bank, a.Row, rcd)
	b.Wait(rcd - b.p.Bus.Period())
	b.RD(a.Bank, a.Col)
	b.Wait(b.p.TCL + b.p.TBL + b.p.TRTP)
	b.PRE(a.Bank)
	b.Wait(b.p.TRP - b.p.Bus.Period())
	return b
}

// ProfileRow appends the row-granularity profiling program (§8.1 fast
// path): one activation initializes all cols columns with pattern (writes
// spaced by tCCD_L, write recovery after the last), then each column is
// tested with its own ProfileCheck so per-line reliability is decided under
// exactly the single-line sequence's ACT->RD spacing. One program replaces
// cols request round-trips through the controller. The readback buffer
// receives exactly cols lines, in column order.
func (b *Builder) ProfileRow(bank, row, cols int, pattern []byte, rcd clock.PS) *Builder {
	b.ACT(bank, row)
	b.Wait(b.p.TRCD - b.p.Bus.Period())
	idx := b.StageWrite(pattern)
	for col := 0; col < cols; col++ {
		b.WRStaged(bank, col, idx)
		if col != cols-1 {
			b.Wait(b.p.TCCDL - b.p.Bus.Period())
		}
	}
	b.Wait(b.p.TCWL + b.p.TBL + b.p.TWR)
	b.PRE(bank)
	b.Wait(b.p.TRP - b.p.Bus.Period())
	for col := 0; col < cols; col++ {
		b.ProfileCheck(dram.Addr{Bank: bank, Row: row, Col: col}, rcd)
	}
	return b
}

// StripeRowsMax is the largest row count ProfileRowStripe accepts in one
// program on the default 128-column module: the EasyTile readback buffer
// holds ReadbackLines (8192) lines, and each profiled row contributes one
// test read per column, so 64 rows exactly fill it. The binding limit is
// rows*cols <= ReadbackLines — wider geometries fit fewer rows (the
// controller checks the product).
const StripeRowsMax = ReadbackLines / 128

// ProfileRowStripe appends the bank-stripe profiling program (§8.1 at its
// batching limit): the whole-row sequence of ProfileRow repeated for `rows`
// consecutive rows starting at startRow, all in one program. Per-line
// reliability outcomes are identical to per-row (and per-line) programs
// because each line still goes through ProfileCheck — its test read lands
// exactly rcd after its own activation, and the variation model decides
// reliability from that spacing alone. The readback buffer receives
// rows*cols lines in (row, column) order; rows*cols must not exceed the
// 8192-line readback buffer (StripeRowsMax rows of a 128-column module).
func (b *Builder) ProfileRowStripe(bank, startRow, rows, cols int, pattern []byte, rcd clock.PS) *Builder {
	for r := 0; r < rows; r++ {
		b.ProfileRow(bank, startRow+r, cols, pattern, rcd)
	}
	return b
}

// Loop wraps body(i-free) in an LDI/DEC/BNZ loop executing count times.
// The body must not emit absolute jumps.
func (b *Builder) Loop(reg, count int, body func(*Builder)) *Builder {
	b.Emit(Instr{Op: OpLDI, A: reg, B: count})
	top := len(b.prog)
	body(b)
	b.Emit(Instr{Op: OpDEC, A: reg})
	b.Emit(Instr{Op: OpBNZ, A: reg, B: top})
	return b
}

func (b *Builder) waitCycles(n int) {
	if n > 0 {
		b.Emit(Instr{Op: OpWAIT, A: n})
	}
}
