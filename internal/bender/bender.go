// Package bender reimplements the DRAM Bender execution engine: a small
// instruction set for issuing DRAM commands with exact, programmable delays.
//
// The software memory controller (package smc) compiles each scheduling
// decision into a Bender program, transfers it to the command buffer, and
// triggers execution. Bender then replays the program against the DRAM chip
// model with cycle-exact spacing and reports the elapsed time — exactly the
// contract the paper's EasyTile has with the hardware DRAM Bender.
package bender

import (
	"fmt"

	"easydram/internal/clock"
	"easydram/internal/dram"
)

// Op is a DRAM Bender instruction opcode.
type Op uint8

// Instruction opcodes. SEND-class opcodes issue one DRAM command in one bus
// cycle; control opcodes manage delays, registers, and loops.
const (
	OpNOP Op = iota
	OpACT    // A=bank, B=row, C=tRCD override in ps (0 = nominal)
	OpPRE    // A=bank
	OpRD     // A=bank, B=col; data lands in the readback buffer
	OpWR     // A=bank, B=col, C=write-buffer index
	OpREF
	OpWAIT // A=delay in bus cycles
	OpLDI  // A=register, B=immediate
	OpDEC  // A=register
	OpBNZ  // A=register, B=target pc
	OpJMP  // A=target pc
	OpEND
)

var opNames = [...]string{
	OpNOP: "NOP", OpACT: "ACT", OpPRE: "PRE", OpRD: "RD", OpWR: "WR",
	OpREF: "REF", OpWAIT: "WAIT", OpLDI: "LDI", OpDEC: "DEC",
	OpBNZ: "BNZ", OpJMP: "JMP", OpEND: "END",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Instr is one DRAM Bender instruction.
type Instr struct {
	Op      Op
	A, B, C int
}

func (i Instr) String() string {
	return fmt.Sprintf("%s %d,%d,%d", i.Op, i.A, i.B, i.C)
}

// NumRegs is the number of general-purpose loop registers.
const NumRegs = 8

// maxSteps bounds interpretation so buggy programs cannot hang the
// emulation (DRAM Bender hardware has a watchdog with the same role).
const maxSteps = 64 << 20

// ReadLine is one readback-buffer entry.
type ReadLine struct {
	Data     [dram.LineBytes]byte
	Reliable bool
	// LinkCorrupt marks a line the host link corrupted in flight (tile-level
	// fault injection; the chip-side data was fine).
	LinkCorrupt bool
}

// Result reports one program execution.
type Result struct {
	// Elapsed is the bus time the program occupied DRAM Bender.
	Elapsed clock.PS
	// Commands is the number of DRAM commands issued.
	Commands int
	// Reads is the number of lines appended to the readback buffer.
	Reads int
	// UnreliableReads counts RDs the chip reported unreliable (early-tRCD
	// corruption or injected read faults) — the signal the SMC's
	// verify-and-retry path keys on, counted identically whether read data
	// is buffered or discarded.
	UnreliableReads int
	// CloneAttempts / CloneSuccesses count RowClone activations observed.
	CloneAttempts  int
	CloneSuccesses int
	// LaunchFailed marks an injected transient program-launch failure at
	// the host link: nothing executed, and the program is still in the
	// builder for a retry.
	LaunchFailed bool
}

// Engine executes Bender programs against a DRAM device (a single-rank
// Chip or a multi-rank Module; bank operands are device-global).
type Engine struct {
	chip dram.Device
	bus  clock.Clock

	readback []ReadLine
	maxRead  int
	// discard suppresses readback accumulation for the current execution
	// (plain access programs; nobody consumes their read data).
	discard bool
}

// ReadbackLines is the default readback-buffer capacity in cache lines
// (512 KiB — the paper's EasyTile readback buffer class). Programs whose
// buffered reads exceed it fail; bulk profiling must size its batches
// against this bound.
const ReadbackLines = 8192

// NewEngine returns an Engine bound to dev. maxReadback bounds the readback
// buffer (0 selects the default ReadbackLines).
func NewEngine(dev dram.Device, maxReadback int) *Engine {
	if maxReadback <= 0 {
		maxReadback = ReadbackLines
	}
	return &Engine{chip: dev, bus: dev.Timing().Bus, maxRead: maxReadback}
}

// Device returns the attached DRAM device.
func (e *Engine) Device() dram.Device { return e.chip }

// Chip returns the attached DRAM model when the device is a single-rank
// Chip, and nil for a multi-rank Module.
func (e *Engine) Chip() *dram.Chip {
	c, _ := e.chip.(*dram.Chip)
	return c
}

// Readback returns the readback buffer contents accumulated since the last
// DrainReadback.
func (e *Engine) Readback() []ReadLine { return e.readback }

// DrainReadback empties the readback buffer and returns its prior contents.
// The returned slice aliases the engine's reusable buffer: it is valid only
// until the next Exec, so callers must copy entries they keep.
func (e *Engine) DrainReadback() []ReadLine {
	rb := e.readback
	e.readback = e.readback[:0]
	return rb
}

// ExecDiscardReads runs prog like Exec but drops read data instead of
// buffering it in the readback buffer (and is exempt from the buffer's
// capacity limit). The access service paths use it: a plain read's data is
// never consumed, so moving 64-byte lines per RD would be pure overhead.
// Chip state, statistics, and Result are identical to a buffered run.
func (e *Engine) ExecDiscardReads(prog []Instr, start clock.PS, wrbuf [][]byte) (Result, error) {
	e.discard = true
	res, err := e.Exec(prog, start, wrbuf)
	e.discard = false
	return res, err
}

// Exec runs prog starting at absolute chip time start. wrbuf supplies data
// for WR instructions (indexed by Instr.C). It returns the execution result
// or an error for malformed programs.
func (e *Engine) Exec(prog []Instr, start clock.PS, wrbuf [][]byte) (Result, error) {
	var res Result
	var regs [NumRegs]int
	period := e.bus.Period()
	t := start
	pc := 0
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			return res, fmt.Errorf("bender: program exceeded %d steps (missing END?)", maxSteps)
		}
		if pc < 0 || pc >= len(prog) {
			// Falling off the end terminates, like END.
			break
		}
		in := prog[pc]
		switch in.Op {
		case OpNOP:
			t += period
		case OpACT:
			cloned, ok := e.chip.Activate(in.A, in.B, t, clock.PS(in.C))
			if cloned {
				res.CloneAttempts++
				if ok {
					res.CloneSuccesses++
				}
			}
			res.Commands++
			t += period
		case OpPRE:
			e.chip.Precharge(in.A, t)
			res.Commands++
			t += period
		case OpRD:
			if e.discard {
				// The line's reliability and data go nowhere: the caller
				// declared the readback unused (ExecDiscardReads), so skip
				// building and buffering the 64-byte line entirely. Chip
				// state, statistics, and timing checks advance exactly as a
				// buffered read's would.
				rel, err := e.chip.Read(in.A, in.B, t, nil)
				if err != nil {
					return res, fmt.Errorf("bender: pc=%d: %w", pc, err)
				}
				if !rel {
					res.UnreliableReads++
				}
				res.Commands++
				res.Reads++
				t += period
				break
			}
			if len(e.readback) >= e.maxRead {
				return res, fmt.Errorf("bender: readback buffer overflow (%d lines)", e.maxRead)
			}
			var line ReadLine
			rel, err := e.chip.Read(in.A, in.B, t, line.Data[:])
			if err != nil {
				return res, fmt.Errorf("bender: pc=%d: %w", pc, err)
			}
			line.Reliable = rel
			if !rel {
				res.UnreliableReads++
			}
			e.readback = append(e.readback, line)
			res.Commands++
			res.Reads++
			t += period
		case OpWR:
			var src []byte
			if in.C >= 0 && in.C < len(wrbuf) {
				src = wrbuf[in.C]
			}
			if err := e.chip.Write(in.A, in.B, t, src); err != nil {
				return res, fmt.Errorf("bender: pc=%d: %w", pc, err)
			}
			res.Commands++
			t += period
		case OpREF:
			e.chip.Refresh(t)
			res.Commands++
			// REF occupies the chip for tRFC.
			t += e.chip.Timing().TRFC
		case OpWAIT:
			if in.A < 0 {
				return res, fmt.Errorf("bender: pc=%d: negative WAIT %d", pc, in.A)
			}
			t += clock.PS(in.A) * period
		case OpLDI:
			if err := checkReg(in.A, pc); err != nil {
				return res, err
			}
			regs[in.A] = in.B
		case OpDEC:
			if err := checkReg(in.A, pc); err != nil {
				return res, err
			}
			regs[in.A]--
		case OpBNZ:
			if err := checkReg(in.A, pc); err != nil {
				return res, err
			}
			if regs[in.A] != 0 {
				pc = in.B
				continue
			}
		case OpJMP:
			pc = in.A
			continue
		case OpEND:
			res.Elapsed = t - start
			return res, nil
		default:
			return res, fmt.Errorf("bender: pc=%d: unknown opcode %v", pc, in.Op)
		}
		pc++
	}
	res.Elapsed = t - start
	return res, nil
}

func checkReg(r, pc int) error {
	if r < 0 || r >= NumRegs {
		return fmt.Errorf("bender: pc=%d: register %d out of range [0,%d)", pc, r, NumRegs)
	}
	return nil
}
