package bender

import (
	"bytes"
	"testing"

	"easydram/internal/clock"
	"easydram/internal/dram"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	cfg := dram.DefaultConfig()
	cfg.RowsPerBank = 4096
	chip, err := dram.New(cfg)
	if err != nil {
		t.Fatalf("dram.New: %v", err)
	}
	return NewEngine(chip, 64)
}

func TestOpString(t *testing.T) {
	if OpACT.String() != "ACT" || OpWAIT.String() != "WAIT" {
		t.Fatalf("op names wrong")
	}
	in := Instr{Op: OpACT, A: 1, B: 2}
	if in.String() != "ACT 1,2,0" {
		t.Fatalf("instr string: %q", in.String())
	}
}

func TestExecReadWrite(t *testing.T) {
	e := newTestEngine(t)
	p := e.Chip().Timing()
	b := NewBuilder(p)
	data := bytes.Repeat([]byte{0x42}, dram.LineBytes)
	b.ACT(0, 5)
	b.Wait(p.TRCD)
	b.WR(0, 9, data)
	b.Wait(p.TCWL + p.TBL + p.TWR)
	b.PRE(0)
	b.Wait(p.TRP)
	b.ACT(0, 5)
	b.Wait(p.TRCD)
	b.RD(0, 9)

	res, err := e.Exec(b.Program(), 0, b.WriteBuf())
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.Commands != 5 || res.Reads != 1 {
		t.Fatalf("commands=%d reads=%d", res.Commands, res.Reads)
	}
	rb := e.Readback()
	if len(rb) != 1 || !rb[0].Reliable || !bytes.Equal(rb[0].Data[:], data) {
		t.Fatalf("readback wrong: %+v", rb)
	}
}

func TestExecElapsedMatchesWaits(t *testing.T) {
	e := newTestEngine(t)
	p := e.Chip().Timing()
	prog := []Instr{
		{Op: OpACT, A: 0, B: 0},
		{Op: OpWAIT, A: 10},
		{Op: OpPRE, A: 0},
		{Op: OpEND},
	}
	res, err := e.Exec(prog, 0, nil)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	want := 12 * p.Bus.Period() // ACT slot + 10 waits + PRE slot
	if res.Elapsed != want {
		t.Fatalf("elapsed = %v, want %v", res.Elapsed, want)
	}
}

func TestLoops(t *testing.T) {
	e := newTestEngine(t)
	b := NewBuilder(e.Chip().Timing())
	count := 0
	b.Loop(0, 5, func(b *Builder) {
		b.Emit(Instr{Op: OpNOP})
		count++
	})
	res, err := e.Exec(b.Program(), 0, nil)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	// 5 iterations x 1 NOP = 5 bus cycles of NOPs.
	if res.Elapsed < 5*e.Chip().Timing().Bus.Period() {
		t.Fatalf("loop did not execute 5 times: %v", res.Elapsed)
	}
}

func TestRunawayProgramAborts(t *testing.T) {
	e := newTestEngine(t)
	prog := []Instr{{Op: OpJMP, A: 0}} // infinite loop
	if _, err := e.Exec(prog, 0, nil); err == nil {
		t.Fatalf("infinite loop must abort")
	}
}

func TestBadRegisterFails(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Exec([]Instr{{Op: OpLDI, A: 99, B: 1}}, 0, nil); err == nil {
		t.Fatalf("register out of range must error")
	}
}

func TestNegativeWaitFails(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Exec([]Instr{{Op: OpWAIT, A: -1}}, 0, nil); err == nil {
		t.Fatalf("negative WAIT must error")
	}
}

func TestReadbackOverflow(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.RowsPerBank = 4096
	chip, err := dram.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(chip, 2)
	b := NewBuilder(chip.Timing())
	b.ACT(0, 0)
	b.Wait(chip.Timing().TRCD)
	for i := 0; i < 3; i++ {
		b.RD(0, i)
		b.Wait(chip.Timing().TCCDL)
	}
	if _, err := e.Exec(b.Program(), 0, b.WriteBuf()); err == nil {
		t.Fatalf("readback overflow must error")
	}
}

func TestDrainReadback(t *testing.T) {
	e := newTestEngine(t)
	p := e.Chip().Timing()
	b := NewBuilder(p)
	b.ReadSequence(dram.Addr{Bank: 0, Row: 1, Col: 2})
	if _, err := e.Exec(b.Program(), 0, b.WriteBuf()); err != nil {
		t.Fatal(err)
	}
	if len(e.DrainReadback()) != 1 {
		t.Fatalf("expected one line")
	}
	if len(e.Readback()) != 0 {
		t.Fatalf("drain must empty the buffer")
	}
}

func TestRowCloneBuilderClones(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.RowsPerBank = 4096
	cfg.ClonableFraction = 1
	chip, err := dram.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(chip, 16)
	b := NewBuilder(chip.Timing())
	b.RowClone(2, 100, 101)
	res, err := e.Exec(b.Program(), 0, b.WriteBuf())
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.CloneAttempts != 1 || res.CloneSuccesses != 1 {
		t.Fatalf("clone attempts=%d successes=%d", res.CloneAttempts, res.CloneSuccesses)
	}
	if chip.OpenRow(2) != -1 {
		t.Fatalf("RowClone sequence must leave the bank precharged")
	}
}

func TestReadSequenceIsStandardCompliant(t *testing.T) {
	e := newTestEngine(t)
	b := NewBuilder(e.Chip().Timing())
	b.ReadSequence(dram.Addr{Bank: 3, Row: 7, Col: 1})
	if _, err := e.Exec(b.Program(), 0, b.WriteBuf()); err != nil {
		t.Fatal(err)
	}
	if got := e.Chip().Stats().TimingViolations; got != 0 {
		t.Fatalf("ReadSequence produced %d timing violations", got)
	}
	rb := e.Readback()
	if len(rb) != 1 || !rb[0].Reliable {
		t.Fatalf("nominal read must be reliable")
	}
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder(dram.DefaultConfig().Timing)
	b.ACT(0, 0).PRE(0)
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Reset()
	if b.Len() != 0 || len(b.WriteBuf()) != 0 {
		t.Fatalf("Reset did not clear builder")
	}
}

func TestWRNilDataKeepsContents(t *testing.T) {
	e := newTestEngine(t)
	p := e.Chip().Timing()
	addr := dram.Addr{Bank: 0, Row: 3, Col: 4}
	want := bytes.Repeat([]byte{0x99}, dram.LineBytes)
	e.Chip().PokeLine(addr, want)

	b := NewBuilder(p)
	b.ACT(0, 3)
	b.Wait(p.TRCD)
	b.WR(0, 4, nil) // timing-only write
	b.Wait(p.TCWL + p.TBL)
	b.RD(0, 4)
	if _, err := e.Exec(b.Program(), 0, b.WriteBuf()); err != nil {
		t.Fatal(err)
	}
	rb := e.Readback()
	if !bytes.Equal(rb[0].Data[:], want) {
		t.Fatalf("nil-data WR must not change stored contents")
	}
}

func TestFallThroughEndTerminates(t *testing.T) {
	e := newTestEngine(t)
	res, err := e.Exec([]Instr{{Op: OpNOP}}, 0, nil)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.Elapsed != clock.PS(e.Chip().Timing().Bus.Period()) {
		t.Fatalf("elapsed = %v", res.Elapsed)
	}
}

func TestBitwiseMAJBuilder(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.RowsPerBank = 4096
	cfg.Ideal = true
	chip, err := dram.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(chip, 16)
	b := NewBuilder(chip.Timing())
	b.BitwiseMAJ(0, 4, 2)
	res, err := e.Exec(b.Program(), 0, b.WriteBuf())
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.CloneAttempts != 1 || res.CloneSuccesses != 1 {
		t.Fatalf("bitwise activation not reported: %+v", res)
	}
	if chip.Stats().BitwiseOps != 1 {
		t.Fatalf("chip did not record the bitwise op")
	}
	if chip.OpenRow(0) != -1 {
		t.Fatalf("sequence must leave the bank precharged")
	}
}
