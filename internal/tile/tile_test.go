package tile

import (
	"testing"

	"easydram/internal/dram"
	"easydram/internal/mem"
)

func newTestTile(t *testing.T) *Tile {
	t.Helper()
	cfg := dram.DefaultConfig()
	cfg.RowsPerBank = 4096
	chip, err := dram.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(chip, DefaultCostModel())
}

func TestFIFOOrder(t *testing.T) {
	tl := newTestTile(t)
	if !tl.IncomingEmpty() {
		t.Fatalf("new tile must have an empty FIFO")
	}
	for i := uint64(1); i <= 3; i++ {
		tl.PushRequest(&mem.Request{ID: i})
	}
	for i := uint64(1); i <= 3; i++ {
		slot, ok := tl.PopRequest()
		if !ok || tl.Req(slot).ID != i {
			t.Fatalf("pop %d = (%v,%v)", i, slot, ok)
		}
		tl.Release(slot)
	}
	if _, ok := tl.PopRequest(); ok {
		t.Fatalf("empty pop must fail")
	}
	if tl.Stats().RequestsIn != 3 || tl.Stats().MaxQueueLen != 3 {
		t.Fatalf("stats = %+v", tl.Stats())
	}
}

func TestExecAdvancesCursorAndResetsBuilder(t *testing.T) {
	tl := newTestTile(t)
	p := tl.Chip().Timing()
	tl.Builder().ReadSequence(dram.Addr{Bank: 0, Row: 1, Col: 0})
	res, rb, err := tl.Exec()
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.Elapsed <= 0 || len(rb) != 1 {
		t.Fatalf("res=%+v rb=%d", res, len(rb))
	}
	if tl.Builder().Len() != 0 {
		t.Fatalf("builder not reset after Exec")
	}
	if tl.Stats().ProgramsRun != 1 {
		t.Fatalf("programs = %d", tl.Stats().ProgramsRun)
	}
	_ = p
}

func TestDefaultCostModelPositive(t *testing.T) {
	c := DefaultCostModel()
	costs := []int{
		c.Poll, c.ReceiveRequest, c.CriticalEnter, c.CriticalExit,
		c.ScheduleBase, c.SchedulePerReq, c.MapAddr, c.BuildPerInstr,
		c.FlushLaunch, c.FlushPerInstr, c.ReadbackPerLine, c.Respond,
		c.BloomCheck, c.ProfileCompare,
	}
	for i, v := range costs {
		if v <= 0 {
			t.Fatalf("cost %d non-positive", i)
		}
	}
}

// TestSoftwareMCLatencyClass pins the calibration target: a simple read
// served by the software memory controller costs on the order of 60-100
// FPGA cycles of controller work (the latency class the paper reports),
// which at 100 MHz is microseconds-scale per request.
func TestSoftwareMCLatencyClass(t *testing.T) {
	c := DefaultCostModel()
	// Poll + receive + critical + schedule + map + build/flush of a
	// 3-instruction program + readback + respond.
	total := c.Poll + c.ReceiveRequest + c.CriticalEnter + c.ScheduleBase +
		c.SchedulePerReq + c.MapAddr + 3*(c.BuildPerInstr+c.FlushPerInstr) +
		c.FlushLaunch + c.ReadbackPerLine + c.Respond + c.CriticalExit
	if total < 40 || total > 150 {
		t.Fatalf("per-read controller cost %d FPGA cycles outside the calibrated class", total)
	}
}
