// Package tile models EasyTile (§5.1): the hardware module that packs the
// programmable core, DRAM Bender, the command/readback buffers, the
// incoming/outgoing request FIFOs, and the Tile Control Logic.
//
// Because the programmable core executes the software memory controller,
// every controller action costs FPGA cycles. The CostModel quantifies those
// costs; they are what time scaling must hide from the emulated system.
package tile

import (
	"encoding/binary"
	"fmt"

	"easydram/internal/bender"
	"easydram/internal/clock"
	"easydram/internal/dram"
	"easydram/internal/fault"
	"easydram/internal/mem"
)

// CostModel is the FPGA-cycle cost of each software-memory-controller
// operation on the programmable (Rocket-class, 100 MHz) core. The defaults
// are calibrated so a simple read miss costs ~60-80 FPGA cycles end to end,
// matching the latency class the paper reports for software scheduling.
type CostModel struct {
	Poll            int // check the incoming FIFO
	ReceiveRequest  int // move one request from hardware buffers to memory
	CriticalEnter   int // set_scheduling_state(true)
	CriticalExit    int // set_scheduling_state(false)
	ScheduleBase    int // scheduling decision, fixed part
	SchedulePerReq  int // scheduling decision, per buffered request
	MapAddr         int // physical -> DRAM address translation
	BuildPerInstr   int // append one DRAM Bender instruction
	FlushLaunch     int // trigger DRAM Bender execution
	FlushPerInstr   int // transfer one instruction to the command buffer
	ReadbackPerLine int // move one line from the readback buffer
	Respond         int // enqueue a response
	BloomCheck      int // tRCD Bloom-filter lookup (§8.2)
	ProfileCompare  int // compare a profiled line against the test pattern
}

// DefaultCostModel returns the calibrated default costs.
func DefaultCostModel() CostModel {
	return CostModel{
		Poll:            4,
		ReceiveRequest:  10,
		CriticalEnter:   2,
		CriticalExit:    2,
		ScheduleBase:    8,
		SchedulePerReq:  2,
		MapAddr:         4,
		BuildPerInstr:   3,
		FlushLaunch:     8,
		FlushPerInstr:   1,
		ReadbackPerLine: 5,
		Respond:         8,
		BloomCheck:      10,
		ProfileCompare:  12,
	}
}

// Stats counts tile-level events.
type Stats struct {
	RequestsIn   int64
	ResponsesOut int64
	MaxQueueLen  int
	ProgramsRun  int64
	InstrsRun    int64
	// Host-link fault injection counters (zero without a link model):
	// LaunchFails counts transiently failed Bender launches, CorruptLines
	// readback lines corrupted in flight, ShortReadbacks drains truncated
	// by their final line.
	LaunchFails    int64
	CorruptLines   int64
	ShortReadbacks int64
}

// Accumulate adds o's counters into s (multi-channel systems sum their
// per-channel tile statistics; the queue high-water mark takes the max).
func (s *Stats) Accumulate(o Stats) {
	s.RequestsIn += o.RequestsIn
	s.ResponsesOut += o.ResponsesOut
	if o.MaxQueueLen > s.MaxQueueLen {
		s.MaxQueueLen = o.MaxQueueLen
	}
	s.ProgramsRun += o.ProgramsRun
	s.InstrsRun += o.InstrsRun
	s.LaunchFails += o.LaunchFails
	s.CorruptLines += o.CorruptLines
	s.ShortReadbacks += o.ShortReadbacks
}

// ReqSlot is a dense index into a Tile's pooled request slab. Requests are
// written into the slab once, at issue; every later stage (the incoming
// FIFO, the controller's table entries) carries the 4-byte slot instead of
// re-copying the request struct — the same dense-index idea as the
// engine-side idTable in internal/core/events.go, here with an explicit
// free list because slots are named by position rather than request ID.
type ReqSlot int32

// reqSlab is the pooled backing store for in-flight requests. Alloc pops a
// recycled slot when one exists and grows the slab otherwise; steady state
// performs zero allocations because the live population is bounded by the
// core's MLP plus buffered posted traffic.
type reqSlab struct {
	slots []mem.Request
	free  []ReqSlot
}

func (s *reqSlab) alloc(r *mem.Request) ReqSlot {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		s.slots[idx] = *r
		return idx
	}
	s.slots = append(s.slots, *r)
	return ReqSlot(len(s.slots) - 1)
}

func (s *reqSlab) release(idx ReqSlot) { s.free = append(s.free, idx) }

// Tile couples the hardware buffers with DRAM Bender.
type Tile struct {
	costs   CostModel
	engine  *bender.Engine
	builder *bender.Builder

	// reqs is the pooled request slab; incoming is a slice-backed FIFO of
	// slab slots: Pop advances head instead of shifting, and the backing
	// array is recycled once drained.
	reqs     reqSlab
	incoming []ReqSlot
	head     int
	stats    Stats

	// dramCursor is the DRAM-bus absolute time of the next Bender program.
	dramCursor clock.PS
	// busPeriod caches the chip's bus period (reading it through
	// Chip().Timing() copies the whole Params struct — measurable per
	// program on the service hot path).
	busPeriod clock.PS

	// link is the host-link fault model (nil without injection — the exec
	// path then pays a single nil check).
	link *fault.LinkModel
}

// New builds a tile over the given chip.
func New(chip *dram.Chip, costs CostModel) *Tile { return NewDevice(chip, costs) }

// NewDevice builds a tile over any DRAM device (a single-rank chip or a
// multi-rank module; one tile drives one channel).
func NewDevice(dev dram.Device, costs CostModel) *Tile {
	eng := bender.NewEngine(dev, 0)
	return &Tile{
		costs:     costs,
		engine:    eng,
		builder:   bender.NewBuilder(dev.Timing()),
		busPeriod: dev.Timing().Bus.Period(),
	}
}

// Costs returns the cost model. The pointer refers to the tile's own copy:
// the controller consults costs on every scheduling step, and a by-value
// return of the ~14-word struct was a measurable share of the service
// loop's duffcopy time.
func (t *Tile) Costs() *CostModel { return &t.costs }

// Chip returns the DRAM model behind Bender when it is a single-rank chip
// (nil when the tile drives a multi-rank module; see Device).
func (t *Tile) Chip() *dram.Chip { return t.engine.Chip() }

// Device returns the DRAM device behind Bender.
func (t *Tile) Device() dram.Device { return t.engine.Device() }

// Builder returns the shared program builder (reset per program).
func (t *Tile) Builder() *bender.Builder { return t.builder }

// Stats returns a snapshot of tile counters.
func (t *Tile) Stats() Stats { return t.stats }

// Stage copies a request into the pooled slab without enqueuing it and
// returns its slot. The unscaled engine stages issued requests whose
// arrival time has not been reached; everything else should use
// PushRequest.
func (t *Tile) Stage(r *mem.Request) ReqSlot { return t.reqs.alloc(r) }

// Enqueue appends a previously staged slot to the incoming FIFO (Tile
// Control Logic does this automatically as requests arrive on the memory
// bus).
func (t *Tile) Enqueue(idx ReqSlot) {
	t.incoming = append(t.incoming, idx)
	t.stats.RequestsIn++
	if n := len(t.incoming) - t.head; n > t.stats.MaxQueueLen {
		t.stats.MaxQueueLen = n
	}
}

// PushRequest copies a request into the slab and enqueues it in one step.
func (t *Tile) PushRequest(r *mem.Request) { t.Enqueue(t.Stage(r)) }

// Req returns the slab entry for a live slot. The pointer stays valid until
// Release(idx); callers must not hold it past that.
func (t *Tile) Req(idx ReqSlot) *mem.Request { return &t.reqs.slots[idx] }

// Release recycles a request's slab slot. Call exactly once per request,
// after its response has been enqueued — which makes it the natural place
// to count completed requests: RequestsIn == ResponsesOut at end of run is
// the tile-seam half of the request-conservation invariant the
// differential fuzzer (internal/difffuzz) checks on every config.
func (t *Tile) Release(idx ReqSlot) {
	t.stats.ResponsesOut++
	t.reqs.release(idx)
}

// IncomingEmpty reports whether the request FIFO is empty.
func (t *Tile) IncomingEmpty() bool { return t.head >= len(t.incoming) }

// PopRequest removes and returns the oldest incoming request's slab slot.
func (t *Tile) PopRequest() (ReqSlot, bool) {
	if t.head >= len(t.incoming) {
		return -1, false
	}
	idx := t.incoming[t.head]
	t.head++
	if t.head == len(t.incoming) {
		t.incoming = t.incoming[:0]
		t.head = 0
	}
	return idx, true
}

// SetFaultLink installs a host-link fault model (nil disables injection).
func (t *Tile) SetFaultLink(m *fault.LinkModel) { t.link = m }

// Exec runs the builder's current program on DRAM Bender, advancing the
// DRAM-bus cursor, and returns the result plus drained readback lines.
// With a link model installed, the drained readback may come back short by
// its final line or with one line corrupted (marked LinkCorrupt).
func (t *Tile) Exec() (bender.Result, []bender.ReadLine, error) {
	res, err := t.exec(false)
	if err != nil || res.LaunchFailed {
		return res, nil, err
	}
	rb := t.engine.DrainReadback()
	if t.link != nil && len(rb) > 0 {
		if t.link.DropTail() {
			rb = rb[:len(rb)-1]
			t.stats.ShortReadbacks++
		}
	}
	if t.link != nil && len(rb) > 0 {
		if idx, mask, ok := t.link.CorruptReadback(len(rb)); ok {
			line := &rb[idx]
			v := binary.LittleEndian.Uint64(line.Data[:8])
			binary.LittleEndian.PutUint64(line.Data[:8], v^mask)
			line.LinkCorrupt = true
			t.stats.CorruptLines++
		}
	}
	return res, rb, nil
}

// ExecDiscardReads runs the builder's current program like Exec but drops
// read data instead of buffering it (plain access service, whose readback
// nobody consumes).
func (t *Tile) ExecDiscardReads() (bender.Result, error) {
	return t.exec(true)
}

func (t *Tile) exec(discard bool) (bender.Result, error) {
	if t.link != nil && t.link.FailLaunch() {
		// Transient launch failure: the program never reaches Bender. The
		// builder is NOT reset and the cursor does not advance, so the
		// controller can re-flush the identical program; the modeled retry
		// backoff is the controller's to charge.
		t.stats.LaunchFails++
		return bender.Result{LaunchFailed: true}, nil
	}
	prog := t.builder.Program()
	var res bender.Result
	var err error
	if discard {
		res, err = t.engine.ExecDiscardReads(prog, t.dramCursor, t.builder.WriteBuf())
	} else {
		res, err = t.engine.Exec(prog, t.dramCursor, t.builder.WriteBuf())
	}
	if err != nil {
		return res, fmt.Errorf("tile: %w", err)
	}
	t.dramCursor += res.Elapsed
	// A small inter-program gap models the Bender launch turnaround.
	t.dramCursor += t.busPeriod
	t.stats.ProgramsRun++
	t.stats.InstrsRun += int64(len(prog))
	t.builder.Reset()
	return res, nil
}
