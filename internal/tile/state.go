package tile

import (
	"easydram/internal/clock"
	"easydram/internal/snapshot"
)

// Checkpoint hooks. At an engine quiescent point the request slab and the
// incoming FIFO are empty (every issued request has been served, responded
// to, and released), so the tile serializes just its DRAM-bus cursor, its
// event counters, and the host-link fault model's draw counters. The slab's
// free list is an allocation cache, not state.

// SaveState serializes the tile's persistent state. Call only at a
// quiescent point — the FIFO population is encoded so restore can verify.
func (t *Tile) SaveState(e *snapshot.Enc) {
	e.Int(len(t.incoming) - t.head)
	e.I64(int64(t.dramCursor))
	e.I64(t.stats.RequestsIn)
	e.I64(t.stats.ResponsesOut)
	e.Int(t.stats.MaxQueueLen)
	e.I64(t.stats.ProgramsRun)
	e.I64(t.stats.InstrsRun)
	e.I64(t.stats.LaunchFails)
	e.I64(t.stats.CorruptLines)
	e.I64(t.stats.ShortReadbacks)
	e.Bool(t.link != nil)
	if t.link != nil {
		t.link.SaveState(e)
	}
}

// LoadState restores state written by SaveState into a freshly constructed
// tile of the same configuration.
func (t *Tile) LoadState(d *snapshot.Dec) {
	if n := d.Int(); n != 0 {
		if d.Err() == nil {
			d.Failf("tile: snapshot holds %d queued requests; checkpoints must be quiescent", n)
		}
		return
	}
	t.dramCursor = clock.PS(d.I64())
	t.stats.RequestsIn = d.I64()
	t.stats.ResponsesOut = d.I64()
	t.stats.MaxQueueLen = d.Int()
	t.stats.ProgramsRun = d.I64()
	t.stats.InstrsRun = d.I64()
	t.stats.LaunchFails = d.I64()
	t.stats.CorruptLines = d.I64()
	t.stats.ShortReadbacks = d.I64()
	hadLink := d.Bool()
	if d.Err() != nil {
		return
	}
	if hadLink != (t.link != nil) {
		d.Failf("tile: snapshot link-model presence %v, tile %v", hadLink, t.link != nil)
		return
	}
	if t.link != nil {
		t.link.LoadState(d)
	}
}
