package dram

import "easydram/internal/clock"

// In-DRAM bulk bitwise operations (ComputeDRAM / Ambit class, the paper's
// §9 "other related works"): an ACT-PRE-ACT sequence with gaps even shorter
// than RowClone's glitches the row decoder into activating THREE rows
// simultaneously — the two addressed rows plus the row whose address is the
// bitwise OR of the two — and charge sharing leaves every cell at the
// majority value of the three rows. With a control row preset to all-zeros
// the result is AND of the other two; preset to all-ones it is OR.
//
// This file adds the chip-level physics; the Bender builder emits the
// sequence (bender.Builder.BitwiseMAJ) and package techniques wraps it.

// bitwiseEarlyGap is the maximum ACT->PRE and PRE->ACT spacing that
// triggers simultaneous many-row activation (back-to-back command slots at
// DDR4-1333; RowClone's windows are wider).
const bitwiseEarlyGap = 2 * clock.Nanosecond

// TripleRow reports the third row a (r1, r2) many-row activation drags in:
// the row-decoder glitch activates the address-wise OR.
func TripleRow(r1, r2 int) int { return r1 | r2 }

// tryBitwiseMAJ checks whether the ACT at time t on (bank,row) completes a
// many-row activation and, if so, applies the majority function. Returns
// (attempted, succeeded).
func (c *Chip) tryBitwiseMAJ(bank, row int, t clock.PS) (bool, bool) {
	b := &c.banks[bank]
	if !b.senseAmpsHold || row == b.lastActRow {
		return false, false
	}
	if b.preGap > bitwiseEarlyGap || t-b.lastPreTime > bitwiseEarlyGap {
		return false, false
	}
	r1, r2 := b.lastActRow, row
	r3 := TripleRow(r1, r2)
	c.stats.BitwiseOps++
	// All three rows must sit in one subarray, like RowClone.
	sa := c.geom.Subarray(r1)
	if c.geom.Subarray(r2) != sa || c.geom.Subarray(r3) != sa || r3 >= c.cfg.RowsPerBank {
		c.stats.BitwiseFails++
		if c.cfg.TrackData {
			c.scramble(bank, r2)
		}
		return true, false
	}
	if !c.cfg.Ideal && !c.vm.TripleOK(bank, r1, r2) {
		c.stats.BitwiseFails++
		if c.cfg.TrackData {
			c.scramble(bank, r2)
			if r3 != r1 && r3 != r2 {
				c.scramble(bank, r3)
			}
		}
		return true, false
	}
	if c.cfg.TrackData {
		d1 := c.rowData(bank, r1)
		d2 := c.rowData(bank, r2)
		d3 := c.rowData(bank, r3)
		for i := range d1 {
			a, bb, cc := d1[i], d2[i], d3[i]
			maj := (a & bb) | (a & cc) | (bb & cc)
			d1[i], d2[i], d3[i] = maj, maj, maj
		}
	}
	return true, true
}
