package dram

import (
	"easydram/internal/clock"
	"easydram/internal/snapshot"
)

// Checkpoint hooks for the behavioural rank model. The variation model is a
// pure function of (seed, coordinates) and is rebuilt from configuration;
// everything dynamic — bank state, the lazily allocated row-data store and
// disturb counters, the fault model's read counter, the timing checker's
// command history, and the event statistics — serializes here. Lazy tables
// are stored sparsely (only allocated rows / touched banks), walked in
// ascending order so a given chip state always encodes to identical bytes.

// SaveState serializes the chip's full dynamic state.
func (c *Chip) SaveState(e *snapshot.Enc) {
	e.Int(len(c.banks))
	for i := range c.banks {
		b := &c.banks[i]
		e.Int(b.openRow)
		e.Int(b.lastActRow)
		e.I64(int64(b.lastActTime))
		e.I64(int64(b.lastPreTime))
		e.Bool(b.senseAmpsHold)
		e.I64(int64(b.preGap))
	}
	c.saveStats(e)

	// Row-data store: (bank, row, bytes) for every allocated row.
	var nRows int
	c.walkRows(func(bank, row int, data []byte) { nRows++ })
	e.Int(nRows)
	c.walkRows(func(bank, row int, data []byte) {
		e.Int(bank)
		e.Int(row)
		e.Bytes(data)
	})

	// Disturb counters: per touched bank, the nonzero (row, count) pairs.
	e.Bool(c.fm != nil)
	if c.fm != nil {
		c.fm.SaveState(e)
		var nBanks int
		for _, d := range c.disturb {
			if d != nil {
				nBanks++
			}
		}
		e.Int(nBanks)
		for bank, d := range c.disturb {
			if d == nil {
				continue
			}
			e.Int(bank)
			var nz int
			for _, v := range d {
				if v != 0 {
					nz++
				}
			}
			e.Int(nz)
			for row, v := range d {
				if v != 0 {
					e.Int(row)
					e.I64(int64(v))
				}
			}
		}
	}

	c.checker.SaveState(e)
}

// LoadState restores state written by SaveState into a freshly constructed
// chip of the same configuration. Geometry violations fail the decoder.
func (c *Chip) LoadState(d *snapshot.Dec) {
	if n := d.Int(); n != len(c.banks) {
		if d.Err() == nil {
			d.Failf("dram: snapshot has %d banks, chip has %d", n, len(c.banks))
		}
		return
	}
	for i := range c.banks {
		b := &c.banks[i]
		b.openRow = d.Int()
		b.lastActRow = d.Int()
		b.lastActTime = clock.PS(d.I64())
		b.lastPreTime = clock.PS(d.I64())
		b.senseAmpsHold = d.Bool()
		b.preGap = clock.PS(d.I64())
	}
	c.loadStats(d)

	nRows := d.Int()
	if d.Err() != nil {
		return
	}
	if nRows < 0 || nRows > d.Remaining()/20 {
		d.Fail(snapshot.ErrTruncated)
		return
	}
	for i := 0; i < nRows; i++ {
		bank := d.Int()
		row := d.Int()
		data := d.BytesView()
		if d.Err() != nil {
			return
		}
		if bank < 0 || bank >= len(c.banks) || row < 0 || row >= c.cfg.RowsPerBank {
			d.Failf("dram: row entry (%d,%d) out of range", bank, row)
			return
		}
		if len(data) != c.RowBytes() {
			d.Failf("dram: row entry (%d,%d) holds %d bytes, want %d", bank, row, len(data), c.RowBytes())
			return
		}
		copy(c.rowData(bank, row), data)
	}

	hadFM := d.Bool()
	if d.Err() != nil {
		return
	}
	if hadFM != (c.fm != nil) {
		d.Failf("dram: snapshot fault-injection presence %v, chip %v", hadFM, c.fm != nil)
		return
	}
	if c.fm != nil {
		c.fm.LoadState(d)
		nBanks := d.Int()
		if d.Err() != nil {
			return
		}
		if nBanks < 0 || nBanks > len(c.banks) {
			d.Failf("dram: %d disturb banks out of range", nBanks)
			return
		}
		for i := 0; i < nBanks; i++ {
			bank := d.Int()
			nz := d.Int()
			if d.Err() != nil {
				return
			}
			if bank < 0 || bank >= len(c.banks) {
				d.Failf("dram: disturb bank %d out of range", bank)
				return
			}
			if nz < 0 || nz > d.Remaining()/16 {
				d.Fail(snapshot.ErrTruncated)
				return
			}
			arr := c.disturb[bank]
			if arr == nil {
				arr = make([]int32, c.cfg.RowsPerBank)
				c.disturb[bank] = arr
			}
			for j := 0; j < nz; j++ {
				row := d.Int()
				v := d.I64()
				if d.Err() != nil {
					return
				}
				if row < 0 || row >= c.cfg.RowsPerBank {
					d.Failf("dram: disturb row %d out of range", row)
					return
				}
				arr[row] = int32(v)
			}
		}
	}

	c.checker.LoadState(d)
}

// walkRows visits every allocated row of the lazy data store in ascending
// (bank, row) order.
func (c *Chip) walkRows(fn func(bank, row int, data []byte)) {
	for bank, bt := range c.rows {
		if bt == nil {
			continue
		}
		for ci, ch := range bt {
			if ch == nil {
				continue
			}
			for ri, data := range ch {
				if data == nil {
					continue
				}
				fn(bank, ci<<rowChunkShift|ri, data)
			}
		}
	}
}

func (c *Chip) saveStats(e *snapshot.Enc) {
	s := &c.stats
	for _, v := range []int64{
		s.ACTs, s.PREs, s.RDs, s.WRs, s.REFs,
		s.RowClones, s.RowCloneFails, s.BitwiseOps, s.BitwiseFails,
		s.CorruptedReads, s.TimingViolations, s.RankSwitchViolations,
		s.DisturbFlips, s.TransientReads, s.StuckReads,
	} {
		e.I64(v)
	}
}

func (c *Chip) loadStats(d *snapshot.Dec) {
	s := &c.stats
	for _, p := range []*int64{
		&s.ACTs, &s.PREs, &s.RDs, &s.WRs, &s.REFs,
		&s.RowClones, &s.RowCloneFails, &s.BitwiseOps, &s.BitwiseFails,
		&s.CorruptedReads, &s.TimingViolations, &s.RankSwitchViolations,
		&s.DisturbFlips, &s.TransientReads, &s.StuckReads,
	} {
		*p = d.I64()
	}
}

// SaveState serializes the module: every rank's chip state plus the shared
// bus's CAS history and violation counter.
func (m *Module) SaveState(e *snapshot.Enc) {
	e.Int(len(m.ranks))
	for _, c := range m.ranks {
		c.SaveState(e)
	}
	e.I64(m.busViolations)
	e.Bool(m.bus != nil)
	if m.bus != nil {
		m.bus.SaveState(e)
	}
}

// LoadState restores state written by SaveState.
func (m *Module) LoadState(d *snapshot.Dec) {
	if n := d.Int(); n != len(m.ranks) {
		if d.Err() == nil {
			d.Failf("dram: snapshot has %d ranks, module has %d", n, len(m.ranks))
		}
		return
	}
	for _, c := range m.ranks {
		c.LoadState(d)
		if d.Err() != nil {
			return
		}
	}
	m.busViolations = d.I64()
	hadBus := d.Bool()
	if d.Err() != nil {
		return
	}
	if hadBus != (m.bus != nil) {
		d.Failf("dram: snapshot bus presence %v, module %v", hadBus, m.bus != nil)
		return
	}
	if m.bus != nil {
		m.bus.LoadState(d)
	}
}
