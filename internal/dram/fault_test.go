package dram

import (
	"bytes"
	"testing"

	"easydram/internal/clock"
	"easydram/internal/fault"
)

// hammer performs n double-sided ACT/PRE pairs around victim row (rows
// victim-1 and victim+1 of bank), spaced tRC apart, on any Device.
func hammer(d Device, bank, victim, n int, t0 clock.PS) clock.PS {
	p := d.Timing()
	t := t0
	for i := 0; i < n; i++ {
		for _, row := range []int{victim - 1, victim + 1} {
			d.Activate(bank, row, t, 0)
			d.Precharge(bank, t+p.TRAS)
			t += p.TRC
		}
	}
	return t
}

func faultedConfig() Config {
	cfg := DefaultConfig()
	cfg.TrackData = true
	cfg.RowsPerBank = 1024
	cfg.Faults = fault.ChipConfig{DisturbEnabled: true, DisturbMinThreshold: 32}
	return cfg
}

func TestDisturbFlipsAndRefreshReset(t *testing.T) {
	cfg := faultedConfig()
	chip, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const bank, victim = 1, 11
	before := make([]byte, LineBytes)
	if !chip.PeekLine(Addr{Bank: bank, Row: victim}, before[:LineBytes]) {
		t.Fatal("PeekLine failed with data tracking on")
	}
	// Each double-sided pair bumps the victim twice; the jitter-free
	// threshold of 32 flips a bit after 16 pairs — run 20 to be past it.
	end := hammer(chip, bank, victim, 20, 0)
	st := chip.Stats()
	if st.DisturbFlips == 0 {
		t.Fatalf("no disturb flips after 40 adjacent ACTs at threshold 32: %+v", st)
	}
	after := make([]byte, chip.RowBytes())
	flipped := false
	for col := 0; col < cfg.ColsPerRow; col++ {
		a := Addr{Bank: bank, Row: victim, Col: col}
		chip.PeekLine(a, after[:LineBytes])
		prev := make([]byte, LineBytes)
		// Re-derive the pre-hammer contents from a twin chip: same seed,
		// same scrambled fill, no hammering.
		twin, _ := New(cfg)
		twin.PeekLine(a, prev)
		if !bytes.Equal(prev, after[:LineBytes]) {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("DisturbFlips counted but no victim-row bit changed")
	}
	// Refresh restores every cell and clears the disturb counters.
	chip.Refresh(end)
	if n := chip.DisturbCounter(bank, victim); n != 0 {
		t.Fatalf("disturb counter survived refresh: %d", n)
	}
	// Counters also reset when the victim row itself is activated.
	hammer(chip, bank, victim, 5, end+chip.Timing().TRFC)
	if chip.DisturbCounter(bank, victim) == 0 {
		t.Fatal("expected a partial count before the victim's own ACT")
	}
	tAct := end + chip.Timing().TRFC + 100*chip.Timing().TRC
	chip.Activate(bank, victim, tAct, 0)
	if n := chip.DisturbCounter(bank, victim); n != 0 {
		t.Fatalf("disturb counter survived the victim's own activation: %d", n)
	}
}

// TestChipModuleFlipIdentity pins that a single-rank Module reproduces the
// bare Chip's fault behaviour exactly (rank 0 reuses the chip seed), so
// engine results are independent of which wrapper serves the channel.
func TestChipModuleFlipIdentity(t *testing.T) {
	cfg := faultedConfig()
	chip, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewModule(cfg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	const bank, victim = 2, 100
	hammer(chip, bank, victim, 24, 0)
	hammer(mod, bank, victim, 24, 0)
	cs, ms := chip.Stats(), mod.Stats()
	if cs.DisturbFlips == 0 {
		t.Fatal("hammer produced no flips")
	}
	if cs.DisturbFlips != ms.DisturbFlips || cs.ACTs != ms.ACTs {
		t.Fatalf("chip and single-rank module diverged: %+v vs %+v", cs, ms)
	}
	a, b := make([]byte, LineBytes), make([]byte, LineBytes)
	for col := 0; col < cfg.ColsPerRow; col++ {
		addr := Addr{Bank: bank, Row: victim, Col: col}
		chip.PeekLine(addr, a)
		mod.PeekLine(addr, b)
		if !bytes.Equal(a, b) {
			t.Fatalf("victim row data diverged at col %d", col)
		}
	}
}

// TestDisturbThresholdVariesPerRow pins the seeded per-row threshold jitter:
// with jitter on, different victims flip after different hammer counts.
func TestDisturbThresholdVariesPerRow(t *testing.T) {
	cfg := faultedConfig()
	cfg.Faults.DisturbJitter = 64
	chip, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flipsAt := func(victim int) int64 {
		before := chip.Stats().DisturbFlips
		hammer(chip, 0, victim, 48, clock.PS(victim)<<32)
		return chip.Stats().DisturbFlips - before
	}
	counts := map[int64]bool{}
	for _, v := range []int{10, 20, 30, 40, 50, 60} {
		counts[flipsAt(v)] = true
	}
	if len(counts) < 2 {
		t.Fatalf("six victims all flipped identically often under jitter: %v", counts)
	}
}
