// Package dram is a behavioural model of a DDR4 rank: banks, rows,
// subarrays, open-row state, and — critically for EasyDRAM — the physical
// consequences of command sequences that violate JEDEC timing:
//
//   - ACT -> (early) PRE -> (early) ACT inside one subarray performs a
//     RowClone copy from the first to the second row when the row pair is
//     clonable, and corrupts the destination otherwise;
//   - RD issued before the row's minimum reliable tRCD returns corrupted
//     data for weak cache lines.
//
// The model stands in for the real DDR4 module behind DRAM Bender. It is
// deterministic: physical behaviour is a pure function of the command trace
// and the seeded variation model.
package dram

import (
	"encoding/binary"
	"fmt"

	"easydram/internal/clock"
	"easydram/internal/fault"
	"easydram/internal/timing"
	"easydram/internal/variation"
)

// LineBytes is the cache-line (and DRAM burst) size in bytes.
const LineBytes = 64

// Addr identifies one cache-line-sized column in the module. Chan and Rank
// are the topology coordinates filled in by topology-aware mappers: Bank is
// the channel-global bank index (ranks appear as consecutive bank groups,
// so Rank always equals Bank / banksPerRank), Chan the owning channel. The
// single-channel, single-rank module leaves both zero.
type Addr struct {
	Chan int
	Rank int
	Bank int
	Row  int
	Col  int
}

func (a Addr) String() string {
	if a.Chan != 0 || a.Rank != 0 {
		return fmt.Sprintf("<chan %d, rank %d, bank %d, row %d, col %d>", a.Chan, a.Rank, a.Bank, a.Row, a.Col)
	}
	return fmt.Sprintf("<bank %d, row %d, col %d>", a.Bank, a.Row, a.Col)
}

// Stats counts chip-level events.
type Stats struct {
	ACTs             int64
	PREs             int64
	RDs              int64
	WRs              int64
	REFs             int64
	RowClones        int64
	RowCloneFails    int64
	BitwiseOps       int64
	BitwiseFails     int64
	CorruptedReads   int64
	TimingViolations int64
	// RankSwitchViolations counts consecutive CAS commands to different
	// ranks of one channel spaced closer than the shared bus's rank-to-rank
	// turnaround (see timing.RankBus). Always zero for a single-rank Chip.
	RankSwitchViolations int64
	// DisturbFlips counts read-disturb bit flips (a victim row's activation
	// counter crossed its threshold) — silent data corruption: nothing at
	// the command interface reports it, so any non-zero count under a
	// mitigation policy is an escaped flip. TransientReads and StuckReads
	// count injected fault-model read corruptions (detectable: the read
	// reports unreliable, and the SMC's verify-and-retry path sees it).
	// All stay zero without fault injection (see Config.Faults).
	DisturbFlips   int64
	TransientReads int64
	StuckReads     int64
}

// Accumulate adds o's counters into s (multi-channel systems sum their
// per-channel module statistics into one Result).
func (s *Stats) Accumulate(o Stats) {
	s.ACTs += o.ACTs
	s.PREs += o.PREs
	s.RDs += o.RDs
	s.WRs += o.WRs
	s.REFs += o.REFs
	s.RowClones += o.RowClones
	s.RowCloneFails += o.RowCloneFails
	s.BitwiseOps += o.BitwiseOps
	s.BitwiseFails += o.BitwiseFails
	s.CorruptedReads += o.CorruptedReads
	s.TimingViolations += o.TimingViolations
	s.RankSwitchViolations += o.RankSwitchViolations
	s.DisturbFlips += o.DisturbFlips
	s.TransientReads += o.TransientReads
	s.StuckReads += o.StuckReads
}

// Config describes the modelled rank.
type Config struct {
	BankGroups    int
	BanksPerGroup int
	RowsPerBank   int
	ColsPerRow    int // cache-line columns per row (128 => 8 KiB rows)
	SubarrayRows  int
	Timing        timing.Params
	Seed          uint64
	// TrackData disables the backing data store when false; timing-only
	// workload runs set it false to avoid moving bytes they never check.
	TrackData bool
	// ClonableFraction overrides the variation model's default when > 0.
	ClonableFraction float64
	// Ideal removes process variation entirely: every read is reliable at
	// any tRCD and every intra-subarray RowClone succeeds. This is how
	// software simulators (Ramulator 2.0) model DRAM (§7.2: "All source
	// and destination row pairs can successfully perform RowClone
	// operations in Ramulator 2.0 simulations").
	Ideal bool
	// Faults configures chip-level fault injection (read disturb, transient
	// read corruption, stuck-at lines). The zero value injects nothing and
	// keeps the command paths byte-identical to a fault-free build.
	Faults fault.ChipConfig
}

// DefaultConfig mirrors the paper's module: 4 bank groups x 4 banks,
// 32K rows x 8 KiB, DDR4-1333.
func DefaultConfig() Config {
	return Config{
		BankGroups:    4,
		BanksPerGroup: 4,
		RowsPerBank:   32768,
		ColsPerRow:    128,
		SubarrayRows:  512,
		Timing:        timing.DDR41333(),
		Seed:          1,
		TrackData:     true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BankGroups <= 0 || c.BanksPerGroup <= 0 {
		return fmt.Errorf("dram: bank organisation must be positive, got %dx%d", c.BankGroups, c.BanksPerGroup)
	}
	if c.RowsPerBank <= 0 || c.ColsPerRow <= 0 {
		return fmt.Errorf("dram: row organisation must be positive, got %d rows x %d cols", c.RowsPerBank, c.ColsPerRow)
	}
	if c.SubarrayRows <= 0 || c.RowsPerBank%c.SubarrayRows != 0 {
		return fmt.Errorf("dram: subarray size %d must divide rows per bank %d", c.SubarrayRows, c.RowsPerBank)
	}
	return c.Timing.Validate()
}

// bankState is the chip-internal state of one bank.
type bankState struct {
	openRow     int // -1 when precharged
	lastActRow  int
	lastActTime clock.PS
	lastPreTime clock.PS
	// senseAmpsHold reports that the last precharge happened so early that
	// the sense amplifiers still hold the previously activated row's charge
	// (precondition for RowClone's second activation).
	senseAmpsHold bool
	// preGap is the ACT->PRE spacing of the last precharge (distinguishes
	// the many-row-activation window from RowClone's).
	preGap clock.PS
}

// Chip is the behavioural rank model. Not safe for concurrent use; the
// emulation engine is single-threaded by design (determinism).
type Chip struct {
	cfg     Config
	geom    variation.Geometry
	vm      *variation.Model
	checker *timing.Checker
	banks   []bankState
	// maxMinRCD caches vm.MaxMinTRCD(): reads at or above it are reliable
	// without consulting the variation model.
	maxMinRCD clock.PS
	// rows holds the backing data store as two-level per-bank tables
	// (bank -> rowChunkRows-row chunk -> row), every level allocated
	// lazily. The RD/WR data path indexes instead of hashing, and the
	// GC-scannable metadata stays proportional to the row neighbourhoods
	// actually touched rather than the full 32K-row geometry.
	rows  [][][][]byte
	stats Stats

	// fm is the fault-injection model (nil without injection: every hook
	// below is a single nil check on the disabled path). disturb holds the
	// per-bank victim activation counters, allocated lazily per bank.
	fm      *fault.ChipModel
	disturb [][]int32
}

// rowChunkShift/rowChunkRows size the row-table chunks (a power of two:
// the data path splits row indices with a shift and mask).
const (
	rowChunkShift = 8
	rowChunkRows  = 1 << rowChunkShift
)

// New constructs a Chip.
func New(cfg Config) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geom := variation.Geometry{
		Banks:        cfg.BankGroups * cfg.BanksPerGroup,
		RowsPerBank:  cfg.RowsPerBank,
		ColsPerRow:   cfg.ColsPerRow,
		SubarrayRows: cfg.SubarrayRows,
	}
	var opts []variation.Option
	if cfg.ClonableFraction > 0 {
		opts = append(opts, variation.WithClonableFraction(cfg.ClonableFraction))
	}
	vm, err := variation.NewModel(geom, cfg.Seed, opts...)
	if err != nil {
		return nil, fmt.Errorf("dram: %w", err)
	}
	banks := make([]bankState, geom.Banks)
	for i := range banks {
		banks[i] = bankState{openRow: -1, lastActRow: -1, lastActTime: -1 << 60, lastPreTime: -1 << 60}
	}
	c := &Chip{
		cfg:       cfg,
		geom:      geom,
		vm:        vm,
		checker:   timing.NewChecker(cfg.Timing, cfg.BankGroups, cfg.BanksPerGroup),
		banks:     banks,
		maxMinRCD: vm.MaxMinTRCD(),
		rows:      make([][][][]byte, geom.Banks),
	}
	if cfg.Faults.Enabled() {
		// The rank's variation seed feeds the fault model too, so per-rank
		// fault maps diversify exactly like per-rank variation maps.
		fm, err := fault.NewChipModel(cfg.Faults, cfg.Seed, geom.ColsPerRow)
		if err != nil {
			return nil, fmt.Errorf("dram: %w", err)
		}
		c.fm = fm
		c.disturb = make([][]int32, geom.Banks)
	}
	return c, nil
}

// Config returns the chip configuration.
func (c *Chip) Config() Config { return c.cfg }

// Geometry returns the modelled geometry.
func (c *Chip) Geometry() variation.Geometry { return c.geom }

// Variation exposes the underlying variation model (used by characterization
// tests; the SMC must discover it by profiling, like on real silicon).
func (c *Chip) Variation() *variation.Model { return c.vm }

// Stats returns a snapshot of chip event counters.
func (c *Chip) Stats() Stats { return c.stats }

// Timing returns the nominal timing parameters of the module.
func (c *Chip) Timing() timing.Params { return c.cfg.Timing }

// RowBytes reports the row size in bytes.
func (c *Chip) RowBytes() int { return c.cfg.ColsPerRow * LineBytes }

func (c *Chip) rowData(bank, row int) []byte {
	bt := c.rows[bank]
	if bt == nil {
		bt = make([][][]byte, (c.cfg.RowsPerBank+rowChunkRows-1)/rowChunkRows)
		c.rows[bank] = bt
	}
	ch := bt[row>>rowChunkShift]
	if ch == nil {
		ch = make([][]byte, rowChunkRows)
		bt[row>>rowChunkShift] = ch
	}
	d := ch[row&(rowChunkRows-1)]
	if d == nil {
		d = make([]byte, c.RowBytes())
		ch[row&(rowChunkRows-1)] = d
	}
	return d
}

// rowCloneEarlyPRE is how soon after ACT a PRE must arrive for the sense
// amps to still hold the row (interrupted restoration).
const rowCloneEarlyPRE = 15 * clock.Nanosecond

// rowCloneEarlyACT is how soon after the early PRE the second ACT must
// arrive for charge sharing to copy the held data into the new row.
const rowCloneEarlyACT = 10 * clock.Nanosecond

// Activate issues ACT(bank,row) at absolute time t with effective tRCD rcd
// (0 = nominal). It returns whether this activation completed a RowClone
// sequence, and whether that clone succeeded. (Many-row activations —
// bitwise MAJ, see bitwise.go — are detected here too and reported through
// Stats; they also count as a "clone" attempt for the caller.)
func (c *Chip) Activate(bank, row int, t clock.PS, rcd clock.PS) (cloned, cloneOK bool) {
	c.boundsRow(bank, row)
	b := &c.banks[bank]
	c.stats.TimingViolations += int64(c.checker.ApplyCount(timing.CmdACT, bank, t, rcd))
	c.stats.ACTs++
	if c.fm != nil && c.fm.DisturbEnabled() {
		c.noteActivate(bank, row)
	}

	if attempted, ok := c.tryBitwiseMAJ(bank, row, t); attempted {
		b.openRow = row
		b.lastActRow = row
		b.lastActTime = t
		b.senseAmpsHold = false
		c.checker.Bank(bank).OpenRow = row
		return true, ok
	}

	if b.senseAmpsHold && t-b.lastPreTime <= rowCloneEarlyACT && row != b.lastActRow {
		// RowClone second activation: the sense amps drive the held data
		// into the newly opened row.
		cloned = true
		if c.cfg.Ideal || c.vm.Clonable(bank, b.lastActRow, row) {
			c.stats.RowClones++
			cloneOK = true
			if c.cfg.TrackData {
				copy(c.rowData(bank, row), c.rowData(bank, b.lastActRow))
			}
		} else {
			c.stats.RowCloneFails++
			if c.cfg.TrackData {
				c.scramble(bank, row)
			}
		}
	}

	b.openRow = row
	b.lastActRow = row
	b.lastActTime = t
	b.senseAmpsHold = false
	c.checker.Bank(bank).OpenRow = row
	return cloned, cloneOK
}

// Precharge issues PRE(bank) at absolute time t.
func (c *Chip) Precharge(bank int, t clock.PS) {
	c.boundsBank(bank)
	b := &c.banks[bank]
	c.stats.TimingViolations += int64(c.checker.ApplyCount(timing.CmdPRE, bank, t, 0))
	c.stats.PREs++
	// Early precharge interrupts restoration and leaves the sense amps
	// holding the row's data (RowClone first half).
	b.senseAmpsHold = b.openRow >= 0 && t-b.lastActTime <= rowCloneEarlyPRE
	b.preGap = t - b.lastActTime
	b.lastPreTime = t
	b.openRow = -1
}

// Read issues RD(bank, open row, col) at absolute time t and copies the line
// into dst (len >= LineBytes) when data tracking is on. It reports whether
// the read returned reliable data given the effective tRCD of the open row's
// activation.
func (c *Chip) Read(bank, col int, t clock.PS, dst []byte) (reliable bool, err error) {
	c.boundsBank(bank)
	b := &c.banks[bank]
	if b.openRow < 0 {
		return false, fmt.Errorf("dram: RD on precharged bank %d", bank)
	}
	if col < 0 || col >= c.cfg.ColsPerRow {
		return false, fmt.Errorf("dram: RD column %d out of range", col)
	}
	c.stats.TimingViolations += int64(c.checker.ApplyCount(timing.CmdRD, bank, t, 0))
	c.stats.RDs++

	effRCD := t - b.lastActTime
	if nominal := c.cfg.Timing.TRCD; effRCD > nominal {
		effRCD = nominal
	}
	// At or above the variation grid's top level every line is reliable;
	// normal (nominal-timing) reads skip the noise-field evaluation.
	varReliable := c.cfg.Ideal || effRCD >= c.maxMinRCD || c.vm.ReadReliable(bank, b.openRow, col, effRCD)
	if !varReliable {
		c.stats.CorruptedReads++
	}
	reliable = varReliable
	// Injected read faults are detectable (the modeled in-line ECC reports
	// the read unreliable): a stuck line refails every retry, a transient
	// draw does not repeat.
	var faultMask uint64
	if c.fm != nil {
		if mask, stuck := c.fm.StuckAt(bank, b.openRow, col); stuck {
			reliable = false
			faultMask = mask
			c.stats.StuckReads++
		} else if mask, hit := c.fm.TransientRead(); hit {
			reliable = false
			faultMask = mask
			c.stats.TransientReads++
		}
	}
	if c.cfg.TrackData && dst != nil {
		data := c.rowData(bank, b.openRow)
		copy(dst[:LineBytes], data[col*LineBytes:])
		if !varReliable {
			faultMask ^= c.vm.CorruptionMask(bank, b.openRow, col)
		}
		if faultMask != 0 {
			v := binary.LittleEndian.Uint64(dst[:8])
			binary.LittleEndian.PutUint64(dst[:8], v^faultMask)
		}
	}
	return reliable, nil
}

// Write issues WR(bank, open row, col) at absolute time t, storing src when
// data tracking is on.
func (c *Chip) Write(bank, col int, t clock.PS, src []byte) error {
	c.boundsBank(bank)
	b := &c.banks[bank]
	if b.openRow < 0 {
		return fmt.Errorf("dram: WR on precharged bank %d", bank)
	}
	if col < 0 || col >= c.cfg.ColsPerRow {
		return fmt.Errorf("dram: WR column %d out of range", col)
	}
	c.stats.TimingViolations += int64(c.checker.ApplyCount(timing.CmdWR, bank, t, 0))
	c.stats.WRs++
	if c.cfg.TrackData && src != nil {
		data := c.rowData(bank, b.openRow)
		copy(data[col*LineBytes:(col+1)*LineBytes], src[:LineBytes])
	}
	return nil
}

// Refresh issues REF at absolute time t (all banks must be precharged in
// real DDR4; the model tolerates open banks but closes them).
func (c *Chip) Refresh(t clock.PS) {
	c.checker.ApplyCount(timing.CmdREF, 0, t, 0)
	c.stats.REFs++
	for i := range c.banks {
		c.banks[i].openRow = -1
		c.banks[i].senseAmpsHold = false
	}
	// Refresh restores every cell, zeroing all disturb counters.
	for _, d := range c.disturb {
		clear(d)
	}
}

// OpenRow reports the open row of bank, or -1 when precharged.
func (c *Chip) OpenRow(bank int) int {
	c.boundsBank(bank)
	return c.banks[bank].openRow
}

// PeekLine copies the stored contents of addr into dst without issuing any
// command. Test/debug helper; returns false when data tracking is off.
func (c *Chip) PeekLine(a Addr, dst []byte) bool {
	if !c.cfg.TrackData {
		return false
	}
	c.boundsRow(a.Bank, a.Row)
	data := c.rowData(a.Bank, a.Row)
	copy(dst[:LineBytes], data[a.Col*LineBytes:])
	return true
}

// PokeLine stores src at addr without issuing any command. Test helper.
func (c *Chip) PokeLine(a Addr, src []byte) bool {
	if !c.cfg.TrackData {
		return false
	}
	c.boundsRow(a.Bank, a.Row)
	data := c.rowData(a.Bank, a.Row)
	copy(data[a.Col*LineBytes:(a.Col+1)*LineBytes], src[:LineBytes])
	return true
}

// noteActivate performs the disturb bookkeeping of one ACT: the activated
// row's own cells are restored (its victim counter resets) while both
// physically adjacent rows accumulate one disturb event each, flipping a
// bit once their seeded threshold is crossed.
func (c *Chip) noteActivate(bank, row int) {
	d := c.disturb[bank]
	if d == nil {
		d = make([]int32, c.cfg.RowsPerBank)
		c.disturb[bank] = d
	}
	d[row] = 0
	if row > 0 {
		c.bumpVictim(bank, row-1, d)
	}
	if row+1 < c.cfg.RowsPerBank {
		c.bumpVictim(bank, row+1, d)
	}
}

// bumpVictim charges one disturb event to a victim row. Crossing the
// threshold flips one bit of the stored row (silent corruption: reads of
// the flipped line stay "reliable" — only mitigation prevents it) and
// restarts the victim's accumulation.
func (c *Chip) bumpVictim(bank, victim int, d []int32) {
	d[victim]++
	if d[victim] < c.fm.DisturbThreshold(bank, victim) {
		return
	}
	d[victim] = 0
	c.stats.DisturbFlips++
	if c.cfg.TrackData {
		col, mask := c.fm.FlipMask(bank, victim, c.stats.DisturbFlips)
		data := c.rowData(bank, victim)
		off := col * LineBytes
		v := binary.LittleEndian.Uint64(data[off:])
		binary.LittleEndian.PutUint64(data[off:], v^mask)
	}
}

// DisturbCounter reports the victim activation counter of (bank, row)
// (0 without disturb injection). Test/debug helper.
func (c *Chip) DisturbCounter(bank, row int) int {
	c.boundsRow(bank, row)
	if c.disturb == nil || c.disturb[bank] == nil {
		return 0
	}
	return int(c.disturb[bank][row])
}

// scramble fills a row with deterministic garbage (failed RowClone target).
func (c *Chip) scramble(bank, row int) {
	data := c.rowData(bank, row)
	h := uint64(bank)<<32 ^ uint64(row) ^ c.cfg.Seed ^ 0x5ca3b1e
	for i := 0; i+8 <= len(data); i += 8 {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		binary.LittleEndian.PutUint64(data[i:], h)
	}
}

func (c *Chip) boundsBank(bank int) {
	if bank < 0 || bank >= len(c.banks) {
		panic(fmt.Sprintf("dram: bank %d out of range [0,%d)", bank, len(c.banks)))
	}
}

func (c *Chip) boundsRow(bank, row int) {
	c.boundsBank(bank)
	if row < 0 || row >= c.cfg.RowsPerBank {
		panic(fmt.Sprintf("dram: row %d out of range [0,%d)", row, c.cfg.RowsPerBank))
	}
}
