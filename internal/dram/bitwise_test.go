package dram

import (
	"bytes"
	"testing"

	"easydram/internal/clock"
)

// apa issues the back-to-back ACT(r1)-PRE-ACT(r2) many-row-activation
// sequence (1.5 ns command slots, DDR4-1333).
func apa(c *Chip, bank, r1, r2 int) (bool, bool) {
	base := clock.PS(1_000_000)
	c.Activate(bank, r1, base, 0)
	c.Precharge(bank, base+1500)
	return c.Activate(bank, r2, base+3000, 0)
}

func TestTripleRow(t *testing.T) {
	if TripleRow(0b0100, 0b0010) != 0b0110 {
		t.Fatalf("TripleRow wrong")
	}
}

func TestBitwiseMAJComputesMajority(t *testing.T) {
	cfg := testConfig()
	cfg.Ideal = true // deterministic success for the data check
	c := newTestChip(t, cfg)

	r1, r2 := 4, 2
	r3 := TripleRow(r1, r2) // 6
	a := bytes.Repeat([]byte{0b1100_1100}, LineBytes)
	b := bytes.Repeat([]byte{0b1010_1010}, LineBytes)
	ctl := bytes.Repeat([]byte{0x00}, LineBytes) // all-zero control: AND
	c.PokeLine(Addr{Bank: 0, Row: r1, Col: 5}, a)
	c.PokeLine(Addr{Bank: 0, Row: r2, Col: 5}, b)
	c.PokeLine(Addr{Bank: 0, Row: r3, Col: 5}, ctl)

	attempted, ok := apa(c, 0, r1, r2)
	if !attempted || !ok {
		t.Fatalf("many-row activation not detected: attempted=%v ok=%v", attempted, ok)
	}
	got := make([]byte, LineBytes)
	c.PeekLine(Addr{Bank: 0, Row: r3, Col: 5}, got)
	want := byte(0b1000_1000) // AND of the two operands
	for _, v := range got {
		if v != want {
			t.Fatalf("MAJ result %08b, want %08b", v, want)
		}
	}
	// All three rows end with the result (destructive, like Ambit).
	c.PeekLine(Addr{Bank: 0, Row: r1, Col: 5}, got)
	if got[0] != want {
		t.Fatalf("operand row not overwritten with the result")
	}
	if c.Stats().BitwiseOps != 1 || c.Stats().BitwiseFails != 0 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestBitwiseORWithOnesControl(t *testing.T) {
	cfg := testConfig()
	cfg.Ideal = true
	c := newTestChip(t, cfg)
	r1, r2 := 8, 1
	r3 := TripleRow(r1, r2)
	a := bytes.Repeat([]byte{0b1100_0000}, LineBytes)
	b := bytes.Repeat([]byte{0b0000_0011}, LineBytes)
	ones := bytes.Repeat([]byte{0xFF}, LineBytes)
	c.PokeLine(Addr{Bank: 1, Row: r1, Col: 0}, a)
	c.PokeLine(Addr{Bank: 1, Row: r2, Col: 0}, b)
	c.PokeLine(Addr{Bank: 1, Row: r3, Col: 0}, ones)
	if _, ok := apa(c, 1, r1, r2); !ok {
		t.Fatalf("activation failed")
	}
	got := make([]byte, LineBytes)
	c.PeekLine(Addr{Bank: 1, Row: r3, Col: 0}, got)
	if got[0] != 0b1100_0011 {
		t.Fatalf("OR result %08b", got[0])
	}
}

func TestBitwiseCrossSubarrayFails(t *testing.T) {
	cfg := testConfig()
	cfg.Ideal = true
	c := newTestChip(t, cfg)
	// r1 in subarray 0, r2 in subarray 1 (512-row subarrays).
	attempted, ok := apa(c, 0, 4, 600)
	if !attempted || ok {
		t.Fatalf("cross-subarray triple must fail: attempted=%v ok=%v", attempted, ok)
	}
	if c.Stats().BitwiseFails != 1 {
		t.Fatalf("failure not counted")
	}
}

func TestBitwiseVariationGatesSuccess(t *testing.T) {
	c := newTestChip(t, testConfig()) // non-ideal
	okCount, n := 0, 128
	for i := 0; i < n; i++ {
		r1, r2 := 16+i*3, 17+i*3
		if (16+i*3)/512 != (17+i*3)/512 || TripleRow(r1, r2)/512 != r1/512 {
			continue
		}
		if _, ok := apa(c, 2, r1, r2); ok {
			okCount++
		}
	}
	if okCount == 0 {
		t.Fatalf("no triples succeeded — variation model too pessimistic")
	}
	if okCount == n {
		t.Fatalf("all triples succeeded — variation model not applied")
	}
}

func TestRowCloneWindowStillDistinct(t *testing.T) {
	// RowClone's 3 ns gaps must NOT trigger the bitwise path.
	cfg := testConfig()
	cfg.ClonableFraction = 1
	c := newTestChip(t, cfg)
	base := clock.PS(1_000_000)
	c.Activate(0, 10, base, 0)
	c.Precharge(0, base+3000)
	cloned, ok := c.Activate(0, 11, base+6000, 0)
	if !cloned || !ok {
		t.Fatalf("rowclone path broken: %v %v", cloned, ok)
	}
	if c.Stats().BitwiseOps != 0 {
		t.Fatalf("rowclone timing misdetected as bitwise")
	}
	if c.Stats().RowClones != 1 {
		t.Fatalf("rowclone not counted")
	}
}
