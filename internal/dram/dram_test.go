package dram

import (
	"bytes"
	"testing"

	"easydram/internal/clock"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.RowsPerBank = 4096
	return cfg
}

func newTestChip(t *testing.T, cfg Config) *Chip {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := testConfig()
	bad.SubarrayRows = 500 // does not divide rows per bank
	if _, err := New(bad); err == nil {
		t.Fatalf("expected subarray validation error")
	}
	bad = testConfig()
	bad.BankGroups = 0
	if _, err := New(bad); err == nil {
		t.Fatalf("expected bank validation error")
	}
	bad = testConfig()
	bad.Timing.TRCD = 0
	if _, err := New(bad); err == nil {
		t.Fatalf("expected timing validation error")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	c := newTestChip(t, testConfig())
	p := c.Timing()
	var tnow clock.PS

	want := bytes.Repeat([]byte{0x5A}, LineBytes)
	c.Activate(2, 100, tnow, 0)
	tnow += p.TRCD
	if err := c.Write(2, 7, tnow, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	tnow += p.TCWL + p.TBL + p.TWR
	c.Precharge(2, tnow)
	tnow += p.TRP

	c.Activate(2, 100, tnow, 0)
	tnow += p.TRCD
	got := make([]byte, LineBytes)
	reliable, err := c.Read(2, 7, tnow, got)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reliable {
		t.Fatalf("nominal-timing read must be reliable")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %x, want %x", got[:8], want[:8])
	}
}

func TestReadOnPrechargedBankFails(t *testing.T) {
	c := newTestChip(t, testConfig())
	if _, err := c.Read(0, 0, 0, nil); err == nil {
		t.Fatalf("RD on precharged bank must error")
	}
	if err := c.Write(0, 0, 0, nil); err == nil {
		t.Fatalf("WR on precharged bank must error")
	}
}

func TestColumnBounds(t *testing.T) {
	c := newTestChip(t, testConfig())
	c.Activate(0, 0, 0, 0)
	if _, err := c.Read(0, 4096, 20000, nil); err == nil {
		t.Fatalf("out-of-range column must error")
	}
}

func TestRowCloneIntraSubarray(t *testing.T) {
	cfg := testConfig()
	cfg.ClonableFraction = 1 // guarantee success for this test
	c := newTestChip(t, cfg)
	p := c.Timing()

	src := Addr{Bank: 1, Row: 10, Col: 3}
	want := bytes.Repeat([]byte{0xC3}, LineBytes)
	c.PokeLine(src, want)

	// ACT(src) -> early PRE -> early ACT(dst).
	var tnow clock.PS
	c.Activate(1, 10, tnow, 0)
	tnow += 3 * clock.Nanosecond
	c.Precharge(1, tnow)
	tnow += 3 * clock.Nanosecond
	cloned, ok := c.Activate(1, 11, tnow, 0)
	if !cloned || !ok {
		t.Fatalf("intra-subarray quick ACT-PRE-ACT should clone (cloned=%v ok=%v)", cloned, ok)
	}
	got := make([]byte, LineBytes)
	c.PeekLine(Addr{Bank: 1, Row: 11, Col: 3}, got)
	if !bytes.Equal(got, want) {
		t.Fatalf("clone data mismatch")
	}
	if c.Stats().RowClones != 1 {
		t.Fatalf("stats.RowClones = %d", c.Stats().RowClones)
	}
	_ = p
}

func TestRowCloneRequiresQuickTiming(t *testing.T) {
	c := newTestChip(t, testConfig())
	p := c.Timing()
	var tnow clock.PS
	c.Activate(1, 10, tnow, 0)
	tnow += p.TRAS // full restoration: sense amps released
	c.Precharge(1, tnow)
	tnow += p.TRP
	cloned, _ := c.Activate(1, 11, tnow, 0)
	if cloned {
		t.Fatalf("standard-timing ACT-PRE-ACT must not clone")
	}
}

func TestRowCloneFailureScrambles(t *testing.T) {
	cfg := testConfig()
	cfg.ClonableFraction = 0.001 // rounds to zero pairs: force failure
	c := newTestChip(t, cfg)

	src := Addr{Bank: 0, Row: 20, Col: 0}
	dst := Addr{Bank: 0, Row: 21, Col: 0}
	pattern := bytes.Repeat([]byte{0x77}, LineBytes)
	c.PokeLine(src, pattern)
	c.PokeLine(dst, pattern)

	var tnow clock.PS
	c.Activate(0, 20, tnow, 0)
	c.Precharge(0, tnow+3000)
	cloned, ok := c.Activate(0, 21, tnow+6000, 0)
	if !cloned || ok {
		t.Fatalf("expected failed clone attempt (cloned=%v ok=%v)", cloned, ok)
	}
	got := make([]byte, LineBytes)
	c.PeekLine(dst, got)
	if bytes.Equal(got, pattern) {
		t.Fatalf("failed clone must corrupt the destination row")
	}
	if c.Stats().RowCloneFails != 1 {
		t.Fatalf("stats.RowCloneFails = %d", c.Stats().RowCloneFails)
	}
}

func TestReducedTRCDReadCorrupts(t *testing.T) {
	c := newTestChip(t, testConfig())
	vm := c.Variation()

	// Find a weak line.
	for bank := 0; bank < 16; bank++ {
		for row := 0; row < 4096; row++ {
			if vm.Strong(bank, row) {
				continue
			}
			rowV := vm.MinTRCDRow(bank, row)
			for col := 0; col < 128; col++ {
				if vm.MinTRCDLine(bank, row, col) != rowV {
					continue
				}
				want := bytes.Repeat([]byte{0xAB}, LineBytes)
				c.PokeLine(Addr{Bank: bank, Row: row, Col: col}, want)
				var tnow clock.PS
				c.Activate(bank, row, tnow, rowV-500)
				got := make([]byte, LineBytes)
				reliable, err := c.Read(bank, col, tnow+rowV-500, got)
				if err != nil {
					t.Fatalf("Read: %v", err)
				}
				if reliable {
					t.Fatalf("read below min tRCD must be unreliable")
				}
				if bytes.Equal(got, want) {
					t.Fatalf("unreliable read must corrupt data")
				}
				if c.Stats().CorruptedReads != 1 {
					t.Fatalf("stats.CorruptedReads = %d", c.Stats().CorruptedReads)
				}
				return
			}
		}
	}
	t.Fatalf("no weak line found")
}

func TestRefreshClosesBanks(t *testing.T) {
	c := newTestChip(t, testConfig())
	c.Activate(3, 9, 0, 0)
	if c.OpenRow(3) != 9 {
		t.Fatalf("open row not tracked")
	}
	c.Refresh(100000)
	if c.OpenRow(3) != -1 {
		t.Fatalf("refresh must close banks")
	}
	if c.Stats().REFs != 1 {
		t.Fatalf("stats.REFs = %d", c.Stats().REFs)
	}
}

func TestTrackDataOff(t *testing.T) {
	cfg := testConfig()
	cfg.TrackData = false
	c := newTestChip(t, cfg)
	if c.PokeLine(Addr{}, make([]byte, LineBytes)) {
		t.Fatalf("PokeLine must report false with data tracking off")
	}
	c.Activate(0, 0, 0, 0)
	buf := make([]byte, LineBytes)
	if _, err := c.Read(0, 0, 20000, buf); err != nil {
		t.Fatalf("timing-only read failed: %v", err)
	}
}

func TestIdealChipNeverCorrupts(t *testing.T) {
	cfg := testConfig()
	cfg.Ideal = true
	c := newTestChip(t, cfg)
	c.Activate(0, 0, 0, 2000)
	reliable, err := c.Read(0, 0, 2000, nil)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reliable {
		t.Fatalf("ideal chip must never corrupt reads")
	}
	// Ideal clones always succeed, even for normally unclonable pairs.
	c.Precharge(0, 5000)
	if _, ok := c.Activate(0, 1, 8000, 0); !ok {
		t.Fatalf("ideal chip clones must succeed")
	}
}

func TestBoundsPanics(t *testing.T) {
	c := newTestChip(t, testConfig())
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for out-of-range bank")
		}
	}()
	c.Activate(99, 0, 0, 0)
}

func TestAddrString(t *testing.T) {
	a := Addr{Bank: 1, Row: 2, Col: 3}
	if a.String() != "<bank 1, row 2, col 3>" {
		t.Fatalf("Addr.String() = %q", a.String())
	}
}

func TestRowBytes(t *testing.T) {
	c := newTestChip(t, testConfig())
	if c.RowBytes() != 8192 {
		t.Fatalf("RowBytes = %d, want 8192", c.RowBytes())
	}
}
