package dram

import (
	"testing"

	"easydram/internal/clock"
)

func testModuleConfig() Config {
	cfg := DefaultConfig()
	cfg.RowsPerBank = 4096
	return cfg
}

// TestModuleRoutesByGlobalBank pins the rank routing: device-global bank g
// drives rank g/banksPerRank's local bank g%banksPerRank, and per-rank
// state (open rows) stays independent.
func TestModuleRoutesByGlobalBank(t *testing.T) {
	cfg := testModuleConfig()
	m, err := NewModule(cfg, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	bpr := cfg.BankGroups * cfg.BanksPerGroup
	if m.Banks() != 2*bpr || m.BanksPerRank() != bpr {
		t.Fatalf("bank geometry: %d banks, %d per rank", m.Banks(), m.BanksPerRank())
	}
	// Activate one bank in each rank through the global index space.
	m.Activate(3, 100, 0, 0)
	m.Activate(bpr+3, 200, 10*clock.Nanosecond, 0)
	if got := m.Rank(0).OpenRow(3); got != 100 {
		t.Fatalf("rank 0 bank 3 open row = %d", got)
	}
	if got := m.Rank(1).OpenRow(3); got != 200 {
		t.Fatalf("rank 1 bank 3 open row = %d", got)
	}
	if got := m.OpenRow(bpr + 3); got != 200 {
		t.Fatalf("global open row = %d", got)
	}
	st := m.Stats()
	if st.ACTs != 2 {
		t.Fatalf("aggregated ACTs = %d", st.ACTs)
	}
}

// TestModuleSingleRankMatchesChip pins the pass-through property: a 1-rank
// module behaves exactly like the bare chip (same seed, same stats, no bus
// tracking).
func TestModuleSingleRankMatchesChip(t *testing.T) {
	cfg := testModuleConfig()
	m, err := NewModule(cfg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drive := func(a interface {
		Activate(bank, row int, t clock.PS, rcd clock.PS) (bool, bool)
		Read(bank, col int, t clock.PS, dst []byte) (bool, error)
		Precharge(bank int, t clock.PS)
	}) {
		tm := clock.PS(0)
		for i := 0; i < 64; i++ {
			bank, row := i%16, (i*37)%4096
			a.Activate(bank, row, tm, 0)
			tm += 13500
			if _, err := a.Read(bank, i%128, tm, nil); err != nil {
				t.Fatal(err)
			}
			tm += 50000
			a.Precharge(bank, tm)
			tm += 13500
		}
	}
	drive(m)
	drive(chip)
	if m.Stats() != chip.Stats() {
		t.Fatalf("1-rank module diverges from chip:\n%+v\n%+v", m.Stats(), chip.Stats())
	}
	if m.Stats().RankSwitchViolations != 0 {
		t.Fatalf("single rank tracked bus violations")
	}
}

// TestModulePerRankSeeds pins that ranks model distinct silicon: the same
// (bank, row, col) coordinates differ in reliability profile across ranks
// somewhere in a sample window.
func TestModulePerRankSeeds(t *testing.T) {
	cfg := testModuleConfig()
	m, err := NewModule(cfg, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rank(0).Config().Seed == m.Rank(1).Config().Seed {
		t.Fatalf("ranks share a variation seed")
	}
	diff := false
	for row := 0; row < 256 && !diff; row++ {
		for col := 0; col < 8; col++ {
			a := m.Rank(0).Variation().MinTRCDLine(0, row, col)
			b := m.Rank(1).Variation().MinTRCDLine(0, row, col)
			if a != b {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatalf("rank variation models identical over the sample window")
	}
}

// TestModuleBusTurnaround pins the shared-bus check: CAS commands to
// different ranks closer than tBL+tRTRS count violations; properly spaced
// ones do not.
func TestModuleBusTurnaround(t *testing.T) {
	cfg := testModuleConfig()
	m, err := NewModule(cfg, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	bpr := m.BanksPerRank()
	gap := cfg.Timing.TBL + cfg.Timing.RankSwitch()
	tm := clock.PS(0)
	m.Activate(0, 0, tm, 0)
	m.Activate(bpr, 0, tm, 0)
	tm += cfg.Timing.TRCD

	// Same-rank back-to-back CAS: no rank-switch violation.
	m.Read(0, 0, tm, nil)
	m.Read(0, 1, tm+1500, nil)
	if v := m.Stats().RankSwitchViolations; v != 0 {
		t.Fatalf("same-rank CAS counted %d violations", v)
	}
	// Cross-rank CAS one bus cycle later: violation.
	m.Read(bpr, 0, tm+3000, nil)
	if v := m.Stats().RankSwitchViolations; v != 1 {
		t.Fatalf("tight cross-rank CAS counted %d violations, want 1", v)
	}
	// Cross-rank CAS spaced by the full turnaround: clean.
	m.Read(0, 2, tm+3000+gap, nil)
	if v := m.Stats().RankSwitchViolations; v != 1 {
		t.Fatalf("spaced cross-rank CAS counted %d violations, want 1", v)
	}
}

// TestTopologyNormalizeValidate pins the topology helpers.
func TestTopologyNormalizeValidate(t *testing.T) {
	var zero Topology
	n := zero.Normalize()
	if n.Channels != 1 || n.Ranks != 1 || n.Interleave != InterleaveLine {
		t.Fatalf("zero topology normalised to %+v", n)
	}
	if err := zero.Validate(); err != nil {
		t.Fatalf("zero topology must validate: %v", err)
	}
	if err := (Topology{Channels: 3}).Validate(); err == nil {
		t.Fatalf("3 channels must fail")
	}
	if err := (Topology{Ranks: 6}).Validate(); err == nil {
		t.Fatalf("6 ranks must fail")
	}
	if got := (Topology{Channels: 2, Ranks: 2}).String(); got != "2ch x 2rk (line)" {
		t.Fatalf("String() = %q", got)
	}
	if _, err := ParseInterleave("diagonal"); err == nil {
		t.Fatalf("unknown interleave must fail")
	}
	il, err := ParseInterleave("row")
	if err != nil || il != InterleaveRow {
		t.Fatalf("ParseInterleave(row) = %v, %v", il, err)
	}
}
