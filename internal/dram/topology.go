package dram

import (
	"fmt"
	"math/bits"

	"easydram/internal/clock"
	"easydram/internal/timing"
)

// Interleave selects the granularity at which consecutive physical
// addresses rotate across channels.
type Interleave uint8

// Interleaving functions.
const (
	// InterleaveLine rotates consecutive cache lines across channels (the
	// bandwidth-friendly default: streaming traffic spreads over every
	// channel).
	InterleaveLine Interleave = iota
	// InterleaveRow rotates consecutive DRAM rows across channels, keeping
	// each row's lines on one channel (row-locality-friendly: a row-hit
	// burst never straddles channels).
	InterleaveRow
)

func (i Interleave) String() string {
	switch i {
	case InterleaveLine:
		return "line"
	case InterleaveRow:
		return "row"
	}
	return fmt.Sprintf("Interleave(%d)", uint8(i))
}

// ParseInterleave resolves an interleaving name ("line" or "row").
func ParseInterleave(name string) (Interleave, error) {
	switch name {
	case "", "line":
		return InterleaveLine, nil
	case "row":
		return InterleaveRow, nil
	}
	return 0, fmt.Errorf("dram: unknown interleave %q (want line or row)", name)
}

// Topology describes the module organisation above a single rank: how many
// independent channels the system has (each with its own bus, controller
// instance, and Bender pipeline) and how many ranks share each channel's
// bus. The zero value normalises to the paper's single-channel, single-rank
// module.
type Topology struct {
	// Channels is the number of independent memory channels (power of two).
	Channels int
	// Ranks is the number of ranks per channel (power of two). Ranks share
	// the channel's command/data bus and pay a rank-to-rank turnaround on
	// consecutive CAS commands to different ranks.
	Ranks int
	// Interleave selects how physical addresses spread across channels.
	Interleave Interleave
}

// Normalize resolves zero fields to the single-channel, single-rank default.
func (t Topology) Normalize() Topology {
	if t.Channels <= 0 {
		t.Channels = 1
	}
	if t.Ranks <= 0 {
		t.Ranks = 1
	}
	return t
}

// Validate reports topology configuration errors.
func (t Topology) Validate() error {
	t = t.Normalize()
	if t.Channels&(t.Channels-1) != 0 {
		return fmt.Errorf("dram: channel count %d must be a power of two", t.Channels)
	}
	if t.Ranks&(t.Ranks-1) != 0 {
		return fmt.Errorf("dram: rank count %d must be a power of two", t.Ranks)
	}
	if t.Interleave != InterleaveLine && t.Interleave != InterleaveRow {
		return fmt.Errorf("dram: unknown interleave %d", t.Interleave)
	}
	return nil
}

// String renders the topology ("2ch x 2rk (line)").
func (t Topology) String() string {
	t = t.Normalize()
	return fmt.Sprintf("%dch x %drk (%s)", t.Channels, t.Ranks, t.Interleave)
}

// Device is the command surface DRAM Bender drives: a single-rank Chip or a
// multi-rank Module. Bank indices are device-global: a Module exposes its
// ranks as consecutive groups of banks (global bank = rank*banksPerRank +
// rank-local bank), so the controller's open-row table and the Bender
// instruction encoding need no rank field.
type Device interface {
	// Activate issues ACT(bank, row) at absolute time t with effective tRCD
	// rcd (0 = nominal) and reports RowClone completion as Chip.Activate
	// does.
	Activate(bank, row int, t clock.PS, rcd clock.PS) (cloned, cloneOK bool)
	// Precharge issues PRE(bank) at absolute time t.
	Precharge(bank int, t clock.PS)
	// Read issues RD(bank, open row, col) at absolute time t.
	Read(bank, col int, t clock.PS, dst []byte) (reliable bool, err error)
	// Write issues WR(bank, open row, col) at absolute time t.
	Write(bank, col int, t clock.PS, src []byte) error
	// Refresh issues REF at absolute time t (broadcast to every rank).
	Refresh(t clock.PS)
	// Timing returns the nominal timing parameters of the module.
	Timing() timing.Params
}

// seedStride separates per-rank variation seeds: rank r of channel c draws
// its process variation from Seed + (c*ranks+r)*seedStride, so rank 0 of
// channel 0 is bit-identical to the single-chip model while every other
// rank is distinct silicon.
const seedStride = 0x9e3779b97f4a7c15

// Module is one memory channel's population: `ranks` behavioural rank
// models (Chips) sharing a command/data bus. Commands address ranks through
// a device-global bank index (rank = bank >> log2(banksPerRank)); the
// shared bus adds a rank-to-rank turnaround constraint on consecutive CAS
// commands to different ranks, tracked by a timing.RankBus. With one rank
// the module is a pure pass-through: no bus tracking, no extra accounting —
// bit-identical to driving the Chip directly.
type Module struct {
	ranks         []*Chip
	banksPerRank  int
	rankShift     uint
	bankMask      int
	bus           *timing.RankBus
	busViolations int64
}

// NewModule builds a module of `ranks` rank chips from cfg. Each rank gets
// its own variation seed (rank seedOffset+r draws Seed + (seedOffset+r) *
// seedStride, so rank 0 of the first module keeps cfg.Seed exactly);
// multi-channel systems pass channel*ranks as seedOffset to give every
// channel distinct silicon.
func NewModule(cfg Config, ranks, seedOffset int) (*Module, error) {
	if ranks <= 0 {
		ranks = 1
	}
	if ranks&(ranks-1) != 0 {
		return nil, fmt.Errorf("dram: rank count %d must be a power of two", ranks)
	}
	banksPerRank := cfg.BankGroups * cfg.BanksPerGroup
	if banksPerRank <= 0 || banksPerRank&(banksPerRank-1) != 0 {
		return nil, fmt.Errorf("dram: banks per rank %d must be a power of two", banksPerRank)
	}
	m := &Module{
		banksPerRank: banksPerRank,
		rankShift:    uint(bits.TrailingZeros(uint(banksPerRank))),
		bankMask:     banksPerRank - 1,
	}
	for r := 0; r < ranks; r++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(seedOffset+r)*seedStride
		chip, err := New(c)
		if err != nil {
			return nil, err
		}
		m.ranks = append(m.ranks, chip)
	}
	if ranks > 1 {
		m.bus = timing.NewRankBus(cfg.Timing)
	}
	return m, nil
}

// Ranks reports the number of ranks in the module.
func (m *Module) Ranks() int { return len(m.ranks) }

// Rank returns the i-th rank's chip model.
func (m *Module) Rank(i int) *Chip { return m.ranks[i] }

// Banks reports the device-global bank count (ranks x banks per rank).
func (m *Module) Banks() int { return len(m.ranks) * m.banksPerRank }

// BanksPerRank reports the per-rank bank count.
func (m *Module) BanksPerRank() int { return m.banksPerRank }

// Config returns the rank chip configuration (rank 0's seed).
func (m *Module) Config() Config { return m.ranks[0].Config() }

// Timing implements Device.
func (m *Module) Timing() timing.Params { return m.ranks[0].Timing() }

// RowBytes reports the row size in bytes.
func (m *Module) RowBytes() int { return m.ranks[0].RowBytes() }

// split decomposes a device-global bank index.
func (m *Module) split(bank int) (rank int, local int) {
	rank = bank >> m.rankShift
	if rank < 0 || rank >= len(m.ranks) {
		panic(fmt.Sprintf("dram: global bank %d out of range for %d ranks x %d banks",
			bank, len(m.ranks), m.banksPerRank))
	}
	return rank, bank & m.bankMask
}

// Activate implements Device.
func (m *Module) Activate(bank, row int, t clock.PS, rcd clock.PS) (cloned, cloneOK bool) {
	r, b := m.split(bank)
	return m.ranks[r].Activate(b, row, t, rcd)
}

// Precharge implements Device.
func (m *Module) Precharge(bank int, t clock.PS) {
	r, b := m.split(bank)
	m.ranks[r].Precharge(b, t)
}

// Read implements Device. Consecutive CAS commands to different ranks
// within the shared bus's turnaround window count a rank-switch violation
// (the controller is expected to space them; see timing.RankBus).
func (m *Module) Read(bank, col int, t clock.PS, dst []byte) (bool, error) {
	r, b := m.split(bank)
	if m.bus != nil {
		m.busViolations += int64(m.bus.NoteCAS(r, t))
	}
	return m.ranks[r].Read(b, col, t, dst)
}

// Write implements Device.
func (m *Module) Write(bank, col int, t clock.PS, src []byte) error {
	r, b := m.split(bank)
	if m.bus != nil {
		m.busViolations += int64(m.bus.NoteCAS(r, t))
	}
	return m.ranks[r].Write(b, col, t, src)
}

// Refresh implements Device: REF broadcasts to every rank (their tRFC
// windows overlap; each rank keeps its own refresh/bank state).
func (m *Module) Refresh(t clock.PS) {
	for _, c := range m.ranks {
		c.Refresh(t)
	}
}

// OpenRow reports the open row of the device-global bank, or -1.
func (m *Module) OpenRow(bank int) int {
	r, b := m.split(bank)
	return m.ranks[r].OpenRow(b)
}

// PeekLine copies the stored contents of a (device-global bank coordinates)
// into dst without issuing any command; false when data tracking is off.
func (m *Module) PeekLine(a Addr, dst []byte) bool {
	r, b := m.split(a.Bank)
	a.Bank = b
	return m.ranks[r].PeekLine(a, dst)
}

// PokeLine stores src at a without issuing any command. Test helper.
func (m *Module) PokeLine(a Addr, src []byte) bool {
	r, b := m.split(a.Bank)
	a.Bank = b
	return m.ranks[r].PokeLine(a, src)
}

// Stats sums per-rank chip counters; RankSwitchViolations carries the
// shared bus's rank-to-rank turnaround violations (always zero with one
// rank; individual chips never count any, so accumulating them is safe).
func (m *Module) Stats() Stats {
	var s Stats
	for _, c := range m.ranks {
		s.Accumulate(c.Stats())
	}
	s.RankSwitchViolations = m.busViolations
	return s
}

var (
	_ Device = (*Chip)(nil)
	_ Device = (*Module)(nil)
)
