package smc

import (
	"fmt"

	"easydram/internal/dram"
	"easydram/internal/fault"
	"easydram/internal/mem"
	"easydram/internal/tile"
)

// BenchHarness is a standalone controller + environment over a paper-class
// chip, for benchmarking the SMC service path in isolation (no engine, no
// processor model). BenchmarkSubstrateRowHitBurst and cmd/benchall's
// snapshot metrics share it, so the CI-gated burst numbers measure exactly
// the benchmarked code.
type BenchHarness struct {
	// Ctl is the controller under measurement.
	Ctl *BaseController
	// Env is its execution environment.
	Env *Env

	nextID   uint64
	nextAddr uint64
}

// NewBenchHarness builds the harness: FR-FCFS, open page, data tracking
// off (the substrate benchmarks measure timing, not contents).
func NewBenchHarness() (*BenchHarness, error) {
	cfg := dram.DefaultConfig()
	cfg.TrackData = false
	chip, err := dram.New(cfg)
	if err != nil {
		return nil, err
	}
	tl := tile.New(chip, tile.DefaultCostModel())
	m, err := NewRowBankCol(chip.Geometry().Banks, cfg.ColsPerRow)
	if err != nil {
		return nil, err
	}
	ctl, err := NewBaseController(Config{Mapper: m, Scheduler: FRFCFS{}}, chip.Timing(), chip.Geometry().Banks)
	if err != nil {
		return nil, err
	}
	return &BenchHarness{Ctl: ctl, Env: NewEnv(tl)}, nil
}

// NewFaultFreeBenchHarness builds the harness with every fault seam armed
// but no fault ever firing: chip disturb counting enabled with an
// unreachable threshold, and the controller's verify-and-retry recovery
// path on (so reads take the verify branch and find nothing to retry).
// BenchmarkSubstrateFaultFree gates this configuration's cost: it measures
// what fault tolerance charges the hot path when nothing goes wrong, and it
// must stay allocation-free.
func NewFaultFreeBenchHarness() (*BenchHarness, error) {
	cfg := dram.DefaultConfig()
	cfg.TrackData = false
	cfg.Faults = fault.ChipConfig{
		DisturbEnabled:      true,
		DisturbMinThreshold: 1 << 30, // counters run; no flip is ever reachable
	}
	chip, err := dram.New(cfg)
	if err != nil {
		return nil, err
	}
	tl := tile.New(chip, tile.DefaultCostModel())
	m, err := NewRowBankCol(chip.Geometry().Banks, cfg.ColsPerRow)
	if err != nil {
		return nil, err
	}
	ctl, err := NewBaseController(Config{
		Mapper:      m,
		Scheduler:   FRFCFS{},
		Recovery:    fault.RecoveryConfig{Enabled: true},
		RowsPerBank: cfg.RowsPerBank,
	}, chip.Timing(), chip.Geometry().Banks)
	if err != nil {
		return nil, err
	}
	return &BenchHarness{Ctl: ctl, Env: NewEnv(tl)}, nil
}

// ServeRowBursts pushes and serves n read requests in same-row groups of
// `depth` under the given burst budget (1 = serial service): each group is
// made pending together, then the controller runs until the table drains.
// Addresses walk consecutive cache lines, so groups are row hits with a row
// miss at each row boundary — the row-locality traffic shape burst service
// targets.
func (h *BenchHarness) ServeRowBursts(n, depth, budget int) error {
	env := h.Env
	env.SetBurst(budget, nil)
	for served := 0; served < n; {
		for k := 0; k < depth; k++ {
			h.nextID++
			env.Tile().PushRequest(&mem.Request{ID: h.nextID, Kind: mem.Read, Addr: h.nextAddr})
			h.nextAddr += dram.LineBytes
		}
		for {
			env.Reset(0)
			worked, err := h.Ctl.ServeOne(env)
			if err != nil {
				return fmt.Errorf("smc: bench harness: %w", err)
			}
			if !worked {
				return fmt.Errorf("smc: bench harness: controller idle with %d pending", h.Ctl.Pending())
			}
			served += len(env.Responses())
			if h.Ctl.Pending() == 0 {
				break
			}
		}
	}
	return nil
}
