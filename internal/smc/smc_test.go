package smc

import (
	"testing"
	"testing/quick"

	"easydram/internal/dram"
	"easydram/internal/mem"
	"easydram/internal/tile"
)

func TestRowBankColRoundTrip(t *testing.T) {
	m, err := NewRowBankCol(16, 128)
	if err != nil {
		t.Fatalf("NewRowBankCol: %v", err)
	}
	f := func(raw uint64) bool {
		pa := (raw % (1 << 38)) &^ 63
		return m.Unmap(m.Map(pa)) == pa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowBankColLayout(t *testing.T) {
	m, err := NewRowBankCol(16, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive 8 KiB blocks rotate across banks; a row-aligned block is
	// exactly one row.
	a0 := m.Map(0)
	a1 := m.Map(8192)
	a16 := m.Map(16 * 8192)
	if a0.Bank != 0 || a0.Row != 0 || a0.Col != 0 {
		t.Fatalf("block 0 = %v", a0)
	}
	if a1.Bank != 1 || a1.Row != 0 {
		t.Fatalf("block 1 = %v", a1)
	}
	if a16.Bank != 0 || a16.Row != 1 {
		t.Fatalf("block 16 = %v", a16)
	}
	// Lines within a block stay in one row.
	aMid := m.Map(4096)
	if aMid.Bank != 0 || aMid.Row != 0 || aMid.Col != 64 {
		t.Fatalf("mid-block line = %v", aMid)
	}
	if m.RowBytes() != 8192 || m.Banks() != 16 {
		t.Fatalf("geometry accessors wrong")
	}
}

func TestBankRowColRoundTrip(t *testing.T) {
	m, err := NewBankRowCol(16, 32768, 128)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint64) bool {
		pa := (raw % (uint64(16*32768) * 8192)) &^ 63
		return m.Unmap(m.Map(pa)) == pa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapperValidation(t *testing.T) {
	if _, err := NewRowBankCol(3, 128); err == nil {
		t.Fatalf("non-power-of-two banks must fail")
	}
	if _, err := NewRowBankCol(16, 100); err == nil {
		t.Fatalf("non-power-of-two columns must fail")
	}
	if _, err := NewBankRowCol(16, 1000, 128); err == nil {
		t.Fatalf("non-power-of-two rows must fail")
	}
}

// entries builds a scheduler table from requests, decoding coordinates and
// assigning arrival Seq in slice order (the controller's ingest path does
// the same).
func entries(m Mapper, reqs ...mem.Request) []Entry {
	out := make([]Entry, len(reqs))
	for i, r := range reqs {
		out[i] = Entry{ID: r.ID, Kind: r.Kind, Addr: m.Map(r.Addr), Seq: uint64(i)}
		switch r.Kind {
		case mem.RowClone, mem.Bitwise:
			out[i].Src = m.Map(r.Src)
		}
	}
	return out
}

// openRowsWith returns a 16-bank open-row vector with one bank's row set.
func openRowsWith(bank, row int) []int {
	rows := make([]int, 16)
	for i := range rows {
		rows[i] = -1
	}
	rows[bank] = row
	return rows
}

func TestFRFCFSPicksRowHitRead(t *testing.T) {
	m, _ := NewRowBankCol(16, 128)
	openRows := openRowsWith(0, 5)
	rowHitAddr := m.Unmap(dram.Addr{Bank: 0, Row: 5, Col: 3})
	table := entries(m,
		mem.Request{ID: 1, Kind: mem.Writeback, Addr: m.Unmap(dram.Addr{Bank: 0, Row: 5, Col: 9})},
		mem.Request{ID: 2, Kind: mem.Read, Addr: m.Unmap(dram.Addr{Bank: 2, Row: 7})},
		mem.Request{ID: 3, Kind: mem.Read, Addr: rowHitAddr},
	)
	if got := (FRFCFS{}).Pick(table, openRows); got != 2 {
		t.Fatalf("FR-FCFS picked index %d, want 2 (row-hit read)", got)
	}
	// Without a row-hit read, a row-hit write wins over an older read miss.
	table = table[:2]
	if got := (FRFCFS{}).Pick(table, openRows); got != 0 {
		t.Fatalf("FR-FCFS picked index %d, want 0 (row-hit write)", got)
	}
	// With neither, the oldest read wins over an older writeback.
	table = entries(m,
		mem.Request{ID: 1, Kind: mem.Writeback, Addr: m.Unmap(dram.Addr{Bank: 3, Row: 1})},
		mem.Request{ID: 2, Kind: mem.Read, Addr: m.Unmap(dram.Addr{Bank: 2, Row: 7})},
	)
	if got := (FRFCFS{}).Pick(table, openRows); got != 1 {
		t.Fatalf("FR-FCFS picked index %d, want 1 (read priority)", got)
	}
}

func TestFRFCFSUsesSeqNotIndexOrder(t *testing.T) {
	// The table is unordered (swap-remove): every priority class must be
	// resolved by Seq, not by slice position. Build tables whose oldest
	// entry sits at the *end*.
	m, _ := NewRowBankCol(16, 128)
	openRows := openRowsWith(0, 5)
	hit := func(id uint64, col int) mem.Request {
		return mem.Request{ID: id, Kind: mem.Read, Addr: m.Unmap(dram.Addr{Bank: 0, Row: 5, Col: col})}
	}
	table := entries(m, hit(1, 0), hit(2, 1), hit(3, 2))
	// Scramble: seq order is 2 (oldest), 0, 1.
	table[0].Seq, table[1].Seq, table[2].Seq = 1, 2, 0
	if got := (FRFCFS{}).Pick(table, openRows); got != 2 {
		t.Fatalf("FR-FCFS picked index %d, want 2 (lowest Seq among row-hit reads)", got)
	}
}

func TestFRFCFSOldestFallbackCoversTechniques(t *testing.T) {
	// A table holding only technique requests plus non-read misses must fall
	// back to the oldest request by arrival, wherever it sits in the slice.
	m, _ := NewRowBankCol(16, 128)
	openRows := openRowsWith(0, 5) // no entry hits this row
	table := entries(m,
		mem.Request{ID: 1, Kind: mem.RowClone, Addr: m.Unmap(dram.Addr{Bank: 1, Row: 3}), Src: m.Unmap(dram.Addr{Bank: 1, Row: 2})},
		mem.Request{ID: 2, Kind: mem.Writeback, Addr: m.Unmap(dram.Addr{Bank: 2, Row: 7})},
		mem.Request{ID: 3, Kind: mem.Profile, Addr: m.Unmap(dram.Addr{Bank: 4, Row: 9})},
	)
	// Swap-remove scrambled the slice: the oldest arrival is the profile.
	table[0].Seq, table[1].Seq, table[2].Seq = 7, 5, 1
	if got := (FRFCFS{}).Pick(table, openRows); got != 2 {
		t.Fatalf("FR-FCFS picked index %d, want 2 (oldest by Seq)", got)
	}
	// A lone writeback miss (non-read, no hit) is still served.
	table = entries(m, mem.Request{ID: 9, Kind: mem.Writeback, Addr: m.Unmap(dram.Addr{Bank: 2, Row: 7})})
	if got := (FRFCFS{}).Pick(table, openRows); got != 0 {
		t.Fatalf("FR-FCFS picked index %d, want 0", got)
	}
}

func TestFCFSPicksOldest(t *testing.T) {
	m, _ := NewRowBankCol(16, 128)
	table := entries(m, mem.Request{ID: 9}, mem.Request{ID: 1})
	none := openRowsWith(0, -1)
	if got := (FCFS{}).Pick(table, none); got != 0 {
		t.Fatalf("FCFS picked %d, want 0", got)
	}
	// Seq, not slice order, decides.
	table[0].Seq, table[1].Seq = 3, 2
	if got := (FCFS{}).Pick(table, none); got != 1 {
		t.Fatalf("FCFS picked %d, want 1 (lower Seq)", got)
	}
	if FCFS.Name(FCFS{}) != "fcfs" || FRFCFS.Name(FRFCFS{}) != "fr-fcfs" {
		t.Fatalf("scheduler names wrong")
	}
}

func newControllerEnv(t *testing.T) (*BaseController, *Env) {
	t.Helper()
	cfg := dram.DefaultConfig()
	cfg.RowsPerBank = 4096
	chip, err := dram.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := tile.New(chip, tile.DefaultCostModel())
	m, err := NewRowBankCol(chip.Geometry().Banks, cfg.ColsPerRow)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewBaseController(Config{Mapper: m}, chip.Timing(), chip.Geometry().Banks)
	if err != nil {
		t.Fatal(err)
	}
	return ctl, NewEnv(tl)
}

func TestControllerServesRead(t *testing.T) {
	ctl, env := newControllerEnv(t)
	env.Tile().PushRequest(&mem.Request{ID: 1, Kind: mem.Read, Addr: 0})
	env.Reset(0)
	worked, err := ctl.ServeOne(env)
	if err != nil {
		t.Fatalf("ServeOne: %v", err)
	}
	if !worked {
		t.Fatalf("controller did not serve")
	}
	resp := env.Responses()
	if len(resp) != 1 || resp[0].ReqID != 1 || !resp[0].OK {
		t.Fatalf("responses = %+v", resp)
	}
	if env.ChargedFPGA() == 0 || env.Occupancy() == 0 || env.Latency() < env.Occupancy() {
		t.Fatalf("accounting: charged=%d occ=%v lat=%v", env.ChargedFPGA(), env.Occupancy(), env.Latency())
	}
	if ctl.Stats().Reads != 1 || ctl.Stats().RowMisses != 1 {
		t.Fatalf("stats = %+v", ctl.Stats())
	}
}

func TestControllerRowHitTracking(t *testing.T) {
	ctl, env := newControllerEnv(t)
	for i := uint64(0); i < 3; i++ {
		env.Tile().PushRequest(&mem.Request{ID: i + 1, Kind: mem.Read, Addr: i * 64})
	}
	for i := 0; i < 3; i++ {
		env.Reset(0)
		if _, err := ctl.ServeOne(env); err != nil {
			t.Fatal(err)
		}
	}
	st := ctl.Stats()
	if st.RowMisses != 1 || st.RowHits != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/1", st.RowHits, st.RowMisses)
	}
	if ctl.OpenRow(0) != 0 {
		t.Fatalf("open row not tracked")
	}
}

func TestControllerIdleReturnsFalse(t *testing.T) {
	ctl, env := newControllerEnv(t)
	env.Reset(0)
	worked, err := ctl.ServeOne(env)
	if err != nil || worked {
		t.Fatalf("idle controller: worked=%v err=%v", worked, err)
	}
	if ctl.Pending() != 0 {
		t.Fatalf("pending = %d", ctl.Pending())
	}
}

func TestControllerProfileDetectsWeakLine(t *testing.T) {
	ctl, env := newControllerEnv(t)
	m := ctl.Mapper()
	chip := env.Tile().Chip()
	vm := chip.Variation()

	// Locate a weak line and a strong line.
	var weakAddr, strongAddr uint64
	foundWeak := false
	for bank := 0; bank < 16 && !foundWeak; bank++ {
		for row := 0; row < 4096 && !foundWeak; row++ {
			if vm.Strong(bank, row) {
				continue
			}
			rowV := vm.MinTRCDRow(bank, row)
			for col := 0; col < 128; col++ {
				if vm.MinTRCDLine(bank, row, col) == rowV {
					weakAddr = m.Unmap(dram.Addr{Bank: bank, Row: row, Col: col})
					foundWeak = true
					break
				}
			}
		}
	}
	if !foundWeak {
		t.Fatalf("no weak line in module")
	}
	strongAddr = func() uint64 {
		for row := 0; row < 4096; row++ {
			if vm.Strong(0, row) {
				return m.Unmap(dram.Addr{Bank: 0, Row: row})
			}
		}
		t.Fatalf("no strong row")
		return 0
	}()

	serve := func(addr uint64, rcd int64) bool {
		env.Tile().PushRequest(&mem.Request{ID: 99, Kind: mem.Profile, Addr: addr, RCD: 9000})
		env.Reset(0)
		if _, err := ctl.ServeOne(env); err != nil {
			t.Fatalf("ServeOne: %v", err)
		}
		return env.Responses()[0].OK
	}
	if serve(weakAddr, 9000) {
		t.Fatalf("profiling a weak line at 9ns must fail")
	}
	if !serve(strongAddr, 9000) {
		t.Fatalf("profiling a strong line at 9ns must pass")
	}
}

func TestControllerRefresh(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.RowsPerBank = 4096
	chip, err := dram.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := tile.New(chip, tile.DefaultCostModel())
	m, _ := NewRowBankCol(chip.Geometry().Banks, cfg.ColsPerRow)
	ctl, err := NewBaseController(Config{Mapper: m, RefreshEnabled: true}, chip.Timing(), chip.Geometry().Banks)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(tl)
	if !ctl.RefreshEnabled() {
		t.Fatalf("refresh should be enabled")
	}
	due := ctl.NextRefreshDue()
	if due != chip.Timing().TREFI {
		t.Fatalf("first refresh due at %v, want tREFI", due)
	}
	env.Reset(due)
	if err := ctl.ServeRefresh(env); err != nil {
		t.Fatal(err)
	}
	if ctl.Stats().Refreshes != 1 {
		t.Fatalf("refresh not recorded: %+v", ctl.Stats())
	}
	if ctl.NextRefreshDue() != due+chip.Timing().TREFI {
		t.Fatalf("refresh schedule did not advance")
	}
	if chip.Stats().REFs != 1 {
		t.Fatalf("REF did not reach the chip")
	}
	if env.Occupancy() < chip.Timing().TRFC {
		t.Fatalf("refresh occupancy %v below tRFC", env.Occupancy())
	}
}

func TestControllerRowCloneCrossBankFails(t *testing.T) {
	ctl, env := newControllerEnv(t)
	m := ctl.Mapper()
	src := m.Unmap(dram.Addr{Bank: 0, Row: 10})
	dst := m.Unmap(dram.Addr{Bank: 1, Row: 10})
	env.Tile().PushRequest(&mem.Request{ID: 5, Kind: mem.RowClone, Addr: dst, Src: src})
	env.Reset(0)
	if _, err := ctl.ServeOne(env); err != nil {
		t.Fatal(err)
	}
	if env.Responses()[0].OK {
		t.Fatalf("cross-bank RowClone must respond not-OK")
	}
}

func TestControllerNeedsMapper(t *testing.T) {
	if _, err := NewBaseController(Config{}, dram.DefaultConfig().Timing, 16); err == nil {
		t.Fatalf("controller without mapper must fail")
	}
}
