package smc

import (
	"testing"

	"easydram/internal/dram"
	"easydram/internal/mem"
	"easydram/internal/tile"
)

// Burst-gathering unit tests: PickBurst must return exactly the prefix of
// the scheduler's serial service order that stays on the winner's
// (bank, row), bounded by the cap, never coalescing across banks.

func burstPick(s BurstScheduler, table []Entry, openRows []int, cap int) []int {
	return s.PickBurst(table, openRows, cap, nil)
}

func ids(table []Entry, idxs []int) []uint64 {
	out := make([]uint64, len(idxs))
	for i, idx := range idxs {
		out[i] = table[idx].ID
	}
	return out
}

func wantIDs(t *testing.T, table []Entry, got []int, want ...uint64) {
	t.Helper()
	g := ids(table, got)
	if len(g) != len(want) {
		t.Fatalf("burst = %v, want %v", g, want)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("burst = %v, want %v", g, want)
		}
	}
}

func TestFRFCFSBurstGathersSameRowReadsInSeqOrder(t *testing.T) {
	m, _ := NewRowBankCol(16, 128)
	openRows := openRowsWith(0, 5)
	hit := func(id uint64, col int) mem.Request {
		return mem.Request{ID: id, Kind: mem.Read, Addr: m.Unmap(dram.Addr{Bank: 0, Row: 5, Col: col})}
	}
	table := entries(m,
		hit(1, 0), hit(2, 1),
		mem.Request{ID: 3, Kind: mem.Read, Addr: m.Unmap(dram.Addr{Bank: 2, Row: 7})}, // other-bank miss
		hit(4, 2),
	)
	// Scramble slice positions; Seq (set by entries in push order) decides.
	table[0], table[3] = table[3], table[0]
	got := burstPick(FRFCFS{}, table, openRows, 8)
	wantIDs(t, table, got, 1, 2, 4)
}

func TestFRFCFSBurstRespectsCap(t *testing.T) {
	m, _ := NewRowBankCol(16, 128)
	openRows := openRowsWith(0, 5)
	var reqs []mem.Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, mem.Request{ID: uint64(i + 1), Kind: mem.Read,
			Addr: m.Unmap(dram.Addr{Bank: 0, Row: 5, Col: i})})
	}
	table := entries(m, reqs...)
	got := burstPick(FRFCFS{}, table, openRows, 4)
	wantIDs(t, table, got, 1, 2, 3, 4)
}

func TestFRFCFSBurstNeverCoalescesAcrossBanks(t *testing.T) {
	m, _ := NewRowBankCol(16, 128)
	// Rows open in banks 0 and 1; hit reads in both. The bank-1 hits are
	// interleaved by age with the bank-0 hits, so the burst must stop at the
	// first point an older bank-1 hit would win the serial pick.
	openRows := openRowsWith(0, 5)
	openRows[1] = 3
	b0 := func(id uint64, col int) mem.Request {
		return mem.Request{ID: id, Kind: mem.Read, Addr: m.Unmap(dram.Addr{Bank: 0, Row: 5, Col: col})}
	}
	b1 := func(id uint64, col int) mem.Request {
		return mem.Request{ID: id, Kind: mem.Read, Addr: m.Unmap(dram.Addr{Bank: 1, Row: 3, Col: col})}
	}
	table := entries(m, b0(1, 0), b0(2, 1), b1(3, 0), b0(4, 2))
	got := burstPick(FRFCFS{}, table, openRows, 8)
	// Serial order: 1, 2 (bank 0, oldest hits), then 3 (bank 1), then 4.
	wantIDs(t, table, got, 1, 2)
}

func TestFRFCFSBurstWritesBlockedByOtherBankHitRead(t *testing.T) {
	m, _ := NewRowBankCol(16, 128)
	openRows := openRowsWith(0, 5)
	openRows[1] = 3
	table := entries(m,
		mem.Request{ID: 1, Kind: mem.Read, Addr: m.Unmap(dram.Addr{Bank: 0, Row: 5, Col: 0})},
		mem.Request{ID: 2, Kind: mem.Writeback, Addr: m.Unmap(dram.Addr{Bank: 0, Row: 5, Col: 1})},
		mem.Request{ID: 3, Kind: mem.Read, Addr: m.Unmap(dram.Addr{Bank: 1, Row: 3, Col: 0})},
	)
	// Serial: read 1, then the bank-1 hit read 3, only then writeback 2 —
	// so the burst is the winner alone.
	got := burstPick(FRFCFS{}, table, openRows, 8)
	wantIDs(t, table, got, 1)

	// Without the competing hit read, the same-row writeback joins.
	table = table[:2]
	got = burstPick(FRFCFS{}, table, openRows, 8)
	wantIDs(t, table, got, 1, 2)
}

func TestFRFCFSBurstMissHeadOpensRow(t *testing.T) {
	m, _ := NewRowBankCol(16, 128)
	openRows := openRowsWith(0, -1) // everything precharged
	table := entries(m,
		mem.Request{ID: 1, Kind: mem.Read, Addr: m.Unmap(dram.Addr{Bank: 0, Row: 5, Col: 0})},
		mem.Request{ID: 2, Kind: mem.Read, Addr: m.Unmap(dram.Addr{Bank: 0, Row: 5, Col: 1})},
		mem.Request{ID: 3, Kind: mem.Writeback, Addr: m.Unmap(dram.Addr{Bank: 0, Row: 5, Col: 2})},
	)
	// The miss head activates row 5; the following same-row read and then
	// the same-row write ride along.
	got := burstPick(FRFCFS{}, table, openRows, 8)
	wantIDs(t, table, got, 1, 2, 3)
}

func TestFRFCFSBurstTechniqueWinnerStaysAlone(t *testing.T) {
	m, _ := NewRowBankCol(16, 128)
	openRows := openRowsWith(0, -1)
	table := entries(m,
		mem.Request{ID: 1, Kind: mem.Profile, Addr: m.Unmap(dram.Addr{Bank: 0, Row: 5}), RCD: 9000},
	)
	got := burstPick(FRFCFS{}, table, openRows, 8)
	wantIDs(t, table, got, 1)
}

func TestFCFSBurstBreaksAtArrivalOrder(t *testing.T) {
	m, _ := NewRowBankCol(16, 128)
	openRows := openRowsWith(0, -1)
	sameRow := func(id uint64, col int) mem.Request {
		return mem.Request{ID: id, Kind: mem.Read, Addr: m.Unmap(dram.Addr{Bank: 0, Row: 5, Col: col})}
	}
	table := entries(m,
		sameRow(1, 0), sameRow(2, 1),
		mem.Request{ID: 3, Kind: mem.Read, Addr: m.Unmap(dram.Addr{Bank: 2, Row: 7})},
		sameRow(4, 2), // younger than the bank-2 read: FCFS serves 3 first
	)
	got := burstPick(FCFS{}, table, openRows, 8)
	wantIDs(t, table, got, 1, 2)
}

func TestBLISSBurstHonoursStreakCap(t *testing.T) {
	m, _ := NewRowBankCol(16, 128)
	openRows := openRowsWith(0, 5)
	var reqs []mem.Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, mem.Request{ID: uint64(i + 1), Kind: mem.Read,
			Addr: m.Unmap(dram.Addr{Bank: 0, Row: 5, Col: i})})
	}
	table := entries(m, reqs...)
	s := NewBLISS()
	got := burstPick(s, table, openRows, 8)
	// Pick (the winner) sets streak=1; three extensions reach MaxStreak=4.
	wantIDs(t, table, got, 1, 2, 3, 4)
	if s.streak != s.MaxStreak {
		t.Fatalf("streak = %d, want %d", s.streak, s.MaxStreak)
	}
	// A truncated burst rewinds the streak to what serial service reached.
	s = NewBLISS()
	got = burstPick(s, table, openRows, 8)
	s.NoteBurstServed(2)
	if s.streak != 2 {
		t.Fatalf("streak after truncation = %d, want 2", s.streak)
	}
	_ = got
}

// TestControllerBurstOneProgram drives the controller directly: eight
// same-row reads with a burst budget must produce eight responses and eight
// segments from ONE Bender program, with accumulated charges equal to the
// serial path's.
func TestControllerBurstOneProgram(t *testing.T) {
	serve := func(budget int) (*BaseController, *Env) {
		ctl, env := newControllerEnv(t)
		for i := uint64(0); i < 8; i++ {
			env.Tile().PushRequest(&mem.Request{ID: i + 1, Kind: mem.Read, Addr: i * 64})
		}
		env.Reset(0)
		env.SetBurst(budget, nil)
		steps := 0
		for {
			worked, err := ctl.ServeOne(env)
			if err != nil {
				t.Fatal(err)
			}
			steps++
			if !worked || ctl.Pending() == 0 {
				break
			}
		}
		if budget > 1 && steps != 1 {
			t.Fatalf("burst budget %d took %d steps, want 1", budget, steps)
		}
		return ctl, env
	}

	burstCtl, burstEnv := serve(8)
	if got := len(burstEnv.Responses()); got != 8 {
		t.Fatalf("burst step produced %d responses, want 8", got)
	}
	if got := len(burstEnv.Segments()); got != 8 {
		t.Fatalf("burst step closed %d segments, want 8", got)
	}
	if burstEnv.Tile().Stats().ProgramsRun != 1 {
		t.Fatalf("burst ran %d programs, want 1", burstEnv.Tile().Stats().ProgramsRun)
	}
	if st := burstCtl.Stats(); st.BurstsServed != 1 || st.BurstedRequests != 8 || st.AvgBurstLen() != 8 {
		t.Fatalf("burst stats = %+v", st)
	}

	serialCtl, serialEnv := serve(1)
	if serialEnv.Tile().Stats().ProgramsRun != 8 {
		t.Fatalf("serial ran %d programs, want 8", serialEnv.Tile().Stats().ProgramsRun)
	}
	// The serial env accumulated all eight steps without Reset, so totals
	// must match the burst step's exactly (occupancy, latency, charges).
	if burstEnv.ChargedFPGA() != serialEnv.ChargedFPGA() {
		t.Fatalf("charged: burst %d vs serial %d", burstEnv.ChargedFPGA(), serialEnv.ChargedFPGA())
	}
	if burstEnv.Occupancy() != serialEnv.Occupancy() || burstEnv.Latency() != serialEnv.Latency() {
		t.Fatalf("modeled: burst %v/%v vs serial %v/%v",
			burstEnv.Occupancy(), burstEnv.Latency(), serialEnv.Occupancy(), serialEnv.Latency())
	}
	if serialCtl.Stats().RowHits != burstCtl.Stats().RowHits {
		t.Fatalf("row hits diverge")
	}
}

var _ = tile.ReqSlot(0)
