package smc

import (
	"fmt"

	"easydram/internal/clock"
	"easydram/internal/dram"
	"easydram/internal/mem"
	"easydram/internal/tile"
)

// MultiBenchHarness is the multi-channel companion of BenchHarness: one
// controller + environment + module per channel under a shared
// TopologyMapper, for benchmarking per-channel service overlap in
// isolation (no engine, no processor model). BenchmarkSubstrateMultiChannel
// and cmd/benchall's snapshot metrics share it, so the CI-gated overlap
// numbers measure exactly the benchmarked code.
type MultiBenchHarness struct {
	mapper *TopologyMapper
	ctls   []*BaseController
	envs   []*Env

	// busy accumulates each channel's modeled service occupancy — the
	// emulated time that channel's bus/banks were held. Channels serve
	// independently, so the wall-clock the module needs is max(busy), while
	// a single channel would need sum(busy): sum/max is the service
	// overlap a topology exhibits on the harness's traffic.
	busy []clock.PS

	nextID   uint64
	nextAddr uint64
}

// NewMultiBenchHarness builds the harness over `channels` line-interleaved
// channels (FR-FCFS, open page, data tracking off).
func NewMultiBenchHarness(channels int) (*MultiBenchHarness, error) {
	cfg := dram.DefaultConfig()
	cfg.TrackData = false
	topo := dram.Topology{Channels: channels, Ranks: 1, Interleave: dram.InterleaveLine}
	chipBanks := cfg.BankGroups * cfg.BanksPerGroup
	m, err := NewTopologyMapper(topo, chipBanks, cfg.ColsPerRow)
	if err != nil {
		return nil, err
	}
	h := &MultiBenchHarness{mapper: m, busy: make([]clock.PS, channels)}
	for c := 0; c < channels; c++ {
		mod, err := dram.NewModule(cfg, 1, c)
		if err != nil {
			return nil, err
		}
		ctl, err := NewBaseController(Config{Mapper: m, Scheduler: FRFCFS{}}, mod.Timing(), mod.Banks())
		if err != nil {
			return nil, err
		}
		h.ctls = append(h.ctls, ctl)
		h.envs = append(h.envs, NewEnv(tile.NewDevice(mod, tile.DefaultCostModel())))
	}
	return h, nil
}

// Channels reports the harness's channel count.
func (h *MultiBenchHarness) Channels() int { return len(h.ctls) }

// ServeInterleaved pushes and serves n read requests walking consecutive
// cache lines — which the line-interleaved mapper spreads round-robin over
// every channel — in groups of `depth` pending together, then runs each
// channel's controller until its table drains, accumulating per-channel
// modeled occupancy. The host-side work is the per-channel service loops;
// the modeled-time overlap they buy is read off Overlap.
func (h *MultiBenchHarness) ServeInterleaved(n, depth int) error {
	for served := 0; served < n; {
		for k := 0; k < depth; k++ {
			h.nextID++
			ch := h.mapper.Map(h.nextAddr).Chan
			h.envs[ch].Tile().PushRequest(&mem.Request{ID: h.nextID, Kind: mem.Read, Addr: h.nextAddr})
			h.nextAddr += dram.LineBytes
		}
		for c := range h.ctls {
			env := h.envs[c]
			for !env.Tile().IncomingEmpty() || h.ctls[c].Pending() > 0 {
				env.Reset(0)
				worked, err := h.ctls[c].ServeOne(env)
				if err != nil {
					return fmt.Errorf("smc: multi bench harness: %w", err)
				}
				if !worked {
					return fmt.Errorf("smc: multi bench harness: channel %d idle with %d pending", c, h.ctls[c].Pending())
				}
				served += len(env.Responses())
				h.busy[c] += env.Occupancy()
			}
		}
	}
	return nil
}

// Overlap reports the service overlap observed so far: the sum of
// per-channel modeled occupancies over their maximum. 1.0 means fully
// serial (one channel did all the work); C means perfect C-way overlap. It
// is a pure property of the traffic spread and the modeled service costs —
// no host wall clock is involved, so the metric is machine-independent.
func (h *MultiBenchHarness) Overlap() float64 {
	var sum, max clock.PS
	for _, b := range h.busy {
		sum += b
		if b > max {
			max = b
		}
	}
	if max == 0 {
		return 0
	}
	return float64(sum) / float64(max)
}
