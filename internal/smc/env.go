package smc

import (
	"fmt"

	"easydram/internal/bender"
	"easydram/internal/clock"
	"easydram/internal/mem"
	"easydram/internal/tile"
)

// Env is the execution environment (the EasyAPI runtime) handed to a
// controller for one scheduling step. It accumulates:
//
//   - chargedFPGA: programmable-core cycles the controller's code consumed,
//   - benderWall: real DRAM-bus time occupied by Bender executions,
//   - modeled: the emulated-system service latency (what the MC counter
//     must advance by under time scaling),
//   - responses produced this step.
//
// The engine resets the Env, runs one controller step, and settles the
// accumulated time into the time-scaling counters.
type Env struct {
	tile *tile.Tile

	// EmulatedNow is the emulated-system time at the start of the step
	// (set by the engine; the controller uses it for refresh bookkeeping).
	EmulatedNow clock.PS

	chargedFPGA int64
	benderWall  clock.PS
	occupancy   clock.PS
	latency     clock.PS
	responses   []mem.Response
	readback    []bender.ReadLine
	critical    bool
}

// NewEnv returns an Env over t.
func NewEnv(t *tile.Tile) *Env { return &Env{tile: t} }

// Tile returns the underlying tile.
func (e *Env) Tile() *tile.Tile { return e.tile }

// Reset clears per-step accumulators.
func (e *Env) Reset(emulatedNow clock.PS) {
	e.EmulatedNow = emulatedNow
	e.chargedFPGA = 0
	e.benderWall = 0
	e.occupancy = 0
	e.latency = 0
	e.responses = e.responses[:0]
	e.readback = e.readback[:0]
}

// Charge accounts n programmable-core cycles.
func (e *Env) Charge(n int) { e.chargedFPGA += int64(n) }

// ChargedFPGA reports the cycles charged this step.
func (e *Env) ChargedFPGA() int64 { return e.chargedFPGA }

// BenderWall reports DRAM-bus wall time consumed this step.
func (e *Env) BenderWall() clock.PS { return e.benderWall }

// AddService credits the modeled service cost of the scheduling step:
// occupancy is the time the memory system cannot serve other requests (bus
// and bank occupancy — what the MC counter advances by); latency is the
// request's own service latency (occupancy plus pipelined tail such as CAS
// latency — what the response release tag is computed from).
func (e *Env) AddService(occupancy, latency clock.PS) {
	e.occupancy += occupancy
	e.latency += latency
}

// Occupancy reports the accumulated modeled occupancy.
func (e *Env) Occupancy() clock.PS { return e.occupancy }

// Latency reports the accumulated modeled service latency.
func (e *Env) Latency() clock.PS { return e.latency }

// SetCritical records the controller's critical-mode intent; the engine
// reflects it into the time-scaling counters.
func (e *Env) SetCritical(on bool) {
	costs := e.tile.Costs()
	if on {
		e.Charge(costs.CriticalEnter)
	} else {
		e.Charge(costs.CriticalExit)
	}
	e.critical = on
}

// Critical reports the controller's critical-mode intent.
func (e *Env) Critical() bool { return e.critical }

// Exec flushes the built command batch to DRAM Bender and executes it,
// charging transfer and launch costs (EasyAPI flush_commands).
func (e *Env) Exec() (bender.Result, error) {
	costs := e.tile.Costs()
	n := e.tile.Builder().Len()
	e.Charge(costs.BuildPerInstr*n + costs.FlushLaunch + costs.FlushPerInstr*n)
	res, rb, err := e.tile.Exec()
	if err != nil {
		return res, fmt.Errorf("smc: %w", err)
	}
	e.benderWall += res.Elapsed
	e.readback = append(e.readback, rb...)
	return res, nil
}

// Readback returns lines read by Bender executions this step.
func (e *Env) Readback() []bender.ReadLine { return e.readback }

// Respond enqueues the response for req (EasyAPI enqueue_response). The
// engine computes the response's release point when settling the step.
func (e *Env) Respond(req mem.Request, ok bool) {
	e.Charge(e.tile.Costs().Respond)
	e.responses = append(e.responses, mem.Response{ReqID: req.ID, OK: ok})
}

// RespondLines enqueues a response carrying per-line detail (ProfileRow
// requests report the number of leading reliable lines).
func (e *Env) RespondLines(req mem.Request, ok bool, lines int) {
	e.Charge(e.tile.Costs().Respond)
	e.responses = append(e.responses, mem.Response{ReqID: req.ID, OK: ok, Lines: lines})
}

// Responses returns the responses produced this step. Release points are
// engine-private (tracked in its release queue keyed by ReqID), not part
// of the response.
func (e *Env) Responses() []mem.Response { return e.responses }
