package smc

import (
	"fmt"

	"easydram/internal/bender"
	"easydram/internal/clock"
	"easydram/internal/mem"
	"easydram/internal/tile"
)

// Env is the execution environment (the EasyAPI runtime) handed to a
// controller for one scheduling step. It accumulates:
//
//   - chargedFPGA: programmable-core cycles the controller's code consumed,
//   - benderWall: real DRAM-bus time occupied by Bender executions,
//   - modeled: the emulated-system service latency (what the MC counter
//     must advance by under time scaling),
//   - responses produced this step.
//
// The engine resets the Env, runs one controller step, and settles the
// accumulated time into the time-scaling counters.
//
// # Burst segments
//
// A step that serves a row-hit burst (several requests through one Bender
// program) additionally partitions its accumulators into segments, one per
// served request, by calling CloseSegment after each. The engine then
// settles each segment with exactly the arithmetic it would have applied
// to that request's own serial step, which is what keeps burst service
// cycle-exact. A step that closes no segments is settled as a whole — the
// pre-burst behaviour.
type Env struct {
	tile *tile.Tile

	// EmulatedNow is the emulated-system time at the start of the step
	// (set by the engine; the controller uses it for refresh bookkeeping).
	EmulatedNow clock.PS

	chargedFPGA int64
	benderWall  clock.PS
	occupancy   clock.PS
	latency     clock.PS
	responses   []mem.Response
	readback    []bender.ReadLine
	critical    bool

	segs []Segment

	// burstBudget caps how many requests the controller may serve this
	// step; burstGate (engine-installed, optional) is consulted before each
	// extension beyond the first so the engine can cut a burst at the exact
	// point where serving another request would no longer be bit-identical
	// to serial service.
	burstBudget int
	burstGate   func() bool
}

// Segment is one request's slice of a burst step. Charged, Occupancy,
// Latency, and Responses are the accumulator values at the segment's close
// (the engine takes deltas between consecutive segments); Wall is the
// DRAM-bus time of this segment's own commands, excluding the inter-request
// gap that stands in for the serial path's program-launch turnaround.
type Segment struct {
	Charged   int64
	Occupancy clock.PS
	Latency   clock.PS
	Responses int
	Wall      clock.PS
}

// NewEnv returns an Env over t.
func NewEnv(t *tile.Tile) *Env { return &Env{tile: t, burstBudget: 1} }

// Tile returns the underlying tile.
func (e *Env) Tile() *tile.Tile { return e.tile }

// Reset clears per-step accumulators.
func (e *Env) Reset(emulatedNow clock.PS) {
	e.EmulatedNow = emulatedNow
	e.chargedFPGA = 0
	e.benderWall = 0
	e.occupancy = 0
	e.latency = 0
	e.responses = e.responses[:0]
	e.readback = e.readback[:0]
	e.segs = e.segs[:0]
}

// Charge accounts n programmable-core cycles.
func (e *Env) Charge(n int) { e.chargedFPGA += int64(n) }

// ChargedFPGA reports the cycles charged this step.
func (e *Env) ChargedFPGA() int64 { return e.chargedFPGA }

// BenderWall reports DRAM-bus wall time consumed this step.
func (e *Env) BenderWall() clock.PS { return e.benderWall }

// AddService credits the modeled service cost of the scheduling step:
// occupancy is the time the memory system cannot serve other requests (bus
// and bank occupancy — what the MC counter advances by); latency is the
// request's own service latency (occupancy plus pipelined tail such as CAS
// latency — what the response release tag is computed from).
func (e *Env) AddService(occupancy, latency clock.PS) {
	e.occupancy += occupancy
	e.latency += latency
}

// Occupancy reports the accumulated modeled occupancy.
func (e *Env) Occupancy() clock.PS { return e.occupancy }

// Latency reports the accumulated modeled service latency.
func (e *Env) Latency() clock.PS { return e.latency }

// SetBurst configures the step's burst policy: budget is the maximum
// requests one step may serve (<=1 disables coalescing); gate, when
// non-nil, is asked before every extension beyond the winner. The engine
// sets both once per run (the gate closure reads live engine state) and
// adjusts the budget per step.
func (e *Env) SetBurst(budget int, gate func() bool) {
	if budget < 1 {
		budget = 1
	}
	e.burstBudget = budget
	e.burstGate = gate
}

// SetBurstBudget adjusts the budget without touching the installed gate
// (the engines bind the gate closure once per run and retune the budget per
// step, keeping the hot path allocation-free).
func (e *Env) SetBurstBudget(budget int) {
	if budget < 1 {
		budget = 1
	}
	e.burstBudget = budget
}

// BurstBudget reports the maximum requests this step may serve.
func (e *Env) BurstBudget() int { return e.burstBudget }

// ExtendBurst reports whether the controller may serve one more request in
// the current step (consulted after each CloseSegment).
func (e *Env) ExtendBurst() bool {
	if len(e.segs) >= e.burstBudget {
		return false
	}
	return e.burstGate == nil || e.burstGate()
}

// CloseSegment ends the current burst segment, attributing wall bus time to
// it (the segment's own commands only; inter-request gaps belong to no
// segment, mirroring the serial path where the program-launch turnaround is
// dead bus time nobody is charged for).
func (e *Env) CloseSegment(wall clock.PS) {
	e.segs = append(e.segs, Segment{
		Charged:   e.chargedFPGA,
		Occupancy: e.occupancy,
		Latency:   e.latency,
		Responses: len(e.responses),
		Wall:      wall,
	})
}

// Segments returns the burst segments closed this step (empty for ordinary
// single-request steps, which the engine settles as a whole).
func (e *Env) Segments() []Segment { return e.segs }

// AbsorbTrailingCharge folds FPGA cycles charged after the last
// CloseSegment into that segment. The serial path's final step charges its
// critical-mode exit inside the step; the burst path performs the exit
// after the last request's segment closed, and this reassigns the charge to
// where serial accounting puts it.
func (e *Env) AbsorbTrailingCharge() {
	if n := len(e.segs); n > 0 {
		e.segs[n-1].Charged = e.chargedFPGA
	}
}

// SetCritical records the controller's critical-mode intent; the engine
// reflects it into the time-scaling counters.
func (e *Env) SetCritical(on bool) {
	costs := e.tile.Costs()
	if on {
		e.Charge(costs.CriticalEnter)
	} else {
		e.Charge(costs.CriticalExit)
	}
	e.critical = on
}

// Critical reports the controller's critical-mode intent.
func (e *Env) Critical() bool { return e.critical }

// Exec flushes the built command batch to DRAM Bender and executes it,
// charging transfer and launch costs (EasyAPI flush_commands).
func (e *Env) Exec() (bender.Result, error) {
	costs := e.tile.Costs()
	n := e.tile.Builder().Len()
	e.Charge(costs.BuildPerInstr*n + costs.FlushLaunch + costs.FlushPerInstr*n)
	return e.ExecPrecharged()
}

// ExecPrecharged executes the built command batch without charging build or
// flush costs. The burst service path uses it: a burst program's transfer
// and launch costs are charged per segment, sized as the serial path's
// per-request programs, so the one real execution must not charge again.
func (e *Env) ExecPrecharged() (bender.Result, error) {
	res, rb, err := e.tile.Exec()
	if err != nil {
		return res, fmt.Errorf("smc: %w", err)
	}
	e.benderWall += res.Elapsed
	e.readback = append(e.readback, rb...)
	return res, nil
}

// ExecAccess executes the built command batch for a plain cache-line access
// step: charged like Exec, but read data is dropped instead of buffered —
// access responses carry no data, so nobody ever consumes it.
func (e *Env) ExecAccess() (bender.Result, error) {
	costs := e.tile.Costs()
	n := e.tile.Builder().Len()
	e.Charge(costs.BuildPerInstr*n + costs.FlushLaunch + costs.FlushPerInstr*n)
	res, err := e.tile.ExecDiscardReads()
	if err != nil {
		return res, fmt.Errorf("smc: %w", err)
	}
	e.benderWall += res.Elapsed
	return res, nil
}

// ExecAccessPrecharged is ExecAccess without the build and flush charges
// (the burst path charges them per segment).
func (e *Env) ExecAccessPrecharged() (bender.Result, error) {
	res, err := e.tile.ExecDiscardReads()
	if err != nil {
		return res, fmt.Errorf("smc: %w", err)
	}
	e.benderWall += res.Elapsed
	return res, nil
}

// Readback returns lines read by Bender executions this step.
func (e *Env) Readback() []bender.ReadLine { return e.readback }

// AddBenderWall accounts DRAM-bus wall time for an execution the
// controller ran against the tile directly (bulk profiling consumes the
// tile's readback in place instead of buffering it through the Env).
func (e *Env) AddBenderWall(d clock.PS) { e.benderWall += d }

// Respond enqueues the response for the request with the given ID (EasyAPI
// enqueue_response). The engine computes the response's release point when
// settling the step.
func (e *Env) Respond(id uint64, ok bool) {
	e.Charge(e.tile.Costs().Respond)
	e.responses = append(e.responses, mem.Response{ReqID: id, OK: ok})
}

// RespondLines enqueues a response carrying per-line detail: ProfileRow
// requests report the leading reliable line count and, for bank stripes,
// the per-row leading-line counts (rowLines may be nil for single rows).
func (e *Env) RespondLines(id uint64, ok bool, lines int, rowLines []int) {
	e.Charge(e.tile.Costs().Respond)
	e.responses = append(e.responses, mem.Response{ReqID: id, OK: ok, Lines: lines, RowLines: rowLines})
}

// Responses returns the responses produced this step. Release points are
// engine-private (tracked in its release queue keyed by ReqID), not part
// of the response.
func (e *Env) Responses() []mem.Response { return e.responses }
