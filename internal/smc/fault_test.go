package smc

import (
	"fmt"
	"testing"

	"easydram/internal/dram"
	"easydram/internal/fault"
	"easydram/internal/mem"
	"easydram/internal/tile"
)

// faultHarness builds a standalone controller + tile over a chip with the
// given fault configuration (recovery always enabled; data tracking off).
func faultHarness(t *testing.T, cc fault.ChipConfig, lc fault.LinkConfig, seed uint64) *BenchHarness {
	t.Helper()
	cfg := dram.DefaultConfig()
	cfg.TrackData = false
	cfg.Seed = seed
	cfg.Faults = cc
	chip, err := dram.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := tile.New(chip, tile.DefaultCostModel())
	if lc.Enabled() {
		tl.SetFaultLink(fault.NewLinkModel(lc, seed))
	}
	m, err := NewRowBankCol(chip.Geometry().Banks, cfg.ColsPerRow)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewBaseController(Config{
		Mapper:         m,
		Scheduler:      FRFCFS{},
		Recovery:       fault.RecoveryConfig{Enabled: true},
		RowsPerBank:    cfg.RowsPerBank,
		QuarantineSeed: seed,
	}, chip.Timing(), chip.Geometry().Banks)
	if err != nil {
		t.Fatal(err)
	}
	return &BenchHarness{Ctl: ctl, Env: NewEnv(tl)}
}

// serveReads pushes n reads at consecutive line addresses starting at base
// and drains the controller, returning the responses' OK outcomes by ID.
func serveReads(t *testing.T, h *BenchHarness, base uint64, n int) map[uint64]bool {
	t.Helper()
	oks := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		h.nextID++
		h.Env.Tile().PushRequest(&mem.Request{ID: h.nextID, Kind: mem.Read, Addr: base + uint64(i)*dram.LineBytes})
		for h.Ctl.Pending() > 0 || !h.Env.Tile().IncomingEmpty() {
			h.Env.Reset(0)
			worked, err := h.Ctl.ServeOne(h.Env)
			if err != nil {
				t.Fatal(err)
			}
			if !worked {
				t.Fatalf("controller idle with %d pending", h.Ctl.Pending())
			}
			for _, r := range h.Env.Responses() {
				oks[r.ReqID] = r.OK
			}
		}
	}
	return oks
}

func TestRetryReadRecoversTransient(t *testing.T) {
	h := faultHarness(t, fault.ChipConfig{TransientReadRate: 0.1}, fault.LinkConfig{}, 42)
	oks := serveReads(t, h, 0, 400)
	st := h.Ctl.Stats()
	if st.Retries == 0 {
		t.Fatal("no retries at a 10% transient read rate over 400 reads")
	}
	bad := 0
	for _, ok := range oks {
		if !ok {
			bad++
		}
	}
	// A read only fails when MaxRetries consecutive re-reads also draw
	// corrupt (~0.1^3 per initially flagged read) — allow a straggler.
	if bad > 2 {
		t.Fatalf("%d of 400 reads failed despite retry (retries=%d, giveups=%d)", bad, st.Retries, st.RetryGiveUps)
	}
	if st.QuarantinedRows != int64(st.RetryGiveUps) {
		t.Fatalf("give-ups (%d) and quarantined rows (%d) disagree", st.RetryGiveUps, st.QuarantinedRows)
	}
}

func TestStuckAtGiveUpQuarantinesAndRemaps(t *testing.T) {
	h := faultHarness(t, fault.ChipConfig{StuckAtRate: 0.02}, fault.LinkConfig{}, 7)
	const n = 600
	first := serveReads(t, h, 0, n)
	st := h.Ctl.Stats()
	if st.RetryGiveUps == 0 || st.QuarantinedRows == 0 {
		t.Fatalf("no give-ups at a 2%% stuck-at rate over %d reads (retries=%d)", n, st.Retries)
	}
	failed := 0
	for _, ok := range first {
		if !ok {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("give-ups recorded but every response was OK")
	}
	// Re-reading the same addresses must hit the quarantine remap; the spare
	// region serves them (spare rows can themselves be stuck, so only the
	// remap count is asserted, not universal success).
	serveReads(t, h, 0, n)
	st = h.Ctl.Stats()
	if st.RemappedAccesses == 0 {
		t.Fatal("second pass over quarantined rows performed no remaps")
	}
}

func TestLaunchFailureRetriesAndServes(t *testing.T) {
	h := faultHarness(t, fault.ChipConfig{}, fault.LinkConfig{ExecFailRate: 0.1}, 11)
	oks := serveReads(t, h, 0, 300)
	for id, ok := range oks {
		if !ok {
			t.Fatalf("request %d failed under launch-failure injection", id)
		}
	}
	st := h.Ctl.Stats()
	ts := h.Env.Tile().Stats()
	if ts.LaunchFails == 0 {
		t.Fatal("no launch failures injected at a 10% fail rate over 300 reads")
	}
	if st.Retries < ts.LaunchFails {
		t.Fatalf("retries (%d) below injected launch failures (%d)", st.Retries, ts.LaunchFails)
	}
}

func TestMitigationEmitsVictimRefreshes(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.TrackData = false
	chip, err := dram.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := tile.New(chip, tile.DefaultCostModel())
	m, err := NewRowBankCol(chip.Geometry().Banks, cfg.ColsPerRow)
	if err != nil {
		t.Fatal(err)
	}
	mit, err := fault.NewMitigator(fault.MitigationConfig{Policy: "trr", TRRThreshold: 4}, cfg.RowsPerBank, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewBaseController(Config{Mapper: m, Scheduler: FRFCFS{}, Mitigation: mit},
		chip.Timing(), chip.Geometry().Banks)
	if err != nil {
		t.Fatal(err)
	}
	h := &BenchHarness{Ctl: ctl, Env: NewEnv(tl)}
	// Alternate two rows of one bank: every access misses, every miss is an
	// ACT the mitigator observes, and every 4th ACT per row refreshes its
	// neighbours. Under the row:bank:col mapping a row stride spans every
	// bank's row segment.
	rowStride := uint64(cfg.ColsPerRow) * dram.LineBytes * uint64(chip.Geometry().Banks)
	for i := 0; i < 64; i++ {
		h.nextID++
		addr := uint64(i%2) * 2 * rowStride
		h.Env.Tile().PushRequest(&mem.Request{ID: h.nextID, Kind: mem.Read, Addr: addr})
		h.Env.Reset(0)
		if _, err := h.Ctl.ServeOne(h.Env); err != nil {
			t.Fatal(err)
		}
	}
	st := h.Ctl.Stats()
	if st.MitigationRefreshes == 0 {
		t.Fatal("TRR mitigation never refreshed a victim row")
	}
	if st.MitigationRefreshes%2 != 0 {
		t.Fatalf("mid-bank victims come in pairs, got %d refreshes", st.MitigationRefreshes)
	}
}

func TestFaultFreeHarnessStaysClean(t *testing.T) {
	h, err := NewFaultFreeBenchHarness()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ServeRowBursts(512, 8, 1); err != nil {
		t.Fatal(err)
	}
	st := h.Ctl.Stats()
	if st.Retries != 0 || st.RetryGiveUps != 0 || st.QuarantinedRows != 0 || st.RemappedAccesses != 0 {
		t.Fatalf("armed-but-idle fault seams produced events: %+v", st)
	}
	if chip := h.Env.Tile().Chip(); chip.Stats().DisturbFlips != 0 {
		t.Fatal("unreachable disturb threshold still flipped bits")
	}
}

// TestRecoveryDeterminism pins that a fixed seed reproduces the exact retry
// and give-up sequence.
func TestRecoveryDeterminism(t *testing.T) {
	run := func() (ControllerStats, string) {
		h := faultHarness(t, fault.ChipConfig{TransientReadRate: 0.05, StuckAtRate: 0.01}, fault.LinkConfig{ExecFailRate: 0.02}, 99)
		oks := serveReads(t, h, 0, 300)
		sig := ""
		for id := uint64(1); id <= 300; id++ {
			if oks[id] {
				sig += "1"
			} else {
				sig += "0"
			}
		}
		return h.Ctl.Stats(), sig
	}
	s1, sig1 := run()
	s2, sig2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged across identical runs:\n%+v\n%+v", s1, s2)
	}
	if sig1 != sig2 {
		t.Fatal("response outcomes diverged across identical runs")
	}
	if s1.Retries == 0 {
		t.Fatal(fmt.Sprintf("determinism test exercised no retries: %+v", s1))
	}
}
