// Package smc implements EasyDRAM's software memory controller: the program
// the programmable core executes to arbitrate, schedule, and serve memory
// requests by driving DRAM Bender (§4.1, §5.2).
package smc

import (
	"fmt"
	"math/bits"

	"easydram/internal/cache"
	"easydram/internal/dram"
)

// Mapper translates physical addresses to DRAM coordinates and back
// (EasyAPI get_addr_mapping).
type Mapper interface {
	Map(pa uint64) dram.Addr
	Unmap(a dram.Addr) uint64
	// RowBytes reports the bytes covered by one DRAM row.
	RowBytes() int
	// Banks reports the number of banks addressable.
	Banks() int
}

// RowBankCol maps physical addresses as {row | bank | col | line offset}:
// consecutive row-sized blocks rotate across banks, so any row-aligned
// 8 KiB block occupies exactly one DRAM row — the layout RowClone's
// allocator relies on (§7.1).
type RowBankCol struct {
	colBits  uint
	bankBits uint
	banks    int
	cols     int
}

// NewRowBankCol builds the mapper for the chip geometry.
func NewRowBankCol(banks, colsPerRow int) (*RowBankCol, error) {
	if banks <= 0 || banks&(banks-1) != 0 {
		return nil, fmt.Errorf("smc: bank count %d must be a power of two", banks)
	}
	if colsPerRow <= 0 || colsPerRow&(colsPerRow-1) != 0 {
		return nil, fmt.Errorf("smc: columns per row %d must be a power of two", colsPerRow)
	}
	return &RowBankCol{
		colBits:  uint(bits.TrailingZeros(uint(colsPerRow))),
		bankBits: uint(bits.TrailingZeros(uint(banks))),
		banks:    banks,
		cols:     colsPerRow,
	}, nil
}

const lineShift = 6 // log2(cache.LineBytes)

// Map implements Mapper.
func (m *RowBankCol) Map(pa uint64) dram.Addr {
	l := pa >> lineShift
	col := int(l & uint64(m.cols-1))
	l >>= m.colBits
	bank := int(l & uint64(m.banks-1))
	l >>= m.bankBits
	return dram.Addr{Bank: bank, Row: int(l), Col: col}
}

// Unmap implements Mapper.
func (m *RowBankCol) Unmap(a dram.Addr) uint64 {
	l := uint64(a.Row)
	l = l<<m.bankBits | uint64(a.Bank)
	l = l<<m.colBits | uint64(a.Col)
	return l << lineShift
}

// RowBytes implements Mapper.
func (m *RowBankCol) RowBytes() int { return m.cols * cache.LineBytes }

// Banks implements Mapper.
func (m *RowBankCol) Banks() int { return m.banks }

// BankRowCol maps physical addresses as {bank | row | col | line offset}:
// each bank owns a contiguous region of the physical space. Used by
// configuration sweeps.
type BankRowCol struct {
	colBits uint
	rowBits uint
	banks   int
	cols    int
	rows    int
}

// NewBankRowCol builds the mapper for the chip geometry.
func NewBankRowCol(banks, rowsPerBank, colsPerRow int) (*BankRowCol, error) {
	if banks <= 0 || banks&(banks-1) != 0 {
		return nil, fmt.Errorf("smc: bank count %d must be a power of two", banks)
	}
	if rowsPerBank <= 0 || rowsPerBank&(rowsPerBank-1) != 0 {
		return nil, fmt.Errorf("smc: rows per bank %d must be a power of two", rowsPerBank)
	}
	if colsPerRow <= 0 || colsPerRow&(colsPerRow-1) != 0 {
		return nil, fmt.Errorf("smc: columns per row %d must be a power of two", colsPerRow)
	}
	return &BankRowCol{
		colBits: uint(bits.TrailingZeros(uint(colsPerRow))),
		rowBits: uint(bits.TrailingZeros(uint(rowsPerBank))),
		banks:   banks,
		cols:    colsPerRow,
		rows:    rowsPerBank,
	}, nil
}

// Map implements Mapper.
func (m *BankRowCol) Map(pa uint64) dram.Addr {
	l := pa >> lineShift
	col := int(l & uint64(m.cols-1))
	l >>= m.colBits
	row := int(l & uint64(m.rows-1))
	l >>= m.rowBits
	return dram.Addr{Bank: int(l) % m.banks, Row: row, Col: col}
}

// Unmap implements Mapper.
func (m *BankRowCol) Unmap(a dram.Addr) uint64 {
	l := uint64(a.Bank)
	l = l<<m.rowBits | uint64(a.Row)
	l = l<<m.colBits | uint64(a.Col)
	return l << lineShift
}

// RowBytes implements Mapper.
func (m *BankRowCol) RowBytes() int { return m.cols * cache.LineBytes }

// Banks implements Mapper.
func (m *BankRowCol) Banks() int { return m.banks }

var (
	_ Mapper = (*RowBankCol)(nil)
	_ Mapper = (*BankRowCol)(nil)
)
