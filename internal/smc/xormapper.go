package smc

import (
	"fmt"
	"math/bits"

	"easydram/internal/dram"
)

// XORBank is the permutation-based bank indexing of Zhang et al. (the
// scheme most real memory controllers use): the bank index is XORed with
// low-order row bits, spreading row-conflicting strides across banks.
// Layout otherwise matches RowBankCol, and the transformation is an
// involution, so Unmap applies the same XOR.
type XORBank struct {
	inner *RowBankCol
	banks int
}

// NewXORBank builds the XOR-permuted mapper.
func NewXORBank(banks, colsPerRow int) (*XORBank, error) {
	inner, err := NewRowBankCol(banks, colsPerRow)
	if err != nil {
		return nil, fmt.Errorf("smc: xor mapper: %w", err)
	}
	if bits.OnesCount(uint(banks)) != 1 {
		return nil, fmt.Errorf("smc: xor mapper: bank count %d must be a power of two", banks)
	}
	return &XORBank{inner: inner, banks: banks}, nil
}

// Map implements Mapper.
func (m *XORBank) Map(pa uint64) dram.Addr {
	a := m.inner.Map(pa)
	a.Bank ^= a.Row & (m.banks - 1)
	return a
}

// Unmap implements Mapper.
func (m *XORBank) Unmap(a dram.Addr) uint64 {
	a.Bank ^= a.Row & (m.banks - 1)
	return m.inner.Unmap(a)
}

// RowBytes implements Mapper.
func (m *XORBank) RowBytes() int { return m.inner.RowBytes() }

// Banks implements Mapper.
func (m *XORBank) Banks() int { return m.banks }

var _ Mapper = (*XORBank)(nil)
