package smc

import (
	"bytes"
	"fmt"
	"math/bits"

	"easydram/internal/bender"
	"easydram/internal/bloom"
	"easydram/internal/clock"
	"easydram/internal/dram"
	"easydram/internal/fault"
	"easydram/internal/mem"
	"easydram/internal/timing"
)

// Controller is a software memory controller program: the C++ loop of
// Listing 1, expressed against the EasyAPI Env.
type Controller interface {
	// ServeOne performs one iteration of the controller loop: ingest new
	// requests, make one scheduling decision, operate DRAM, and respond.
	// It reports whether any request was served.
	ServeOne(env *Env) (bool, error)
	// Pending reports the number of requests buffered in the controller's
	// software request table.
	Pending() int
}

// TRCDProvider returns the tRCD to use when activating a row (the
// tRCD-reduction technique's scheduler hook, §8.2). Returning 0 selects the
// nominal value.
type TRCDProvider func(a dram.Addr) clock.PS

// PagePolicy selects the controller's row-buffer management.
type PagePolicy uint8

// Page policies.
const (
	// OpenPage leaves the row open after a column access, betting on row
	// locality (the default; what FR-FCFS exploits).
	OpenPage PagePolicy = iota
	// ClosedPage precharges immediately after each access, betting against
	// locality (lower row-conflict latency for random traffic).
	ClosedPage
)

// Config parameterises the base controller.
type Config struct {
	Mapper    Mapper
	Scheduler Scheduler
	// TRCD, when set, is consulted on every activation.
	TRCD TRCDProvider
	// RefreshEnabled issues REF every tREFI of emulated time.
	RefreshEnabled bool
	// Policy selects open-page (default) or closed-page row management.
	Policy PagePolicy
	// Ranks is the number of ranks sharing this controller's channel bus
	// (0 or 1 = single rank). With more than one, consecutive CAS commands
	// to different ranks pay the shared bus's rank-to-rank turnaround
	// (tBL + tRTRS), charged in modeled time and spaced on the Bender
	// program.
	Ranks int
	// Recovery enables the verify-and-retry read path: unreliable readbacks
	// are re-read with bounded attempts and exponential emulated-time
	// backoff, failed Bender launches are re-flushed the same way, and rows
	// that exhaust their retries are quarantined into a Bloom filter and
	// remapped to a per-bank spare region on every later access.
	Recovery fault.RecoveryConfig
	// Mitigation, when non-nil, is the channel's RowHammer mitigation
	// policy: it observes every row activation and nominates victim rows
	// the controller refreshes (ACT + tRAS + PRE + tRP, charged as
	// occupancy) before opening the target row.
	Mitigation fault.Mitigator
	// RowsPerBank tells the quarantine remapper where the spare-row region
	// sits (required when Recovery.Enabled).
	RowsPerBank int
	// QuarantineSeed seeds the quarantine Bloom filter's hash functions.
	QuarantineSeed uint64
}

// BaseController is the standard EasyDRAM software memory controller: a
// request table, a pluggable scheduler, open-row tracking, and service
// routines for reads, writes, RowClone, and profiling requests.
//
// The request table is an unordered slice of Entry: each request's DRAM
// coordinates are decoded once at ingest and served entries are removed by
// swap-remove, so both the scheduling decision and the removal are free of
// per-decision address translation and O(n) copying. Arrival order lives in
// Entry.Seq (a monotone counter), which schedulers use for age-based
// tie-breaking. Entries carry a slot into the tile's pooled request slab
// instead of a copy of the request itself.
//
// When the environment grants a burst budget (see Env.SetBurst) and the
// scheduler implements BurstScheduler, a single step may serve a whole
// row-hit burst through one Bender program — see serveAccessBurst.
type BaseController struct {
	cfg      Config
	p        timing.Params
	openRows []int
	table    []Entry
	nextSeq  uint64
	// profilePattern is the known data pattern used by profiling requests.
	profilePattern [dram.LineBytes]byte

	refreshDue clock.PS

	// burstSched is cfg.Scheduler when it supports burst picking (and the
	// page policy allows coalescing); statelessSched marks the built-in
	// stateless schedulers, for which a one-entry table needs no Pick call.
	burstSched     BurstScheduler
	statelessSched bool
	burstIdx       []int

	// rankShift splits a channel-global bank index into its rank (bank >>
	// rankShift); lastCASRank tracks the rank of the previous column
	// command for the rank-to-rank turnaround. rankShift is 0 when the
	// channel has a single rank, which disables the tracking entirely.
	rankShift   uint
	lastCASRank int

	// recov is the normalized recovery config; mit the channel's mitigation
	// policy (nil = none) with mitBuf its reused victim buffer; quarantine
	// the Bloom filter of given-up rows (lazily created on first
	// quarantine, so fault-free runs never pay its lookup charge) with
	// spareBase the first spare-region row quarantined rows remap into.
	recov      fault.RecoveryConfig
	mit        fault.Mitigator
	mitBuf     []int
	quarantine *bloom.Filter
	spareBase  int

	stats ControllerStats
}

// ControllerStats counts controller events.
type ControllerStats struct {
	Served     int64
	Reads      int64
	Writes     int64
	RowClones  int64
	BitwiseOps int64
	Profiles   int64
	// ProfileRows counts rows covered by whole-row profiling requests (the
	// §8.1 fast path; a bank-stripe request counts each row it covers);
	// ProfiledLines counts the cache lines those requests covered.
	ProfileRows   int64
	ProfiledLines int64
	Refreshes     int64
	RowHits       int64
	RowMisses     int64
	// BurstsServed counts steps that served more than one request through
	// one Bender program; BurstedRequests counts the requests those steps
	// covered. Both stay zero with bursting disabled — every other counter
	// is bit-identical either way.
	BurstsServed    int64
	BurstedRequests int64
	// RankSwitches counts column accesses that paid the shared bus's
	// rank-to-rank turnaround (always zero on a single-rank channel).
	RankSwitches int64
	// Retries counts verify-and-retry re-reads plus re-flushed Bender
	// launches; RetryGiveUps counts requests that exhausted their retry
	// budget. QuarantinedRows counts rows retired into the quarantine
	// filter after giving up, RemappedAccesses the accesses redirected to
	// the spare region, and MitigationRefreshes the victim-row refreshes
	// the mitigation policy inserted. All stay zero without fault
	// injection.
	Retries             int64
	RetryGiveUps        int64
	QuarantinedRows     int64
	RemappedAccesses    int64
	MitigationRefreshes int64
}

// Accumulate adds o's counters into s (multi-channel systems sum their
// per-channel controller statistics into one Result).
func (s *ControllerStats) Accumulate(o ControllerStats) {
	s.Served += o.Served
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.RowClones += o.RowClones
	s.BitwiseOps += o.BitwiseOps
	s.Profiles += o.Profiles
	s.ProfileRows += o.ProfileRows
	s.ProfiledLines += o.ProfiledLines
	s.Refreshes += o.Refreshes
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.BurstsServed += o.BurstsServed
	s.BurstedRequests += o.BurstedRequests
	s.RankSwitches += o.RankSwitches
	s.Retries += o.Retries
	s.RetryGiveUps += o.RetryGiveUps
	s.QuarantinedRows += o.QuarantinedRows
	s.RemappedAccesses += o.RemappedAccesses
	s.MitigationRefreshes += o.MitigationRefreshes
}

// AvgBurstLen reports the mean requests per multi-request step (0 when no
// bursts were served).
func (s ControllerStats) AvgBurstLen() float64 {
	if s.BurstsServed == 0 {
		return 0
	}
	return float64(s.BurstedRequests) / float64(s.BurstsServed)
}

// NewBaseController builds the controller for a chip with the given timing.
func NewBaseController(cfg Config, p timing.Params, banks int) (*BaseController, error) {
	if cfg.Mapper == nil {
		return nil, fmt.Errorf("smc: controller needs a mapper")
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = FRFCFS{}
	}
	open := make([]int, banks)
	for i := range open {
		open[i] = -1
	}
	c := &BaseController{cfg: cfg, p: p, openRows: open, refreshDue: p.TREFI, lastCASRank: -1}
	if cfg.Ranks > 1 {
		if banks%cfg.Ranks != 0 || banks&(banks-1) != 0 {
			return nil, fmt.Errorf("smc: %d banks across %d ranks must be a power-of-two split", banks, cfg.Ranks)
		}
		c.rankShift = uint(bits.TrailingZeros(uint(banks / cfg.Ranks)))
	}
	c.recov = cfg.Recovery.Normalize()
	c.mit = cfg.Mitigation
	if c.recov.Enabled {
		if cfg.RowsPerBank <= c.recov.SpareRows {
			return nil, fmt.Errorf("smc: recovery needs RowsPerBank (%d) above its %d spare rows", cfg.RowsPerBank, c.recov.SpareRows)
		}
		c.spareBase = cfg.RowsPerBank - c.recov.SpareRows
	}
	// Burst coalescing is disabled under recovery or mitigation: verify
	// re-reads and victim refreshes extend a request's program after the
	// fact, which the burst segment arithmetic does not model. Zero-
	// injection configs keep bursting untouched.
	if bs, ok := cfg.Scheduler.(BurstScheduler); ok && cfg.Policy == OpenPage && !c.recov.Enabled && c.mit == nil {
		c.burstSched = bs
	}
	c.statelessSched = Stateless(cfg.Scheduler)
	for i := range c.profilePattern {
		c.profilePattern[i] = 0xA5
	}
	return c, nil
}

// Stats returns a snapshot of controller counters.
func (c *BaseController) Stats() ControllerStats { return c.stats }

// Mapper returns the physical-to-DRAM address mapper in use.
func (c *BaseController) Mapper() Mapper { return c.cfg.Mapper }

// Pending implements Controller.
func (c *BaseController) Pending() int { return len(c.table) }

// OpenRow reports the controller's view of the open row in bank.
func (c *BaseController) OpenRow(bank int) int { return c.openRows[bank] }

// RefreshEnabled reports whether periodic refresh is configured.
func (c *BaseController) RefreshEnabled() bool { return c.cfg.RefreshEnabled }

// NextRefreshDue reports when the next REF command is due (emulated time).
func (c *BaseController) NextRefreshDue() clock.PS { return c.refreshDue }

// ServeRefresh issues one REF command sequence (precharge-all + REF) and
// advances the refresh schedule. The engine decides *when* a due refresh is
// accounted: deterministically against the controller's service timeline,
// so both the time-scaled and the reference engines charge it identically.
func (c *BaseController) ServeRefresh(env *Env) error {
	b := env.Tile().Builder()
	for bank := range c.openRows {
		if c.openRows[bank] >= 0 {
			b.PRE(bank)
			c.openRows[bank] = -1
		}
	}
	b.Wait(c.p.TRP)
	b.REF()
	if _, err := c.exec(env); err != nil {
		return err
	}
	env.AddService(c.p.TRP+c.p.TRFC, c.p.TRP+c.p.TRFC)
	c.refreshDue += c.p.TREFI
	c.stats.Refreshes++
	return nil
}

// ServeOne implements Controller.
func (c *BaseController) ServeOne(env *Env) (bool, error) {
	costs := env.Tile().Costs()
	env.Charge(costs.Poll)

	// Transfer new requests from the hardware buffers to the software
	// request table (Figure 6 step 5), decoding DRAM coordinates once here
	// rather than on every scheduling decision. The modeled MapAddr cost is
	// still charged at service time; this is host-side work only. The
	// request bytes stay in the tile's slab — the table entry carries the
	// slot and the decoded hot fields.
	t := env.Tile()
	for {
		slot, ok := t.PopRequest()
		if !ok {
			break
		}
		env.Charge(costs.ReceiveRequest)
		req := t.Req(slot)
		ent := Entry{Slot: slot, ID: req.ID, Kind: req.Kind, Addr: c.cfg.Mapper.Map(req.Addr), Seq: c.nextSeq}
		c.nextSeq++
		switch req.Kind {
		case mem.RowClone, mem.Bitwise:
			ent.Src = c.cfg.Mapper.Map(req.Src)
		}
		c.table = append(c.table, ent)
	}
	if len(c.table) == 0 {
		return false, nil
	}
	if !env.Critical() {
		env.SetCritical(true)
	}

	// Scheduling decision. Swap-remove keeps the pop O(1); age order is
	// preserved in Entry.Seq, not in slice positions.
	env.Charge(costs.ScheduleBase + costs.SchedulePerReq*len(c.table))

	// Burst path: when the step's burst budget allows it, ask the scheduler
	// for the run of requests it would serve consecutively on one
	// (bank, row) and serve them all through one Bender program.
	if c.burstSched != nil && env.BurstBudget() > 1 && len(c.table) > 1 {
		c.burstIdx = c.burstSched.PickBurst(c.table, c.openRows, env.BurstBudget(), c.burstIdx[:0])
		if len(c.burstIdx) > 1 {
			if err := c.serveAccessBurst(env); err != nil {
				return false, err
			}
			if len(c.table) == 0 && env.Tile().IncomingEmpty() {
				// The serial path's final step charges its critical exit
				// inside the step; fold it into the last segment.
				env.SetCritical(false)
				env.AbsorbTrailingCharge()
			}
			return true, nil
		}
		// A burst of one is just the scheduling decision.
		return c.serveIndex(env, c.burstIdx[0])
	}

	var idx int
	if len(c.table) == 1 && c.statelessSched {
		// The built-in stateless schedulers can only pick the sole entry;
		// skip the interface call on this hottest of paths. (The modeled
		// scheduling cost above is charged regardless, so emulated timing
		// is unaffected.)
		idx = 0
	} else {
		idx = c.cfg.Scheduler.Pick(c.table, c.openRows)
	}
	return c.serveIndex(env, idx)
}

// serveIndex serves the table entry at idx and removes it.
func (c *BaseController) serveIndex(env *Env, idx int) (bool, error) {
	ent := c.table[idx]
	last := len(c.table) - 1
	c.table[idx] = c.table[last]
	c.table = c.table[:last]

	var err error
	switch ent.Kind {
	case mem.Read:
		err = c.serveAccess(env, ent, false)
	case mem.Write, mem.Writeback:
		err = c.serveAccess(env, ent, true)
	case mem.RowClone:
		err = c.serveRowClone(env, ent)
	case mem.Profile:
		err = c.serveProfile(env, ent)
	case mem.ProfileRow:
		err = c.serveProfileRow(env, ent)
	case mem.Bitwise:
		err = c.serveBitwise(env, ent)
	default:
		err = fmt.Errorf("smc: unknown request kind %v", ent.Kind)
	}
	if err != nil {
		return false, err
	}
	c.stats.Served++
	if len(c.table) == 0 && env.Tile().IncomingEmpty() {
		env.SetCritical(false)
	}
	return true, nil
}

// emitAccess appends the DRAM command sequence for one cache-line access to
// b and returns the activation latency it incurred (0 for a row hit). It
// charges the Bloom lookup when the tRCD provider is consulted and updates
// open-row state and hit/miss statistics — exactly the front half of the
// serial access path, shared with the burst path so the two stay identical
// by construction.
func (c *BaseController) emitAccess(env *Env, b *bender.Builder, a dram.Addr, isWrite bool) clock.PS {
	var actLatency clock.PS
	if c.quarantine != nil {
		// Graceful degradation: accesses to quarantined rows (plus the
		// filter's false positives) are redirected into the bank's spare
		// region. The lookup exists only once a row has been quarantined,
		// so fault-free service never pays it.
		env.Charge(env.Tile().Costs().BloomCheck)
		if c.quarantine.Contains(rowKey(a.Bank, a.Row)) {
			a.Row = c.spareBase + a.Row%c.recov.SpareRows
			c.stats.RemappedAccesses++
		}
	}
	if c.openRows[a.Bank] == a.Row {
		c.stats.RowHits++
	} else {
		c.stats.RowMisses++
		if c.openRows[a.Bank] >= 0 {
			b.PRE(a.Bank)
			b.Wait(c.p.TRP - c.p.Bus.Period())
			actLatency += c.p.TRP
		}
		if c.mit != nil {
			actLatency += c.emitMitigation(env, b, a.Bank, a.Row)
		}
		rcd := c.p.TRCD
		if c.cfg.TRCD != nil {
			env.Charge(env.Tile().Costs().BloomCheck)
			if v := c.cfg.TRCD(a); v > 0 {
				rcd = v
			}
		}
		b.ACTWithRCD(a.Bank, a.Row, rcd)
		b.Wait(rcd - c.p.Bus.Period())
		actLatency += rcd
		c.openRows[a.Bank] = a.Row
	}
	if c.cfg.Ranks > 1 {
		// Shared-bus rank-to-rank turnaround: a column command to a
		// different rank than the previous one must trail it by the data
		// burst plus tRTRS (CAS-to-CAS spacing).
		rank := a.Bank >> c.rankShift
		if c.lastCASRank >= 0 && rank != c.lastCASRank {
			rtrs := c.p.RankSwitch()
			// Bender program: programs chain with only a launch-gap cycle,
			// so pad the bus timeline until this CAS sits tBL+tRTRS past
			// the previous program's (the RankBus counts any shortfall).
			if need := c.p.TBL + rtrs; actLatency < need {
				b.Wait(need - actLatency - c.p.Bus.Period())
			}
			// Modeled time: the previous access's occupancy already ends
			// after its own data burst, so the extra serialization a rank
			// switch costs the channel is the turnaround alone — and row
			// preparation overlaps it, so only the remainder is charged.
			if actLatency < rtrs {
				actLatency = rtrs
			}
			c.stats.RankSwitches++
		}
		c.lastCASRank = rank
	}
	if isWrite {
		b.WR(a.Bank, a.Col, nil)
		c.stats.Writes++
	} else {
		b.RD(a.Bank, a.Col)
		c.stats.Reads++
	}
	return actLatency
}

// Quarantine filter sizing: a handful of hard-failed rows per channel is
// the design point; 256 rows at 0.1% false positives keeps the filter a few
// hundred bytes, and a false positive merely remaps a healthy row.
const (
	quarantineCapacity = 256
	quarantineFPRate   = 0.001
)

// rowKey packs a (bank, row) pair into the quarantine filter's key space.
func rowKey(bank, row int) uint64 {
	return uint64(bank)<<40 | uint64(uint32(row))
}

// quarantineRow retires a row that exhausted its retry budget. The Bloom
// filter is created lazily on the first quarantine, so injection-free runs
// never pay its per-access lookup.
func (c *BaseController) quarantineRow(a dram.Addr) error {
	if c.quarantine == nil {
		f, err := bloom.NewForCapacity(quarantineCapacity, quarantineFPRate, c.cfg.QuarantineSeed^0x9aa7)
		if err != nil {
			return fmt.Errorf("smc: quarantine filter: %w", err)
		}
		c.quarantine = f
	}
	if !c.quarantine.Contains(rowKey(a.Bank, a.Row)) {
		c.quarantine.Add(rowKey(a.Bank, a.Row))
		c.stats.QuarantinedRows++
	}
	return nil
}

// emitMitigation feeds an activation to the mitigation policy and refreshes
// each nominated victim row by activation (ACT, tRAS, PRE, tRP) ahead of the
// target row's own ACT. The returned latency joins the access's activation
// latency: mitigation delays the row open, which is exactly its cost.
func (c *BaseController) emitMitigation(env *Env, b *bender.Builder, bank, row int) clock.PS {
	c.mitBuf = c.mit.OnActivate(bank, row, c.mitBuf[:0])
	var lat clock.PS
	for _, v := range c.mitBuf {
		b.ACT(bank, v)
		b.Wait(c.p.TRAS - c.p.Bus.Period())
		b.PRE(bank)
		b.Wait(c.p.TRP - c.p.Bus.Period())
		lat += c.p.TRAS + c.p.TRP
		c.stats.MitigationRefreshes++
	}
	return lat
}

// execAccess runs the built access program, re-flushing it on injected
// transient launch failures (the builder still holds the program — see
// Tile.Exec). The fault-free path is a single nil-latency branch.
func (c *BaseController) execAccess(env *Env) (bender.Result, error) {
	res, err := env.ExecAccess()
	if err != nil || !res.LaunchFailed {
		return res, err
	}
	return c.retryLaunch(env, env.ExecAccess)
}

// exec is execAccess for programs whose readback is consumed (profiling).
func (c *BaseController) exec(env *Env) (bender.Result, error) {
	res, err := env.Exec()
	if err != nil || !res.LaunchFailed {
		return res, err
	}
	return c.retryLaunch(env, env.Exec)
}

// retryLaunch re-flushes a program whose launch transiently failed, with
// exponential emulated-time backoff. Exhausting the budget is a hard error:
// a host link that fails MaxRetries+1 consecutive launches is dead, and the
// emulation cannot meaningfully continue past it (at the default 1e-4 fail
// rate the chance is ~1e-16 per program).
func (c *BaseController) retryLaunch(env *Env, exec func() (bender.Result, error)) (bender.Result, error) {
	if !c.recov.Enabled {
		return bender.Result{}, fmt.Errorf("smc: Bender launch failed with recovery disabled")
	}
	backoff := c.recov.Backoff
	for attempt := 0; attempt < c.recov.MaxRetries; attempt++ {
		c.stats.Retries++
		env.AddService(backoff, backoff)
		res, err := exec()
		if err != nil || !res.LaunchFailed {
			return res, err
		}
		backoff *= 2
	}
	c.stats.RetryGiveUps++
	return bender.Result{}, fmt.Errorf("smc: Bender launch failed %d times; giving up", c.recov.MaxRetries+1)
}

// retryRead is the verify-and-retry read path: the chip flagged this access's
// readback unreliable, so re-read the line after an exponential emulated-time
// backoff, up to the configured attempt budget. Transient faults clear on a
// retry; a stuck-at line never does and runs the budget out into a give-up
// (the caller then quarantines the row). The re-read RDs the bank's open row,
// so it targets the remapped row when quarantine redirected the access.
func (c *BaseController) retryRead(env *Env, a dram.Addr, occ, lat *clock.PS) (bool, error) {
	costs := env.Tile().Costs()
	b := env.Tile().Builder()
	backoff := c.recov.Backoff
	for attempt := 0; attempt < c.recov.MaxRetries; attempt++ {
		c.stats.Retries++
		b.Wait(backoff)
		b.RD(a.Bank, a.Col)
		res, err := c.execAccess(env)
		if err != nil {
			return false, err
		}
		env.Charge(costs.ReadbackPerLine)
		*occ += backoff + c.p.TBL
		*lat += backoff + c.p.TCL + c.p.TBL
		if res.UnreliableReads == 0 {
			return true, nil
		}
		backoff *= 2
	}
	c.stats.RetryGiveUps++
	return false, nil
}

// serveAccess serves a cache-line read or write with an open-row policy.
func (c *BaseController) serveAccess(env *Env, ent Entry, isWrite bool) error {
	costs := env.Tile().Costs()
	env.Charge(costs.MapAddr)
	a := ent.Addr
	b := env.Tile().Builder()

	actLatency := c.emitAccess(env, b, a, isWrite)
	res, err := c.execAccess(env)
	if err != nil {
		return err
	}
	// Occupancy: row preparation (when needed) plus the data burst. The
	// CAS pipeline tail overlaps other requests, so it contributes to the
	// response latency only.
	occ := actLatency + c.p.TBL
	lat := actLatency
	ok := true
	if isWrite {
		lat += c.p.TCWL + c.p.TBL
	} else {
		env.Charge(costs.ReadbackPerLine)
		lat += c.p.TCL + c.p.TBL
		if c.recov.Enabled && res.UnreliableReads > 0 {
			// Verify-and-retry: the chip flagged the readback. On give-up the
			// quarantine keys on the request's own row — the coordinate future
			// accesses arrive under — not the spare row a remap may have
			// redirected this access to (emitAccess remaps its own copy).
			ok, err = c.retryRead(env, a, &occ, &lat)
			if err != nil {
				return err
			}
			if !ok {
				if err := c.quarantineRow(a); err != nil {
					return err
				}
			}
		}
	}
	env.AddService(occ, lat)
	if c.cfg.Policy == ClosedPage {
		// Auto-precharge: close the row right after the column access.
		// The precharge overlaps subsequent commands to other banks, so it
		// adds no occupancy here; the next access to this bank simply needs
		// no explicit PRE (its tRP is folded into the closed-row path).
		pb := env.Tile().Builder()
		pb.Wait(c.p.TRTP)
		pb.PRE(a.Bank)
		if _, err := c.execAccess(env); err != nil {
			return err
		}
		c.openRows[a.Bank] = -1
	}
	env.Respond(ent.ID, ok)
	env.Tile().Release(ent.Slot)
	return nil
}

// serveAccessBurst serves the row-hit burst in c.burstIdx (at least two
// same-(bank, row) accesses, in service order) through ONE Bender program:
// the winner's row preparation (when it misses) followed by the per-line
// column commands, with a one-bus-cycle gap between requests standing in
// for the serial path's program-launch turnaround. Every modeled cost —
// Poll, the scheduling decision over the table size that serial step would
// have seen, MapAddr, per-program build/flush charges, column latencies —
// is charged per request exactly as the serial path charges it, and each
// request's accumulator slice is recorded as an Env segment, so the engine
// settles the burst bit-identically to serial service. The host-side win is
// everything that is NOT modeled: one scheduler pick, one program build,
// one Bender execution, one timing-check pass, and one engine round-trip
// instead of one per request.
//
// Between requests the controller asks Env.ExtendBurst whether serving the
// next one is still provably serial-equivalent (the engine's gate cuts the
// burst at arrivals, refreshes, or processor wake-ups); unserved entries
// simply stay in the table.
func (c *BaseController) serveAccessBurst(env *Env) error {
	t := env.Tile()
	costs := t.Costs()
	b := t.Builder()
	n0 := len(c.table)

	// Entries are read in place (removal is deferred to the end, so the
	// gathered indices stay valid); the gate may cut the tail, and the
	// table is only edited once the served prefix is known.
	served := 0
	for j, idx := range c.burstIdx {
		if j > 0 {
			if !env.ExtendBurst() {
				break
			}
			// Inter-request gap: the serial path's per-program launch
			// turnaround (one bus cycle), reproduced so every command lands
			// on the same absolute bus cycle as it would have serially.
			b.Emit(bender.Instr{Op: bender.OpWAIT, A: 1})
		}
		ent := &c.table[idx]
		isWrite := ent.Kind != mem.Read

		lenBefore := b.Len()
		curBefore := b.Cursor()
		actLatency := c.emitAccess(env, b, ent.Addr, isWrite)
		// A row hit's program is a single column command: one bus cycle of
		// wall time, no cursor arithmetic needed.
		wall := c.p.Bus.Period()
		if actLatency != 0 {
			wall = b.Cursor() - curBefore
		}

		// The j-th serial step's charges in one add: poll (steps beyond the
		// first see an empty FIFO — the gate guarantees no mid-burst
		// arrival), the scheduling decision over the table that step would
		// have seen, address translation, and its own program's build and
		// flush costs.
		instrs := b.Len() - lenBefore
		charge := costs.MapAddr + costs.BuildPerInstr*instrs + costs.FlushLaunch + costs.FlushPerInstr*instrs
		if j > 0 {
			charge += costs.Poll + costs.ScheduleBase + costs.SchedulePerReq*(n0-j)
		}

		occ := actLatency + c.p.TBL
		if isWrite {
			env.AddService(occ, actLatency+c.p.TCWL+c.p.TBL)
		} else {
			charge += costs.ReadbackPerLine
			env.AddService(occ, actLatency+c.p.TCL+c.p.TBL)
		}
		env.Charge(charge)
		env.Respond(ent.ID, true)
		t.Release(ent.Slot)
		c.stats.Served++
		served++
		env.CloseSegment(wall)
	}
	if served < len(c.burstIdx) {
		if tr, ok := c.burstSched.(burstTruncater); ok {
			tr.NoteBurstServed(served)
		}
	}
	if served > 1 {
		c.stats.BurstsServed++
		c.stats.BurstedRequests += int64(served)
	}

	// One real execution for the whole batch.
	if _, err := env.ExecAccessPrecharged(); err != nil {
		return err
	}

	// Remove the served prefix from the table: wholesale when the burst
	// consumed every entry (the common case for a full same-row run),
	// highest index first otherwise so swap-remove cannot disturb a lower
	// still-pending index.
	if served == n0 {
		c.table = c.table[:0]
	} else {
		c.removeServed(c.burstIdx[:served])
	}
	return nil
}

// removeServed swap-removes the given table indices (sorted in place,
// removed highest first).
func (c *BaseController) removeServed(idxs []int) {
	// Insertion sort: bursts are short and the buffer is reused.
	for i := 1; i < len(idxs); i++ {
		v := idxs[i]
		j := i - 1
		for j >= 0 && idxs[j] < v {
			idxs[j+1] = idxs[j]
			j--
		}
		idxs[j+1] = v
	}
	for _, idx := range idxs {
		last := len(c.table) - 1
		c.table[idx] = c.table[last]
		c.table = c.table[:last]
	}
}

// serveRowClone serves an in-DRAM row copy (§7).
func (c *BaseController) serveRowClone(env *Env, ent Entry) error {
	costs := env.Tile().Costs()
	env.Charge(2 * costs.MapAddr)
	src, dst := ent.Src, ent.Addr
	c.stats.RowClones++
	if src.Bank != dst.Bank || src.Chan != dst.Chan {
		// FPM RowClone cannot cross banks — or channels: the request routed
		// to the destination's controller, which cannot reach another
		// channel's rows. The caller must fall back.
		env.Respond(ent.ID, false)
		env.Tile().Release(ent.Slot)
		return nil
	}
	b := env.Tile().Builder()
	if c.openRows[src.Bank] >= 0 {
		b.PRE(src.Bank)
		b.Wait(c.p.TRP - c.p.Bus.Period())
	}
	b.RowClone(src.Bank, src.Row, dst.Row)
	res, err := c.exec(env)
	if err != nil {
		return err
	}
	c.openRows[src.Bank] = -1
	env.AddService(res.Elapsed, res.Elapsed)
	env.Respond(ent.ID, res.CloneAttempts > 0 && res.CloneSuccesses == res.CloneAttempts)
	env.Tile().Release(ent.Slot)
	return nil
}

// serveBitwise serves an in-DRAM bulk bitwise majority: a many-row
// activation of the rows at Src and Addr (which drags in their address-OR
// row). Success means the chip committed the majority result.
func (c *BaseController) serveBitwise(env *Env, ent Entry) error {
	costs := env.Tile().Costs()
	env.Charge(2 * costs.MapAddr)
	r1, r2 := ent.Src, ent.Addr
	c.stats.BitwiseOps++
	if r1.Bank != r2.Bank || r1.Chan != r2.Chan {
		env.Respond(ent.ID, false)
		env.Tile().Release(ent.Slot)
		return nil
	}
	b := env.Tile().Builder()
	if c.openRows[r1.Bank] >= 0 {
		b.PRE(r1.Bank)
		b.Wait(c.p.TRP - c.p.Bus.Period())
	}
	b.BitwiseMAJ(r1.Bank, r1.Row, r2.Row)
	res, err := c.exec(env)
	if err != nil {
		return err
	}
	c.openRows[r1.Bank] = -1
	env.AddService(res.Elapsed, res.Elapsed)
	env.Respond(ent.ID, res.CloneAttempts > 0 && res.CloneSuccesses == res.CloneAttempts)
	env.Tile().Release(ent.Slot)
	return nil
}

// serveProfile serves a §8.1 profiling request: initialize the target line
// with a known pattern, read it back with the requested tRCD, and report
// whether the data survived.
func (c *BaseController) serveProfile(env *Env, ent Entry) error {
	costs := env.Tile().Costs()
	env.Charge(costs.MapAddr)
	a := ent.Addr
	rcd := env.Tile().Req(ent.Slot).RCD
	c.stats.Profiles++
	b := env.Tile().Builder()
	backoff := c.recov.Backoff
	ok := false
	for attempt := 0; ; attempt++ {
		if c.openRows[a.Bank] >= 0 {
			b.PRE(a.Bank)
			b.Wait(c.p.TRP - c.p.Bus.Period())
		}
		// Initialize the target cache line with the known pattern, then
		// access it with the requested (reduced) tRCD.
		b.ProfileLine(a, c.profilePattern[:], rcd)

		prev := len(env.Readback())
		res, err := c.exec(env)
		if err != nil {
			return err
		}
		c.openRows[a.Bank] = -1
		env.Charge(costs.ReadbackPerLine + costs.ProfileCompare)
		env.AddService(res.Elapsed, res.Elapsed)

		// Compare the readback against the pattern.
		rb := env.Readback()
		if len(rb) > prev {
			last := rb[len(rb)-1]
			if !last.LinkCorrupt {
				ok = last.Reliable && bytes.Equal(last.Data[:], c.profilePattern[:])
				break
			}
		}
		// The host link dropped or corrupted the probe's readback: the
		// profiling verdict would be meaningless, so re-probe after a backoff.
		if !c.recov.Enabled {
			break
		}
		if attempt >= c.recov.MaxRetries {
			c.stats.RetryGiveUps++
			break
		}
		c.stats.Retries++
		env.AddService(backoff, backoff)
		backoff *= 2
	}
	env.Respond(ent.ID, ok)
	env.Tile().Release(ent.Slot)
	return nil
}

// serveProfileRow serves a row-granularity §8.1 profiling request — or, when
// the request's Rows field extends it, a whole bank stripe of consecutive
// rows: one Bender program initializes every cache line of each covered row
// with the known pattern and reads each back under the requested tRCD,
// replacing one request round-trip per line with a single round-trip for up
// to 64 rows. Per-line outcomes are identical to the per-line path because
// each line's test read happens exactly RCD after its own activation (see
// Builder.ProfileCheck).
func (c *BaseController) serveProfileRow(env *Env, ent Entry) error {
	costs := env.Tile().Costs()
	env.Charge(costs.MapAddr)
	a := ent.Addr
	req := env.Tile().Req(ent.Slot)
	rcd := req.RCD
	rows := req.Rows
	if rows < 1 {
		rows = 1
	}
	cols := c.cfg.Mapper.RowBytes() / dram.LineBytes
	if rows*cols > bender.ReadbackLines {
		return fmt.Errorf("smc: profile stripe of %d rows x %d cols exceeds the %d-line readback buffer",
			rows, cols, bender.ReadbackLines)
	}
	c.stats.ProfileRows += int64(rows)
	c.stats.ProfiledLines += int64(rows * cols)
	total := rows * cols

	// Execute via the tile directly and scan its readback in place: a
	// 64-row stripe reads back half a megabyte, and the Env's usual
	// buffer-the-readback copy would double the cache traffic for lines
	// this routine consumes immediately. Exec costs are charged as Env.Exec
	// charges them. A stripe whose readback the host link mangled (short or
	// carrying a corrupt line) is re-profiled whole after a backoff: per-line
	// verdicts from a damaged transfer are meaningless.
	var rb []bender.ReadLine
	backoff := c.recov.Backoff
	for attempt := 0; ; attempt++ {
		b := env.Tile().Builder()
		if c.openRows[a.Bank] >= 0 {
			b.PRE(a.Bank)
			b.Wait(c.p.TRP - c.p.Bus.Period())
		}
		b.ProfileRowStripe(a.Bank, a.Row, rows, cols, c.profilePattern[:], rcd)

		n := b.Len()
		env.Charge(costs.BuildPerInstr*n + costs.FlushLaunch + costs.FlushPerInstr*n)
		var res bender.Result
		var err error
		res, rb, err = c.tileExec(env)
		if err != nil {
			return err
		}
		env.AddBenderWall(res.Elapsed)
		c.openRows[a.Bank] = -1
		env.Charge((costs.ReadbackPerLine + costs.ProfileCompare) * rows * cols)
		env.AddService(res.Elapsed, res.Elapsed)

		if !c.recov.Enabled || !stripeCorrupt(rb, total) {
			break
		}
		if attempt >= c.recov.MaxRetries {
			c.stats.RetryGiveUps++
			break
		}
		c.stats.Retries++
		env.AddService(backoff, backoff)
		backoff *= 2
	}

	// The program's only reads are the per-column test reads, in (row,
	// column) order. Per covered row, count its leading reliable lines (the
	// per-line path's stop-at-first-failure accounting); the request passes
	// when every line of every row is reliable. Lines reports the leading
	// reliable lines of the whole stripe for single-row compatibility.
	okLines := 0
	rowLines := make([]int, rows)
	if len(rb) >= total {
		stripe := rb[len(rb)-total:]
		leading := true
		for r := 0; r < rows; r++ {
			cnt := 0
			for _, line := range stripe[r*cols : (r+1)*cols] {
				if !line.Reliable || !bytes.Equal(line.Data[:], c.profilePattern[:]) {
					break
				}
				cnt++
			}
			rowLines[r] = cnt
			if leading {
				okLines += cnt
				if cnt != cols {
					leading = false
				}
			}
		}
	}
	env.RespondLines(ent.ID, okLines == total, okLines, rowLines)
	env.Tile().Release(ent.Slot)
	return nil
}

// tileExec runs the built program via the tile directly (bulk profiling
// consumes the tile's readback in place instead of buffering it through the
// Env), re-flushing on injected transient launch failures like retryLaunch.
func (c *BaseController) tileExec(env *Env) (bender.Result, []bender.ReadLine, error) {
	res, rb, err := env.Tile().Exec()
	if err != nil {
		return res, rb, fmt.Errorf("smc: %w", err)
	}
	if !res.LaunchFailed {
		return res, rb, nil
	}
	if !c.recov.Enabled {
		return res, rb, fmt.Errorf("smc: Bender launch failed with recovery disabled")
	}
	costs := env.Tile().Costs()
	backoff := c.recov.Backoff
	for attempt := 0; attempt < c.recov.MaxRetries; attempt++ {
		c.stats.Retries++
		env.AddService(backoff, backoff)
		// The program is still in the builder; charge the re-flush alone.
		n := env.Tile().Builder().Len()
		env.Charge(costs.FlushLaunch + costs.FlushPerInstr*n)
		res, rb, err = env.Tile().Exec()
		if err != nil {
			return res, rb, fmt.Errorf("smc: %w", err)
		}
		if !res.LaunchFailed {
			return res, rb, nil
		}
		backoff *= 2
	}
	c.stats.RetryGiveUps++
	return res, rb, fmt.Errorf("smc: Bender launch failed %d times; giving up", c.recov.MaxRetries+1)
}

// stripeCorrupt reports whether the host link mangled a bulk-profiling
// readback: the stripe came back short, or a surviving line carries the
// link-corruption mark.
func stripeCorrupt(rb []bender.ReadLine, total int) bool {
	if len(rb) < total {
		return true
	}
	for i := len(rb) - total; i < len(rb); i++ {
		if rb[i].LinkCorrupt {
			return true
		}
	}
	return false
}

var _ Controller = (*BaseController)(nil)
