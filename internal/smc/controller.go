package smc

import (
	"bytes"
	"fmt"

	"easydram/internal/clock"
	"easydram/internal/dram"
	"easydram/internal/mem"
	"easydram/internal/timing"
)

// Controller is a software memory controller program: the C++ loop of
// Listing 1, expressed against the EasyAPI Env.
type Controller interface {
	// ServeOne performs one iteration of the controller loop: ingest new
	// requests, make one scheduling decision, operate DRAM, and respond.
	// It reports whether any request was served.
	ServeOne(env *Env) (bool, error)
	// Pending reports the number of requests buffered in the controller's
	// software request table.
	Pending() int
}

// TRCDProvider returns the tRCD to use when activating a row (the
// tRCD-reduction technique's scheduler hook, §8.2). Returning 0 selects the
// nominal value.
type TRCDProvider func(a dram.Addr) clock.PS

// PagePolicy selects the controller's row-buffer management.
type PagePolicy uint8

// Page policies.
const (
	// OpenPage leaves the row open after a column access, betting on row
	// locality (the default; what FR-FCFS exploits).
	OpenPage PagePolicy = iota
	// ClosedPage precharges immediately after each access, betting against
	// locality (lower row-conflict latency for random traffic).
	ClosedPage
)

// Config parameterises the base controller.
type Config struct {
	Mapper    Mapper
	Scheduler Scheduler
	// TRCD, when set, is consulted on every activation.
	TRCD TRCDProvider
	// RefreshEnabled issues REF every tREFI of emulated time.
	RefreshEnabled bool
	// Policy selects open-page (default) or closed-page row management.
	Policy PagePolicy
}

// BaseController is the standard EasyDRAM software memory controller: a
// request table, a pluggable scheduler, open-row tracking, and service
// routines for reads, writes, RowClone, and profiling requests.
//
// The request table is an unordered slice of Entry: each request's DRAM
// coordinates are decoded once at ingest and served entries are removed by
// swap-remove, so both the scheduling decision and the removal are free of
// per-decision address translation and O(n) copying. Arrival order lives in
// Entry.Seq (a monotone counter), which schedulers use for age-based
// tie-breaking.
type BaseController struct {
	cfg      Config
	p        timing.Params
	openRows []int
	table    []Entry
	nextSeq  uint64
	// profilePattern is the known data pattern used by profiling requests.
	profilePattern [dram.LineBytes]byte

	refreshDue clock.PS

	stats ControllerStats
}

// ControllerStats counts controller events.
type ControllerStats struct {
	Served     int64
	Reads      int64
	Writes     int64
	RowClones  int64
	BitwiseOps int64
	Profiles   int64
	// ProfileRows counts whole-row profiling requests (the §8.1 fast path);
	// ProfiledLines counts the cache lines those requests covered.
	ProfileRows   int64
	ProfiledLines int64
	Refreshes     int64
	RowHits       int64
	RowMisses     int64
}

// NewBaseController builds the controller for a chip with the given timing.
func NewBaseController(cfg Config, p timing.Params, banks int) (*BaseController, error) {
	if cfg.Mapper == nil {
		return nil, fmt.Errorf("smc: controller needs a mapper")
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = FRFCFS{}
	}
	open := make([]int, banks)
	for i := range open {
		open[i] = -1
	}
	c := &BaseController{cfg: cfg, p: p, openRows: open, refreshDue: p.TREFI}
	for i := range c.profilePattern {
		c.profilePattern[i] = 0xA5
	}
	return c, nil
}

// Stats returns a snapshot of controller counters.
func (c *BaseController) Stats() ControllerStats { return c.stats }

// Mapper returns the physical-to-DRAM address mapper in use.
func (c *BaseController) Mapper() Mapper { return c.cfg.Mapper }

// Pending implements Controller.
func (c *BaseController) Pending() int { return len(c.table) }

// OpenRow reports the controller's view of the open row in bank.
func (c *BaseController) OpenRow(bank int) int { return c.openRows[bank] }

// RefreshEnabled reports whether periodic refresh is configured.
func (c *BaseController) RefreshEnabled() bool { return c.cfg.RefreshEnabled }

// NextRefreshDue reports when the next REF command is due (emulated time).
func (c *BaseController) NextRefreshDue() clock.PS { return c.refreshDue }

// ServeRefresh issues one REF command sequence (precharge-all + REF) and
// advances the refresh schedule. The engine decides *when* a due refresh is
// accounted: deterministically against the controller's service timeline,
// so both the time-scaled and the reference engines charge it identically.
func (c *BaseController) ServeRefresh(env *Env) error {
	b := env.Tile().Builder()
	for bank := range c.openRows {
		if c.openRows[bank] >= 0 {
			b.PRE(bank)
			c.openRows[bank] = -1
		}
	}
	b.Wait(c.p.TRP)
	b.REF()
	if _, err := env.Exec(); err != nil {
		return err
	}
	env.AddService(c.p.TRP+c.p.TRFC, c.p.TRP+c.p.TRFC)
	c.refreshDue += c.p.TREFI
	c.stats.Refreshes++
	return nil
}

// ServeOne implements Controller.
func (c *BaseController) ServeOne(env *Env) (bool, error) {
	costs := env.Tile().Costs()
	env.Charge(costs.Poll)

	// Transfer new requests from the hardware buffers to the software
	// request table (Figure 6 step 5), decoding DRAM coordinates once here
	// rather than on every scheduling decision. The modeled MapAddr cost is
	// still charged at service time; this is host-side work only.
	for {
		req, ok := env.Tile().PopRequest()
		if !ok {
			break
		}
		env.Charge(costs.ReceiveRequest)
		ent := Entry{Req: req, Addr: c.cfg.Mapper.Map(req.Addr), Seq: c.nextSeq}
		c.nextSeq++
		switch req.Kind {
		case mem.RowClone, mem.Bitwise:
			ent.Src = c.cfg.Mapper.Map(req.Src)
		}
		c.table = append(c.table, ent)
	}
	if len(c.table) == 0 {
		return false, nil
	}
	if !env.Critical() {
		env.SetCritical(true)
	}

	// Scheduling decision. Swap-remove keeps the pop O(1); age order is
	// preserved in Entry.Seq, not in slice positions.
	env.Charge(costs.ScheduleBase + costs.SchedulePerReq*len(c.table))
	idx := c.cfg.Scheduler.Pick(c.table, c.openRows)
	ent := c.table[idx]
	last := len(c.table) - 1
	c.table[idx] = c.table[last]
	c.table = c.table[:last]

	var err error
	switch ent.Req.Kind {
	case mem.Read:
		err = c.serveAccess(env, ent, false)
	case mem.Write, mem.Writeback:
		err = c.serveAccess(env, ent, true)
	case mem.RowClone:
		err = c.serveRowClone(env, ent)
	case mem.Profile:
		err = c.serveProfile(env, ent)
	case mem.ProfileRow:
		err = c.serveProfileRow(env, ent)
	case mem.Bitwise:
		err = c.serveBitwise(env, ent)
	default:
		err = fmt.Errorf("smc: unknown request kind %v", ent.Req.Kind)
	}
	if err != nil {
		return false, err
	}
	c.stats.Served++
	if len(c.table) == 0 && env.Tile().IncomingEmpty() {
		env.SetCritical(false)
	}
	return true, nil
}

// serveAccess serves a cache-line read or write with an open-row policy.
func (c *BaseController) serveAccess(env *Env, ent Entry, isWrite bool) error {
	costs := env.Tile().Costs()
	env.Charge(costs.MapAddr)
	a := ent.Addr
	b := env.Tile().Builder()

	rowHit := c.openRows[a.Bank] == a.Row
	var actLatency clock.PS
	if rowHit {
		c.stats.RowHits++
	} else {
		c.stats.RowMisses++
		if c.openRows[a.Bank] >= 0 {
			b.PRE(a.Bank)
			b.Wait(c.p.TRP - c.p.Bus.Period())
			actLatency += c.p.TRP
		}
		rcd := c.p.TRCD
		if c.cfg.TRCD != nil {
			env.Charge(costs.BloomCheck)
			if v := c.cfg.TRCD(a); v > 0 {
				rcd = v
			}
		}
		b.ACTWithRCD(a.Bank, a.Row, rcd)
		b.Wait(rcd - c.p.Bus.Period())
		actLatency += rcd
		c.openRows[a.Bank] = a.Row
	}
	if isWrite {
		b.WR(a.Bank, a.Col, nil)
		c.stats.Writes++
	} else {
		b.RD(a.Bank, a.Col)
		c.stats.Reads++
	}
	if _, err := env.Exec(); err != nil {
		return err
	}
	// Occupancy: row preparation (when needed) plus the data burst. The
	// CAS pipeline tail overlaps other requests, so it contributes to the
	// response latency only.
	occ := actLatency + c.p.TBL
	if isWrite {
		env.AddService(occ, actLatency+c.p.TCWL+c.p.TBL)
	} else {
		env.Charge(costs.ReadbackPerLine)
		env.AddService(occ, actLatency+c.p.TCL+c.p.TBL)
	}
	if c.cfg.Policy == ClosedPage {
		// Auto-precharge: close the row right after the column access.
		// The precharge overlaps subsequent commands to other banks, so it
		// adds no occupancy here; the next access to this bank simply needs
		// no explicit PRE (its tRP is folded into the closed-row path).
		pb := env.Tile().Builder()
		pb.Wait(c.p.TRTP)
		pb.PRE(a.Bank)
		if _, err := env.Exec(); err != nil {
			return err
		}
		c.openRows[a.Bank] = -1
	}
	env.Respond(ent.Req, true)
	return nil
}

// serveRowClone serves an in-DRAM row copy (§7).
func (c *BaseController) serveRowClone(env *Env, ent Entry) error {
	costs := env.Tile().Costs()
	env.Charge(2 * costs.MapAddr)
	src, dst := ent.Src, ent.Addr
	c.stats.RowClones++
	if src.Bank != dst.Bank {
		// FPM RowClone cannot cross banks; the caller must fall back.
		env.Respond(ent.Req, false)
		return nil
	}
	b := env.Tile().Builder()
	if c.openRows[src.Bank] >= 0 {
		b.PRE(src.Bank)
		b.Wait(c.p.TRP - c.p.Bus.Period())
	}
	b.RowClone(src.Bank, src.Row, dst.Row)
	res, err := env.Exec()
	if err != nil {
		return err
	}
	c.openRows[src.Bank] = -1
	env.AddService(res.Elapsed, res.Elapsed)
	env.Respond(ent.Req, res.CloneAttempts > 0 && res.CloneSuccesses == res.CloneAttempts)
	return nil
}

// serveBitwise serves an in-DRAM bulk bitwise majority: a many-row
// activation of the rows at Src and Addr (which drags in their address-OR
// row). Success means the chip committed the majority result.
func (c *BaseController) serveBitwise(env *Env, ent Entry) error {
	costs := env.Tile().Costs()
	env.Charge(2 * costs.MapAddr)
	r1, r2 := ent.Src, ent.Addr
	c.stats.BitwiseOps++
	if r1.Bank != r2.Bank {
		env.Respond(ent.Req, false)
		return nil
	}
	b := env.Tile().Builder()
	if c.openRows[r1.Bank] >= 0 {
		b.PRE(r1.Bank)
		b.Wait(c.p.TRP - c.p.Bus.Period())
	}
	b.BitwiseMAJ(r1.Bank, r1.Row, r2.Row)
	res, err := env.Exec()
	if err != nil {
		return err
	}
	c.openRows[r1.Bank] = -1
	env.AddService(res.Elapsed, res.Elapsed)
	env.Respond(ent.Req, res.CloneAttempts > 0 && res.CloneSuccesses == res.CloneAttempts)
	return nil
}

// serveProfile serves a §8.1 profiling request: initialize the target line
// with a known pattern, read it back with the requested tRCD, and report
// whether the data survived.
func (c *BaseController) serveProfile(env *Env, ent Entry) error {
	costs := env.Tile().Costs()
	env.Charge(costs.MapAddr)
	a := ent.Addr
	c.stats.Profiles++
	b := env.Tile().Builder()
	if c.openRows[a.Bank] >= 0 {
		b.PRE(a.Bank)
		b.Wait(c.p.TRP - c.p.Bus.Period())
	}
	// Initialize the target cache line with the known pattern, then access
	// it with the requested (reduced) tRCD.
	b.ProfileLine(a, c.profilePattern[:], ent.Req.RCD)

	res, err := env.Exec()
	if err != nil {
		return err
	}
	c.openRows[a.Bank] = -1
	env.Charge(costs.ReadbackPerLine + costs.ProfileCompare)
	env.AddService(res.Elapsed, res.Elapsed)

	// Compare the readback against the pattern.
	rb := env.Readback()
	ok := false
	if len(rb) > 0 {
		last := rb[len(rb)-1]
		ok = last.Reliable && bytes.Equal(last.Data[:], c.profilePattern[:])
	}
	env.Respond(ent.Req, ok)
	return nil
}

// serveProfileRow serves a row-granularity §8.1 profiling request: one
// Bender program initializes every cache line of the row with the known
// pattern and reads each back under the requested tRCD, replacing one
// request round-trip per line with a single round-trip per row. Per-line
// outcomes are identical to the per-line path because each line's test read
// happens exactly RCD after its own activation (see Builder.ProfileCheck).
func (c *BaseController) serveProfileRow(env *Env, ent Entry) error {
	costs := env.Tile().Costs()
	env.Charge(costs.MapAddr)
	a := ent.Addr
	cols := env.Tile().Chip().Config().ColsPerRow
	c.stats.ProfileRows++
	c.stats.ProfiledLines += int64(cols)
	b := env.Tile().Builder()
	if c.openRows[a.Bank] >= 0 {
		b.PRE(a.Bank)
		b.Wait(c.p.TRP - c.p.Bus.Period())
	}
	b.ProfileRow(a.Bank, a.Row, cols, c.profilePattern[:], ent.Req.RCD)

	res, err := env.Exec()
	if err != nil {
		return err
	}
	c.openRows[a.Bank] = -1
	env.Charge((costs.ReadbackPerLine + costs.ProfileCompare) * cols)
	env.AddService(res.Elapsed, res.Elapsed)

	// The program's only reads are the per-column test reads, in column
	// order. Count the leading reliable lines; the row passes when all do.
	rb := env.Readback()
	okLines := 0
	if len(rb) >= cols {
		for _, line := range rb[len(rb)-cols:] {
			if !line.Reliable || !bytes.Equal(line.Data[:], c.profilePattern[:]) {
				break
			}
			okLines++
		}
	}
	env.RespondLines(ent.Req, okLines == cols, okLines)
	return nil
}

var _ Controller = (*BaseController)(nil)
