package smc

import (
	"testing"

	"easydram/internal/dram"
)

// topologies exercised by the mapper tests: every supported shape class.
var testTopologies = []dram.Topology{
	{Channels: 1, Ranks: 1, Interleave: dram.InterleaveLine},
	{Channels: 1, Ranks: 1, Interleave: dram.InterleaveRow},
	{Channels: 2, Ranks: 1, Interleave: dram.InterleaveLine},
	{Channels: 1, Ranks: 2, Interleave: dram.InterleaveLine},
	{Channels: 2, Ranks: 2, Interleave: dram.InterleaveLine},
	{Channels: 2, Ranks: 2, Interleave: dram.InterleaveRow},
	{Channels: 4, Ranks: 2, Interleave: dram.InterleaveLine},
	{Channels: 4, Ranks: 4, Interleave: dram.InterleaveRow},
}

// TestTopologyMapperRoundTrip pins address -> (channel, rank, bank, row,
// col) -> address round-trips for every supported topology, in both
// directions.
func TestTopologyMapperRoundTrip(t *testing.T) {
	const chipBanks, cols = 16, 128
	for _, topo := range testTopologies {
		m, err := NewTopologyMapper(topo, chipBanks, cols)
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		// pa -> Addr -> pa over a pseudo-random address sample.
		state := uint64(0x2545F4914F6CDD1D)
		for i := 0; i < 4096; i++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			pa := (state % (1 << 34)) &^ 63 // line-aligned
			a := m.Map(pa)
			if got := m.Unmap(a); got != pa {
				t.Fatalf("%v: Unmap(Map(%#x)) = %#x (addr %v)", topo, pa, got, a)
			}
			if a.Rank != a.Bank>>uintLog2(chipBanks) {
				t.Fatalf("%v: rank %d inconsistent with bank %d", topo, a.Rank, a.Bank)
			}
			if a.Chan < 0 || a.Chan >= topo.Channels {
				t.Fatalf("%v: channel %d out of range", topo, a.Chan)
			}
		}
		// Addr -> pa -> Addr over the full coordinate grid (sampled rows).
		for ch := 0; ch < topo.Channels; ch++ {
			for gbank := 0; gbank < topo.Ranks*chipBanks; gbank++ {
				for _, row := range []int{0, 1, 255, 32767} {
					for _, col := range []int{0, 1, cols - 1} {
						a := dram.Addr{Chan: ch, Rank: gbank / chipBanks, Bank: gbank, Row: row, Col: col}
						got := m.Map(m.Unmap(a))
						if got != a {
							t.Fatalf("%v: Map(Unmap(%v)) = %v", topo, a, got)
						}
					}
				}
			}
		}
	}
}

func uintLog2(n int) int {
	s := 0
	for 1<<s < n {
		s++
	}
	return s
}

// TestTopologyMapperSingleChannelMatchesRowBankCol pins the refactor's
// safety net at the mapper level: the 1-channel/1-rank TopologyMapper must
// decode every address exactly as the legacy RowBankCol mapper did.
func TestTopologyMapperSingleChannelMatchesRowBankCol(t *testing.T) {
	const chipBanks, cols = 16, 128
	legacy, err := NewRowBankCol(chipBanks, cols)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := NewTopologyMapper(dram.Topology{}, chipBanks, cols)
	if err != nil {
		t.Fatal(err)
	}
	for pa := uint64(0); pa < 1<<22; pa += 64 * 7 {
		want, got := legacy.Map(pa), topo.Map(pa)
		if got != want {
			t.Fatalf("decode diverges at %#x: %v vs %v", pa, got, want)
		}
		if topo.Unmap(got) != legacy.Unmap(want) {
			t.Fatalf("encode diverges at %#x", pa)
		}
	}
	if legacy.RowBytes() != topo.RowBytes() || legacy.Banks() != topo.Banks() {
		t.Fatalf("geometry diverges")
	}
}

// TestTopologyMapperInterleaveGranularity pins the two interleaving
// functions' defining property: line interleave rotates consecutive cache
// lines across channels; row interleave keeps a row's lines on one channel
// and rotates consecutive rows.
func TestTopologyMapperInterleaveGranularity(t *testing.T) {
	const chipBanks, cols = 16, 128
	line, err := NewTopologyMapper(dram.Topology{Channels: 4, Ranks: 2, Interleave: dram.InterleaveLine}, chipBanks, cols)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if got := line.Map(uint64(i) * 64).Chan; got != i%4 {
			t.Fatalf("line interleave: line %d on channel %d, want %d", i, got, i%4)
		}
	}
	row, err := NewTopologyMapper(dram.Topology{Channels: 4, Ranks: 2, Interleave: dram.InterleaveRow}, chipBanks, cols)
	if err != nil {
		t.Fatal(err)
	}
	rowBytes := uint64(row.RowBytes())
	for r := 0; r < 16; r++ {
		want := r % 4
		for _, off := range []uint64{0, 64, rowBytes - 64} {
			if got := row.Map(uint64(r)*rowBytes + off).Chan; got != want {
				t.Fatalf("row interleave: row %d offset %d on channel %d, want %d", r, off, got, want)
			}
		}
	}
}

// TestTopologyMapperRejectsBadShapes pins validation: non-power-of-two
// topology dimensions fail.
func TestTopologyMapperRejectsBadShapes(t *testing.T) {
	for _, topo := range []dram.Topology{
		{Channels: 3, Ranks: 1},
		{Channels: 2, Ranks: 3},
		{Channels: 2, Ranks: 2, Interleave: 99},
	} {
		if _, err := NewTopologyMapper(topo, 16, 128); err == nil {
			t.Fatalf("%v: want error", topo)
		}
	}
}
