package smc

import (
	"testing"

	"easydram/internal/dram"
	"easydram/internal/fault"
)

// TestConfigValidationMessages pins the exact wording of the fault- and
// recovery-configuration errors a user hits first: each message names the
// offending field and what would go wrong, and experiment drivers grep
// them in failure triage, so a rewording is an API change this table makes
// deliberate.
func TestConfigValidationMessages(t *testing.T) {
	cases := []struct {
		name string
		got  func() error
		want string
	}{
		{
			// Link exec failures abort the run unless the SMC can re-flush
			// the failed launch; the config layer refuses the combination.
			name: "link injection without recovery",
			got: func() error {
				return fault.Config{
					Link: fault.LinkConfig{ExecFailRate: 0.01},
				}.Validate()
			},
			want: "fault: link exec failures require recovery (an unrecovered launch failure aborts the run)",
		},
		{
			// The quarantine remapper needs real rows left after carving the
			// spare region out of each bank.
			name: "spare region swallows the bank",
			got: func() error {
				m, err := NewRowBankCol(16, 128)
				if err != nil {
					return err
				}
				_, err = NewBaseController(Config{
					Mapper:      m,
					Scheduler:   FRFCFS{},
					Recovery:    fault.RecoveryConfig{Enabled: true, SpareRows: 64},
					RowsPerBank: 64,
				}, dram.DefaultConfig().Timing, 16)
				return err
			},
			want: "smc: recovery needs RowsPerBank (64) above its 64 spare rows",
		},
		{
			name: "unknown mitigation policy",
			got: func() error {
				return fault.MitigationConfig{Policy: "refresh-twice"}.Validate()
			},
			want: `fault: unknown mitigation policy "refresh-twice" (want none, para, or trr)`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.got()
			if err == nil {
				t.Fatalf("invalid config accepted, want %q", tc.want)
			}
			if err.Error() != tc.want {
				t.Fatalf("error message drifted:\n  got:  %s\n  want: %s", err, tc.want)
			}
		})
	}
}
