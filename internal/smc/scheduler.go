package smc

import (
	"easydram/internal/dram"
	"easydram/internal/mem"
	"easydram/internal/tile"
)

// Entry is one request as buffered in the controller's software request
// table, together with metadata the controller computes once at ingest so
// that scheduling decisions stay O(table) with no per-entry address
// translation and no request copying:
//
//   - Slot is the request's index in the tile's pooled request slab. The
//     48-byte mem.Request is written once at issue; the table carries the
//     4-byte slot plus the hot fields (ID, Kind, decoded coordinates), so
//     the former reqScratch -> FIFO -> Entry copy chain is gone. Cold
//     fields (RCD, Rows for profiling requests) are read from the slab at
//     service time.
//   - Addr is the decoded DRAM coordinate of the request's address (and
//     Src of its source, for the two-address techniques). Decoding happens
//     once per request instead of once per request per scheduling decision;
//     the modeled MapAddr cost is still charged at service time, so
//     emulated timing is unchanged.
//   - Seq is a monotone arrival sequence number. The table is unordered —
//     the controller removes served entries by swap-remove — so schedulers
//     must order by Seq, never by index.
type Entry struct {
	// Slot indexes the tile's pooled request slab.
	Slot tile.ReqSlot
	// ID is the request's ID (responses are keyed by it).
	ID uint64
	// Kind classifies the request.
	Kind mem.Kind
	// Addr is the request's address decoded to DRAM coordinates.
	Addr dram.Addr
	// Src is the source address decoded (RowClone and Bitwise requests).
	Src dram.Addr
	// Seq is the arrival order: lower is older.
	Seq uint64
}

// IsAccess reports whether the entry is a plain cache-line access — Read,
// Write, or Writeback — the only kinds the burst service path may coalesce
// (techniques are served one per step).
func (e *Entry) IsAccess() bool {
	switch e.Kind {
	case mem.Read, mem.Write, mem.Writeback:
		return true
	}
	return false
}

// Scheduler selects the next buffered request to serve (EasyAPI provides
// FCFS, FR-FCFS, and BLISS implementations; users can plug their own).
type Scheduler interface {
	Name() string
	// Pick returns the index of the entry to serve next. openRows[b] is the
	// currently open row of bank b (-1 when precharged). Pick is only
	// called with a non-empty table. Entries are not age-ordered; use
	// Entry.Seq to break ties by arrival.
	Pick(table []Entry, openRows []int) int
}

// BurstScheduler is implemented by schedulers that can hand the controller
// a row-hit burst: the winner plus every further entry the scheduler would
// provably serve consecutively after it, all targeting the winner's
// (bank, row). The controller then serves the whole batch with one Bender
// program (see BaseController's burst service path).
type BurstScheduler interface {
	Scheduler
	// PickBurst appends to buf the table indices of up to cap entries in
	// exact service order, starting with the entry Pick would return, and
	// returns the extended slice. Every index after the first must satisfy:
	// it targets the same (bank, row) as the winner (with the winner's
	// activation applied to openRows), it is a plain access (Read, Write,
	// Writeback), and repeated Pick-and-remove calls — with no new arrivals
	// — would select exactly this sequence. Implementations must update any
	// internal state (e.g. BLISS streaks) exactly as the equivalent Pick
	// sequence would. The controller may serve fewer than the returned
	// entries (a burst gate can cut the tail); state-carrying schedulers
	// get told via NoteBurstServed.
	PickBurst(table []Entry, openRows []int, cap int, buf []int) []int
}

// Stateless reports whether s is one of the built-in stateless schedulers:
// safe to share across channels, and — with a one-entry table — safe to
// skip the Pick call for. Both the controller's single-entry fast path and
// the multi-channel system assembly consult this one predicate, so a new
// built-in policy only has to be classified here.
func Stateless(s Scheduler) bool {
	switch s.(type) {
	case FCFS, FRFCFS:
		return true
	}
	return false
}

// ChannelScheduler is implemented by stateful schedulers that can produce
// an independent instance per channel. Multi-channel systems run one
// request table and one scheduler per channel; a stateful policy (BLISS
// streaks, custom history) must not share its state across channels, so
// the system clones it once per extra channel. Stateless schedulers (FCFS,
// FR-FCFS) need no clone and may be shared.
type ChannelScheduler interface {
	Scheduler
	// CloneForChannel returns a fresh scheduler with the same policy
	// parameters and pristine state.
	CloneForChannel() Scheduler
}

// burstSortKey orders burst candidates into FR-FCFS service order: reads
// before writes (the class packed into the Seq's top bit — Seq values are
// dense counters, nowhere near 2^63), each class oldest-first.
func burstSortKey(e *Entry) uint64 {
	k := e.Seq
	if e.Kind != mem.Read {
		k |= 1 << 63
	}
	return k
}

// burstTruncater is implemented by stateful burst schedulers that must know
// when the controller served fewer entries than PickBurst returned (the
// engine's exactness gate can cut a burst's tail).
type burstTruncater interface {
	// NoteBurstServed reports that only the first n entries of the last
	// PickBurst result were served.
	NoteBurstServed(n int)
}

// FCFS serves requests strictly in arrival order.
type FCFS struct{}

// Name implements Scheduler.
func (FCFS) Name() string { return "fcfs" }

// Pick implements Scheduler.
func (FCFS) Pick(table []Entry, openRows []int) int {
	oldest := 0
	for i := 1; i < len(table); i++ {
		if table[i].Seq < table[oldest].Seq {
			oldest = i
		}
	}
	return oldest
}

// PickBurst implements BurstScheduler: FCFS serves in strict Seq order, so
// a burst is the run of consecutive-by-age entries that stays on the
// winner's (bank, row) and consists of plain accesses.
func (FCFS) PickBurst(table []Entry, openRows []int, cap int, buf []int) []int {
	w := FCFS{}.Pick(table, openRows)
	buf = append(buf, w)
	if cap <= 1 || !table[w].IsAccess() {
		return buf
	}
	tb, tr := table[w].Addr.Bank, table[w].Addr.Row
	lastSeq := table[w].Seq
	for len(buf) < cap {
		next := -1
		for i := range table {
			e := &table[i]
			if e.Seq <= lastSeq {
				continue
			}
			if next < 0 || e.Seq < table[next].Seq {
				next = i
			}
		}
		if next < 0 {
			break
		}
		e := &table[next]
		if !e.IsAccess() || e.Addr.Bank != tb || e.Addr.Row != tr {
			break
		}
		buf = append(buf, next)
		lastSeq = e.Seq
	}
	return buf
}

// FRFCFS implements First-Ready, First-Come-First-Served with read priority:
// the oldest row-hit read, then the oldest row-hit write, then the oldest
// read, then the oldest request of any kind (the explicit arrival-order
// fallback that also covers tables holding only technique requests).
type FRFCFS struct{}

// Name implements Scheduler.
func (FRFCFS) Name() string { return "fr-fcfs" }

// Pick implements Scheduler.
func (FRFCFS) Pick(table []Entry, openRows []int) int {
	hitRead, hitWrite, read, oldest := -1, -1, -1, -1
	for i := range table {
		e := &table[i]
		if oldest < 0 || e.Seq < table[oldest].Seq {
			oldest = i
		}
		switch e.Kind {
		case mem.Read, mem.Write, mem.Writeback:
		default:
			// Techniques (RowClone, Profile) are never row hits; they are
			// served in arrival order.
			continue
		}
		if openRows[e.Addr.Bank] == e.Addr.Row {
			if e.Kind == mem.Read {
				if hitRead < 0 || e.Seq < table[hitRead].Seq {
					hitRead = i
				}
			} else if hitWrite < 0 || e.Seq < table[hitWrite].Seq {
				hitWrite = i
			}
		}
		if e.Kind == mem.Read && (read < 0 || e.Seq < table[read].Seq) {
			read = i
		}
	}
	if hitRead >= 0 {
		return hitRead
	}
	if hitWrite >= 0 {
		return hitWrite
	}
	if read >= 0 {
		return read
	}
	return oldest
}

// PickBurst implements BurstScheduler. After the winner (whose activation
// makes its row the open row of its bank), FR-FCFS serves every row-hit
// read oldest-first, then every row-hit write oldest-first; the burst is
// the prefix of that sequence that stays on the winner's (bank, row). A
// same-row read is in the prefix while no OTHER bank's row-hit read is
// older than it; same-row writes follow only when no other row-hit read
// exists at all, and only while no other row-hit write is older.
//
// The gather is one classification pass over the table plus an insertion
// sort of the (small, cap-bounded) candidate set — this runs on the service
// hot path, so it must not cost more than the serial picks it replaces.
func (FRFCFS) PickBurst(table []Entry, openRows []int, cap int, buf []int) []int {
	w := FRFCFS{}.Pick(table, openRows)
	buf = append(buf, w)
	if cap <= 1 || !table[w].IsAccess() {
		return buf
	}
	tb, tr := table[w].Addr.Bank, table[w].Addr.Row
	winnerIsRead := table[w].Kind == mem.Read

	// One pass: collect same-row access candidates into buf (unsorted) and
	// find the oldest row-hit read/write on any other (bank, row) — with
	// the winner's row treated as open — which bound the same-row runs.
	const noSeq = ^uint64(0)
	minOtherHitRead, minOtherHitWrite := noSeq, noSeq
	for i := range table {
		if i == w {
			continue
		}
		e := &table[i]
		if !e.IsAccess() {
			continue
		}
		if e.Addr.Bank == tb && e.Addr.Row == tr {
			// A same-row read with a non-read winner cannot occur (a read
			// would have outranked the winner); skip defensively so a
			// custom flow can never misorder.
			if e.Kind == mem.Read && !winnerIsRead {
				continue
			}
			buf = append(buf, i)
		} else if openRows[e.Addr.Bank] == e.Addr.Row {
			if e.Kind == mem.Read {
				if e.Seq < minOtherHitRead {
					minOtherHitRead = e.Seq
				}
			} else if e.Seq < minOtherHitWrite {
				minOtherHitWrite = e.Seq
			}
		}
	}

	// Serial service order among the candidates: reads before writes, each
	// class oldest-first. Insertion sort by (isWrite, Seq); candidate sets
	// are cap-bounded small.
	tail := buf[1:]
	for i := 1; i < len(tail); i++ {
		v := tail[i]
		vk := burstSortKey(&table[v])
		j := i - 1
		for j >= 0 && burstSortKey(&table[tail[j]]) > vk {
			tail[j+1] = tail[j]
			j--
		}
		tail[j+1] = v
	}

	// Trim to the provable prefix.
	n := 1
	for _, idx := range tail {
		if n >= cap {
			break
		}
		e := &table[idx]
		if e.Kind == mem.Read {
			if e.Seq > minOtherHitRead {
				break // an older other-bank hit read would win first
			}
		} else {
			if minOtherHitRead != noSeq {
				break // hit writes wait for every hit read anywhere
			}
			if e.Seq > minOtherHitWrite {
				break // an older other-bank hit write would win first
			}
		}
		n++
	}
	return buf[:n]
}

var (
	_ Scheduler      = FCFS{}
	_ Scheduler      = FRFCFS{}
	_ BurstScheduler = FCFS{}
	_ BurstScheduler = FRFCFS{}
)
