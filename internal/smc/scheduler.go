package smc

import (
	"easydram/internal/mem"
)

// Scheduler selects the next buffered request to serve (EasyAPI provides
// FCFS and FR-FCFS implementations; users can plug their own).
type Scheduler interface {
	Name() string
	// Pick returns the index of the request to serve next. openRow reports
	// the currently open row of a bank (-1 when precharged). Pick is only
	// called with a non-empty table.
	Pick(table []mem.Request, openRow func(bank int) int, m Mapper) int
}

// FCFS serves requests strictly in arrival order.
type FCFS struct{}

// Name implements Scheduler.
func (FCFS) Name() string { return "fcfs" }

// Pick implements Scheduler.
func (FCFS) Pick(table []mem.Request, openRow func(int) int, m Mapper) int { return 0 }

// FRFCFS implements First-Ready, First-Come-First-Served with read priority:
// row-hit reads, then row-hit writes, then the oldest read, then the oldest
// request.
type FRFCFS struct{}

// Name implements Scheduler.
func (FRFCFS) Name() string { return "fr-fcfs" }

// Pick implements Scheduler.
func (FRFCFS) Pick(table []mem.Request, openRow func(int) int, m Mapper) int {
	hitWrite, read, first := -1, -1, 0
	for i, r := range table {
		switch r.Kind {
		case mem.Read, mem.Write, mem.Writeback:
		default:
			// Techniques (RowClone, Profile) are never row hits; they are
			// served in arrival order.
			continue
		}
		a := m.Map(r.Addr)
		if openRow(a.Bank) == a.Row {
			if r.Kind == mem.Read {
				return i // oldest row-hit read wins immediately
			}
			if hitWrite < 0 {
				hitWrite = i
			}
		}
		if read < 0 && r.Kind == mem.Read {
			read = i
		}
	}
	if hitWrite >= 0 {
		return hitWrite
	}
	if read >= 0 {
		return read
	}
	return first
}

var (
	_ Scheduler = FCFS{}
	_ Scheduler = FRFCFS{}
)
