package smc

import (
	"easydram/internal/dram"
	"easydram/internal/mem"
)

// Entry is one request as buffered in the controller's software request
// table, together with metadata the controller computes once at ingest so
// that scheduling decisions stay O(table) with no per-entry address
// translation:
//
//   - Addr is the decoded DRAM coordinate of Req.Addr (and Src of Req.Src,
//     for the two-address techniques). Decoding happens once per request
//     instead of once per request per scheduling decision; the modeled
//     MapAddr cost is still charged at service time, so emulated timing is
//     unchanged.
//   - Seq is a monotone arrival sequence number. The table is unordered —
//     the controller removes served entries by swap-remove — so schedulers
//     must order by Seq, never by index.
type Entry struct {
	Req mem.Request
	// Addr is Req.Addr decoded to DRAM coordinates.
	Addr dram.Addr
	// Src is Req.Src decoded (RowClone and Bitwise requests only).
	Src dram.Addr
	// Seq is the arrival order: lower is older.
	Seq uint64
}

// Scheduler selects the next buffered request to serve (EasyAPI provides
// FCFS and FR-FCFS implementations; users can plug their own).
type Scheduler interface {
	Name() string
	// Pick returns the index of the entry to serve next. openRows[b] is the
	// currently open row of bank b (-1 when precharged). Pick is only
	// called with a non-empty table. Entries are not age-ordered; use
	// Entry.Seq to break ties by arrival.
	Pick(table []Entry, openRows []int) int
}

// FCFS serves requests strictly in arrival order.
type FCFS struct{}

// Name implements Scheduler.
func (FCFS) Name() string { return "fcfs" }

// Pick implements Scheduler.
func (FCFS) Pick(table []Entry, openRows []int) int {
	oldest := 0
	for i := 1; i < len(table); i++ {
		if table[i].Seq < table[oldest].Seq {
			oldest = i
		}
	}
	return oldest
}

// FRFCFS implements First-Ready, First-Come-First-Served with read priority:
// the oldest row-hit read, then the oldest row-hit write, then the oldest
// read, then the oldest request of any kind (the explicit arrival-order
// fallback that also covers tables holding only technique requests).
type FRFCFS struct{}

// Name implements Scheduler.
func (FRFCFS) Name() string { return "fr-fcfs" }

// Pick implements Scheduler.
func (FRFCFS) Pick(table []Entry, openRows []int) int {
	hitRead, hitWrite, read, oldest := -1, -1, -1, -1
	for i := range table {
		e := &table[i]
		if oldest < 0 || e.Seq < table[oldest].Seq {
			oldest = i
		}
		switch e.Req.Kind {
		case mem.Read, mem.Write, mem.Writeback:
		default:
			// Techniques (RowClone, Profile) are never row hits; they are
			// served in arrival order.
			continue
		}
		if openRows[e.Addr.Bank] == e.Addr.Row {
			if e.Req.Kind == mem.Read {
				if hitRead < 0 || e.Seq < table[hitRead].Seq {
					hitRead = i
				}
			} else if hitWrite < 0 || e.Seq < table[hitWrite].Seq {
				hitWrite = i
			}
		}
		if e.Req.Kind == mem.Read && (read < 0 || e.Seq < table[read].Seq) {
			read = i
		}
	}
	if hitRead >= 0 {
		return hitRead
	}
	if hitWrite >= 0 {
		return hitWrite
	}
	if read >= 0 {
		return read
	}
	return oldest
}

var (
	_ Scheduler = FCFS{}
	_ Scheduler = FRFCFS{}
)
