package smc

import (
	"testing"
	"testing/quick"

	"easydram/internal/dram"
	"easydram/internal/mem"
)

func TestBLISSCapsRowHitStreak(t *testing.T) {
	m, err := NewRowBankCol(16, 128)
	if err != nil {
		t.Fatal(err)
	}
	s := NewBLISS()
	openRows := openRowsWith(0, 7)
	hit := func(id uint64, col int) mem.Request {
		return mem.Request{ID: id, Kind: mem.Read, Addr: m.Unmap(dram.Addr{Bank: 0, Row: 7, Col: col})}
	}
	missReq := mem.Request{ID: 99, Kind: mem.Read, Addr: m.Unmap(dram.Addr{Bank: 3, Row: 1})}

	table := entries(m, missReq, hit(1, 0), hit(2, 1), hit(3, 2), hit(4, 3), hit(5, 4))
	// The first MaxStreak picks favour row hits...
	for i := 0; i < s.MaxStreak; i++ {
		got := s.Pick(table, openRows)
		if table[got].ID == 99 {
			t.Fatalf("pick %d chose the miss before the streak cap", i)
		}
		table = append(table[:got], table[got+1:]...)
	}
	// ...then the blacklist forces the oldest (the miss).
	got := s.Pick(table, openRows)
	if table[got].ID != 99 {
		t.Fatalf("streak cap did not trigger: picked %d", table[got].ID)
	}
}

func TestBLISSName(t *testing.T) {
	if NewBLISS().Name() != "bliss" {
		t.Fatalf("name wrong")
	}
}

func TestXORBankRoundTrip(t *testing.T) {
	m, err := NewXORBank(16, 128)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint64) bool {
		pa := (raw % (1 << 38)) &^ 63
		return m.Unmap(m.Map(pa)) == pa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXORBankSpreadsConflictingStride(t *testing.T) {
	plain, _ := NewRowBankCol(16, 128)
	xor, _ := NewXORBank(16, 128)
	// A 128 KiB stride hits the same bank under plain mapping.
	stride := uint64(16 * 8192)
	plainBanks := map[int]bool{}
	xorBanks := map[int]bool{}
	for i := uint64(0); i < 16; i++ {
		plainBanks[plain.Map(i*stride).Bank] = true
		xorBanks[xor.Map(i*stride).Bank] = true
	}
	if len(plainBanks) != 1 {
		t.Fatalf("plain mapping should conflict: %v", plainBanks)
	}
	if len(xorBanks) < 8 {
		t.Fatalf("xor mapping should spread the stride: %v", xorBanks)
	}
}
