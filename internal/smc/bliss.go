package smc

import "easydram/internal/mem"

// BLISS implements the Blacklisting memory scheduler (Subramanian et al.,
// cited by the paper's §2.3): applications that hit the row buffer too many
// times in a row get blacklisted, capping the row-hit streak so other
// requesters are not starved. In this single-requester emulation the
// blacklist degenerates to a per-bank streak cap, which is still the
// interesting scheduling behaviour: bounded row-hit batching.
//
// BLISS exists to demonstrate how little code a new scheduling policy
// needs on the software-defined memory controller.
type BLISS struct {
	// MaxStreak is the longest run of consecutive row hits served from one
	// bank before the scheduler reverts to oldest-first (default 4, the
	// BLISS paper's blacklisting threshold).
	MaxStreak int

	streakBank int
	streak     int
}

// NewBLISS returns a BLISS scheduler with the published default threshold.
func NewBLISS() *BLISS { return &BLISS{MaxStreak: 4, streakBank: -1} }

// Name implements Scheduler.
func (s *BLISS) Name() string { return "bliss" }

// Pick implements Scheduler.
func (s *BLISS) Pick(table []Entry, openRows []int) int {
	max := s.MaxStreak
	if max <= 0 {
		max = 4
	}
	pick, oldest := -1, 0
	for i := range table {
		e := &table[i]
		if e.Seq < table[oldest].Seq {
			oldest = i
		}
		switch e.Req.Kind {
		case mem.Read, mem.Write, mem.Writeback:
		default:
			continue
		}
		if openRows[e.Addr.Bank] != e.Addr.Row {
			continue
		}
		if e.Addr.Bank == s.streakBank && s.streak >= max {
			continue // blacklisted: streak cap reached
		}
		if pick < 0 || e.Seq < table[pick].Seq {
			pick = i // oldest eligible row hit
		}
	}
	if pick < 0 {
		// Oldest first; reset the streak for the newly opened bank.
		s.streakBank, s.streak = table[oldest].Addr.Bank, 0
		return oldest
	}
	if table[pick].Addr.Bank == s.streakBank {
		s.streak++
	} else {
		s.streakBank, s.streak = table[pick].Addr.Bank, 1
	}
	return pick
}

var _ Scheduler = (*BLISS)(nil)
