package smc

// BLISS implements the Blacklisting memory scheduler (Subramanian et al.,
// cited by the paper's §2.3): applications that hit the row buffer too many
// times in a row get blacklisted, capping the row-hit streak so other
// requesters are not starved. In this single-requester emulation the
// blacklist degenerates to a per-bank streak cap, which is still the
// interesting scheduling behaviour: bounded row-hit batching.
//
// BLISS exists to demonstrate how little code a new scheduling policy
// needs on the software-defined memory controller.
type BLISS struct {
	// MaxStreak is the longest run of consecutive row hits served from one
	// bank before the scheduler reverts to oldest-first (default 4, the
	// BLISS paper's blacklisting threshold).
	MaxStreak int

	streakBank int
	streak     int
	// burstBase is the streak value right after the most recent PickBurst's
	// winner, so NoteBurstServed can rewind the streak when the controller
	// serves only a prefix of the returned burst.
	burstBase int
}

// NewBLISS returns a BLISS scheduler with the published default threshold.
func NewBLISS() *BLISS { return &BLISS{MaxStreak: 4, streakBank: -1} }

// Name implements Scheduler.
func (s *BLISS) Name() string { return "bliss" }

// Pick implements Scheduler.
func (s *BLISS) Pick(table []Entry, openRows []int) int {
	max := s.MaxStreak
	if max <= 0 {
		max = 4
	}
	pick, oldest := -1, 0
	for i := range table {
		e := &table[i]
		if e.Seq < table[oldest].Seq {
			oldest = i
		}
		if !e.IsAccess() {
			continue
		}
		if openRows[e.Addr.Bank] != e.Addr.Row {
			continue
		}
		if e.Addr.Bank == s.streakBank && s.streak >= max {
			continue // blacklisted: streak cap reached
		}
		if pick < 0 || e.Seq < table[pick].Seq {
			pick = i // oldest eligible row hit
		}
	}
	if pick < 0 {
		// Oldest first; reset the streak for the newly opened bank.
		s.streakBank, s.streak = table[oldest].Addr.Bank, 0
		return oldest
	}
	if table[pick].Addr.Bank == s.streakBank {
		s.streak++
	} else {
		s.streakBank, s.streak = table[pick].Addr.Bank, 1
	}
	return pick
}

// PickBurst implements BurstScheduler. After the winner, BLISS serves the
// oldest eligible row hit; the burst is the run of same-(bank, row) entries
// that stays oldest among all row hits and within the blacklisting streak
// cap. The streak state advances exactly as the equivalent Pick sequence
// would; NoteBurstServed rewinds it when the controller serves only a
// prefix.
func (s *BLISS) PickBurst(table []Entry, openRows []int, cap int, buf []int) []int {
	w := s.Pick(table, openRows)
	s.burstBase = s.streak
	buf = append(buf, w)
	if cap <= 1 || !table[w].IsAccess() {
		return buf
	}
	max := s.MaxStreak
	if max <= 0 {
		max = 4
	}
	tb, tr := table[w].Addr.Bank, table[w].Addr.Row

	// Oldest row hit on any other (bank, row); other banks are never
	// blacklisted mid-burst (the streak bank is the winner's), so any such
	// hit is eligible and bounds the same-row run.
	const noSeq = ^uint64(0)
	minOtherHit := noSeq
	for i := range table {
		e := &table[i]
		if i == w || !e.IsAccess() {
			continue
		}
		if e.Addr.Bank == tb && e.Addr.Row == tr {
			continue
		}
		if openRows[e.Addr.Bank] == e.Addr.Row && e.Seq < minOtherHit {
			minOtherHit = e.Seq
		}
	}

	lastSeq := table[w].Seq
	for len(buf) < cap && s.streak < max {
		next := -1
		for i := range table {
			e := &table[i]
			if !e.IsAccess() || e.Addr.Bank != tb || e.Addr.Row != tr || e.Seq <= lastSeq {
				continue
			}
			if next < 0 || e.Seq < table[next].Seq {
				next = i
			}
		}
		if next < 0 || table[next].Seq > minOtherHit {
			break
		}
		buf = append(buf, next)
		lastSeq = table[next].Seq
		s.streak++
	}
	return buf
}

// CloneForChannel implements ChannelScheduler: each channel gets its own
// streak state under the same threshold.
func (s *BLISS) CloneForChannel() Scheduler { return &BLISS{MaxStreak: s.MaxStreak, streakBank: -1} }

// NoteBurstServed rewinds the streak when only the first n entries of the
// last PickBurst result were served.
func (s *BLISS) NoteBurstServed(n int) {
	if n < 1 {
		n = 1
	}
	s.streak = s.burstBase + (n - 1)
}

var (
	_ Scheduler        = (*BLISS)(nil)
	_ BurstScheduler   = (*BLISS)(nil)
	_ ChannelScheduler = (*BLISS)(nil)
)
