package smc

import "easydram/internal/mem"

// BLISS implements the Blacklisting memory scheduler (Subramanian et al.,
// cited by the paper's §2.3): applications that hit the row buffer too many
// times in a row get blacklisted, capping the row-hit streak so other
// requesters are not starved. In this single-requester emulation the
// blacklist degenerates to a per-bank streak cap, which is still the
// interesting scheduling behaviour: bounded row-hit batching.
//
// BLISS exists to demonstrate how little code a new scheduling policy
// needs on the software-defined memory controller.
type BLISS struct {
	// MaxStreak is the longest run of consecutive row hits served from one
	// bank before the scheduler reverts to oldest-first (default 4, the
	// BLISS paper's blacklisting threshold).
	MaxStreak int

	streakBank int
	streak     int
}

// NewBLISS returns a BLISS scheduler with the published default threshold.
func NewBLISS() *BLISS { return &BLISS{MaxStreak: 4, streakBank: -1} }

// Name implements Scheduler.
func (s *BLISS) Name() string { return "bliss" }

// Pick implements Scheduler.
func (s *BLISS) Pick(table []mem.Request, openRow func(bank int) int, m Mapper) int {
	max := s.MaxStreak
	if max <= 0 {
		max = 4
	}
	pick := -1
	for i, r := range table {
		switch r.Kind {
		case mem.Read, mem.Write, mem.Writeback:
		default:
			continue
		}
		a := m.Map(r.Addr)
		if openRow(a.Bank) != a.Row {
			continue
		}
		if a.Bank == s.streakBank && s.streak >= max {
			continue // blacklisted: streak cap reached
		}
		pick = i
		break
	}
	if pick < 0 {
		// Oldest first; reset the streak for the newly opened bank.
		pick = 0
		a := m.Map(table[pick].Addr)
		s.streakBank, s.streak = a.Bank, 0
		return pick
	}
	a := m.Map(table[pick].Addr)
	if a.Bank == s.streakBank {
		s.streak++
	} else {
		s.streakBank, s.streak = a.Bank, 1
	}
	return pick
}

var _ Scheduler = (*BLISS)(nil)
