package smc

import (
	"easydram/internal/clock"
	"easydram/internal/fault"
	"easydram/internal/snapshot"
)

// Checkpoint hooks. Checkpoints are taken only at engine quiescent points,
// where the request table is empty (every buffered request has been served
// and responded to), so the controller serializes just its persistent
// state: open-row tracking, the arrival sequence allocator, the refresh
// schedule, rank-turnaround history, the quarantine filter, mitigation and
// scheduler state, and statistics. Derived configuration (recovery limits,
// spare base, burst wiring, the profile pattern) is rebuilt by
// NewBaseController.

// StatefulScheduler is implemented by schedulers that carry cross-request
// state a checkpoint must capture (BLISS streaks). The stateless built-ins
// need no hook.
type StatefulScheduler interface {
	Scheduler
	SaveState(e *snapshot.Enc)
	LoadState(d *snapshot.Dec)
}

// SaveState implements StatefulScheduler: the per-channel streak state.
func (s *BLISS) SaveState(e *snapshot.Enc) {
	e.Int(s.streakBank)
	e.Int(s.streak)
	e.Int(s.burstBase)
}

// LoadState implements StatefulScheduler.
func (s *BLISS) LoadState(d *snapshot.Dec) {
	s.streakBank = d.Int()
	s.streak = d.Int()
	s.burstBase = d.Int()
}

var _ StatefulScheduler = (*BLISS)(nil)

// SaveState serializes the controller's persistent state. Call only at a
// quiescent point — the request table must be empty (its length is encoded
// so restore can verify).
func (c *BaseController) SaveState(e *snapshot.Enc) {
	e.Int(len(c.table))
	e.Int(len(c.openRows))
	for _, r := range c.openRows {
		e.Int(r)
	}
	e.U64(c.nextSeq)
	e.I64(int64(c.refreshDue))
	e.Int(c.lastCASRank)
	snapshot.EncodeBloom(e, c.quarantine)
	fault.SaveMitigatorState(e, c.mit)
	if ss, ok := c.cfg.Scheduler.(StatefulScheduler); ok {
		e.Bool(true)
		ss.SaveState(e)
	} else {
		e.Bool(false)
	}
	c.saveStats(e)
}

// LoadState restores state written by SaveState into a freshly constructed
// controller of the same configuration.
func (c *BaseController) LoadState(d *snapshot.Dec) {
	if n := d.Int(); n != 0 {
		if d.Err() == nil {
			d.Failf("smc: snapshot holds %d in-flight table entries; checkpoints must be quiescent", n)
		}
		return
	}
	if n := d.Int(); n != len(c.openRows) {
		if d.Err() == nil {
			d.Failf("smc: snapshot has %d banks, controller has %d", n, len(c.openRows))
		}
		return
	}
	for i := range c.openRows {
		c.openRows[i] = d.Int()
	}
	c.nextSeq = d.U64()
	c.refreshDue = clock.PS(d.I64())
	c.lastCASRank = d.Int()
	c.quarantine = snapshot.DecodeBloom(d)
	fault.LoadMitigatorState(d, c.mit)
	hadSched := d.Bool()
	if d.Err() != nil {
		return
	}
	ss, stateful := c.cfg.Scheduler.(StatefulScheduler)
	if hadSched != stateful {
		d.Failf("smc: snapshot scheduler statefulness %v, controller %v", hadSched, stateful)
		return
	}
	if stateful {
		ss.LoadState(d)
	}
	c.loadStats(d)
}

func (c *BaseController) saveStats(e *snapshot.Enc) {
	s := &c.stats
	for _, v := range []int64{
		s.Served, s.Reads, s.Writes, s.RowClones, s.BitwiseOps,
		s.Profiles, s.ProfileRows, s.ProfiledLines, s.Refreshes,
		s.RowHits, s.RowMisses, s.BurstsServed, s.BurstedRequests,
		s.RankSwitches, s.Retries, s.RetryGiveUps, s.QuarantinedRows,
		s.RemappedAccesses, s.MitigationRefreshes,
	} {
		e.I64(v)
	}
}

func (c *BaseController) loadStats(d *snapshot.Dec) {
	s := &c.stats
	for _, p := range []*int64{
		&s.Served, &s.Reads, &s.Writes, &s.RowClones, &s.BitwiseOps,
		&s.Profiles, &s.ProfileRows, &s.ProfiledLines, &s.Refreshes,
		&s.RowHits, &s.RowMisses, &s.BurstsServed, &s.BurstedRequests,
		&s.RankSwitches, &s.Retries, &s.RetryGiveUps, &s.QuarantinedRows,
		&s.RemappedAccesses, &s.MitigationRefreshes,
	} {
		*p = d.I64()
	}
}
