package smc

import (
	"fmt"
	"math/bits"

	"easydram/internal/cache"
	"easydram/internal/dram"
)

// TopologyMapper is the topology-aware physical-address decoder: it extends
// the RowBankCol scheme with channel and rank coordinates. Within a channel
// the layout stays {row | rank | bank | col} (ranks appear as consecutive
// groups of banks, so Addr.Bank is the channel-global bank index and
// Addr.Rank = Bank / banksPerRank); the channel bits sit at cache-line
// granularity (InterleaveLine: consecutive lines rotate across channels) or
// at row granularity (InterleaveRow: each row's lines stay on one channel).
//
// With one channel and one rank the decode is bit-identical to RowBankCol —
// the equivalence the golden single-channel tests pin.
type TopologyMapper struct {
	topo      dram.Topology
	chanBits  uint
	colBits   uint
	bankBits  uint // channel-global: rank bits + per-rank bank bits
	rankShift uint
	chans     int
	cols      int
	gbanks    int
}

// NewTopologyMapper builds the mapper for `chipBanks` banks per rank and
// colsPerRow columns under the given (normalised) topology.
func NewTopologyMapper(topo dram.Topology, chipBanks, colsPerRow int) (*TopologyMapper, error) {
	topo = topo.Normalize()
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if chipBanks <= 0 || chipBanks&(chipBanks-1) != 0 {
		return nil, fmt.Errorf("smc: bank count %d must be a power of two", chipBanks)
	}
	if colsPerRow <= 0 || colsPerRow&(colsPerRow-1) != 0 {
		return nil, fmt.Errorf("smc: columns per row %d must be a power of two", colsPerRow)
	}
	gbanks := topo.Ranks * chipBanks
	return &TopologyMapper{
		topo:      topo,
		chanBits:  uint(bits.TrailingZeros(uint(topo.Channels))),
		colBits:   uint(bits.TrailingZeros(uint(colsPerRow))),
		bankBits:  uint(bits.TrailingZeros(uint(gbanks))),
		rankShift: uint(bits.TrailingZeros(uint(chipBanks))),
		chans:     topo.Channels,
		cols:      colsPerRow,
		gbanks:    gbanks,
	}, nil
}

// Topology returns the normalised topology the mapper decodes for.
func (m *TopologyMapper) Topology() dram.Topology { return m.topo }

// Channels reports the channel count.
func (m *TopologyMapper) Channels() int { return m.chans }

// Map implements Mapper: it decodes pa to full (channel, rank, bank, row,
// col) coordinates. Bank is channel-global (rank folded in).
func (m *TopologyMapper) Map(pa uint64) dram.Addr {
	l := pa >> lineShift
	var ch int
	if m.topo.Interleave == dram.InterleaveLine {
		ch = int(l & uint64(m.chans-1))
		l >>= m.chanBits
	}
	col := int(l & uint64(m.cols-1))
	l >>= m.colBits
	if m.topo.Interleave == dram.InterleaveRow {
		ch = int(l & uint64(m.chans-1))
		l >>= m.chanBits
	}
	gbank := int(l & uint64(m.gbanks-1))
	l >>= m.bankBits
	return dram.Addr{Chan: ch, Rank: gbank >> m.rankShift, Bank: gbank, Row: int(l), Col: col}
}

// Unmap implements Mapper (the exact inverse of Map; Addr.Rank is ignored —
// it is derivable from Bank).
func (m *TopologyMapper) Unmap(a dram.Addr) uint64 {
	l := uint64(a.Row)
	l = l<<m.bankBits | uint64(a.Bank)
	if m.topo.Interleave == dram.InterleaveRow {
		l = l<<m.chanBits | uint64(a.Chan)
	}
	l = l<<m.colBits | uint64(a.Col)
	if m.topo.Interleave == dram.InterleaveLine {
		l = l<<m.chanBits | uint64(a.Chan)
	}
	return l << lineShift
}

// RowBytes implements Mapper.
func (m *TopologyMapper) RowBytes() int { return m.cols * cache.LineBytes }

// Banks implements Mapper: the channel-global bank count (ranks x banks per
// rank) — the size of one channel controller's open-row table.
func (m *TopologyMapper) Banks() int { return m.gbanks }

var _ Mapper = (*TopologyMapper)(nil)
