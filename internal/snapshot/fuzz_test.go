package snapshot

import (
	"bytes"
	"testing"
)

// FuzzParse is the decoder fuzzer of the corruption satellite: arbitrary
// bytes through the full load path — container parse, section walk, and
// (for profile-kind images) the profile decoder — must never panic and
// never allocate unboundedly; the lenPrefix/maxSections bounds exist for
// exactly this input class. Run with
//
//	go test -run '^$' -fuzz FuzzParse -fuzztime 30s ./internal/snapshot
//
// Without -fuzz the f.Add seeds below run as ordinary subtests.
func FuzzParse(f *testing.F) {
	valid := (&Profile{
		Key: "fuzz", Start: 0x1000, End: 0x5000, RCDps: 9000,
		Channels: []ChannelProfile{{Chan: 0, WeakRows: []uint64{0x1000}, Rows: 4, LinesTried: 16}},
	}).Encode()

	f.Add([]byte(nil))
	f.Add([]byte("EZDRSNAP"))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), 0xff))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	w := NewWriter(KindCheckpoint, "ck")
	w.Section("s", bytes.Repeat([]byte{7}, 32))
	f.Add(w.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Parse(data)
		if err != nil {
			if !namedErr(err) {
				t.Fatalf("Parse returned an unnamed error: %v", err)
			}
			return
		}
		for _, name := range r.Sections() {
			if _, err := r.Section(name); err != nil {
				t.Fatalf("listed section %q unreadable: %v", name, err)
			}
		}
		if r.Kind == KindProfile {
			// The profile decoder must hold its own against adversarial but
			// CRC-consistent payloads (the fuzzer can synthesize those).
			if _, err := DecodeProfile(data, r.Key); err != nil && !namedErr(err) {
				t.Fatalf("DecodeProfile returned an unnamed error: %v", err)
			}
		}
	})
}
