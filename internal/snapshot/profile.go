package snapshot

import (
	"fmt"

	"easydram/internal/bloom"
)

// The durable characterization profile (ROADMAP item 3). A Profile carries
// one characterization pass's results — per-channel weak-row sets, the
// Bloom filters built over them, and optional MinReliableTRCD grid results —
// keyed by everything that determines the outcome: variation seed,
// topology, profiled tRCD, and profiling granularity (the compatibility
// key; see techniques.ProfileCompatKey). Profiles are stored per-channel so
// multi-channel modules characterize channel by channel and merge here.

// ChannelProfile is one channel's characterization result.
type ChannelProfile struct {
	// Chan is the owning channel index.
	Chan int
	// WeakRows holds the row keys (physical address of each weak row's
	// first line, ascending) of rows that failed at the profiled tRCD.
	WeakRows []uint64
	// Rows is the number of rows profiled on this channel.
	Rows int
	// LinesTried is the number of line reads the pass performed.
	LinesTried int
	// Filter is the weak-row Bloom filter (§8.2); nil when not built.
	Filter *bloom.Filter
	// MinRCDRows/MinRCDPS are optional MinReliableTRCD grid results:
	// MinRCDPS[i] is the smallest reliable tRCD (picoseconds) of the row
	// keyed by MinRCDRows[i]. Both slices are parallel and may be empty.
	MinRCDRows []uint64
	MinRCDPS   []int64
}

// Profile is a complete characterization artifact.
type Profile struct {
	// Key is the compatibility key the profile was built under.
	Key string
	// Start, End delimit the profiled physical address range.
	Start, End uint64
	// RCDps is the profiled tRCD in picoseconds.
	RCDps int64
	// Channels holds one entry per profiled channel, ascending by Chan.
	Channels []ChannelProfile
}

// Rows reports the total rows profiled across channels.
func (p *Profile) Rows() int {
	n := 0
	for i := range p.Channels {
		n += p.Channels[i].Rows
	}
	return n
}

// WeakCount reports the total weak rows across channels.
func (p *Profile) WeakCount() int {
	n := 0
	for i := range p.Channels {
		n += len(p.Channels[i].WeakRows)
	}
	return n
}

// WeakFraction reports the profiled weak-row fraction.
func (p *Profile) WeakFraction() float64 {
	rows := p.Rows()
	if rows == 0 {
		return 0
	}
	return float64(p.WeakCount()) / float64(rows)
}

// Encode serializes the profile into a snapshot image (KindProfile).
func (p *Profile) Encode() []byte {
	w := NewWriter(KindProfile, p.Key)
	var meta Enc
	meta.U64(p.Start)
	meta.U64(p.End)
	meta.I64(p.RCDps)
	meta.Int(len(p.Channels))
	w.Section("profile/meta", meta.Payload())
	for i := range p.Channels {
		c := &p.Channels[i]
		var e Enc
		e.Int(c.Chan)
		e.Int(c.Rows)
		e.Int(c.LinesTried)
		e.U64s(c.WeakRows)
		EncodeBloom(&e, c.Filter)
		e.U64s(c.MinRCDRows)
		e.I64s(c.MinRCDPS)
		w.Section(fmt.Sprintf("profile/chan/%d", i), e.Payload())
	}
	return w.Bytes()
}

// DecodeProfile parses and validates a profile image against the caller's
// compatibility key. Every malformed input maps to a named error; callers
// fall back to fresh characterization.
func DecodeProfile(data []byte, key string) (*Profile, error) {
	r, err := ParseExpect(data, KindProfile, key)
	if err != nil {
		return nil, err
	}
	return decodeProfileSections(r)
}

// decodeProfileSections decodes a parsed profile reader.
func decodeProfileSections(r *Reader) (*Profile, error) {
	payload, err := r.Section("profile/meta")
	if err != nil {
		return nil, err
	}
	d := NewDec(payload)
	p := &Profile{Key: r.Key}
	p.Start = d.U64()
	p.End = d.U64()
	p.RCDps = d.I64()
	nch := d.Int()
	if d.Err() == nil && (nch < 0 || nch > maxSections) {
		d.Failf("%d channels", nch)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("profile/meta section: %w", err)
	}
	for i := 0; i < nch; i++ {
		name := fmt.Sprintf("profile/chan/%d", i)
		payload, err := r.Section(name)
		if err != nil {
			return nil, err
		}
		d := NewDec(payload)
		var c ChannelProfile
		c.Chan = d.Int()
		c.Rows = d.Int()
		c.LinesTried = d.Int()
		c.WeakRows = d.U64s()
		c.Filter = DecodeBloom(d)
		c.MinRCDRows = d.U64s()
		c.MinRCDPS = d.I64s()
		if d.Err() == nil {
			if c.Rows < 0 || c.LinesTried < 0 || c.Chan < 0 {
				d.Failf("negative counts")
			} else if len(c.WeakRows) > c.Rows {
				d.Failf("%d weak rows out of %d profiled", len(c.WeakRows), c.Rows)
			} else if len(c.MinRCDRows) != len(c.MinRCDPS) {
				d.Failf("MinRCD rows/values length mismatch (%d vs %d)",
					len(c.MinRCDRows), len(c.MinRCDPS))
			}
		}
		for j := 1; j < len(c.WeakRows) && d.Err() == nil; j++ {
			if c.WeakRows[j] <= c.WeakRows[j-1] {
				d.Failf("weak rows not strictly ascending at %d", j)
			}
		}
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("%s section: %w", name, err)
		}
		p.Channels = append(p.Channels, c)
	}
	return p, nil
}
