// Package snapshot implements the durable, integrity-checked serialization
// format behind EasyDRAM's characterization store and whole-system
// checkpoints (ROADMAP item 3: characterization-as-a-service).
//
// A snapshot file is a sectioned binary container:
//
//	magic   [8]byte  "EZDRSNAP"
//	version uint32   format version (callers reject mismatches)
//	kind    uint32   KindProfile or KindCheckpoint
//	key     string   compatibility key (seed/topology/config identity)
//	count   uint32   section count
//	count × section:
//	    name    string
//	    length  uint32
//	    crc32   uint32  (IEEE, over the payload)
//	    payload [length]byte
//
// Robustness is the contract: every load path validates the magic, the
// format version, the per-section CRCs, and the caller's compatibility key.
// Any mismatch, truncation, or garbage byte yields a named error — never a
// panic — so callers can fall back to fresh characterization (counted by
// stats.SnapshotFallbacks). Writes go through WriteFile: temp file + fsync
// + rename, so a crash mid-write can never leave a loadable half-snapshot.
package snapshot

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Format identity.
const (
	// Version is the current format version. Loads of any other version
	// fail with ErrBadVersion; there is no cross-version migration — a
	// stale snapshot simply degrades to re-characterization.
	Version = 1

	// KindProfile marks a characterization-profile snapshot.
	KindProfile uint32 = 1
	// KindCheckpoint marks a whole-core.System checkpoint.
	KindCheckpoint uint32 = 2
)

var magic = [8]byte{'E', 'Z', 'D', 'R', 'S', 'N', 'A', 'P'}

// Named load errors. Callers branch on these with errors.Is; all of them
// mean "this snapshot is unusable — re-characterize" and none of them is
// ever a panic.
var (
	// ErrBadMagic reports a file that is not a snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrBadVersion reports a snapshot written by an incompatible format
	// version.
	ErrBadVersion = errors.New("snapshot: unsupported format version")
	// ErrBadKind reports a snapshot of the wrong kind (a profile where a
	// checkpoint was expected, or vice versa).
	ErrBadKind = errors.New("snapshot: wrong snapshot kind")
	// ErrKeyMismatch reports a snapshot keyed to different silicon or
	// configuration than the caller's.
	ErrKeyMismatch = errors.New("snapshot: compatibility key mismatch")
	// ErrChecksum reports a section whose payload fails its CRC.
	ErrChecksum = errors.New("snapshot: section checksum mismatch")
	// ErrTruncated reports a snapshot (or section payload) that ends
	// mid-field.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrMissingSection reports a structurally valid snapshot that lacks a
	// section the loader requires.
	ErrMissingSection = errors.New("snapshot: missing section")
	// ErrCorrupt reports a payload that decodes structurally but fails a
	// semantic bound (impossible length, geometry mismatch).
	ErrCorrupt = errors.New("snapshot: corrupt payload")
)

// maxSections bounds the section count a reader will accept; it exists so
// fuzzed garbage cannot drive huge allocations. Real snapshots use a few
// dozen sections (one per channel per layer).
const maxSections = 1 << 16

// Writer assembles a snapshot image section by section.
type Writer struct {
	kind     uint32
	key      string
	names    []string
	payloads [][]byte
}

// NewWriter starts a snapshot of the given kind and compatibility key.
func NewWriter(kind uint32, key string) *Writer {
	return &Writer{kind: kind, key: key}
}

// Section appends a named section. The payload is copied; names should be
// unique (Reader.Section returns the first match).
func (w *Writer) Section(name string, payload []byte) {
	w.names = append(w.names, name)
	w.payloads = append(w.payloads, append([]byte(nil), payload...))
}

// Bytes assembles the snapshot image.
func (w *Writer) Bytes() []byte {
	var e Enc
	e.buf = append(e.buf, magic[:]...)
	e.U32(Version)
	e.U32(w.kind)
	e.String(w.key)
	e.U32(uint32(len(w.names)))
	for i, name := range w.names {
		p := w.payloads[i]
		e.String(name)
		e.U32(uint32(len(p)))
		e.U32(crc32.ChecksumIEEE(p))
		e.buf = append(e.buf, p...)
	}
	return e.buf
}

// Reader is a parsed snapshot image.
type Reader struct {
	Kind uint32
	Key  string

	names    []string
	payloads [][]byte
}

// Parse validates a snapshot image end to end — magic, version, structural
// bounds, and every section CRC — and returns a Reader over its sections.
// It never panics on garbage input; every malformed image maps to one of
// the named errors.
func Parse(data []byte) (*Reader, error) {
	d := NewDec(data)
	var m [8]byte
	copy(m[:], d.Raw(8))
	if d.Err() != nil || m != magic {
		return nil, ErrBadMagic
	}
	if v := d.U32(); d.Err() != nil || v != Version {
		if d.Err() != nil {
			return nil, ErrTruncated
		}
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, v, Version)
	}
	r := &Reader{}
	r.Kind = d.U32()
	r.Key = d.String()
	n := d.U32()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n > maxSections {
		return nil, fmt.Errorf("%w: %d sections", ErrCorrupt, n)
	}
	for i := uint32(0); i < n; i++ {
		name := d.String()
		length := d.U32()
		sum := d.U32()
		payload := d.Raw(int(length))
		if d.Err() != nil {
			return nil, d.Err()
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("%w: section %q", ErrChecksum, name)
		}
		r.names = append(r.names, name)
		r.payloads = append(r.payloads, payload)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.Remaining())
	}
	return r, nil
}

// ParseExpect parses and additionally enforces the kind and compatibility
// key, the standard prologue of every load path.
func ParseExpect(data []byte, kind uint32, key string) (*Reader, error) {
	r, err := Parse(data)
	if err != nil {
		return nil, err
	}
	if r.Kind != kind {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadKind, r.Kind, kind)
	}
	if r.Key != key {
		return nil, fmt.Errorf("%w: snapshot %q, caller %q", ErrKeyMismatch, r.Key, key)
	}
	return r, nil
}

// Section returns the named section's payload.
func (r *Reader) Section(name string) ([]byte, error) {
	for i, n := range r.names {
		if n == name {
			return r.payloads[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrMissingSection, name)
}

// HasSection reports whether a section with the given name exists.
func (r *Reader) HasSection(name string) bool {
	for _, n := range r.names {
		if n == name {
			return true
		}
	}
	return false
}

// Sections lists the section names in file order.
func (r *Reader) Sections() []string { return append([]string(nil), r.names...) }
