package snapshot

import (
	"fmt"
	"os"
	"path/filepath"

	"easydram/internal/stats"
)

// WriteFile writes a snapshot image to path atomically: the bytes land in
// a temporary file in the same directory, are fsynced, and only then
// renamed over path (with a directory fsync so the rename itself is
// durable). A crash at any point leaves either the old file or the new
// one — never a loadable half-snapshot. Missing parent directories are
// created (a profile store's directory is born on first save).
func WriteFile(path string, data []byte) (err error) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if d, derr := os.Open(dir); derr == nil {
		// Best-effort directory fsync; some filesystems reject it.
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// ReadFile loads a snapshot image. An absent or unreadable file is an
// ordinary error (not one of the format errors); callers treat both the
// same way — fall back to fresh characterization.
func ReadFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return data, nil
}

// RecordFallback counts one graceful degradation: a snapshot load failed
// (err says why) and the caller is re-characterizing from scratch. It
// feeds the stats.SnapshotFallbacks counter that benchall surfaces as
// snapshot/fallbacks.
func RecordFallback(err error) {
	_ = err
	stats.SnapshotFallbacks.Add(1)
}
