package snapshot

import "easydram/internal/bloom"

// Bloom-filter codec shared by the profile store (weak-row filters) and
// the controller checkpoint (quarantine filters). A nil filter encodes as
// a present/absent flag so optional filters round-trip.

// EncodeBloom appends f's state (nil-safe).
func EncodeBloom(e *Enc, f *bloom.Filter) {
	if f == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	bits, mBits, k, seed, n := f.Export()
	e.U64(mBits)
	e.Int(k)
	e.U64(seed)
	e.Int(n)
	e.U64s(bits)
}

// DecodeBloom reads a filter encoded by EncodeBloom, returning nil for an
// encoded-nil filter. Geometry violations fail the decoder.
func DecodeBloom(d *Dec) *bloom.Filter {
	if !d.Bool() {
		return nil
	}
	mBits := d.U64()
	k := d.Int()
	seed := d.U64()
	n := d.Int()
	bits := d.U64s()
	if d.Err() != nil {
		return nil
	}
	f, err := bloom.FromState(bits, mBits, k, seed, n)
	if err != nil {
		// Geometry errors become ErrCorrupt so every load failure stays
		// classifiable by the package's named errors.
		d.Failf("bloom geometry: %v", err)
		return nil
	}
	return f
}
