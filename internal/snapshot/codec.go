package snapshot

import (
	"encoding/binary"
	"fmt"
)

// Enc and Dec are the field-level codec the per-layer state exporters
// build section payloads with. All integers are little-endian and
// fixed-width; variable-length data is length-prefixed. Dec carries a
// sticky error so callers can decode a whole payload and check once:
// after the first bounds violation every accessor returns zero values and
// Err() reports ErrTruncated (or whatever Fail recorded).

// Enc appends fields to a growing buffer.
type Enc struct {
	buf []byte
}

// U64 appends a fixed-width unsigned 64-bit field.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// U32 appends a fixed-width unsigned 32-bit field.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// I64 appends a signed 64-bit field.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as a signed 64-bit field.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// Bool appends a boolean byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Byte appends a raw byte.
func (e *Enc) Byte(v byte) { e.buf = append(e.buf, v) }

// Bytes appends a length-prefixed byte slice.
func (e *Enc) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// U64s appends a length-prefixed []uint64.
func (e *Enc) U64s(v []uint64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U64(x)
	}
}

// I64s appends a length-prefixed []int64.
func (e *Enc) I64s(v []int64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.I64(x)
	}
}

// Ints appends a length-prefixed []int (as 64-bit fields).
func (e *Enc) Ints(v []int) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.I64(int64(x))
	}
}

// Payload returns the accumulated bytes.
func (e *Enc) Payload() []byte { return e.buf }

// Dec reads fields from a payload with a sticky error.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{buf: payload} }

// Err reports the first decode failure, or nil.
func (d *Dec) Err() error { return d.err }

// Fail records err (if none is recorded yet); later accessors return
// zeros. Layer loaders use it for semantic bounds (geometry mismatches).
func (d *Dec) Fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Failf records a formatted ErrCorrupt.
func (d *Dec) Failf(format string, args ...any) {
	d.Fail(fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...)))
}

// Remaining reports the unread byte count.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Finish fails with ErrCorrupt if undecoded bytes remain, then reports the
// sticky error. Section loaders call it last so a payload with trailing
// garbage (e.g. from a partial overwrite) cannot pass silently.
func (d *Dec) Finish() error {
	if d.err == nil && d.Remaining() != 0 {
		d.Failf("%d trailing bytes", d.Remaining())
	}
	return d.err
}

// Raw consumes n raw bytes (no length prefix). The returned slice aliases
// the payload; callers must copy if they retain it.
func (d *Dec) Raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.Fail(ErrTruncated)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U64 reads a fixed-width unsigned 64-bit field.
func (d *Dec) U64() uint64 {
	b := d.Raw(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// U32 reads a fixed-width unsigned 32-bit field.
func (d *Dec) U32() uint32 {
	b := d.Raw(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// I64 reads a signed 64-bit field.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int stored as a signed 64-bit field.
func (d *Dec) Int() int { return int(d.I64()) }

// Bool reads a boolean byte; any value other than 0 or 1 is corrupt.
func (d *Dec) Bool() bool {
	b := d.Raw(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.Failf("bad bool byte %#x", b[0])
		return false
	}
}

// Byte reads a raw byte.
func (d *Dec) Byte() byte {
	b := d.Raw(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// lenPrefix reads a length prefix and bounds it against the remaining
// payload assuming each element occupies at least elemSize bytes, so
// fuzzed garbage cannot drive huge allocations.
func (d *Dec) lenPrefix(elemSize int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n < 0 || (elemSize > 0 && n > d.Remaining()/elemSize) {
		d.Fail(ErrTruncated)
		return 0
	}
	return n
}

// BytesView reads a length-prefixed byte slice; the result aliases the
// payload.
func (d *Dec) BytesView() []byte {
	n := d.lenPrefix(1)
	if d.err != nil {
		return nil
	}
	return d.Raw(n)
}

// BytesCopy reads a length-prefixed byte slice into fresh storage.
func (d *Dec) BytesCopy() []byte {
	v := d.BytesView()
	if v == nil {
		return nil
	}
	return append([]byte(nil), v...)
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	v := d.BytesView()
	if v == nil {
		return ""
	}
	return string(v)
}

// U64s reads a length-prefixed []uint64.
func (d *Dec) U64s() []uint64 {
	n := d.lenPrefix(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = d.U64()
	}
	if d.err != nil {
		return nil
	}
	return v
}

// I64s reads a length-prefixed []int64.
func (d *Dec) I64s() []int64 {
	n := d.lenPrefix(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = d.I64()
	}
	if d.err != nil {
		return nil
	}
	return v
}

// Ints reads a length-prefixed []int.
func (d *Dec) Ints() []int {
	n := d.lenPrefix(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = d.Int()
	}
	if d.err != nil {
		return nil
	}
	return v
}
