package snapshot

import (
	"encoding/binary"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"easydram/internal/bloom"
)

const testKey = "profile:v1|test"

// testProfile builds a small two-channel profile exercising every optional
// field shape: a populated Bloom filter and MinRCD grid on channel 0, all
// of them absent on channel 1.
func testProfile(t testing.TB) *Profile {
	t.Helper()
	f, err := bloom.NewForCapacity(16, 0.01, 42)
	if err != nil {
		t.Fatalf("bloom: %v", err)
	}
	f.Add(0x1000)
	f.Add(0x3000)
	return &Profile{
		Key:   testKey,
		Start: 0x1000,
		End:   0x9000,
		RCDps: 9000,
		Channels: []ChannelProfile{
			{
				Chan: 0, WeakRows: []uint64{0x1000, 0x3000}, Rows: 8, LinesTried: 64,
				Filter: f, MinRCDRows: []uint64{0x1000, 0x2000}, MinRCDPS: []int64{10500, 9000},
			},
			{Chan: 1, Rows: 8, LinesTried: 64},
		},
	}
}

func TestWriterParseRoundTrip(t *testing.T) {
	w := NewWriter(KindCheckpoint, "key-1")
	w.Section("a", []byte("alpha"))
	w.Section("b", nil)
	w.Section("c", []byte{0, 1, 2, 3})
	img := w.Bytes()

	r, err := ParseExpect(img, KindCheckpoint, "key-1")
	if err != nil {
		t.Fatalf("ParseExpect: %v", err)
	}
	if r.Kind != KindCheckpoint || r.Key != "key-1" {
		t.Errorf("header round trip: kind %d key %q", r.Kind, r.Key)
	}
	if got := r.Sections(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("sections %v", got)
	}
	for name, want := range map[string]string{"a": "alpha", "b": "", "c": "\x00\x01\x02\x03"} {
		p, err := r.Section(name)
		if err != nil {
			t.Fatalf("section %q: %v", name, err)
		}
		if string(p) != want {
			t.Errorf("section %q payload %q, want %q", name, p, want)
		}
	}
	if !r.HasSection("a") || r.HasSection("nope") {
		t.Error("HasSection misreports")
	}
	if _, err := r.Section("nope"); !errors.Is(err, ErrMissingSection) {
		t.Errorf("missing section error: %v", err)
	}
}

func TestProfileRoundTrip(t *testing.T) {
	p := testProfile(t)
	img := p.Encode()
	got, err := DecodeProfile(img, testKey)
	if err != nil {
		t.Fatalf("DecodeProfile: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip changed the profile:\n got %+v\nwant %+v", got, p)
	}
	if got.Rows() != 16 || got.WeakCount() != 2 || got.WeakFraction() != 0.125 {
		t.Errorf("aggregates: rows %d weak %d frac %g", got.Rows(), got.WeakCount(), got.WeakFraction())
	}
}

// namedErr reports whether err maps to one of the package's named load
// errors — the degradation contract: every unusable snapshot is
// classifiable, so callers can fall back instead of crashing.
func namedErr(err error) bool {
	for _, e := range []error{
		ErrBadMagic, ErrBadVersion, ErrBadKind, ErrKeyMismatch,
		ErrChecksum, ErrTruncated, ErrMissingSection, ErrCorrupt,
	} {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}

// TestCorruptionMatrix is the satellite's exhaustive single-fault sweep:
// every one-byte flip and every truncation of a valid profile image must
// fail the load with a named error — never panic, never decode silently.
func TestCorruptionMatrix(t *testing.T) {
	img := testProfile(t).Encode()

	t.Run("byte-flips", func(t *testing.T) {
		for i := range img {
			bad := append([]byte(nil), img...)
			bad[i] ^= 0xff
			p, err := DecodeProfile(bad, testKey)
			if err == nil {
				t.Fatalf("flip at byte %d decoded silently: %+v", i, p)
			}
			if !namedErr(err) {
				t.Fatalf("flip at byte %d: unnamed error %v", i, err)
			}
		}
	})

	t.Run("truncations", func(t *testing.T) {
		for i := 0; i < len(img); i++ {
			p, err := DecodeProfile(img[:i], testKey)
			if err == nil {
				t.Fatalf("truncation to %d bytes decoded silently: %+v", i, p)
			}
			if !namedErr(err) {
				t.Fatalf("truncation to %d bytes: unnamed error %v", i, err)
			}
		}
	})

	t.Run("empty", func(t *testing.T) {
		if _, err := DecodeProfile(nil, testKey); !errors.Is(err, ErrBadMagic) {
			t.Errorf("empty input: %v, want ErrBadMagic", err)
		}
	})

	t.Run("wrong-version", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		binary.LittleEndian.PutUint32(bad[8:], Version+1)
		if _, err := DecodeProfile(bad, testKey); !errors.Is(err, ErrBadVersion) {
			t.Errorf("patched version: %v, want ErrBadVersion", err)
		}
	})

	t.Run("wrong-kind", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		binary.LittleEndian.PutUint32(bad[12:], KindCheckpoint)
		if _, err := DecodeProfile(bad, testKey); !errors.Is(err, ErrBadKind) {
			t.Errorf("patched kind: %v, want ErrBadKind", err)
		}
	})

	t.Run("wrong-key", func(t *testing.T) {
		if _, err := DecodeProfile(img, "profile:v1|other-silicon"); !errors.Is(err, ErrKeyMismatch) {
			t.Errorf("foreign key: %v, want ErrKeyMismatch", err)
		}
	})

	t.Run("trailing-garbage", func(t *testing.T) {
		if _, err := DecodeProfile(append(append([]byte(nil), img...), 0xaa), testKey); !errors.Is(err, ErrCorrupt) {
			t.Errorf("trailing byte: %v, want ErrCorrupt", err)
		}
	})
}

// TestSemanticValidation pins the post-structural bounds: payloads that
// parse (CRCs intact) but describe impossible profiles are rejected.
func TestSemanticValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(p *Profile)
	}{
		{"weak-exceeds-rows", func(p *Profile) { p.Channels[0].Rows = 1 }},
		{"negative-rows", func(p *Profile) { p.Channels[0].Rows = -1 }},
		{"minrcd-length-mismatch", func(p *Profile) { p.Channels[0].MinRCDPS = p.Channels[0].MinRCDPS[:1] }},
		{"weak-rows-unsorted", func(p *Profile) {
			p.Channels[0].WeakRows = []uint64{0x3000, 0x1000}
		}},
		{"weak-rows-duplicate", func(p *Profile) {
			p.Channels[0].WeakRows = []uint64{0x1000, 0x1000}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := testProfile(t)
			tc.mut(p)
			if _, err := DecodeProfile(p.Encode(), testKey); !errors.Is(err, ErrCorrupt) {
				t.Errorf("decode: %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestWriteFileReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.ezdrprof")
	img := testProfile(t).Encode()

	if err := WriteFile(path, img); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, img) {
		t.Error("ReadFile returned different bytes than written")
	}

	// No temp litter after a successful atomic write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %q left behind", e.Name())
		}
	}

	// A missing file is an ordinary fs.ErrNotExist — the facade's "cold
	// start, not a fallback" branch depends on the wrap staying intact.
	if _, err := ReadFile(filepath.Join(dir, "absent")); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing file: %v, want fs.ErrNotExist", err)
	}
}

// TestConcurrentSaveLoad is the -race smoke target: writers rename over
// the path while readers load it, and every read must observe a complete,
// decodable image (the atomic temp+rename contract) with no data races.
func TestConcurrentSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.ezdrprof")
	img := testProfile(t).Encode()
	if err := WriteFile(path, img); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	const iters = 50
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := WriteFile(path, img); err != nil {
					t.Errorf("concurrent WriteFile: %v", err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				data, err := ReadFile(path)
				if err != nil {
					t.Errorf("concurrent ReadFile: %v", err)
					return
				}
				if _, err := DecodeProfile(data, testKey); err != nil {
					t.Errorf("concurrent read observed a corrupt snapshot: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
