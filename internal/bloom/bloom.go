// Package bloom implements the Bloom filter the tRCD-reduction technique
// uses to track weak DRAM rows (§8.2, following RAIDR). Weak rows are the
// keys, so a false positive only costs a nominal-latency access, never a
// reliability violation.
package bloom

import (
	"fmt"
	"math"
)

// Filter is a standard Bloom filter with double hashing. The zero value is
// not usable; construct with New or NewForCapacity.
type Filter struct {
	bits  []uint64
	mBits uint64
	k     int
	seed  uint64
	n     int
}

// New returns a filter with mBits bits and k hash functions.
func New(mBits uint64, k int, seed uint64) (*Filter, error) {
	if mBits == 0 || k <= 0 {
		return nil, fmt.Errorf("bloom: need positive size and hash count, got m=%d k=%d", mBits, k)
	}
	return &Filter{
		bits:  make([]uint64, (mBits+63)/64),
		mBits: mBits,
		k:     k,
		seed:  seed,
	}, nil
}

// NewForCapacity sizes a filter for n expected keys at the target false-
// positive rate.
func NewForCapacity(n int, fpRate float64, seed uint64) (*Filter, error) {
	if n <= 0 {
		n = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		return nil, fmt.Errorf("bloom: false-positive rate must be in (0,1), got %g", fpRate)
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return New(m, k, seed)
}

// K reports the number of hash functions.
func (f *Filter) K() int { return f.k }

// MBits reports the filter size in bits.
func (f *Filter) MBits() uint64 { return f.mBits }

// Count reports the number of Add calls.
func (f *Filter) Count() int { return f.n }

// SizeBytes reports the memory footprint of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

func (f *Filter) hash2(key uint64) (uint64, uint64) {
	h1 := mix(key ^ f.seed)
	h2 := mix(h1 ^ 0x9e3779b97f4a7c15)
	if h2%f.mBits == 0 {
		h2++
	}
	return h1, h2
}

// Add inserts key.
func (f *Filter) Add(key uint64) {
	h1, h2 := f.hash2(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.mBits
		f.bits[bit/64] |= 1 << (bit % 64)
	}
	f.n++
}

// Contains reports whether key may have been added (no false negatives).
func (f *Filter) Contains(key uint64) bool {
	h1, h2 := f.hash2(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.mBits
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// mix is SplitMix64's finalizer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
