package bloom

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 1); err == nil {
		t.Fatalf("zero bits must fail")
	}
	if _, err := New(64, 0, 1); err == nil {
		t.Fatalf("zero hashes must fail")
	}
	if _, err := NewForCapacity(100, 0, 1); err == nil {
		t.Fatalf("zero fp rate must fail")
	}
	if _, err := NewForCapacity(100, 1, 1); err == nil {
		t.Fatalf("fp rate 1 must fail")
	}
}

// Property: no false negatives, ever.
func TestNoFalseNegatives(t *testing.T) {
	f := func(keys []uint64) bool {
		flt, err := NewForCapacity(len(keys)+1, 0.01, 7)
		if err != nil {
			return false
		}
		for _, k := range keys {
			flt.Add(k)
		}
		for _, k := range keys {
			if !flt.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateApprox(t *testing.T) {
	const n = 2000
	flt, err := NewForCapacity(n, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		flt.Add(uint64(i) * 8192)
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if flt.Contains(uint64(n+i)*8192 + 7) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false-positive rate %.4f far above target 0.01", rate)
	}
}

// splitmix64 generates the deterministic, well-spread key streams the
// design-load tests fill filters with (arbitrary uint64 keys, unlike the
// stride patterns above).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TestFalsePositiveRateAtDesignLoad fills filters to EXACTLY their design
// capacity — the load NewForCapacity sized them for — and requires the
// measured false-positive rate to stay near each design target. The 3x
// slack covers sampling noise and the integer rounding of m and k; an
// implementation error (bad mixing, wrong k, off-by-one sizing) blows past
// it immediately.
func TestFalsePositiveRateAtDesignLoad(t *testing.T) {
	const n = 5000
	const probes = 100000
	for _, target := range []float64{0.05, 0.01, 0.001} {
		flt, err := NewForCapacity(n, target, 11)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			flt.Add(splitmix64(uint64(i)))
		}
		fp := 0
		for i := 0; i < probes; i++ {
			// Disjoint key stream: the insert stream hashes i, this hashes a
			// salted counter far outside it.
			if flt.Contains(splitmix64(uint64(i) ^ 0xabcdef0000000000)) {
				fp++
			}
		}
		rate := float64(fp) / probes
		t.Logf("target %.3f: measured %.5f (%d/%d)", target, rate, fp, probes)
		if rate > 3*target {
			t.Errorf("false-positive rate %.5f at design load exceeds 3x the %.3f target", rate, target)
		}
	}
}

// TestNoFalseNegativesAtDesignLoad is the deterministic large-set
// companion to the quick.Check property above: a filter filled to design
// capacity must report every inserted key present — the guarantee the
// SMC's quarantine path (a quarantined row MUST keep remapping) rests on.
func TestNoFalseNegativesAtDesignLoad(t *testing.T) {
	const n = 10000
	flt, err := NewForCapacity(n, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		flt.Add(splitmix64(uint64(i) * 0x10001))
	}
	for i := 0; i < n; i++ {
		if k := splitmix64(uint64(i) * 0x10001); !flt.Contains(k) {
			t.Fatalf("false negative: inserted key %d (%#x) reported absent", i, k)
		}
	}
}

func TestSizingScalesWithCapacity(t *testing.T) {
	small, err := NewForCapacity(10, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	large, err := NewForCapacity(10000, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if large.MBits() <= small.MBits() {
		t.Fatalf("sizing did not scale: %d vs %d bits", small.MBits(), large.MBits())
	}
	if small.K() < 1 || small.K() > 16 {
		t.Fatalf("k out of range: %d", small.K())
	}
}

func TestCountAndSize(t *testing.T) {
	flt, err := New(1024, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	flt.Add(1)
	flt.Add(2)
	if flt.Count() != 2 {
		t.Fatalf("Count = %d", flt.Count())
	}
	if flt.SizeBytes() != 1024/8 {
		t.Fatalf("SizeBytes = %d", flt.SizeBytes())
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	flt, err := New(4096, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		if flt.Contains(i * 31) {
			t.Fatalf("empty filter claims key %d", i*31)
		}
	}
}

func TestSeedIndependence(t *testing.T) {
	a, _ := New(4096, 4, 1)
	b, _ := New(4096, 4, 2)
	a.Add(42)
	b.Add(42)
	// Different seeds should map the key to different bits at least
	// sometimes; both must still contain it.
	if !a.Contains(42) || !b.Contains(42) {
		t.Fatalf("seeded filters lost their key")
	}
}
