package bloom

import "fmt"

// Export returns the filter's complete state for serialization: the bit
// array (aliased, not copied — callers must not mutate it), the size in
// bits, the hash count, the hash seed, and the Add count. Together with
// FromState it round-trips a filter bit-identically, which the snapshot
// layer relies on for checkpointed quarantine filters and persisted
// weak-row sets.
func (f *Filter) Export() (bits []uint64, mBits uint64, k int, seed uint64, n int) {
	return f.bits, f.mBits, f.k, f.seed, f.n
}

// FromState reconstructs a filter from exported state. The bits slice is
// copied. It validates the geometry so corrupt snapshots surface as
// errors rather than out-of-range panics on the first Contains call.
func FromState(bits []uint64, mBits uint64, k int, seed uint64, n int) (*Filter, error) {
	if mBits == 0 || k <= 0 || k > 64 || n < 0 {
		return nil, fmt.Errorf("bloom: invalid state m=%d k=%d n=%d", mBits, k, n)
	}
	if want := int((mBits + 63) / 64); len(bits) != want {
		return nil, fmt.Errorf("bloom: bit array length %d does not match m=%d (want %d words)", len(bits), mBits, want)
	}
	return &Filter{
		bits:  append([]uint64(nil), bits...),
		mBits: mBits,
		k:     k,
		seed:  seed,
		n:     n,
	}, nil
}
