package difffuzz

import (
	"encoding/json"
	"fmt"
	"math"

	"easydram/internal/clock"
	"easydram/internal/core"
	"easydram/internal/fault"
	"easydram/internal/ramulator"
	"easydram/internal/workload"
)

// EnvelopeMaxPct is the paper's per-config cycle-error bound (Figure 13:
// every kernel under 1%); EnvelopeAvgPct the sweep-average bound (§6).
const (
	EnvelopeMaxPct = 1.0
	EnvelopeAvgPct = 0.1
)

// EnvelopeMinCycles floors envelope judgment: a baseline run shorter than
// this cannot amortize the engines' constant ~20-cycle startup/drain
// difference, so its relative error measures quantization, not fidelity
// (the paper validates on full kernels for the same reason). Shorter
// comparable runs are demoted to invariants-only.
const EnvelopeMinCycles = 4096

// maxProcCycles aborts runaway cases (a broken mutation can livelock a
// scheduler); two billion emulated cycles is ~4 orders of magnitude above
// the largest pool kernel.
const maxProcCycles = clock.Cycles(2_000_000_000)

// Failure describes one failed check, named so a minimized case can be
// required to reproduce the SAME failure (minimize.go) and a regression
// file records what it once broke.
type Failure struct {
	// Check identifies the oracle: "decode", "run", "conservation",
	// "rank-bus", "fault-counters", "trr-escape", "determinism",
	// "burst-identity", "shard-identity", "armed-idle",
	// "checkpoint-identity", "envelope".
	Check string `json:"check"`
	// Detail is the human-readable mismatch.
	Detail string `json:"detail"`
}

func failf(check, format string, args ...any) *Failure {
	return &Failure{Check: check, Detail: fmt.Sprintf(format, args...)}
}

// Report is one case's verdict.
type Report struct {
	Case Case `json:"case"`
	// Comparable marks cases judged against the baseline envelope
	// (time-scaled, zero injection).
	Comparable bool `json:"comparable"`
	// ErrPct is the EasyDRAM-vs-baseline cycle error (comparable cases).
	ErrPct float64 `json:"err_pct"`
	// ProcCycles / BaselineCycles are the two stacks' primary metrics.
	ProcCycles     int64 `json:"proc_cycles"`
	BaselineCycles int64 `json:"baseline_cycles,omitempty"`
	// Runs counts full system runs the case consumed.
	Runs int `json:"runs"`
	// Failure is nil when every applicable check passed.
	Failure *Failure `json:"failure,omitempty"`
}

// Comparable reports whether the case is judged against the cycle-error
// envelope: time scaling on (the paper's mode; the baseline direct
// simulation is its reference), no fault injection (faults perturb the
// two stacks differently by design — retry backoff is emulated time), and
// a single core (the baseline has no multi-core contention model).
func (c Case) Comparable() bool {
	return c.TimeScaling && !c.Faults.Enabled() && c.Cores <= 1
}

// runOnce assembles a fresh system for the case and runs its kernel.
// mutate is the test-only breakage hook (applied to the EasyDRAM side
// only, never the baseline); transform derives the run variant (burst-off,
// armed-idle, baseline). A fresh core.Config per run is load-bearing:
// stateful schedulers (BLISS) must never be shared between runs.
func runOnce(c Case, mutate, transform func(*core.Config)) (core.Result, error) {
	k, err := c.Workload()
	if err != nil {
		return core.Result{}, err
	}
	cfg, err := buildConfig(c, mutate)
	if err != nil {
		return core.Result{}, err
	}
	if transform != nil {
		transform(&cfg)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return core.Result{}, err
	}
	if cfg.Cores > 1 {
		// Multi-core: every core runs the case's kernel in its own private
		// address window (the emulated fabric has no coherence protocol).
		streams := make([]workload.Stream, cfg.Cores)
		for i := range streams {
			streams[i] = workload.OffsetStream(k.Stream(), uint64(i)*workload.MixWindowBytes)
		}
		return sys.RunStreams(streams)
	}
	return sys.Run(k.Stream())
}

// buildConfig assembles the case's config with the engine cycle cap and the
// test-only mutate hook applied — the exact config runOnce runs, factored
// out so the checkpoint paths build byte-identical systems.
func buildConfig(c Case, mutate func(*core.Config)) (core.Config, error) {
	cfg, err := c.SystemConfig()
	if err != nil {
		return core.Config{}, err
	}
	cfg.MaxProcCycles = maxProcCycles
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg, nil
}

// runCheckpointed runs the case with a quiescent-point checkpoint requested
// at cycle at. The returned blob is nil when the system never quiesced past
// the mark (graceful, not an error).
func runCheckpointed(c Case, mutate func(*core.Config), at clock.Cycles) (core.Result, []byte, error) {
	k, err := c.Workload()
	if err != nil {
		return core.Result{}, nil, err
	}
	cfg, err := buildConfig(c, mutate)
	if err != nil {
		return core.Result{}, nil, err
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return core.Result{}, nil, err
	}
	return sys.RunCheckpoint(k.Stream(), at)
}

// runRestored loads a checkpoint blob into a fresh identical system and
// runs the case to completion from it.
func runRestored(c Case, mutate func(*core.Config), blob []byte) (core.Result, error) {
	k, err := c.Workload()
	if err != nil {
		return core.Result{}, err
	}
	cfg, err := buildConfig(c, mutate)
	if err != nil {
		return core.Result{}, err
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return core.Result{}, err
	}
	return sys.RunRestored(k.Stream(), blob)
}

// resultDigest canonicalizes a result for bit-identity comparison. JSON is
// fine here: every field is integer or a float computed identically on
// both sides, so equal runs produce equal bytes.
func resultDigest(r core.Result) string {
	b, err := json.Marshal(r)
	if err != nil {
		return "unencodable: " + err.Error()
	}
	return string(b)
}

// emulatedIdentity projects a result onto the fields burst-on/off service
// must agree on: everything in emulated time plus every counter except the
// burst bookkeeping itself and the host-side program/instruction counts
// (one burst program replaces several serial ones by design).
type emulatedIdentity struct {
	ProcCycles   clock.Cycles
	EmulatedTime clock.PS
	Marks        []clock.Cycles
	CPU          any
	L1, L2       any
	Served       int64
	Reads        int64
	Writes       int64
	RowClones    int64
	Refreshes    int64
	RowHits      int64
	RowMisses    int64
	RankSwitches int64
	Retries      int64
	RetryGiveUps int64
	Quarantined  int64
	Remapped     int64
	MitRefreshes int64
	Chip         any
	RequestsIn   int64
	ResponsesOut int64
}

func projectEmulated(r core.Result) string {
	p := emulatedIdentity{
		ProcCycles:   r.ProcCycles,
		EmulatedTime: r.EmulatedTime,
		Marks:        r.Marks,
		CPU:          r.CPU,
		L1:           r.L1,
		L2:           r.L2,
		Served:       r.Ctrl.Served,
		Reads:        r.Ctrl.Reads,
		Writes:       r.Ctrl.Writes,
		RowClones:    r.Ctrl.RowClones,
		Refreshes:    r.Ctrl.Refreshes,
		RowHits:      r.Ctrl.RowHits,
		RowMisses:    r.Ctrl.RowMisses,
		RankSwitches: r.Ctrl.RankSwitches,
		Retries:      r.Ctrl.Retries,
		RetryGiveUps: r.Ctrl.RetryGiveUps,
		Quarantined:  r.Ctrl.QuarantinedRows,
		Remapped:     r.Ctrl.RemappedAccesses,
		MitRefreshes: r.Ctrl.MitigationRefreshes,
		Chip:         r.Chip,
		RequestsIn:   r.Tile.RequestsIn,
		ResponsesOut: r.Tile.ResponsesOut,
	}
	b, err := json.Marshal(p)
	if err != nil {
		return "unencodable: " + err.Error()
	}
	return string(b)
}

// checkInvariants runs the oracle-free checks every config must satisfy.
func checkInvariants(c Case, r core.Result) *Failure {
	// Request conservation across the three seams: every request the CPU
	// issued entered a tile, was served by a controller, and produced a
	// response that released its slot.
	issued := r.CPU.MemReads + r.CPU.MemFills + r.CPU.Writebacks +
		r.CPU.Flushes + r.CPU.RowClones + r.CPU.Prefetches
	if issued != r.Tile.RequestsIn || r.Tile.RequestsIn != r.Tile.ResponsesOut ||
		r.Ctrl.Served != r.Tile.RequestsIn {
		return failf("conservation",
			"cpu issued %d, tile in %d, tile out %d, ctrl served %d — requests leaked or duplicated",
			issued, r.Tile.RequestsIn, r.Tile.ResponsesOut, r.Ctrl.Served)
	}
	// The shared rank bus never admits a CAS inside the rank-to-rank
	// turnaround window.
	if r.Chip.RankSwitchViolations != 0 {
		return failf("rank-bus", "%d rank-switch violations on a %d-rank channel",
			r.Chip.RankSwitchViolations, c.Ranks)
	}
	// Fault counters stay zero when their injection axis is off.
	if c.Faults.DisturbThreshold == 0 && r.Chip.DisturbFlips != 0 {
		return failf("fault-counters", "disturb disabled but %d flips recorded", r.Chip.DisturbFlips)
	}
	if !c.Faults.Enabled() {
		if n := r.Ctrl.Retries + r.Ctrl.RetryGiveUps + r.Ctrl.QuarantinedRows + r.Ctrl.RemappedAccesses; n != 0 {
			return failf("fault-counters", "fault-free run recorded recovery activity (%d events)", n)
		}
		if n := r.Tile.LaunchFails + r.Tile.CorruptLines + r.Tile.ShortReadbacks; n != 0 {
			return failf("fault-counters", "fault-free run recorded %d link faults", n)
		}
	}
	// TRR's structural guarantee: its counter policy refreshes every victim
	// before 2*threshold activations, so with the chip's minimum disturb
	// threshold above that (the decoder and minimizer preserve this), no
	// flip can escape. PARA is probabilistic and gets no such check.
	if c.Mitigation == "trr" && c.Faults.DisturbThreshold >= 64 && r.Chip.DisturbFlips != 0 {
		return failf("trr-escape", "TRR let %d flips escape (disturb threshold %d)",
			r.Chip.DisturbFlips, c.Faults.DisturbThreshold)
	}
	return nil
}

// armIdleFaults is the armed-but-idle transform: the full fault and
// recovery machinery is wired into the system, but thresholds and rates
// guarantee zero injections, so the run must be bit-identical in emulated
// time to the fault-free build — the "fault seams cost nothing when idle"
// contract PR 6 pinned on the golden configs, here fuzzed across the space.
func armIdleFaults(cfg *core.Config) {
	cfg.Faults = fault.Config{
		Chip: fault.ChipConfig{
			DisturbEnabled:      true,
			DisturbMinThreshold: 1 << 30,
		},
		Recovery: fault.RecoveryConfig{Enabled: true},
	}
}

// RunCase runs every applicable check for one case. mutate, when non-nil,
// is applied to each EasyDRAM-side config (never the baseline): the tests
// use it to plant a deliberately broken scheduler and prove the harness
// catches it.
func RunCase(c Case, mutate func(*core.Config)) Report {
	rep := Report{Case: c, Comparable: c.Comparable()}

	main, err := runOnce(c, mutate, nil)
	rep.Runs++
	if err != nil {
		rep.Failure = failf("run", "%v", err)
		return rep
	}
	rep.ProcCycles = int64(main.ProcCycles)

	if f := checkInvariants(c, main); f != nil {
		rep.Failure = f
		return rep
	}

	// Run-to-run determinism. Every fault draw and schedule decision is a
	// pure function of config and request stream, so a second identical run
	// must reproduce the first bit-for-bit. Multi-channel fan-out, fault
	// models, and the multi-core merge loop carry the interesting state;
	// restricting the double-run to those keeps the sweep's run budget flat.
	if c.Channels > 1 || c.Faults.Enabled() || c.Cores > 1 {
		again, err := runOnce(c, mutate, nil)
		rep.Runs++
		if err != nil {
			rep.Failure = failf("determinism", "rerun failed: %v", err)
			return rep
		}
		if a, b := resultDigest(main), resultDigest(again); a != b {
			rep.Failure = failf("determinism", "identical config produced different results:\n  %s\nvs\n  %s", a, b)
			return rep
		}
	}

	// Sharded ≡ serial: host-parallel channel execution must be invisible
	// in every field of the result — not just emulated time but every
	// statistic and the host-side counters too (the shard runner replays
	// the exact serial step order; see core/shard.go). The main run used
	// the case's worker count, so compare it against a single-worker twin.
	if c.ShardWorkers > 1 && c.Channels > 1 && c.Cores <= 1 {
		serial, err := runOnce(c, mutate, func(cfg *core.Config) { cfg.ShardWorkers = 1 })
		rep.Runs++
		if err != nil {
			rep.Failure = failf("shard-identity", "single-worker counterpart failed: %v", err)
			return rep
		}
		if a, b := resultDigest(main), resultDigest(serial); a != b {
			rep.Failure = failf("shard-identity", "%d shard workers changed the result:\n  sharded: %s\n  serial:  %s",
				c.ShardWorkers, a, b)
			return rep
		}
	}

	// Burst-on ≡ burst-off: row-hit burst service is a host-time
	// optimisation that must not move emulated time or any served-request
	// counter. Link faults draw per Bender program and bursting changes the
	// program count, so those cases legitimately diverge and are skipped —
	// as are multi-core cases, whose engine pins service to the serial path.
	if c.BurstCap > 1 && c.Cores <= 1 && c.Faults.LinkFailRate == 0 && c.Faults.LinkCorruptRate == 0 && c.Faults.LinkDropRate == 0 {
		serial, err := runOnce(c, mutate, func(cfg *core.Config) { cfg.BurstCap = 0 })
		rep.Runs++
		if err != nil {
			rep.Failure = failf("burst-identity", "serial counterpart failed: %v", err)
			return rep
		}
		if a, b := projectEmulated(main), projectEmulated(serial); a != b {
			rep.Failure = failf("burst-identity", "burst cap %d changed emulated results:\n  burst:  %s\n  serial: %s",
				c.BurstCap, a, b)
			return rep
		}
	}

	// Zero faults ≡ armed-but-idle: arming the full recovery + disturb
	// machinery with unreachable thresholds must not change emulated time.
	if !c.Faults.Enabled() {
		armed, err := runOnce(c, mutate, armIdleFaults)
		rep.Runs++
		if err != nil {
			rep.Failure = failf("armed-idle", "armed counterpart failed: %v", err)
			return rep
		}
		if main.ProcCycles != armed.ProcCycles || main.GlobalCycles != armed.GlobalCycles ||
			main.Ctrl.Served != armed.Ctrl.Served ||
			main.Ctrl.RowHits != armed.Ctrl.RowHits || main.Ctrl.RowMisses != armed.Ctrl.RowMisses {
			rep.Failure = failf("armed-idle",
				"armed-but-idle faults changed the run: cycles %d vs %d, served %d vs %d, hits %d/%d vs %d/%d",
				main.ProcCycles, armed.ProcCycles, main.Ctrl.Served, armed.Ctrl.Served,
				main.Ctrl.RowHits, main.Ctrl.RowMisses, armed.Ctrl.RowHits, armed.Ctrl.RowMisses)
			return rep
		}
	}

	// Checkpoint ≡ straight-through: re-run the case requesting a
	// quiescent-point checkpoint at a seeded mid-run cycle, then restore
	// the blob into a fresh identical system; both the checkpointed run
	// and the restored run must reproduce the uninterrupted result
	// bit-for-bit. A run that never quiesces past the mark captures no
	// blob and passes vacuously — the snapshot subsystem's graceful-
	// degradation contract, fuzzed across the config space.
	if c.CheckpointFrac > 0 && c.Cores <= 1 && main.ProcCycles >= 8 {
		at := main.ProcCycles * clock.Cycles(c.CheckpointFrac) / 8
		ckRun, blob, err := runCheckpointed(c, mutate, at)
		rep.Runs++
		if err != nil {
			rep.Failure = failf("checkpoint-identity", "checkpointed run failed: %v", err)
			return rep
		}
		if a, b := resultDigest(main), resultDigest(ckRun); a != b {
			rep.Failure = failf("checkpoint-identity",
				"requesting a checkpoint at cycle %d changed the run:\n  plain: %s\n  ckpt:  %s", at, a, b)
			return rep
		}
		if blob != nil {
			restored, err := runRestored(c, mutate, blob)
			rep.Runs++
			if err != nil {
				rep.Failure = failf("checkpoint-identity", "restore from cycle-%d checkpoint failed: %v", at, err)
				return rep
			}
			if a, b := resultDigest(main), resultDigest(restored); a != b {
				rep.Failure = failf("checkpoint-identity",
					"restored run diverged from straight-through (checkpoint at cycle %d, %d-byte blob):\n  full:     %s\n  restored: %s",
					at, len(blob), a, b)
				return rep
			}
		}
	}

	// The paper's envelope: EasyDRAM's time-scaled cycle count vs the same
	// system simulated directly (the Ramulator role). Only the EasyDRAM
	// side takes the mutate hook, so a planted bug shows up as divergence.
	if rep.Comparable {
		base, err := runOnce(c, nil, func(cfg *core.Config) { *cfg = ramulator.Baseline(*cfg) })
		rep.Runs++
		if err != nil {
			rep.Failure = failf("envelope", "baseline run failed: %v", err)
			return rep
		}
		rep.BaselineCycles = int64(base.ProcCycles)
		if base.ProcCycles < EnvelopeMinCycles {
			// Too little work to measure a relative envelope; the case keeps
			// its invariant verdicts but is not envelope-judged.
			rep.Comparable = false
			return rep
		}
		rep.ErrPct = 100 * math.Abs(float64(main.ProcCycles)-float64(base.ProcCycles)) / float64(base.ProcCycles)
		if rep.ErrPct >= EnvelopeMaxPct {
			rep.Failure = failf("envelope", "cycle error %.4f%% >= %.1f%% (easydram %d vs baseline %d cycles)",
				rep.ErrPct, EnvelopeMaxPct, main.ProcCycles, base.ProcCycles)
			return rep
		}
	}
	return rep
}
