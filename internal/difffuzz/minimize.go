package difffuzz

import (
	"easydram/internal/core"
	"easydram/internal/workload"
)

// maxMinimizeRuns bounds the case runs one minimization may consume: each
// candidate costs a full RunCase, and a pathological failure that keeps
// reproducing at every shrink could otherwise walk the whole lattice.
const maxMinimizeRuns = 128

// shrinkers is the transform set Minimize drives: each proposes a strictly
// simpler case (toward smaller kernels and zero-valued axes) or reports
// no-op. Order matters for output quality, not correctness: big structural
// drops (faults, mitigation, topology) go first so later kernel shrinks
// re-validate against the simplest surviving config.
var shrinkers = []struct {
	name  string
	apply func(c Case) (Case, bool)
}{
	{"drop-faults", func(c Case) (Case, bool) {
		if !c.Faults.Enabled() && !c.Faults.Recovery {
			return c, false
		}
		c.Faults = FaultAxes{}
		return c, true
	}},
	{"drop-mitigation", func(c Case) (Case, bool) {
		if c.Mitigation == "" {
			return c, false
		}
		c.Mitigation = ""
		return c, true
	}},
	{"drop-link", func(c Case) (Case, bool) {
		if c.Faults.LinkFailRate == 0 && c.Faults.LinkCorruptRate == 0 && c.Faults.LinkDropRate == 0 {
			return c, false
		}
		c.Faults.LinkFailRate, c.Faults.LinkCorruptRate, c.Faults.LinkDropRate = 0, 0, 0
		return c, true
	}},
	{"drop-chip-rates", func(c Case) (Case, bool) {
		if c.Faults.TransientRate == 0 && c.Faults.StuckAtRate == 0 {
			return c, false
		}
		c.Faults.TransientRate, c.Faults.StuckAtRate = 0, 0
		return c, true
	}},
	{"drop-disturb", func(c Case) (Case, bool) {
		if c.Faults.DisturbThreshold == 0 {
			return c, false
		}
		c.Faults.DisturbThreshold, c.Faults.DisturbJitter = 0, 0
		return c, true
	}},
	{"drop-recovery", func(c Case) (Case, bool) {
		// Valid only once link exec failures are gone (fault.Config.Validate
		// requires recovery with them); an invalid candidate simply fails a
		// different check and is rejected.
		if !c.Faults.Recovery {
			return c, false
		}
		c.Faults.Recovery = false
		return c, true
	}},
	{"halve-channels", func(c Case) (Case, bool) {
		if c.Channels <= 1 {
			return c, false
		}
		c.Channels /= 2
		return c, true
	}},
	{"drop-ranks", func(c Case) (Case, bool) {
		if c.Ranks <= 1 {
			return c, false
		}
		c.Ranks = 1
		return c, true
	}},
	{"line-interleave", func(c Case) (Case, bool) {
		if c.Interleave == "line" {
			return c, false
		}
		c.Interleave = "line"
		return c, true
	}},
	{"default-scheduler", func(c Case) (Case, bool) {
		if c.Scheduler == "fr-fcfs" || c.Scheduler == "" {
			return c, false
		}
		c.Scheduler = "fr-fcfs"
		return c, true
	}},
	{"drop-burst", func(c Case) (Case, bool) {
		if c.BurstCap == 0 {
			return c, false
		}
		c.BurstCap = 0
		return c, true
	}},
	{"halve-burst", func(c Case) (Case, bool) {
		if c.BurstCap < 4 {
			return c, false
		}
		c.BurstCap /= 2
		return c, true
	}},
	{"drop-cores", func(c Case) (Case, bool) {
		// Disarming the multi-core axis puts the case back on the unchanged
		// single-core engine; a contention-dependent failure rejects the
		// shrink, a single-core one keeps reproducing on a simpler system.
		if c.Cores == 0 {
			return c, false
		}
		c.Cores = 0
		return c, true
	}},
	{"drop-shard", func(c Case) (Case, bool) {
		// Disarming the shard axis also puts the main run back on the serial
		// path; a shard-identity failure rejects the shrink (the check no
		// longer fires), so the failure itself is safe.
		if c.ShardWorkers == 0 {
			return c, false
		}
		c.ShardWorkers = 0
		return c, true
	}},
	{"drop-checkpoint", func(c Case) (Case, bool) {
		// Disarming the checkpoint axis drops two runs per candidate; a
		// checkpoint-identity failure rejects the shrink (the check would no
		// longer fire), so the failure itself is safe.
		if c.CheckpointFrac == 0 {
			return c, false
		}
		c.CheckpointFrac = 0
		return c, true
	}},
	{"drop-refresh", func(c Case) (Case, bool) {
		if !c.Refresh {
			return c, false
		}
		c.Refresh = false
		return c, true
	}},
	{"shrink-kernel", func(c Case) (Case, bool) {
		min := workload.MinKernelDim(c.Kernel)
		if c.KernelDim <= min {
			return c, false
		}
		d := c.KernelDim * 3 / 4
		if d < min {
			d = min
		}
		c.KernelDim = d
		return c, true
	}},
}

// Minimize shrinks a failing case while its failure reproduces: each
// transform moves one axis toward its zero value (or the kernel toward its
// minimum size) and is kept only if RunCase still fails the SAME check —
// so an envelope breach stays an envelope breach, never drifting into a
// different bug. The walk repeats until a full pass accepts nothing (or
// the run budget is spent). Returns the minimized case, its final failing
// report, and the number of candidate runs consumed.
//
// mutate must be the same hook the failure was found with: minimizing a
// planted-bug failure without re-planting the bug would shrink to nothing.
func Minimize(c Case, mutate func(*core.Config)) (Case, Report, int) {
	rep := RunCase(c, mutate)
	runs := 1
	if rep.Failure == nil {
		return c, rep, runs
	}
	check := rep.Failure.Check

	for runs < maxMinimizeRuns {
		improved := false
		for _, sh := range shrinkers {
			if runs >= maxMinimizeRuns {
				break
			}
			cand, changed := sh.apply(c)
			if !changed {
				continue
			}
			candRep := RunCase(cand, mutate)
			runs++
			if candRep.Failure != nil && candRep.Failure.Check == check {
				c, rep = cand, candRep
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return c, rep, runs
}
