package difffuzz

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"easydram/internal/core"
)

// SweepOptions parameterises one deterministic sweep.
type SweepOptions struct {
	// Seed is the base seed; case i decodes from Seed + i.
	Seed uint64
	// Cases is the number of cases (0 selects DefaultCases).
	Cases int
	// Workers sizes the worker pool (0 = GOMAXPROCS). The sweep's output is
	// byte-identical at any worker count: results land in index-addressed
	// slots and the digest folds them in index order.
	Workers int
	// Mutate, when non-nil, is applied to every EasyDRAM-side system config
	// (test-only: plant a bug and prove the sweep catches it).
	Mutate func(*core.Config)
}

// DefaultCases is the tier-1 sweep size: large enough to hit every axis
// combination class, small enough for go test ./...
const DefaultCases = 64

// DefaultSeed is the tier-1 sweep's fixed base seed, shared by the test
// sweep, benchall's difffuzz section, and cmd/difffuzz's default, so all
// three walk the same canonical slice of the config space.
const DefaultSeed = 0x5eed

// SweepResult aggregates a sweep.
type SweepResult struct {
	// Reports holds every case's verdict in case order.
	Reports []Report
	// Failures indexes the failed reports (in case order).
	Failures []int
	// Comparable counts envelope-judged cases; MaxErrPct / AvgErrPct
	// aggregate their cycle error.
	Comparable int
	MaxErrPct  float64
	AvgErrPct  float64
	// Runs totals the full system runs consumed.
	Runs int
	// Digest is a SHA-256 over every report in case order — the worker-count
	// and cross-host determinism witness.
	Digest string
}

// Sweep decodes and runs opt.Cases cases across a worker pool.
func Sweep(opt SweepOptions) *SweepResult {
	n := opt.Cases
	if n <= 0 {
		n = DefaultCases
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	reports := make([]Report, n)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				reports[i] = RunCase(Decode(opt.Seed+uint64(i)), opt.Mutate)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	res := &SweepResult{Reports: reports}
	h := sha256.New()
	var errSum float64
	for i, r := range reports {
		res.Runs += r.Runs
		if r.Failure != nil {
			res.Failures = append(res.Failures, i)
		}
		if r.Comparable && r.Failure == nil {
			res.Comparable++
			errSum += r.ErrPct
			if r.ErrPct > res.MaxErrPct {
				res.MaxErrPct = r.ErrPct
			}
		}
		b, err := json.Marshal(r)
		if err != nil {
			b = []byte(err.Error())
		}
		h.Write(b)
		h.Write([]byte{'\n'})
	}
	if res.Comparable > 0 {
		res.AvgErrPct = errSum / float64(res.Comparable)
	}
	res.Digest = hex.EncodeToString(h.Sum(nil))
	return res
}

// Summary renders the sweep verdict in one line.
func (r *SweepResult) Summary() string {
	return fmt.Sprintf("%d cases (%d runs), %d comparable, max err %.4f%%, avg err %.4f%%, %d failures",
		len(r.Reports), r.Runs, r.Comparable, r.MaxErrPct, r.AvgErrPct, len(r.Failures))
}
