package difffuzz

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// RegressionsDir is the committed corpus location, relative to the
// difffuzz package directory. Every file in it replays as a named subtest
// (TestRegressionCorpus) forever.
const RegressionsDir = "testdata/regressions"

// Regression is one serialized failing (or once-failing) case. Committed
// regressions document bugs the harness caught: after the fix lands, the
// replay test pins the case green forever.
type Regression struct {
	// Case replays the configuration (self-describing; Case.Seed records
	// provenance but replay never re-decodes it).
	Case Case `json:"case"`
	// Check and Detail record the failure as originally observed.
	Check  string `json:"check"`
	Detail string `json:"detail"`
	// Note is the human triage summary added when committing the case.
	Note string `json:"note,omitempty"`
}

// Name derives the regression's stable identity: the failed check plus a
// content hash of the case, so distinct cases never collide and re-saving
// the same case is idempotent.
func (r Regression) Name() string {
	b, _ := json.Marshal(r.Case)
	sum := sha256.Sum256(b)
	return fmt.Sprintf("%s-%s", r.Check, hex.EncodeToString(sum[:4]))
}

// Save writes the regression into dir as <name>.json, creating dir as
// needed, and returns the file path.
func Save(dir string, r Regression) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.Name()+".json")
	return path, os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads every *.json regression in dir, sorted by filename. A missing
// directory is an empty corpus, not an error.
func Load(dir string) ([]Regression, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	regs := make([]Regression, 0, len(names))
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var r Regression
		if err := json.Unmarshal(b, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		regs = append(regs, r)
	}
	return regs, nil
}
