package difffuzz

import "testing"

// FuzzDifferential is the native fuzz entry point: the fuzzer mutates a
// raw uint64 seed and the decoder maps it into the config space, so corpus
// entries, tier-1 sweep seeds, and cmd/difffuzz batches all replay through
// the same Decode. Run with
//
//	go test -run '^$' -fuzz FuzzDifferential -fuzztime 30s ./internal/difffuzz
//
// A crasher's seed decodes (Decode) to the failing Case; feed it to
// Minimize / cmd/difffuzz -seed to produce the committed JSON regression.
// Without -fuzz the f.Add seeds below run as ordinary subtests.
func FuzzDifferential(f *testing.F) {
	for i := uint64(0); i < 8; i++ {
		f.Add(DefaultSeed + i)
	}
	// A few far-away probes so the seed corpus is not one contiguous run.
	f.Add(uint64(0))
	f.Add(uint64(0xdeadbeef))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, seed uint64) {
		rep := RunCase(Decode(seed), nil)
		if rep.Failure != nil {
			js, _ := rep.Case.MarshalIndent()
			t.Fatalf("seed %#x failed %s: %s\ncase:\n%s",
				seed, rep.Failure.Check, rep.Failure.Detail, js)
		}
	})
}
