// Package difffuzz is the differential fuzz harness of ROADMAP item 5(a):
// a deterministic, seeded config-space fuzzer that cross-validates the
// EasyDRAM emulator against its direct-simulation baseline (the role
// Ramulator plays in the paper's Figure 13) across the whole configuration
// space — topology, scheduler, burst cap, refresh, time scaling, faults,
// and mitigation — instead of just the golden validation configs.
//
// A Case is a pure function of a uint64 seed. For each case the engine
// runs the EasyDRAM stack and, on comparable (fault-free, time-scaled)
// configs, the derived baseline (ramulator.Baseline), gating the paper's
// <1% max / 0.1% avg cycle-error envelope; on ALL configs it checks
// oracle-free invariants: request conservation, burst-on ≡ burst-off
// bit-identity, run-to-run determinism, zero-fault ≡ fault-armed-but-idle
// identity, and TRR's zero-escaped-flips guarantee.
//
// Three entry points share this one engine: the tier-1 deterministic sweep
// (difffuzz_test.go, runs in go test ./...), the native fuzz target
// (FuzzDifferential), and cmd/difffuzz for long budgeted runs. Failing
// cases auto-minimize (minimize.go) and serialize as JSON regressions
// (corpus.go) that replay as named subtests forever.
package difffuzz

import (
	"encoding/json"
	"fmt"

	"easydram/internal/core"
	"easydram/internal/dram"
	"easydram/internal/fault"
	"easydram/internal/smc"
	"easydram/internal/workload"
)

// FaultAxes is the fuzzer's serializable projection of fault.Config: each
// injection axis is an explicit field, so the minimizer can zero axes one
// at a time and a JSON regression shows at a glance which layers were hot.
type FaultAxes struct {
	// DisturbThreshold > 0 arms activation-disturb injection with that
	// minimum per-row threshold; DisturbJitter spreads per-row thresholds.
	DisturbThreshold int `json:"disturb_threshold,omitempty"`
	DisturbJitter    int `json:"disturb_jitter,omitempty"`
	// TransientRate / StuckAtRate are the chip-level corruption rates.
	TransientRate float64 `json:"transient_rate,omitempty"`
	StuckAtRate   float64 `json:"stuck_at_rate,omitempty"`
	// LinkFailRate / LinkCorruptRate / LinkDropRate are the host-link rates.
	LinkFailRate    float64 `json:"link_fail_rate,omitempty"`
	LinkCorruptRate float64 `json:"link_corrupt_rate,omitempty"`
	LinkDropRate    float64 `json:"link_drop_rate,omitempty"`
	// Recovery arms the SMC's verify-and-retry read path.
	Recovery bool `json:"recovery,omitempty"`
	// Seed salts every fault draw.
	Seed uint64 `json:"seed,omitempty"`
}

// Enabled reports whether any injection axis is armed.
func (f FaultAxes) Enabled() bool {
	return f.DisturbThreshold > 0 || f.TransientRate > 0 || f.StuckAtRate > 0 ||
		f.LinkFailRate > 0 || f.LinkCorruptRate > 0 || f.LinkDropRate > 0
}

// Config lowers the axes to the stack's fault configuration.
func (f FaultAxes) Config() fault.Config {
	return fault.Config{
		Chip: fault.ChipConfig{
			DisturbEnabled:      f.DisturbThreshold > 0,
			DisturbMinThreshold: f.DisturbThreshold,
			DisturbJitter:       f.DisturbJitter,
			TransientReadRate:   f.TransientRate,
			StuckAtRate:         f.StuckAtRate,
			Seed:                f.Seed,
		},
		Link: fault.LinkConfig{
			ExecFailRate:        f.LinkFailRate,
			ReadbackCorruptRate: f.LinkCorruptRate,
			ReadbackDropRate:    f.LinkDropRate,
			Seed:                f.Seed,
		},
		Recovery: fault.RecoveryConfig{Enabled: f.Recovery},
	}
}

// Case is one point of the configuration space: everything needed to
// assemble a system and its workload, decoded from a seed (Decode) or
// deserialized from a committed regression. All fields are value types so
// cases compare with == and round-trip through JSON byte-identically.
type Case struct {
	// Seed is the decoder input that produced this case (0 for hand-written
	// or minimized cases whose fields no longer match their seed).
	Seed uint64 `json:"seed"`

	// Kernel and KernelDim name a workload from the fuzz pool
	// (workload.BuildKernel replays it).
	Kernel    string `json:"kernel"`
	KernelDim int    `json:"kernel_dim"`

	// Channels / Ranks / Interleave select the module topology.
	Channels   int    `json:"channels"`
	Ranks      int    `json:"ranks"`
	Interleave string `json:"interleave"`

	// Scheduler is "fr-fcfs", "fcfs", or "bliss".
	Scheduler string `json:"scheduler"`
	// BurstCap bounds row-hit burst service (0 = serial).
	BurstCap int `json:"burst_cap"`
	// Refresh issues REF every tREFI.
	Refresh bool `json:"refresh"`
	// TimeScaling selects the paper's time-scaled emulation; false runs the
	// processor at the physical clock with the SMC's real cost visible.
	TimeScaling bool `json:"time_scaling"`

	// Faults configures injection; Mitigation ("", "para", "trr") the
	// RowHammer policy.
	Faults     FaultAxes `json:"faults"`
	Mitigation string    `json:"mitigation,omitempty"`

	// CheckpointFrac arms the checkpoint-identity check: when in 1..7 the
	// case is re-run with a quiescent-point checkpoint requested at
	// CheckpointFrac/8 of the straight-through run's cycle count, the blob
	// is restored into a fresh identical system, and the restored run must
	// reproduce the straight-through result bit-for-bit. 0 skips the axis.
	// (Appended at the end of Decode, like every new axis, so older seeds
	// keep decoding to the same earlier-axis values.)
	CheckpointFrac int `json:"checkpoint_frac,omitempty"`

	// ShardWorkers > 1 arms the shard-identity check: the case runs with
	// that many host shard workers and must produce a result bit-identical
	// to the single-worker (serial-path) run — core.Config.ShardWorkers is
	// a pure host-parallelism knob. 0 runs serial and skips the axis.
	ShardWorkers int `json:"shard_workers,omitempty"`

	// Cores > 1 runs the case on a multi-core emulated host: every core runs
	// the case's kernel relocated into its own private address window,
	// contending for the shared memory system. A modeled-system axis (the
	// direct-simulation baseline is single-core, so armed cases are judged on
	// invariants and determinism, not the envelope). 0 or 1 runs the
	// unchanged single-core engine.
	Cores int `json:"cores,omitempty"`
}

// splitmix is SplitMix64, the same stateless hash the fault and variation
// models draw with.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// drawStream yields a deterministic sequence of draws from one seed. Each
// draw is keyed on (seed, ordinal), so inserting a new axis at the end of
// Decode never perturbs earlier axes' draws.
type drawStream struct {
	seed uint64
	n    uint64
}

func (s *drawStream) next() uint64 {
	s.n++
	return splitmix(s.seed ^ s.n*0xbf58476d1ce4e5b9)
}

// mod returns a draw in [0, n).
func (s *drawStream) mod(n uint64) uint64 { return s.next() % n }

// chance reports true with probability num/den.
func (s *drawStream) chance(num, den uint64) bool { return s.mod(den) < num }

// Decode maps a seed to its Case: a pure function, so the tier-1 sweep,
// the native fuzz target, and cmd/difffuzz all explore the same space and
// any failing seed replays everywhere.
//
// The distribution is deliberately biased: most draws are fault-free
// (faults exclude a case from the cycle-error envelope, and the envelope
// is the harness's sharpest oracle) and time-scaled (the paper's primary
// mode), while every axis still gets regular coverage.
func Decode(seed uint64) Case {
	s := &drawStream{seed: splitmix(seed)}
	c := Case{Seed: seed}

	c.Kernel, c.KernelDim = workload.PickKernel(s.next(), s.next())

	c.Channels = 1 << s.mod(3) // 1, 2, 4
	c.Ranks = 1 << s.mod(2)    // 1, 2
	if s.chance(1, 4) {
		c.Interleave = "row"
	} else {
		c.Interleave = "line"
	}

	switch s.mod(4) {
	case 0:
		c.Scheduler = "fcfs"
	case 1:
		c.Scheduler = "bliss"
	default:
		c.Scheduler = "fr-fcfs"
	}

	if s.chance(1, 2) {
		c.BurstCap = 1 << (2 + s.mod(3)) // 4, 8, 16
	}
	c.Refresh = s.chance(3, 4)
	c.TimeScaling = s.chance(3, 4)

	// Fault axes, with zero-injection bias: 5 in 8 cases inject nothing, so
	// the majority of the corpus stays inside the envelope oracle.
	if s.chance(3, 8) {
		f := &c.Faults
		f.Seed = s.next()
		if s.chance(1, 2) {
			f.DisturbThreshold = 16 << s.mod(3) // 16, 32, 64
			f.DisturbJitter = int(s.mod(uint64(f.DisturbThreshold)))
		}
		if s.chance(1, 2) {
			f.TransientRate = 0.02
		}
		if s.chance(1, 3) {
			f.StuckAtRate = 0.002
		}
		if s.chance(1, 3) {
			f.LinkFailRate = 0.01
			f.LinkCorruptRate = 0.01
		}
		if s.chance(1, 4) {
			f.LinkDropRate = 0.01
		}
		// Any injection arms recovery: corrupted readbacks without the
		// verify-and-retry path would (correctly) poison results, and link
		// exec failures hard-require it (fault.Config.Validate).
		f.Recovery = f.Enabled()
		if !f.Enabled() {
			*f = FaultAxes{}
		}
	}

	// Mitigation: mostly off, with PARA and TRR drawn regularly.
	switch s.mod(8) {
	case 0:
		c.Mitigation = "para"
	case 1:
		c.Mitigation = "trr"
		// TRR's structural guarantee needs every victim refreshed before the
		// chip's minimum threshold; with the policy's default threshold 16,
		// disturb minimums below 33 would let flips escape legitimately and
		// poison the invariant. Clamp armed disturb up into the safe range.
		if c.Faults.DisturbThreshold > 0 && c.Faults.DisturbThreshold < 64 {
			c.Faults.DisturbThreshold = 64
		}
	}

	// Checkpoint/restore identity (the durable-snapshot subsystem's fuzzed
	// contract): 1 in 4 cases re-runs with a checkpoint at a seeded mid-run
	// fraction and requires the restored run to match bit-for-bit. Two
	// extra full runs per armed case, so the bias keeps the sweep budget
	// flat-ish.
	if s.chance(1, 4) {
		c.CheckpointFrac = 1 + int(s.mod(6)) // 1/8 .. 6/8 into the run
	}

	// Host-parallel shard workers (appended last, decoder purity): 1 in 3
	// cases runs sharded and must digest-match its single-worker twin. Only
	// multi-channel cases can engage the shard runner, so the draw is gated
	// to keep the armed fraction meaningful.
	if c.Channels > 1 && s.chance(1, 3) {
		c.ShardWorkers = 2 + int(s.mod(3)) // 2, 3, 4
	}

	// Multi-core emulated hosts (appended last, decoder purity): 1 in 4
	// cases runs the kernel on every core of a small multi-core system. The
	// axis trades away the envelope oracle (the baseline is single-core), so
	// the bias keeps most of the corpus comparable. Armed cases disarm the
	// axes multi-core systems reject or force serial anyway: checkpoints are
	// unsupported and the engine pins burst/shard service to the serial path.
	if s.chance(1, 4) {
		c.Cores = 2 + int(s.mod(3)) // 2, 3, 4
		c.CheckpointFrac = 0
		c.ShardWorkers = 0
		c.BurstCap = 0
	}
	return c
}

// Workload instantiates the case's kernel.
func (c Case) Workload() (workload.Kernel, error) {
	return workload.BuildKernel(c.Kernel, c.KernelDim)
}

// SystemConfig assembles the EasyDRAM configuration for the case. Each call
// returns a fresh value (stateful schedulers must never be shared between
// runs).
func (c Case) SystemConfig() (core.Config, error) {
	cfg := core.TimeScaling1GHz()
	if !c.TimeScaling {
		// Direct emulation: the processor follows the physical clock, and the
		// software controller's real cost is visible (the PiDRAM-style mode,
		// here at the emulated core's own rate).
		cfg.Scaling = false
		cfg.ProcPhys = cfg.CPU.Clock
	}

	il, err := dram.ParseInterleave(c.Interleave)
	if err != nil {
		return core.Config{}, err
	}
	cfg.Topology = dram.Topology{Channels: c.Channels, Ranks: c.Ranks, Interleave: il}

	switch c.Scheduler {
	case "", "fr-fcfs":
		cfg.Scheduler = smc.FRFCFS{}
	case "fcfs":
		cfg.Scheduler = smc.FCFS{}
	case "bliss":
		cfg.Scheduler = smc.NewBLISS()
	default:
		return core.Config{}, fmt.Errorf("difffuzz: unknown scheduler %q", c.Scheduler)
	}

	cfg.BurstCap = c.BurstCap
	cfg.RefreshEnabled = c.Refresh
	// Unarmed cases pin ShardWorkers to 1 (not 0 = GOMAXPROCS): the fuzzer's
	// baseline runs must take the serial path so the shard-identity check
	// compares a genuinely sharded run against a genuinely serial one.
	cfg.ShardWorkers = 1
	if c.ShardWorkers > 0 {
		cfg.ShardWorkers = c.ShardWorkers
	}
	cfg.Faults = c.Faults.Config()
	if c.Mitigation != "" {
		cfg.Mitigation = fault.MitigationConfig{Policy: c.Mitigation, Seed: c.Faults.Seed}
	}
	cfg.Cores = c.Cores
	return cfg, nil
}

// String renders the case compactly for test names and logs.
func (c Case) String() string {
	mit := c.Mitigation
	if mit == "" {
		mit = "none"
	}
	return fmt.Sprintf("%s/%d %dch%drk/%s %s burst=%d refresh=%v ts=%v faults=%v mit=%s ck=%d shard=%d cores=%d",
		c.Kernel, c.KernelDim, c.Channels, c.Ranks, c.Interleave, c.Scheduler,
		c.BurstCap, c.Refresh, c.TimeScaling, c.Faults.Enabled(), mit, c.CheckpointFrac, c.ShardWorkers, c.Cores)
}

// MarshalIndent renders the case as the canonical JSON used in regression
// files and digests.
func (c Case) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}
