package difffuzz

import (
	"encoding/json"
	"sync"
	"testing"

	"easydram/internal/core"
	"easydram/internal/smc"
)

// tier1 memoizes the canonical sweep: the envelope test and the
// worker-determinism test share one run of it instead of re-sweeping.
var tier1 = struct {
	once sync.Once
	res  *SweepResult
}{}

func tier1Sweep() *SweepResult {
	tier1.once.Do(func() {
		tier1.res = Sweep(SweepOptions{Seed: DefaultSeed, Cases: DefaultCases})
	})
	return tier1.res
}

// TestTier1Sweep is the deterministic config-space sweep that runs in
// go test ./...: 64 seeded cases across topology, scheduler, burst,
// refresh, time-scaling, fault, and mitigation axes, every one holding its
// invariants and the comparable ones holding the paper's <1% max / 0.1%
// avg cycle-error envelope against the direct-simulation baseline.
func TestTier1Sweep(t *testing.T) {
	res := tier1Sweep()
	t.Log(res.Summary())
	for _, i := range res.Failures {
		r := res.Reports[i]
		t.Errorf("case %d (seed %#x) [%s]\n  %s: %s", i, r.Case.Seed, r.Case, r.Failure.Check, r.Failure.Detail)
	}
	if res.Comparable == 0 {
		t.Fatal("sweep judged no case against the envelope; the comparable predicate or the decoder bias is broken")
	}
	if res.MaxErrPct >= EnvelopeMaxPct {
		t.Errorf("max cycle error %.4f%% breaches the paper's %.1f%% bound", res.MaxErrPct, EnvelopeMaxPct)
	}
	if res.AvgErrPct >= EnvelopeAvgPct {
		t.Errorf("avg cycle error %.4f%% breaches the paper's %.1f%% bound", res.AvgErrPct, EnvelopeAvgPct)
	}
}

// TestSweepDeterministicAcrossWorkerCounts pins the acceptance contract:
// the same seed reproduces the same cases byte-identically at any worker
// count (reports land in index-addressed slots; the digest folds them in
// case order).
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	want := tier1Sweep().Digest
	for _, workers := range []int{1, 3} {
		res := Sweep(SweepOptions{Seed: DefaultSeed, Cases: DefaultCases, Workers: workers})
		if res.Digest != want {
			t.Errorf("workers=%d digest %s != default-pool digest %s", workers, res.Digest, want)
		}
	}
}

// TestShardIdentityReplay replays the shard-identity axis directly: the
// first few decoded cases that arm ShardWorkers run through the full check
// set, which includes the sharded-vs-serial digest comparison. A dedicated
// named test so the CI race smoke can drive the shard runner's worker pool
// under the race detector by name.
func TestShardIdentityReplay(t *testing.T) {
	checked := 0
	for seed := uint64(0); seed < 4096 && checked < 4; seed++ {
		c := Decode(seed)
		if c.ShardWorkers <= 1 || c.Channels <= 1 {
			continue
		}
		checked++
		rep := RunCase(c, nil)
		if rep.Failure != nil {
			t.Errorf("seed %#x [%s]\n  %s: %s", seed, c, rep.Failure.Check, rep.Failure.Detail)
		}
	}
	if checked == 0 {
		t.Fatal("no seed in 0..4095 armed the shard axis; the decoder draw is broken")
	}
}

// TestMultiCoreCaseReplay replays the multi-core axis directly: the first
// few decoded cases that arm Cores run the full check set, which for them
// includes request conservation on the merged traffic and the run-to-run
// determinism double-run of the multi-core merge loop.
func TestMultiCoreCaseReplay(t *testing.T) {
	checked := 0
	for seed := uint64(0); seed < 4096 && checked < 4; seed++ {
		c := Decode(seed)
		if c.Cores <= 1 {
			continue
		}
		checked++
		rep := RunCase(c, nil)
		if rep.Failure != nil {
			t.Errorf("seed %#x [%s]\n  %s: %s", seed, c, rep.Failure.Check, rep.Failure.Detail)
		}
		if rep.Comparable {
			t.Errorf("seed %#x: multi-core case must not be envelope-judged", seed)
		}
	}
	if checked == 0 {
		t.Fatal("no seed in 0..4095 armed the multi-core axis; the decoder draw is broken")
	}
}

// TestDecodeIsPureAndRoundTrips pins the case encoding: decoding is a pure
// function of the seed, every decoded case builds a valid system and
// kernel, and the JSON form (the regression corpus format) round-trips to
// an identical case.
func TestDecodeIsPureAndRoundTrips(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		c := Decode(seed)
		if again := Decode(seed); again != c {
			t.Fatalf("seed %d decoded differently twice:\n%+v\n%+v", seed, c, again)
		}
		if _, err := c.Workload(); err != nil {
			t.Fatalf("seed %d: kernel does not build: %v", seed, err)
		}
		cfg, err := c.SystemConfig()
		if err != nil {
			t.Fatalf("seed %d: config does not build: %v", seed, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("seed %d decodes to an invalid config: %v\ncase: %s", seed, err, c)
		}
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		var rt Case
		if err := json.Unmarshal(b, &rt); err != nil {
			t.Fatalf("seed %d: unmarshal: %v", seed, err)
		}
		if rt != c {
			t.Fatalf("seed %d: JSON round trip changed the case:\n%+v\n%+v", seed, c, rt)
		}
	}
}

// TestDecodeCoversEveryAxis guards the decoder's distribution: a refactor
// that silently collapses an axis (every case single-channel, faults never
// drawn, TRR unreachable) would turn the sweep into golden-config testing
// with extra steps.
func TestDecodeCoversEveryAxis(t *testing.T) {
	seen := map[string]bool{}
	kernels := map[string]bool{}
	for seed := uint64(0); seed < 512; seed++ {
		c := Decode(seed)
		kernels[c.Kernel] = true
		if c.Channels > 1 {
			seen["multi-channel"] = true
		}
		if c.Ranks > 1 {
			seen["multi-rank"] = true
		}
		if c.Interleave == "row" {
			seen["row-interleave"] = true
		}
		if c.Scheduler == "fcfs" {
			seen["fcfs"] = true
		}
		if c.Scheduler == "bliss" {
			seen["bliss"] = true
		}
		if c.BurstCap > 0 {
			seen["burst"] = true
		}
		if !c.Refresh {
			seen["refresh-off"] = true
		}
		if !c.TimeScaling {
			seen["direct-mode"] = true
		}
		if c.Faults.Enabled() {
			seen["faults"] = true
		}
		if c.Faults.DisturbThreshold > 0 {
			seen["disturb"] = true
		}
		if c.Faults.LinkFailRate > 0 {
			seen["link-faults"] = true
		}
		if c.Mitigation == "para" {
			seen["para"] = true
		}
		if c.Mitigation == "trr" {
			seen["trr"] = true
		}
		if c.Comparable() {
			seen["comparable"] = true
		}
		if c.CheckpointFrac > 0 {
			seen["checkpoint"] = true
		}
		if c.ShardWorkers > 1 {
			seen["shard"] = true
		}
		if c.Cores > 1 {
			seen["multi-core"] = true
		}
	}
	for _, axis := range []string{
		"multi-channel", "multi-rank", "row-interleave", "fcfs", "bliss", "burst",
		"refresh-off", "direct-mode", "faults", "disturb", "link-faults", "para",
		"trr", "comparable", "checkpoint", "shard", "multi-core",
	} {
		if !seen[axis] {
			t.Errorf("512 seeds never drew axis %q", axis)
		}
	}
	if len(kernels) < 6 {
		t.Errorf("512 seeds drew only %d distinct kernels: %v", len(kernels), kernels)
	}
}

// lifoSched is the deliberately broken scheduler of the acceptance
// criteria: a legal-looking policy (always serve the NEWEST request) whose
// emulated timing diverges from the baseline's — exactly the class of bug
// the differential envelope exists to catch.
type lifoSched struct{}

func (lifoSched) Name() string { return "lifo-broken" }

func (lifoSched) Pick(table []smc.Entry, openRows []int) int {
	newest := 0
	for i := range table {
		if table[i].Seq > table[newest].Seq {
			newest = i
		}
	}
	return newest
}

func (lifoSched) CloneForChannel() smc.Scheduler { return lifoSched{} }

// TestBrokenSchedulerCaughtAndMinimized plants lifoSched into every
// EasyDRAM-side config (never the baseline), proves the sweep catches the
// divergence, minimizes the first failing case, and replays the minimized
// JSON — the full triage loop a real harness catch would go through.
func TestBrokenSchedulerCaughtAndMinimized(t *testing.T) {
	mutate := func(cfg *core.Config) { cfg.Scheduler = lifoSched{} }

	res := Sweep(SweepOptions{Seed: DefaultSeed, Cases: 32, Mutate: mutate})
	var found *Report
	for _, i := range res.Failures {
		if r := res.Reports[i]; r.Failure.Check == "envelope" {
			found = &r
			break
		}
	}
	if found == nil {
		t.Fatalf("planted broken scheduler was not caught by the envelope: %s", res.Summary())
	}
	t.Logf("caught: [%s] %s", found.Case, found.Failure.Detail)

	minC, minRep, runs := Minimize(found.Case, mutate)
	if minRep.Failure == nil || minRep.Failure.Check != "envelope" {
		t.Fatalf("minimization lost the failure: %+v", minRep.Failure)
	}
	if minC.KernelDim > found.Case.KernelDim || minC.Channels > found.Case.Channels ||
		minC.Ranks > found.Case.Ranks || minC.BurstCap > found.Case.BurstCap {
		t.Errorf("minimized case grew: %s -> %s", found.Case, minC)
	}
	t.Logf("minimized in %d runs: [%s] %s", runs, minC, minRep.Failure.Detail)

	// Serialize, reload, replay: the failure must reproduce from JSON alone.
	dir := t.TempDir()
	path, err := Save(dir, Regression{
		Case: minC, Check: minRep.Failure.Check, Detail: minRep.Failure.Detail,
		Note: "planted lifo scheduler (test-only)",
	})
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	regs, err := Load(dir)
	if err != nil || len(regs) != 1 {
		t.Fatalf("load %s: %v (%d regressions)", path, err, len(regs))
	}
	replay := RunCase(regs[0].Case, mutate)
	if replay.Failure == nil || replay.Failure.Check != "envelope" {
		t.Fatalf("replayed regression did not reproduce: %+v", replay.Failure)
	}
	// And with the bug unplanted, the same case is green — the failure was
	// the mutation, not the harness.
	if clean := RunCase(regs[0].Case, nil); clean.Failure != nil {
		t.Fatalf("minimized case fails even without the planted bug: %s: %s",
			clean.Failure.Check, clean.Failure.Detail)
	}
}

// TestMinimizeKeepsPassingCase pins the no-failure fast path.
func TestMinimizeKeepsPassingCase(t *testing.T) {
	c := Decode(DefaultSeed)
	minC, rep, runs := Minimize(c, nil)
	if rep.Failure != nil {
		t.Fatalf("canonical case fails: %s: %s", rep.Failure.Check, rep.Failure.Detail)
	}
	if minC != c || runs != 1 {
		t.Errorf("minimizing a passing case changed it (runs %d)", runs)
	}
}

// TestRegressionCorpus replays every committed regression as a named
// subtest: a case the harness once caught must stay green forever.
func TestRegressionCorpus(t *testing.T) {
	regs, err := Load(RegressionsDir)
	if err != nil {
		t.Fatalf("load corpus: %v", err)
	}
	if len(regs) == 0 {
		t.Skip("no committed regressions")
	}
	for _, reg := range regs {
		t.Run(reg.Name(), func(t *testing.T) {
			rep := RunCase(reg.Case, nil)
			if rep.Failure != nil {
				t.Errorf("committed regression resurfaced (%s)\n  originally: %s: %s\n  now: %s: %s\n  case: %s",
					reg.Note, reg.Check, reg.Detail, rep.Failure.Check, rep.Failure.Detail, reg.Case)
			}
		})
	}
}
