package cpu

import (
	"testing"

	"easydram/internal/cache"
	"easydram/internal/clock"
	"easydram/internal/mem"
	"easydram/internal/workload"
)

func newTestCore(t *testing.T, cfg Config, ops []workload.Op) *Core {
	t.Helper()
	hier, err := cache.NewHierarchy(cache.JetsonNanoHier())
	if err != nil {
		t.Fatalf("hierarchy: %v", err)
	}
	c, err := New(cfg, hier, workload.NewSliceStream(ops))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := CortexA57()
	bad.Clock = clock.Clock{}
	if err := bad.Validate(); err == nil {
		t.Fatalf("missing clock must fail")
	}
	bad = CortexA57()
	bad.MLP = 0
	if err := bad.Validate(); err == nil {
		t.Fatalf("OoO core without MLP must fail")
	}
	bad = Rocket50()
	bad.IssueWidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatalf("zero issue width must fail")
	}
	if err := Rocket50().Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
}

func TestComputeRespectsBudgetAndWidth(t *testing.T) {
	cfg := CortexA57() // width 2
	c := newTestCore(t, cfg, []workload.Op{{Kind: workload.OpCompute, N: 100}})
	out := c.Step(0, 10)
	if out.Cycles != 10 {
		t.Fatalf("budgeted step consumed %d cycles, want 10", out.Cycles)
	}
	out = c.Step(10, 0)
	if out.Cycles != 40 { // ceil(100/2) - 10
		t.Fatalf("remaining compute = %d cycles, want 40", out.Cycles)
	}
	out = c.Step(50, 0)
	if !out.Finished {
		t.Fatalf("expected Finished, got %+v", out)
	}
	if c.Stats().Instructions != 100 {
		t.Fatalf("instructions = %d", c.Stats().Instructions)
	}
}

func TestInOrderBlocksOnMiss(t *testing.T) {
	c := newTestCore(t, Rocket50(), []workload.Op{{Kind: workload.OpLoad, Addr: 0x100000}})
	out := c.Step(0, 0)
	if len(out.Reqs) != 1 || out.Reqs[0].Kind != mem.Read {
		t.Fatalf("expected one read request, got %+v", out)
	}
	if out.WaitID != out.Reqs[0].ID {
		t.Fatalf("in-order core must block on its own miss")
	}
	c.Deliver(out.WaitID)
	if out := c.Step(1, 0); !out.Finished {
		t.Fatalf("expected Finished, got %+v", out)
	}
}

func TestOoOOverlapsUpToMLP(t *testing.T) {
	cfg := CortexA57()
	cfg.MLP = 3
	var ops []workload.Op
	for i := 0; i < 5; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpLoad, Addr: uint64(i) << 20})
	}
	c := newTestCore(t, cfg, ops)
	var ids []uint64
	now := clock.Cycles(0)
	for i := 0; i < 3; i++ {
		out := c.Step(now, 0)
		if len(out.Reqs) != 1 || out.WaitID != 0 {
			t.Fatalf("miss %d should issue without blocking: %+v", i, out)
		}
		ids = append(ids, out.Reqs[0].ID)
		now += out.Cycles
	}
	// Fourth miss: MSHRs exhausted, must wait for the oldest.
	out := c.Step(now, 0)
	if out.WaitID != ids[0] || len(out.Reqs) != 0 {
		t.Fatalf("MLP-full step = %+v, want wait on %d", out, ids[0])
	}
	c.Deliver(ids[0])
	out = c.Step(now, 0)
	if len(out.Reqs) != 1 {
		t.Fatalf("after delivery the core must issue again: %+v", out)
	}
}

func TestROBWindowStalls(t *testing.T) {
	cfg := CortexA57()
	cfg.ROBWindow = 16
	ops := []workload.Op{
		{Kind: workload.OpLoad, Addr: 1 << 20},
		{Kind: workload.OpCompute, N: 1000},
	}
	c := newTestCore(t, cfg, ops)
	out := c.Step(0, 0)
	id := out.Reqs[0].ID
	// Run compute until the window limit forces a stall.
	now := out.Cycles
	for {
		out = c.Step(now, 4)
		if out.WaitID == id {
			break
		}
		if out.Finished {
			t.Fatalf("finished without a ROB stall")
		}
		now += out.Cycles
		if now > 64 {
			t.Fatalf("no ROB stall within %d cycles of a 16-cycle window", now)
		}
	}
}

func TestDependentLoadBlocks(t *testing.T) {
	cfg := CortexA57()
	ops := []workload.Op{
		{Kind: workload.OpLoad, Addr: 1 << 20},
		{Kind: workload.OpLoad, Addr: 2 << 20, Dep: true},
	}
	c := newTestCore(t, cfg, ops)
	out := c.Step(0, 0)
	id := out.Reqs[0].ID
	out = c.Step(out.Cycles, 0)
	if out.WaitID != id {
		t.Fatalf("dependent load must wait for the producer, got %+v", out)
	}
	c.Deliver(id)
	out = c.Step(5, 0)
	if len(out.Reqs) != 1 {
		t.Fatalf("dependent load should issue after delivery: %+v", out)
	}
}

func TestStoreWriteAllocate(t *testing.T) {
	c := newTestCore(t, CortexA57(), []workload.Op{{Kind: workload.OpStore, Addr: 1 << 20}})
	out := c.Step(0, 0)
	if len(out.Reqs) != 1 || out.Reqs[0].Kind != mem.Read {
		t.Fatalf("store miss must fetch the line (write-allocate): %+v", out)
	}
	if out.WaitID != 0 {
		t.Fatalf("OoO store must not block")
	}
	if c.Stats().MemFills != 1 {
		t.Fatalf("MemFills = %d", c.Stats().MemFills)
	}
}

func TestFlushEmitsWriteback(t *testing.T) {
	ops := []workload.Op{
		{Kind: workload.OpStore, Addr: 0x40},
		{Kind: workload.OpFlush, Addr: 0x40},
	}
	c := newTestCore(t, CortexA57(), ops)
	out := c.Step(0, 0) // store: miss + fill
	c.Deliver(out.Reqs[0].ID)
	out = c.Step(1, 0) // flush
	if len(out.Reqs) != 1 || out.Reqs[0].Kind != mem.Writeback || !out.Reqs[0].Posted {
		t.Fatalf("flush of dirty line must post a writeback: %+v", out)
	}
	if c.Stats().Flushes != 1 {
		t.Fatalf("Flushes = %d", c.Stats().Flushes)
	}
}

func TestFlushCleanLineIsQuiet(t *testing.T) {
	c := newTestCore(t, CortexA57(), []workload.Op{{Kind: workload.OpFlush, Addr: 0x40}})
	out := c.Step(0, 0)
	if len(out.Reqs) != 0 {
		t.Fatalf("flushing an uncached line must not emit requests: %+v", out)
	}
}

func TestRowCloneFenceProtocol(t *testing.T) {
	ops := []workload.Op{{Kind: workload.OpRowClone, Addr: 8192, Src: 0}}
	c := newTestCore(t, CortexA57(), ops)
	out := c.Step(0, 0)
	if !out.Fence {
		t.Fatalf("RowClone must fence first: %+v", out)
	}
	c.FenceDone()
	out = c.Step(1, 0)
	if len(out.Reqs) != 1 || out.Reqs[0].Kind != mem.RowClone || out.WaitID != out.Reqs[0].ID {
		t.Fatalf("RowClone must issue a blocking request: %+v", out)
	}
	if out.Reqs[0].Src != 0 || out.Reqs[0].Addr != 8192 {
		t.Fatalf("RowClone addresses wrong: %+v", out.Reqs[0])
	}
}

func TestBarrierAndMark(t *testing.T) {
	ops := []workload.Op{
		{Kind: workload.OpBarrier},
		{Kind: workload.OpMark},
	}
	c := newTestCore(t, CortexA57(), ops)
	out := c.Step(0, 0)
	if !out.Fence {
		t.Fatalf("barrier must fence")
	}
	c.FenceDone()
	out = c.Step(1, 0)
	if !out.Mark {
		t.Fatalf("expected mark outcome: %+v", out)
	}
}

func TestInstructionCapTruncates(t *testing.T) {
	cfg := CortexA57()
	cfg.MaxInstructions = 50
	c := newTestCore(t, cfg, []workload.Op{
		{Kind: workload.OpCompute, N: 40},
		{Kind: workload.OpCompute, N: 40},
		{Kind: workload.OpCompute, N: 40},
	})
	total := clock.Cycles(0)
	for i := 0; i < 10; i++ {
		out := c.Step(total, 0)
		if out.Finished {
			if c.Stats().Instructions >= 120 {
				t.Fatalf("cap did not truncate: %d instructions", c.Stats().Instructions)
			}
			return
		}
		total += out.Cycles
	}
	t.Fatalf("never finished")
}

func TestL2HitCostsMoreThanL1(t *testing.T) {
	cfg := Rocket50()
	ops := []workload.Op{
		{Kind: workload.OpLoad, Addr: 0x40},
		{Kind: workload.OpLoad, Addr: 0x40},
	}
	c := newTestCore(t, cfg, ops)
	out := c.Step(0, 0)
	c.Deliver(out.WaitID)
	out = c.Step(1, 0)
	if out.Cycles != cfg.L1Lat {
		t.Fatalf("L1 hit cost = %d, want %d", out.Cycles, cfg.L1Lat)
	}
}

func TestNextLinePrefetcher(t *testing.T) {
	cfg := CortexA57()
	cfg.NextLinePrefetch = true
	ops := []workload.Op{
		{Kind: workload.OpLoad, Addr: 1 << 20},
		{Kind: workload.OpLoad, Addr: 1<<20 + 64},
	}
	c := newTestCore(t, cfg, ops)
	out := c.Step(0, 0)
	// Demand miss + posted prefetch of the next line.
	if len(out.Reqs) != 2 {
		t.Fatalf("expected demand+prefetch, got %d requests", len(out.Reqs))
	}
	if !out.Reqs[1].Posted || out.Reqs[1].Addr != 1<<20+64 {
		t.Fatalf("prefetch request wrong: %+v", out.Reqs[1])
	}
	c.Deliver(out.Reqs[0].ID)
	// The second load now hits thanks to the prefetch.
	out = c.Step(2, 0)
	if len(out.Reqs) != 0 {
		t.Fatalf("prefetched line should hit: %+v", out)
	}
	if c.Stats().Prefetches != 1 {
		t.Fatalf("Prefetches = %d", c.Stats().Prefetches)
	}
}
