package cpu

import (
	"easydram/internal/clock"
	"easydram/internal/snapshot"
	"easydram/internal/workload"
)

// Checkpoint hooks. Checkpoints are taken only at engine quiescent points
// (no outstanding misses, no pending fence), so the core serializes just
// its persistent execution position: the stream replay count, the current
// op (quiescence can land mid-compute-op or between a RowClone's fence and
// its issue), the ID allocator, and statistics. The op stream itself is a
// deterministic generator — restore rebuilds it and fast-forwards to the
// recorded position.

// Quiescent reports whether the core holds no in-flight machinery: no
// outstanding misses, no pending fence, no dependence target. The engine
// requires it (alongside its own empty queues) before taking a checkpoint.
func (c *Core) Quiescent() bool {
	return len(c.outstanding) == 0 && !c.fencePending && c.lastLoadMiss == 0
}

// SaveState serializes the core's persistent state. Call only when
// Quiescent().
func (c *Core) SaveState(e *snapshot.Enc) {
	e.U64(c.opsConsumed)
	e.Bool(c.opValid)
	e.Byte(byte(c.op.Kind))
	e.I64(c.op.N)
	e.U64(c.op.Addr)
	e.U64(c.op.Src)
	e.Bool(c.op.Dep)
	e.I64(int64(c.computeRemaining))
	e.U64(c.nextID)
	e.Bool(c.rcFenced)
	s := &c.stats
	for _, v := range []int64{
		s.Instructions, s.Loads, s.Stores, s.ComputeCycles,
		s.L1Hits, s.L2Hits, s.MemReads, s.MemFills,
		s.Writebacks, s.Flushes, s.RowClones, s.Prefetches,
		int64(s.StallCycles),
	} {
		e.I64(v)
	}
}

// LoadState restores state written by SaveState into a freshly built core,
// fast-forwarding its (rebuilt) op stream past the consumed ops. The
// stream must be the same kernel the checkpointed run executed; a shorter
// stream fails the decoder.
func (c *Core) LoadState(d *snapshot.Dec) {
	n := d.U64()
	c.opValid = d.Bool()
	c.op.Kind = workload.OpKind(d.Byte())
	c.op.N = d.I64()
	c.op.Addr = d.U64()
	c.op.Src = d.U64()
	c.op.Dep = d.Bool()
	c.computeRemaining = clock.Cycles(d.I64())
	c.nextID = d.U64()
	c.rcFenced = d.Bool()
	s := &c.stats
	for _, p := range []*int64{
		&s.Instructions, &s.Loads, &s.Stores, &s.ComputeCycles,
		&s.L1Hits, &s.L2Hits, &s.MemReads, &s.MemFills,
		&s.Writebacks, &s.Flushes, &s.RowClones, &s.Prefetches,
	} {
		*p = d.I64()
	}
	s.StallCycles = clock.Cycles(d.I64())
	if d.Err() != nil {
		return
	}
	if c.nextID == 0 {
		d.Failf("cpu: zero request-ID allocator")
		return
	}
	var op workload.Op
	for i := uint64(0); i < n; i++ {
		if !c.strm.Next(&op) {
			d.Failf("cpu: stream exhausted at op %d of %d during replay", i, n)
			return
		}
	}
	c.opsConsumed = n
}
