// Package cpu models the processors EasyDRAM emulates: a simple in-order
// blocking core (the PiDRAM-class 50 MHz Rocket) and an out-of-order core
// with memory-level parallelism and a reorder-buffer window (the BOOM core
// configured to mirror a Cortex-A57, §6).
//
// The model is memory-behaviour-accurate rather than ISA-accurate: it
// executes workload op streams through a two-level cache hierarchy and
// surfaces last-level-cache misses as main-memory requests. All state
// advances in emulated processor cycles; the engine owns the time-scaling
// counters and tells the core how far it may run.
package cpu

import (
	"fmt"

	"easydram/internal/cache"
	"easydram/internal/clock"
	"easydram/internal/mem"
	"easydram/internal/workload"
)

// Config parameterises a core model.
type Config struct {
	Name string
	// Clock is the emulated clock of the core.
	Clock clock.Clock
	// InOrder cores block on every cache miss.
	InOrder bool
	// IssueWidth is the number of instructions retired per cycle when no
	// memory stalls occur.
	IssueWidth int
	// MLP is the maximum number of outstanding main-memory misses.
	MLP int
	// ROBWindow is the maximum number of cycles the core may run ahead of
	// its oldest outstanding miss before stalling (reorder-buffer limit).
	ROBWindow clock.Cycles
	// L1Lat / L2Lat are load-to-use latencies charged on L1 and L2 hits.
	L1Lat clock.Cycles
	L2Lat clock.Cycles
	// FlushCost is the cost of the memory-mapped CLFLUSH store.
	FlushCost clock.Cycles
	// MissIssueCost is the pipeline cost of issuing a miss that does not
	// block (out-of-order cores).
	MissIssueCost clock.Cycles
	// MaxInstructions truncates the run after this many instructions
	// (Ramulator-style partial simulation; 0 means unlimited).
	MaxInstructions int64
	// NextLinePrefetch enables a simple L2 next-line prefetcher: every
	// demand miss also fetches the following line (posted, so the core
	// never waits on it, but it occupies the memory controller).
	NextLinePrefetch bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case !c.Clock.Valid():
		return fmt.Errorf("cpu %s: clock not set", c.Name)
	case c.IssueWidth <= 0:
		return fmt.Errorf("cpu %s: issue width must be positive", c.Name)
	case !c.InOrder && c.MLP <= 0:
		return fmt.Errorf("cpu %s: out-of-order core needs MLP >= 1", c.Name)
	case !c.InOrder && c.ROBWindow <= 0:
		return fmt.Errorf("cpu %s: out-of-order core needs a ROB window", c.Name)
	case c.L1Lat <= 0 || c.L2Lat <= 0:
		return fmt.Errorf("cpu %s: cache latencies must be positive", c.Name)
	}
	return nil
}

// CortexA57 approximates the Jetson Nano's Cortex-A57 at 1.43 GHz: 3-wide
// out-of-order, modest MLP, 128-entry ROB.
func CortexA57() Config {
	return Config{
		Name:          "cortex-a57",
		Clock:         clock.ProcA57,
		InOrder:       false,
		IssueWidth:    2,
		MLP:           6,
		ROBWindow:     128,
		L1Lat:         2,
		L2Lat:         19,
		FlushCost:     4,
		MissIssueCost: 1,
	}
}

// Rocket50 approximates PiDRAM's in-order Rocket core at 50 MHz.
func Rocket50() Config {
	return Config{
		Name:       "rocket-50mhz",
		Clock:      clock.Proc50MHz,
		InOrder:    true,
		IssueWidth: 1,
		L1Lat:      2,
		L2Lat:      14,
		FlushCost:  4,
	}
}

// Boom1GHz is the validation reference core (§6): the BOOM configuration
// emulated at 1 GHz.
func Boom1GHz() Config {
	cfg := CortexA57()
	cfg.Name = "boom-1ghz"
	cfg.Clock = clock.Proc1GHz
	return cfg
}

// Stats counts core events.
type Stats struct {
	Instructions  int64
	Loads         int64
	Stores        int64
	ComputeCycles int64
	L1Hits        int64
	L2Hits        int64
	MemReads      int64
	MemFills      int64 // store-allocate fills
	Writebacks    int64
	Flushes       int64
	RowClones     int64
	Prefetches    int64
	StallCycles   clock.Cycles
}

// Add accumulates o into s (multi-core results aggregate per-core counters).
func (s *Stats) Add(o Stats) {
	s.Instructions += o.Instructions
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.ComputeCycles += o.ComputeCycles
	s.L1Hits += o.L1Hits
	s.L2Hits += o.L2Hits
	s.MemReads += o.MemReads
	s.MemFills += o.MemFills
	s.Writebacks += o.Writebacks
	s.Flushes += o.Flushes
	s.RowClones += o.RowClones
	s.Prefetches += o.Prefetches
	s.StallCycles += o.StallCycles
}

// Outcome is the result of one core step.
type Outcome struct {
	// Cycles consumed by this step (the engine advances Proc by this).
	Cycles clock.Cycles
	// Reqs are memory requests issued this step (may be several: a demand
	// miss plus eviction writebacks).
	Reqs []mem.Request
	// WaitID, when non-zero, blocks the core until that response arrives.
	WaitID uint64
	// Fence, when true, blocks the core until all outstanding requests
	// (including posted writebacks) have completed.
	Fence bool
	// Mark records a measurement-window boundary.
	Mark bool
	// Finished reports the op stream is exhausted and nothing is pending.
	Finished bool
}

type outstandingMiss struct {
	id    uint64
	issue clock.Cycles
}

// CacheView is the cache surface a core executes against: the single-core
// two-level cache.Hierarchy, or one core's cache.CoreView onto the shared
// multi-core fabric. The methods mirror cache.Hierarchy exactly (see its
// docs for the writeback-slice aliasing contract).
type CacheView interface {
	// Access performs a load or store, reporting the satisfying level
	// (1, 2, or 3 = main-memory fill) and dirty victim lines to write back.
	Access(addr uint64, write bool) (level int, writebacks []uint64)
	// WouldMiss reports whether addr would miss every level, without
	// perturbing replacement state.
	WouldMiss(addr uint64) bool
	// Flush removes addr's line, reporting whether a writeback is required.
	Flush(addr uint64) (writeback bool)
}

var (
	_ CacheView = (*cache.Hierarchy)(nil)
	_ CacheView = (*cache.CoreView)(nil)
)

// Core executes one op stream over a cache hierarchy.
type Core struct {
	cfg  Config
	hier CacheView
	strm workload.Stream

	op               workload.Op
	opValid          bool
	computeRemaining clock.Cycles

	nextID uint64
	// idStride is the request-ID increment (1 for a single core). The
	// multi-core engine gives core i of N the IDs i+1, i+1+N, i+1+2N, …:
	// interleaved-dense, so the engine's slot rings stay compact and a
	// request's owning core is (ID-1) mod N.
	idStride    uint64
	outstanding []outstandingMiss
	// lastLoadMiss is the request ID of the most recent load if it is
	// still outstanding (dependence target), else 0.
	lastLoadMiss uint64
	fencePending bool
	// rcFenced marks that the pending RowClone op has completed its fence.
	rcFenced bool

	reqScratch []mem.Request
	stats      Stats

	// opsConsumed counts ops pulled from the stream, the replay position a
	// checkpoint restore fast-forwards a rebuilt stream to (see state.go).
	opsConsumed uint64
}

// New returns a core executing strm over hier.
func New(cfg Config, hier CacheView, strm workload.Stream) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hier == nil {
		return nil, fmt.Errorf("cpu %s: nil cache hierarchy", cfg.Name)
	}
	if strm == nil {
		return nil, fmt.Errorf("cpu %s: nil op stream", cfg.Name)
	}
	return &Core{cfg: cfg, hier: hier, strm: strm, nextID: 1, idStride: 1}, nil
}

// SetIDSpace places the core's request IDs on an interleaved-dense lattice:
// first, first+stride, first+2*stride, …. The multi-core engine calls it
// before the first step so N cores share one dense ID window (core i of N
// gets first=i+1, stride=N); single-core construction keeps the default
// dense sequence 1, 2, 3, ….
func (c *Core) SetIDSpace(first, stride uint64) {
	c.nextID = first
	c.idStride = stride
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Stats returns a snapshot of event counters.
func (c *Core) Stats() Stats { return c.stats }

// Outstanding reports the number of in-flight misses.
func (c *Core) Outstanding() int { return len(c.outstanding) }

// Deliver informs the core that the response for request id arrived.
func (c *Core) Deliver(id uint64) {
	for i := range c.outstanding {
		if c.outstanding[i].id == id {
			c.outstanding = append(c.outstanding[:i], c.outstanding[i+1:]...)
			break
		}
	}
	if c.lastLoadMiss == id {
		c.lastLoadMiss = 0
	}
}

// FenceDone informs the core a requested fence has completed.
func (c *Core) FenceDone() { c.fencePending = false }

// AddStall accounts cycles the engine spent unblocking the core.
func (c *Core) AddStall(n clock.Cycles) { c.stats.StallCycles += n }

func (c *Core) newID() uint64 {
	id := c.nextID
	c.nextID += c.idStride
	return id
}

// maxBatchCycles bounds one Step call's internal batch. Returning early
// with only accumulated cycles is always equivalent to cycle-at-a-time
// stepping (the next call continues where the batch stopped), so the bound
// only keeps the engine's cycle-cap checks reasonably granular on
// compute-dominated streams.
const maxBatchCycles clock.Cycles = 1 << 16

// Step advances the core by at most budget cycles starting at emulated
// processor cycle now, executing a *batch* of operations per call: runs of
// non-memory work (compute, cache hits, clean flushes) are consumed in one
// internal loop and the call returns at the next memory event — a miss
// issuing requests, a wait, a fence, a mark — or at the budget boundary.
// The engine/core boundary is therefore crossed per event rather than per
// cycle.
//
// A budget <= 0 means unlimited. Batching contract: the caller must cap
// budget so that no response-release point falls strictly inside the batch
// (the engines cap it at the next ready release), because the core's wait
// and back-pressure decisions read state that response delivery mutates.
// Under that cap every decision inside the batch observes exactly the state
// a cycle-at-a-time engine would have shown it, so batched execution is
// cycle-exact (pinned by the golden cycle-count tests). As with single-op
// stepping, the final operation of a batch may overshoot the budget by its
// own atomic cost. The engine must honor Outcome.WaitID/Fence before
// calling Step again.
func (c *Core) Step(now clock.Cycles, budget clock.Cycles) Outcome {
	if budget <= 0 || budget > maxBatchCycles {
		budget = maxBatchCycles
	}
	if c.fencePending {
		return Outcome{Fence: true}
	}
	var acc clock.Cycles // cycles consumed by the batch so far
	for {
		// ROB window: the core cannot run arbitrarily far past its oldest
		// outstanding miss. Re-checked before every op at the batch's
		// current cycle (now+acc), exactly as per-call stepping would.
		// When a wait arises mid-batch the batch returns what it has; the
		// next call reports the wait itself after the engine has delivered
		// any responses maturing at the batch boundary.
		if !c.cfg.InOrder && len(c.outstanding) > 0 {
			oldest := c.outstanding[0]
			if (now+acc)-oldest.issue >= c.cfg.ROBWindow {
				if acc > 0 {
					return Outcome{Cycles: acc}
				}
				return Outcome{WaitID: oldest.id}
			}
		}
		if !c.opValid {
			truncated := c.cfg.MaxInstructions > 0 && c.stats.Instructions >= c.cfg.MaxInstructions
			if truncated || !c.strm.Next(&c.op) {
				if acc > 0 {
					return Outcome{Cycles: acc}
				}
				if len(c.outstanding) > 0 || c.fencePending {
					return Outcome{Fence: true}
				}
				return Outcome{Finished: true}
			}
			c.opsConsumed++
			c.opValid = true
			if c.op.Kind == workload.OpCompute {
				w := clock.Cycles(c.cfg.IssueWidth)
				c.computeRemaining = (clock.Cycles(c.op.N) + w - 1) / w
				if c.computeRemaining == 0 {
					c.computeRemaining = 1
				}
				c.stats.Instructions += c.op.N
				c.stats.ComputeCycles += int64(c.computeRemaining)
			}
		}

		switch c.op.Kind {
		case workload.OpCompute:
			take := c.computeRemaining
			if take > budget-acc {
				take = budget - acc
			}
			c.computeRemaining -= take
			if c.computeRemaining == 0 {
				c.opValid = false
			}
			acc += take
			if acc >= budget {
				return Outcome{Cycles: acc}
			}
			continue

		case workload.OpLoad, workload.OpStore:
			// A dependent op cannot issue until the producing load returns.
			if c.op.Dep && c.lastLoadMiss != 0 {
				if acc > 0 {
					return Outcome{Cycles: acc}
				}
				return Outcome{WaitID: c.lastLoadMiss}
			}
			isStore := c.op.Kind == workload.OpStore
			// Back-pressure before touching the hierarchy: with all MSHRs
			// busy, an access that would miss cannot even issue.
			if !c.cfg.InOrder && len(c.outstanding) >= c.cfg.MLP && c.hier.WouldMiss(c.op.Addr) {
				if acc > 0 {
					return Outcome{Cycles: acc}
				}
				return Outcome{WaitID: c.outstanding[0].id}
			}
			c.stats.Instructions++
			if isStore {
				c.stats.Stores++
			} else {
				c.stats.Loads++
			}
			level, writebacks := c.hier.Access(c.op.Addr, isStore)
			c.opValid = false
			dep := c.op.Dep
			if level < 3 {
				// Cache hit: pure cycles, the batch keeps running.
				if level == 1 {
					c.stats.L1Hits++
					acc += c.hitCost(c.cfg.L1Lat, dep)
				} else {
					c.stats.L2Hits++
					acc += c.hitCost(c.cfg.L2Lat, dep)
				}
				if acc >= budget {
					return Outcome{Cycles: acc}
				}
				continue
			}
			// Main-memory miss: the batch ends here so the requests carry
			// the issue cycle they would under per-op stepping.
			id := c.newID()
			c.reqScratch = c.reqScratch[:0]
			c.reqScratch = append(c.reqScratch, mem.Request{
				ID: id, Kind: mem.Read, Addr: lineAlign(c.op.Addr),
			})
			if isStore {
				c.stats.MemFills++
			} else {
				c.stats.MemReads++
			}
			for _, wb := range writebacks {
				c.stats.Writebacks++
				c.reqScratch = append(c.reqScratch, mem.Request{
					ID: c.newID(), Kind: mem.Writeback, Addr: wb, Posted: true,
				})
			}
			if c.cfg.NextLinePrefetch {
				next := lineAlign(c.op.Addr) + cache.LineBytes
				if c.hier.WouldMiss(next) {
					c.stats.Prefetches++
					c.hier.Access(next, false) // install into the hierarchy
					c.reqScratch = append(c.reqScratch, mem.Request{
						ID: c.newID(), Kind: mem.Read, Addr: next, Posted: true,
					})
				}
			}
			issue := c.cfg.MissIssueCost
			if issue <= 0 {
				issue = 1
			}
			o := Outcome{Cycles: acc + issue, Reqs: c.reqScratch}
			if c.cfg.InOrder {
				o.WaitID = id
			} else {
				c.outstanding = append(c.outstanding, outstandingMiss{id: id, issue: now + acc})
				if !isStore {
					c.lastLoadMiss = id
				}
			}
			return o

		case workload.OpFlush:
			c.stats.Instructions++
			c.stats.Flushes++
			c.opValid = false
			acc += c.cfg.FlushCost
			if c.hier.Flush(c.op.Addr) {
				c.reqScratch = append(c.reqScratch[:0], mem.Request{
					ID: c.newID(), Kind: mem.Writeback, Addr: lineAlign(c.op.Addr), Posted: true,
				})
				return Outcome{Cycles: acc, Reqs: c.reqScratch}
			}
			if acc >= budget {
				return Outcome{Cycles: acc}
			}
			continue

		case workload.OpRowClone:
			// The clone must observe all prior stores and writebacks: fence
			// first, then issue a blocking RowClone request. Handled as its
			// own step so the fence/issue sequencing stays explicit.
			if acc > 0 {
				return Outcome{Cycles: acc}
			}
			if !c.rcFenced {
				c.rcFenced = true
				c.fencePending = true
				return Outcome{Cycles: 1, Fence: true}
			}
			c.rcFenced = false
			c.stats.Instructions++
			c.stats.RowClones++
			c.opValid = false
			id := c.newID()
			c.reqScratch = append(c.reqScratch[:0], mem.Request{
				ID: id, Kind: mem.RowClone, Addr: c.op.Addr, Src: c.op.Src,
			})
			return Outcome{Cycles: 2, Reqs: c.reqScratch, WaitID: id}

		case workload.OpBarrier:
			c.opValid = false
			c.fencePending = true
			return Outcome{Cycles: acc + 1, Fence: true}

		case workload.OpMark:
			// Marks are recorded by the engine at the pre-advance cycle, so
			// a mark always terminates the preceding batch first.
			if acc > 0 {
				return Outcome{Cycles: acc}
			}
			c.opValid = false
			return Outcome{Mark: true}

		default:
			panic(fmt.Sprintf("cpu %s: unknown op kind %v", c.cfg.Name, c.op.Kind))
		}
	}
}

// hitCost converts a load-to-use latency into charged cycles. Out-of-order
// cores hide most of an independent hit's latency behind other work, but a
// dependent (pointer-chase) access pays the full load-to-use latency.
func (c *Core) hitCost(lat clock.Cycles, dep bool) clock.Cycles {
	if c.cfg.InOrder || dep {
		return lat
	}
	charged := lat / 4
	if charged < 1 {
		charged = 1
	}
	return charged
}

func lineAlign(a uint64) uint64 { return a &^ uint64(cache.LineBytes-1) }
