package techniques

import (
	"testing"

	"easydram/internal/alloc"
	"easydram/internal/core"
)

func newBitwiseSystem(t *testing.T) (*core.System, *alloc.Allocator) {
	t.Helper()
	cfg := core.TimeScalingA57()
	cfg.DRAM = core.TechniqueDRAM()
	cfg.DRAM.RowsPerBank = 4096
	cfg.DRAM.Ideal = true // deterministic data checks
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := alloc.New(sys.Mapper(), 512, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return sys, a
}

func TestFindBitwiseTriple(t *testing.T) {
	sys, a := newBitwiseSystem(t)
	tr, err := FindBitwiseTriple(a)
	if err != nil {
		t.Fatalf("FindBitwiseTriple: %v", err)
	}
	mA, mB, mC := sys.Mapper().Map(tr.A), sys.Mapper().Map(tr.B), sys.Mapper().Map(tr.Ctl)
	if mA.Bank != mB.Bank || mA.Bank != mC.Bank {
		t.Fatalf("triple spans banks: %v %v %v", mA, mB, mC)
	}
	if mA.Row|mB.Row != mC.Row {
		t.Fatalf("control row %d is not the OR of %d and %d", mC.Row, mA.Row, mB.Row)
	}
	// Rows are reserved: a second search returns a different triple.
	tr2, err := FindBitwiseTriple(a)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.A == tr.A {
		t.Fatalf("second triple reused reserved rows")
	}
}

func TestBulkANDEndToEnd(t *testing.T) {
	sys, a := newBitwiseSystem(t)
	tr, err := FindBitwiseTriple(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := InitRowPattern(sys, tr.A, 0b1100_1100); err != nil {
		t.Fatal(err)
	}
	if err := InitRowPattern(sys, tr.B, 0b1010_1010); err != nil {
		t.Fatal(err)
	}
	if err := InitRowPattern(sys, tr.Ctl, 0x00); err != nil { // AND
		t.Fatal(err)
	}
	ok, err := BulkAND(sys, tr)
	if err != nil {
		t.Fatalf("BulkAND: %v", err)
	}
	if !ok {
		t.Fatalf("operation did not commit")
	}
	got, err := ReadRowByte(sys, tr.Ctl)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0b1000_1000 {
		t.Fatalf("AND result %08b, want 10001000", got)
	}
}

func TestBulkOREndToEnd(t *testing.T) {
	sys, a := newBitwiseSystem(t)
	tr, err := FindBitwiseTriple(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := InitRowPattern(sys, tr.A, 0b1100_0000); err != nil {
		t.Fatal(err)
	}
	if err := InitRowPattern(sys, tr.B, 0b0000_0011); err != nil {
		t.Fatal(err)
	}
	if err := InitRowPattern(sys, tr.Ctl, 0xFF); err != nil { // OR
		t.Fatal(err)
	}
	ok, err := BulkOR(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("operation did not commit")
	}
	got, err := ReadRowByte(sys, tr.A)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0b1100_0011 {
		t.Fatalf("OR result %08b, want 11000011", got)
	}
}

func TestBitwiseOnRealChipCanFail(t *testing.T) {
	cfg := core.TimeScalingA57()
	cfg.DRAM = core.TechniqueDRAM()
	cfg.DRAM.RowsPerBank = 4096
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := alloc.New(sys.Mapper(), 512, 4096)
	if err != nil {
		t.Fatal(err)
	}
	okCount, n := 0, 0
	for i := 0; i < 32; i++ {
		tr, err := FindBitwiseTriple(a)
		if err != nil {
			break
		}
		ok, err := sys.BitwiseMAJ(tr.A, tr.B)
		if err != nil {
			t.Fatal(err)
		}
		n++
		if ok {
			okCount++
		}
	}
	if n == 0 {
		t.Fatalf("no triples tested")
	}
	if okCount == 0 || okCount == n {
		t.Fatalf("variation model should gate success: %d/%d", okCount, n)
	}
}
