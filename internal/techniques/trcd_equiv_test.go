package techniques

import (
	"testing"

	"easydram/internal/core"
)

// The whole-row profiling fast path must be observationally identical to
// the per-line path: same weak-row sets, same ProfileStats, same
// MinReliableTRCD grid results — on both the scaled and unscaled system
// configurations. The tests below run each path on its own fresh system
// (profiling outcomes are a pure function of the seeded variation model and
// the requested tRCD, so fresh systems are directly comparable).

func equivConfigs() map[string]core.Config {
	scaled := core.TimeScalingA57()
	scaled.DRAM = core.TechniqueDRAM()
	scaled.DRAM.RowsPerBank = 4096
	unscaled := core.NoTimeScaling()
	unscaled.DRAM = core.TechniqueDRAM()
	unscaled.DRAM.RowsPerBank = 4096
	return map[string]core.Config{"scaled": scaled, "unscaled": unscaled}
}

func mustSystem(t *testing.T, cfg core.Config) *core.System {
	t.Helper()
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestProfileWeakRowsRowPathEquivalence(t *testing.T) {
	const span = 192 * 8192
	for name, cfg := range equivConfigs() {
		t.Run(name, func(t *testing.T) {
			rowSys := mustSystem(t, cfg)
			lineSys := mustSystem(t, cfg)

			weakRow, statsRow, err := ProfileWeakRows(rowSys, 0, span, ReducedTRCD)
			if err != nil {
				t.Fatalf("row path: %v", err)
			}
			weakLine, statsLine, err := ProfileWeakRowsPerLine(lineSys, 0, span, ReducedTRCD)
			if err != nil {
				t.Fatalf("per-line path: %v", err)
			}

			if len(weakRow) != len(weakLine) {
				t.Fatalf("weak-row counts differ: row path %d, per-line %d", len(weakRow), len(weakLine))
			}
			for i := range weakRow {
				if weakRow[i] != weakLine[i] {
					t.Fatalf("weak set diverges at %d: row path %#x, per-line %#x", i, weakRow[i], weakLine[i])
				}
			}
			if statsRow != statsLine {
				t.Fatalf("ProfileStats differ: row path %+v, per-line %+v", statsRow, statsLine)
			}

			// The round-trip reduction is the point of the fast path: one
			// host request per row versus up to one per line.
			rowTrips, lineTrips := rowSys.HostRequests(), lineSys.HostRequests()
			if rowTrips == 0 || lineTrips == 0 {
				t.Fatalf("host request counters not tracking (row %d, line %d)", rowTrips, lineTrips)
			}
			if lineTrips < 10*rowTrips {
				t.Fatalf("round-trip reduction %.1fx < 10x (row path %d, per-line %d)",
					float64(lineTrips)/float64(rowTrips), rowTrips, lineTrips)
			}
		})
	}
}

func TestMinReliableTRCDRowPathEquivalence(t *testing.T) {
	for name, cfg := range equivConfigs() {
		t.Run(name, func(t *testing.T) {
			rowSys := mustSystem(t, cfg)
			lineSys := mustSystem(t, cfg)
			nominal := rowSys.Chip().Timing().TRCD
			for i := 0; i < 24; i++ {
				base := uint64(i) * 8192
				viaRow, err := MinReliableTRCD(rowSys, base, nominal)
				if err != nil {
					t.Fatal(err)
				}
				viaLine, err := MinReliableTRCDPerLine(lineSys, base, nominal)
				if err != nil {
					t.Fatal(err)
				}
				if viaRow != viaLine {
					t.Fatalf("row %d: whole-row path %v, per-line path %v", i, viaRow, viaLine)
				}
			}
		})
	}
}

// TestProfileRowStripeMatchesWholeRowPath pins the bank-stripe program
// against repeated single-row requests: per-row pass/fail and the failing
// row's leading-line count must agree, and the stripe must cost one host
// round-trip where the whole-row path costs one per row.
func TestProfileRowStripeMatchesWholeRowPath(t *testing.T) {
	for name, cfg := range equivConfigs() {
		t.Run(name, func(t *testing.T) {
			stripeSys := mustSystem(t, cfg)
			rowSys := mustSystem(t, cfg)
			m := stripeSys.Mapper()
			rowBytes := uint64(m.RowBytes())
			lines := m.RowBytes() / 64
			const rows = 48
			// Consecutive DRAM rows of bank 0 sit one bank rotation apart
			// physically under the default mapping.
			bankStride := rowBytes * uint64(m.Banks())

			before := stripeSys.HostRequests()
			rowLines, gotOK, err := stripeSys.ProfileRowStripe(0, rows, ReducedTRCD)
			if err != nil {
				t.Fatal(err)
			}
			if stripeSys.HostRequests()-before != 1 {
				t.Fatalf("stripe cost %d round-trips, want 1", stripeSys.HostRequests()-before)
			}
			if len(rowLines) != rows {
				t.Fatalf("stripe returned %d rows, want %d", len(rowLines), rows)
			}

			wantOK := true
			for r := 0; r < rows; r++ {
				okLines, ok, err := rowSys.ProfileRow(uint64(r)*bankStride, ReducedTRCD)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					wantOK = false
				} else {
					okLines = lines
				}
				if rowLines[r] != okLines {
					t.Fatalf("stripe row %d: %d leading lines, whole-row path says %d", r, rowLines[r], okLines)
				}
			}
			if gotOK != wantOK {
				t.Fatalf("stripe ok=%v, whole-row path ok=%v", gotOK, wantOK)
			}
		})
	}
}
