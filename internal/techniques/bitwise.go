package techniques

import (
	"fmt"

	"easydram/internal/alloc"
	"easydram/internal/core"
	"easydram/internal/dram"
)

// In-DRAM bulk bitwise operations (extension; the paper's §9 lists
// ComputeDRAM/Ambit as techniques EasyDRAM can host). A many-row activation
// computes the bitwise majority of three rows; presetting the third
// ("control") row to all-zeros yields AND of the operands, all-ones yields
// OR. The operation is destructive: all three rows end with the result.

// BitwiseTriple is a set of row addresses usable for one in-DRAM bitwise
// operation: Ctl's row index is the bitwise OR of A's and B's, all three in
// one subarray.
type BitwiseTriple struct {
	A, B, Ctl uint64
}

// FindBitwiseTriple allocates a row triple suitable for many-row activation
// inside one subarray: row indices rA, rB with rA|rB = rCtl, all three
// free. It scans the allocator's subarrays for aligned rows of the form
// (base+2^k, base+2^j, base+2^k+2^j).
func FindBitwiseTriple(a *alloc.Allocator) (BitwiseTriple, error) {
	rowBytes := uint64(a.RowBytes())
	banks := uint64(16)
	// Row r of bank 0 sits at linear block r*banks. Try (4,2,6)-style
	// offsets within successive aligned groups of 8 rows.
	for group := uint64(0); group < 4096; group += 8 {
		rA, rB := group+4, group+2
		rCtl := rA | rB // group+6
		baseA := rA * banks * rowBytes
		baseB := rB * banks * rowBytes
		baseC := rCtl * banks * rowBytes
		if !a.SameSubarray(baseA, baseB) || !a.SameSubarray(baseA, baseC) {
			continue
		}
		if a.TakeRow(baseA) != nil {
			continue
		}
		if a.TakeRow(baseB) != nil {
			continue
		}
		if a.TakeRow(baseC) != nil {
			continue
		}
		return BitwiseTriple{A: baseA, B: baseB, Ctl: baseC}, nil
	}
	return BitwiseTriple{}, fmt.Errorf("techniques: no free bitwise triple found")
}

// BulkAND computes, in DRAM, the bitwise AND of the rows at t.A and t.B,
// leaving the result in all three rows of the triple. The control row must
// already hold all-zeros (use InitRowPattern). Returns whether the chip
// committed the operation.
func BulkAND(sys *core.System, t BitwiseTriple) (bool, error) {
	return sys.BitwiseMAJ(t.A, t.B)
}

// BulkOR is BulkAND with an all-ones control row.
func BulkOR(sys *core.System, t BitwiseTriple) (bool, error) {
	return sys.BitwiseMAJ(t.A, t.B)
}

// InitRowPattern fills a row with a repeated byte via the chip's debug
// store (host-side setup; a production flow would stream WR commands).
// Requires a data-tracking chip.
func InitRowPattern(sys *core.System, rowBase uint64, pattern byte) error {
	if !sys.Chip().Config().TrackData {
		return fmt.Errorf("techniques: bitwise setup needs a data-tracking chip")
	}
	line := make([]byte, dram.LineBytes)
	for i := range line {
		line[i] = pattern
	}
	rowBytes := uint64(sys.Mapper().RowBytes())
	for off := uint64(0); off < rowBytes; off += dram.LineBytes {
		// System.PokeLine routes by the decoded channel/rank coordinates,
		// so the pattern lands on the module that will serve the bitwise
		// request under any topology.
		a := sys.Mapper().Map(rowBase + off)
		if !sys.PokeLine(a, line) {
			return fmt.Errorf("techniques: poke failed at %v", a)
		}
	}
	return nil
}

// ReadRowByte returns the first byte of the row's first line (result
// checks in tests and examples).
func ReadRowByte(sys *core.System, rowBase uint64) (byte, error) {
	buf := make([]byte, dram.LineBytes)
	if !sys.PeekLine(sys.Mapper().Map(rowBase), buf) {
		return 0, fmt.Errorf("techniques: peek needs a data-tracking chip")
	}
	return buf[0], nil
}
