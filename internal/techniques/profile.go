package techniques

import (
	"fmt"
	"sort"

	"easydram/internal/clock"
	"easydram/internal/core"
	"easydram/internal/dram"
	"easydram/internal/smc"
	"easydram/internal/snapshot"
)

// The durable-characterization bridge (ROADMAP item 3): one profiling pass
// produces a snapshot.Profile — per-channel weak-row sets and Bloom
// filters keyed to the silicon — that round-trips through the snapshot
// store and rebuilds the reduced-tRCD scheduler hook without re-profiling.

// ProfileCompatKey canonically identifies a characterization outcome: the
// variation seed (the silicon), the module topology, the profiled tRCD,
// the profiling granularity (row size and bank count, i.e. the address
// mapping), the profiled range, and the filter's false-positive budget. A
// stored profile loads only under an identical key; any drift degrades to
// re-characterization.
func ProfileCompatKey(sys *core.System, start, end uint64, rcd clock.PS, fpRate float64) string {
	cfg := sys.Config()
	m := sys.Mapper()
	return fmt.Sprintf("profile:v1|seed=%d|topo=%s|rcd=%d|rowbytes=%d|banks=%d|range=%#x-%#x|fp=%g",
		cfg.DRAM.Seed, sys.Topology(), int64(rcd), m.RowBytes(), m.Banks(), start, end, fpRate)
}

// Characterize profiles [start, end) at rcd across every channel of the
// module and assembles the durable artifact: per-channel weak-row sets
// plus a per-channel Bloom filter sized for the observed weak population
// at fpRate. The filter seed ties to the variation seed so a rebuilt
// provider is bit-identical to the one the pass would hand out directly.
func Characterize(sys *core.System, start, end uint64, rcd clock.PS, fpRate float64) (*snapshot.Profile, error) {
	weak, stats, err := ProfileWeakRows(sys, start, end, rcd)
	if err != nil {
		return nil, err
	}
	p := &snapshot.Profile{
		Key:   ProfileCompatKey(sys, start, end, rcd, fpRate),
		Start: start,
		End:   end,
		RCDps: int64(rcd),
	}
	m := sys.Mapper()
	nch := sys.Topology().Channels
	perChan := make([][]uint64, nch)
	for _, key := range weak {
		ch := m.Map(key).Chan
		perChan[ch] = append(perChan[ch], key)
	}
	// Row and line counts are re-derived per channel from the covered-row
	// walk so the stored totals match ProfileStats exactly.
	rowsPerChan := make([]int, nch)
	for _, g := range coveredRows(m, start, end) {
		rowsPerChan[g.ch] += len(g.rows)
	}
	for ch := 0; ch < nch; ch++ {
		filter, err := BuildWeakRowFilter(perChan[ch], fpRate, sys.Config().DRAM.Seed+uint64(ch))
		if err != nil {
			return nil, err
		}
		cp := snapshot.ChannelProfile{
			Chan:     ch,
			WeakRows: perChan[ch],
			Rows:     rowsPerChan[ch],
			Filter:   filter,
		}
		p.Channels = append(p.Channels, cp)
	}
	// LinesTried is a pass-global number; attribute it to channel 0 so the
	// profile's totals reproduce the ProfileStats the pass reported.
	if nch > 0 {
		p.Channels[0].LinesTried = stats.LinesTried
	}
	return p, nil
}

// AttachMinRCD runs the MinReliableTRCD grid over the given row-key
// addresses and records the results in the profile, so a stored artifact
// also answers "what is this row's minimum reliable tRCD" without
// re-profiling (the Figure 12 quantity).
func AttachMinRCD(sys *core.System, p *snapshot.Profile, rowKeys []uint64, nominal clock.PS) error {
	m := sys.Mapper()
	keys := append([]uint64(nil), rowKeys...)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		min, err := MinReliableTRCD(sys, key, nominal)
		if err != nil {
			return err
		}
		ch := m.Map(key).Chan
		for i := range p.Channels {
			if p.Channels[i].Chan == ch {
				p.Channels[i].MinRCDRows = append(p.Channels[i].MinRCDRows, key)
				p.Channels[i].MinRCDPS = append(p.Channels[i].MinRCDPS, int64(min))
				break
			}
		}
	}
	return nil
}

// ProviderFromProfile rebuilds the reduced-tRCD scheduler hook from a
// stored profile: each channel's controller consults its own channel's
// filter. The hook is bit-identical to the one a fresh characterization
// pass would produce under the same key.
func ProviderFromProfile(p *snapshot.Profile, m smc.Mapper, reduced clock.PS) smc.TRCDProvider {
	byChan := map[int]smc.TRCDProvider{}
	for i := range p.Channels {
		c := &p.Channels[i]
		if c.Filter != nil {
			byChan[c.Chan] = TRCDProvider(c.Filter, m, p.Start, p.End, reduced)
		}
	}
	return func(a dram.Addr) clock.PS {
		if prov, ok := byChan[a.Chan]; ok {
			return prov(a)
		}
		return 0 // unprofiled channel: nominal
	}
}
