// Package techniques implements the paper's two case studies on top of the
// EasyDRAM stack: RowClone bulk copy/initialisation (§7) and DRAM access
// latency reduction via tRCD profiling with a Bloom filter of weak rows
// (§8). Both are pure software: they drive the EasyAPI, the allocator, and
// host-side characterization, exactly as a user of the framework would.
package techniques

import (
	"fmt"

	"easydram/internal/alloc"
	"easydram/internal/core"
	"easydram/internal/workload"
)

// ClonabilityTester reports whether RowClone from the row at src to the row
// at dst is reliable. Implementations profile real (modelled) DRAM.
type ClonabilityTester func(src, dst uint64) (bool, error)

// SystemTester profiles clonability on sys with the given trial count
// (PiDRAM uses 1000 trials; profiling on the chip model is deterministic,
// so a handful suffices — the trade-off is documented in DESIGN.md).
func SystemTester(sys *core.System, trials int) ClonabilityTester {
	return func(src, dst uint64) (bool, error) {
		return sys.TestRowClone(src, dst, trials)
	}
}

// maxCandidates bounds the destination-row search per source row.
const maxCandidates = 8

// PlanCopy builds the RowClone execution plan for copying size bytes out of
// the contiguous source region at srcBase. For every source row the
// allocator searches its subarray for a clonable destination row; rows with
// no clonable destination fall back to CPU loads/stores into a freshly
// allocated row (§7.1 "Source and Target Row Allocation").
func PlanCopy(a *alloc.Allocator, srcBase uint64, size int, test ClonabilityTester, flush bool) (workload.RowClonePlan, error) {
	plan := workload.RowClonePlan{
		Name:     fmt.Sprintf("rowclone-copy-%d", size),
		RowBytes: a.RowBytes(),
		Flush:    flush,
	}
	for _, srcRow := range a.Rows(srcBase, size) {
		var chosen uint64
		found := false
		for _, cand := range a.FreeRowsInSubarray(srcRow, maxCandidates) {
			ok, err := test(srcRow, cand)
			if err != nil {
				return plan, fmt.Errorf("techniques: clonability test: %w", err)
			}
			if ok {
				chosen = cand
				found = true
				break
			}
		}
		if found {
			if err := a.TakeRow(chosen); err != nil {
				return plan, err
			}
			plan.Actions = append(plan.Actions, workload.RowAction{Clone: true, Src: srcRow, Dst: chosen})
			continue
		}
		dst, err := a.AllocContiguous(1)
		if err != nil {
			return plan, err
		}
		plan.Actions = append(plan.Actions, workload.RowAction{Clone: false, Src: srcRow, Dst: dst})
	}
	return plan, nil
}

// maxDonorsPerSubarray bounds the pattern rows reserved per subarray. The
// paper allocates one source row per subarray; we extend the allocator to
// recruit up to two donors, because with a single donor the per-pair
// clonability failure rate makes fallback the dominant cost for Init in
// every configuration (DESIGN.md §4.3 documents this deviation).
const maxDonorsPerSubarray = 2

// PlanInit builds the RowClone execution plan for initialising the
// contiguous size-byte region at dstBase with a fixed pattern. Pattern
// source rows are reserved per touched subarray (initialised by the CPU,
// outside the measured window); destination rows that cannot be cloned from
// any of their subarray's pattern rows fall back to CPU stores (§7.2
// footnote 6).
func PlanInit(a *alloc.Allocator, dstBase uint64, size int, test ClonabilityTester, flush bool) (workload.RowClonePlan, error) {
	plan := workload.RowClonePlan{
		Name:     fmt.Sprintf("rowclone-init-%d", size),
		RowBytes: a.RowBytes(),
		Flush:    flush,
		Init:     true,
	}
	donors := make(map[[2]int][]uint64) // (bank, subarray) -> pattern rows
	for _, dstRow := range a.Rows(dstBase, size) {
		var key [2]int
		key[0], key[1] = a.SubarrayOf(dstRow)

		cloned := false
		for _, src := range donors[key] {
			ok, err := test(src, dstRow)
			if err != nil {
				return plan, fmt.Errorf("techniques: clonability test: %w", err)
			}
			if ok {
				plan.Actions = append(plan.Actions, workload.RowAction{Clone: true, Src: src, Dst: dstRow})
				cloned = true
				break
			}
		}
		for !cloned && len(donors[key]) < maxDonorsPerSubarray {
			free := a.FreeRowsInSubarray(dstRow, 1)
			if len(free) == 0 {
				break
			}
			src := free[0]
			if err := a.TakeRow(src); err != nil {
				return plan, err
			}
			donors[key] = append(donors[key], src)
			plan.InitSources = append(plan.InitSources, src)
			ok, err := test(src, dstRow)
			if err != nil {
				return plan, fmt.Errorf("techniques: clonability test: %w", err)
			}
			if ok {
				plan.Actions = append(plan.Actions, workload.RowAction{Clone: true, Src: src, Dst: dstRow})
				cloned = true
			}
		}
		if !cloned {
			plan.Actions = append(plan.Actions, workload.RowAction{Clone: false, Dst: dstRow})
		}
	}
	return plan, nil
}

// FallbackFraction reports the fraction of plan actions that fell back to
// CPU operations.
func FallbackFraction(p workload.RowClonePlan) float64 {
	if len(p.Actions) == 0 {
		return 0
	}
	n := 0
	for _, act := range p.Actions {
		if !act.Clone {
			n++
		}
	}
	return float64(n) / float64(len(p.Actions))
}
