package techniques

import (
	"testing"

	"easydram/internal/alloc"
	"easydram/internal/core"
	"easydram/internal/workload"
)

func newTechSystem(t *testing.T, ideal bool) *core.System {
	t.Helper()
	cfg := core.TimeScalingA57()
	cfg.DRAM = core.TechniqueDRAM()
	cfg.DRAM.RowsPerBank = 4096
	cfg.DRAM.Ideal = ideal
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func newTechAllocator(t *testing.T, sys *core.System) *alloc.Allocator {
	t.Helper()
	a, err := alloc.New(sys.Mapper(), 512, 4096)
	if err != nil {
		t.Fatalf("alloc.New: %v", err)
	}
	return a
}

func TestPlanCopySearchesClonableDestinations(t *testing.T) {
	sys := newTechSystem(t, false)
	a := newTechAllocator(t, sys)
	src, err := a.AllocContiguous(16)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanCopy(a, src, 16*8192, SystemTester(sys, 2), false)
	if err != nil {
		t.Fatalf("PlanCopy: %v", err)
	}
	if len(plan.Actions) != 16 {
		t.Fatalf("plan has %d actions, want 16", len(plan.Actions))
	}
	// With ~85% per-pair clonability and an 8-candidate search, fallback
	// should be essentially zero.
	if fb := FallbackFraction(plan); fb > 0.1 {
		t.Fatalf("copy fallback fraction %.2f too high", fb)
	}
	// Every clone destination must share the source's subarray.
	for _, act := range plan.Actions {
		if act.Clone && !a.SameSubarray(act.Src, act.Dst) {
			t.Fatalf("clone pair %x->%x crosses subarrays", act.Src, act.Dst)
		}
	}
}

func TestPlanCopyAllFallbackWhenNothingClones(t *testing.T) {
	sys := newTechSystem(t, false)
	a := newTechAllocator(t, sys)
	src, err := a.AllocContiguous(4)
	if err != nil {
		t.Fatal(err)
	}
	never := func(src, dst uint64) (bool, error) { return false, nil }
	plan, err := PlanCopy(a, src, 4*8192, never, false)
	if err != nil {
		t.Fatal(err)
	}
	if fb := FallbackFraction(plan); fb != 1 {
		t.Fatalf("fallback fraction = %.2f, want 1", fb)
	}
	// Fallback rows still get destinations.
	for _, act := range plan.Actions {
		if act.Dst == 0 {
			t.Fatalf("fallback action missing destination")
		}
	}
}

func TestPlanInitUsesSubarrayDonors(t *testing.T) {
	sys := newTechSystem(t, false)
	a := newTechAllocator(t, sys)
	dst, err := a.AllocContiguous(32) // spans two rows in each of 16 banks
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanInit(a, dst, 32*8192, SystemTester(sys, 2), false)
	if err != nil {
		t.Fatalf("PlanInit: %v", err)
	}
	if len(plan.Actions) != 32 {
		t.Fatalf("plan has %d actions", len(plan.Actions))
	}
	if !plan.Init {
		t.Fatalf("init plan must set Init")
	}
	if len(plan.InitSources) == 0 {
		t.Fatalf("init plan has no pattern rows")
	}
	// Donors must never be destination rows.
	dsts := map[uint64]bool{}
	for _, act := range plan.Actions {
		dsts[act.Dst] = true
	}
	for _, s := range plan.InitSources {
		if dsts[s] {
			t.Fatalf("pattern row %x is also a destination", s)
		}
	}
	// Every clone's source must be a registered pattern row in the same
	// subarray.
	srcs := map[uint64]bool{}
	for _, s := range plan.InitSources {
		srcs[s] = true
	}
	for _, act := range plan.Actions {
		if act.Clone {
			if !srcs[act.Src] {
				t.Fatalf("clone source %x is not a pattern row", act.Src)
			}
			if !a.SameSubarray(act.Src, act.Dst) {
				t.Fatalf("init clone crosses subarrays")
			}
		}
	}
}

func TestPlanInitIdealChipHasNoFallback(t *testing.T) {
	sys := newTechSystem(t, true)
	a := newTechAllocator(t, sys)
	dst, err := a.AllocContiguous(16)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanInit(a, dst, 16*8192, SystemTester(sys, 1), false)
	if err != nil {
		t.Fatal(err)
	}
	if fb := FallbackFraction(plan); fb != 0 {
		t.Fatalf("ideal chip must have zero fallback, got %.2f", fb)
	}
}

func TestProfileWeakRowsMatchesGroundTruth(t *testing.T) {
	sys := newTechSystem(t, false)
	const span = 256 * 8192 // 256 row blocks
	weak, st, err := ProfileWeakRows(sys, 0, span, ReducedTRCD)
	if err != nil {
		t.Fatalf("ProfileWeakRows: %v", err)
	}
	vm := sys.Chip().Variation()
	truth := 0
	for i := 0; i < 256; i++ {
		a := sys.Mapper().Map(uint64(i) * 8192)
		if !vm.Strong(a.Bank, a.Row) {
			truth++
		}
	}
	if len(weak) != truth {
		t.Fatalf("profiled %d weak rows, ground truth %d", len(weak), truth)
	}
	if st.Rows != 256 {
		t.Fatalf("profiled %d rows", st.Rows)
	}
	if st.StrongFraction() < 0.5 {
		t.Fatalf("strong fraction %.2f implausible", st.StrongFraction())
	}
}

func TestMinReliableTRCDAgainstModel(t *testing.T) {
	sys := newTechSystem(t, false)
	vm := sys.Chip().Variation()
	nominal := sys.Chip().Timing().TRCD
	for i := 0; i < 32; i++ {
		base := uint64(i) * 8192
		a := sys.Mapper().Map(base)
		got, err := MinReliableTRCD(sys, base, nominal)
		if err != nil {
			t.Fatal(err)
		}
		if got != vm.MinTRCDRow(a.Bank, a.Row) {
			t.Fatalf("row %d: profiled %v, model %v", i, got, vm.MinTRCDRow(a.Bank, a.Row))
		}
	}
}

func TestTRCDProviderSemantics(t *testing.T) {
	sys := newTechSystem(t, false)
	weak, _, err := ProfileWeakRows(sys, 0, 128*8192, ReducedTRCD)
	if err != nil {
		t.Fatal(err)
	}
	filter, err := BuildWeakRowFilter(weak, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	provider := TRCDProvider(filter, sys.Mapper(), 0, 128*8192, ReducedTRCD)
	vm := sys.Chip().Variation()
	reduced, nominal := 0, 0
	for i := 0; i < 128; i++ {
		a := sys.Mapper().Map(uint64(i) * 8192)
		got := provider(a)
		if !vm.Strong(a.Bank, a.Row) && got != 0 {
			t.Fatalf("weak row %d offered reduced tRCD — reliability violation", i)
		}
		if got == 0 {
			nominal++
		} else {
			reduced++
		}
	}
	if reduced == 0 {
		t.Fatalf("no rows got the reduced timing")
	}
	// Rows outside the profiled range are conservatively nominal.
	out := sys.Mapper().Map(uint64(4000) * 8192)
	if provider(out) != 0 {
		t.Fatalf("unprofiled row must stay nominal")
	}
}

func TestBuildWeakRowFilterEmpty(t *testing.T) {
	f, err := BuildWeakRowFilter(nil, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Contains(12345) {
		t.Fatalf("empty weak set must contain nothing")
	}
}

func TestFallbackFractionEmptyPlan(t *testing.T) {
	if FallbackFraction(workload.RowClonePlan{}) != 0 {
		t.Fatalf("empty plan fallback must be 0")
	}
}
