package techniques

import (
	"fmt"
	"sort"

	"easydram/internal/bender"
	"easydram/internal/bloom"
	"easydram/internal/clock"
	"easydram/internal/core"
	"easydram/internal/dram"
	"easydram/internal/smc"
)

// ReducedTRCD is the aggressive tRCD the technique uses for strong rows
// (§8.1: rows reliable at <=9.0 ns are strong).
const ReducedTRCD = clock.PS(9000)

// profileStripeRows is the bank-stripe size ProfileWeakRows requests per
// host round-trip. The Bender program capability is bender.StripeRowsMax
// (64 rows, the readback-buffer bound), but per-request throughput on the
// emulation host peaks well below it: an 8-row stripe's readback (~64 KiB)
// stays cache-resident through the produce-then-scan pass, while 16+ rows
// fall off a cache cliff and run slower than single-row requests. Eight
// keeps the 8x round-trip reduction AND the fastest measured rows/sec.
const profileStripeRows = 8

// The scan stripe must fit the Bender program capability.
var _ [bender.StripeRowsMax - profileStripeRows]struct{}

// RCDLevels is the characterization grid of Figure 12.
var RCDLevels = []clock.PS{9000, 9500, 10000, 10500}

// ProfileStats summarises a characterization pass.
type ProfileStats struct {
	Rows       int
	WeakRows   int
	LinesTried int
}

// StrongFraction reports the measured fraction of strong rows.
func (s ProfileStats) StrongFraction() float64 {
	if s.Rows == 0 {
		return 0
	}
	return float64(s.Rows-s.WeakRows) / float64(s.Rows)
}

// ProfileWeakRows characterizes every DRAM row the physical address range
// [start, end) touches at the reduced tRCD (§8.1), on every channel of the
// module (rows are enumerated through the topology mapper, so channel
// interleaving is handled; the former single-channel restriction is gone).
// A row is weak if any of its lines fails. The returned slice holds the
// weak rows' keys — the physical address of each row's first line,
// channel coordinate included — ascending.
//
// Rows are profiled in bank stripes: one host round-trip and one Bender
// program covers up to 64 consecutive same-bank rows (the readback-buffer
// bound, bender.StripeRowsMax) — down from one round-trip per row, and two
// orders of magnitude below the original one per line. A stripe reports the
// leading reliable lines, so when a weak row interrupts it the scan records
// that row and resumes the stripe just past it; weak-row sets and
// ProfileStats stay identical to the per-line path
// (ProfileWeakRowsPerLine), which remains as a compatibility shim and as
// the equivalence-test reference.
func ProfileWeakRows(sys *core.System, start, end uint64, rcd clock.PS) ([]uint64, ProfileStats, error) {
	var stats ProfileStats
	var weak []uint64
	lines := sys.Mapper().RowBytes() / int(dram.LineBytes)

	for _, group := range coveredRows(sys.Mapper(), start, end) {
		refs := group.rows
		for i := 0; i < len(refs); {
			// Extend the stripe while DRAM rows stay consecutive.
			n := 1
			for n < profileStripeRows && i+n < len(refs) && refs[i+n].row == refs[i].row+n {
				n++
			}
			rowLines, _, err := sys.ProfileRowStripe(refs[i].key, n, rcd)
			if err != nil {
				return nil, stats, fmt.Errorf("techniques: profiling rows at %#x: %w", refs[i].key, err)
			}
			if len(rowLines) != n {
				return nil, stats, fmt.Errorf("techniques: stripe at %#x returned %d rows, want %d", refs[i].key, len(rowLines), n)
			}
			for r, okLines := range rowLines {
				stats.Rows++
				if okLines == lines {
					stats.LinesTried += lines
				} else {
					// Mirror the per-line path's stop-at-first-failure
					// accounting: the failing line is the last one tried.
					stats.LinesTried += okLines + 1
					stats.WeakRows++
					weak = append(weak, refs[i+r].key)
				}
			}
			i += n
		}
	}
	sort.Slice(weak, func(i, j int) bool { return weak[i] < weak[j] })
	return weak, stats, nil
}

// rowRef identifies one DRAM row covered by a profiling range: its row
// index within its (channel, bank) group and its row key — the physical
// address of the row's first line, which routes host profiling requests to
// the owning channel and keys the weak-row set.
type rowRef struct {
	row int
	key uint64
}

// rowGroup is the covered rows of one (channel, bank), rows ascending.
type rowGroup struct {
	ch, bank int
	rows     []rowRef
}

// rowCoord is one deduplicated (channel, bank, row) coordinate.
type rowCoord struct{ ch, bank, row int }

// coveredRows enumerates the DRAM rows the physical range [start, end)
// touches, grouped by (channel, bank) and sorted — the topology-aware
// generalisation of the old single-channel row-block walk. When a
// rowBytes-aligned block's first and last lines land in the same DRAM row
// the whole block is that row (a line-interleaved multi-channel block
// scatters its first and last lines to different channels, so it never
// passes the probe), and the block costs two Map calls instead of one per
// line; blocks that fail the probe fall back to a per-line walk with a
// per-channel last-row cache, since a channel's consecutive lines share a
// row. On a single-channel module the result is exactly the
// rowBytes-aligned blocks of [start&^(rowBytes-1), end).
func coveredRows(m smc.Mapper, start, end uint64) []rowGroup {
	rowBytes := uint64(m.RowBytes())
	start &^= rowBytes - 1
	var (
		coords []rowCoord
		seen   = map[rowCoord]bool{}
		last   []rowCoord // per-channel last coordinate ({-1,-1,-1} = none)
	)
	add := func(c rowCoord) {
		if !seen[c] {
			seen[c] = true
			coords = append(coords, c)
		}
	}
	for base := start; base < end; base += rowBytes {
		blockEnd := base + rowBytes
		if blockEnd <= end {
			a, z := m.Map(base), m.Map(blockEnd-dram.LineBytes)
			if a.Chan == z.Chan && a.Bank == z.Bank && a.Row == z.Row {
				add(rowCoord{a.Chan, a.Bank, a.Row})
				continue
			}
		} else {
			blockEnd = end
		}
		for pa := base; pa < blockEnd; pa += dram.LineBytes {
			a := m.Map(pa)
			c := rowCoord{a.Chan, a.Bank, a.Row}
			for a.Chan >= len(last) {
				last = append(last, rowCoord{-1, -1, -1})
			}
			if last[a.Chan] != c {
				last[a.Chan] = c
				add(c)
			}
		}
	}
	sort.Slice(coords, func(i, j int) bool {
		if coords[i].ch != coords[j].ch {
			return coords[i].ch < coords[j].ch
		}
		if coords[i].bank != coords[j].bank {
			return coords[i].bank < coords[j].bank
		}
		return coords[i].row < coords[j].row
	})
	var groups []rowGroup
	for _, c := range coords {
		if n := len(groups); n == 0 || groups[n-1].ch != c.ch || groups[n-1].bank != c.bank {
			groups = append(groups, rowGroup{ch: c.ch, bank: c.bank})
		}
		g := &groups[len(groups)-1]
		g.rows = append(g.rows, rowRef{
			row: c.row,
			key: m.Unmap(dram.Addr{Chan: c.ch, Bank: c.bank, Row: c.row}),
		})
	}
	return groups
}

// ProfileWeakRowsPerLine is the original line-at-a-time characterization:
// one profiling request round-trip per cache line, stopping at a row's
// first failure. It survives as a compatibility shim and as the reference
// the whole-row fast path is equivalence-tested against.
func ProfileWeakRowsPerLine(sys *core.System, start, end uint64, rcd clock.PS) ([]uint64, ProfileStats, error) {
	var stats ProfileStats
	var weak []uint64
	m := sys.Mapper()
	cols := m.RowBytes() / int(dram.LineBytes)
	for _, group := range coveredRows(m, start, end) {
		for _, ref := range group.rows {
			stats.Rows++
			rowWeak := false
			for col := 0; col < cols; col++ {
				stats.LinesTried++
				pa := m.Unmap(dram.Addr{Chan: group.ch, Bank: group.bank, Row: ref.row, Col: col})
				ok, err := sys.ProfileLine(pa, rcd)
				if err != nil {
					return nil, stats, fmt.Errorf("techniques: profiling row %#x: %w", ref.key, err)
				}
				if !ok {
					rowWeak = true
					break
				}
			}
			if rowWeak {
				stats.WeakRows++
				weak = append(weak, ref.key)
			}
		}
	}
	sort.Slice(weak, func(i, j int) bool { return weak[i] < weak[j] })
	return weak, stats, nil
}

// MinReliableTRCD characterizes one row against the full level grid and
// returns the smallest tRCD at which every line reads reliably (the value
// Figure 12 plots). Nominal tRCD is returned when even the largest grid
// level fails. Each level costs one whole-row request round-trip.
func MinReliableTRCD(sys *core.System, rowBase uint64, nominal clock.PS) (clock.PS, error) {
	for _, lv := range RCDLevels {
		_, ok, err := sys.ProfileRow(rowBase, lv)
		if err != nil {
			return 0, err
		}
		if ok {
			return lv, nil
		}
	}
	return nominal, nil
}

// MinReliableTRCDPerLine is the line-at-a-time variant of MinReliableTRCD,
// kept as the equivalence-test reference for the whole-row path.
func MinReliableTRCDPerLine(sys *core.System, rowBase uint64, nominal clock.PS) (clock.PS, error) {
	m := sys.Mapper()
	a := m.Map(rowBase)
	cols := m.RowBytes() / int(dram.LineBytes)
	for _, lv := range RCDLevels {
		allOK := true
		for col := 0; col < cols; col++ {
			pa := m.Unmap(dram.Addr{Chan: a.Chan, Bank: a.Bank, Row: a.Row, Col: col})
			ok, err := sys.ProfileLine(pa, lv)
			if err != nil {
				return 0, err
			}
			if !ok {
				allOK = false
				break
			}
		}
		if allOK {
			return lv, nil
		}
	}
	return nominal, nil
}

// BuildWeakRowFilter inserts the weak rows into a Bloom filter sized for
// the observed weak population at the given false-positive rate (§8.2,
// RAIDR-style).
func BuildWeakRowFilter(weakRows []uint64, fpRate float64, seed uint64) (*bloom.Filter, error) {
	n := len(weakRows)
	if n == 0 {
		n = 1
	}
	f, err := bloom.NewForCapacity(n, fpRate, seed)
	if err != nil {
		return nil, fmt.Errorf("techniques: %w", err)
	}
	for _, r := range weakRows {
		f.Add(r)
	}
	return f, nil
}

// TRCDProvider returns the scheduler hook: strong rows activate with the
// reduced tRCD; rows in the weak-row filter (plus false positives) use the
// nominal value. Rows outside the profiled range are conservatively
// nominal. The row key preserves the channel coordinate, so one filter
// covering a multi-channel characterization pass answers correctly for
// every channel's controller.
func TRCDProvider(f *bloom.Filter, m smc.Mapper, profiledStart, profiledEnd uint64, reduced clock.PS) smc.TRCDProvider {
	return func(a dram.Addr) clock.PS {
		rowBase := m.Unmap(dram.Addr{Chan: a.Chan, Bank: a.Bank, Row: a.Row})
		if rowBase < profiledStart || rowBase >= profiledEnd {
			return 0 // nominal
		}
		if f.Contains(rowBase) {
			return 0 // weak (or false positive): nominal
		}
		return reduced
	}
}
