package techniques

import (
	"fmt"
	"sort"

	"easydram/internal/bender"
	"easydram/internal/bloom"
	"easydram/internal/clock"
	"easydram/internal/core"
	"easydram/internal/dram"
	"easydram/internal/smc"
)

// ReducedTRCD is the aggressive tRCD the technique uses for strong rows
// (§8.1: rows reliable at <=9.0 ns are strong).
const ReducedTRCD = clock.PS(9000)

// profileStripeRows is the bank-stripe size ProfileWeakRows requests per
// host round-trip. The Bender program capability is bender.StripeRowsMax
// (64 rows, the readback-buffer bound), but per-request throughput on the
// emulation host peaks well below it: an 8-row stripe's readback (~64 KiB)
// stays cache-resident through the produce-then-scan pass, while 16+ rows
// fall off a cache cliff and run slower than single-row requests. Eight
// keeps the 8x round-trip reduction AND the fastest measured rows/sec.
const profileStripeRows = 8

// The scan stripe must fit the Bender program capability.
var _ [bender.StripeRowsMax - profileStripeRows]struct{}

// RCDLevels is the characterization grid of Figure 12.
var RCDLevels = []clock.PS{9000, 9500, 10000, 10500}

// ProfileStats summarises a characterization pass.
type ProfileStats struct {
	Rows       int
	WeakRows   int
	LinesTried int
}

// StrongFraction reports the measured fraction of strong rows.
func (s ProfileStats) StrongFraction() float64 {
	if s.Rows == 0 {
		return 0
	}
	return float64(s.Rows-s.WeakRows) / float64(s.Rows)
}

// ProfileWeakRows characterizes every row in the physical address range
// [start, end) at the reduced tRCD (§8.1). A row is weak if any of its
// lines fails. The returned slice holds the row base addresses of weak
// rows, ascending.
//
// Rows are profiled in bank stripes: one host round-trip and one Bender
// program covers up to 64 consecutive same-bank rows (the readback-buffer
// bound, bender.StripeRowsMax) — down from one round-trip per row, and two
// orders of magnitude below the original one per line. A stripe reports the
// leading reliable lines, so when a weak row interrupts it the scan records
// that row and resumes the stripe just past it; weak-row sets and
// ProfileStats stay identical to the per-line path
// (ProfileWeakRowsPerLine), which remains as a compatibility shim and as
// the equivalence-test reference.
func ProfileWeakRows(sys *core.System, start, end uint64, rcd clock.PS) ([]uint64, ProfileStats, error) {
	var stats ProfileStats
	var weak []uint64
	if err := requireSingleChannel(sys, "ProfileWeakRows"); err != nil {
		return nil, stats, err
	}
	rowBytes := uint64(sys.Mapper().RowBytes())
	lines := int(rowBytes / dram.LineBytes)
	start &^= rowBytes - 1

	// Group the range's rows by bank: a stripe must cover consecutive DRAM
	// rows of one bank, while physical row bases rotate across banks under
	// the default mapping.
	type rowRef struct {
		row int
		pa  uint64
	}
	byBank := map[int][]rowRef{}
	banks := []int{}
	for pa := start; pa < end; pa += rowBytes {
		a := sys.Mapper().Map(pa)
		if _, seen := byBank[a.Bank]; !seen {
			banks = append(banks, a.Bank)
		}
		byBank[a.Bank] = append(byBank[a.Bank], rowRef{row: a.Row, pa: pa})
	}
	sort.Ints(banks)

	for _, bank := range banks {
		refs := byBank[bank]
		sort.Slice(refs, func(i, j int) bool { return refs[i].row < refs[j].row })
		for i := 0; i < len(refs); {
			// Extend the stripe while DRAM rows stay consecutive.
			n := 1
			for n < profileStripeRows && i+n < len(refs) && refs[i+n].row == refs[i].row+n {
				n++
			}
			rowLines, _, err := sys.ProfileRowStripe(refs[i].pa, n, rcd)
			if err != nil {
				return nil, stats, fmt.Errorf("techniques: profiling rows at %#x: %w", refs[i].pa, err)
			}
			if len(rowLines) != n {
				return nil, stats, fmt.Errorf("techniques: stripe at %#x returned %d rows, want %d", refs[i].pa, len(rowLines), n)
			}
			for r, okLines := range rowLines {
				stats.Rows++
				if okLines == lines {
					stats.LinesTried += lines
				} else {
					// Mirror the per-line path's stop-at-first-failure
					// accounting: the failing line is the last one tried.
					stats.LinesTried += okLines + 1
					stats.WeakRows++
					weak = append(weak, refs[i+r].pa)
				}
			}
			i += n
		}
	}
	sort.Slice(weak, func(i, j int) bool { return weak[i] < weak[j] })
	return weak, stats, nil
}

// requireSingleChannel rejects multi-channel systems: the weak-row
// characterization walks rowBytes-aligned physical blocks and keys the
// Bloom filter by channel-less row bases, which only correspond to whole
// DRAM rows on a single-channel module (any rank count is fine — ranks
// widen the channel-global bank field, which the walk handles). Failing
// loudly here beats silently classifying one channel's rows from another
// channel's silicon.
func requireSingleChannel(sys *core.System, what string) error {
	if t := sys.Topology(); t.Channels > 1 {
		return fmt.Errorf("techniques: %s supports single-channel topologies only, got %v", what, t)
	}
	return nil
}

// ProfileWeakRowsPerLine is the original line-at-a-time characterization:
// one profiling request round-trip per cache line, stopping at a row's
// first failure. It survives as a compatibility shim and as the reference
// the whole-row fast path is equivalence-tested against.
func ProfileWeakRowsPerLine(sys *core.System, start, end uint64, rcd clock.PS) ([]uint64, ProfileStats, error) {
	var stats ProfileStats
	var weak []uint64
	if err := requireSingleChannel(sys, "ProfileWeakRowsPerLine"); err != nil {
		return nil, stats, err
	}
	rowBytes := uint64(sys.Mapper().RowBytes())
	start &^= rowBytes - 1
	for row := start; row < end; row += rowBytes {
		stats.Rows++
		rowWeak := false
		for line := uint64(0); line < rowBytes; line += dram.LineBytes {
			stats.LinesTried++
			ok, err := sys.ProfileLine(row+line, rcd)
			if err != nil {
				return nil, stats, fmt.Errorf("techniques: profiling row %#x: %w", row, err)
			}
			if !ok {
				rowWeak = true
				break
			}
		}
		if rowWeak {
			stats.WeakRows++
			weak = append(weak, row)
		}
	}
	return weak, stats, nil
}

// MinReliableTRCD characterizes one row against the full level grid and
// returns the smallest tRCD at which every line reads reliably (the value
// Figure 12 plots). Nominal tRCD is returned when even the largest grid
// level fails. Each level costs one whole-row request round-trip.
func MinReliableTRCD(sys *core.System, rowBase uint64, nominal clock.PS) (clock.PS, error) {
	for _, lv := range RCDLevels {
		_, ok, err := sys.ProfileRow(rowBase, lv)
		if err != nil {
			return 0, err
		}
		if ok {
			return lv, nil
		}
	}
	return nominal, nil
}

// MinReliableTRCDPerLine is the line-at-a-time variant of MinReliableTRCD,
// kept as the equivalence-test reference for the whole-row path.
func MinReliableTRCDPerLine(sys *core.System, rowBase uint64, nominal clock.PS) (clock.PS, error) {
	rowBytes := uint64(sys.Mapper().RowBytes())
	for _, lv := range RCDLevels {
		allOK := true
		for line := uint64(0); line < rowBytes; line += dram.LineBytes {
			ok, err := sys.ProfileLine(rowBase+line, lv)
			if err != nil {
				return 0, err
			}
			if !ok {
				allOK = false
				break
			}
		}
		if allOK {
			return lv, nil
		}
	}
	return nominal, nil
}

// BuildWeakRowFilter inserts the weak rows into a Bloom filter sized for
// the observed weak population at the given false-positive rate (§8.2,
// RAIDR-style).
func BuildWeakRowFilter(weakRows []uint64, fpRate float64, seed uint64) (*bloom.Filter, error) {
	n := len(weakRows)
	if n == 0 {
		n = 1
	}
	f, err := bloom.NewForCapacity(n, fpRate, seed)
	if err != nil {
		return nil, fmt.Errorf("techniques: %w", err)
	}
	for _, r := range weakRows {
		f.Add(r)
	}
	return f, nil
}

// TRCDProvider returns the scheduler hook: strong rows activate with the
// reduced tRCD; rows in the weak-row filter (plus false positives) use the
// nominal value. Rows outside the profiled range are conservatively
// nominal.
func TRCDProvider(f *bloom.Filter, m smc.Mapper, profiledStart, profiledEnd uint64, reduced clock.PS) smc.TRCDProvider {
	rowBytes := uint64(m.RowBytes())
	return func(a dram.Addr) clock.PS {
		rowBase := m.Unmap(dram.Addr{Bank: a.Bank, Row: a.Row})
		if rowBase < profiledStart || rowBase >= profiledEnd {
			return 0 // nominal
		}
		_ = rowBytes
		if f.Contains(rowBase) {
			return 0 // weak (or false positive): nominal
		}
		return reduced
	}
}
