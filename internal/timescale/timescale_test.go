package timescale

import (
	"testing"
	"testing/quick"

	"easydram/internal/clock"
)

func newScaled(t *testing.T) *Counters {
	t.Helper()
	c, err := New(clock.FPGA100MHz, clock.FPGA100MHz, clock.Proc1GHz, true)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(clock.Clock{}, clock.Proc1GHz, clock.Proc1GHz, true); err == nil {
		t.Fatalf("missing FPGA clock must fail")
	}
	// Without scaling, physical and emulated clocks must match.
	if _, err := New(clock.FPGA100MHz, clock.FPGA100MHz, clock.Proc1GHz, false); err == nil {
		t.Fatalf("unscaled mismatched clocks must fail")
	}
	if _, err := New(clock.FPGA100MHz, clock.Proc1GHz, clock.Proc1GHz, false); err != nil {
		t.Fatalf("valid unscaled config rejected: %v", err)
	}
}

func TestProcAdvanceLeavesMCBehind(t *testing.T) {
	c := newScaled(t)
	c.AdvanceProc(100)
	if c.Proc() != 100 {
		t.Fatalf("proc=%d, want 100", c.Proc())
	}
	// MC is the controller's service clock: it stays where the controller
	// last worked, so idle-period background work is backdated correctly.
	if c.MC() != 0 {
		t.Fatalf("mc=%d, want 0 (controller idle)", c.MC())
	}
	// The 100 MHz physical clock makes 100 emulated cycles cost 100 FPGA
	// cycles (1:1 — the core physically runs on the fabric clock).
	if c.Global() != 100 {
		t.Fatalf("global=%d, want 100", c.Global())
	}
}

func TestCriticalModeLocksAllowance(t *testing.T) {
	c := newScaled(t)
	c.AdvanceProc(50)
	c.EnterCritical()
	if got := c.ProcAllowance(); got != 0 {
		t.Fatalf("allowance with stale MC = %d, want 0", got)
	}
	c.RaiseMC(50)                             // request served at its arrival point
	c.AdvanceMCModeled(10 * clock.Nanosecond) // 10 emulated cycles at 1 GHz
	if got := c.ProcAllowance(); got != 10 {
		t.Fatalf("allowance = %d, want 10", got)
	}
	c.AdvanceProc(10)
	if c.ProcAllowance() != 0 {
		t.Fatalf("allowance must be exhausted")
	}
	c.ExitCritical()
	if c.ProcAllowance() <= 1<<40 {
		t.Fatalf("allowance outside critical must be effectively unbounded")
	}
}

func TestMCResidualAccumulates(t *testing.T) {
	c := newScaled(t)
	c.EnterCritical()
	// 10 advances of 0.7 ns at 1 GHz = 7 cycles total, despite each being
	// sub-cycle.
	for i := 0; i < 10; i++ {
		c.AdvanceMCModeled(700)
	}
	if c.MC() != 7 {
		t.Fatalf("mc=%d, want 7 (residual accumulation)", c.MC())
	}
}

func TestJumpProcTo(t *testing.T) {
	c := newScaled(t)
	c.AdvanceProc(10)
	c.JumpProcTo(5) // backwards: no-op
	if c.Proc() != 10 {
		t.Fatalf("jump backwards moved proc")
	}
	c.EnterCritical()
	c.AdvanceMCModeled(20 * clock.Nanosecond)
	// Releases may exceed MC; JumpProcTo must allow it.
	c.JumpProcTo(c.MC() + 5)
	if c.Proc() != c.MC()+5 {
		t.Fatalf("proc=%d mc=%d", c.Proc(), c.MC())
	}
}

func TestRaiseMC(t *testing.T) {
	c := newScaled(t)
	c.EnterCritical()
	c.RaiseMC(42)
	if c.MC() != 42 {
		t.Fatalf("mc=%d, want 42", c.MC())
	}
	c.RaiseMC(10) // backwards: no-op
	if c.MC() != 42 {
		t.Fatalf("RaiseMC moved backwards")
	}
}

func TestUnscaledWallDrivesProc(t *testing.T) {
	c, err := New(clock.FPGA100MHz, clock.Proc50MHz, clock.Proc50MHz, false)
	if err != nil {
		t.Fatal(err)
	}
	// 1 us of wall time = 50 cycles at 50 MHz and 100 FPGA cycles.
	c.AdvanceWall(1 * clock.Microsecond)
	if c.Proc() != 50 {
		t.Fatalf("proc=%d, want 50", c.Proc())
	}
	if c.Global() != 100 {
		t.Fatalf("global=%d, want 100", c.Global())
	}
}

func TestScaledWallGatesProcessor(t *testing.T) {
	c := newScaled(t)
	c.AdvanceProc(5)
	c.AdvanceWall(1 * clock.Microsecond)
	if c.Proc() != 5 {
		t.Fatalf("scaled wall advance must not move the processor counter")
	}
	if c.Global() != 5+100 {
		t.Fatalf("global=%d, want 105", c.Global())
	}
}

func TestTimes(t *testing.T) {
	c := newScaled(t)
	c.AdvanceProc(1000)
	if c.EmulatedTime() != 1*clock.Microsecond {
		t.Fatalf("emulated time = %v", c.EmulatedTime())
	}
	if c.WallTime() != 10*clock.Microsecond {
		t.Fatalf("wall time = %v", c.WallTime())
	}
}

// Property: counters never move backwards under any operation sequence.
func TestMonotonicity(t *testing.T) {
	type op struct {
		Kind uint8
		N    uint16
	}
	f := func(ops []op) bool {
		c := newScaledQuiet()
		for _, o := range ops {
			p0, m0, g0 := c.Proc(), c.MC(), c.Global()
			switch o.Kind % 5 {
			case 0:
				c.AdvanceProc(clock.Cycles(o.N % 1000))
			case 1:
				c.AdvanceMCModeled(clock.PS(o.N) * 100)
			case 2:
				c.AdvanceWall(clock.PS(o.N) * 100)
			case 3:
				c.EnterCritical()
			case 4:
				c.ExitCritical()
			}
			if c.Proc() < p0 || c.MC() < m0 || c.Global() < g0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func newScaledQuiet() *Counters {
	c, err := New(clock.FPGA100MHz, clock.FPGA100MHz, clock.Proc1GHz, true)
	if err != nil {
		panic(err)
	}
	return c
}

func TestStringHasCounters(t *testing.T) {
	c := newScaled(t)
	c.AdvanceProc(3)
	if got := c.String(); got == "" {
		t.Fatalf("empty String()")
	}
}
