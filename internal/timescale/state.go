package timescale

import (
	"easydram/internal/clock"
	"easydram/internal/snapshot"
)

// SaveState serializes the dynamic counter file (the clock configuration
// is rebuilt from the run configuration, not stored).
func (c *Counters) SaveState(e *snapshot.Enc) {
	e.I64(int64(c.proc))
	e.I64(int64(c.global))
	e.I64(int64(c.mcPS))
	e.Bool(c.critical)
	e.I64(int64(c.residual))
}

// LoadState restores counters written by SaveState into a freshly
// constructed Counters (clocks already configured by New).
func (c *Counters) LoadState(d *snapshot.Dec) {
	c.proc = clock.Cycles(d.I64())
	c.global = clock.Cycles(d.I64())
	c.mcPS = clock.PS(d.I64())
	c.critical = d.Bool()
	c.residual = clock.PS(d.I64())
}
