// Package timescale implements EasyDRAM's time-scaling counters (§4.3).
//
// Time scaling lets each hardware component be *emulated* at a different
// clock frequency than it physically runs at on the FPGA. Three counters
// track progress:
//
//   - Proc: the processor-domain emulation point, in emulated processor
//     cycles. All processors share it.
//   - MC: the memory-controller emulation point, also expressed in emulated
//     processor cycles so the two domains are directly comparable.
//   - Global: FPGA clock cycles since power-on (wall time on the board).
//
// Invariants (property-tested in this package and enforced by the engine):
//
//  1. While the SMC is in critical mode, the processor cannot *start* new
//     work past MC (individual operations are atomic and may overshoot;
//     consuming a tagged response may jump past MC by the pipelined
//     latency tail).
//  2. A response tagged with release cycle R is never consumed at Proc < R.
//  3. Counters only move forward.
//
// With time scaling disabled the processor simply follows the FPGA wall
// clock at its own frequency, which exposes the raw software-memory-
// controller latency to the processor — the PiDRAM-style distortion the
// paper quantifies.
package timescale

import (
	"fmt"

	"easydram/internal/clock"
)

// Counters is the time-scaling counter file plus the clock configuration
// needed to convert between domains.
type Counters struct {
	// FPGA is the FPGA fabric clock (Global counts its cycles).
	FPGA clock.Clock
	// ProcPhys is the physical clock the processor domain runs at on the
	// FPGA (e.g. 100 MHz).
	ProcPhys clock.Clock
	// ProcEmul is the clock the processor is emulated at (e.g. 1.43 GHz).
	// With time scaling disabled, ProcEmul must equal ProcPhys.
	ProcEmul clock.Clock
	// Scaling reports whether time scaling is enabled.
	Scaling bool

	proc   clock.Cycles
	global clock.Cycles
	// mcPS is the memory-controller service point in exact picoseconds of
	// emulated time; MC() exposes it in emulated processor cycles.
	mcPS     clock.PS
	critical bool

	// residual supports the non-scaled AdvanceWall conversion.
	residual clock.PS
}

// New returns counters for the given clock configuration.
func New(fpga, procPhys, procEmul clock.Clock, scaling bool) (*Counters, error) {
	if !fpga.Valid() || !procPhys.Valid() || !procEmul.Valid() {
		return nil, fmt.Errorf("timescale: all clocks must be configured")
	}
	if !scaling && procPhys.Period() != procEmul.Period() {
		return nil, fmt.Errorf("timescale: without scaling the emulated clock (%v) must equal the physical clock (%v)",
			procEmul, procPhys)
	}
	return &Counters{FPGA: fpga, ProcPhys: procPhys, ProcEmul: procEmul, Scaling: scaling}, nil
}

// Proc returns the processor cycle counter (emulated cycles).
func (c *Counters) Proc() clock.Cycles { return c.proc }

// MC returns the memory-controller cycle counter (in emulated processor
// cycles).
func (c *Counters) MC() clock.Cycles { return c.ProcEmul.CyclesFloor(c.mcPS) }

// MCTime returns the memory-controller service point in exact picoseconds
// of emulated time (the value MC() floors to cycles). The engine's burst
// gate projects service chains from it without mutating the counters.
func (c *Counters) MCTime() clock.PS { return c.mcPS }

// Global returns the FPGA cycle counter.
func (c *Counters) Global() clock.Cycles { return c.global }

// Critical reports whether the SMC holds the processor counter locked.
func (c *Counters) Critical() bool { return c.critical }

// EnterCritical locks the processor domain to the MC counter.
func (c *Counters) EnterCritical() { c.critical = true }

// ExitCritical releases the lock. Outside critical mode the counters
// synchronize: the processor counter catches up to MC as it free-runs.
func (c *Counters) ExitCritical() { c.critical = false }

// ProcAllowance reports how many emulated processor cycles the processor may
// advance right now. Outside critical mode the processor free-runs
// (unbounded, reported as a large budget); inside critical mode it may only
// advance up to MC.
func (c *Counters) ProcAllowance() clock.Cycles {
	if !c.critical {
		return 1 << 62
	}
	mc := c.MC()
	if mc <= c.proc {
		return 0
	}
	return mc - c.proc
}

// AdvanceProc moves the processor counter forward n cycles of execution.
// The FPGA global counter advances by the wall time those cycles take at
// the processor's physical clock.
//
// The MC counter does NOT follow the processor: it is the memory
// controller's service clock — "the emulation point up to which the
// controller has worked". While the controller idles it stays behind, so
// background work (refresh) is correctly backdated to the idle period;
// serving a request lifts it to the request's arrival (RaiseMC).
//
// In critical mode the engine budgets advances with ProcAllowance, but an
// individual operation is atomic and may overshoot MC by its own cost;
// the processor just cannot *start* new work while at or past MC.
func (c *Counters) AdvanceProc(n clock.Cycles) {
	if n < 0 {
		panic(fmt.Sprintf("timescale: negative processor advance %d", n))
	}
	c.proc += n
	c.global += c.FPGA.CyclesCeil(c.ProcPhys.ToTime(n))
}

// JumpProcTo moves the processor counter directly to cycle target (a
// response release point). Release tags may exceed the MC counter by the
// pipelined tail of a request's service latency, so — unlike AdvanceProc —
// JumpProcTo is allowed to pass MC even in critical mode.
func (c *Counters) JumpProcTo(target clock.Cycles) {
	if target <= c.proc {
		return
	}
	n := target - c.proc
	c.proc = target
	c.global += c.FPGA.CyclesCeil(c.ProcPhys.ToTime(n))
}

// RaiseMC lifts the MC service point to the given emulated processor cycle
// if it is behind (service of a request cannot start before the request
// arrived).
func (c *Counters) RaiseMC(target clock.Cycles) {
	if t := c.ProcEmul.ToTime(target); c.mcPS < t {
		c.mcPS = t
	}
}

// RaiseMCTime lifts the MC service point to the given exact emulated time
// if it is behind. Multi-channel engines keep one modeled-MC chain per
// channel and reflect the maximum into the shared counter through this
// method, so processor allowance tracks the memory system's overall
// progress while per-channel chains overlap.
func (c *Counters) RaiseMCTime(t clock.PS) {
	if c.mcPS < t {
		c.mcPS = t
	}
}

// AdvanceMCModeled credits the MC service point with a modeled duration
// (controller decision latency plus DRAM time) in picoseconds of emulated
// time, exactly. Returns the new MC value in cycles.
func (c *Counters) AdvanceMCModeled(d clock.PS) clock.Cycles {
	if d < 0 {
		panic(fmt.Sprintf("timescale: negative MC advance %v", d))
	}
	c.mcPS += d
	return c.MC()
}

// ServeModeled performs one service on the MC resource: it starts at
// max(service point, the arrival cycle), occupies the resource for
// occupancy picoseconds, and returns the release tag — the processor cycle
// at which the response (start + latency later) may be consumed. This is
// the exact counterpart of the reference engine's wall-clock service math,
// which is what makes the §6 validation agree to sub-0.1%.
func (c *Counters) ServeModeled(arrival clock.Cycles, occupancy, latency clock.PS) clock.Cycles {
	if occupancy < 0 || latency < 0 {
		panic(fmt.Sprintf("timescale: negative service (occ=%v lat=%v)", occupancy, latency))
	}
	start := c.mcPS
	if t := c.ProcEmul.ToTime(arrival); t > start {
		start = t
	}
	c.mcPS = start + occupancy
	if latency < occupancy {
		latency = occupancy
	}
	return c.ProcEmul.CyclesCeil(start + latency)
}

// AddGlobal credits the FPGA global counter with already-converted FPGA
// cycles. The engine's shard merge uses it to apply a worker's recorded
// wall charges: each AdvanceWall-equivalent charge took its per-call cycle
// ceiling when it was recorded, so applying the summed cycles is exact.
// Only meaningful with time scaling (the processor is clock-gated through
// the charged period, so no other counter moves).
func (c *Counters) AddGlobal(n clock.Cycles) {
	if n < 0 {
		panic(fmt.Sprintf("timescale: negative global credit %d", n))
	}
	c.global += n
}

// AdvanceWall charges FPGA wall time consumed by the SMC or DRAM Bender.
// With time scaling the processor is clock-gated during this period (its
// counter does not move). Without time scaling the processor's clock keeps
// ticking through the wall time, so the processor counter advances too —
// the raw latency becomes visible to the emulated system.
func (c *Counters) AdvanceWall(d clock.PS) {
	if d < 0 {
		panic(fmt.Sprintf("timescale: negative wall advance %v", d))
	}
	c.global += c.FPGA.CyclesCeil(d)
	if !c.Scaling {
		n := c.ProcPhys.CyclesFloor(d + c.residual)
		c.residual = d + c.residual - c.ProcPhys.ToTime(n)
		c.proc += n
		c.mcPS = c.ProcPhys.ToTime(c.proc)
	}
}

// WallTime reports the FPGA wall-clock time elapsed since power-on.
func (c *Counters) WallTime() clock.PS { return c.FPGA.ToTime(c.global) }

// EmulatedTime reports the emulated-system time at the processor's emulation
// point.
func (c *Counters) EmulatedTime() clock.PS { return c.ProcEmul.ToTime(c.proc) }

func (c *Counters) String() string {
	return fmt.Sprintf("proc=%d mc=%d global=%d critical=%v", c.proc, c.MC(), c.global, c.critical)
}
