package stats

import "sync/atomic"

// SnapshotFallbacks counts snapshot loads that failed validation (bad
// magic, version, checksum, key, truncation) and degraded gracefully to
// fresh characterization. It is process-global because fallbacks are an
// operational health signal, not a per-run metric: benchall reports it as
// snapshot/fallbacks and tests assert it moves when corruption is
// injected. Use Load/Add directly; SnapshotFallbackDelta helps callers
// measure a window.
var SnapshotFallbacks atomic.Int64

// SnapshotFallbackDelta returns the fallbacks recorded since a previous
// Load() observation.
func SnapshotFallbackDelta(since int64) int64 {
	return SnapshotFallbacks.Load() - since
}
