package stats

// Multiprogram fairness metrics (Subramanian et al., ICCD 2014, and the
// standard multi-core scheduling literature): each core's slowdown is its
// contended execution time over its alone execution time, and the summary
// metrics below condense the per-core vector.

// Slowdowns returns shared[i]/alone[i] per core — how much longer each core
// took under contention than running the same workload alone. Cores with a
// non-positive alone time yield 0 (excluded from the summaries).
func Slowdowns(shared, alone []float64) []float64 {
	n := len(shared)
	if len(alone) < n {
		n = len(alone)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if alone[i] > 0 {
			out[i] = shared[i] / alone[i]
		}
	}
	return out
}

// MaxSlowdown returns the largest per-core slowdown — the victim's
// experience, the metric interference schedulers minimize.
func MaxSlowdown(slowdowns []float64) float64 { return Max(slowdowns) }

// UnfairnessIndex returns max/min over the positive slowdowns (1.0 = every
// core slowed equally; large = someone is starved). 0 for empty input.
func UnfairnessIndex(slowdowns []float64) float64 {
	max, min := 0.0, 0.0
	for _, s := range slowdowns {
		if s <= 0 {
			continue
		}
		if min == 0 || s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if min == 0 {
		return 0
	}
	return max / min
}

// WeightedSpeedup returns the sum of 1/slowdown over the positive
// slowdowns — system throughput in units of "alone runs worth of progress";
// n cores with no interference score n.
func WeightedSpeedup(slowdowns []float64) float64 {
	sum := 0.0
	for _, s := range slowdowns {
		if s > 0 {
			sum += 1 / s
		}
	}
	return sum
}
