// Package stats provides the small numeric and rendering helpers the
// experiment runners share: geometric means, aligned tables, series
// rendering, and ASCII heatmaps.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Geomean returns the geometric mean of xs (ignoring non-positive values).
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	out := 0.0
	for i, x := range xs {
		if i == 0 || x > out {
			out = x
		}
	}
	return out
}

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the aligned text rendering.
func (t Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	rows := append([][]string{t.Header}, t.Rows...)
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Series is one named line of (x label, y value) pairs.
type Series struct {
	Name string
	Y    []float64
}

// RenderSeries renders several series sharing x labels as a table.
func RenderSeries(title, xName string, xs []string, series []Series) string {
	t := Table{Title: title, Header: append([]string{xName}, names(series)...)}
	for i, x := range xs {
		row := []string{x}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.3f", s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.Render()
}

func names(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}

// Heatmap renders a dense matrix as ASCII using the given level glyphs
// (value -> glyph index chosen by thresholds ascending).
func Heatmap(title string, values [][]float64, thresholds []float64, glyphs string) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for _, row := range values {
		for _, v := range row {
			idx := 0
			for i, th := range thresholds {
				if v > th {
					idx = i + 1
				}
			}
			if idx >= len(glyphs) {
				idx = len(glyphs) - 1
			}
			b.WriteByte(glyphs[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatBytes renders a byte count in the paper's axis style (8K, 16M...).
func FormatBytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}
