package stats

import (
	"math"
	"strings"
	"testing"
)

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 4})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("Geomean = %v, want 2", got)
	}
	if Geomean(nil) != 0 {
		t.Fatalf("empty geomean must be 0")
	}
	// Non-positive values are ignored.
	if math.Abs(Geomean([]float64{0, -1, 4})-4) > 1e-9 {
		t.Fatalf("geomean must skip non-positive values")
	}
}

func TestMeanMax(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatalf("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatalf("empty mean must be 0")
	}
	if Max([]float64{3, 1, 2}) != 3 {
		t.Fatalf("Max wrong")
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{Title: "demo", Header: []string{"name", "value"}}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b", "100")
	out := tbl.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns are aligned: both data rows have the same prefix width.
	if strings.Index(lines[3], "1") != strings.Index(lines[4], "100") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestRenderSeries(t *testing.T) {
	out := RenderSeries("t", "x", []string{"a", "b"}, []Series{
		{Name: "s1", Y: []float64{1, 2}},
		{Name: "s2", Y: []float64{3}},
	})
	if !strings.Contains(out, "s1") || !strings.Contains(out, "1.000") {
		t.Fatalf("series render wrong:\n%s", out)
	}
	if !strings.Contains(out, "-") { // missing point placeholder
		t.Fatalf("missing placeholder for short series:\n%s", out)
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap("h", [][]float64{{1, 5}, {9, 12}}, []float64{4, 8}, ".-#")
	if !strings.Contains(out, ".-") || !strings.Contains(out, "##") {
		t.Fatalf("heatmap wrong:\n%s", out)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		8 << 10:  "8K",
		16 << 20: "16M",
		100:      "100",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
