package core

// Host-parallel channel execution (ROADMAP item 1).
//
// During the engine's fence and drain phases the processor issues nothing:
// every channel's remaining work — its pick keys, its controller decisions,
// its service chain — is a pure function of channel-local state (tile FIFO,
// controller tables, staged list, chanFree/chanMC chain, per-channel fault
// seams) plus frozen engine state (wallNow, blockedOn=0, burstPhase). The
// shard runner exploits exactly that: it runs each channel with work to
// exhaustion on a bounded pool of host workers, records every effect that
// would have touched shared state in a per-channel sink (chanFX), and then
// replays those effects in canonical serial order.
//
// # Determinism argument
//
// The serial engine steps the channel with the minimum pick key, ties to
// the lower channel index. Each channel's pick key is monotone
// nondecreasing across its own steps (the key is the channel's next
// decision point; a step's service starts at or after it and advances it).
// Channel steps are mutually independent during fence/drain — they read no
// other channel's state and none of the shared state a step could change
// is read by another channel's step. The serial step sequence is therefore
// exactly the k-way merge of the per-channel step streams ordered by
// (key, channel): what mergeShard replays.
//
// Shared effects either replay in that canonical order or commute:
//
//   - release-heap pushes replay per merged step, so heap sequence numbers
//     (the tie-break among equal release points) are bit-identical;
//   - response deliveries/consumptions replay between merged steps with the
//     exact cadence of the serial loop (see mergeShard's settle modes);
//   - FPGA wall charges (scaled) only move the global counter — a sum of
//     per-call cycle ceilings, recorded per worker and credited at merge;
//   - maxWall / maxRelease are commutative maxima;
//   - the shared MC counter is a running maximum of monotone per-channel
//     chains, so lifting it once per channel at merge time reproduces it.
//
// Blocked and stall phases stay on the serial path: there the processor
// re-engages after (almost) every step, which collapses the horizon a
// channel could safely run ahead to. Those phases are instead served by
// batched response settlement (ROADMAP item 4; see drainMaturedUnscaled /
// deliverMaturedScaled).
//
// A worker that cannot make progress without shared state (the defensive
// "SMC idle" paths, which consult the shared ready queue) parks its channel
// (chanFX.stopped) and the round falls back to the serial step path; a
// round that recorded no steps at all reports ran=false for the same
// reason, so the engine never spins on a parked configuration.

import (
	"runtime"
	"sync"

	"easydram/internal/clock"
)

// effectiveShardWorkers resolves Config.ShardWorkers to the worker count a
// run actually uses: 0 means GOMAXPROCS, values above the channel count are
// clamped, and single-channel systems always take the serial path.
func effectiveShardWorkers(configured, nch int) int {
	if nch <= 1 {
		return 1
	}
	w := configured
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > nch {
		w = nch
	}
	if w < 1 {
		w = 1
	}
	return w
}

// shardRespFX is one recorded release-heap push: a response ID and its
// release key (wall picoseconds unscaled, processor cycles scaled).
type shardRespFX struct {
	id      uint64
	release int64
}

// shardStepFX is one recorded channel step: the pick key it ran at (the
// merge's sort key) and the slice of recorded pushes it produced.
type shardStepFX struct {
	key    int64
	respLo int
	respHi int
}

// chanFX is one channel's effect sink for a shard round. Everything a step
// would have written to shared engine state lands here instead; the merge
// applies it in canonical order (steps, resps) or as commutative sums and
// maxima (global, maxRel, maxWall).
type chanFX struct {
	steps []shardStepFX
	resps []shardRespFX
	// err is the first error the channel's step stream hit, at pick key
	// errKey; the merge surfaces the canonically-first error across
	// channels, which is the one the serial run would have returned.
	err    error
	errKey int64
	// stopped parks the channel: its next step needs shared state (see the
	// "SMC idle" paths), so the serial path must take over.
	stopped bool
	// global is the channel's summed FPGA wall charge in FPGA cycles
	// (scaled mode; per-call ceilings already taken).
	global clock.Cycles
	// maxRel is the channel's maximum response release (scaled mode,
	// posted responses included — what a fence jumps to).
	maxRel clock.Cycles
	// maxWall is the channel's maximum step completion (unscaled mode —
	// what a fence waits out).
	maxWall clock.PS
}

func (f *chanFX) reset() {
	f.steps = f.steps[:0]
	f.resps = f.resps[:0]
	f.err = nil
	f.errKey = 0
	f.stopped = false
	f.global = 0
	f.maxRel = 0
	f.maxWall = 0
}

// shardRunner is the lazily created worker pool plus the per-channel effect
// sinks and merge scratch. All buffers are reused across rounds, so steady-
// state rounds allocate only when a channel's step/response volume grows
// past its high-water mark.
type shardRunner struct {
	jobs   chan int
	wg     sync.WaitGroup
	fx     []chanFX
	active []int
	cursor []int
}

// ensureShardPool creates the pool on first engagement: min(shardWorkers,
// channels) persistent goroutines consuming channel indices. The serial
// path (shardWorkers == 1) never reaches this, so worker-count-1 runs carry
// zero shard overhead.
func (e *engine) ensureShardPool() *shardRunner {
	if e.shard != nil {
		return e.shard
	}
	nch := len(e.sys.chans)
	r := &shardRunner{
		jobs:   make(chan int, nch),
		fx:     make([]chanFX, nch),
		active: make([]int, 0, nch),
		cursor: make([]int, nch),
	}
	e.shard = r
	scaled := e.cfg.Scaling
	workers := e.shardWorkers
	if workers > nch {
		workers = nch
	}
	for i := 0; i < workers; i++ {
		go func() {
			for ch := range r.jobs {
				if scaled {
					e.shardChannelScaled(ch, &r.fx[ch])
				} else {
					e.shardChannelUnscaled(ch, &r.fx[ch])
				}
				r.wg.Done()
			}
		}()
	}
	return r
}

// stopShard shuts the worker pool down (deferred by System.run, so pool
// goroutines never outlive their run).
func (e *engine) stopShard() {
	if e.shard != nil {
		close(e.shard.jobs)
		e.shard = nil
	}
}

// shardChannelUnscaled runs channel ch to exhaustion, recording each step's
// pick key and shared effects into fx. Channel-local state (chanFree,
// controller, tile, staged list, inflight ring, burst limit) is mutated
// directly — no other worker touches it.
func (e *engine) shardChannelUnscaled(ch int, fx *chanFX) {
	for e.channelHasWorkUnscaled(ch) {
		key := int64(e.chanKeyUnscaled(ch))
		lo := len(fx.resps)
		w, err := e.stepChannelUnscaled(ch, fx)
		if err != nil {
			fx.err, fx.errKey = err, key
			return
		}
		if fx.stopped {
			return
		}
		if w > fx.maxWall {
			fx.maxWall = w
		}
		fx.steps = append(fx.steps, shardStepFX{key: key, respLo: lo, respHi: len(fx.resps)})
	}
}

// shardChannelScaled is shardChannelUnscaled's scaled-mode counterpart; the
// pick key is the channel's modeled-MC chain (sharding requires more than
// one channel, so mcTimeOf reduces to chanMC).
func (e *engine) shardChannelScaled(ch int, fx *chanFX) {
	for e.channelHasWorkScaled(ch) {
		key := int64(e.chanMC[ch])
		lo := len(fx.resps)
		if err := e.stepChannelScaled(ch, fx); err != nil {
			fx.err, fx.errKey = err, key
			return
		}
		if fx.stopped {
			return
		}
		fx.steps = append(fx.steps, shardStepFX{key: key, respLo: lo, respHi: len(fx.resps)})
	}
}

// shardRoundUnscaled runs one parallel fence/drain round in the unscaled
// engine. deliver selects the fence cadence (replay the loop-top drain of
// matured releases after every merged step); drains pass false — the serial
// drain loop never pops the ready queue. ran=false means the round did not
// engage (or made no progress) and the caller must take one serial step.
func (e *engine) shardRoundUnscaled(deliver bool) (bool, error) {
	if e.shardWorkers <= 1 {
		return false, nil
	}
	n := 0
	for ch := range e.sys.chans {
		if e.channelHasWorkUnscaled(ch) {
			n++
		}
	}
	if n < 2 {
		return false, nil
	}
	r := e.ensureShardPool()
	active := r.active[:0]
	for ch := range e.sys.chans {
		if e.channelHasWorkUnscaled(ch) {
			active = append(active, ch)
		}
	}
	r.active = active
	e.dispatchShard(active)
	return e.mergeShard(active, deliver)
}

// shardRoundScaled is shardRoundUnscaled's scaled-mode counterpart. consume
// selects the fence cadence (jump the processor to each matured release and
// consume it, exactly as the serial fence branch does between steps).
func (e *engine) shardRoundScaled(consume bool) (bool, error) {
	if e.shardWorkers <= 1 {
		return false, nil
	}
	n := 0
	for ch := range e.sys.chans {
		if e.channelHasWorkScaled(ch) {
			n++
		}
	}
	if n < 2 {
		return false, nil
	}
	r := e.ensureShardPool()
	active := r.active[:0]
	for ch := range e.sys.chans {
		if e.channelHasWorkScaled(ch) {
			active = append(active, ch)
		}
	}
	r.active = active
	e.dispatchShard(active)
	return e.mergeShard(active, consume)
}

// dispatchShard fans the active channels out to the pool and waits for the
// round to complete. The jobs channel holds every channel index without
// blocking (capacity = channel count), so dispatch cannot deadlock against
// a full pool.
func (e *engine) dispatchShard(active []int) {
	r := e.shard
	r.wg.Add(len(active))
	for _, ch := range active {
		r.fx[ch].reset()
		r.jobs <- ch
	}
	r.wg.Wait()
}

// mergeShard replays a completed round's recorded effects in canonical
// serial order: a k-way merge of the per-channel step streams by (pick key,
// channel index) — the exact order the serial engine would have stepped
// them — pushing each step's responses and, in fence mode (settle=true),
// replaying the serial loop's settlement cadence between steps. Worker
// errors surface as pseudo-steps at their pick key, so the canonically
// first error is returned, as the serial run would have.
func (e *engine) mergeShard(active []int, settle bool) (bool, error) {
	r := e.shard
	for _, ch := range active {
		r.cursor[ch] = 0
	}
	steps := 0
	for {
		best, bestKey, bestErr := -1, int64(0), false
		for _, ch := range active {
			f := &r.fx[ch]
			cur := r.cursor[ch]
			var k int64
			isErr := false
			switch {
			case cur < len(f.steps):
				k = f.steps[cur].key
			case f.err != nil && cur == len(f.steps):
				k, isErr = f.errKey, true
			default:
				continue
			}
			if best == -1 || k < bestKey {
				best, bestKey, bestErr = ch, k, isErr
			}
		}
		if best == -1 {
			break
		}
		f := &r.fx[best]
		if bestErr {
			// The run aborts here; effects recorded past this point are
			// discarded with the Result.
			return true, f.err
		}
		st := f.steps[r.cursor[best]]
		r.cursor[best]++
		steps++
		for _, rp := range f.resps[st.respLo:st.respHi] {
			e.ready.Push(rp.id, rp.release)
		}
		if settle {
			if e.cfg.Scaling {
				// Serial scaled fence: a step runs only with an empty
				// ready queue; after it, every response is consumed in
				// release order (jump, consume, then drain anything the
				// jump matured) before the next step.
				for {
					e.deliverMaturedScaled()
					if e.ready.Len() == 0 {
						break
					}
					it := e.ready.Min()
					e.ts.JumpProcTo(clock.Cycles(it.release))
					e.consumeScaled(it.id)
				}
			} else {
				// Serial unscaled fence: the loop top delivers every
				// release matured by the frozen wall clock after each step.
				e.drainMaturedUnscaled()
			}
		}
	}
	// Commutative effects: apply once per channel.
	if e.cfg.Scaling {
		for _, ch := range active {
			f := &r.fx[ch]
			e.ts.AddGlobal(f.global)
			if f.maxRel > e.maxRelease {
				e.maxRelease = f.maxRel
			}
			// chanMC is monotone, so the final chain value is the maximum
			// the per-step RaiseMCTime calls would have reached.
			e.ts.RaiseMCTime(e.chanMC[ch])
		}
	} else {
		for _, ch := range active {
			if f := &r.fx[ch]; f.maxWall > e.maxWall {
				e.maxWall = f.maxWall
			}
		}
	}
	if steps > 0 {
		e.shardRounds++
		e.shardSteps += int64(steps)
	}
	return steps > 0, nil
}
