package core

import (
	"testing"

	"easydram/internal/dram"
	"easydram/internal/smc"
	"easydram/internal/workload"
)

// Multi-channel / multi-rank topology tests: the per-channel controller
// fan-out, the single-channel golden equivalence, and the service overlap a
// second channel buys.

// withTopology returns cfg configured for the given module topology.
func withTopology(cfg Config, channels, ranks int) Config {
	cfg.Topology = dram.Topology{Channels: channels, Ranks: ranks}
	return cfg
}

// runTopo builds and runs one system.
func runTopo(t *testing.T, cfg Config, k workload.Kernel) Result {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(k.Stream())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTopologyExplicitSingleIsIdentical pins the refactor's safety net end
// to end: an explicit 1-channel/1-rank topology must be bit-identical to
// the zero-value (legacy) configuration — same cycles, same statistics —
// on both engines. (The absolute legacy numbers are pinned separately by
// TestGoldenCycleCounts, which runs the zero-value topology.)
func TestTopologyExplicitSingleIsIdentical(t *testing.T) {
	gemver := workload.PBGemver(48)
	latmem := workload.LatMemRd(256<<10, 2000)
	for _, c := range []struct {
		name string
		cfg  Config
	}{
		{"scaled", TimeScalingA57()},
		{"unscaled", NoTimeScaling()},
		{"ref1ghz", Reference1GHz()},
	} {
		for _, k := range []workload.Kernel{gemver, latmem} {
			t.Run(c.name+"/"+k.Name, func(t *testing.T) {
				legacy := runTopo(t, c.cfg, k)
				explicit := runTopo(t, withTopology(c.cfg, 1, 1), k)
				if legacy.ProcCycles != explicit.ProcCycles || legacy.GlobalCycles != explicit.GlobalCycles {
					t.Fatalf("cycles diverge: %d/%d vs %d/%d",
						legacy.ProcCycles, legacy.GlobalCycles, explicit.ProcCycles, explicit.GlobalCycles)
				}
				if legacy.CPU != explicit.CPU || legacy.Ctrl != explicit.Ctrl || legacy.Chip != explicit.Chip {
					t.Fatalf("statistics diverge:\n%+v\n%+v", legacy, explicit)
				}
			})
		}
	}
}

// TestMultiChannelDeterministic pins reproducibility of the per-channel
// fan-out: identical multi-channel runs are bit-identical, on both engines.
func TestMultiChannelDeterministic(t *testing.T) {
	k := workload.PBGemver(48)
	for _, c := range []struct {
		name string
		cfg  Config
	}{
		{"scaled-2ch2rk", withTopology(TimeScalingA57(), 2, 2)},
		{"unscaled-2ch2rk", withTopology(NoTimeScaling(), 2, 2)},
		{"scaled-4ch", withTopology(TimeScalingA57(), 4, 1)},
	} {
		t.Run(c.name, func(t *testing.T) {
			a, b := runTopo(t, c.cfg, k), runTopo(t, c.cfg, k)
			if a.ProcCycles != b.ProcCycles || a.GlobalCycles != b.GlobalCycles ||
				a.CPU != b.CPU || a.Ctrl != b.Ctrl || a.Chip != b.Chip {
				t.Fatalf("multi-channel run not deterministic:\n%+v\n%+v", a, b)
			}
		})
	}
}

// TestMultiChannelServesEverything pins conservation across the fan-out:
// however requests spread over channels, the aggregated controller serves
// exactly the same request population as the single-channel system.
func TestMultiChannelServesEverything(t *testing.T) {
	k := workload.PBGemver(48)
	for _, cfg := range []Config{TimeScalingA57(), NoTimeScaling()} {
		base := runTopo(t, cfg, k)
		for _, shape := range [][2]int{{2, 1}, {1, 2}, {2, 2}} {
			multi := runTopo(t, withTopology(cfg, shape[0], shape[1]), k)
			if multi.Ctrl.Served != base.Ctrl.Served ||
				multi.Ctrl.Reads != base.Ctrl.Reads || multi.Ctrl.Writes != base.Ctrl.Writes {
				t.Fatalf("%dch/%drk request population diverges: served %d/%d reads %d/%d writes %d/%d",
					shape[0], shape[1], multi.Ctrl.Served, base.Ctrl.Served,
					multi.Ctrl.Reads, base.Ctrl.Reads, multi.Ctrl.Writes, base.Ctrl.Writes)
			}
			if multi.CPU != base.CPU {
				t.Fatalf("%dch/%drk CPU-visible behaviour diverges:\n%+v\n%+v", shape[0], shape[1], multi.CPU, base.CPU)
			}
		}
	}
}

// TestMultiChannelOverlap pins the workload-level win: on parallel miss
// traffic a second channel overlaps service and the workload finishes in
// fewer emulated cycles than the single-channel run.
func TestMultiChannelOverlap(t *testing.T) {
	cfg := TimeScalingA57()
	cfg.CPU.MLP = 8
	k := workload.SubstrateRowBurst(2048)
	one := runTopo(t, cfg, k)
	two := runTopo(t, withTopology(cfg, 2, 1), k)
	if two.ProcCycles >= one.ProcCycles {
		t.Fatalf("2-channel run (%d cycles) not faster than 1-channel (%d cycles)",
			two.ProcCycles, one.ProcCycles)
	}
}

// TestMultiRankTurnaround pins the shared-bus model: rank-interleaved
// traffic on a 2-rank channel pays rank switches (counted by the
// controller), and because the controller spaces them, the module's bus
// tracker sees no violations.
func TestMultiRankTurnaround(t *testing.T) {
	cfg := withTopology(TimeScalingA57(), 1, 2)
	res := runTopo(t, cfg, workload.RandomAccess(256<<20, 4096))
	if res.Ctrl.RankSwitches == 0 {
		t.Fatalf("random traffic over 2 ranks recorded no rank switches")
	}
	if res.Chip.RankSwitchViolations != 0 {
		t.Fatalf("controller violated the rank-to-rank turnaround %d times", res.Chip.RankSwitchViolations)
	}
	// A single-rank run of the same traffic records none.
	one := runTopo(t, withTopology(TimeScalingA57(), 1, 1), workload.RandomAccess(256<<20, 4096))
	if one.Ctrl.RankSwitches != 0 || one.Chip.RankSwitchViolations != 0 {
		t.Fatalf("single-rank run recorded rank activity: %+v", one.Ctrl)
	}
}

// TestMultiChannelBurstBitIdentical extends the burst-service equivalence
// to multi-channel topologies: the per-channel gates must keep burst
// service bit-identical to serial service with traffic fanned across
// channels (and with refresh on).
func TestMultiChannelBurstBitIdentical(t *testing.T) {
	rowBurst := workload.SubstrateRowBurst(1024)
	for _, c := range []struct {
		name string
		cfg  Config
	}{
		{"scaled-2ch", withTopology(burstMLP8(TimeScalingA57()), 2, 1)},
		{"unscaled-2ch", withTopology(unscaledOoO(), 2, 1)},
		{"scaled-2ch2rk", withTopology(burstMLP8(TimeScalingA57()), 2, 2)},
	} {
		t.Run(c.name, func(t *testing.T) {
			assertBurstIdentical(t, c.cfg, rowBurst)
		})
	}
}

// TestMultiChannelSchedulers pins per-channel scheduler instances: BLISS
// (stateful) clones per channel and runs deterministically; a custom
// scheduler without ChannelScheduler is rejected on multi-channel shapes.
func TestMultiChannelSchedulers(t *testing.T) {
	cfg := withTopology(TimeScalingA57(), 2, 1)
	cfg.Scheduler = smc.NewBLISS()
	a := runTopo(t, cfg, workload.PBGemver(48))
	cfg2 := withTopology(TimeScalingA57(), 2, 1)
	cfg2.Scheduler = smc.NewBLISS()
	b := runTopo(t, cfg2, workload.PBGemver(48))
	if a.ProcCycles != b.ProcCycles {
		t.Fatalf("BLISS multi-channel runs diverge: %d vs %d", a.ProcCycles, b.ProcCycles)
	}

	bad := withTopology(TimeScalingA57(), 2, 1)
	bad.Scheduler = statefulNoClone{}
	if _, err := NewSystem(bad); err == nil {
		t.Fatalf("stateful scheduler without CloneForChannel must be rejected on 2 channels")
	}
	ok := withTopology(TimeScalingA57(), 1, 1)
	ok.Scheduler = statefulNoClone{}
	if _, err := NewSystem(ok); err != nil {
		t.Fatalf("single channel must accept any scheduler: %v", err)
	}
}

// statefulNoClone is a custom scheduler that does not implement
// smc.ChannelScheduler.
type statefulNoClone struct{}

func (statefulNoClone) Name() string { return "stateful-no-clone" }
func (statefulNoClone) Pick(table []smc.Entry, openRows []int) int {
	return smc.FCFS{}.Pick(table, openRows)
}

// TestProfileRowRoutesToOwningChannel pins the host-profiling row
// alignment under channel interleaving: a profile request for an address
// on channel 1 must be served by channel 1's controller against channel
// 1's silicon (a plain low-bit row mask would clear the interleave bits
// and silently profile channel 0).
func TestProfileRowRoutesToOwningChannel(t *testing.T) {
	cfg := withTopology(TimeScalingA57(), 2, 1)
	cfg.DRAM = TechniqueDRAM()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With line interleave, the second cache line lives on channel 1.
	pa := uint64(64)
	if got := sys.mapper.Map(pa).Chan; got != 1 {
		t.Fatalf("test premise: line 1 on channel %d, want 1", got)
	}
	if _, _, err := sys.ProfileRow(pa, sys.Chip().Timing().TRCD); err != nil {
		t.Fatal(err)
	}
	if got := sys.chans[1].ctl.Stats().ProfileRows; got != 1 {
		t.Fatalf("channel 1 served %d profile rows, want 1", got)
	}
	if got := sys.chans[0].ctl.Stats().ProfileRows; got != 0 {
		t.Fatalf("channel 0 served %d profile rows, want 0", got)
	}
}

// TestRowCloneRejectsCrossChannel pins the controller guard: a RowClone
// whose source decodes to a different channel than its destination must
// fail rather than clone the serving channel's same-coordinate row.
func TestRowCloneRejectsCrossChannel(t *testing.T) {
	cfg := withTopology(TimeScalingA57(), 2, 1)
	cfg.DRAM = TechniqueDRAM()
	cfg.DRAM.ClonableFraction = 1
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent lines sit on different channels under line interleave.
	src, dst := uint64(0), uint64(64)
	if sys.mapper.Map(src).Chan == sys.mapper.Map(dst).Chan {
		t.Fatalf("test premise: addresses share a channel")
	}
	ok, err := sys.TestRowClone(src, dst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("cross-channel RowClone reported success")
	}
}

// TestTopologyValidation pins the configuration guardrails.
func TestTopologyValidation(t *testing.T) {
	for _, shape := range [][2]int{{3, 1}, {2, 3}} {
		cfg := withTopology(TimeScalingA57(), shape[0], shape[1])
		if _, err := NewSystem(cfg); err == nil {
			t.Fatalf("topology %v must be rejected", shape)
		}
	}
}
