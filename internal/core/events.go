package core

// Event structures for the emulation hot path.
//
// Every SMC step the engine needs two queries answered about outstanding
// work: "which ready responses have matured?" (and, symmetrically, "what is
// the earliest release point?") and "what is the earliest arrival among
// unserved requests?" (the refresh accounting horizon). The original
// implementation answered both by scanning Go maps, making each step O(n)
// in the number of in-flight requests and dominating the engine's CPU
// profile with map iteration. Two purpose-built structures replace those
// scans:
//
//   - releaseQueue: an indexed min-heap of response release points keyed by
//     (release, insertion sequence). Min-peek is O(1), pop and remove are
//     O(log n), and the position index gives O(1) lookup of the response a
//     blocked processor is waiting on. The sequence number makes tie order
//     deterministic (the engine's results are insensitive to delivery order
//     within one release point, but determinism must not rest on that).
//     The position index is an idIndex — the same dense-ID slot scheme as
//     slotRing — so heap maintenance performs no hashing either.
//
//   - arrivalRing: a FIFO of (request id, arrival key) in issue order.
//     Because the engines issue requests at monotonically nondecreasing
//     timestamps, the earliest live arrival is always at the head once
//     entries whose request already completed are skipped; each entry is
//     pushed and skipped at most once, so the amortised cost is O(1).
//
//   - slotRing: the in-flight request table, a dense slot array indexed by
//     request ID. The CPU allocates IDs sequentially from 1 and the live
//     window (MLP-bounded demand misses plus buffered posted writebacks) is
//     small, so id & mask almost never collides; insert, lookup, and remove
//     are a single indexed access with no hashing. It replaces the former
//     map[uint64]pending, whose mapaccess/mapassign/memhash calls were ~15%
//     of the substrate CPU profile.
//
// All three structures reuse their backing storage across a run.

// releaseItem is one pending response release point.
type releaseItem struct {
	id      uint64
	release int64 // emulated processor cycles (scaled) or wall ps (unscaled)
	seq     uint64
}

// releaseQueue is an indexed min-heap over (release, seq) with O(1) lookup
// by request id. The id -> heap-index map is a dense idIndex rather than a
// Go map: request IDs are sequential, so slot indexing replaces hashing on
// every push, pop, swap, and removal.
type releaseQueue struct {
	items []releaseItem
	pos   idIndex // request id -> index in items
	seq   uint64
}

func newReleaseQueue() releaseQueue {
	return releaseQueue{pos: newIDIndex()}
}

// Len reports the number of queued responses.
func (q *releaseQueue) Len() int { return len(q.items) }

// Min returns the earliest-release item. The queue must be non-empty.
func (q *releaseQueue) Min() releaseItem { return q.items[0] }

// Push inserts a release point for id.
func (q *releaseQueue) Push(id uint64, release int64) {
	q.items = append(q.items, releaseItem{id: id, release: release, seq: q.seq})
	q.seq++
	i := len(q.items) - 1
	q.pos.Put(id, i)
	q.siftUp(i)
}

// PopMin removes and returns the earliest-release item.
func (q *releaseQueue) PopMin() releaseItem {
	it := q.items[0]
	q.removeAt(0)
	return it
}

// Release reports the release point recorded for id.
func (q *releaseQueue) Release(id uint64) (int64, bool) {
	i, ok := q.pos.Get(id)
	if !ok {
		return 0, false
	}
	return q.items[i].release, true
}

// Remove deletes id's entry if present.
func (q *releaseQueue) Remove(id uint64) bool {
	i, ok := q.pos.Get(id)
	if !ok {
		return false
	}
	q.removeAt(i)
	return true
}

func (q *releaseQueue) less(i, j int) bool {
	a, b := &q.items[i], &q.items[j]
	if a.release != b.release {
		return a.release < b.release
	}
	return a.seq < b.seq
}

func (q *releaseQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.pos.Put(q.items[i].id, i)
	q.pos.Put(q.items[j].id, j)
}

func (q *releaseQueue) removeAt(i int) {
	last := len(q.items) - 1
	q.pos.Delete(q.items[i].id)
	if i != last {
		q.items[i] = q.items[last]
		q.pos.Put(q.items[i].id, i)
	}
	q.items = q.items[:last]
	if i < last {
		// The moved element may need to travel either direction.
		q.siftDown(i)
		q.siftUp(i)
	}
}

func (q *releaseQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *releaseQueue) siftDown(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.less(l, min) {
			min = l
		}
		if r < n && q.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		q.swap(i, min)
		i = min
	}
}

// arrivalEntry records one request's arrival key (processor-cycle tag under
// scaling, wall picoseconds otherwise) in issue order.
type arrivalEntry struct {
	id  uint64
	key int64
}

// arrivalRing is a slice-backed FIFO of arrival entries. Keys are pushed in
// monotonically nondecreasing order, so the head (after skipping entries
// whose request has completed) is always the minimum live key.
type arrivalRing struct {
	buf  []arrivalEntry
	head int
}

// Push appends an arrival. Keys must be nondecreasing across pushes. When
// the skipped prefix dominates the buffer, live entries are compacted to
// the front so the backing array stays bounded by the in-flight population.
func (r *arrivalRing) Push(id uint64, key int64) {
	if r.head > 64 && r.head*2 >= len(r.buf) {
		n := copy(r.buf, r.buf[r.head:])
		r.buf = r.buf[:n]
		r.head = 0
	}
	r.buf = append(r.buf, arrivalEntry{id: id, key: key})
}

// skipHead advances past the current head entry (its request completed) and
// recycles the backing storage once drained.
func (r *arrivalRing) skipHead() {
	r.head++
	if r.head == len(r.buf) {
		r.buf = r.buf[:0]
		r.head = 0
	}
}

// idSlot is one idTable cell: the request ID it holds (0 = empty — valid
// because CPU request IDs start at 1) plus the stored value.
type idSlot[V any] struct {
	id  uint64
	val V
}

// idTable is a dense map from request IDs to values: a power-of-two slot
// array indexed by id & mask. Request IDs are allocated sequentially and
// the live window is small relative to the table, so collisions are
// effectively nonexistent; when one does occur (an entry outliving a full
// table's worth of successors), the table doubles until every live entry
// fits. Steady state performs zero allocations. Both engine-side dense-ID
// structures instantiate it: slotRing (the in-flight request table) and
// idIndex (the releaseQueue's id -> heap-position index).
type idTable[V any] struct {
	slots []idSlot[V]
	mask  uint64
	live  int
}

// slotRing tracks in-flight requests; it replaced a map[uint64]pending
// that was ~15% of the substrate CPU profile.
type slotRing = idTable[pending]

// idIndex maps request IDs to releaseQueue heap positions, removing the
// engine's last hash map.
type idIndex = idTable[int]

// idTableInitial is the starting table size; it comfortably covers the
// live window of every configured core model (MLP plus posted traffic,
// which also bounds the responses awaiting release).
const idTableInitial = 64

func newSlotRing() slotRing { return newIDTable[pending]() }

func newIDIndex() idIndex { return newIDTable[int]() }

func newIDTable[V any]() idTable[V] {
	return idTable[V]{slots: make([]idSlot[V], idTableInitial), mask: idTableInitial - 1}
}

// Len reports the number of live entries.
func (r *idTable[V]) Len() int { return r.live }

// Contains reports whether id is live.
func (r *idTable[V]) Contains(id uint64) bool { return r.slots[id&r.mask].id == id }

// Get returns the value stored for id.
func (r *idTable[V]) Get(id uint64) (V, bool) {
	s := &r.slots[id&r.mask]
	if s.id != id {
		var zero V
		return zero, false
	}
	return s.val, true
}

// Put inserts (or overwrites) the value for id.
func (r *idTable[V]) Put(id uint64, v V) {
	for {
		s := &r.slots[id&r.mask]
		if s.id == id {
			s.val = v
			return
		}
		if s.id == 0 {
			s.id = id
			s.val = v
			r.live++
			return
		}
		r.grow()
	}
}

// Take removes and returns the value stored for id.
func (r *idTable[V]) Take(id uint64) (V, bool) {
	s := &r.slots[id&r.mask]
	if s.id != id {
		var zero V
		return zero, false
	}
	s.id = 0
	r.live--
	return s.val, true
}

// Delete removes id's entry if present.
func (r *idTable[V]) Delete(id uint64) bool {
	_, ok := r.Take(id)
	return ok
}

// grow doubles the table until every live entry lands in a distinct slot
// under the new mask (a single doubling almost always suffices: live IDs
// span a window no larger than the live count plus the oldest entry's age).
func (r *idTable[V]) grow() {
	n := len(r.slots) * 2
	for {
		slots := make([]idSlot[V], n)
		mask := uint64(n - 1)
		ok := true
		for i := range r.slots {
			if r.slots[i].id == 0 {
				continue
			}
			dst := &slots[r.slots[i].id&mask]
			if dst.id != 0 {
				ok = false
				break
			}
			*dst = r.slots[i]
		}
		if ok {
			r.slots, r.mask = slots, mask
			return
		}
		n *= 2
	}
}
