package core

import (
	"testing"

	"easydram/internal/clock"
	"easydram/internal/smc"
	"easydram/internal/workload"
)

// Burst-service equivalence tests. Row-hit burst service (Config.BurstCap)
// must be invisible to the emulated system: every cycle count and every
// semantic statistic must be bit-identical to serial service — with
// refresh off AND on (the burst gates replay the serial refresh-horizon
// check and cut the burst before any REF falls due; see burst.go).

// burstCfg returns cfg with refresh off and the given burst cap.
func burstCfg(cfg Config, cap int) Config {
	cfg.RefreshEnabled = false
	cfg.BurstCap = cap
	return cfg
}

// runBurst runs k on cfg and returns the result.
func runBurst(t *testing.T, cfg Config, k workload.Kernel) Result {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(k.Stream())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// normalizeCtrl zeroes the burst counters, which are the only controller
// statistics allowed to differ between burst and serial service.
func normalizeCtrl(s smc.ControllerStats) smc.ControllerStats {
	s.BurstsServed = 0
	s.BurstedRequests = 0
	return s
}

// assertBurstIdentical runs k under cfg with bursting off and on (leaving
// cfg's refresh setting as given) and requires bit-identical emulated
// results. It returns the burst run's controller stats so callers can
// additionally require that bursts actually happened (a vacuously passing
// equivalence test proves nothing).
func assertBurstIdentical(t *testing.T, cfg Config, k workload.Kernel) smc.ControllerStats {
	t.Helper()
	serialCfg, burstOnCfg := cfg, cfg
	serialCfg.BurstCap = 0
	burstOnCfg.BurstCap = 8
	serial := runBurst(t, serialCfg, k)
	burst := runBurst(t, burstOnCfg, k)

	if serial.ProcCycles != burst.ProcCycles || serial.GlobalCycles != burst.GlobalCycles {
		t.Fatalf("cycle counts diverge: serial %d/%d vs burst %d/%d",
			serial.ProcCycles, serial.GlobalCycles, burst.ProcCycles, burst.GlobalCycles)
	}
	if len(serial.Marks) != len(burst.Marks) {
		t.Fatalf("mark counts diverge: %v vs %v", serial.Marks, burst.Marks)
	}
	for i := range serial.Marks {
		if serial.Marks[i] != burst.Marks[i] {
			t.Fatalf("marks diverge at %d: %v vs %v", i, serial.Marks, burst.Marks)
		}
	}
	if serial.CPU != burst.CPU {
		t.Fatalf("CPU stats diverge:\n%+v\n%+v", serial.CPU, burst.CPU)
	}
	if normalizeCtrl(serial.Ctrl) != normalizeCtrl(burst.Ctrl) {
		t.Fatalf("controller stats diverge:\n%+v\n%+v", serial.Ctrl, burst.Ctrl)
	}
	if serial.Chip != burst.Chip {
		// Includes command counts AND timing-violation counts: the burst
		// program must land every DRAM command on the same absolute bus
		// cycle as serial programs would.
		t.Fatalf("chip stats diverge:\n%+v\n%+v", serial.Chip, burst.Chip)
	}
	if serial.Ctrl.BurstsServed != 0 {
		t.Fatalf("serial run recorded %d bursts", serial.Ctrl.BurstsServed)
	}
	return burst.Ctrl
}

// burstMLP8 widens the A57 core so a full RowBurstDepth group can be
// outstanding together.
func burstMLP8(cfg Config) Config {
	cfg.CPU.MLP = 8
	return cfg
}

// unscaledOoO is the no-time-scaling configuration with an out-of-order
// core (MLP 8) at the physical clock: the in-order Rocket blocks on every
// miss and so never holds a same-row run in the request table.
func unscaledOoO() Config {
	cfg := NoTimeScaling()
	cfg.CPU = burstMLP8(TimeScalingA57()).CPU
	cfg.CPU.Clock = cfg.ProcPhys
	return cfg
}

// wbRowKernel dirties whole rows line by line, flushes them (posted
// writebacks), and fences — so the controller's table fills with same-row
// writebacks that burst during the fence.
func wbRowKernel(rows int) workload.Kernel {
	return workload.Kernel{Name: "wb-rows", Body: func(g *workload.Gen) {
		const rowBytes = 8192
		for r := 0; r < rows; r++ {
			base := uint64(r) * rowBytes
			for c := 0; c < rowBytes/64; c++ {
				g.Store(base + uint64(c)*64)
			}
			for c := 0; c < rowBytes/64; c++ {
				g.Flush(base + uint64(c)*64)
			}
			g.Barrier()
		}
	}}
}

func TestBurstServiceBitIdentical(t *testing.T) {
	rowBurst := workload.SubstrateRowBurst(1024)
	gemver := workload.PBGemver(48)
	latmem := workload.LatMemRd(256<<10, 2000)
	wbRows := wbRowKernel(4)

	cases := []struct {
		name      string
		cfg       Config
		k         workload.Kernel
		wantBurst bool
	}{
		{"scaled/rowburst", burstMLP8(TimeScalingA57()), rowBurst, true},
		{"unscaled/rowburst", unscaledOoO(), rowBurst, true},
		{"ts1ghz/rowburst", burstMLP8(TimeScaling1GHz()), rowBurst, true},
		{"ref1ghz/rowburst", burstMLP8(Reference1GHz()), rowBurst, true},
		{"scaled/wbrows", TimeScalingA57(), wbRows, true},
		{"unscaled/wbrows", NoTimeScaling(), wbRows, true},
		{"scaled/gemver", TimeScalingA57(), gemver, false},
		{"unscaled/gemver", NoTimeScaling(), gemver, false},
		{"scaled/latmem", TimeScalingA57(), latmem, false},
		{"unscaled/latmem", NoTimeScaling(), latmem, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ctrl := assertBurstIdentical(t, burstCfg(c.cfg, 0), c.k)
			if c.wantBurst && ctrl.BurstsServed == 0 {
				t.Fatalf("equivalence is vacuous: no bursts served (%+v)", ctrl)
			}
			if c.wantBurst && ctrl.AvgBurstLen() < 2 {
				t.Fatalf("avg burst len %.2f implausibly low", ctrl.AvgBurstLen())
			}
		})
	}
}

// TestBurstRefreshOnBitIdentical pins the refresh-horizon replay inside the
// burst gates: with periodic refresh ENABLED, burst service must still be
// bit-identical to serial service — every REF settles between serial steps
// exactly where serial accounting puts it — and bursts must actually engage
// (the pre-fix engine fell back to serial under refresh).
func TestBurstRefreshOnBitIdentical(t *testing.T) {
	rowBurst := workload.SubstrateRowBurst(1024)
	wbRows := wbRowKernel(4)
	latmem := workload.LatMemRd(256<<10, 2000)

	cases := []struct {
		name      string
		cfg       Config
		k         workload.Kernel
		wantBurst bool
	}{
		// Presets keep RefreshEnabled=true; long runs cross many tREFI.
		{"scaled/rowburst", burstMLP8(TimeScalingA57()), rowBurst, true},
		{"unscaled/rowburst", unscaledOoO(), rowBurst, true},
		{"ts1ghz/rowburst", burstMLP8(TimeScaling1GHz()), rowBurst, true},
		{"ref1ghz/rowburst", burstMLP8(Reference1GHz()), rowBurst, true},
		{"scaled/wbrows", TimeScalingA57(), wbRows, true},
		{"unscaled/wbrows", NoTimeScaling(), wbRows, true},
		{"scaled/latmem", TimeScalingA57(), latmem, false},
		{"unscaled/latmem", NoTimeScaling(), latmem, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if !c.cfg.RefreshEnabled {
				t.Fatalf("test misconfigured: refresh must be on")
			}
			ctrl := assertBurstIdentical(t, c.cfg, c.k)
			if ctrl.Refreshes == 0 {
				t.Fatalf("equivalence is vacuous: no refreshes fired (%+v)", ctrl)
			}
			if c.wantBurst && ctrl.BurstsServed == 0 {
				t.Fatalf("refresh-on run served no bursts (%+v)", ctrl)
			}
		})
	}
}

// TestBurstGoldenCycleCounts pins absolute cycle counts with bursting
// ENABLED, alongside the serial golden numbers in determinism_test.go: the
// burst path must neither drift on its own nor silently stop engaging
// (BurstsServed is pinned too).
func TestBurstGoldenCycleCounts(t *testing.T) {
	type golden struct {
		proc, global clock.Cycles
		served       int64
		bursts       int64
		bursted      int64
	}
	rowBurst := workload.SubstrateRowBurst(1024)
	cases := []struct {
		name string
		cfg  Config
		want golden
	}{
		// Captured from the serial engine (BurstCap=0) on these exact
		// configurations; the burst run must reproduce them bit-identically.
		{"scaled", burstMLP8(burstCfg(TimeScalingA57(), 8)), golden{18968, 156608, 1024, 128, 896}},
		{"unscaled", burstCfg(unscaledOoO(), 8), golden{30895, 61790, 1024, 128, 896}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := runBurst(t, c.cfg, rowBurst)
			got := golden{res.ProcCycles, res.GlobalCycles, res.Ctrl.Served,
				res.Ctrl.BurstsServed, res.Ctrl.BurstedRequests}
			if got != c.want {
				t.Fatalf("burst golden drifted:\n got %+v\nwant %+v", got, c.want)
			}
		})
	}
}
