package core

import (
	"math"

	"easydram/internal/clock"
)

// Row-hit burst service: engine-side gating.
//
// The controller may serve several same-row requests in one SMC step (one
// Bender program) — see smc.BaseController's serveAccessBurst — but only
// when doing so is bit-identical to serving them one step at a time. The
// controller charges per-request modeled costs exactly as serial service
// would; what it cannot see is the engine state that would have let the
// outside world interleave between serial steps. The gates below encode
// exactly those conditions, one per engine phase:
//
//   - blocked: the processor waits on one request. Serial service stops
//     stepping the SMC the moment that request's response is queued (the
//     processor consumes it and may issue new requests), so a burst must
//     cut immediately after serving blockedOn.
//   - fencing / draining: the processor issues nothing until everything
//     completes; bursts extend freely.
//   - stalled (scaled only): the processor could run once the MC counter
//     passes its cycle. Serial service would hand control back to the
//     processor after any step that lifts MC above Proc, so a burst may
//     only extend while its projected MC stays at or below Proc.
//
// In the unscaled engine, issued requests carry wall-clock arrival times
// and are staged until the SMC's decision point reaches them. A serial
// step sequence would ingest a staged request before the step whose
// decision point (the previous step's completion) reaches its arrival —
// changing table sizes, scheduling charges, and possibly the pick — so a
// burst must stop before its service chain's completion reaches the next
// staged arrival (burstLimit).
//
// Refresh: serial service re-checks the refresh horizon before every step
// (settleRefreshes*: a REF fires iff it is due by max(service point,
// earliest live arrival)). The gates replay exactly that check against the
// projected service chain and the earliest arrival still unserved mid-step,
// and cut the burst before any REF would fall due — so refresh-on
// configurations burst too, and the engine settles the REF between serial
// steps exactly where serial service would have.
//
// All projections are per channel: a multi-channel engine steps one
// channel's controller at a time — each channel's Env carries a gate
// closure bound to its channel index — and each channel owns an
// independent service chain.

// burstPhase identifies the engine state an SMC step runs under.
type burstPhase uint8

const (
	// burstPhaseStall: scaled engine, processor runnable but out of
	// allowance (MC <= Proc).
	burstPhaseStall burstPhase = iota
	// burstPhaseBlocked: processor blocked on one request's response.
	burstPhaseBlocked
	// burstPhaseFence: processor fenced until all outstanding work drains.
	burstPhaseFence
	// burstPhaseDrain: workload finished; posted writebacks drain.
	burstPhaseDrain
)

// burstBudget reports the burst budget for the current step.
func (e *engine) burstBudget() int { return e.burstCap }

// mayExtendBurstScaled is the scaled engine's burst gate for channel ch: it
// is consulted by the controller after each served request, before
// appending the next.
func (e *engine) mayExtendBurstScaled(ch int) bool {
	env := e.sys.chans[ch].env
	resp := env.Responses()
	if len(resp) == 0 {
		return false
	}
	// Serial service stops the moment the blocked-on response exists.
	if e.blockedOn != 0 && resp[len(resp)-1].ReqID == e.blockedOn {
		return false
	}
	if e.burstPhase == burstPhaseStall {
		// The processor regains allowance as soon as MC exceeds Proc;
		// serial service would let it run (and possibly issue requests that
		// change the next step's table) before serving more.
		if e.projectedMC(ch) > e.ts.Proc() {
			return false
		}
	}
	if e.sys.chans[ch].ctl.RefreshEnabled() {
		// Replay the next serial step's refresh-horizon check: a REF due by
		// max(projected service point, earliest unserved arrival) would
		// fire before that step, so the burst must cut here and let the
		// engine settle it.
		due := e.sys.chans[ch].ctl.NextRefreshDue()
		horizon := e.cfg.CPU.Clock.ToTime(e.projectedMC(ch))
		if arr, ok := e.earliestUnservedArrival(ch); ok {
			if t := e.cfg.CPU.Clock.ToTime(clock.Cycles(arr)); t > horizon {
				horizon = t
			}
		}
		if due <= horizon {
			return false
		}
	}
	return true
}

// projectedMC replays the ServeModeled chain of channel ch's closed
// segments on top of its live MC service point, without mutating the
// counters, and returns the MC cycle the chain would reach.
func (e *engine) projectedMC(ch int) clock.Cycles {
	env := e.sys.chans[ch].env
	chain := e.mcTimeOf(ch)
	resp := env.Responses()
	var prevOcc clock.PS
	prevResp := 0
	for _, s := range env.Segments() {
		occ := s.Occupancy - prevOcc
		// One response per segment; its arrival tag lower-bounds the start.
		if s.Responses > prevResp {
			if p, ok := e.inflight[ch].Get(resp[s.Responses-1].ReqID); ok {
				if t := e.ts.ProcEmul.ToTime(p.tag); t > chain {
					chain = t
				}
			}
		}
		chain += occ
		prevOcc, prevResp = s.Occupancy, s.Responses
	}
	return e.ts.ProcEmul.CyclesFloor(chain)
}

// mayExtendBurstUnscaled is the unscaled engine's burst gate for channel ch.
func (e *engine) mayExtendBurstUnscaled(ch int) bool {
	env := e.sys.chans[ch].env
	resp := env.Responses()
	if len(resp) == 0 {
		return false
	}
	if e.blockedOn != 0 && resp[len(resp)-1].ReqID == e.blockedOn {
		return false
	}
	if e.sys.chans[ch].ctl.RefreshEnabled() {
		// Same refresh-horizon replay as the scaled gate, in wall time.
		due := e.sys.chans[ch].ctl.NextRefreshDue()
		horizon := e.projectedCompletion(ch)
		if arr, ok := e.earliestUnservedArrival(ch); ok && clock.PS(arr) > horizon {
			horizon = clock.PS(arr)
		}
		if due <= horizon {
			return false
		}
	}
	if e.burstLimit[ch] == math.MaxInt64 {
		return true
	}
	// Serial service would ingest the next staged request before the step
	// whose decision point reaches its arrival; the decision point after
	// the closed segments is their chained completion.
	return int64(e.projectedCompletion(ch)) < e.burstLimit[ch]
}

// projectedCompletion replays the unscaled service chain of channel ch's
// closed segments: per segment, start at max(the channel's SMC free point,
// the served request's arrival), occupy for the charged SMC cycles (zero
// under HardwareMC) plus the modeled occupancy.
func (e *engine) projectedCompletion(ch int) clock.PS {
	env := e.sys.chans[ch].env
	resp := env.Responses()
	free := e.chanFree[ch]
	var prevCharged int64
	var prevOcc clock.PS
	prevResp := 0
	for _, s := range env.Segments() {
		start := free
		if s.Responses > prevResp {
			if p, ok := e.inflight[ch].Get(resp[s.Responses-1].ReqID); ok && p.arrival > start {
				start = p.arrival
			}
		}
		var smcOcc clock.PS
		if !e.cfg.HardwareMC {
			smcOcc = clock.PS(s.Charged-prevCharged) * e.cfg.FPGA.Period()
		}
		free = start + smcOcc + (s.Occupancy - prevOcc)
		prevCharged, prevOcc, prevResp = s.Charged, s.Occupancy, s.Responses
	}
	return free
}
