package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"easydram/internal/fault"
)

// Host-parallel shard-runner tests. Config.ShardWorkers is a pure host-side
// parallelism knob: every emulated counter, statistic, and mark must be
// byte-identical at any worker count, on both engines, with faults armed or
// not and burst service on or off — and the worker-count-1 path must carry
// zero shard overhead (no allocations, no pool).

// shardFaults arms the per-channel fault seams on cfg (the injection-heavy
// profile of faultyConfig, portable to any base config).
func shardFaults(cfg Config) Config {
	cfg.Faults = fault.Config{
		Chip: fault.ChipConfig{
			DisturbEnabled:      true,
			DisturbMinThreshold: 16,
			DisturbJitter:       16,
			TransientReadRate:   0.02,
			StuckAtRate:         0.002,
		},
		Link: fault.LinkConfig{
			ExecFailRate:        0.01,
			ReadbackCorruptRate: 0.01,
			ReadbackDropRate:    0.01,
		},
		Recovery: fault.RecoveryConfig{Enabled: true},
	}
	return cfg
}

// assertResultsIdentical requires a and b bit-identical in every emulated
// dimension.
func assertResultsIdentical(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.ProcCycles != b.ProcCycles || a.GlobalCycles != b.GlobalCycles {
		t.Fatalf("%s: cycles diverge: %d/%d vs %d/%d",
			label, a.ProcCycles, a.GlobalCycles, b.ProcCycles, b.GlobalCycles)
	}
	if len(a.Marks) != len(b.Marks) {
		t.Fatalf("%s: mark counts diverge: %v vs %v", label, a.Marks, b.Marks)
	}
	for i := range a.Marks {
		if a.Marks[i] != b.Marks[i] {
			t.Fatalf("%s: marks diverge at %d: %v vs %v", label, i, a.Marks, b.Marks)
		}
	}
	if a.CPU != b.CPU {
		t.Fatalf("%s: CPU stats diverge:\n%+v\n%+v", label, a.CPU, b.CPU)
	}
	if a.L1 != b.L1 || a.L2 != b.L2 {
		t.Fatalf("%s: cache stats diverge", label)
	}
	if a.Ctrl != b.Ctrl {
		t.Fatalf("%s: controller stats diverge:\n%+v\n%+v", label, a.Ctrl, b.Ctrl)
	}
	if a.Chip != b.Chip {
		t.Fatalf("%s: chip stats diverge:\n%+v\n%+v", label, a.Chip, b.Chip)
	}
	if a.Tile != b.Tile {
		t.Fatalf("%s: tile stats diverge:\n%+v\n%+v", label, a.Tile, b.Tile)
	}
}

// TestShardWorkerByteIdentityMatrix is the identity matrix the ROADMAP
// promises: worker counts 1/2/4/8 (8 > 4 channels exercises clamping) ×
// scaled/unscaled × faults on/off × burst service on/off, all byte-identical
// to the serial run. The wb-rows kernel fences with posted writebacks
// spread across the channels, so fences carry genuinely parallel work; the
// non-vacuity check at the end proves the parallel path actually engaged.
func TestShardWorkerByteIdentityMatrix(t *testing.T) {
	k := wbRowKernel(6)
	var engagedRounds int64
	for _, base := range []struct {
		name string
		cfg  Config
	}{
		{"scaled", withTopology(burstMLP8(TimeScalingA57()), 4, 1)},
		{"unscaled", withTopology(unscaledOoO(), 4, 1)},
	} {
		for _, faults := range []bool{false, true} {
			for _, burst := range []bool{false, true} {
				cfg := base.cfg
				if faults {
					cfg = shardFaults(cfg)
				}
				if burst {
					cfg.BurstCap = 8
				}
				name := fmt.Sprintf("%s/faults=%v/burst=%v", base.name, faults, burst)
				t.Run(name, func(t *testing.T) {
					serial := cfg
					serial.ShardWorkers = 1
					want := runTopo(t, serial, k)
					for _, workers := range []int{2, 4, 8} {
						c := cfg
						c.ShardWorkers = workers
						sys, err := NewSystem(c)
						if err != nil {
							t.Fatal(err)
						}
						got, err := sys.Run(k.Stream())
						if err != nil {
							t.Fatal(err)
						}
						assertResultsIdentical(t, fmt.Sprintf("workers=%d", workers), want, got)
						rounds, _ := sys.ShardStats()
						engagedRounds += rounds
					}
				})
			}
		}
	}
	if engagedRounds == 0 {
		t.Fatalf("identity matrix is vacuous: no shard round ever engaged")
	}
}

// TestShardWorkerErrorIdentity pins the merge's error canonicalization: a
// run that aborts (launch failures outpacing a minimal retry budget) must
// return an error at any worker count, matching the serial run's error — the
// canonically-first failure, not whichever worker hit one first.
func TestShardWorkerErrorIdentity(t *testing.T) {
	cfg := withTopology(TimeScalingA57(), 4, 1)
	cfg.Faults.Link.ExecFailRate = 0.6
	cfg.Faults.Recovery = fault.RecoveryConfig{Enabled: true, MaxRetries: 1}
	k := wbRowKernel(6)

	run := func(workers int) error {
		c := cfg
		c.ShardWorkers = workers
		sys, err := NewSystem(c)
		if err != nil {
			t.Fatal(err)
		}
		_, err = sys.Run(k.Stream())
		return err
	}
	serialErr := run(1)
	if serialErr == nil {
		t.Skip("fault profile did not abort the serial run; nothing to compare")
	}
	for _, workers := range []int{2, 4} {
		if err := run(workers); err == nil || err.Error() != serialErr.Error() {
			t.Fatalf("workers=%d error diverges:\nserial: %v\nshard:  %v", workers, serialErr, err)
		}
	}
}

// TestShardCheckpointIdentity proves checkpointing is shard-neutral: a
// RunCheckpoint under N workers yields a blob byte-identical to the serial
// run's (ShardWorkers is deliberately outside CompatKey), or correctly none,
// and the full Results match.
func TestShardCheckpointIdentity(t *testing.T) {
	k := wbRowKernel(6)
	for _, base := range []struct {
		name string
		cfg  Config
	}{
		{"scaled", withTopology(TimeScalingA57(), 4, 1)},
		{"unscaled", withTopology(NoTimeScaling(), 4, 1)},
	} {
		t.Run(base.name, func(t *testing.T) {
			mid := runTopo(t, base.cfg, k).ProcCycles / 2

			capture := func(workers int) (Result, []byte) {
				cfg := base.cfg
				cfg.ShardWorkers = workers
				sys, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, blob, err := sys.RunCheckpoint(k.Stream(), mid)
				if err != nil {
					t.Fatalf("RunCheckpoint(workers=%d): %v", workers, err)
				}
				return res, blob
			}
			serialRes, serialBlob := capture(1)
			for _, workers := range []int{2, 4} {
				res, blob := capture(workers)
				assertResultsIdentical(t, fmt.Sprintf("workers=%d", workers), serialRes, res)
				if !bytes.Equal(serialBlob, blob) {
					t.Fatalf("workers=%d checkpoint blob diverges from serial (%d vs %d bytes)",
						workers, len(serialBlob), len(blob))
				}
			}
			if serialBlob == nil {
				t.Skipf("no quiescent point at or after cycle %d; blob identity vacuous", mid)
			}

			// A blob captured under sharding restores into a serial system
			// (and vice versa is the same code path): the restored run must
			// match the uninterrupted one.
			base2 := runTopo(t, base.cfg, k)
			restoredSys, err := NewSystem(base.cfg)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := restoredSys.RunRestored(k.Stream(), serialBlob)
			if err != nil {
				t.Fatalf("RunRestored: %v", err)
			}
			if !reflect.DeepEqual(restored, base2) {
				t.Fatalf("restored run diverges:\nbase     %+v\nrestored %+v", base2, restored)
			}
		})
	}
}

// TestShardWorker1PathZeroAllocs guards the serial path's zero-overhead
// contract: with one worker the round check is a single comparison, and even
// with workers configured, a round that cannot engage (fewer than two
// channels with work) allocates nothing — the pool is created only on first
// real engagement.
func TestShardWorker1PathZeroAllocs(t *testing.T) {
	build := func(cfg Config, workers int) *engine {
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nch := len(sys.chans)
		return &engine{
			cfg:          sys.cfg,
			sys:          sys,
			staged:       make([][]stagedReq, nch),
			shardWorkers: workers,
		}
	}

	for _, tc := range []struct {
		name  string
		cfg   Config
		round func(e *engine) (bool, error)
	}{
		{"unscaled/workers=1", withTopology(NoTimeScaling(), 4, 1),
			func(e *engine) (bool, error) { return e.shardRoundUnscaled(true) }},
		{"scaled/workers=1", withTopology(TimeScalingA57(), 4, 1),
			func(e *engine) (bool, error) { return e.shardRoundScaled(true) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := build(tc.cfg, 1)
			if allocs := testing.AllocsPerRun(100, func() {
				if ran, err := tc.round(e); ran || err != nil {
					t.Fatalf("round engaged on serial path: ran=%v err=%v", ran, err)
				}
			}); allocs != 0 {
				t.Fatalf("worker-count-1 round path allocates %.1f allocs/op", allocs)
			}
		})
	}

	// Workers configured, but idle channels: the engagement check itself
	// must not allocate either (it runs at every fence/drain iteration).
	t.Run("unscaled/workers=4-idle", func(t *testing.T) {
		e := build(withTopology(NoTimeScaling(), 4, 1), 4)
		if allocs := testing.AllocsPerRun(100, func() {
			if ran, err := e.shardRoundUnscaled(true); ran || err != nil {
				t.Fatalf("round engaged with no work: ran=%v err=%v", ran, err)
			}
		}); allocs != 0 {
			t.Fatalf("idle engagement check allocates %.1f allocs/op", allocs)
		}
		if e.shard != nil {
			t.Fatalf("idle rounds created a worker pool")
		}
	})
}

// TestEffectiveShardWorkers pins the knob's resolution rules: single-channel
// always serial, zero means GOMAXPROCS, and the count clamps to channels.
func TestEffectiveShardWorkers(t *testing.T) {
	if got := effectiveShardWorkers(8, 1); got != 1 {
		t.Fatalf("single channel: got %d workers, want 1", got)
	}
	if got := effectiveShardWorkers(8, 4); got != 4 {
		t.Fatalf("clamp to channels: got %d workers, want 4", got)
	}
	if got := effectiveShardWorkers(3, 4); got != 3 {
		t.Fatalf("explicit count: got %d workers, want 3", got)
	}
	if got := effectiveShardWorkers(0, 4); got < 1 || got > 4 {
		t.Fatalf("GOMAXPROCS default out of range: %d", got)
	}
	if got := effectiveShardWorkers(0, 1); got != 1 {
		t.Fatalf("zero on single channel: got %d, want 1", got)
	}
}
