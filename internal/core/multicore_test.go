package core

import (
	"encoding/json"
	"testing"

	"easydram/internal/dram"
	"easydram/internal/smc"
	"easydram/internal/workload"
)

// digest canonically serializes a Result for bit-identity comparisons.
func digest(t *testing.T, r Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSingleCoreBitIdentityGolden pins the multicore tentpole's central
// guarantee: a Cores<=1 configuration routes through the unchanged
// single-core engines, so RunStreams with one stream is bit-identical —
// every field of the Result — to Run on the pre-multicore engine (whose
// numbers TestGoldenCycleCounts pins).
func TestSingleCoreBitIdentityGolden(t *testing.T) {
	configs := map[string]Config{
		"scaled":   TimeScalingA57(),
		"unscaled": NoTimeScaling(),
	}
	kernel := workload.PBGemver(48)
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			for _, cores := range []int{0, 1} {
				c := cfg
				c.Cores = cores
				sysA, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				base, err := sysA.Run(kernel.Stream())
				if err != nil {
					t.Fatal(err)
				}
				sysB, err := NewSystem(c)
				if err != nil {
					t.Fatal(err)
				}
				multi, err := sysB.RunStreams([]workload.Stream{kernel.Stream()})
				if err != nil {
					t.Fatal(err)
				}
				if digest(t, base) != digest(t, multi) {
					t.Fatalf("Cores=%d RunStreams diverged from the single-core engine:\n%+v\nvs\n%+v", cores, multi, base)
				}
			}
		})
	}
}

// TestMultiCoreDeterministic pins reproducibility of the contention model:
// a 2-core run with identical configuration and streams produces
// bit-identical results (all counters and per-core breakdowns). Runs under
// the CI race-smoke job.
func TestMultiCoreDeterministic(t *testing.T) {
	configs := map[string]Config{
		"scaled":   TimeScalingA57(),
		"unscaled": NoTimeScaling(),
	}
	for name, cfg := range configs {
		cfg := cfg
		cfg.Cores = 2
		t.Run(name, func(t *testing.T) {
			run := func() Result {
				sys, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sys.RunStreams([]workload.Stream{
					workload.PBGemver(48).Stream(),
					workload.LatMemRd(128<<10, 500).Stream(),
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if digest(t, a) != digest(t, b) {
				t.Fatalf("2-core runs diverged:\n%+v\nvs\n%+v", a, b)
			}
			if len(a.PerCore) != 2 {
				t.Fatalf("want 2 per-core results, got %d", len(a.PerCore))
			}
		})
	}
}

// TestMultiCoreConservation checks the end-to-end accounting of a 4-core
// contended run: every memory operation the cores issued reaches the tile
// seam and is served by the controllers, and the aggregate CPU counters
// equal the sum of the per-core ones.
func TestMultiCoreConservation(t *testing.T) {
	configs := map[string]Config{
		"scaled":   TimeScalingA57(),
		"unscaled": NoTimeScaling(),
	}
	for name, cfg := range configs {
		cfg := cfg
		cfg.Cores = 4
		t.Run(name, func(t *testing.T) {
			sys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.RunStreams([]workload.Stream{
				workload.PBGemver(32).Stream(),
				workload.LatMemRd(128<<10, 400).Stream(),
				workload.StreamTriad(2048).Stream(),
				workload.RandomAccess(512<<10, 600).Stream(),
			})
			if err != nil {
				t.Fatal(err)
			}
			issued := res.CPU.MemReads + res.CPU.MemFills + res.CPU.Writebacks +
				res.CPU.Flushes + res.CPU.RowClones + res.CPU.Prefetches
			if issued == 0 {
				t.Fatal("no memory traffic issued")
			}
			if res.Tile.RequestsIn != issued || res.Tile.ResponsesOut != issued || res.Ctrl.Served != issued {
				t.Fatalf("conservation violated: issued=%d tile.in=%d tile.out=%d served=%d",
					issued, res.Tile.RequestsIn, res.Tile.ResponsesOut, res.Ctrl.Served)
			}
			var sum int64
			var maxCycles = res.PerCore[0].ProcCycles
			for _, c := range res.PerCore {
				sum += c.CPU.Instructions
				if c.ProcCycles > maxCycles {
					maxCycles = c.ProcCycles
				}
				if c.ProcCycles == 0 {
					t.Fatal("a core reported zero cycles")
				}
			}
			if sum != res.CPU.Instructions {
				t.Fatalf("aggregate instructions %d != per-core sum %d", res.CPU.Instructions, sum)
			}
			if res.ProcCycles != maxCycles {
				t.Fatalf("ProcCycles %d should be the makespan %d", res.ProcCycles, maxCycles)
			}
		})
	}
}

// TestMultiCoreContentionSlows checks the point of the model: a core
// sharing the memory system with a bandwidth hog finishes later than the
// same core running alone.
func TestMultiCoreContentionSlows(t *testing.T) {
	cfg := NoTimeScaling()
	alone, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := alone.Run(workload.LatMemRd(128<<10, 400).Stream())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cores = 2
	shared, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := shared.RunStreams([]workload.Stream{
		workload.LatMemRd(128<<10, 400).Stream(),
		workload.StreamTriad(4096).Stream(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerCore[0].ProcCycles <= base.ProcCycles {
		t.Fatalf("contended run (%d cycles) should be slower than alone (%d cycles)",
			res.PerCore[0].ProcCycles, base.ProcCycles)
	}
}

// TestMultiCoreConfigMatrix sweeps the engine knobs the merge loop has to
// coexist with — refresh accounting, multi-channel topologies, BLISS — and
// checks determinism plus request conservation in each.
func TestMultiCoreConfigMatrix(t *testing.T) {
	variants := map[string]func() Config{
		"unscaled-refresh": func() Config { c := NoTimeScaling(); c.RefreshEnabled = true; return c },
		"scaled-refresh":   func() Config { c := TimeScalingA57(); c.RefreshEnabled = true; return c },
		"unscaled-2ch": func() Config {
			c := NoTimeScaling()
			c.Topology = dram.Topology{Channels: 2, Ranks: 1}
			return c
		},
		"scaled-2ch-refresh": func() Config {
			c := TimeScalingA57()
			c.Topology = dram.Topology{Channels: 2, Ranks: 2}
			c.RefreshEnabled = true
			return c
		},
		"unscaled-bliss": func() Config { c := NoTimeScaling(); c.Scheduler = smc.NewBLISS(); return c },
	}
	for name, mk := range variants {
		mk := mk
		t.Run(name, func(t *testing.T) {
			cfg := mk()
			cfg.Cores = 3
			run := func() Result {
				sys, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sys.RunStreams([]workload.Stream{
					workload.PBGemver(32).Stream(),
					workload.LatMemRd(128<<10, 300).Stream(),
					workload.StreamTriad(1024).Stream(),
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if digest(t, a) != digest(t, b) {
				t.Fatal("runs diverged")
			}
			issued := a.CPU.MemReads + a.CPU.MemFills + a.CPU.Writebacks +
				a.CPU.Flushes + a.CPU.RowClones + a.CPU.Prefetches
			if a.Ctrl.Served != issued {
				t.Fatalf("conservation violated: served=%d issued=%d", a.Ctrl.Served, issued)
			}
		})
	}
}

// TestMultiCoreGuards pins the multi-core API contract: Run and the
// checkpoint paths reject multi-core systems, and RunStreams validates the
// stream count.
func TestMultiCoreGuards(t *testing.T) {
	cfg := NoTimeScaling()
	cfg.Cores = 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(workload.PBGemver(16).Stream()); err == nil {
		t.Fatal("Run should reject a multi-core system")
	}
	if _, _, err := sys.RunCheckpoint(workload.PBGemver(16).Stream(), 100); err == nil {
		t.Fatal("RunCheckpoint should reject a multi-core system")
	}
	if _, err := sys.RunStreams([]workload.Stream{workload.PBGemver(16).Stream()}); err == nil {
		t.Fatal("RunStreams should reject a stream-count mismatch")
	}
	bad := NoTimeScaling()
	bad.Cores = 65
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate should reject Cores > 64")
	}
}
