// Package core is EasyDRAM's emulation engine — the paper's primary
// contribution. It couples the processor model, the EasyTile hardware
// buffers, the software memory controller, DRAM Bender, and the DRAM chip
// model, and advances system state with the time-scaling mechanics of
// Figures 5 and 6:
//
//   - processors are clock-gated while any memory request is outstanding;
//   - the SMC enters critical mode, locks the processor counter, and
//     advances the memory-controller counter by the *modeled* service time
//     (controller decision latency + DRAM time);
//   - responses carry a release tag; a processor never consumes a response
//     before its release cycle;
//   - processors replay the "missing" time-scaled duration as the MC
//     counter advances, issuing any requests the real system would have.
//
// The engine also runs in two non-scaled modes: the raw software-MC mode
// (PiDRAM-style, the paper's "EasyDRAM - No Time Scaling"), in which the
// SMC's real latency is visible to the processor; and the hardware-MC
// reference mode used to validate time scaling (§6).
//
// # Event-queue architecture
//
// The engine's inner loop is event-driven: each iteration either advances
// the processor or performs one SMC step, and both need the earliest
// pending event. Ready responses live in an indexed min-heap keyed by
// release point (releaseQueue), giving O(1) min-peek, O(log n) delivery,
// and O(1) lookup of the response a blocked processor waits on. Unserved
// requests additionally sit in an issue-order FIFO of arrival keys
// (arrivalRing); arrivals are monotone, so the earliest live arrival — the
// refresh accounting horizon — is read off the head in amortised O(1). See
// events.go. Both engines (scaled and unscaled) share the structures; only
// the key domain differs (processor cycles vs wall picoseconds).
package core

import (
	"fmt"

	"easydram/internal/cache"
	"easydram/internal/clock"
	"easydram/internal/cpu"
	"easydram/internal/dram"
	"easydram/internal/fault"
	"easydram/internal/smc"
	"easydram/internal/snapshot"
	"easydram/internal/tile"
	"easydram/internal/timescale"
	"easydram/internal/workload"
)

// Config assembles one emulated system.
type Config struct {
	// Scaling selects time-scaled emulation. When false the processor
	// follows the FPGA wall clock at its own frequency.
	Scaling bool
	// HardwareMC zeroes the software-memory-controller cost (an RTL
	// controller): the §6 validation reference configuration.
	HardwareMC bool

	// FPGA is the fabric clock; ProcPhys is the physical clock the
	// processor domain runs at on the FPGA.
	FPGA     clock.Clock
	ProcPhys clock.Clock

	// CPU configures the core model (its Clock field is the emulated
	// processor clock).
	CPU  cpu.Config
	Hier cache.HierConfig
	DRAM dram.Config

	Costs     tile.CostModel
	Scheduler smc.Scheduler
	// Policy selects the controller's row-buffer management.
	Policy smc.PagePolicy
	// TRCD is the optional reduced-tRCD provider (§8).
	TRCD smc.TRCDProvider

	// ModeledCtrlLatency is the modeled hardware memory controller's
	// per-request decision latency in the target system.
	ModeledCtrlLatency clock.PS
	// MemPathLatency is the round-trip interconnect latency between the
	// last-level cache and the memory controller in the target system.
	MemPathLatency clock.PS

	// BurstCap bounds how many same-row requests one SMC step may serve
	// through a single Bender program (row-hit burst service). 0 or 1
	// selects serial service. Bursting never changes emulated timing: the
	// engine only grants a burst when serving it is provably bit-identical
	// to serial service (and per-request modeled costs are charged exactly
	// as the serial path charges them), so this knob trades nothing but
	// host time. With refresh enabled the burst gates additionally replay
	// the per-step refresh-horizon check and cut the burst before any REF
	// would fall due, so refresh-on configurations burst too (see burst.go).
	BurstCap int

	// ShardWorkers bounds the host worker pool the engine shards per-channel
	// service onto during fence and drain phases (see shard.go). This is
	// host parallelism only: results are byte-identical at any worker count.
	// 0 selects GOMAXPROCS; 1 forces the existing single-threaded path
	// (zero overhead); values above the channel count are clamped. Sharded
	// runs invoke a shared stateless Scheduler and the TRCD provider from
	// several goroutines concurrently, so both must be safe for concurrent
	// read-only use (every implementation in this repository is).
	// ShardWorkers is deliberately excluded from CompatKey: a checkpoint
	// taken at one worker count restores at any other.
	ShardWorkers int

	// Cores selects the number of emulated host cores. 0 or 1 models the
	// paper's single-core host through the unchanged engine (bit-identical
	// to the pre-multicore engine, golden-pinned). Above 1, the system
	// models N cores with private L1s behind a shared L2 competing for the
	// per-channel controllers; runs take one workload stream per core via
	// RunStreams (see multicore.go). Multi-core runs force BurstCap and
	// ShardWorkers to their serial settings and reject checkpoints.
	Cores int

	// Topology selects the module organisation: independent channels, each
	// with its own controller instance and Bender pipeline, and ranks
	// sharing each channel's bus. The zero value normalises to the paper's
	// single-channel, single-rank module, which is bit-identical to the
	// pre-topology engine (pinned by the golden cycle-count tests).
	Topology dram.Topology

	RefreshEnabled bool

	// Faults configures fault injection across the stack: chip-level disturb
	// /transient/stuck-at faults (wired into every rank's DRAM model), host-
	// link corruption at the tile seam, and the SMC's verify-and-retry
	// recovery path. The zero value injects nothing and leaves every hot path
	// on its fault-free branch — such a system is bit-identical to one built
	// before this knob existed (pinned by the golden cycle-count tests).
	Faults fault.Config
	// Mitigation selects the per-channel RowHammer mitigation policy the SMC
	// runs (each channel gets its own instance, seeded per channel).
	Mitigation fault.MitigationConfig

	// MaxProcCycles aborts runs that exceed this many emulated processor
	// cycles (safety net; 0 means no limit).
	MaxProcCycles clock.Cycles
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if !c.FPGA.Valid() || !c.ProcPhys.Valid() {
		return fmt.Errorf("core: FPGA and processor physical clocks must be set")
	}
	if err := c.CPU.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if !c.Scaling && c.CPU.Clock.Period() != c.ProcPhys.Period() {
		return fmt.Errorf("core: without time scaling the emulated clock (%v) must equal the physical clock (%v)",
			c.CPU.Clock, c.ProcPhys)
	}
	if c.ModeledCtrlLatency < 0 || c.MemPathLatency < 0 {
		return fmt.Errorf("core: modeled latencies must be non-negative")
	}
	if c.BurstCap < 0 {
		return fmt.Errorf("core: burst cap must be non-negative, got %d", c.BurstCap)
	}
	if c.ShardWorkers < 0 {
		return fmt.Errorf("core: shard workers must be non-negative, got %d", c.ShardWorkers)
	}
	if c.Cores < 0 || c.Cores > 64 {
		return fmt.Errorf("core: cores must be in [0, 64], got %d", c.Cores)
	}
	if err := c.Topology.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Mitigation.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// Result reports one workload run.
type Result struct {
	// ProcCycles is the workload's execution time in emulated processor
	// cycles — the paper's primary metric.
	ProcCycles clock.Cycles
	// EmulatedTime is ProcCycles converted to the emulated clock.
	EmulatedTime clock.PS
	// WallTime is the FPGA wall-clock time the emulation occupied and
	// GlobalCycles the same in FPGA cycles (Figure 14's denominator).
	WallTime     clock.PS
	GlobalCycles clock.Cycles
	// SimSpeedMHz is emulated processor cycles per FPGA wall second.
	SimSpeedMHz float64

	// Marks holds the processor cycle counts recorded at each OpMark, in
	// order. Workloads bracket their measured region with two marks.
	Marks []clock.Cycles

	// CPU and L1 aggregate across cores in multi-core runs (the per-core
	// breakdown lives in PerCore); L2 is the shared cache.
	CPU  cpu.Stats
	L1   cache.Stats
	L2   cache.Stats
	Ctrl smc.ControllerStats
	Chip dram.Stats
	Tile tile.Stats

	// PerCore holds each emulated core's share of a multi-core run, in
	// core order. Nil for single-core runs.
	PerCore []CoreResult
}

// CoreResult is one emulated core's share of a multi-core run.
type CoreResult struct {
	// ProcCycles is the cycle count at which this core finished its stream
	// (its completion time under contention).
	ProcCycles clock.Cycles
	// Marks holds the core's OpMark cycle counts, in order.
	Marks []clock.Cycles
	// CPU is the core's instruction/stall accounting; L1 its private cache.
	CPU cpu.Stats
	L1  cache.Stats
}

// IPC reports the core's instructions per cycle over its completion time.
func (c CoreResult) IPC() float64 {
	if c.ProcCycles == 0 {
		return 0
	}
	return float64(c.CPU.Instructions) / float64(c.ProcCycles)
}

// Window reports the measured region in emulated processor cycles: the span
// between the last two marks, or the whole run when fewer than two marks
// were recorded.
func (r Result) Window() clock.Cycles {
	if n := len(r.Marks); n >= 2 {
		return r.Marks[n-1] - r.Marks[n-2]
	}
	return r.ProcCycles
}

// WindowTime reports the measured region in emulated time.
func (r Result) WindowTime(c clock.Clock) clock.PS { return c.ToTime(r.Window()) }

// MPKI reports last-level-cache misses per kilo-instruction.
func (r Result) MPKI() float64 {
	if r.CPU.Instructions == 0 {
		return 0
	}
	misses := r.CPU.MemReads + r.CPU.MemFills
	return 1000 * float64(misses) / float64(r.CPU.Instructions)
}

// sysChannel is one memory channel's stack: the module (per-rank chips on a
// shared bus), the EasyTile driving it, the channel's own software memory
// controller (its request table and scheduler instance), and the execution
// environment the engine steps it with.
type sysChannel struct {
	mod  *dram.Module
	tile *tile.Tile
	ctl  *smc.BaseController
	env  *smc.Env
}

// System is a fully assembled emulated system. Build one per run.
type System struct {
	cfg  Config
	topo dram.Topology
	hier *cache.Hierarchy
	// mhier is the multi-core cache fabric (private L1s, shared L2), built
	// only when cfg.Cores > 1; single-core runs use hier.
	mhier  *cache.MultiHierarchy
	chans  []sysChannel
	mapper *smc.TopologyMapper

	// hostReqID numbers host-driven characterization requests (see host.go).
	// Per-system so concurrently running systems stay independent.
	hostReqID uint64

	// settleBatches/settleDelivered hold the most recent run's batched
	// response-settlement counters (see SettleStats).
	settleBatches   int64
	settleDelivered int64
	// shardRounds/shardSteps hold the most recent run's shard-runner
	// counters (see ShardStats).
	shardRounds int64
	shardSteps  int64
}

// SettleStats reports the batched response-settlement counters of the most
// recent run: how many nonzero drains of matured responses the engine
// performed (batches) and how many responses those drains delivered in total
// (delivered). delivered/batches is the mean settle batch length — the
// engine-overhead amortization ROADMAP item 4 targets. Host-side telemetry
// only; the counters never feed emulated time.
func (s *System) SettleStats() (batches, delivered int64) {
	return s.settleBatches, s.settleDelivered
}

// ShardStats reports the host-parallel shard runner's counters for the most
// recent run: how many parallel fence/drain rounds engaged and how many
// channel steps those rounds executed off the serial path (see shard.go).
// Host-side telemetry only; sharding never changes emulated results, so
// these counters exist to prove a run actually exercised the parallel path.
func (s *System) ShardStats() (rounds, steps int64) {
	return s.shardRounds, s.shardSteps
}

// hostReqIDBase is the first host-driven request ID. It sits far above any
// CPU-issued ID (those start at 1 and stay dense), so the two ID spaces
// never collide.
const hostReqIDBase = 1 << 48

// channelScheduler resolves the scheduler instance channel ch runs:
// channel 0 uses cfg.Scheduler as configured; further channels clone
// stateful policies (smc.ChannelScheduler) and share stateless ones.
func channelScheduler(s smc.Scheduler, ch int) (smc.Scheduler, error) {
	if ch == 0 || s == nil {
		return s, nil
	}
	if sc, ok := s.(smc.ChannelScheduler); ok {
		return sc.CloneForChannel(), nil
	}
	if smc.Stateless(s) {
		return s, nil // safe to share across channels
	}
	return nil, fmt.Errorf("core: scheduler %q is stateful and must implement smc.ChannelScheduler for multi-channel topologies", s.Name())
}

// NewSystem assembles a system from cfg.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo := cfg.Topology.Normalize()
	hier, err := cache.NewHierarchy(cfg.Hier)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	banksPerRank := cfg.DRAM.BankGroups * cfg.DRAM.BanksPerGroup
	mapper, err := smc.NewTopologyMapper(topo, banksPerRank, cfg.DRAM.ColsPerRow)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s := &System{
		cfg:       cfg,
		topo:      topo,
		hier:      hier,
		mapper:    mapper,
		hostReqID: hostReqIDBase,
	}
	if cfg.Cores > 1 {
		s.mhier, err = cache.NewMultiHierarchy(cfg.Hier, cfg.Cores)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	dramCfg := cfg.DRAM
	dramCfg.Faults = cfg.Faults.Chip
	for c := 0; c < topo.Channels; c++ {
		mod, err := dram.NewModule(dramCfg, topo.Ranks, c*topo.Ranks)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		sched, err := channelScheduler(cfg.Scheduler, c)
		if err != nil {
			return nil, err
		}
		// Fault seams are seeded per channel off the DRAM seed so a fixed
		// config reproduces the same fault sequence at any worker count, and
		// channels never mirror each other's faults.
		chanSeed := cfg.DRAM.Seed + uint64(c)*0x9e3779b97f4a7c15
		mit, err := fault.NewMitigator(cfg.Mitigation, cfg.DRAM.RowsPerBank, c)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		ctl, err := smc.NewBaseController(smc.Config{
			Mapper:         mapper,
			Scheduler:      sched,
			TRCD:           cfg.TRCD,
			RefreshEnabled: cfg.RefreshEnabled,
			Policy:         cfg.Policy,
			Ranks:          topo.Ranks,
			Recovery:       cfg.Faults.Recovery,
			Mitigation:     mit,
			RowsPerBank:    cfg.DRAM.RowsPerBank,
			QuarantineSeed: chanSeed,
		}, mod.Timing(), mod.Banks())
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		t := tile.NewDevice(mod, cfg.Costs)
		if cfg.Faults.Link.Enabled() {
			t.SetFaultLink(fault.NewLinkModel(cfg.Faults.Link, chanSeed))
		}
		s.chans = append(s.chans, sysChannel{mod: mod, tile: t, ctl: ctl, env: smc.NewEnv(t)})
	}
	return s, nil
}

// Topology reports the normalised module topology the system models.
func (s *System) Topology() dram.Topology { return s.topo }

// Config returns a copy of the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Chip exposes the DRAM model of channel 0, rank 0 (profiling tools use it
// read-only; the characterization helpers target the default topology).
func (s *System) Chip() *dram.Chip { return s.chans[0].mod.Rank(0) }

// Module exposes channel ch's module (per-rank chip models).
func (s *System) Module(ch int) *dram.Module { return s.chans[ch].mod }

// PeekLine copies the stored contents of a (as decoded by Mapper) into dst
// without issuing any command, routing to the owning channel and rank.
// False when data tracking is off. Host-side test/debug helper.
func (s *System) PeekLine(a dram.Addr, dst []byte) bool {
	return s.chans[a.Chan].mod.PeekLine(a, dst)
}

// PokeLine stores src at a without issuing any command, routing to the
// owning channel and rank. Host-side test/debug helper.
func (s *System) PokeLine(a dram.Addr, src []byte) bool {
	return s.chans[a.Chan].mod.PokeLine(a, src)
}

// Mapper exposes the physical-to-DRAM address mapping in use.
func (s *System) Mapper() smc.Mapper { return s.mapper }

// chanIndex routes a physical address to its owning channel.
func (s *System) chanIndex(pa uint64) int {
	if len(s.chans) == 1 {
		return 0
	}
	return s.mapper.Map(pa).Chan
}

// pending tracks one in-flight request. The owning channel is not stored:
// channel routing is resolved at issue time (per-channel staged lists,
// arrival rings, and tile FIFOs), and settle paths read responses from the
// channel env they stepped.
type pending struct {
	posted bool
	// arrival is the wall time of issue (non-scaled modes).
	arrival clock.PS
	// tag is the processor cycle count at issue (scaled mode).
	tag clock.Cycles
}

// stagedReq is one issued-but-not-arrived request in the unscaled engine:
// its slot in the tile's request slab plus its ID (arrival time lives in
// the in-flight table).
type stagedReq struct {
	slot tile.ReqSlot
	id   uint64
}

// Run executes the workload stream to completion and returns the result.
// The stream is closed before Run returns. Multi-core systems need one
// stream per core; use RunStreams.
func (s *System) Run(strm workload.Stream) (Result, error) {
	if s.cfg.Cores > 1 {
		strm.Close()
		return Result{}, fmt.Errorf("core: system is configured with %d cores; use RunStreams with one stream per core", s.cfg.Cores)
	}
	return s.run(strm, nil, nil)
}

// RunStreams executes one workload stream per emulated core to completion
// and returns the combined result (Result.PerCore carries the per-core
// breakdown). The number of streams must match the configured core count;
// with one core it is equivalent to Run. All streams are closed before
// RunStreams returns.
func (s *System) RunStreams(strms []workload.Stream) (Result, error) {
	want := s.cfg.Cores
	if want < 1 {
		want = 1
	}
	if len(strms) != want {
		for _, st := range strms {
			st.Close()
		}
		return Result{}, fmt.Errorf("core: RunStreams needs %d streams (one per core), got %d", want, len(strms))
	}
	if want == 1 {
		return s.run(strms[0], nil, nil)
	}
	return s.runMulti(strms)
}

// run is the common body behind Run, RunCheckpoint, and RunRestored.
func (s *System) run(strm workload.Stream, ck *ckptReq, restore *snapshot.Reader) (Result, error) {
	defer strm.Close()
	core, err := cpu.New(s.cfg.CPU, s.hier, strm)
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	nch := len(s.chans)
	e := &engine{
		cfg:           s.cfg,
		sys:           s,
		core:          core,
		inflight:      make([]slotRing, nch),
		ready:         newReleaseQueue(),
		trackArrivals: s.cfg.RefreshEnabled,
		burstCap:      1,
		chanFree:      make([]clock.PS, nch),
		chanMC:        make([]clock.PS, nch),
		arrivals:      make([]arrivalRing, nch),
		staged:        make([][]stagedReq, nch),
		burstLimit:    make([]int64, nch),
		shardWorkers:  effectiveShardWorkers(s.cfg.ShardWorkers, nch),
		ckpt:          ck,
		restore:       restore,
	}
	for i := range e.inflight {
		e.inflight[i] = newSlotRing()
	}
	if s.cfg.BurstCap > 1 {
		// With refresh enabled the burst gates replay the per-step
		// refresh-horizon check and cut the burst before a REF falls due
		// (see burst.go), so the cap engages in every configuration.
		e.burstCap = s.cfg.BurstCap
	}
	defer e.stopShard()
	if s.cfg.Scaling {
		err = e.runScaled()
	} else {
		err = e.runUnscaled()
	}
	s.settleBatches, s.settleDelivered = e.settleBatches, e.settleDelivered
	s.shardRounds, s.shardSteps = e.shardRounds, e.shardSteps
	if err != nil {
		return Result{}, err
	}
	return e.result(), nil
}

type engine struct {
	cfg  Config
	sys  *System
	core *cpu.Core

	// multi, when non-nil, marks a multi-core run: core is nil, the merge
	// loops in multicore.go drive the channels, and the settle paths route
	// responses to per-core queues instead of ready. See multicore.go.
	multi *mcEngine

	ts *timescale.Counters

	// Non-scaled mode wall clock (picoseconds).
	wallNow clock.PS
	// chanFree is each channel's SMC-free point (non-scaled modes): the
	// channels are independent serial resources, so their busy chains
	// advance separately and service overlaps in wall time.
	chanFree []clock.PS
	// chanMC is each channel's modeled-MC service chain (scaled mode,
	// multi-channel only; with one channel the ts counters carry it). The
	// global MC counter is kept at the maximum over channels.
	chanMC []clock.PS

	// inflight tracks outstanding requests in dense slot rings indexed by
	// request ID (IDs are sequential, so indexing replaces hashing), one
	// ring per owning channel so shard workers mutate only their own ring.
	inflight []slotRing
	// arrivals mirrors inflight in issue order, one ring per channel
	// (monotone arrival keys: processor-cycle tags when scaling, wall
	// picoseconds otherwise); the head yields the channel's earliest live
	// arrival in amortised O(1). It feeds the refresh accounting horizon
	// only, so it is maintained (trackArrivals) only when refresh is
	// enabled.
	arrivals      []arrivalRing
	trackArrivals bool
	// ready holds produced responses keyed by their release point:
	// processor cycles when scaling, wall picoseconds otherwise.
	ready releaseQueue
	// staged holds issued requests not yet visible to their channel's
	// controller (non-scaled mode): the SMC only observes requests that
	// have arrived by its next decision point, mirroring the scaled
	// engine's gating. Request bytes already live in the tile's slab;
	// staged carries slots, one list per channel.
	staged [][]stagedReq

	blockedOn  uint64
	fencing    bool
	maxRelease clock.Cycles
	marks      []clock.Cycles
	// maxWall is the latest completion wall time of any SMC work (non-scaled
	// mode): what a fence waits out. A field (not a loop local) so
	// checkpoints can capture it.
	maxWall clock.PS

	// ckpt, when non-nil, requests a checkpoint at the first quiescent point
	// at or after ckpt.at emulated processor cycles; restore, when non-nil,
	// is a parsed checkpoint the engine loads before its first iteration.
	// See checkpoint.go.
	ckpt    *ckptReq
	restore *snapshot.Reader

	// Burst service state: burstCap is the per-step budget granted to the
	// controller (1 = serial); burstPhase records which engine state the
	// current SMC step runs under; and burstLimit is, per channel, the next
	// staged arrival (unscaled mode) the channel's burst service chain must
	// stay below. The gates learn the stepped channel through per-env
	// closures bound at run start. See burst.go.
	burstCap   int
	burstPhase burstPhase
	burstLimit []int64

	// shardWorkers is the effective host worker count (1 = serial path);
	// shard is the lazily created worker pool. See shard.go.
	shardWorkers int
	shard        *shardRunner

	// settleBatches/settleDelivered count batched response settlement: each
	// nonzero drain of matured releases is one batch. Exposed through
	// System.SettleStats (not Result: the counters are host-side engine
	// telemetry, not emulated-system behaviour).
	settleBatches   int64
	settleDelivered int64
	// shardRounds/shardSteps count engaged shard rounds and the channel
	// steps they executed off the serial path. Exposed through
	// System.ShardStats.
	shardRounds int64
	shardSteps  int64

	procCycles  clock.Cycles // final, non-scaled mode
	globalFinal clock.Cycles
}

// extraModeled is the per-response modeled latency added by the engine on
// top of what the controller accounted (decision latency of the modeled
// hardware controller plus the interconnect path).
func (e *engine) extraModeled(nResponses int) clock.PS {
	extra := e.cfg.MemPathLatency
	if e.cfg.Scaling || e.cfg.HardwareMC {
		extra += e.cfg.ModeledCtrlLatency
	}
	return extra * clock.PS(nResponses)
}

func (e *engine) result() Result {
	var r Result
	if e.cfg.Scaling {
		r.ProcCycles = e.ts.Proc()
		r.EmulatedTime = e.cfg.CPU.Clock.ToTime(r.ProcCycles)
		r.GlobalCycles = e.ts.Global()
		r.WallTime = e.ts.WallTime()
	} else {
		r.ProcCycles = e.procCycles
		r.EmulatedTime = e.cfg.CPU.Clock.ToTime(r.ProcCycles)
		r.GlobalCycles = e.globalFinal
		r.WallTime = e.cfg.FPGA.ToTime(r.GlobalCycles)
	}
	if r.WallTime > 0 {
		r.SimSpeedMHz = float64(r.ProcCycles) / r.WallTime.Seconds() / 1e6
	}
	r.Marks = e.marks
	if e.multi != nil {
		for i, c := range e.multi.cores {
			cr := CoreResult{
				ProcCycles: c.procCycles,
				Marks:      c.marks,
				CPU:        c.core.Stats(),
				L1:         e.sys.mhier.L1Stats(i),
			}
			r.PerCore = append(r.PerCore, cr)
			r.CPU.Add(cr.CPU)
			r.L1.Add(cr.L1)
		}
		r.L2 = e.sys.mhier.L2Stats()
	} else {
		r.CPU = e.core.Stats()
		r.L1 = e.sys.hier.L1.Stats()
		r.L2 = e.sys.hier.L2.Stats()
	}
	for i := range e.sys.chans {
		c := &e.sys.chans[i]
		r.Ctrl.Accumulate(c.ctl.Stats())
		r.Chip.Accumulate(c.mod.Stats())
		r.Tile.Accumulate(c.tile.Stats())
	}
	return r
}

// inflightLen reports the total number of outstanding requests across all
// channels' rings.
func (e *engine) inflightLen() int {
	n := 0
	for i := range e.inflight {
		n += e.inflight[i].Len()
	}
	return n
}

// earliestArrival reports the smallest arrival key among channel ch's
// unserved requests (amortised O(1): completed heads are skipped off the
// issue-order ring).
func (e *engine) earliestArrival(ch int) (int64, bool) {
	ring := &e.arrivals[ch]
	for ring.head < len(ring.buf) {
		ent := ring.buf[ring.head]
		if e.inflight[ch].Contains(ent.id) {
			return ent.key, true
		}
		ring.skipHead()
	}
	return 0, false
}

// earliestUnservedArrival reports the smallest arrival key among channel
// ch's requests that are in flight and NOT yet responded in the channel's
// current (burst) step — the arrival the next serial step's refresh horizon
// would see. Unlike earliestArrival it must not pop ring heads: responded
// requests stay in the inflight table until the step settles.
func (e *engine) earliestUnservedArrival(ch int) (int64, bool) {
	resp := e.sys.chans[ch].env.Responses()
	ring := &e.arrivals[ch]
	for i := ring.head; i < len(ring.buf); i++ {
		ent := ring.buf[i]
		if !e.inflight[ch].Contains(ent.id) {
			continue
		}
		responded := false
		for _, r := range resp {
			if r.ReqID == ent.id {
				responded = true
				break
			}
		}
		if !responded {
			return ent.key, true
		}
	}
	return 0, false
}

func (e *engine) checkCap(proc clock.Cycles) error {
	if e.cfg.MaxProcCycles > 0 && proc > e.cfg.MaxProcCycles {
		return fmt.Errorf("core: run exceeded %d emulated processor cycles", e.cfg.MaxProcCycles)
	}
	return nil
}
