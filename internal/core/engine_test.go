package core

import (
	"testing"

	"easydram/internal/smc"
	"easydram/internal/workload"
)

// Engine edge-case tests beyond the smoke tests in core_test.go.

func TestMarksAndWindow(t *testing.T) {
	ops := []workload.Op{
		{Kind: workload.OpCompute, N: 100},
		{Kind: workload.OpBarrier},
		{Kind: workload.OpMark},
		{Kind: workload.OpCompute, N: 2000},
		{Kind: workload.OpBarrier},
		{Kind: workload.OpMark},
	}
	for _, cfg := range []Config{TimeScalingA57(), NoTimeScaling()} {
		res := mustRun(t, cfg, ops)
		if len(res.Marks) != 2 {
			t.Fatalf("%v: marks = %v", cfg.Scaling, res.Marks)
		}
		w := int64(res.Window())
		wantMin := int64(2000 / cfg.CPU.IssueWidth)
		if w < wantMin || w > wantMin+50 {
			t.Fatalf("window = %d, want ~%d", w, wantMin)
		}
	}
}

func TestPostedWritebacksDrainAtEnd(t *testing.T) {
	// Dirty many conflicting lines so the final state has pending
	// writebacks, then end the stream without a barrier.
	var ops []workload.Op
	for i := 0; i < 64; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpStore, Addr: uint64(i) * (4 << 20)})
	}
	res := mustRun(t, TimeScalingA57(), ops)
	if res.CPU.MemFills != 64 {
		t.Fatalf("fills = %d", res.CPU.MemFills)
	}
	// Every chip write the controller performed must be accounted in the
	// wall clock even though the CPU never waited for them.
	if res.WallTime <= 0 {
		t.Fatalf("wall time not accounted")
	}
}

func TestFenceWaitsForWritebacks(t *testing.T) {
	var ops []workload.Op
	// Dirty a line, flush it (posted writeback), then fence.
	ops = append(ops,
		workload.Op{Kind: workload.OpStore, Addr: 0x40},
		workload.Op{Kind: workload.OpFlush, Addr: 0x40},
		workload.Op{Kind: workload.OpBarrier},
		workload.Op{Kind: workload.OpCompute, N: 10},
	)
	res := mustRun(t, TimeScalingA57(), ops)
	if res.Ctrl.Writes == 0 {
		t.Fatalf("flush writeback never reached the controller")
	}
}

func TestRowCloneThroughEngine(t *testing.T) {
	cfg := TimeScalingA57()
	cfg.DRAM = TechniqueDRAM()
	cfg.DRAM.ClonableFraction = 1
	rowBytes := uint64(8192)
	banks := uint64(16)
	ops := []workload.Op{
		{Kind: workload.OpRowClone, Src: 0, Addr: rowBytes * banks}, // row 0 -> 1, bank 0
	}
	res := mustRun(t, cfg, ops)
	if res.Chip.RowClones != 1 {
		t.Fatalf("chip saw %d clones", res.Chip.RowClones)
	}
	if res.CPU.RowClones != 1 || res.Ctrl.RowClones != 1 {
		t.Fatalf("rowclone not accounted end to end: %+v %+v", res.CPU, res.Ctrl)
	}
}

func TestRefreshAccountedConsistently(t *testing.T) {
	// A long memory-active run must issue refreshes in both engines and
	// their counts must agree (deterministic settle rule).
	ops := pointerChase(4000, 1<<20)
	ts := mustRun(t, TimeScaling1GHz(), ops)
	ref := mustRun(t, Reference1GHz(), ops)
	if ts.Ctrl.Refreshes == 0 {
		t.Fatalf("no refreshes in a %v run", ts.EmulatedTime)
	}
	if ts.Ctrl.Refreshes != ref.Ctrl.Refreshes {
		t.Fatalf("refresh counts diverge: %d vs %d", ts.Ctrl.Refreshes, ref.Ctrl.Refreshes)
	}
}

func TestMaxProcCyclesAborts(t *testing.T) {
	cfg := TimeScalingA57()
	cfg.MaxProcCycles = 100
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(workload.NewSliceStream([]workload.Op{{Kind: workload.OpCompute, N: 1_000_000}}))
	if err == nil {
		t.Fatalf("cap did not abort the run")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := TimeScalingA57()
	cfg.CPU.IssueWidth = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Fatalf("bad CPU config must fail")
	}
	cfg = NoTimeScaling()
	cfg.CPU.Clock = TimeScalingA57().CPU.Clock // mismatched with ProcPhys
	if _, err := NewSystem(cfg); err == nil {
		t.Fatalf("unscaled clock mismatch must fail")
	}
	cfg = TimeScalingA57()
	cfg.ModeledCtrlLatency = -1
	if _, err := NewSystem(cfg); err == nil {
		t.Fatalf("negative latency must fail")
	}
	cfg = TimeScalingA57()
	cfg.DRAM.SubarrayRows = 100 // does not divide rows
	if _, err := NewSystem(cfg); err == nil {
		t.Fatalf("bad DRAM config must fail")
	}
}

func TestSimSpeedReported(t *testing.T) {
	res := mustRun(t, TimeScalingA57(), pointerChase(500, 1<<20))
	if res.SimSpeedMHz <= 0 || res.SimSpeedMHz > 101 {
		t.Fatalf("sim speed %.2f MHz implausible", res.SimSpeedMHz)
	}
	if res.GlobalCycles <= 0 {
		t.Fatalf("global cycles not tracked")
	}
}

func TestMPKI(t *testing.T) {
	res := mustRun(t, TimeScalingA57(), pointerChase(1000, 1<<20))
	if res.MPKI() < 500 {
		// Every dependent load misses: MPKI approaches 1000.
		t.Fatalf("MPKI = %.1f for a pure miss stream", res.MPKI())
	}
	var empty Result
	if empty.MPKI() != 0 {
		t.Fatalf("empty result MPKI must be 0")
	}
}

func TestSystemStatePersistsAcrossRuns(t *testing.T) {
	sys, err := NewSystem(TimeScalingA57())
	if err != nil {
		t.Fatal(err)
	}
	warm := []workload.Op{{Kind: workload.OpLoad, Addr: 0x1000}}
	r1, err := sys.Run(workload.NewSliceStream(warm))
	if err != nil {
		t.Fatal(err)
	}
	if r1.CPU.MemReads != 1 {
		t.Fatalf("first touch should miss")
	}
	// The second run reuses the same caches: now it hits.
	r2, err := sys.Run(workload.NewSliceStream(warm))
	if err != nil {
		t.Fatal(err)
	}
	if r2.CPU.MemReads != 0 { // per-run CPU stats: the warm cache hits
		t.Fatalf("second run should hit the warm cache (mem reads = %d)", r2.CPU.MemReads)
	}
}

func TestClosedPagePolicyEndToEnd(t *testing.T) {
	// Sequential reads within one row: open-page turns them into row hits;
	// closed-page pays an activate per access.
	var ops []workload.Op
	for i := 0; i < 64; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpLoad, Addr: uint64(i) * 64, Dep: true})
	}
	open := TimeScalingA57()
	open.RefreshEnabled = false
	closed := open
	closed.Policy = smc.ClosedPage
	ro := mustRun(t, open, ops)
	rc := mustRun(t, closed, ops)
	if ro.Ctrl.RowHits == 0 {
		t.Fatalf("open-page saw no row hits")
	}
	if rc.Ctrl.RowHits != 0 {
		t.Fatalf("closed-page saw %d row hits", rc.Ctrl.RowHits)
	}
	if rc.ProcCycles <= ro.ProcCycles {
		t.Fatalf("closed-page (%d) should be slower than open-page (%d) on row-friendly traffic",
			rc.ProcCycles, ro.ProcCycles)
	}
}

func TestPrefetcherEndToEnd(t *testing.T) {
	var ops []workload.Op
	for i := 0; i < 2048; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpLoad, Addr: uint64(i) * 64, Dep: true})
	}
	base := TimeScalingA57()
	pf := base
	pf.CPU.NextLinePrefetch = true
	r0 := mustRun(t, base, ops)
	r1 := mustRun(t, pf, ops)
	if r1.CPU.Prefetches == 0 {
		t.Fatalf("prefetcher never fired")
	}
	if r1.ProcCycles >= r0.ProcCycles {
		t.Fatalf("prefetcher (%d) should beat the baseline (%d) on a sequential chase",
			r1.ProcCycles, r0.ProcCycles)
	}
}
