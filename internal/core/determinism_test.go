package core

import (
	"testing"

	"easydram/internal/clock"
	"easydram/internal/workload"
)

// TestRunsAreDeterministic pins the repository's reproducibility guarantee:
// identical configuration + seed + workload produce bit-identical results,
// including every statistic. This is what makes characterization on a
// scratch system transferable to the measured system.
func TestRunsAreDeterministic(t *testing.T) {
	configs := map[string]Config{
		"scaled":   TimeScalingA57(),
		"unscaled": NoTimeScaling(),
	}
	kernel := workload.PBGemver(48)
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			run := func() Result {
				sys, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sys.Run(kernel.Stream())
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if a.ProcCycles != b.ProcCycles || a.GlobalCycles != b.GlobalCycles {
				t.Fatalf("timing diverged: %d/%d vs %d/%d",
					a.ProcCycles, a.GlobalCycles, b.ProcCycles, b.GlobalCycles)
			}
			if a.CPU != b.CPU || a.Ctrl != b.Ctrl || a.Chip != b.Chip {
				t.Fatalf("statistics diverged:\n%+v\n%+v", a, b)
			}
		})
	}
}

// TestGoldenCycleCounts pins cycle-exact parity with the seed engine: the
// golden numbers below were captured from the original map-scan engine
// (pre event-queue/swap-remove refactor) and must never drift. They cover
// the scaled engine, the unscaled engine, and the §6 validation pair, on a
// compute-heavy kernel and a miss-heavy pointer chase, including the
// controller decision counters (served/hits/misses/refreshes) that would
// expose any change in scheduling order.
func TestGoldenCycleCounts(t *testing.T) {
	type golden struct {
		proc, global         clock.Cycles
		served, hits, misses int64
		refreshes            int64
	}
	gemver := workload.PBGemver(48)
	latmem := workload.LatMemRd(256<<10, 2000)
	cases := []struct {
		name string
		cfg  Config
		k    workload.Kernel
		want golden
	}{
		{"scaled/gemver", TimeScalingA57(), gemver, golden{28951, 164520, 336, 321, 15, 2}},
		{"unscaled/gemver", NoTimeScaling(), gemver, golden{67384, 134768, 336, 203, 133, 167}},
		{"ts1ghz/gemver", TimeScaling1GHz(), gemver, golden{28623, 162946, 336, 320, 16, 3}},
		{"ref1ghz/gemver", Reference1GHz(), gemver, golden{28623, 2863, 336, 320, 16, 3}},
		{"scaled/latmem", TimeScalingA57(), latmem, golden{519265, 2888735, 4096, 986, 3110, 43}},
		{"unscaled/latmem", NoTimeScaling(), latmem, golden{187087, 374174, 4096, 880, 3216, 407}},
		{"ts1ghz/latmem", TimeScaling1GHz(), latmem, golden{376316, 2173909, 4096, 986, 3110, 43}},
		{"ref1ghz/latmem", Reference1GHz(), latmem, golden{376315, 37632, 4096, 986, 3110, 43}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sys, err := NewSystem(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run(c.k.Stream())
			if err != nil {
				t.Fatal(err)
			}
			got := golden{res.ProcCycles, res.GlobalCycles,
				res.Ctrl.Served, res.Ctrl.RowHits, res.Ctrl.RowMisses, res.Ctrl.Refreshes}
			if got != c.want {
				t.Fatalf("cycle counts drifted from the seed engine:\n got %+v\nwant %+v", got, c.want)
			}
		})
	}
}

// TestSeedChangesOutcomes verifies the seed actually flows into behaviour
// that depends on the chip (RowClone success patterns).
func TestSeedChangesOutcomes(t *testing.T) {
	count := func(seed uint64) int64 {
		cfg := TimeScalingA57()
		cfg.DRAM = TechniqueDRAM()
		cfg.DRAM.RowsPerBank = 4096
		cfg.DRAM.Seed = seed
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ok := int64(0)
		for i := uint64(0); i < 64; i++ {
			base := i * 2 * 16 * 8192
			good, err := sys.TestRowClone(base, base+16*8192, 1)
			if err != nil {
				t.Fatal(err)
			}
			if good {
				ok++
			}
		}
		return ok
	}
	a, b := count(1), count(999)
	if a == 64 || a == 0 {
		t.Fatalf("seed 1 gave degenerate clonability %d/64", a)
	}
	if a == b {
		// Equal totals are possible but identical full patterns are not
		// asserted here; equal totals alone are suspicious enough to check
		// a second seed.
		if c := count(12345); c == a {
			t.Fatalf("three seeds gave identical clonability counts (%d)", a)
		}
	}
}
