package core

import (
	"testing"

	"easydram/internal/workload"
)

// TestRunsAreDeterministic pins the repository's reproducibility guarantee:
// identical configuration + seed + workload produce bit-identical results,
// including every statistic. This is what makes characterization on a
// scratch system transferable to the measured system.
func TestRunsAreDeterministic(t *testing.T) {
	configs := map[string]Config{
		"scaled":   TimeScalingA57(),
		"unscaled": NoTimeScaling(),
	}
	kernel := workload.PBGemver(48)
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			run := func() Result {
				sys, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sys.Run(kernel.Stream())
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if a.ProcCycles != b.ProcCycles || a.GlobalCycles != b.GlobalCycles {
				t.Fatalf("timing diverged: %d/%d vs %d/%d",
					a.ProcCycles, a.GlobalCycles, b.ProcCycles, b.GlobalCycles)
			}
			if a.CPU != b.CPU || a.Ctrl != b.Ctrl || a.Chip != b.Chip {
				t.Fatalf("statistics diverged:\n%+v\n%+v", a, b)
			}
		})
	}
}

// TestSeedChangesOutcomes verifies the seed actually flows into behaviour
// that depends on the chip (RowClone success patterns).
func TestSeedChangesOutcomes(t *testing.T) {
	count := func(seed uint64) int64 {
		cfg := TimeScalingA57()
		cfg.DRAM = TechniqueDRAM()
		cfg.DRAM.RowsPerBank = 4096
		cfg.DRAM.Seed = seed
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ok := int64(0)
		for i := uint64(0); i < 64; i++ {
			base := i * 2 * 16 * 8192
			good, err := sys.TestRowClone(base, base+16*8192, 1)
			if err != nil {
				t.Fatal(err)
			}
			if good {
				ok++
			}
		}
		return ok
	}
	a, b := count(1), count(999)
	if a == 64 || a == 0 {
		t.Fatalf("seed 1 gave degenerate clonability %d/64", a)
	}
	if a == b {
		// Equal totals are possible but identical full patterns are not
		// asserted here; equal totals alone are suspicious enough to check
		// a second seed.
		if c := count(12345); c == a {
			t.Fatalf("three seeds gave identical clonability counts (%d)", a)
		}
	}
}
