package core

import (
	"testing"

	"easydram/internal/fault"
	"easydram/internal/workload"
)

// faultyConfig arms every injection seam at rates high enough to fire on a
// small kernel: chip disturb with a low threshold, transient and stuck-at
// read faults, and host-link launch/readback failures, with recovery on.
func faultyConfig() Config {
	cfg := TimeScalingA57()
	cfg.Faults = fault.Config{
		Chip: fault.ChipConfig{
			DisturbEnabled:      true,
			DisturbMinThreshold: 16,
			DisturbJitter:       16,
			TransientReadRate:   0.02,
			StuckAtRate:         0.002,
		},
		Link: fault.LinkConfig{
			ExecFailRate:        0.01,
			ReadbackCorruptRate: 0.01,
			ReadbackDropRate:    0.01,
		},
		Recovery: fault.RecoveryConfig{Enabled: true},
	}
	return cfg
}

// TestArmedButIdleFaultsMatchBaseline pins the subtler half of the golden
// guarantee: not just that a zero fault config is bit-identical to the seed
// engine (the golden cycle-count tests cover that — Config.Faults zero value
// IS the pre-fault configuration), but that merely ARMING the seams — chip
// disturb counting with an unreachable threshold plus the verify-and-retry
// read path — changes no emulated counter when nothing fires. Recovery
// disables host-side burst coalescing, so this doubles as a check that burst
// service really is bit-identical to serial service.
func TestArmedButIdleFaultsMatchBaseline(t *testing.T) {
	kernel := workload.PBGemver(48)
	run := func(cfg Config) Result {
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(kernel.Stream())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(TimeScalingA57())
	armed := faultyConfig()
	armed.Faults.Chip.DisturbMinThreshold = 1 << 30
	armed.Faults.Chip.DisturbJitter = 0
	armed.Faults.Chip.TransientReadRate = 0
	armed.Faults.Chip.StuckAtRate = 0
	armed.Faults.Link = fault.LinkConfig{}
	got := run(armed)
	if got.ProcCycles != base.ProcCycles || got.GlobalCycles != base.GlobalCycles {
		t.Fatalf("armed-but-idle faults drifted timing: %d/%d vs %d/%d",
			got.ProcCycles, got.GlobalCycles, base.ProcCycles, base.GlobalCycles)
	}
	if got.Ctrl.Retries != 0 || got.Chip.DisturbFlips != 0 {
		t.Fatalf("armed-but-idle faults fired: %+v", got.Ctrl)
	}
	if got.Ctrl.Served != base.Ctrl.Served || got.Ctrl.RowHits != base.Ctrl.RowHits ||
		got.Ctrl.RowMisses != base.Ctrl.RowMisses {
		t.Fatalf("controller decisions drifted:\n%+v\n%+v", got.Ctrl, base.Ctrl)
	}
}

// TestFaultRunsAreDeterministic pins that injected faults reproduce exactly:
// same seed, same fault sequence, same retries, same escaped flips —
// byte-identical statistics across runs, at one channel and at four.
func TestFaultRunsAreDeterministic(t *testing.T) {
	kernel := workload.LatMemRd(128<<10, 1200)
	for _, chans := range []int{1, 4} {
		cfg := faultyConfig()
		cfg.Topology.Channels = chans
		run := func() Result {
			sys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run(kernel.Stream())
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		if a.ProcCycles != b.ProcCycles || a.GlobalCycles != b.GlobalCycles {
			t.Fatalf("chans=%d: timing diverged: %d/%d vs %d/%d",
				chans, a.ProcCycles, a.GlobalCycles, b.ProcCycles, b.GlobalCycles)
		}
		if a.Ctrl != b.Ctrl || a.Chip != b.Chip || a.Tile != b.Tile {
			t.Fatalf("chans=%d: fault statistics diverged:\n%+v\n%+v", chans, a, b)
		}
		if a.Ctrl.Retries == 0 && a.Tile.LaunchFails == 0 && a.Chip.TransientReads == 0 {
			t.Fatalf("chans=%d: fault config injected nothing: %+v / %+v", chans, a.Ctrl, a.Chip)
		}
	}
}

// TestFaultSeedChangesSequence verifies the fault seed actually flows: two
// seeds must not reproduce the same fault event counts.
func TestFaultSeedChangesSequence(t *testing.T) {
	kernel := workload.LatMemRd(128<<10, 1200)
	run := func(seed uint64) (Result, error) {
		cfg := faultyConfig()
		cfg.DRAM.Seed = seed
		sys, err := NewSystem(cfg)
		if err != nil {
			return Result{}, err
		}
		return sys.Run(kernel.Stream())
	}
	a, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ctrl == b.Ctrl && a.Chip == b.Chip && a.Tile == b.Tile {
		t.Fatalf("two seeds reproduced identical fault statistics: %+v", a.Ctrl)
	}
}

// TestRecoveryValidation pins the constructor-time guards.
func TestRecoveryValidation(t *testing.T) {
	cfg := TimeScalingA57()
	cfg.Faults.Link.ExecFailRate = 0.01 // exec failures need recovery
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("launch-failure injection without recovery was accepted")
	}
	cfg = TimeScalingA57()
	cfg.Faults.Recovery.Enabled = true
	cfg.Faults.Recovery.SpareRows = cfg.DRAM.RowsPerBank
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("spare region swallowing the whole bank was accepted")
	}
	cfg = TimeScalingA57()
	cfg.Mitigation = fault.MitigationConfig{Policy: "unknown"}
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("unknown mitigation policy was accepted")
	}
}
