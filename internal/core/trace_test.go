package core

import (
	"os"
	"testing"

	"easydram/internal/workload"
)

func TestTraceStores(t *testing.T) {
	if os.Getenv("EASYDRAM_TRACE") == "" {
		t.Skip("set EASYDRAM_TRACE=1 to dump engine event traces")
	}
	var ops []workload.Op
	for i := 0; i < 12; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpStore, Addr: uint64(i) << 20})
	}
	debugTrace = true
	defer func() { debugTrace = false }()
	t.Log("=== scaled ===")
	ts := mustRun(t, TimeScaling1GHz(), ops)
	t.Log("=== reference ===")
	ref := mustRun(t, Reference1GHz(), ops)
	t.Logf("ts=%d ref=%d", ts.ProcCycles, ref.ProcCycles)
}
