package core

import (
	"fmt"
	"math"

	"easydram/internal/clock"
	"easydram/internal/cpu"
	"easydram/internal/timescale"
	"easydram/internal/workload"
)

// Multi-core emulated hosts (ROADMAP item 2): N cpu.Core instances with
// private L1s behind a shared L2 (cache.MultiHierarchy) issue misses into
// the existing per-channel controllers, competing for banks — the habitat
// interference schedulers like BLISS exist for.
//
// The engine is a key-ordered discrete-event merge: every core and every
// channel-with-work is an actor with a monotone event key (wall picoseconds
// unscaled, emulated processor cycles scaled), and each iteration advances
// the globally earliest actor (ties: channels before cores, then the lower
// index). Eager channel stepping is what makes scheduler decisions see
// exactly the requests that arrived by their decision time — the lazy
// "serve only when the core is stuck" order of the single-core engines is
// only timing-correct with one core, because no new requests can arrive
// while that core is stopped.
//
// Determinism: every key is an integer, actor scan order is fixed, and a
// per-channel monotone arrival clamp (a request's effective arrival is
// max(its core's position, the channel's last recorded arrival)) keeps the
// staged lists and arrival rings on the invariants the channel machinery
// assumes. The clamp's distortion is bounded by the core step quantum
// (mcQuantum) plus one batch's overshoot. Single-core configs never enter
// this file: Cores <= 1 routes through the unchanged engines, so they stay
// bit-identical to the pre-multicore engine (golden-pinned).

// mcQuantum caps how many emulated cycles one core step may advance between
// merge events, bounding both inter-core skew and the arrival clamp's
// distortion.
const mcQuantum = 64

// mcInf is the event key of an actor with no schedulable event.
const mcInf = int64(math.MaxInt64)

// mcOwner reports which of n cores issued request id (IDs are interleaved-
// dense: core i uses i+1, i+1+n, i+1+2n, …; see cpu.Core.SetIDSpace).
func mcOwner(id uint64, n int) int { return int((id - 1) % uint64(n)) }

// mcCore is one emulated core's engine-side state.
type mcCore struct {
	core *cpu.Core
	// pos is the core's own clock: wall picoseconds (unscaled) or emulated
	// processor cycles (scaled), stored as the event-key integer domain.
	pos int64
	// ready holds this core's produced responses keyed by release point.
	ready releaseQueue
	// inflight counts the core's outstanding requests, posted included.
	inflight  int
	blockedOn uint64
	fencing   bool
	finished  bool
	// fenceAt is the latest settle point among the core's requests — what
	// its next fence completion advances pos to.
	fenceAt    int64
	marks      []clock.Cycles
	procCycles clock.Cycles
}

// mcEngine is the merge-loop state shared across cores.
type mcEngine struct {
	e     *engine
	cores []*mcCore
	// lastArrival is the per-channel monotone arrival clamp (event-key
	// domain of the mode in use).
	lastArrival []int64
}

// noteSettled records one settled response for its owning core: the fence
// point, the in-flight count, and — for non-posted requests — the per-core
// delivery queue. Called from the channel settle paths in place of the
// single-core shared-queue push.
func (m *mcEngine) noteSettled(id uint64, release int64, posted bool) {
	c := m.cores[mcOwner(id, len(m.cores))]
	c.inflight--
	if release > c.fenceAt {
		c.fenceAt = release
	}
	if !posted {
		c.ready.Push(id, release)
	}
}

// drainCore delivers every matured response (release <= the core's
// position) to the core, in release order.
func (m *mcEngine) drainCore(c *mcCore) {
	n := int64(0)
	for c.ready.Len() > 0 && c.ready.Min().release <= c.pos {
		it := c.ready.PopMin()
		c.core.Deliver(it.id)
		if c.blockedOn == it.id {
			c.blockedOn = 0
		}
		n++
	}
	if n > 0 {
		m.e.settleBatches++
		m.e.settleDelivered += n
	}
}

// coreKey is core c's next event key, or mcInf when only channel progress
// can unblock it. Shared by both modes: the domains differ but the state
// machine does not.
func (m *mcEngine) coreKey(c *mcCore) int64 {
	if c.finished {
		return mcInf
	}
	if c.blockedOn != 0 {
		if rel, ok := c.ready.Release(c.blockedOn); ok {
			return maxInt64(c.pos, rel)
		}
		return mcInf
	}
	if c.fencing {
		if c.inflight > 0 {
			return mcInf
		}
		if c.ready.Len() > 0 {
			return maxInt64(c.pos, c.ready.Min().release)
		}
		return maxInt64(c.pos, c.fenceAt)
	}
	return c.pos
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// allFinished reports whether every core has exhausted its stream.
func (m *mcEngine) allFinished() bool {
	for _, c := range m.cores {
		if !c.finished {
			return false
		}
	}
	return true
}

// pickActor scans channels (via chanKey) then cores and returns the
// earliest actor: (channel index, -1) or (-1, core index). Channels win
// ties so responses settle before a same-key core steps past them.
func (m *mcEngine) pickActor(chanKey func(ch int) (int64, bool)) (bestChan, bestCore int, key int64) {
	bestChan, bestCore, key = -1, -1, mcInf
	for ch := range m.e.sys.chans {
		if k, ok := chanKey(ch); ok && k < key {
			key, bestChan = k, ch
		}
	}
	for i, c := range m.cores {
		if k := m.coreKey(c); k < key {
			key, bestCore, bestChan = k, i, -1
		}
	}
	return bestChan, bestCore, key
}

// deadlockErr reports the stuck state when no actor has an event.
func (m *mcEngine) deadlockErr() error {
	blocked := 0
	for _, c := range m.cores {
		if !c.finished {
			blocked++
		}
	}
	return fmt.Errorf("core: multicore merge deadlocked with %d unfinished cores and %d requests in flight",
		blocked, m.e.inflightLen())
}

// runMultiUnscaled drives the wall-clock merge loop (time scaling off).
func (e *engine) runMultiUnscaled() error {
	m := e.multi
	procPeriod := e.cfg.ProcPhys.Period()
	for c := range e.sys.chans {
		e.sys.chans[c].env.SetBurst(1, func() bool { return false })
	}

	chanKey := func(ch int) (int64, bool) {
		if !e.channelHasWorkUnscaled(ch) {
			return 0, false
		}
		return int64(e.chanKeyUnscaled(ch)), true
	}

	for {
		ch, ci, key := m.pickActor(chanKey)
		if ch < 0 && ci < 0 {
			if m.allFinished() {
				break
			}
			return m.deadlockErr()
		}
		// The merge clock: keys are processed in nondecreasing order, so
		// wallNow is monotone — the channel service paths read it as "now".
		if clock.PS(key) > e.wallNow {
			e.wallNow = clock.PS(key)
		}
		if ch >= 0 {
			if _, err := e.stepChannelUnscaled(ch, nil); err != nil {
				return err
			}
			continue
		}
		if err := m.stepCoreUnscaled(ci, procPeriod); err != nil {
			return err
		}
	}

	// Finalize: the run's processor time is the makespan; wall time covers
	// the last core's finish and every channel's service chain.
	final := e.wallNow
	for _, c := range m.cores {
		if c.procCycles > e.procCycles {
			e.procCycles = c.procCycles
		}
		if clock.PS(c.pos) > final {
			final = clock.PS(c.pos)
		}
	}
	for _, free := range e.chanFree {
		if free > final {
			final = free
		}
	}
	e.globalFinal = e.cfg.FPGA.CyclesCeil(final)
	return nil
}

// stepCoreUnscaled advances core ci one merge event in the wall-clock
// domain: consume a matured response, complete a fence, or run up to
// mcQuantum processor cycles and issue the resulting requests.
func (m *mcEngine) stepCoreUnscaled(ci int, procPeriod clock.PS) error {
	e := m.e
	c := m.cores[ci]
	proc := func() clock.Cycles { return clock.Cycles(clock.PS(c.pos) / procPeriod) }

	m.drainCore(c)

	if c.blockedOn != 0 {
		rel, ok := c.ready.Release(c.blockedOn)
		if !ok {
			return fmt.Errorf("core: multicore merge stepped blocked core %d without its response", ci)
		}
		// The core consumes the response at its next clock edge, mirroring
		// the single-core engine.
		if clock.PS(rel) > clock.PS(c.pos) {
			c.pos = int64(clock.PS(e.cfg.ProcPhys.CyclesCeil(clock.PS(rel))) * procPeriod)
		}
		c.ready.Remove(c.blockedOn)
		c.core.Deliver(c.blockedOn)
		c.blockedOn = 0
		m.drainCore(c)
		return nil
	}

	if c.fencing {
		if c.inflight == 0 && c.ready.Len() == 0 {
			if c.fenceAt > c.pos {
				c.pos = c.fenceAt
			}
			c.fencing = false
			c.core.FenceDone()
			return nil
		}
		if c.inflight == 0 {
			// Only ready responses remain: advance to the earliest and let
			// the drain deliver it.
			if rel := c.ready.Min().release; rel > c.pos {
				c.pos = rel
			}
			m.drainCore(c)
			return nil
		}
		return fmt.Errorf("core: multicore merge stepped fencing core %d with %d requests in flight", ci, c.inflight)
	}

	// Runnable: batch up to the quantum, cut at the next response's
	// delivery edge (the batching contract of cpu.Core.Step).
	budget := clock.Cycles(mcQuantum)
	if c.ready.Len() > 0 {
		rel := clock.PS(c.ready.Min().release)
		if b := clock.Cycles((rel - clock.PS(c.pos) + procPeriod - 1) / procPeriod); b < budget {
			budget = b
		}
	}
	out := c.core.Step(proc(), budget)
	if out.Finished {
		c.finished = true
		c.procCycles = proc()
		return nil
	}
	if out.Mark {
		c.marks = append(c.marks, proc())
	}
	c.pos += int64(clock.PS(out.Cycles) * procPeriod)
	if err := e.checkCap(proc()); err != nil {
		return err
	}
	for i := range out.Reqs {
		req := &out.Reqs[i]
		req.Tag = proc()
		chIdx := e.sys.chanIndex(req.Addr)
		arrival := c.pos
		if m.lastArrival[chIdx] > arrival {
			arrival = m.lastArrival[chIdx]
		}
		m.lastArrival[chIdx] = arrival
		e.staged[chIdx] = append(e.staged[chIdx], stagedReq{slot: e.sys.chans[chIdx].tile.Stage(req), id: req.ID})
		e.inflight[chIdx].Put(req.ID, pending{posted: req.Posted, arrival: clock.PS(arrival)})
		if e.trackArrivals {
			e.arrivals[chIdx].Push(req.ID, arrival)
		}
		c.inflight++
	}
	if out.Fence {
		c.fencing = true
	}
	if out.WaitID != 0 {
		c.blockedOn = out.WaitID
	}
	return nil
}

// runMultiScaled is the time-scaled merge loop. It runs without critical
// mode: the key order itself paces cores against the modeled memory system,
// so ProcAllowance never gates a step. The ts counters still carry the wall
// (FPGA) charges of every SMC step, and the processor counter is jumped to
// the makespan once at the end — GlobalCycles therefore covers the
// emulation's full wall cost exactly as the single-core engine's
// incremental advances would.
func (e *engine) runMultiScaled() error {
	ts, err := timescale.New(e.cfg.FPGA, e.cfg.ProcPhys, e.cfg.CPU.Clock, true)
	if err != nil {
		return err
	}
	e.ts = ts
	m := e.multi
	for c := range e.sys.chans {
		e.sys.chans[c].env.SetBurst(1, func() bool { return false })
	}

	for {
		ch, ci, _ := m.pickActor(m.chanKeyScaled)
		if ch < 0 && ci < 0 {
			if m.allFinished() {
				break
			}
			return m.deadlockErr()
		}
		if ch >= 0 {
			m.ingestScaled(ch)
			if err := e.stepChannelScaled(ch, nil); err != nil {
				return err
			}
			continue
		}
		if err := m.stepCoreScaled(ci); err != nil {
			return err
		}
	}

	makespan := clock.Cycles(0)
	for _, c := range m.cores {
		if c.procCycles > makespan {
			makespan = c.procCycles
		}
	}
	ts.JumpProcTo(makespan)
	return nil
}

// chanKeyScaled is channel ch's next decision point in emulated processor
// cycles: its modeled-MC chain, lifted to the first staged tag when the
// channel is otherwise idle.
func (m *mcEngine) chanKeyScaled(ch int) (int64, bool) {
	e := m.e
	c := &e.sys.chans[ch]
	busy := !c.tile.IncomingEmpty() || c.ctl.Pending() > 0
	if !busy && len(e.staged[ch]) == 0 {
		return 0, false
	}
	key := int64(e.cfg.CPU.Clock.CyclesFloor(e.mcTimeOf(ch)))
	if !busy {
		if p, ok := e.inflight[ch].Get(e.staged[ch][0].id); ok && int64(p.tag) > key {
			key = int64(p.tag)
		}
	}
	return key, true
}

// ingestScaled makes exactly the staged requests that have arrived by
// channel ch's next decision point visible to its controller — the scaled
// counterpart of the unscaled engine's staging gate (multi-core issues are
// staged in both modes; with several cores a request must not be visible to
// decisions made before its issue tag).
func (m *mcEngine) ingestScaled(ch int) {
	e := m.e
	c := &e.sys.chans[ch]
	if len(e.staged[ch]) == 0 {
		return
	}
	decision := e.cfg.CPU.Clock.CyclesFloor(e.mcTimeOf(ch))
	if c.tile.IncomingEmpty() && c.ctl.Pending() == 0 {
		if p, ok := e.inflight[ch].Get(e.staged[ch][0].id); ok && p.tag > decision {
			decision = p.tag
		}
	}
	kept := e.staged[ch][:0]
	for _, sr := range e.staged[ch] {
		if p, _ := e.inflight[ch].Get(sr.id); p.tag <= decision {
			c.tile.Enqueue(sr.slot)
		} else {
			kept = append(kept, sr)
		}
	}
	e.staged[ch] = kept
}

// stepCoreScaled advances core ci one merge event in the emulated-cycle
// domain.
func (m *mcEngine) stepCoreScaled(ci int) error {
	e := m.e
	c := m.cores[ci]

	m.drainCore(c)

	if c.blockedOn != 0 {
		rel, ok := c.ready.Release(c.blockedOn)
		if !ok {
			return fmt.Errorf("core: multicore merge stepped blocked core %d without its response", ci)
		}
		if rel > c.pos {
			c.pos = rel
		}
		c.ready.Remove(c.blockedOn)
		c.core.Deliver(c.blockedOn)
		c.blockedOn = 0
		m.drainCore(c)
		return nil
	}

	if c.fencing {
		if c.inflight == 0 && c.ready.Len() == 0 {
			if c.fenceAt > c.pos {
				c.pos = c.fenceAt
			}
			c.fencing = false
			c.core.FenceDone()
			return nil
		}
		if c.inflight == 0 {
			if rel := c.ready.Min().release; rel > c.pos {
				c.pos = rel
			}
			m.drainCore(c)
			return nil
		}
		return fmt.Errorf("core: multicore merge stepped fencing core %d with %d requests in flight", ci, c.inflight)
	}

	budget := clock.Cycles(mcQuantum)
	if c.ready.Len() > 0 {
		if b := clock.Cycles(c.ready.Min().release - c.pos); b < budget {
			budget = b
		}
	}
	out := c.core.Step(clock.Cycles(c.pos), budget)
	if out.Finished {
		c.finished = true
		c.procCycles = clock.Cycles(c.pos)
		return nil
	}
	if out.Mark {
		c.marks = append(c.marks, clock.Cycles(c.pos))
	}
	c.pos += int64(out.Cycles)
	if err := e.checkCap(clock.Cycles(c.pos)); err != nil {
		return err
	}
	for i := range out.Reqs {
		req := &out.Reqs[i]
		tag := c.pos
		chIdx := e.sys.chanIndex(req.Addr)
		if m.lastArrival[chIdx] > tag {
			tag = m.lastArrival[chIdx]
		}
		m.lastArrival[chIdx] = tag
		req.Tag = clock.Cycles(tag)
		e.staged[chIdx] = append(e.staged[chIdx], stagedReq{slot: e.sys.chans[chIdx].tile.Stage(req), id: req.ID})
		e.inflight[chIdx].Put(req.ID, pending{posted: req.Posted, tag: clock.Cycles(tag)})
		if e.trackArrivals {
			e.arrivals[chIdx].Push(req.ID, tag)
		}
		c.inflight++
	}
	if out.Fence {
		c.fencing = true
	}
	if out.WaitID != 0 {
		c.blockedOn = out.WaitID
	}
	return nil
}

// runMulti builds the N-core engine and drives the mode's merge loop.
func (s *System) runMulti(strms []workload.Stream) (Result, error) {
	for _, st := range strms {
		defer st.Close()
	}
	n := len(strms)
	m := &mcEngine{lastArrival: make([]int64, len(s.chans))}
	for i, st := range strms {
		core, err := cpu.New(s.cfg.CPU, s.mhier.View(i), st)
		if err != nil {
			return Result{}, fmt.Errorf("core: %w", err)
		}
		core.SetIDSpace(uint64(i)+1, uint64(n))
		m.cores = append(m.cores, &mcCore{core: core, ready: newReleaseQueue()})
	}
	nch := len(s.chans)
	e := &engine{
		cfg:           s.cfg,
		sys:           s,
		multi:         m,
		inflight:      make([]slotRing, nch),
		ready:         newReleaseQueue(),
		trackArrivals: s.cfg.RefreshEnabled,
		// Burst service and shard workers are single-core machinery; the
		// merge loop forces both off (burst gates return false, channel
		// steps run serial).
		burstCap:     1,
		chanFree:     make([]clock.PS, nch),
		chanMC:       make([]clock.PS, nch),
		arrivals:     make([]arrivalRing, nch),
		staged:       make([][]stagedReq, nch),
		burstLimit:   make([]int64, nch),
		shardWorkers: 1,
	}
	for i := range e.inflight {
		e.inflight[i] = newSlotRing()
	}
	m.e = e
	var err error
	if s.cfg.Scaling {
		err = e.runMultiScaled()
	} else {
		err = e.runMultiUnscaled()
	}
	s.settleBatches, s.settleDelivered = e.settleBatches, e.settleDelivered
	s.shardRounds, s.shardSteps = 0, 0
	if err != nil {
		return Result{}, err
	}
	return e.result(), nil
}
