package core

import "fmt"

// debugTrace enables verbose engine event tracing (tests only).
var debugTrace = false

func tracef(format string, args ...any) {
	if debugTrace {
		fmt.Printf(format+"\n", args...)
	}
}

// SetDebugTrace toggles engine tracing (diagnostics only).
func SetDebugTrace(on bool) { debugTrace = on }
