package core

import (
	"testing"

	"easydram/internal/clock"
	"easydram/internal/workload"
)

// streamOf builds a simple op stream.
func streamOf(ops []workload.Op) workload.Stream {
	return workload.NewSliceStream(ops)
}

// pointerChase emits n dependent loads with the given stride.
func pointerChase(n int, stride uint64) []workload.Op {
	ops := make([]workload.Op, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpLoad, Addr: uint64(i) * stride, Dep: true})
	}
	return ops
}

func mustRun(t *testing.T, cfg Config, ops []workload.Op) Result {
	t.Helper()
	cfg.MaxProcCycles = 1 << 40
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	res, err := sys.Run(streamOf(ops))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestScaledRunCompletes(t *testing.T) {
	res := mustRun(t, TimeScalingA57(), pointerChase(1000, 4096))
	if res.ProcCycles <= 0 {
		t.Fatalf("no cycles recorded: %+v", res)
	}
	if res.CPU.Loads != 1000 {
		t.Fatalf("loads = %d, want 1000", res.CPU.Loads)
	}
	if res.CPU.MemReads == 0 {
		t.Fatalf("expected main-memory reads, got none")
	}
}

func TestUnscaledRunCompletes(t *testing.T) {
	res := mustRun(t, NoTimeScaling(), pointerChase(1000, 4096))
	if res.ProcCycles <= 0 {
		t.Fatalf("no cycles recorded: %+v", res)
	}
}

// TestNoTSMissLatencyExceedsScaled pins the paper's core claim: without
// time scaling, the software memory controller's real latency is visible,
// and — measured in nanoseconds of emulated time — a main-memory access is
// far slower than in the time-scaled system.
func TestNoTSMissLatencyExceedsScaled(t *testing.T) {
	ops := pointerChase(2000, 4096) // strides larger than L2 reach

	scaled := mustRun(t, TimeScalingA57(), ops)
	raw := mustRun(t, NoTimeScaling(), ops)

	perMissScaled := float64(scaled.EmulatedTime) / float64(scaled.CPU.MemReads)
	perMissRaw := float64(raw.EmulatedTime) / float64(raw.CPU.MemReads)
	if perMissRaw < 2*perMissScaled {
		t.Fatalf("NoTS per-miss time %.1fps should far exceed scaled %.1fps", perMissRaw, perMissScaled)
	}
}

// TestScaledValidationAgainstReference is a miniature of the §6 validation:
// the time-scaled 100 MHz->1 GHz system and the directly simulated 1 GHz
// reference must report nearly identical execution times.
func TestScaledValidationAgainstReference(t *testing.T) {
	mix := make([]workload.Op, 0, 4000)
	for i := 0; i < 1000; i++ {
		mix = append(mix,
			workload.Op{Kind: workload.OpCompute, N: 20},
			workload.Op{Kind: workload.OpLoad, Addr: uint64(i) * 320},
			workload.Op{Kind: workload.OpLoad, Addr: uint64(i) * 12800, Dep: true},
			workload.Op{Kind: workload.OpStore, Addr: uint64(i) * 640},
		)
	}
	ts := mustRun(t, TimeScaling1GHz(), mix)
	ref := mustRun(t, Reference1GHz(), mix)

	if ts.ProcCycles == 0 || ref.ProcCycles == 0 {
		t.Fatalf("degenerate run: ts=%d ref=%d", ts.ProcCycles, ref.ProcCycles)
	}
	diff := float64(ts.ProcCycles-ref.ProcCycles) / float64(ref.ProcCycles)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.01 {
		t.Fatalf("time-scaling validation error %.4f%% exceeds 1%% (ts=%d ref=%d)",
			100*diff, ts.ProcCycles, ref.ProcCycles)
	}
}

func TestHostProfileLine(t *testing.T) {
	cfg := TimeScalingA57()
	cfg.DRAM = TechniqueDRAM()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	okNominal, err := sys.ProfileLine(0, 13500)
	if err != nil {
		t.Fatalf("ProfileLine: %v", err)
	}
	if !okNominal {
		t.Fatalf("nominal tRCD must always pass profiling")
	}
	// An absurdly low tRCD must fail.
	okLow, err := sys.ProfileLine(0, 2*clock.Nanosecond)
	if err != nil {
		t.Fatalf("ProfileLine: %v", err)
	}
	if okLow {
		t.Fatalf("2ns tRCD should not read reliably")
	}
}

func TestHostRowClone(t *testing.T) {
	cfg := TimeScalingA57()
	cfg.DRAM = TechniqueDRAM()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	rowBytes := uint64(sys.Mapper().RowBytes())
	banks := uint64(sys.Mapper().Banks())
	// Adjacent rows in the same bank and subarray.
	src := uint64(0)
	dst := rowBytes * banks // next row, same bank under RowBankCol
	a, b := sys.Mapper().Map(src), sys.Mapper().Map(dst)
	if a.Bank != b.Bank || a.Row+1 != b.Row {
		t.Fatalf("mapper layout unexpected: %v vs %v", a, b)
	}
	ok, err := sys.TestRowClone(src, dst, 3)
	if err != nil {
		t.Fatalf("TestRowClone: %v", err)
	}
	// Whether this specific pair clones is seed-dependent; the call itself
	// must complete and cross-bank clones must always fail.
	_ = ok
	crossOK, err := sys.TestRowClone(0, rowBytes, 1) // next bank
	if err != nil {
		t.Fatalf("TestRowClone cross-bank: %v", err)
	}
	if crossOK {
		t.Fatalf("cross-bank RowClone must fail")
	}
}
