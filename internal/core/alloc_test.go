package core

import (
	"testing"

	"easydram/internal/workload"
)

// TestServiceLoopSteadyStateAllocs guards the zero-alloc service loop: once
// a system's buffers have warmed, running more operations must not allocate
// per operation. Engine event queues, the controller request table, Env
// response/readback slices, tile FIFOs, Bender's readback buffer, and the
// timing checker's violation buffer are all reused, so the allocation count
// of a run is (nearly) independent of its length. The test measures two
// runs that differ by thousands of memory operations and bounds the
// marginal allocations per operation close to zero.
func TestServiceLoopSteadyStateAllocs(t *testing.T) {
	mkMisses := func(n int) []workload.Op {
		const span = uint64(1) << 31
		ops := make([]workload.Op, n)
		for i := range ops {
			ops[i] = workload.Op{Kind: workload.OpLoad, Addr: uint64(i) * 131072 % span, Dep: true}
		}
		return ops
	}
	configs := []struct {
		name string
		cfg  Config
	}{
		{"scaled", TimeScalingA57()},
		{"unscaled", NoTimeScaling()},
	}
	const small, large = 1024, 8192
	for _, c := range configs {
		t.Run(c.name, func(t *testing.T) {
			sys, err := NewSystem(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			measure := func(ops []workload.Op) float64 {
				return testing.AllocsPerRun(3, func() {
					if _, err := sys.Run(workload.NewSliceStream(ops)); err != nil {
						t.Fatal(err)
					}
				})
			}
			smallOps, largeOps := mkMisses(small), mkMisses(large)
			measure(largeOps) // warm caches and buffer capacities
			a := measure(smallOps)
			b := measure(largeOps)
			marginal := (b - a) / float64(large-small)
			if marginal > 0.01 {
				t.Fatalf("service loop allocates in steady state: %.0f allocs @ %d ops vs %.0f @ %d (%.4f allocs/op)",
					a, small, b, large, marginal)
			}
		})
	}
}
