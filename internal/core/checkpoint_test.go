package core

import (
	"errors"
	"reflect"
	"testing"

	"easydram/internal/fault"
	"easydram/internal/smc"
	"easydram/internal/snapshot"
	"easydram/internal/workload"
)

// checkpointMatrix is the configuration sweep the bit-identity guarantee is
// pinned over: both engines, multi-channel/multi-rank topologies, refresh,
// burst service, a stateful scheduler, and full fault injection with
// mitigation — every subsystem with checkpointable state.
func checkpointMatrix() []struct {
	name string
	cfg  Config
	k    workload.Kernel
} {
	bliss := TimeScalingA57()
	bliss.Scheduler = smc.NewBLISS()
	bliss.RefreshEnabled = true
	bliss.BurstCap = 8

	faulty := faultyConfig()
	faulty.Mitigation = fault.MitigationConfig{Policy: "trr", TRRThreshold: 4}

	// Data tracking on: writebacks populate the chip's sparse row-data
	// store, so the checkpoint carries actual DRAM contents.
	tracked := TimeScalingA57()
	tracked.DRAM = TechniqueDRAM()

	return []struct {
		name string
		cfg  Config
		k    workload.Kernel
	}{
		{"scaled", TimeScalingA57(), workload.PBGemver(48)},
		{"unscaled", NoTimeScaling(), workload.PBGemver(32)},
		{"scaled-2ch2rk", withTopology(TimeScalingA57(), 2, 2), workload.PBGemver(48)},
		{"bliss-refresh-burst", bliss, workload.PBGemver(48)},
		{"faulty-mitigated", faulty, workload.PBGemver(32)},
		{"tracked-data", tracked, workload.PBGemver(32)},
	}
}

// TestCheckpointRestoreBitIdentity is the tentpole guarantee: a run
// checkpointed at cycle C and restored from that checkpoint produces a
// Result byte-identical to the uninterrupted run — GlobalCycles, every
// statistic, every mark — and taking the checkpoint perturbs nothing.
func TestCheckpointRestoreBitIdentity(t *testing.T) {
	for _, tc := range checkpointMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			base := mustRunKernel(t, tc.cfg, tc.k)

			sys, err := NewSystem(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			ck, blob, err := sys.RunCheckpoint(tc.k.Stream(), base.ProcCycles/2)
			if err != nil {
				t.Fatalf("RunCheckpoint: %v", err)
			}
			if !reflect.DeepEqual(ck, base) {
				t.Fatalf("taking a checkpoint perturbed the run:\nbase %+v\nckpt %+v", base, ck)
			}
			if blob == nil {
				t.Fatalf("no quiescent point reached at or after cycle %d", base.ProcCycles/2)
			}

			restoredSys, err := NewSystem(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := restoredSys.RunRestored(tc.k.Stream(), blob)
			if err != nil {
				t.Fatalf("RunRestored: %v", err)
			}
			if !reflect.DeepEqual(restored, base) {
				t.Fatalf("restored run diverged:\nbase     %+v\nrestored %+v", base, restored)
			}
		})
	}
}

func mustRunKernel(t *testing.T, cfg Config, k workload.Kernel) Result {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(k.Stream())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCheckpointPastEndIsGraceful pins the no-quiescent-point fallback: a
// checkpoint requested beyond the run's end returns a nil blob, no error,
// and an unperturbed Result.
func TestCheckpointPastEndIsGraceful(t *testing.T) {
	cfg := TimeScalingA57()
	k := workload.PBGemver(32)
	base := mustRunKernel(t, cfg, k)

	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, blob, err := sys.RunCheckpoint(k.Stream(), base.ProcCycles+1)
	if err != nil {
		t.Fatalf("RunCheckpoint: %v", err)
	}
	if blob != nil {
		t.Fatalf("expected nil blob past run end, got %d bytes", len(blob))
	}
	if !reflect.DeepEqual(res, base) {
		t.Fatalf("unreached checkpoint perturbed the run")
	}
}

// TestRestoreRejectsBadBlobs pins the graceful-degradation contract at the
// core seam: every corrupted or mismatched checkpoint yields a named error,
// never a panic and never a half-restored run.
func TestRestoreRejectsBadBlobs(t *testing.T) {
	cfg := TimeScalingA57()
	k := workload.PBGemver(32)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mid := mustRunKernel(t, cfg, k).ProcCycles / 2
	_, blob, err := sys.RunCheckpoint(k.Stream(), mid)
	if err != nil || blob == nil {
		t.Fatalf("RunCheckpoint: blob=%d err=%v", len(blob), err)
	}

	newSys := func() *System {
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	t.Run("flipped-byte", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[len(bad)/2] ^= 0x40
		if _, err := newSys().RunRestored(k.Stream(), bad); err == nil {
			t.Fatal("corrupted checkpoint restored without error")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := newSys().RunRestored(k.Stream(), blob[:len(blob)/3]); err == nil {
			t.Fatal("truncated checkpoint restored without error")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := newSys().RunRestored(k.Stream(), nil); !errors.Is(err, snapshot.ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("key-mismatch", func(t *testing.T) {
		other := cfg
		other.BurstCap = 7
		s, err := NewSystem(other)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunRestored(k.Stream(), blob); !errors.Is(err, snapshot.ErrKeyMismatch) {
			t.Fatalf("err = %v, want ErrKeyMismatch", err)
		}
	})
	t.Run("wrong-kind", func(t *testing.T) {
		w := snapshot.NewWriter(snapshot.KindProfile, cfg.CompatKey())
		if _, err := newSys().RunRestored(k.Stream(), w.Bytes()); !errors.Is(err, snapshot.ErrBadKind) {
			t.Fatalf("err = %v, want ErrBadKind", err)
		}
	})
	t.Run("shorter-stream", func(t *testing.T) {
		short := workload.NewSliceStream(pointerChase(2, 4096))
		if _, err := newSys().RunRestored(short, blob); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt (stream exhausted during replay)", err)
		}
	})
}
