package core

import (
	"testing"

	"easydram/internal/workload"
)

// TestDebugDivergence is a scratch diagnostic comparing the two engines on
// progressively richer op mixes (kept because it pins down exactly which
// op classes the two accounting schemes agree on).
func TestDebugDivergence(t *testing.T) {
	cases := map[string][]workload.Op{
		"pure-compute": {{Kind: workload.OpCompute, N: 100000}},
		"dep-misses":   pointerChase(200, 1<<20),
		"indep-misses": func() []workload.Op {
			var ops []workload.Op
			for i := 0; i < 200; i++ {
				ops = append(ops, workload.Op{Kind: workload.OpLoad, Addr: uint64(i) << 20})
			}
			return ops
		}(),
		"stores": func() []workload.Op {
			var ops []workload.Op
			for i := 0; i < 200; i++ {
				ops = append(ops, workload.Op{Kind: workload.OpStore, Addr: uint64(i) << 20})
			}
			return ops
		}(),
		"compute+miss": func() []workload.Op {
			var ops []workload.Op
			for i := 0; i < 200; i++ {
				ops = append(ops,
					workload.Op{Kind: workload.OpCompute, N: 200},
					workload.Op{Kind: workload.OpLoad, Addr: uint64(i) << 20, Dep: true},
				)
			}
			return ops
		}(),
	}
	for name, ops := range cases {
		ts := mustRun(t, TimeScaling1GHz(), ops)
		ref := mustRun(t, Reference1GHz(), ops)
		d := float64(ts.ProcCycles-ref.ProcCycles) / float64(ref.ProcCycles) * 100
		t.Logf("%-14s ts=%8d ref=%8d diff=%+.3f%% (tsRefresh=%d refRefresh=%d)",
			name, ts.ProcCycles, ref.ProcCycles, d, ts.Ctrl.Refreshes, ref.Ctrl.Refreshes)
	}
}
