package core

import (
	"fmt"

	"easydram/internal/clock"
	"easydram/internal/mem"
	"easydram/internal/smc"
	"easydram/internal/timescale"
)

// runScaled executes the workload under time scaling (Figure 5 mechanics).
// With a multi-channel topology each channel is its own modeled-MC service
// chain (chanMC); the global MC counter — what gates the processor's
// allowance in critical mode — is kept at the maximum over channels, so
// channels that serve in parallel overlap in emulated time exactly as
// independent controllers would.
func (e *engine) runScaled() error {
	ts, err := timescale.New(e.cfg.FPGA, e.cfg.ProcPhys, e.cfg.CPU.Clock, true)
	if err != nil {
		return err
	}
	e.ts = ts
	for c := range e.sys.chans {
		ch := c
		e.sys.chans[c].env.SetBurst(1, func() bool { return e.mayExtendBurstScaled(ch) })
	}
	if e.restore != nil {
		if err := e.loadCheckpoint(); err != nil {
			return err
		}
	}

	for {
		e.deliverMaturedScaled()

		if e.ckpt != nil && !e.ckpt.taken && ts.Proc() >= e.ckpt.at && e.quiescent() {
			e.capture()
		}

		if e.blockedOn != 0 {
			if release, ok := e.ready.Release(e.blockedOn); ok {
				ts.JumpProcTo(clock.Cycles(release))
				e.consumeScaled(e.blockedOn)
				e.blockedOn = 0
				// Batched settlement: every other response released by the
				// jumped-to processor point matures with the one just
				// consumed, so settle the whole batch here instead of
				// paying one loop iteration per response (the next
				// loop-top drain would deliver exactly these).
				e.deliverMaturedScaled()
				continue
			}
			e.burstPhase = burstPhaseBlocked
			if err := e.smcStepScaled(); err != nil {
				return err
			}
			continue
		}

		if e.fencing {
			if e.inflightLen() == 0 && e.ready.Len() == 0 {
				ts.JumpProcTo(e.maxRelease)
				e.maybeExitCritical()
				e.fencing = false
				e.core.FenceDone()
				continue
			}
			if e.ready.Len() > 0 {
				it := e.ready.Min()
				ts.JumpProcTo(clock.Cycles(it.release))
				e.consumeScaled(it.id)
				continue
			}
			e.burstPhase = burstPhaseFence
			if ran, err := e.shardRoundScaled(true); err != nil {
				return err
			} else if ran {
				continue
			}
			if err := e.smcStepScaled(); err != nil {
				return err
			}
			continue
		}

		allowance := ts.ProcAllowance()
		if allowance == 0 {
			e.burstPhase = burstPhaseStall
			if err := e.smcStepScaled(); err != nil {
				return err
			}
			continue
		}
		// Batching contract (see cpu.Core.Step): cap the batch at the next
		// response release point so every decision inside the batch sees
		// the same delivered-response state as cycle-at-a-time stepping.
		// Matured releases were delivered above, so the cap is >= 1.
		if e.ready.Len() > 0 {
			if d := clock.Cycles(e.ready.Min().release) - ts.Proc(); d < allowance {
				allowance = d
			}
		}
		out := e.core.Step(ts.Proc(), allowance)
		if out.Finished {
			break
		}
		if out.Mark {
			e.marks = append(e.marks, ts.Proc())
		}
		ts.AdvanceProc(out.Cycles)
		if err := e.checkCap(ts.Proc()); err != nil {
			return err
		}
		for i := range out.Reqs {
			if debugTrace {
				tracef("S issue id=%d kind=%v proc=%d", out.Reqs[i].ID, out.Reqs[i].Kind, ts.Proc())
			}
			e.issueScaled(&out.Reqs[i])
		}
		if out.WaitID != 0 {
			if debugTrace {
				tracef("S block on %d at proc=%d", out.WaitID, ts.Proc())
			}
		}
		if out.Fence {
			e.fencing = true
		}
		if out.WaitID != 0 {
			e.blockedOn = out.WaitID
		}
	}

	// Drain posted writebacks so wall-time accounting covers them.
	e.burstPhase = burstPhaseDrain
	for e.inflightLen() > 0 {
		if ran, err := e.shardRoundScaled(false); err != nil {
			return err
		} else if ran {
			continue
		}
		if err := e.smcStepScaled(); err != nil {
			return err
		}
	}
	e.maybeExitCritical()
	return nil
}

// deliverMaturedScaled hands the core every ready response whose release
// point has been reached (in release order, O(log n) each). Each nonzero
// drain is one settle batch (ROADMAP item 4).
func (e *engine) deliverMaturedScaled() {
	proc := int64(e.ts.Proc())
	n := int64(0)
	for e.ready.Len() > 0 && e.ready.Min().release <= proc {
		it := e.ready.PopMin()
		e.core.Deliver(it.id)
		if e.blockedOn == it.id {
			e.blockedOn = 0
		}
		n++
	}
	if n > 0 {
		e.settleBatches++
		e.settleDelivered += n
	}
}

// consumeScaled delivers one ready response the processor waited for.
func (e *engine) consumeScaled(id uint64) {
	e.ready.Remove(id)
	e.core.Deliver(id)
	e.maybeExitCritical()
}

// issueScaled places a new request into its channel's EasyTile FIFO,
// tagging it with the current processor cycle and gating the processor
// domain. The request is copied into the tile's slab here, once; every
// later stage carries its slot.
func (e *engine) issueScaled(req *mem.Request) {
	req.Tag = e.ts.Proc()
	ch := e.sys.chanIndex(req.Addr)
	e.sys.chans[ch].tile.PushRequest(req)
	e.inflight[ch].Put(req.ID, pending{posted: req.Posted, tag: req.Tag})
	if e.trackArrivals {
		e.arrivals[ch].Push(req.ID, int64(req.Tag))
	}
	if !e.ts.Critical() {
		e.ts.EnterCritical()
	}
}

func (e *engine) maybeExitCritical() {
	if e.ts != nil && e.ts.Critical() && e.inflightLen() == 0 {
		e.ts.ExitCritical()
	}
}

// mcTimeOf reports channel ch's modeled-MC service point: with one channel
// it is the ts counters' exact MC time; with several it is the channel's
// own chain.
func (e *engine) mcTimeOf(ch int) clock.PS {
	if len(e.sys.chans) == 1 {
		return e.ts.MCTime()
	}
	return e.chanMC[ch]
}

// serveModeledChan is the multi-channel counterpart of
// timescale.Counters.ServeModeled: one service on channel ch's own MC
// chain, with the global MC counter lifted to the maximum over channels so
// processor allowance sees the memory system's overall progress. A shard
// worker (non-nil fx) must not touch the shared counter; chanMC is monotone
// per channel, so the merge's final RaiseMCTime of each channel's chain
// reproduces the maximum the per-step lifts would have reached.
func (e *engine) serveModeledChan(ch int, fx *chanFX, arrival clock.Cycles, occupancy, latency clock.PS) clock.Cycles {
	start := e.chanMC[ch]
	if t := e.ts.ProcEmul.ToTime(arrival); t > start {
		start = t
	}
	e.chanMC[ch] = start + occupancy
	if fx == nil {
		e.ts.RaiseMCTime(e.chanMC[ch])
	}
	if latency < occupancy {
		latency = occupancy
	}
	return e.ts.ProcEmul.CyclesCeil(start + latency)
}

// chargeWallScaled charges FPGA wall time consumed by the SMC or Bender.
// Serial path: straight to the counters. Shard worker: recorded as FPGA
// cycles (the per-call ceiling AdvanceWall would take) and credited at
// merge — with time scaling the charge only moves the global counter, a
// commutative sum.
func (e *engine) chargeWallScaled(fx *chanFX, d clock.PS) {
	if fx == nil {
		e.ts.AdvanceWall(d)
		return
	}
	fx.global += e.cfg.FPGA.CyclesCeil(d)
}

// noteRelease tracks the run's maximum response release point (what a
// fence jumps to). Commutative max, so workers record per-channel maxima.
func (e *engine) noteRelease(fx *chanFX, release clock.Cycles) {
	if fx == nil {
		if release > e.maxRelease {
			e.maxRelease = release
		}
		return
	}
	if release > fx.maxRel {
		fx.maxRel = release
	}
}

// pushReady queues one response for delivery. Serial path: straight into
// the shared release heap. Shard worker: recorded in the effect sink; the
// merge replays pushes in canonical serial order, so heap sequence numbers
// — and therefore delivery order among equal releases — are bit-identical
// to the serial run.
func (e *engine) pushReady(fx *chanFX, id uint64, release int64) {
	if fx == nil {
		e.ready.Push(id, release)
		return
	}
	fx.resps = append(fx.resps, shardRespFX{id: id, release: release})
}

// channelHasWorkScaled reports whether channel ch's controller has arrived
// requests to serve (scaled mode has no staging: issues are visible at
// once).
func (e *engine) channelHasWorkScaled(ch int) bool {
	c := &e.sys.chans[ch]
	return !c.tile.IncomingEmpty() || c.ctl.Pending() > 0
}

// pickChannelScaled selects the channel with work whose MC service chain is
// furthest behind (ties to the lower index): the channel a bank of real
// parallel controllers would have made progress on first.
func (e *engine) pickChannelScaled() (int, bool) {
	best, ok := -1, false
	var bestKey clock.PS
	for ch := range e.sys.chans {
		if !e.channelHasWorkScaled(ch) {
			continue
		}
		key := e.mcTimeOf(ch)
		if !ok || key < bestKey {
			best, bestKey, ok = ch, key, true
		}
	}
	return best, ok
}

// settleRefreshesScaled deterministically accounts every REF due on channel
// ch before its next request service starts: a refresh fires iff it is due
// by max(service point, next arrival). Refreshes falling in idle periods
// chain off the stale service point and so cost the emulated timeline
// nothing.
func (e *engine) settleRefreshesScaled(ch int, fx *chanFX) error {
	c := &e.sys.chans[ch]
	if !c.ctl.RefreshEnabled() {
		return nil
	}
	single := len(e.sys.chans) == 1
	for {
		arrival, ok := e.earliestArrival(ch)
		if !ok {
			return nil
		}
		horizon := e.cfg.CPU.Clock.ToTime(clock.Cycles(arrival))
		var mc clock.PS
		if single {
			mc = e.cfg.CPU.Clock.ToTime(e.ts.MC())
		} else {
			mc = e.cfg.CPU.Clock.ToTime(e.cfg.CPU.Clock.CyclesFloor(e.chanMC[ch]))
		}
		if mc > horizon {
			horizon = mc
		}
		due := c.ctl.NextRefreshDue()
		if due > horizon {
			return nil
		}
		env := c.env
		env.Reset(due)
		if err := c.ctl.ServeRefresh(env); err != nil {
			return err
		}
		charged := env.ChargedFPGA()
		if e.cfg.HardwareMC {
			charged = 0
		}
		e.chargeWallScaled(fx, clock.PS(charged)*e.cfg.FPGA.Period()+env.BenderWall())
		if single {
			e.ts.ServeModeled(e.cfg.CPU.Clock.CyclesCeil(due), env.Occupancy(), env.Latency())
		} else {
			e.serveModeledChan(ch, fx, e.cfg.CPU.Clock.CyclesCeil(due), env.Occupancy(), env.Latency())
		}
		if debugTrace && fx == nil {
			tracef("S refresh ch=%d due=%v occ=%v mc=%d", ch, due, env.Occupancy(), e.ts.MC())
		}
	}
}

// smcStepScaled runs one software-memory-controller iteration on the
// furthest-behind channel with work and settles its cost into the
// time-scaling counters.
func (e *engine) smcStepScaled() error {
	ch, ok := e.pickChannelScaled()
	if !ok {
		// Nothing left to serve: every in-flight request has a ready
		// response. Let the processor domain catch up to the earliest
		// release so the responses mature.
		if e.ready.Len() > 0 {
			e.ts.JumpProcTo(clock.Cycles(e.ready.Min().release))
			return nil
		}
		return fmt.Errorf("core: SMC idle with %d requests in flight (blocked=%d)", e.inflightLen(), e.blockedOn)
	}
	return e.stepChannelScaled(ch, nil)
}

// stepChannelScaled runs one controller iteration on channel ch. With a nil
// fx the step applies its shared effects (wall charges, the shared MC
// counter, release-heap pushes, maxRelease) directly — the serial path. A
// non-nil fx is a shard worker's effect sink: shared effects are recorded
// there for the canonical merge, and everything the step touches directly
// is channel-local (see shard.go).
func (e *engine) stepChannelScaled(ch int, fx *chanFX) error {
	if err := e.settleRefreshesScaled(ch, fx); err != nil {
		return err
	}
	c := &e.sys.chans[ch]
	env := c.env
	env.Reset(e.cfg.CPU.Clock.ToTime(e.cfg.CPU.Clock.CyclesFloor(e.mcTimeOf(ch))))
	env.SetBurstBudget(e.burstBudget())
	worked, err := c.ctl.ServeOne(env)
	if err != nil {
		return err
	}
	if !worked {
		if fx != nil {
			// A worker cannot consult the shared ready queue or move the
			// processor; park the channel and let the serial path resolve
			// the idle state.
			fx.stopped = true
			return nil
		}
		// Nothing left to serve on this channel: every in-flight request
		// routed here has a ready response. Let the processor domain catch
		// up to the earliest release so the responses mature.
		if e.ready.Len() > 0 {
			e.ts.JumpProcTo(clock.Cycles(e.ready.Min().release))
			return nil
		}
		return fmt.Errorf("core: SMC idle with %d requests in flight (blocked=%d)", e.inflightLen(), e.blockedOn)
	}

	single := len(e.sys.chans) == 1

	if len(env.Segments()) > 0 {
		return e.settleScaledSegments(ch, env, fx)
	}

	charged := env.ChargedFPGA()
	if e.cfg.HardwareMC {
		charged = 0
	}
	e.chargeWallScaled(fx, clock.PS(charged)*e.cfg.FPGA.Period()+env.BenderWall())

	responses := env.Responses()
	// One service on the channel's MC resource: start at max(service point,
	// the served request's arrival tag), occupy for the step's occupancy,
	// and tag the responses with the release point (start + latency, plus
	// the modeled hardware-controller extra) — the exact mirror of the
	// reference engine's wall-clock service math.
	arrival := clock.Cycles(0)
	if len(responses) > 0 {
		if p, ok := e.inflight[ch].Get(responses[0].ReqID); ok {
			arrival = p.tag
		}
	}
	var release clock.Cycles
	if single {
		release = e.ts.ServeModeled(arrival, env.Occupancy(), env.Latency()+e.extraModeled(len(responses)))
	} else {
		release = e.serveModeledChan(ch, fx, arrival, env.Occupancy(), env.Latency()+e.extraModeled(len(responses)))
	}
	if len(responses) > 0 {
		if debugTrace && fx == nil {
			tracef("S serve ch=%d id=%d arrival=%d occ=%v lat=%v mc=%d release=%d proc=%d", ch, responses[0].ReqID, arrival, env.Occupancy(), env.Latency(), e.ts.MC(), release, e.ts.Proc())
		}
	}
	for _, r := range responses {
		p, ok := e.inflight[ch].Take(r.ReqID)
		if !ok {
			return fmt.Errorf("core: response for unknown request %d", r.ReqID)
		}
		e.noteRelease(fx, release)
		if e.multi != nil {
			e.multi.noteSettled(r.ReqID, int64(release), p.posted)
			continue
		}
		if p.posted {
			continue
		}
		e.pushReady(fx, r.ReqID, int64(release))
	}
	if fx == nil {
		e.maybeExitCritical()
	}
	return nil
}

// settleScaledSegments settles a burst step segment by segment, applying to
// each served request exactly the arithmetic its own serial step would have
// received: one AdvanceWall per segment (per-call FPGA-cycle ceilings
// included), one MC service chained through the channel's modeled-MC
// resource, and one release tag per response — so responses enter the
// release queue with their individual latencies and the counters advance
// bit-identically to serial service.
func (e *engine) settleScaledSegments(ch int, env *smc.Env, fx *chanFX) error {
	single := len(e.sys.chans) == 1
	responses := env.Responses()
	var prev smc.Segment
	for _, s := range env.Segments() {
		charged := s.Charged - prev.Charged
		if e.cfg.HardwareMC {
			charged = 0
		}
		e.chargeWallScaled(fx, clock.PS(charged)*e.cfg.FPGA.Period()+s.Wall)
		if s.Responses != prev.Responses+1 {
			return fmt.Errorf("core: burst segment closed with %d responses, want 1", s.Responses-prev.Responses)
		}
		r := responses[s.Responses-1]
		arrival := clock.Cycles(0)
		p, ok := e.inflight[ch].Get(r.ReqID)
		if ok {
			arrival = p.tag
		}
		var release clock.Cycles
		if single {
			release = e.ts.ServeModeled(arrival, s.Occupancy-prev.Occupancy,
				s.Latency-prev.Latency+e.extraModeled(1))
		} else {
			release = e.serveModeledChan(ch, fx, arrival, s.Occupancy-prev.Occupancy,
				s.Latency-prev.Latency+e.extraModeled(1))
		}
		if debugTrace && fx == nil {
			tracef("S burst-serve ch=%d id=%d arrival=%d occ=%v lat=%v mc=%d release=%d proc=%d", ch, r.ReqID, arrival,
				s.Occupancy-prev.Occupancy, s.Latency-prev.Latency, e.ts.MC(), release, e.ts.Proc())
		}
		if _, ok := e.inflight[ch].Take(r.ReqID); !ok {
			return fmt.Errorf("core: response for unknown request %d", r.ReqID)
		}
		e.noteRelease(fx, release)
		if e.multi != nil {
			e.multi.noteSettled(r.ReqID, int64(release), p.posted)
		} else if !p.posted {
			e.pushReady(fx, r.ReqID, int64(release))
		}
		prev = s
	}
	if fx == nil {
		e.maybeExitCritical()
	}
	return nil
}
