package core

import (
	"fmt"

	"easydram/internal/clock"
	"easydram/internal/mem"
	"easydram/internal/timescale"
)

// runScaled executes the workload under time scaling (Figure 5 mechanics).
func (e *engine) runScaled() error {
	ts, err := timescale.New(e.cfg.FPGA, e.cfg.ProcPhys, e.cfg.CPU.Clock, true)
	if err != nil {
		return err
	}
	e.ts = ts

	for {
		e.deliverMaturedScaled()

		if e.blockedOn != 0 {
			if r, ok := e.ready[e.blockedOn]; ok {
				ts.JumpProcTo(r.Release)
				e.consumeScaled(r)
				e.blockedOn = 0
				continue
			}
			if err := e.smcStepScaled(); err != nil {
				return err
			}
			continue
		}

		if e.fencing {
			if len(e.inflight) == 0 && len(e.ready) == 0 {
				ts.JumpProcTo(e.maxRelease)
				e.maybeExitCritical()
				e.fencing = false
				e.core.FenceDone()
				continue
			}
			if len(e.ready) > 0 {
				r := e.earliestReady()
				ts.JumpProcTo(r.Release)
				e.consumeScaled(r)
				continue
			}
			if err := e.smcStepScaled(); err != nil {
				return err
			}
			continue
		}

		allowance := ts.ProcAllowance()
		if allowance == 0 {
			if err := e.smcStepScaled(); err != nil {
				return err
			}
			continue
		}
		out := e.core.Step(ts.Proc(), allowance)
		if out.Finished {
			break
		}
		if out.Mark {
			e.marks = append(e.marks, ts.Proc())
		}
		ts.AdvanceProc(out.Cycles)
		if err := e.checkCap(ts.Proc()); err != nil {
			return err
		}
		for i := range out.Reqs {
			if debugTrace {
				tracef("S issue id=%d kind=%v proc=%d", out.Reqs[i].ID, out.Reqs[i].Kind, ts.Proc())
			}
			e.issueScaled(out.Reqs[i])
		}
		if out.WaitID != 0 {
			if debugTrace {
				tracef("S block on %d at proc=%d", out.WaitID, ts.Proc())
			}
		}
		if out.Fence {
			e.fencing = true
		}
		if out.WaitID != 0 {
			e.blockedOn = out.WaitID
		}
	}

	// Drain posted writebacks so wall-time accounting covers them.
	for len(e.inflight) > 0 {
		if err := e.smcStepScaled(); err != nil {
			return err
		}
	}
	e.maybeExitCritical()
	return nil
}

// deliverMaturedScaled hands the core every ready response whose release
// point has been reached.
func (e *engine) deliverMaturedScaled() {
	if len(e.ready) == 0 {
		return
	}
	proc := e.ts.Proc()
	for id, r := range e.ready {
		if r.Release <= proc {
			delete(e.ready, id)
			e.core.Deliver(id)
			if e.blockedOn == id {
				e.blockedOn = 0
			}
		}
	}
}

// consumeScaled delivers one ready response the processor waited for.
func (e *engine) consumeScaled(r mem.Response) {
	delete(e.ready, r.ReqID)
	e.core.Deliver(r.ReqID)
	e.maybeExitCritical()
}

func (e *engine) earliestReady() mem.Response {
	var best mem.Response
	first := true
	for _, r := range e.ready {
		if first || r.Release < best.Release {
			best, first = r, false
		}
	}
	return best
}

// issueScaled places a new request into the EasyTile FIFO, tagging it with
// the current processor cycle and gating the processor domain.
func (e *engine) issueScaled(req mem.Request) {
	req.Tag = e.ts.Proc()
	e.sys.tile.PushRequest(req)
	e.inflight[req.ID] = pending{posted: req.Posted, tag: req.Tag}
	if !e.ts.Critical() {
		e.ts.EnterCritical()
	}
}

func (e *engine) maybeExitCritical() {
	if len(e.inflight) == 0 && e.ts != nil && e.ts.Critical() {
		e.ts.ExitCritical()
	}
}

// earliestInflightTag reports the smallest arrival tag among unserved
// requests (the refresh accounting horizon). ok is false when none exist.
func (e *engine) earliestInflightTag() (clock.Cycles, bool) {
	var min clock.Cycles
	found := false
	for _, p := range e.inflight {
		if !found || p.tag < min {
			min, found = p.tag, true
		}
	}
	return min, found
}

// settleRefreshesScaled deterministically accounts every REF due before the
// next request service starts: a refresh fires iff it is due by
// max(service point, next arrival). Refreshes falling in idle periods chain
// off the stale service point and so cost the emulated timeline nothing.
func (e *engine) settleRefreshesScaled() error {
	if !e.sys.ctl.RefreshEnabled() {
		return nil
	}
	for {
		arrival, ok := e.earliestInflightTag()
		if !ok {
			return nil
		}
		horizon := e.cfg.CPU.Clock.ToTime(arrival)
		if mc := e.cfg.CPU.Clock.ToTime(e.ts.MC()); mc > horizon {
			horizon = mc
		}
		due := e.sys.ctl.NextRefreshDue()
		if due > horizon {
			return nil
		}
		env := e.sys.env
		env.Reset(due)
		if err := e.sys.ctl.ServeRefresh(env); err != nil {
			return err
		}
		charged := env.ChargedFPGA()
		if e.cfg.HardwareMC {
			charged = 0
		}
		e.ts.AdvanceWall(clock.PS(charged)*e.cfg.FPGA.Period() + env.BenderWall())
		e.ts.ServeModeled(e.cfg.CPU.Clock.CyclesCeil(due), env.Occupancy(), env.Latency())
		if debugTrace {
			tracef("S refresh due=%v occ=%v mc=%d", due, env.Occupancy(), e.ts.MC())
		}
	}
}

// smcStepScaled runs one software-memory-controller iteration and settles
// its cost into the time-scaling counters.
func (e *engine) smcStepScaled() error {
	if err := e.settleRefreshesScaled(); err != nil {
		return err
	}
	env := e.sys.env
	env.Reset(e.cfg.CPU.Clock.ToTime(e.ts.MC()))
	worked, err := e.sys.ctl.ServeOne(env)
	if err != nil {
		return err
	}
	if !worked {
		// Nothing left to serve: every in-flight request has a ready
		// response. Let the processor domain catch up to the earliest
		// release so the responses mature.
		if len(e.ready) > 0 {
			e.ts.JumpProcTo(e.earliestReady().Release)
			return nil
		}
		return fmt.Errorf("core: SMC idle with %d requests in flight (blocked=%d)", len(e.inflight), e.blockedOn)
	}

	charged := env.ChargedFPGA()
	if e.cfg.HardwareMC {
		charged = 0
	}
	e.ts.AdvanceWall(clock.PS(charged)*e.cfg.FPGA.Period() + env.BenderWall())

	responses := env.Responses()
	// One service on the MC resource: start at max(service point, the
	// served request's arrival tag), occupy for the step's occupancy, and
	// tag the responses with the release point (start + latency, plus the
	// modeled hardware-controller extra) — the exact mirror of the
	// reference engine's wall-clock service math.
	arrival := clock.Cycles(0)
	if len(responses) > 0 {
		if p, ok := e.inflight[responses[0].ReqID]; ok {
			arrival = p.tag
		}
	}
	release := e.ts.ServeModeled(arrival, env.Occupancy(), env.Latency()+e.extraModeled(len(responses)))
	if len(responses) > 0 {
		if debugTrace {
			tracef("S serve id=%d arrival=%d occ=%v lat=%v mc=%d release=%d proc=%d", responses[0].ReqID, arrival, env.Occupancy(), env.Latency(), e.ts.MC(), release, e.ts.Proc())
		}
	}
	for _, r := range responses {
		p, ok := e.inflight[r.ReqID]
		if !ok {
			return fmt.Errorf("core: response for unknown request %d", r.ReqID)
		}
		delete(e.inflight, r.ReqID)
		if release > e.maxRelease {
			e.maxRelease = release
		}
		if p.posted {
			continue
		}
		r.Release = release
		e.ready[r.ReqID] = r
	}
	e.maybeExitCritical()
	return nil
}
