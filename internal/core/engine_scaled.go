package core

import (
	"fmt"

	"easydram/internal/clock"
	"easydram/internal/mem"
	"easydram/internal/smc"
	"easydram/internal/timescale"
)

// runScaled executes the workload under time scaling (Figure 5 mechanics).
func (e *engine) runScaled() error {
	ts, err := timescale.New(e.cfg.FPGA, e.cfg.ProcPhys, e.cfg.CPU.Clock, true)
	if err != nil {
		return err
	}
	e.ts = ts
	e.sys.env.SetBurst(1, e.mayExtendBurstScaled)

	for {
		e.deliverMaturedScaled()

		if e.blockedOn != 0 {
			if release, ok := e.ready.Release(e.blockedOn); ok {
				ts.JumpProcTo(clock.Cycles(release))
				e.consumeScaled(e.blockedOn)
				e.blockedOn = 0
				continue
			}
			e.burstPhase = burstPhaseBlocked
			if err := e.smcStepScaled(); err != nil {
				return err
			}
			continue
		}

		if e.fencing {
			if e.inflight.Len() == 0 && e.ready.Len() == 0 {
				ts.JumpProcTo(e.maxRelease)
				e.maybeExitCritical()
				e.fencing = false
				e.core.FenceDone()
				continue
			}
			if e.ready.Len() > 0 {
				it := e.ready.Min()
				ts.JumpProcTo(clock.Cycles(it.release))
				e.consumeScaled(it.id)
				continue
			}
			e.burstPhase = burstPhaseFence
			if err := e.smcStepScaled(); err != nil {
				return err
			}
			continue
		}

		allowance := ts.ProcAllowance()
		if allowance == 0 {
			e.burstPhase = burstPhaseStall
			if err := e.smcStepScaled(); err != nil {
				return err
			}
			continue
		}
		// Batching contract (see cpu.Core.Step): cap the batch at the next
		// response release point so every decision inside the batch sees
		// the same delivered-response state as cycle-at-a-time stepping.
		// Matured releases were delivered above, so the cap is >= 1.
		if e.ready.Len() > 0 {
			if d := clock.Cycles(e.ready.Min().release) - ts.Proc(); d < allowance {
				allowance = d
			}
		}
		out := e.core.Step(ts.Proc(), allowance)
		if out.Finished {
			break
		}
		if out.Mark {
			e.marks = append(e.marks, ts.Proc())
		}
		ts.AdvanceProc(out.Cycles)
		if err := e.checkCap(ts.Proc()); err != nil {
			return err
		}
		for i := range out.Reqs {
			if debugTrace {
				tracef("S issue id=%d kind=%v proc=%d", out.Reqs[i].ID, out.Reqs[i].Kind, ts.Proc())
			}
			e.issueScaled(&out.Reqs[i])
		}
		if out.WaitID != 0 {
			if debugTrace {
				tracef("S block on %d at proc=%d", out.WaitID, ts.Proc())
			}
		}
		if out.Fence {
			e.fencing = true
		}
		if out.WaitID != 0 {
			e.blockedOn = out.WaitID
		}
	}

	// Drain posted writebacks so wall-time accounting covers them.
	e.burstPhase = burstPhaseDrain
	for e.inflight.Len() > 0 {
		if err := e.smcStepScaled(); err != nil {
			return err
		}
	}
	e.maybeExitCritical()
	return nil
}

// deliverMaturedScaled hands the core every ready response whose release
// point has been reached (in release order, O(log n) each).
func (e *engine) deliverMaturedScaled() {
	proc := int64(e.ts.Proc())
	for e.ready.Len() > 0 && e.ready.Min().release <= proc {
		it := e.ready.PopMin()
		e.core.Deliver(it.id)
		if e.blockedOn == it.id {
			e.blockedOn = 0
		}
	}
}

// consumeScaled delivers one ready response the processor waited for.
func (e *engine) consumeScaled(id uint64) {
	e.ready.Remove(id)
	e.core.Deliver(id)
	e.maybeExitCritical()
}

// issueScaled places a new request into the EasyTile FIFO, tagging it with
// the current processor cycle and gating the processor domain. The request
// is copied into the tile's slab here, once; every later stage carries its
// slot.
func (e *engine) issueScaled(req *mem.Request) {
	req.Tag = e.ts.Proc()
	e.sys.tile.PushRequest(req)
	e.inflight.Put(req.ID, pending{posted: req.Posted, tag: req.Tag})
	if e.trackArrivals {
		e.arrivals.Push(req.ID, int64(req.Tag))
	}
	if !e.ts.Critical() {
		e.ts.EnterCritical()
	}
}

func (e *engine) maybeExitCritical() {
	if e.inflight.Len() == 0 && e.ts != nil && e.ts.Critical() {
		e.ts.ExitCritical()
	}
}

// settleRefreshesScaled deterministically accounts every REF due before the
// next request service starts: a refresh fires iff it is due by
// max(service point, next arrival). Refreshes falling in idle periods chain
// off the stale service point and so cost the emulated timeline nothing.
func (e *engine) settleRefreshesScaled() error {
	if !e.sys.ctl.RefreshEnabled() {
		return nil
	}
	for {
		arrival, ok := e.earliestArrival()
		if !ok {
			return nil
		}
		horizon := e.cfg.CPU.Clock.ToTime(clock.Cycles(arrival))
		if mc := e.cfg.CPU.Clock.ToTime(e.ts.MC()); mc > horizon {
			horizon = mc
		}
		due := e.sys.ctl.NextRefreshDue()
		if due > horizon {
			return nil
		}
		env := e.sys.env
		env.Reset(due)
		if err := e.sys.ctl.ServeRefresh(env); err != nil {
			return err
		}
		charged := env.ChargedFPGA()
		if e.cfg.HardwareMC {
			charged = 0
		}
		e.ts.AdvanceWall(clock.PS(charged)*e.cfg.FPGA.Period() + env.BenderWall())
		e.ts.ServeModeled(e.cfg.CPU.Clock.CyclesCeil(due), env.Occupancy(), env.Latency())
		if debugTrace {
			tracef("S refresh due=%v occ=%v mc=%d", due, env.Occupancy(), e.ts.MC())
		}
	}
}

// smcStepScaled runs one software-memory-controller iteration and settles
// its cost into the time-scaling counters.
func (e *engine) smcStepScaled() error {
	if err := e.settleRefreshesScaled(); err != nil {
		return err
	}
	env := e.sys.env
	env.Reset(e.cfg.CPU.Clock.ToTime(e.ts.MC()))
	env.SetBurstBudget(e.burstBudget())
	worked, err := e.sys.ctl.ServeOne(env)
	if err != nil {
		return err
	}
	if !worked {
		// Nothing left to serve: every in-flight request has a ready
		// response. Let the processor domain catch up to the earliest
		// release so the responses mature.
		if e.ready.Len() > 0 {
			e.ts.JumpProcTo(clock.Cycles(e.ready.Min().release))
			return nil
		}
		return fmt.Errorf("core: SMC idle with %d requests in flight (blocked=%d)", e.inflight.Len(), e.blockedOn)
	}

	if len(env.Segments()) > 0 {
		return e.settleScaledSegments(env)
	}

	charged := env.ChargedFPGA()
	if e.cfg.HardwareMC {
		charged = 0
	}
	e.ts.AdvanceWall(clock.PS(charged)*e.cfg.FPGA.Period() + env.BenderWall())

	responses := env.Responses()
	// One service on the MC resource: start at max(service point, the
	// served request's arrival tag), occupy for the step's occupancy, and
	// tag the responses with the release point (start + latency, plus the
	// modeled hardware-controller extra) — the exact mirror of the
	// reference engine's wall-clock service math.
	arrival := clock.Cycles(0)
	if len(responses) > 0 {
		if p, ok := e.inflight.Get(responses[0].ReqID); ok {
			arrival = p.tag
		}
	}
	release := e.ts.ServeModeled(arrival, env.Occupancy(), env.Latency()+e.extraModeled(len(responses)))
	if len(responses) > 0 {
		if debugTrace {
			tracef("S serve id=%d arrival=%d occ=%v lat=%v mc=%d release=%d proc=%d", responses[0].ReqID, arrival, env.Occupancy(), env.Latency(), e.ts.MC(), release, e.ts.Proc())
		}
	}
	for _, r := range responses {
		p, ok := e.inflight.Take(r.ReqID)
		if !ok {
			return fmt.Errorf("core: response for unknown request %d", r.ReqID)
		}
		if release > e.maxRelease {
			e.maxRelease = release
		}
		if p.posted {
			continue
		}
		e.ready.Push(r.ReqID, int64(release))
	}
	e.maybeExitCritical()
	return nil
}

// settleScaledSegments settles a burst step segment by segment, applying to
// each served request exactly the arithmetic its own serial step would have
// received: one AdvanceWall per segment (per-call FPGA-cycle ceilings
// included), one MC service chained through ServeModeled, and one release
// tag per response — so responses enter the release queue with their
// individual latencies and the counters advance bit-identically to serial
// service.
func (e *engine) settleScaledSegments(env *smc.Env) error {
	responses := env.Responses()
	var prev smc.Segment
	for _, s := range env.Segments() {
		charged := s.Charged - prev.Charged
		if e.cfg.HardwareMC {
			charged = 0
		}
		e.ts.AdvanceWall(clock.PS(charged)*e.cfg.FPGA.Period() + s.Wall)
		if s.Responses != prev.Responses+1 {
			return fmt.Errorf("core: burst segment closed with %d responses, want 1", s.Responses-prev.Responses)
		}
		r := responses[s.Responses-1]
		arrival := clock.Cycles(0)
		p, ok := e.inflight.Get(r.ReqID)
		if ok {
			arrival = p.tag
		}
		release := e.ts.ServeModeled(arrival, s.Occupancy-prev.Occupancy,
			s.Latency-prev.Latency+e.extraModeled(1))
		if debugTrace {
			tracef("S burst-serve id=%d arrival=%d occ=%v lat=%v mc=%d release=%d proc=%d", r.ReqID, arrival,
				s.Occupancy-prev.Occupancy, s.Latency-prev.Latency, e.ts.MC(), release, e.ts.Proc())
		}
		if _, ok := e.inflight.Take(r.ReqID); !ok {
			return fmt.Errorf("core: response for unknown request %d", r.ReqID)
		}
		if release > e.maxRelease {
			e.maxRelease = release
		}
		if !p.posted {
			e.ready.Push(r.ReqID, int64(release))
		}
		prev = s
	}
	e.maybeExitCritical()
	return nil
}
