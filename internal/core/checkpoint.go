package core

import (
	"fmt"

	"easydram/internal/clock"
	"easydram/internal/snapshot"
	"easydram/internal/workload"
)

// Whole-system checkpointing (ROADMAP item 3's durability half). A
// checkpoint is taken only at a quiescent point: the engine's in-flight
// machinery — release heap, arrival rings, staged lists, controller tables,
// tile FIFOs and slabs — is empty, the processor holds no outstanding
// misses, and no fence is pending. Everything that remains is persistent
// state with a per-layer SaveState hook, so the blob is small and a restore
// needs no replay of in-flight transactions. The checkpoint-at-C-then-
// restore run is proven bit-identical to the uninterrupted run by the
// golden tests and the differential fuzzer's checkpoint-identity axis.

// ckptReq carries one checkpoint request through a run.
type ckptReq struct {
	// at is the earliest emulated processor cycle the checkpoint may fire.
	at clock.Cycles
	// taken marks that blob holds a capture.
	taken bool
	blob  []byte
}

// CompatKey canonically identifies everything that determines a run's
// bit-exact behaviour: a checkpoint restores only into a system whose key
// matches. The TRCD provider is a function, so only its presence is keyed;
// callers that install one must install an equivalent provider before
// restoring (the facade's profile store makes that reproducible).
func (c Config) CompatKey() string {
	sched := "fr-fcfs" // NewBaseController's default for a nil scheduler
	if c.Scheduler != nil {
		sched = c.Scheduler.Name()
	}
	return fmt.Sprintf("core:v1|scaling=%v|hwmc=%v|fpga=%v|proc=%v|cpu=%+v|hier=%+v|dram=%+v|costs=%+v|sched=%s|policy=%d|trcd=%v|ctrl=%d|path=%d|burst=%d|topo=%+v|refresh=%v|faults=%+v|mit=%+v",
		c.Scaling, c.HardwareMC, c.FPGA, c.ProcPhys, c.CPU, c.Hier, c.DRAM,
		c.Costs, sched, c.Policy, c.TRCD != nil, c.ModeledCtrlLatency,
		c.MemPathLatency, c.BurstCap, c.Topology, c.RefreshEnabled,
		c.Faults, c.Mitigation)
}

// RunCheckpoint runs the workload like Run and additionally captures a
// checkpoint at the first quiescent point at or after `at` emulated
// processor cycles. The returned blob is nil — with no error — when the run
// finished before reaching such a point (e.g. `at` past the workload's
// end); the Result always covers the complete run.
func (s *System) RunCheckpoint(strm workload.Stream, at clock.Cycles) (Result, []byte, error) {
	if s.cfg.Cores > 1 {
		strm.Close()
		return Result{}, nil, fmt.Errorf("core: checkpoints are not supported for multi-core systems (%d cores)", s.cfg.Cores)
	}
	ck := &ckptReq{at: at}
	res, err := s.run(strm, ck, nil)
	if err != nil {
		return Result{}, nil, err
	}
	return res, ck.blob, nil
}

// RunRestored resumes a checkpointed run: it validates the blob (format,
// per-section CRCs, compatibility key), loads every layer's state, and runs
// the remainder of the workload. The stream must be the same kernel the
// checkpointed run executed — the core fast-forwards a rebuilt stream to
// the recorded position. All errors are named snapshot errors; callers fall
// back to an uninterrupted run.
func (s *System) RunRestored(strm workload.Stream, data []byte) (Result, error) {
	if s.cfg.Cores > 1 {
		strm.Close()
		return Result{}, fmt.Errorf("core: checkpoints are not supported for multi-core systems (%d cores)", s.cfg.Cores)
	}
	r, err := snapshot.ParseExpect(data, snapshot.KindCheckpoint, s.cfg.CompatKey())
	if err != nil {
		strm.Close()
		return Result{}, err
	}
	return s.run(strm, nil, r)
}

// quiescent reports whether the engine holds no in-flight machinery: no
// outstanding requests, no undelivered responses, no staged issues, no
// pending fence or blocked load, and a quiescent core.
func (e *engine) quiescent() bool {
	if e.inflightLen() != 0 || e.ready.Len() != 0 || e.fencing || e.blockedOn != 0 {
		return false
	}
	for _, st := range e.staged {
		if len(st) != 0 {
			return false
		}
	}
	return e.core.Quiescent()
}

// capture serializes the full system into e.ckpt.blob. Read-only: the run
// it interrupts continues bit-identically to one never checkpointed.
func (e *engine) capture() {
	w := snapshot.NewWriter(snapshot.KindCheckpoint, e.cfg.CompatKey())

	var eng snapshot.Enc
	eng.Bool(e.cfg.Scaling)
	eng.Int(len(e.sys.chans))
	if e.cfg.Scaling {
		e.ts.SaveState(&eng)
	} else {
		eng.I64(int64(e.wallNow))
		eng.I64(int64(e.maxWall))
	}
	for _, v := range e.chanFree {
		eng.I64(int64(v))
	}
	for _, v := range e.chanMC {
		eng.I64(int64(v))
	}
	eng.I64(int64(e.maxRelease))
	eng.Int(len(e.marks))
	for _, m := range e.marks {
		eng.I64(int64(m))
	}
	w.Section("engine", eng.Payload())

	var cpuEnc snapshot.Enc
	e.core.SaveState(&cpuEnc)
	w.Section("cpu", cpuEnc.Payload())

	var cacheEnc snapshot.Enc
	e.sys.hier.SaveState(&cacheEnc)
	w.Section("cache", cacheEnc.Payload())

	var sysEnc snapshot.Enc
	sysEnc.U64(e.sys.hostReqID)
	w.Section("system", sysEnc.Payload())

	for i := range e.sys.chans {
		c := &e.sys.chans[i]
		var ch snapshot.Enc
		c.ctl.SaveState(&ch)
		c.tile.SaveState(&ch)
		c.mod.SaveState(&ch)
		w.Section(fmt.Sprintf("chan/%d", i), ch.Payload())
	}

	e.ckpt.blob = w.Bytes()
	e.ckpt.taken = true
}

// loadCheckpoint restores e.restore into the freshly assembled engine and
// system. Any malformed, truncated, or mismatched section yields a named
// error; the engine never starts half-restored.
func (e *engine) loadCheckpoint() error {
	r := e.restore

	d, err := e.sectionDec(r, "engine")
	if err != nil {
		return err
	}
	scaling := d.Bool()
	nch := d.Int()
	if d.Err() == nil {
		if scaling != e.cfg.Scaling {
			d.Failf("engine: snapshot scaling %v, config %v", scaling, e.cfg.Scaling)
		} else if nch != len(e.sys.chans) {
			d.Failf("engine: snapshot has %d channels, system has %d", nch, len(e.sys.chans))
		}
	}
	if d.Err() != nil {
		return d.Err()
	}
	if e.cfg.Scaling {
		e.ts.LoadState(d)
	} else {
		e.wallNow = clock.PS(d.I64())
		e.maxWall = clock.PS(d.I64())
	}
	for i := range e.chanFree {
		e.chanFree[i] = clock.PS(d.I64())
	}
	for i := range e.chanMC {
		e.chanMC[i] = clock.PS(d.I64())
	}
	e.maxRelease = clock.Cycles(d.I64())
	nMarks := d.Int()
	if d.Err() == nil && (nMarks < 0 || nMarks > d.Remaining()/8) {
		d.Fail(snapshot.ErrTruncated)
	}
	for i := 0; i < nMarks && d.Err() == nil; i++ {
		e.marks = append(e.marks, clock.Cycles(d.I64()))
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("engine section: %w", err)
	}

	d, err = e.sectionDec(r, "cpu")
	if err != nil {
		return err
	}
	e.core.LoadState(d)
	if err := d.Finish(); err != nil {
		return fmt.Errorf("cpu section: %w", err)
	}

	d, err = e.sectionDec(r, "cache")
	if err != nil {
		return err
	}
	e.sys.hier.LoadState(d)
	if err := d.Finish(); err != nil {
		return fmt.Errorf("cache section: %w", err)
	}

	d, err = e.sectionDec(r, "system")
	if err != nil {
		return err
	}
	e.sys.hostReqID = d.U64()
	if err := d.Finish(); err != nil {
		return fmt.Errorf("system section: %w", err)
	}

	for i := range e.sys.chans {
		c := &e.sys.chans[i]
		name := fmt.Sprintf("chan/%d", i)
		d, err = e.sectionDec(r, name)
		if err != nil {
			return err
		}
		c.ctl.LoadState(d)
		c.tile.LoadState(d)
		c.mod.LoadState(d)
		if err := d.Finish(); err != nil {
			return fmt.Errorf("%s section: %w", name, err)
		}
	}
	return nil
}

func (e *engine) sectionDec(r *snapshot.Reader, name string) (*snapshot.Dec, error) {
	p, err := r.Section(name)
	if err != nil {
		return nil, err
	}
	return snapshot.NewDec(p), nil
}
