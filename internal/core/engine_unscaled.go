package core

import (
	"fmt"
	"math"

	"easydram/internal/clock"
	"easydram/internal/smc"
)

// runUnscaled executes the workload without time scaling. The processor
// follows the wall clock at its own frequency; each memory channel's SMC is
// a concurrently running serial resource whose busy time is tracked by
// chanFree[ch] — with several channels their service chains advance
// independently, which is exactly the wall-time overlap a multi-channel
// module buys. Two sub-modes share this path:
//
//   - raw software MC (HardwareMC=false): the "EasyDRAM - No Time Scaling"
//     configuration; the full programmable-core latency is visible;
//   - hardware MC (HardwareMC=true): the §6 validation reference, where
//     each request costs only the modeled controller latency plus DRAM time.
func (e *engine) runUnscaled() error {
	procPeriod := e.cfg.ProcPhys.Period()

	proc := func() clock.Cycles { return clock.Cycles(e.wallNow / procPeriod) }
	for c := range e.sys.chans {
		ch := c
		e.sys.chans[c].env.SetBurst(1, func() bool { return e.mayExtendBurstUnscaled(ch) })
	}
	if e.restore != nil {
		if err := e.loadCheckpoint(); err != nil {
			return err
		}
	}

	for {
		// Deliver responses whose wall release time has passed (in release
		// order; the ready queue keys are wall picoseconds here).
		e.drainMaturedUnscaled()

		if e.ckpt != nil && !e.ckpt.taken && proc() >= e.ckpt.at && e.quiescent() {
			e.capture()
		}

		if e.blockedOn != 0 {
			if w, ok := e.ready.Release(e.blockedOn); ok {
				// The processor consumes the response at its next clock
				// edge (the scaled engine's release tags are integral
				// cycles for the same reason).
				if clock.PS(w) > e.wallNow {
					e.wallNow = clock.PS(e.cfg.ProcPhys.CyclesCeil(clock.PS(w))) * procPeriod
				}
				e.ready.Remove(e.blockedOn)
				e.core.Deliver(e.blockedOn)
				e.blockedOn = 0
				// Batched settlement: every other response due by the
				// advanced wall point matures with the one just consumed,
				// so settle the whole batch here instead of paying one
				// loop iteration per response (the next loop-top drain
				// would deliver exactly these).
				e.drainMaturedUnscaled()
				continue
			}
			e.burstPhase = burstPhaseBlocked
			w, err := e.smcStepUnscaled()
			if err != nil {
				return err
			}
			if w > e.maxWall {
				e.maxWall = w
			}
			continue
		}

		if e.fencing {
			if e.inflightLen() == 0 && e.ready.Len() == 0 {
				if e.maxWall > e.wallNow {
					e.wallNow = e.maxWall
				}
				e.fencing = false
				e.core.FenceDone()
				continue
			}
			if e.inflightLen() > 0 {
				e.burstPhase = burstPhaseFence
				if ran, err := e.shardRoundUnscaled(true); err != nil {
					return err
				} else if ran {
					continue
				}
				w, err := e.smcStepUnscaled()
				if err != nil {
					return err
				}
				if w > e.maxWall {
					e.maxWall = w
				}
				continue
			}
			// Only ready responses remain: advance to the earliest.
			if earliest := clock.PS(e.ready.Min().release); earliest > e.wallNow {
				e.wallNow = earliest
			}
			continue
		}

		// Batching contract (see cpu.Core.Step): cap the batch at the next
		// response's delivery edge — the first processor clock edge at or
		// past its wall release — so batched decisions see the same
		// delivered-response state as cycle-at-a-time stepping. Matured
		// releases were delivered above, so the cap is >= 1.
		budget := clock.Cycles(0)
		if e.ready.Len() > 0 {
			rel := clock.PS(e.ready.Min().release)
			budget = clock.Cycles((rel - e.wallNow + procPeriod - 1) / procPeriod)
		}
		out := e.core.Step(proc(), budget)
		if out.Finished {
			break
		}
		if out.Mark {
			e.marks = append(e.marks, proc())
		}
		e.wallNow += clock.PS(out.Cycles) * procPeriod
		if err := e.checkCap(proc()); err != nil {
			return err
		}
		for i := range out.Reqs {
			req := &out.Reqs[i]
			req.Tag = proc()
			ch := e.sys.chanIndex(req.Addr)
			if debugTrace {
				tracef("U issue id=%d kind=%v ch=%d wall=%d proc=%d", req.ID, req.Kind, ch, e.wallNow, proc())
			}
			// Copy into the owning channel's tile slab once; stage the slot
			// until arrival.
			e.staged[ch] = append(e.staged[ch], stagedReq{slot: e.sys.chans[ch].tile.Stage(req), id: req.ID})
			e.inflight[ch].Put(req.ID, pending{posted: req.Posted, arrival: e.wallNow})
			if e.trackArrivals {
				e.arrivals[ch].Push(req.ID, int64(e.wallNow))
			}
		}
		if out.WaitID != 0 {
			if debugTrace {
				tracef("U block on %d at wall=%d", out.WaitID, e.wallNow)
			}
		}
		if out.Fence {
			e.fencing = true
		}
		if out.WaitID != 0 {
			e.blockedOn = out.WaitID
		}
	}

	e.procCycles = proc()
	// Drain remaining posted writebacks for wall-time accounting.
	e.burstPhase = burstPhaseDrain
	for e.inflightLen() > 0 {
		if ran, err := e.shardRoundUnscaled(false); err != nil {
			return err
		} else if ran {
			continue
		}
		w, err := e.smcStepUnscaled()
		if err != nil {
			return err
		}
		if w > e.maxWall {
			e.maxWall = w
		}
	}
	final := e.wallNow
	for _, free := range e.chanFree {
		if free > final {
			final = free
		}
	}
	e.globalFinal = e.cfg.FPGA.CyclesCeil(final)
	return nil
}

// drainMaturedUnscaled hands the core every ready response whose wall
// release time has passed, in release order. Each nonzero drain is one
// settle batch (ROADMAP item 4: responses settle in batches instead of one
// engine iteration each).
func (e *engine) drainMaturedUnscaled() {
	n := int64(0)
	for e.ready.Len() > 0 && e.ready.Min().release <= int64(e.wallNow) {
		it := e.ready.PopMin()
		e.core.Deliver(it.id)
		if e.blockedOn == it.id {
			e.blockedOn = 0
		}
		n++
	}
	if n > 0 {
		e.settleBatches++
		e.settleDelivered += n
	}
}

// channelHasWorkUnscaled reports whether channel ch has anything for its
// controller: arrived requests in the tile FIFO, buffered table entries, or
// staged (issued but not yet arrived) requests it would wait for.
func (e *engine) channelHasWorkUnscaled(ch int) bool {
	c := &e.sys.chans[ch]
	return !c.tile.IncomingEmpty() || c.ctl.Pending() > 0 || len(e.staged[ch]) > 0
}

// chanKeyUnscaled is channel ch's pick key: its next controller decision
// point, max(the channel's SMC-free point, its next staged arrival when it
// is otherwise idle). Monotone nondecreasing across the channel's steps —
// what makes the shard merge's (key, channel) order equal the serial
// interleave (see shard.go).
func (e *engine) chanKeyUnscaled(ch int) clock.PS {
	key := e.chanFree[ch]
	c := &e.sys.chans[ch]
	if len(e.staged[ch]) > 0 && c.tile.IncomingEmpty() && c.ctl.Pending() == 0 {
		if p, found := e.inflight[ch].Get(e.staged[ch][0].id); found && key < p.arrival {
			key = p.arrival
		}
	}
	return key
}

// pickChannelUnscaled selects the channel whose next controller decision
// point is earliest. Ties break to the lower index, so runs are
// deterministic at any channel count. ok is false when no channel has work.
func (e *engine) pickChannelUnscaled() (int, bool) {
	best, ok := -1, false
	var bestKey clock.PS
	for ch := range e.sys.chans {
		if !e.channelHasWorkUnscaled(ch) {
			continue
		}
		key := e.chanKeyUnscaled(ch)
		if !ok || key < bestKey {
			best, bestKey, ok = ch, key, true
		}
	}
	return best, ok
}

// settleRefreshesUnscaled mirrors settleRefreshesScaled for channel ch:
// every REF due by max(service point, next arrival) is accounted before the
// next request service, chaining off the (possibly stale) service point.
func (e *engine) settleRefreshesUnscaled(ch int) error {
	c := &e.sys.chans[ch]
	if !c.ctl.RefreshEnabled() {
		return nil
	}
	for {
		arrival, found := e.earliestArrival(ch)
		if !found {
			return nil
		}
		horizon := clock.PS(arrival)
		if e.chanFree[ch] > horizon {
			horizon = e.chanFree[ch]
		}
		due := c.ctl.NextRefreshDue()
		if due > horizon {
			return nil
		}
		env := c.env
		env.Reset(due)
		if err := c.ctl.ServeRefresh(env); err != nil {
			return err
		}
		start := e.chanFree[ch]
		if due > start {
			start = due
		}
		var smcOcc clock.PS
		if !e.cfg.HardwareMC {
			smcOcc = clock.PS(env.ChargedFPGA()) * e.cfg.FPGA.Period()
		}
		e.chanFree[ch] = start + smcOcc + env.Occupancy()
		if debugTrace {
			tracef("U refresh ch=%d due=%v occ=%v free=%d", ch, due, env.Occupancy(), e.chanFree[ch])
		}
	}
}

// smcStepUnscaled runs one controller iteration on the channel with the
// earliest pending decision and settles its cost onto that channel's
// wall-time resource. It returns the completion wall time of the work done.
func (e *engine) smcStepUnscaled() (clock.PS, error) {
	ch, ok := e.pickChannelUnscaled()
	if !ok {
		// Every in-flight request is already responded; nothing to step.
		if e.ready.Len() > 0 {
			var free clock.PS
			for _, f := range e.chanFree {
				if f > free {
					free = f
				}
			}
			return free, nil
		}
		return 0, fmt.Errorf("core: SMC idle with %d requests in flight (blocked=%d)", e.inflightLen(), e.blockedOn)
	}
	return e.stepChannelUnscaled(ch, nil)
}

// stepChannelUnscaled runs one controller iteration on channel ch. With a
// nil fx the step applies its shared effects (ready-queue pushes) directly
// — the serial path. A non-nil fx is a shard worker's effect sink: shared
// effects are recorded there for the canonical merge, and everything the
// step touches directly is channel-local (see shard.go).
func (e *engine) stepChannelUnscaled(ch int, fx *chanFX) (clock.PS, error) {
	if err := e.settleRefreshesUnscaled(ch); err != nil {
		return 0, err
	}
	c := &e.sys.chans[ch]
	env := c.env
	// Make exactly the requests that have arrived by the controller's next
	// decision point visible. If the controller is idle, the next decision
	// happens when the earliest staged request arrives. Staged requests sit
	// in issue order and arrivals are monotone, so the earliest is first.
	decision := e.chanFree[ch]
	if len(e.staged[ch]) > 0 && c.tile.IncomingEmpty() && c.ctl.Pending() == 0 {
		if p, ok := e.inflight[ch].Get(e.staged[ch][0].id); ok && decision < p.arrival {
			decision = p.arrival
		}
	}
	kept := e.staged[ch][:0]
	for _, sr := range e.staged[ch] {
		if p, _ := e.inflight[ch].Get(sr.id); p.arrival <= decision {
			c.tile.Enqueue(sr.slot)
		} else {
			kept = append(kept, sr)
		}
	}
	e.staged[ch] = kept

	// A burst's service chain must stop before the next staged arrival:
	// serial stepping would ingest that request first (see burst.go).
	e.burstLimit[ch] = math.MaxInt64
	if len(e.staged[ch]) > 0 {
		if p, ok := e.inflight[ch].Get(e.staged[ch][0].id); ok {
			e.burstLimit[ch] = int64(p.arrival)
		}
	}

	now := e.wallNow
	if e.chanFree[ch] > now {
		now = e.chanFree[ch]
	}
	env.Reset(now)
	env.SetBurstBudget(e.burstBudget())
	worked, err := c.ctl.ServeOne(env)
	if err != nil {
		return 0, err
	}
	if !worked {
		if fx != nil {
			// A worker cannot consult the shared ready queue; park the
			// channel and let the serial path resolve the idle state.
			fx.stopped = true
			return 0, nil
		}
		if e.ready.Len() > 0 {
			// Everything outstanding is already responded; nothing to do.
			return e.chanFree[ch], nil
		}
		return 0, fmt.Errorf("core: SMC idle with %d requests in flight (blocked=%d)", e.inflightLen(), e.blockedOn)
	}

	responses := env.Responses()

	if len(env.Segments()) > 0 {
		return e.settleUnscaledSegments(ch, env, fx)
	}

	// Service start: the SMC must be free and the request must have
	// arrived (the model serves one request per step, so the first
	// response identifies the request being served).
	start := e.chanFree[ch]
	if len(responses) > 0 {
		if p, ok := e.inflight[ch].Get(responses[0].ReqID); ok && p.arrival > start {
			start = p.arrival
		}
	}

	// Occupancy chains the serial resource; latency (plus the modeled
	// controller extra) sets the response release — mirroring the scaled
	// engine's MC/release split so the §6 validation compares like with
	// like. The raw software MC is itself the serial resource, so its
	// charged cycles appear in both terms.
	var smcOcc, smcLat clock.PS
	if e.cfg.HardwareMC {
		smcLat = e.extraModeled(len(responses))
	} else {
		chargedPS := clock.PS(env.ChargedFPGA()) * e.cfg.FPGA.Period()
		smcOcc = chargedPS
		smcLat = chargedPS + e.extraModeled(len(responses))
	}
	completion := start + smcOcc + env.Occupancy()
	release := start + smcLat + env.Latency()
	if release < completion {
		release = completion
	}
	e.chanFree[ch] = completion
	if len(responses) > 0 {
		if debugTrace && fx == nil {
			tracef("U serve ch=%d id=%d start=%d occ=%v lat=%v completion=%d release=%d", ch, responses[0].ReqID, start, env.Occupancy(), env.Latency(), completion, release)
		}
	}

	for _, r := range responses {
		p, ok := e.inflight[ch].Take(r.ReqID)
		if !ok {
			return 0, fmt.Errorf("core: response for unknown request %d", r.ReqID)
		}
		if e.multi != nil {
			e.multi.noteSettled(r.ReqID, int64(release), p.posted)
			continue
		}
		if p.posted {
			continue
		}
		e.pushReady(fx, r.ReqID, int64(release))
	}
	return completion, nil
}

// settleUnscaledSegments settles a burst step segment by segment with the
// exact wall-clock service math of a serial step sequence: each segment
// starts at max(the channel's SMC free point, its request's arrival),
// chains the serial resource by its charged SMC cycles plus modeled
// occupancy, and releases its response at its own latency. The returned
// completion is the last segment's (the chain's maximum).
func (e *engine) settleUnscaledSegments(ch int, env *smc.Env, fx *chanFX) (clock.PS, error) {
	responses := env.Responses()
	var prev smc.Segment
	var completion clock.PS
	for _, s := range env.Segments() {
		if s.Responses != prev.Responses+1 {
			return 0, fmt.Errorf("core: burst segment closed with %d responses, want 1", s.Responses-prev.Responses)
		}
		r := responses[s.Responses-1]
		p, ok := e.inflight[ch].Get(r.ReqID)
		if !ok {
			return 0, fmt.Errorf("core: response for unknown request %d", r.ReqID)
		}
		start := e.chanFree[ch]
		if p.arrival > start {
			start = p.arrival
		}
		var smcOcc, smcLat clock.PS
		if e.cfg.HardwareMC {
			smcLat = e.extraModeled(1)
		} else {
			chargedPS := clock.PS(s.Charged-prev.Charged) * e.cfg.FPGA.Period()
			smcOcc = chargedPS
			smcLat = chargedPS + e.extraModeled(1)
		}
		completion = start + smcOcc + (s.Occupancy - prev.Occupancy)
		release := start + smcLat + (s.Latency - prev.Latency)
		if release < completion {
			release = completion
		}
		e.chanFree[ch] = completion
		if debugTrace && fx == nil {
			tracef("U burst-serve ch=%d id=%d start=%d completion=%d release=%d", ch, r.ReqID, start, completion, release)
		}
		e.inflight[ch].Take(r.ReqID)
		if e.multi != nil {
			e.multi.noteSettled(r.ReqID, int64(release), p.posted)
		} else if !p.posted {
			e.pushReady(fx, r.ReqID, int64(release))
		}
		prev = s
	}
	return completion, nil
}
