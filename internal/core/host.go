package core

import (
	"fmt"

	"easydram/internal/clock"
	"easydram/internal/mem"
)

// Host-driven controller access. Characterization studies (DRAM profiling,
// clonability testing) run before workload emulation begins: the host
// enqueues requests directly into EasyTile and executes controller
// iterations synchronously, outside the emulated timeline (§8.1).

// hostServe pushes req and runs controller iterations until its response
// appears, returning the response. Host request IDs are a per-system
// counter (starting at hostReqIDBase, distinct from CPU-issued IDs) so that
// systems running concurrently under the parallel experiments harness stay
// independent and deterministic.
func (s *System) hostServe(req mem.Request) (mem.Response, error) {
	s.hostReqID++
	req.ID = s.hostReqID
	c := &s.chans[s.chanIndex(req.Addr)]
	c.tile.PushRequest(&req)
	for i := 0; i < 1024; i++ {
		c.env.Reset(0)
		worked, err := c.ctl.ServeOne(c.env)
		if err != nil {
			return mem.Response{}, err
		}
		for _, r := range c.env.Responses() {
			if r.ReqID == req.ID {
				return r, nil
			}
		}
		if !worked {
			break
		}
	}
	return mem.Response{}, fmt.Errorf("core: host request %v not served", req.Kind)
}

// HostRequests reports how many host-driven characterization requests this
// system has issued so far — the number of host-to-controller round-trips,
// the quantity the whole-row profiling path exists to reduce.
func (s *System) HostRequests() uint64 { return s.hostReqID - hostReqIDBase }

// ProfileLine tests whether the cache line at physical address pa reads
// reliably with the given tRCD (a §8.1 profiling request). It is the
// per-line compatibility path; bulk characterization should use ProfileRow,
// which covers a whole row per round-trip.
func (s *System) ProfileLine(pa uint64, rcd clock.PS) (bool, error) {
	r, err := s.hostServe(mem.Request{Kind: mem.Profile, Addr: pa, RCD: rcd})
	return r.OK, err
}

// ProfileRow tests every cache line of the DRAM row containing pa (the
// address is row-aligned internally) at the given tRCD using a single
// whole-row profiling request — one host round-trip and one Bender program
// for the full row instead of one per line. It returns the number of
// leading lines that read reliably and whether the entire row passed.
// Per-line outcomes are identical to repeated ProfileLine calls.
func (s *System) ProfileRow(pa uint64, rcd clock.PS) (okLines int, ok bool, err error) {
	r, err := s.hostServe(mem.Request{Kind: mem.ProfileRow, Addr: s.rowBase(pa), RCD: rcd})
	return r.Lines, r.OK, err
}

// rowBase returns the address of the first line of pa's DRAM row. A plain
// low-bit mask is only correct for the default topology: under channel
// interleaving the channel bits sit inside the row's byte span, so the
// alignment goes through the mapper (decode, zero the column, re-encode),
// which preserves the channel and rank coordinates for any interleave.
func (s *System) rowBase(pa uint64) uint64 {
	a := s.mapper.Map(pa)
	a.Col = 0
	return s.mapper.Unmap(a)
}

// ProfileRowStripe tests every cache line of `rows` consecutive DRAM rows
// starting at the row containing pa (row-aligned internally) at the given
// tRCD, with a single bank-stripe profiling request — one host round-trip
// and one Bender program for up to 64 rows (the readback-buffer bound; see
// bender.StripeRowsMax). rowLines[r] is the r-th covered row's leading
// reliable line count (the column count when the row passed); ok reports
// whether every line of every row passed. Per-line outcomes are identical
// to ProfileRow and ProfileLine.
func (s *System) ProfileRowStripe(pa uint64, rows int, rcd clock.PS) (rowLines []int, ok bool, err error) {
	r, err := s.hostServe(mem.Request{Kind: mem.ProfileRow, Addr: s.rowBase(pa), RCD: rcd, Rows: rows})
	return r.RowLines, r.OK, err
}

// BitwiseMAJ performs an in-DRAM bulk bitwise majority across the rows at
// r1, r2 (row-aligned physical addresses) and their address-OR row, via a
// many-row activation (ComputeDRAM-class extension). It reports whether the
// chip committed the result.
func (s *System) BitwiseMAJ(r1, r2 uint64) (bool, error) {
	r, err := s.hostServe(mem.Request{Kind: mem.Bitwise, Addr: r2, Src: r1})
	return r.OK, err
}

// TestRowClone performs trial RowClone copies from the row at src to the
// row at dst (both physical, row-aligned) and reports whether every trial
// succeeded — the PiDRAM-style clonability test (§7.1: an address pair is
// clonable only if it never fails).
func (s *System) TestRowClone(src, dst uint64, trials int) (bool, error) {
	if trials <= 0 {
		trials = 1
	}
	for i := 0; i < trials; i++ {
		r, err := s.hostServe(mem.Request{Kind: mem.RowClone, Addr: dst, Src: src})
		if err != nil {
			return false, err
		}
		if !r.OK {
			return false, nil
		}
	}
	return true, nil
}
