package core

import (
	"easydram/internal/cache"
	"easydram/internal/clock"
	"easydram/internal/cpu"
	"easydram/internal/dram"
	"easydram/internal/smc"
	"easydram/internal/tile"
)

// The preset configurations below correspond to the systems the paper
// evaluates. Latency constants are calibrated so the Figure 8 profile
// plateaus land where the paper's do (see EXPERIMENTS.md).

// boomPhysClock is the physical clock the BOOM application core closes
// timing at on the VCU108 fabric. It only affects FPGA wall-clock (and so
// simulation-speed) accounting; time scaling hides it from emulated
// results.
var boomPhysClock = clock.FromMHz("boom-phys", 20)

// modeledCtrlLatency is the per-request service latency of the modeled
// target system's memory path outside the DRAM itself: hardware controller
// decision time plus the LLC-to-controller interconnect round trip. It is
// calibrated so the Figure 8 main-memory plateau lands near the measured
// Cortex-A57 value (~125 ns total load-to-use at 1.43 GHz).
const modeledCtrlLatency = 40 * clock.Nanosecond

// TimeScalingA57 is "EasyDRAM - Time Scaling": a BOOM core emulated as a
// 1.43 GHz Cortex-A57 on a 100 MHz FPGA fabric, 512 KiB L2, DDR4-1333.
func TimeScalingA57() Config {
	return Config{
		Scaling:            true,
		FPGA:               clock.FPGA100MHz,
		ProcPhys:           boomPhysClock,
		CPU:                cpu.CortexA57(),
		Hier:               cache.JetsonNanoHier(),
		DRAM:               workloadDRAM(),
		Costs:              tile.DefaultCostModel(),
		Scheduler:          smc.FRFCFS{},
		ModeledCtrlLatency: modeledCtrlLatency,
		MemPathLatency:     0,
		RefreshEnabled:     true,
	}
}

// NoTimeScaling is "EasyDRAM - No Time Scaling": the PiDRAM-class system —
// a 50 MHz in-order core whose every miss pays the real software-memory-
// controller latency.
func NoTimeScaling() Config {
	return Config{
		Scaling:        false,
		FPGA:           clock.FPGA100MHz,
		ProcPhys:       clock.Proc50MHz,
		CPU:            cpu.Rocket50(),
		Hier:           cache.JetsonNanoHier(),
		DRAM:           workloadDRAM(),
		Costs:          tile.DefaultCostModel(),
		Scheduler:      smc.FRFCFS{},
		MemPathLatency: 0,
		RefreshEnabled: true,
	}
}

// TimeScaling1GHz is the §6 validation configuration: a 100 MHz physical
// processor time-scaled to 1 GHz.
func TimeScaling1GHz() Config {
	cfg := TimeScalingA57()
	cfg.CPU = cpu.Boom1GHz()
	return cfg
}

// Reference1GHz is the §6 validation reference: the same system simulated
// directly at 1 GHz with an RTL memory controller that makes the same
// scheduling decisions (no time scaling needed).
func Reference1GHz() Config {
	return Config{
		Scaling:            false,
		HardwareMC:         true,
		FPGA:               clock.FPGA100MHz,
		ProcPhys:           clock.Proc1GHz,
		CPU:                cpu.Boom1GHz(),
		Hier:               cache.JetsonNanoHier(),
		DRAM:               workloadDRAM(),
		Costs:              tile.DefaultCostModel(),
		Scheduler:          smc.FRFCFS{},
		ModeledCtrlLatency: modeledCtrlLatency,
		MemPathLatency:     0,
		RefreshEnabled:     true,
	}
}

// workloadDRAM is the paper's module with the data store disabled: workload
// runs never check data contents, so moving bytes would be pure overhead.
func workloadDRAM() dram.Config {
	cfg := dram.DefaultConfig()
	cfg.TrackData = false
	return cfg
}

// TechniqueDRAM returns the module with data tracking on (profiling and
// RowClone correctness need real contents).
func TechniqueDRAM() dram.Config {
	return dram.DefaultConfig()
}
