package core

import (
	"testing"

	"easydram/internal/clock"
)

func TestSlotRingBasics(t *testing.T) {
	r := newSlotRing()
	if r.Len() != 0 {
		t.Fatalf("new ring not empty")
	}
	for id := uint64(1); id <= 100; id++ {
		r.Put(id, pending{tag: clock.Cycles(id)})
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d after 100 puts", r.Len())
	}
	for id := uint64(1); id <= 100; id++ {
		p, ok := r.Get(id)
		if !ok || p.tag != clock.Cycles(id) {
			t.Fatalf("Get(%d) = %+v, %v", id, p, ok)
		}
	}
	if _, ok := r.Get(101); ok {
		t.Fatalf("Get of unknown id succeeded")
	}
	p, ok := r.Take(50)
	if !ok || p.tag != 50 {
		t.Fatalf("Take(50) = %+v, %v", p, ok)
	}
	if r.Contains(50) || r.Len() != 99 {
		t.Fatalf("Take did not remove (len %d)", r.Len())
	}
	if _, ok := r.Take(50); ok {
		t.Fatalf("double Take succeeded")
	}
	// Overwrite keeps the count.
	r.Put(51, pending{posted: true})
	if r.Len() != 99 {
		t.Fatalf("overwrite changed Len to %d", r.Len())
	}
	if p, _ := r.Get(51); !p.posted {
		t.Fatalf("overwrite lost state")
	}
}

// TestSlotRingLongLivedEntry pins the growth path: a request that stays live
// while thousands of successors come and go must survive ID wraparound in
// the ring (the ring doubles until every live entry has a distinct slot).
func TestSlotRingLongLivedEntry(t *testing.T) {
	r := newSlotRing()
	const ancient = uint64(7)
	r.Put(ancient, pending{tag: 777})
	for id := uint64(8); id < 8+4096; id++ {
		r.Put(id, pending{tag: clock.Cycles(id)})
		if id%3 != 0 {
			r.Take(id)
		}
	}
	p, ok := r.Get(ancient)
	if !ok || p.tag != 777 {
		t.Fatalf("long-lived entry lost across growth: %+v, %v", p, ok)
	}
	// Every still-live successor must be intact too.
	for id := uint64(8); id < 8+4096; id++ {
		if id%3 == 0 {
			if p, ok := r.Get(id); !ok || p.tag != clock.Cycles(id) {
				t.Fatalf("live id %d lost: %+v, %v", id, p, ok)
			}
		} else if r.Contains(id) {
			t.Fatalf("removed id %d still present", id)
		}
	}
}

// TestSlotRingSteadyStateAllocs pins the slot ring at zero allocations per
// operation in steady state: once sized, put/get/take cycles over a sliding
// live window must not allocate at all.
func TestSlotRingSteadyStateAllocs(t *testing.T) {
	r := newSlotRing()
	next := uint64(1)
	// Warm: establish the steady-state live window.
	for i := 0; i < 32; i++ {
		r.Put(next, pending{tag: clock.Cycles(next)})
		next++
	}
	oldest := uint64(1)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1000; i++ {
			r.Put(next, pending{tag: clock.Cycles(next)})
			next++
			if _, ok := r.Take(oldest); !ok {
				t.Fatal("steady-state Take failed")
			}
			oldest++
		}
	})
	if allocs != 0 {
		t.Fatalf("slot ring allocates in steady state: %.1f allocs/run", allocs)
	}
}
