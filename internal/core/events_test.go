package core

import (
	"testing"

	"easydram/internal/clock"
)

func TestSlotRingBasics(t *testing.T) {
	r := newSlotRing()
	if r.Len() != 0 {
		t.Fatalf("new ring not empty")
	}
	for id := uint64(1); id <= 100; id++ {
		r.Put(id, pending{tag: clock.Cycles(id)})
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d after 100 puts", r.Len())
	}
	for id := uint64(1); id <= 100; id++ {
		p, ok := r.Get(id)
		if !ok || p.tag != clock.Cycles(id) {
			t.Fatalf("Get(%d) = %+v, %v", id, p, ok)
		}
	}
	if _, ok := r.Get(101); ok {
		t.Fatalf("Get of unknown id succeeded")
	}
	p, ok := r.Take(50)
	if !ok || p.tag != 50 {
		t.Fatalf("Take(50) = %+v, %v", p, ok)
	}
	if r.Contains(50) || r.Len() != 99 {
		t.Fatalf("Take did not remove (len %d)", r.Len())
	}
	if _, ok := r.Take(50); ok {
		t.Fatalf("double Take succeeded")
	}
	// Overwrite keeps the count.
	r.Put(51, pending{posted: true})
	if r.Len() != 99 {
		t.Fatalf("overwrite changed Len to %d", r.Len())
	}
	if p, _ := r.Get(51); !p.posted {
		t.Fatalf("overwrite lost state")
	}
}

// TestSlotRingLongLivedEntry pins the growth path: a request that stays live
// while thousands of successors come and go must survive ID wraparound in
// the ring (the ring doubles until every live entry has a distinct slot).
func TestSlotRingLongLivedEntry(t *testing.T) {
	r := newSlotRing()
	const ancient = uint64(7)
	r.Put(ancient, pending{tag: 777})
	for id := uint64(8); id < 8+4096; id++ {
		r.Put(id, pending{tag: clock.Cycles(id)})
		if id%3 != 0 {
			r.Take(id)
		}
	}
	p, ok := r.Get(ancient)
	if !ok || p.tag != 777 {
		t.Fatalf("long-lived entry lost across growth: %+v, %v", p, ok)
	}
	// Every still-live successor must be intact too.
	for id := uint64(8); id < 8+4096; id++ {
		if id%3 == 0 {
			if p, ok := r.Get(id); !ok || p.tag != clock.Cycles(id) {
				t.Fatalf("live id %d lost: %+v, %v", id, p, ok)
			}
		} else if r.Contains(id) {
			t.Fatalf("removed id %d still present", id)
		}
	}
}

// TestReleaseQueueOrderAndLookup covers the dense-ID position index end to
// end: pushes, keyed min-pops, O(1) release lookup, and removal from the
// middle of the heap.
func TestReleaseQueueOrderAndLookup(t *testing.T) {
	q := newReleaseQueue()
	if q.Len() != 0 {
		t.Fatalf("new queue not empty")
	}
	// Insert out of order, with a release-point tie (ids 30 and 40).
	for _, it := range []struct {
		id      uint64
		release int64
	}{{10, 500}, {20, 100}, {30, 300}, {40, 300}, {50, 200}} {
		q.Push(it.id, it.release)
	}
	if r, ok := q.Release(30); !ok || r != 300 {
		t.Fatalf("Release(30) = %d, %v", r, ok)
	}
	if _, ok := q.Release(99); ok {
		t.Fatalf("Release of unknown id succeeded")
	}
	if !q.Remove(10) || q.Remove(10) {
		t.Fatalf("Remove must delete exactly once")
	}
	// Pops come out in (release, insertion seq) order: ties by push order.
	wantIDs := []uint64{20, 50, 30, 40}
	for _, want := range wantIDs {
		it := q.PopMin()
		if it.id != want {
			t.Fatalf("PopMin = id %d, want %d", it.id, want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}

// TestReleaseQueueLongLivedEntry pins the position index's growth path: an
// entry that stays queued while thousands of successors are pushed and
// popped must survive the dense table doubling (the releaseQueue analogue
// of TestSlotRingLongLivedEntry).
func TestReleaseQueueLongLivedEntry(t *testing.T) {
	q := newReleaseQueue()
	const ancient = uint64(3)
	const future = int64(1) << 40 // keeps long-lived entries off the heap top
	q.Push(ancient, future)
	for id := uint64(4); id < 4+4096; id++ {
		if id%3 == 0 {
			q.Push(id, future+int64(id)) // long-lived: parked behind ancient
			continue
		}
		q.Push(id, int64(id))
		if it := q.PopMin(); it.id != id {
			t.Fatalf("PopMin = %d, want %d", it.id, id)
		}
	}
	if r, ok := q.Release(ancient); !ok || r != future {
		t.Fatalf("long-lived entry lost across growth: %d, %v", r, ok)
	}
	for id := uint64(4); id < 4+4096; id++ {
		if _, ok := q.Release(id); ok != (id%3 == 0) {
			t.Fatalf("id %d presence = %v, want %v", id, ok, id%3 == 0)
		}
	}
}

// TestIDIndexWraparound pins dense-ID indexing across an ID-space
// wraparound: IDs that collide under the slot mask force growth until both
// live entries fit, exactly like slotRing.
func TestIDIndexWraparound(t *testing.T) {
	x := newIDIndex()
	// Two IDs idTableInitial apart collide in the initial table.
	a, b := uint64(5), uint64(5+idTableInitial)
	x.Put(a, 1)
	x.Put(b, 2)
	if va, ok := x.Get(a); !ok || va != 1 {
		t.Fatalf("Get(a) = %d, %v after collision growth", va, ok)
	}
	if vb, ok := x.Get(b); !ok || vb != 2 {
		t.Fatalf("Get(b) = %d, %v after collision growth", vb, ok)
	}
	// ID-space wraparound: the sequential allocator rolling over from the
	// top of the uint64 range to small IDs must keep both ends live (the
	// top ID's slot bits are all ones, the restart's nearly all zeros).
	top, restart := ^uint64(0), uint64(1)
	x.Put(top, 3)
	x.Put(restart, 4)
	for _, c := range []struct {
		id   uint64
		want int
	}{{a, 1}, {b, 2}, {top, 3}, {restart, 4}} {
		if v, ok := x.Get(c.id); !ok || v != c.want {
			t.Fatalf("Get(%d) = %d, %v, want %d", c.id, v, ok, c.want)
		}
	}
	if !x.Delete(b) || x.Delete(b) {
		t.Fatalf("Delete must remove exactly once")
	}
	if x.Len() != 3 {
		t.Fatalf("Len = %d, want 3", x.Len())
	}
}

// TestReleaseQueueSteadyStateAllocs pins the queue at zero allocations per
// operation in steady state, mirroring the slot-ring guard: once the heap
// and its dense index are sized, push/lookup/pop cycles must not allocate.
func TestReleaseQueueSteadyStateAllocs(t *testing.T) {
	q := newReleaseQueue()
	next := uint64(1)
	for i := 0; i < 32; i++ { // warm: establish capacity
		q.Push(next, int64(next))
		next++
	}
	for q.Len() > 0 {
		q.PopMin()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1000; i++ {
			q.Push(next, int64(next))
			if _, ok := q.Release(next); !ok {
				t.Fatal("steady-state Release failed")
			}
			next++
			if q.Len() > 16 {
				q.PopMin()
			}
		}
		for q.Len() > 0 {
			q.PopMin()
		}
	})
	if allocs != 0 {
		t.Fatalf("release queue allocates in steady state: %.1f allocs/run", allocs)
	}
}

// TestSlotRingSteadyStateAllocs pins the slot ring at zero allocations per
// operation in steady state: once sized, put/get/take cycles over a sliding
// live window must not allocate at all.
func TestSlotRingSteadyStateAllocs(t *testing.T) {
	r := newSlotRing()
	next := uint64(1)
	// Warm: establish the steady-state live window.
	for i := 0; i < 32; i++ {
		r.Put(next, pending{tag: clock.Cycles(next)})
		next++
	}
	oldest := uint64(1)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1000; i++ {
			r.Put(next, pending{tag: clock.Cycles(next)})
			next++
			if _, ok := r.Take(oldest); !ok {
				t.Fatal("steady-state Take failed")
			}
			oldest++
		}
	})
	if allocs != 0 {
		t.Fatalf("slot ring allocates in steady state: %.1f allocs/run", allocs)
	}
}
