package cache

import (
	"testing"
	"testing/quick"
)

func newTestCache(t *testing.T, size, assoc int) *Cache {
	t.Helper()
	c, err := New("test", size, assoc)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", 0, 4); err == nil {
		t.Fatalf("zero size must fail")
	}
	if _, err := New("bad", 4096, 0); err == nil {
		t.Fatalf("zero associativity must fail")
	}
	if _, err := New("bad", 4096+64, 4); err == nil {
		t.Fatalf("non-power-of-two sets must fail")
	}
}

func TestHitMiss(t *testing.T) {
	c := newTestCache(t, 4096, 4)
	if c.Access(0x1000, false) {
		t.Fatalf("cold access must miss")
	}
	c.Install(0x1000, false)
	if !c.Access(0x1000, false) {
		t.Fatalf("installed line must hit")
	}
	if !c.Access(0x1020, false) {
		t.Fatalf("same-line offset must hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 2 sets: lines with the same set index conflict.
	c := newTestCache(t, 4*64, 2)
	setStride := uint64(2 * 64) // two sets
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a, false)
	c.Install(a, false)
	c.Access(b, false)
	c.Install(b, false)
	// Touch a so b is LRU.
	c.Access(a, false)
	v := c.Install(d, false)
	if !v.Valid || v.Addr != b {
		t.Fatalf("expected LRU victim %x, got %+v", b, v)
	}
	if !c.Lookup(a) || c.Lookup(b) || !c.Lookup(d) {
		t.Fatalf("post-eviction contents wrong")
	}
}

func TestDirtyVictimReportsWriteback(t *testing.T) {
	c := newTestCache(t, 2*64, 1) // direct-mapped, 2 sets
	c.Access(0, true)
	c.Install(0, true)
	v := c.Install(2*64, false) // same set
	if !v.Valid || !v.Dirty {
		t.Fatalf("dirty victim not reported: %+v", v)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writeback not counted")
	}
}

func TestFlush(t *testing.T) {
	c := newTestCache(t, 4096, 4)
	c.Install(0x40, false)
	c.Access(0x40, true) // dirty it
	present, dirty := c.Flush(0x40)
	if !present || !dirty {
		t.Fatalf("flush = (%v,%v)", present, dirty)
	}
	if c.Lookup(0x40) {
		t.Fatalf("flushed line still present")
	}
	if p, _ := c.Flush(0x40); p {
		t.Fatalf("double flush must miss")
	}
}

func TestDirtyLines(t *testing.T) {
	c := newTestCache(t, 4096, 4)
	c.Install(0x80, true)
	c.Install(0x100, false)
	dirty := c.DirtyLines()
	if len(dirty) != 1 || dirty[0] != 0x80 {
		t.Fatalf("DirtyLines = %v", dirty)
	}
}

func TestReset(t *testing.T) {
	c := newTestCache(t, 4096, 4)
	c.Install(0x40, true)
	c.Reset()
	if c.Lookup(0x40) || c.Stats().Hits != 0 {
		t.Fatalf("reset incomplete")
	}
}

// Property: set/tag decomposition round-trips through lineAddr.
func TestAddrRoundTrip(t *testing.T) {
	c := newTestCache(t, 512<<10, 8)
	f := func(raw uint64) bool {
		addr := (raw % (1 << 40)) &^ 63
		set, tag := c.setOf(addr), c.tagOf(addr)
		return c.lineAddr(set, tag) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after any access sequence, a cache never holds more distinct
// lines than its capacity.
func TestCapacityInvariant(t *testing.T) {
	f := func(addrs []uint16) bool {
		c, err := New("q", 16*64, 4)
		if err != nil {
			return false
		}
		for _, a := range addrs {
			addr := uint64(a) * 64
			if !c.Access(addr, a%2 == 0) {
				c.Install(addr, a%2 == 0)
			}
		}
		resident := make(map[uint64]bool)
		for _, a := range addrs {
			if addr := uint64(a) * 64; c.Lookup(addr) {
				resident[addr] = true
			}
		}
		return len(resident) <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h, err := NewHierarchy(JetsonNanoHier())
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	level, _ := h.Access(0x1000, false)
	if level != 3 {
		t.Fatalf("cold access level = %d, want 3", level)
	}
	level, _ = h.Access(0x1000, false)
	if level != 1 {
		t.Fatalf("second access level = %d, want 1 (L1 hit)", level)
	}
	// Evict from L1 by filling its set (4-way) without overflowing the
	// matching L2 set (8-way), then expect an L2 hit.
	for i := uint64(1); i <= 8; i++ {
		h.Access(0x1000+i*32768, false)
	}
	level, _ = h.Access(0x1000, false)
	if level != 2 {
		t.Fatalf("level = %d, want 2 (L2 hit)", level)
	}
}

func TestHierarchyWritebacks(t *testing.T) {
	h, err := NewHierarchy(HierConfig{L1Size: 2 * 64, L1Assoc: 1, L2Size: 4 * 64, L2Assoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a line, then force it out of both levels.
	h.Access(0, true)
	sawWriteback := false
	for i := uint64(1); i < 16; i++ {
		if _, wbs := h.Access(i*4*64, true); len(wbs) > 0 { // all map to set 0 of L2
			sawWriteback = true
		}
	}
	if !sawWriteback {
		t.Fatalf("thrashing dirty lines must produce writebacks")
	}
}

func TestHierarchyFlush(t *testing.T) {
	h, err := NewHierarchy(JetsonNanoHier())
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0x2000, true)
	if !h.Flush(0x2000) {
		t.Fatalf("flushing a dirty line must request a writeback")
	}
	if h.Flush(0x2000) {
		t.Fatalf("second flush must be clean")
	}
	if !h.WouldMiss(0x2000) {
		t.Fatalf("flushed line must miss")
	}
}

func TestHierarchyDrainDirty(t *testing.T) {
	h, err := NewHierarchy(JetsonNanoHier())
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0x40, true)
	h.Access(0x3000, true)
	dirty := h.DrainDirty()
	if len(dirty) != 2 {
		t.Fatalf("DrainDirty = %v", dirty)
	}
	if len(h.DrainDirty()) != 0 {
		t.Fatalf("second drain must be empty")
	}
}

func TestWouldMissDoesNotPerturb(t *testing.T) {
	h, err := NewHierarchy(JetsonNanoHier())
	if err != nil {
		t.Fatal(err)
	}
	if !h.WouldMiss(0x9000) {
		t.Fatalf("cold line should miss")
	}
	st := h.L1.Stats()
	if st.Hits+st.Misses != 0 {
		t.Fatalf("WouldMiss must not touch statistics")
	}
}
