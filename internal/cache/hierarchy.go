package cache

import "fmt"

// HierConfig sizes the two-level hierarchy.
type HierConfig struct {
	L1Size  int
	L1Assoc int
	L2Size  int
	L2Assoc int
}

// JetsonNanoHier mirrors the paper's EasyDRAM configuration targeting the
// Jetson Nano class system: 32 KiB L1D, 512 KiB 8-way L2 (the paper's
// EasyDRAM system has a 512 KiB L2 where the real Nano has 2 MiB).
func JetsonNanoHier() HierConfig {
	return HierConfig{L1Size: 32 << 10, L1Assoc: 4, L2Size: 512 << 10, L2Assoc: 8}
}

// PiDRAMHier mirrors the PiDRAM-like configuration: small L1 only system is
// approximated with a tiny L2 disabled by convention; the paper's
// EasyDRAM-NoTS keeps the 512 KiB L2, so we default to the same hierarchy.
func PiDRAMHier() HierConfig {
	return HierConfig{L1Size: 16 << 10, L1Assoc: 4, L2Size: 512 << 10, L2Assoc: 8}
}

// Hierarchy is a two-level data-cache hierarchy. It models tags and state
// only (no data); the DRAM chip model owns data.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
	// wbScratch reuses the writeback slice across accesses.
	wbScratch []uint64
}

// NewHierarchy builds the two-level hierarchy.
func NewHierarchy(cfg HierConfig) (*Hierarchy, error) {
	l1, err := New("L1D", cfg.L1Size, cfg.L1Assoc)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	l2, err := New("L2", cfg.L2Size, cfg.L2Assoc)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Hierarchy{L1: l1, L2: l2}, nil
}

// Access performs a load or store of the line containing addr. It reports
// the satisfying level — 1 (L1 hit), 2 (L2 hit) or 3 (main-memory fill
// required) — and the dirty victim line addresses that must be written back
// to main memory as a result of this access. On a level-3 outcome the
// caller is responsible for fetching the line from memory; the hierarchy
// installs it immediately (tags-only model, so install order does not
// matter).
//
// The writebacks slice aliases a buffer reused by the next Access call;
// callers must consume it before touching the hierarchy again. An L1 hit
// touches no L2 state and never produces writebacks.
func (h *Hierarchy) Access(addr uint64, write bool) (level int, writebacks []uint64) {
	addr &^= uint64(LineBytes - 1)
	if h.L1.Access(addr, write) {
		return 1, nil
	}
	h.wbScratch = h.wbScratch[:0]
	level = 3
	if h.L2.Access(addr, false) {
		level = 2
	} else {
		// Fill L2 from memory.
		if v := h.L2.Install(addr, false); v.Valid {
			// Keep the hierarchy inclusive: an L2 eviction removes the
			// line from L1 too, merging its dirtiness.
			if p, d := h.L1.Flush(v.Addr); p && d || v.Dirty {
				h.wbScratch = append(h.wbScratch, v.Addr)
			}
		}
	}
	// Fill L1.
	if v := h.L1.Install(addr, write); v.Valid && v.Dirty {
		// Dirty L1 victim folds back into L2.
		if !h.L2.Access(v.Addr, true) {
			// Victim no longer in L2 (evicted earlier): write back.
			h.wbScratch = append(h.wbScratch, v.Addr)
		}
	}
	return level, h.wbScratch
}

// WouldMiss reports whether an access to addr would miss both levels,
// without perturbing replacement state.
func (h *Hierarchy) WouldMiss(addr uint64) bool {
	addr &^= uint64(LineBytes - 1)
	return !h.L1.Lookup(addr) && !h.L2.Lookup(addr)
}

// Flush removes the line containing addr from both levels, reporting whether
// a writeback to memory is required (the line was dirty in either level).
func (h *Hierarchy) Flush(addr uint64) (writeback bool) {
	addr &^= uint64(LineBytes - 1)
	_, d1 := h.L1.Flush(addr)
	_, d2 := h.L2.Flush(addr)
	return d1 || d2
}

// DrainDirty returns all dirty lines in the hierarchy and marks them clean
// (used at workload barriers to flush residual state).
func (h *Hierarchy) DrainDirty() []uint64 {
	seen := make(map[uint64]bool)
	var out []uint64
	for _, a := range h.L1.DirtyLines() {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, a := range h.L2.DirtyLines() {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, a := range out {
		h.L1.Flush(a)
		h.L2.Flush(a)
	}
	return out
}

// Reset clears both levels.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
}
