package cache

import "easydram/internal/snapshot"

// Checkpoint hooks. Geometry (set count, associativity, masks) is rebuilt
// from configuration; only the line array, the LRU clock, and the event
// counters serialize.

// SaveState serializes one cache level's dynamic state.
func (c *Cache) SaveState(e *snapshot.Enc) {
	e.Int(len(c.sets))
	for i := range c.sets {
		l := &c.sets[i]
		e.U64(l.tag)
		e.Bool(l.valid)
		e.Bool(l.dirty)
		e.U64(l.lru)
	}
	e.U64(c.lruClock)
	e.I64(c.stats.Hits)
	e.I64(c.stats.Misses)
	e.I64(c.stats.Evictions)
	e.I64(c.stats.Writebacks)
	e.I64(c.stats.Flushes)
}

// LoadState restores state written by SaveState into a freshly constructed
// cache of the same geometry.
func (c *Cache) LoadState(d *snapshot.Dec) {
	if n := d.Int(); n != len(c.sets) {
		if d.Err() == nil {
			d.Failf("cache %s: snapshot has %d lines, cache has %d", c.name, n, len(c.sets))
		}
		return
	}
	for i := range c.sets {
		l := &c.sets[i]
		l.tag = d.U64()
		l.valid = d.Bool()
		l.dirty = d.Bool()
		l.lru = d.U64()
	}
	c.lruClock = d.U64()
	c.stats.Hits = d.I64()
	c.stats.Misses = d.I64()
	c.stats.Evictions = d.I64()
	c.stats.Writebacks = d.I64()
	c.stats.Flushes = d.I64()
}

// SaveState serializes both hierarchy levels (wbScratch is per-access
// scratch and holds nothing across steps).
func (h *Hierarchy) SaveState(e *snapshot.Enc) {
	h.L1.SaveState(e)
	h.L2.SaveState(e)
}

// LoadState restores state written by SaveState.
func (h *Hierarchy) LoadState(d *snapshot.Dec) {
	h.L1.LoadState(d)
	h.L2.LoadState(d)
}
