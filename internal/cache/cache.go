// Package cache implements set-associative write-back, write-allocate
// caches with LRU replacement, plus the two-level hierarchy used by the
// modelled processors (L1D + unified L2) including the memory-mapped
// cache-line flush EasyDRAM provides for RowClone coherence (§7.1).
package cache

import (
	"fmt"
	"math/bits"
)

// LineBytes is the cache line size; it matches the DRAM burst size.
const LineBytes = 64

// Stats counts cache events.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
	Flushes    int64
}

// Add accumulates o into s (multi-core results sum the per-core L1
// counters).
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Writebacks += o.Writebacks
	s.Flushes += o.Flushes
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lru is a per-set sequence number; higher = more recently used.
	lru uint64
}

// Cache is one set-associative cache level. Not safe for concurrent use.
type Cache struct {
	name  string
	sets  []line // sets*assoc lines, set-major
	assoc int
	// setMask extracts the set index; tagShift strips line-offset and set
	// bits in one shift (the set count is a power of two, so the tag needs
	// no division).
	setMask  uint64
	tagShift uint
	setCount int
	setShift uint
	lruClock uint64
	stats    Stats
}

// New returns a cache of sizeBytes capacity and the given associativity.
func New(name string, sizeBytes, assoc int) (*Cache, error) {
	if sizeBytes <= 0 || assoc <= 0 {
		return nil, fmt.Errorf("cache %s: size and associativity must be positive", name)
	}
	lines := sizeBytes / LineBytes
	if lines%assoc != 0 {
		return nil, fmt.Errorf("cache %s: %d lines not divisible by associativity %d", name, lines, assoc)
	}
	setCount := lines / assoc
	if setCount&(setCount-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d must be a power of two", name, setCount)
	}
	shift := uint(6) // log2(LineBytes)
	return &Cache{
		name:     name,
		sets:     make([]line, lines),
		assoc:    assoc,
		setMask:  uint64(setCount - 1),
		tagShift: shift + uint(bits.TrailingZeros(uint(setCount))),
		setCount: setCount,
		setShift: shift,
	}, nil
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// Stats returns a snapshot of event counters.
func (c *Cache) Stats() Stats { return c.stats }

// SizeBytes reports the capacity.
func (c *Cache) SizeBytes() int { return len(c.sets) * LineBytes }

func (c *Cache) setOf(addr uint64) int {
	return int((addr >> c.setShift) & c.setMask)
}

func (c *Cache) tagOf(addr uint64) uint64 {
	return addr >> c.tagShift
}

func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	return tag<<c.tagShift | uint64(set)<<c.setShift
}

func (c *Cache) setSlice(set int) []line {
	return c.sets[set*c.assoc : (set+1)*c.assoc]
}

// Victim describes an eviction produced by Access or Install.
type Victim struct {
	Addr  uint64
	Dirty bool
	Valid bool
}

// Lookup reports whether addr hits without changing replacement state.
func (c *Cache) Lookup(addr uint64) bool {
	tag := c.tagOf(addr)
	for _, l := range c.setSlice(c.setOf(addr)) {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Access performs a demand access. On hit it updates LRU (and the dirty bit
// for writes) and returns hit=true. On miss it returns hit=false and does
// NOT install the line; the caller installs it after the fill completes.
func (c *Cache) Access(addr uint64, write bool) (hit bool) {
	tag := c.tagOf(addr)
	ss := c.setSlice(c.setOf(addr))
	for i := range ss {
		if ss[i].valid && ss[i].tag == tag {
			c.lruClock++
			ss[i].lru = c.lruClock
			if write {
				ss[i].dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Install fills addr into the cache, returning the victim (Valid=false when
// an empty way was available).
func (c *Cache) Install(addr uint64, dirty bool) Victim {
	set, tag := c.setOf(addr), c.tagOf(addr)
	ss := c.setSlice(set)
	victimIdx := 0
	var oldest uint64 = ^uint64(0)
	for i := range ss {
		if !ss[i].valid {
			victimIdx = i
			oldest = 0
			break
		}
		if ss[i].lru < oldest {
			oldest = ss[i].lru
			victimIdx = i
		}
	}
	v := Victim{}
	if ss[victimIdx].valid {
		v = Victim{Addr: c.lineAddr(set, ss[victimIdx].tag), Dirty: ss[victimIdx].dirty, Valid: true}
		c.stats.Evictions++
		if v.Dirty {
			c.stats.Writebacks++
		}
	}
	c.lruClock++
	ss[victimIdx] = line{tag: tag, valid: true, dirty: dirty, lru: c.lruClock}
	return v
}

// Flush removes addr from the cache if present, reporting whether it was
// present and dirty.
func (c *Cache) Flush(addr uint64) (present, dirty bool) {
	tag := c.tagOf(addr)
	ss := c.setSlice(c.setOf(addr))
	for i := range ss {
		if ss[i].valid && ss[i].tag == tag {
			present, dirty = true, ss[i].dirty
			ss[i] = line{}
			c.stats.Flushes++
			return present, dirty
		}
	}
	return false, false
}

// DirtyLines returns the addresses of all dirty lines (drain support).
func (c *Cache) DirtyLines() []uint64 {
	var out []uint64
	for set := 0; set < c.setCount; set++ {
		for _, l := range c.setSlice(set) {
			if l.valid && l.dirty {
				out = append(out, c.lineAddr(set, l.tag))
			}
		}
	}
	return out
}

// Reset invalidates every line and clears statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = line{}
	}
	c.stats = Stats{}
	c.lruClock = 0
}
