package cache

import "fmt"

// MultiHierarchy is the N-core cache fabric of the multi-core emulated
// host: one private L1D per core in front of one shared, inclusive L2.
// Each core accesses the fabric through its CoreView, which presents the
// same Access/WouldMiss/Flush surface as a single-core Hierarchy.
//
// Coherence is deliberately simplified (and documented in ARCHITECTURE.md):
// there is no cross-L1 MESI protocol. The multiprogram mixes this fabric
// exists for give every core a disjoint address window, so no line is ever
// live in two L1s at once. The inclusive invariant is still enforced
// globally — an L2 eviction back-invalidates the line in EVERY L1, merging
// dirtiness into the writeback — so a workload that does share lines stays
// functionally safe (tags-only model) even though it would not see
// coherence misses.
type MultiHierarchy struct {
	l1s []*Cache
	l2  *Cache
	// wbScratch reuses the writeback slice across accesses (one shared
	// scratch: the engine steps cores one at a time).
	wbScratch []uint64
}

// NewMultiHierarchy builds cores private L1s behind one shared L2 sized by
// cfg (cfg.L1Size/L1Assoc size each private L1; cfg.L2Size/L2Assoc the
// shared L2).
func NewMultiHierarchy(cfg HierConfig, cores int) (*MultiHierarchy, error) {
	if cores < 1 {
		return nil, fmt.Errorf("cache: multi-hierarchy needs at least 1 core, got %d", cores)
	}
	m := &MultiHierarchy{}
	for i := 0; i < cores; i++ {
		l1, err := New(fmt.Sprintf("L1D.%d", i), cfg.L1Size, cfg.L1Assoc)
		if err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
		m.l1s = append(m.l1s, l1)
	}
	l2, err := New("L2", cfg.L2Size, cfg.L2Assoc)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	m.l2 = l2
	return m, nil
}

// Cores reports the number of per-core views.
func (m *MultiHierarchy) Cores() int { return len(m.l1s) }

// View returns core i's private window onto the fabric.
func (m *MultiHierarchy) View(i int) *CoreView { return &CoreView{m: m, core: i} }

// L1Stats returns core i's private-L1 counters.
func (m *MultiHierarchy) L1Stats(i int) Stats { return m.l1s[i].Stats() }

// L2Stats returns the shared L2's counters.
func (m *MultiHierarchy) L2Stats() Stats { return m.l2.Stats() }

// Reset clears every level and all statistics.
func (m *MultiHierarchy) Reset() {
	for _, l1 := range m.l1s {
		l1.Reset()
	}
	m.l2.Reset()
}

// CoreView is one core's access port: the private L1 plus the shared L2,
// with the same semantics as Hierarchy (see MultiHierarchy for the
// coherence simplifications).
type CoreView struct {
	m    *MultiHierarchy
	core int
}

// Access performs a load or store of the line containing addr through the
// core's private L1 and the shared L2, mirroring Hierarchy.Access: it
// reports the satisfying level (1, 2, or 3 = main-memory fill) and the
// dirty victim lines that must be written back to memory. The writebacks
// slice aliases a buffer reused by the next Access on ANY view; the engine
// consumes it before stepping another core.
func (v *CoreView) Access(addr uint64, write bool) (level int, writebacks []uint64) {
	m := v.m
	l1 := m.l1s[v.core]
	addr &^= uint64(LineBytes - 1)
	if l1.Access(addr, write) {
		return 1, nil
	}
	m.wbScratch = m.wbScratch[:0]
	level = 3
	if m.l2.Access(addr, false) {
		level = 2
	} else {
		// Fill the shared L2 from memory. Inclusion is global: the L2
		// victim is back-invalidated in every core's L1, merging each
		// private copy's dirtiness into one writeback decision.
		if vic := m.l2.Install(addr, false); vic.Valid {
			dirty := vic.Dirty
			for _, other := range m.l1s {
				if p, d := other.Flush(vic.Addr); p && d {
					dirty = true
				}
			}
			if dirty {
				m.wbScratch = append(m.wbScratch, vic.Addr)
			}
		}
	}
	// Fill the private L1.
	if vic := l1.Install(addr, write); vic.Valid && vic.Dirty {
		// Dirty L1 victim folds back into the shared L2.
		if !m.l2.Access(vic.Addr, true) {
			// Victim no longer in L2 (evicted earlier): write back.
			m.wbScratch = append(m.wbScratch, vic.Addr)
		}
	}
	return level, m.wbScratch
}

// WouldMiss reports whether an access to addr would miss both the core's
// L1 and the shared L2, without perturbing replacement state.
func (v *CoreView) WouldMiss(addr uint64) bool {
	addr &^= uint64(LineBytes - 1)
	return !v.m.l1s[v.core].Lookup(addr) && !v.m.l2.Lookup(addr)
}

// Flush removes the line containing addr from every L1 and the shared L2
// (EasyDRAM's flush register is a fabric-wide operation), reporting whether
// a writeback to memory is required.
func (v *CoreView) Flush(addr uint64) (writeback bool) {
	addr &^= uint64(LineBytes - 1)
	dirty := false
	for _, l1 := range v.m.l1s {
		if _, d := l1.Flush(addr); d {
			dirty = true
		}
	}
	_, d2 := v.m.l2.Flush(addr)
	return dirty || d2
}
