package power

import (
	"strings"
	"testing"

	"easydram/internal/dram"
	"easydram/internal/timing"
)

func newCalc(t *testing.T) *Calculator {
	t.Helper()
	c, err := NewCalculator(MicronEDY4016A(), timing.DDR41333())
	if err != nil {
		t.Fatalf("NewCalculator: %v", err)
	}
	return c
}

func TestProfileValidate(t *testing.T) {
	p := MicronEDY4016A()
	if err := p.Validate(); err != nil {
		t.Fatalf("datasheet profile invalid: %v", err)
	}
	p.IDD3N = p.IDD2N - 1
	if err := p.Validate(); err == nil {
		t.Fatalf("inverted standby currents must fail")
	}
	p = MicronEDY4016A()
	p.VDD = 0
	if err := p.Validate(); err == nil {
		t.Fatalf("zero VDD must fail")
	}
	p = MicronEDY4016A()
	p.IDD4R = p.IDD3N - 1
	if err := p.Validate(); err == nil {
		t.Fatalf("burst below standby must fail")
	}
}

func TestEnergyComponents(t *testing.T) {
	c := newCalc(t)
	var s dram.Stats
	s.ACTs, s.RDs, s.WRs, s.REFs = 10, 100, 50, 2
	e := c.FromStats(s, 1_000_000_000) // 1 ms window
	if e.ActPre <= 0 || e.Read <= 0 || e.Write <= 0 || e.Refresh <= 0 || e.Background <= 0 {
		t.Fatalf("all components must be positive: %+v", e)
	}
	if e.Total() <= e.Background {
		t.Fatalf("total must exceed background alone")
	}
	if !strings.Contains(e.String(), "nJ") {
		t.Fatalf("String() = %q", e.String())
	}
}

func TestEnergyScalesWithCommands(t *testing.T) {
	c := newCalc(t)
	var a, b dram.Stats
	a.RDs = 100
	b.RDs = 200
	if c.FromStats(b, 0).Read != 2*c.FromStats(a, 0).Read {
		t.Fatalf("read energy must scale linearly")
	}
}

// TestRowCloneEnergyAdvantage pins the RowClone paper's headline: in-DRAM
// copy saves well over an order of magnitude of DRAM energy versus reading
// and writing every line over the bus (RowClone reports 74.4x for FPM).
func TestRowCloneEnergyAdvantage(t *testing.T) {
	c := newCalc(t)
	cpu, rc := c.CopyEnergyPerRow(128)
	if rc <= 0 || cpu <= 0 {
		t.Fatalf("energies must be positive: cpu=%v rc=%v", cpu, rc)
	}
	ratio := cpu / rc
	if ratio < 10 {
		t.Fatalf("RowClone energy advantage %.1fx implausibly low", ratio)
	}
	if ratio > 500 {
		t.Fatalf("RowClone energy advantage %.1fx implausibly high", ratio)
	}
}

func TestMagnitudeSanity(t *testing.T) {
	// A single activate-precharge pair on DDR4 costs a few nanojoules.
	c := newCalc(t)
	var s dram.Stats
	s.ACTs = 1
	e := c.FromStats(s, 0).ActPre
	if e < 0.1 || e > 20 {
		t.Fatalf("ACT-PRE energy %.2f nJ outside the plausible DDR4 range", e)
	}
}
