// Package power implements the standard Micron DRAM power methodology over
// the chip model's command statistics. RowClone's original claim is "fast
// AND energy-efficient in-DRAM bulk data copy"; this package quantifies the
// energy side for any workload run: per-command energies are derived from
// datasheet IDD currents, plus background power split between precharge and
// active standby.
package power

import (
	"fmt"
	"strings"

	"easydram/internal/clock"
	"easydram/internal/dram"
	"easydram/internal/timing"
)

// Profile holds the datasheet electrical parameters of a DRAM device.
// Currents are in milliamps, voltage in volts.
type Profile struct {
	Name string
	VDD  float64
	// IDD0: one-bank ACT-PRE cycling; IDD2N: precharge standby;
	// IDD3N: active standby; IDD4R/IDD4W: read/write burst;
	// IDD5B: burst refresh.
	IDD0, IDD2N, IDD3N, IDD4R, IDD4W, IDD5B float64
}

// MicronEDY4016A returns the profile of the paper's evaluated device class
// (DDR4-2400 x16 datasheet values, derated to the 1333 MT/s operating
// point used in the evaluation).
func MicronEDY4016A() Profile {
	return Profile{
		Name: "EDY4016A",
		VDD:  1.2,
		IDD0: 55, IDD2N: 34, IDD3N: 44,
		IDD4R: 140, IDD4W: 130, IDD5B: 190,
	}
}

// Validate reports an error for physically inconsistent profiles.
func (p Profile) Validate() error {
	if p.VDD <= 0 {
		return fmt.Errorf("power: VDD must be positive")
	}
	if p.IDD0 <= 0 || p.IDD2N <= 0 || p.IDD3N <= 0 || p.IDD4R <= 0 || p.IDD4W <= 0 || p.IDD5B <= 0 {
		return fmt.Errorf("power: all IDD currents must be positive")
	}
	if p.IDD3N < p.IDD2N {
		return fmt.Errorf("power: active standby (IDD3N) below precharge standby (IDD2N)")
	}
	if p.IDD4R < p.IDD3N || p.IDD4W < p.IDD3N {
		return fmt.Errorf("power: burst currents must exceed active standby")
	}
	return nil
}

// Energy is a per-component energy breakdown in nanojoules.
type Energy struct {
	ActPre     float64
	Read       float64
	Write      float64
	Refresh    float64
	Background float64
}

// Total sums the components.
func (e Energy) Total() float64 {
	return e.ActPre + e.Read + e.Write + e.Refresh + e.Background
}

// String renders the breakdown.
func (e Energy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "act/pre %.1fnJ + read %.1fnJ + write %.1fnJ + refresh %.1fnJ + background %.1fnJ = %.1fnJ",
		e.ActPre, e.Read, e.Write, e.Refresh, e.Background, e.Total())
	return b.String()
}

// Calculator converts chip statistics into energy.
type Calculator struct {
	prof Profile
	t    timing.Params
}

// NewCalculator builds a calculator for the profile and timing set.
func NewCalculator(prof Profile, t timing.Params) (*Calculator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("power: %w", err)
	}
	return &Calculator{prof: prof, t: t}, nil
}

// nj computes current(mA) * VDD(V) * time(ps) in nanojoules:
// mA * V * ps = 1e-3 A*V * 1e-12 s = 1e-15 J = 1e-6 nJ.
func (c *Calculator) nj(currentMA float64, t clock.PS) float64 {
	return currentMA * c.prof.VDD * float64(t) * 1e-6
}

// FromStats converts the chip's command counters plus the DRAM-busy wall
// time into an energy breakdown. busyTime is the total time the module was
// powered for the measured region (for a workload run, the emulated
// execution time).
func (c *Calculator) FromStats(s dram.Stats, busyTime clock.PS) Energy {
	var e Energy
	// One ACT-PRE pair dissipates (IDD0 - IDD3N) over tRAS plus
	// (IDD0 - IDD2N) over tRP beyond the standby floor (Micron power
	// calculator formulation, folded to tRC granularity).
	actPairs := float64(s.ACTs)
	e.ActPre = actPairs * (c.nj(c.prof.IDD0-c.prof.IDD3N, c.t.TRAS) +
		c.nj(c.prof.IDD0-c.prof.IDD2N, c.t.TRP))
	e.Read = float64(s.RDs) * c.nj(c.prof.IDD4R-c.prof.IDD3N, c.t.TBL)
	e.Write = float64(s.WRs) * c.nj(c.prof.IDD4W-c.prof.IDD3N, c.t.TBL)
	e.Refresh = float64(s.REFs) * c.nj(c.prof.IDD5B-c.prof.IDD2N, c.t.TRFC)
	// Background: precharge standby for the whole window, plus the active
	// adder while rows were open (approximated as tRAS per activation).
	e.Background = c.nj(c.prof.IDD2N, busyTime) +
		actPairs*c.nj(c.prof.IDD3N-c.prof.IDD2N, c.t.TRAS)
	return e
}

// CopyEnergyPerRow reports the DRAM energy of copying one row with CPU
// loads/stores (reads + write bursts + the activates they need) versus one
// RowClone (two activates), the comparison RowClone's original paper
// makes. colsPerRow is the number of line-sized columns per row.
func (c *Calculator) CopyEnergyPerRow(colsPerRow int) (cpu, rowClone float64) {
	var s dram.Stats
	// CPU copy: read every column of the source, write every column of the
	// destination; with open-row batching that is 2 activates plus per-line
	// bursts (plus the write-allocate fill reads of the destination).
	s.ACTs = 3
	s.RDs = int64(2 * colsPerRow)
	s.WRs = int64(colsPerRow)
	cpu = c.FromStats(s, 0).Total()
	var r dram.Stats
	r.ACTs = 2 // ACT(src) + ACT(dst); the early PRE is folded into the pair
	rowClone = c.FromStats(r, 0).Total()
	return cpu, rowClone
}
