// Package variation models DRAM process variation: the per-cell behaviour of
// a real chip that EasyDRAM observes by operating real DDR4 modules.
//
// The paper's experiments depend on three real-chip phenomena:
//
//  1. Every row has a minimum reliable tRCD below the nominal 13.5 ns, most
//     rows (84.5%) operate at <=9.0 ns, and weak rows cluster spatially
//     (Figure 12).
//  2. RowClone (ACT-PRE-ACT) succeeds only between rows of the same subarray
//     and, even then, only for some row pairs; success is stable per pair.
//  3. Reading a row earlier than its minimum reliable tRCD corrupts data.
//
// This package substitutes a deterministic, seeded model for silicon: every
// query is a pure function of (seed, geometry, coordinates), so the profiled
// maps in Figure 12 and the clonability maps are reproducible bit-for-bit.
package variation

import (
	"fmt"

	"easydram/internal/clock"
)

// Geometry describes the DRAM organization the model applies to.
type Geometry struct {
	Banks        int
	RowsPerBank  int
	ColsPerRow   int // cache-line-sized columns per row
	SubarrayRows int // rows per subarray
}

// Validate reports an error if the geometry is unusable.
func (g Geometry) Validate() error {
	switch {
	case g.Banks <= 0:
		return errf("banks must be positive, got %d", g.Banks)
	case g.RowsPerBank <= 0:
		return errf("rows per bank must be positive, got %d", g.RowsPerBank)
	case g.ColsPerRow <= 0:
		return errf("columns per row must be positive, got %d", g.ColsPerRow)
	case g.SubarrayRows <= 0:
		return errf("subarray rows must be positive, got %d", g.SubarrayRows)
	}
	return nil
}

// Subarray reports the subarray index that row belongs to.
func (g Geometry) Subarray(row int) int { return row / g.SubarrayRows }

// Model is a seeded process-variation model. The zero value is not usable;
// construct with NewModel.
type Model struct {
	geom Geometry
	seed uint64

	// nominal and the reduced-tRCD quantization grid, in picoseconds.
	nominalRCD clock.PS

	// clonableP is the per-pair probability (in 1/256ths) that an
	// intra-subarray row pair supports reliable RowClone.
	clonableP uint64
}

// Option configures a Model.
type Option func(*Model)

// WithClonableFraction sets the fraction (0..1) of intra-subarray row pairs
// that can perform RowClone reliably. The default is 0.85, consistent with
// the fallback behaviour the paper reports for Init workloads.
func WithClonableFraction(f float64) Option {
	return func(m *Model) {
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		m.clonableP = uint64(f * 256)
	}
}

// NewModel returns a variation model for the given geometry and seed.
func NewModel(geom Geometry, seed uint64, opts ...Option) (*Model, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		geom:       geom,
		seed:       seed,
		nominalRCD: 13500, // 13.5 ns, Micron EDY4016A datasheet value
		clonableP:  218,   // ~0.85 * 256
	}
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

// Geometry returns the geometry the model covers.
func (m *Model) Geometry() Geometry { return m.geom }

// NominalTRCD reports the datasheet tRCD.
func (m *Model) NominalTRCD() clock.PS { return m.nominalRCD }

// rcdLevels is the quantized minimum-reliable-tRCD grid observed in
// Figure 12: 9.0, 9.5, 10.0, 10.5 ns.
var rcdLevels = [4]clock.PS{9000, 9500, 10000, 10500}

// StrongThreshold is the strong/weak boundary the paper uses: rows reliable
// at <=9.0 ns are strong.
const StrongThreshold = clock.PS(9000)

// MinTRCDRow reports the minimum tRCD at which every cache line of the row
// reads reliably. This is the value Figure 12 plots and the value the
// tRCD-reduction scheduler keys its Bloom filter on.
//
// Weak rows are spatially clustered: a smooth two-dimensional noise field
// over (row-group, bank-region) coordinates is thresholded so that about
// 84.5% of rows land at 9.0 ns and the rest spread over 9.5-10.5 ns in
// contiguous patches.
func (m *Model) MinTRCDRow(bank, row int) clock.PS {
	n := m.noise(bank, row)
	// n is uniform-ish in [0,1) but spatially smooth. Threshold so ~84.5%
	// of mass is strong; spread the weak tail over three levels.
	switch {
	case n < 0.845:
		return rcdLevels[0]
	case n < 0.91:
		return rcdLevels[1]
	case n < 0.965:
		return rcdLevels[2]
	default:
		return rcdLevels[3]
	}
}

// MinTRCDLine reports the minimum reliable tRCD of a single cache line.
// Lines within a row jitter at or below the row value; every row has
// exactly one deterministic weakest line that defines the row value (the
// scheduler strategy in §8.2 keys on the weakest line per row).
func (m *Model) MinTRCDLine(bank, row, col int) clock.PS {
	rowV := m.MinTRCDRow(bank, row)
	if rowV == rcdLevels[0] {
		return rowV
	}
	weakCol := int(splitmix(m.seed^0x11c0ffee^key(bank, row, 0)) % uint64(m.geom.ColsPerRow))
	if col == weakCol {
		return rowV // this is the row's weakest line
	}
	// Other lines are one level stronger (bounded below by the strong
	// level).
	for i, lv := range rcdLevels {
		if lv == rowV && i > 0 {
			return rcdLevels[i-1]
		}
	}
	return rowV
}

// Strong reports whether the row is reliable at the strong threshold.
func (m *Model) Strong(bank, row int) bool {
	return m.MinTRCDRow(bank, row) <= StrongThreshold
}

// MaxMinTRCD reports the largest minimum-reliable tRCD any line in the
// module can have (the top of the quantization grid). Reads issued at or
// above it are reliable everywhere — the chip model's fast path for
// nominal-timing reads, which skips the spatial noise-field evaluation on
// the hot path.
func (m *Model) MaxMinTRCD() clock.PS { return rcdLevels[len(rcdLevels)-1] }

// ReadReliable reports whether a read of (bank,row,col) issued with the
// given effective tRCD returns correct data.
func (m *Model) ReadReliable(bank, row, col int, rcd clock.PS) bool {
	return rcd >= m.MinTRCDLine(bank, row, col)
}

// CorruptionMask returns a deterministic non-zero XOR mask applied to the
// first data word of an unreliable read, so profiling detects the failure.
func (m *Model) CorruptionMask(bank, row, col int) uint64 {
	h := splitmix(m.seed ^ 0xdeadbeef ^ key(bank, row, col))
	if h == 0 {
		h = 1
	}
	return h
}

// Clonable reports whether RowClone from src to dst within bank succeeds
// reliably. Cross-subarray pairs never succeed (FPM RowClone is an
// intra-subarray operation); intra-subarray pairs succeed per a stable
// per-pair draw.
func (m *Model) Clonable(bank, src, dst int) bool {
	if src == dst {
		return false
	}
	if m.geom.Subarray(src) != m.geom.Subarray(dst) {
		return false
	}
	lo, hi := src, dst
	if lo > hi {
		lo, hi = hi, lo
	}
	h := splitmix(m.seed ^ 0xc10e ^ key(bank, lo, hi))
	return h%256 < m.clonableP
}

// TripleOK reports whether a simultaneous many-row activation of
// (r1, r2, r1|r2) produces a reliable majority result. Like RowClone
// clonability it is a stable per-triple property; the success rate is lower
// (~0.7) because three rows must share charge cleanly (ComputeDRAM reports
// substantial inter-chip variation for these operations).
func (m *Model) TripleOK(bank, r1, r2 int) bool {
	lo, hi := r1, r2
	if lo > hi {
		lo, hi = hi, lo
	}
	h := splitmix(m.seed ^ 0x3b173 ^ key(bank, lo, hi))
	return h%256 < 179 // ~0.7 * 256
}

// StrongFraction measures the fraction of strong rows over nBanks banks,
// used by tests to pin the calibration.
func (m *Model) StrongFraction(nBanks int) float64 {
	if nBanks > m.geom.Banks {
		nBanks = m.geom.Banks
	}
	strong, total := 0, 0
	for b := 0; b < nBanks; b++ {
		for r := 0; r < m.geom.RowsPerBank; r++ {
			total++
			if m.Strong(b, r) {
				strong++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(strong) / float64(total)
}

// noise returns a smooth deterministic field in [0,1) over (bank,row).
// Lattice points are hashed every cellRows rows; values between lattice
// points are linearly interpolated, which produces the contiguous weak
// patches visible in Figure 12.
func (m *Model) noise(bank, row int) float64 {
	const cellRows = 96 // patch granularity in rows
	x0 := row / cellRows
	frac := float64(row%cellRows) / cellRows
	v0 := m.lattice(bank, x0)
	v1 := m.lattice(bank, x0+1)
	v := v0 + (v1-v0)*frac
	// Sharpen: squash toward the extremes a little so patches have crisp
	// boundaries after thresholding.
	return clamp01(v*1.15 - 0.075)
}

func (m *Model) lattice(bank, x int) float64 {
	h := splitmix(m.seed ^ key(bank, x, 0x5eed))
	return float64(h>>11) / float64(1<<53)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return 0.999999
	}
	return v
}

func key(a, b, c int) uint64 {
	return uint64(a)*0x9e3779b97f4a7c15 ^ uint64(b)*0xbf58476d1ce4e5b9 ^ uint64(c)*0x94d049bb133111eb
}

// splitmix is SplitMix64: a high-quality, allocation-free stateless hash.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func errf(format string, args ...any) error {
	return fmt.Errorf("variation: "+format, args...)
}
