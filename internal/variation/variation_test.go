package variation

import (
	"testing"
	"testing/quick"

	"easydram/internal/clock"
)

func testGeom() Geometry {
	return Geometry{Banks: 16, RowsPerBank: 8192, ColsPerRow: 128, SubarrayRows: 512}
}

func newTestModel(t *testing.T, seed uint64, opts ...Option) *Model {
	t.Helper()
	m, err := NewModel(testGeom(), seed, opts...)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{Banks: 0, RowsPerBank: 1, ColsPerRow: 1, SubarrayRows: 1},
		{Banks: 1, RowsPerBank: 0, ColsPerRow: 1, SubarrayRows: 1},
		{Banks: 1, RowsPerBank: 1, ColsPerRow: 0, SubarrayRows: 1},
		{Banks: 1, RowsPerBank: 1, ColsPerRow: 1, SubarrayRows: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := testGeom().Validate(); err != nil {
		t.Fatalf("good geometry rejected: %v", err)
	}
}

// TestStrongFractionCalibration pins the paper's measured statistic: 84.5%
// of rows are reliable at 9.0 ns (§8.1). The model must land near it.
func TestStrongFractionCalibration(t *testing.T) {
	m := newTestModel(t, 1)
	got := m.StrongFraction(16)
	if got < 0.80 || got > 0.90 {
		t.Fatalf("strong fraction = %.3f, want ~0.845", got)
	}
}

func TestMinTRCDQuantized(t *testing.T) {
	m := newTestModel(t, 7)
	valid := map[clock.PS]bool{9000: true, 9500: true, 10000: true, 10500: true}
	for r := 0; r < 2048; r++ {
		if v := m.MinTRCDRow(3, r); !valid[v] {
			t.Fatalf("row %d has off-grid tRCD %v", r, v)
		}
	}
}

// TestWeakRowsCluster verifies spatial clustering: a weak row's neighbour
// is far more likely to be weak than the base rate would suggest.
func TestWeakRowsCluster(t *testing.T) {
	m := newTestModel(t, 1)
	weak, weakNeighbour := 0, 0
	for b := 0; b < 16; b++ {
		for r := 0; r < 8191; r++ {
			if !m.Strong(b, r) {
				weak++
				if !m.Strong(b, r+1) {
					weakNeighbour++
				}
			}
		}
	}
	if weak == 0 {
		t.Fatalf("no weak rows at all")
	}
	cond := float64(weakNeighbour) / float64(weak)
	if cond < 0.8 {
		t.Fatalf("P(weak | neighbour weak) = %.2f, expected strong clustering", cond)
	}
}

// Property: the row's minimum tRCD equals the maximum over its lines
// (the weakest line defines the row, §8.2).
func TestRowIsMaxOfLines(t *testing.T) {
	m := newTestModel(t, 3)
	f := func(bankRaw, rowRaw uint16) bool {
		bank := int(bankRaw) % 16
		row := int(rowRaw) % 8192
		rowV := m.MinTRCDRow(bank, row)
		var maxLine clock.PS
		for col := 0; col < 128; col++ {
			if v := m.MinTRCDLine(bank, row, col); v > maxLine {
				maxLine = v
			}
		}
		return maxLine == rowV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the model is a pure function of its inputs.
func TestDeterminism(t *testing.T) {
	m1 := newTestModel(t, 42)
	m2 := newTestModel(t, 42)
	f := func(b, r, c uint16) bool {
		bank, row, col := int(b)%16, int(r)%8192, int(c)%128
		return m1.MinTRCDLine(bank, row, col) == m2.MinTRCDLine(bank, row, col) &&
			m1.Clonable(bank, row, (row+1)%8192) == m2.Clonable(bank, row, (row+1)%8192)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeedChangesLayout(t *testing.T) {
	m1 := newTestModel(t, 1)
	m2 := newTestModel(t, 2)
	diff := 0
	for r := 0; r < 8192; r++ {
		if m1.Strong(0, r) != m2.Strong(0, r) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatalf("different seeds produced identical weak maps")
	}
}

// Property: RowClone never crosses subarrays, and self-clones fail.
func TestClonableConstraints(t *testing.T) {
	m := newTestModel(t, 5)
	f := func(b, r1raw, r2raw uint16) bool {
		bank := int(b) % 16
		r1, r2 := int(r1raw)%8192, int(r2raw)%8192
		ok := m.Clonable(bank, r1, r2)
		if r1 == r2 && ok {
			return false
		}
		if r1/512 != r2/512 && ok {
			return false // cross-subarray clones must fail
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClonableSymmetricFraction(t *testing.T) {
	m := newTestModel(t, 1)
	ok, total := 0, 0
	for r := 0; r < 511; r++ {
		total++
		if m.Clonable(0, r, r+1) {
			ok++
		}
		// Symmetric: order must not matter.
		if m.Clonable(0, r, r+1) != m.Clonable(0, r+1, r) {
			t.Fatalf("clonability not symmetric for rows %d,%d", r, r+1)
		}
	}
	frac := float64(ok) / float64(total)
	if frac < 0.75 || frac > 0.95 {
		t.Fatalf("clonable fraction = %.2f, want ~0.85", frac)
	}
}

func TestWithClonableFraction(t *testing.T) {
	m := newTestModel(t, 1, WithClonableFraction(0))
	for r := 0; r < 511; r++ {
		if m.Clonable(0, r, r+1) {
			t.Fatalf("clonable fraction 0 must disable all clones")
		}
	}
	m = newTestModel(t, 1, WithClonableFraction(1))
	bad := 0
	for r := 0; r < 511; r++ {
		if !m.Clonable(0, r, r+1) {
			bad++
		}
	}
	// 256/256ths: every intra-subarray pair succeeds.
	if bad != 0 {
		t.Fatalf("clonable fraction 1 left %d failing pairs", bad)
	}
}

func TestReadReliable(t *testing.T) {
	m := newTestModel(t, 1)
	// Find a weak line and assert its threshold behaviour.
	for b := 0; b < 16; b++ {
		for r := 0; r < 8192; r++ {
			if m.Strong(b, r) {
				continue
			}
			rowV := m.MinTRCDRow(b, r)
			for c := 0; c < 128; c++ {
				if m.MinTRCDLine(b, r, c) == rowV {
					if m.ReadReliable(b, r, c, rowV-500) {
						t.Fatalf("read below the line's min tRCD must be unreliable")
					}
					if !m.ReadReliable(b, r, c, rowV) {
						t.Fatalf("read at the line's min tRCD must be reliable")
					}
					return
				}
			}
		}
	}
	t.Fatalf("no weak line found")
}

func TestCorruptionMaskNonZero(t *testing.T) {
	m := newTestModel(t, 1)
	for i := 0; i < 64; i++ {
		if m.CorruptionMask(0, i, i%128) == 0 {
			t.Fatalf("corruption mask must be non-zero")
		}
	}
}

func TestSubarrayIndex(t *testing.T) {
	g := testGeom()
	if g.Subarray(0) != 0 || g.Subarray(511) != 0 || g.Subarray(512) != 1 {
		t.Fatalf("subarray math wrong")
	}
}
