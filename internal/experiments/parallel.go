package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"easydram/internal/core"
	"easydram/internal/workload"
)

// The experiment runners fan independent system runs across a bounded
// worker pool. Every cell of an experiment (one workload on one
// configuration) builds its own core.System, and a System shares no mutable
// state with any other, so cells can execute concurrently; determinism is
// preserved by having each cell write its results into an index-addressed
// slot, making the assembled output identical to a serial run regardless of
// scheduling.

// ParallelScalingProbe measures the worker pool's real wall-clock scaling:
// it runs a fixed batch of independent, identically-sized system runs (the
// lmbench-style miss chase, one fresh system per cell — the same shape
// every sweeping experiment fans out) once per entry of workerCounts and
// returns the wall seconds each pass took, in order. The cell results are
// discarded; only the pool's scheduling is under measurement. On a
// multi-core host secs[0]/secs[i] approaches min(workerCounts[i], cores) —
// the trajectory CI records per merge via cmd/benchall
// (experiments/workers_speedup_4x).
func ParallelScalingProbe(opt Options, workerCounts []int) ([]float64, error) {
	const cells = 16
	kernel := workload.LatMemRd(8<<20, 100000)
	secs := make([]float64, 0, len(workerCounts))
	for _, wc := range workerCounts {
		o := opt
		o.Workers = wc
		t0 := time.Now()
		err := forEach(wc, cells, func(i int) error {
			cfg := core.TimeScalingA57()
			cfg.DRAM.Seed = opt.Seed + uint64(i)
			_, err := runKernel(cfg, kernel, o)
			return err
		})
		if err != nil {
			return nil, err
		}
		secs = append(secs, time.Since(t0).Seconds())
	}
	return secs, nil
}

// forEach runs f(0), ..., f(n-1) on at most `workers` goroutines (0 or
// negative selects GOMAXPROCS) and returns the lowest-index error, if any.
// f must confine its writes to slots owned by its index. After a failure
// remaining indices may be skipped, but every call that did run completed
// before forEach returns.
func forEach(workers, n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := f(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
