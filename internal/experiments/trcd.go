package experiments

import (
	"fmt"

	"easydram/internal/clock"
	"easydram/internal/core"
	"easydram/internal/dram"
	"easydram/internal/ramulator"
	"easydram/internal/stats"
	"easydram/internal/techniques"
	"easydram/internal/workload"
)

// HeatmapResult holds Figure 12 data: per-row minimum reliable tRCD for
// the first banks of the module.
type HeatmapResult struct {
	Banks int
	Rows  int
	// MinTRCDns[bank][row] is the profiled minimum reliable tRCD in ns.
	MinTRCDns [][]float64
	// StrongFraction is the measured fraction of rows reliable at 9.0 ns.
	StrongFraction float64
	NominalNs      float64
}

// Figure12 profiles the minimum reliable tRCD of opt.HeatRows rows in each
// of the first two banks, using whole-row §8.1 profiling requests end to
// end (one host round-trip per row per tRCD level).
//
// The (bank, row) grid is sharded into contiguous chunks across the
// experiment worker pool; every shard owns an independent profiling system,
// and per-row outcomes are a pure function of the seeded variation model,
// so the assembled heatmap is identical at any Options.Workers setting.
func Figure12(opt Options) (*HeatmapResult, error) {
	cfg := core.TimeScalingA57()
	cfg.DRAM = core.TechniqueDRAM()
	cfg.DRAM.Seed = opt.Seed
	nominal := cfg.DRAM.Timing.TRCD
	res := &HeatmapResult{
		Banks:     2,
		Rows:      opt.HeatRows,
		NominalNs: nominal.Nanoseconds(),
	}
	res.MinTRCDns = make([][]float64, res.Banks)
	for b := range res.MinTRCDns {
		res.MinTRCDns[b] = make([]float64, res.Rows)
	}

	total := res.Banks * res.Rows
	if total == 0 {
		return res, nil
	}
	nShards := opt.EffectiveWorkers() * 2 // 2x shards per worker smooths uneven shard cost
	if nShards > total {
		nShards = total
	}
	if nShards < 1 {
		nShards = 1
	}
	chunk := (total + nShards - 1) / nShards
	nShards = (total + chunk - 1) / chunk

	strong := make([]int, nShards)
	err := forEach(opt.EffectiveWorkers(), nShards, func(s int) error {
		lo, hi := s*chunk, (s+1)*chunk
		if hi > total {
			hi = total
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return fmt.Errorf("experiments: figure12: %w", err)
		}
		for i := lo; i < hi; i++ {
			bank, row := i/res.Rows, i%res.Rows
			base := sys.Mapper().Unmap(dram.Addr{Bank: bank, Row: row})
			min, err := techniques.MinReliableTRCD(sys, base, nominal)
			if err != nil {
				return fmt.Errorf("experiments: figure12: %w", err)
			}
			res.MinTRCDns[bank][row] = min.Nanoseconds()
			if min <= techniques.ReducedTRCD {
				strong[s]++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sum := 0
	for _, c := range strong {
		sum += c
	}
	res.StrongFraction = float64(sum) / float64(total)
	return res, nil
}

// Heatmap renders the profile as ASCII (one glyph per row group).
func (r *HeatmapResult) Heatmap() string {
	out := ""
	const groups = 64
	for bank := range r.MinTRCDns {
		vals := r.MinTRCDns[bank]
		per := len(vals) / groups
		if per == 0 {
			per = 1
		}
		grid := make([][]float64, 0, groups)
		for g := 0; g < len(vals); g += per * 8 {
			row := make([]float64, 0, 8)
			for x := 0; x < 8 && g+x*per < len(vals); x++ {
				// Group max: the weakest row in the group.
				max := 0.0
				for i := 0; i < per && g+x*per+i < len(vals); i++ {
					if v := vals[g+x*per+i]; v > max {
						max = v
					}
				}
				row = append(row, max)
			}
			grid = append(grid, row)
		}
		out += stats.Heatmap(
			fmt.Sprintf("Bank %d minimum reliable tRCD (.=9.0ns -=9.5 +=10.0 #=10.5+)", bank),
			grid, []float64{9.0, 9.5, 10.0}, ".-+#")
	}
	out += fmt.Sprintf("strong rows (<=9.0ns): %.1f%% (nominal tRCD %.1fns)\n",
		100*r.StrongFraction, r.NominalNs)
	return out
}

// TRCDResult holds Figures 13 and 14 data.
type TRCDResult struct {
	Names []string
	// Speedup maps configuration name -> per-workload execution-time
	// speedup of reduced-tRCD over nominal.
	Speedup map[string][]float64
	// SimSpeedMHz maps configuration name -> simulation speed (Figure 14).
	SimSpeedMHz map[string][]float64
	// MPKI is the baseline LLC misses per kilo-instruction per workload.
	MPKI []float64
	// WeakFraction is the profiled weak-row fraction per workload range.
	WeakFraction []float64
}

// Figure13 evaluates tRCD reduction end to end on the 11 PolyBench
// workloads: characterize the rows each workload touches (§8.1), build the
// weak-row Bloom filter (§8.2), then compare execution time with and
// without the reduced-tRCD scheduler hook on both EasyDRAM (time scaling)
// and the Ramulator baseline. Figure 14's simulation speeds come from the
// same runs. Every workload (its profiling pass plus its four measured
// runs) is one independent worker-pool cell.
func Figure13(opt Options) (*TRCDResult, error) {
	kernels := workload.Fig13Suite(opt.KernelSize)
	n := len(kernels)
	res := &TRCDResult{
		Names: make([]string, n),
		Speedup: map[string][]float64{
			NameTS: make([]float64, n), NameRamulator: make([]float64, n),
		},
		SimSpeedMHz: map[string][]float64{
			NameTS: make([]float64, n), NameRamulator: make([]float64, n),
		},
		MPKI:         make([]float64, n),
		WeakFraction: make([]float64, n),
	}
	err := forEach(opt.EffectiveWorkers(), n, func(i int) error {
		k := kernels[i]
		res.Names[i] = k.Name
		extent := workload.Extent(k)

		// Host-driven characterization on a scratch system with the data
		// store enabled.
		profCfg := core.TimeScalingA57()
		profCfg.DRAM = core.TechniqueDRAM()
		profCfg.DRAM.Seed = opt.Seed
		profSys, err := core.NewSystem(profCfg)
		if err != nil {
			return fmt.Errorf("experiments: figure13: %w", err)
		}
		// Warm-start through the durable profile store when a store is
		// configured; a fresh characterization otherwise. The rebuilt
		// provider is bit-identical either way.
		profile, _, err := characterizeWarm(profSys, k.Name, extent, opt)
		if err != nil {
			return err
		}
		provider := techniques.ProviderFromProfile(profile, profSys.Mapper(), techniques.ReducedTRCD)
		res.WeakFraction[i] = profile.WeakFraction()

		for _, c := range []rcConfig{
			{NameTS, core.TimeScalingA57()},
			{NameRamulator, ramulator.Config(0)},
		} {
			base := c.cfg
			base.DRAM.Seed = opt.Seed
			fast := base
			fast.TRCD = provider

			baseRes, err := runKernel(base, k, opt)
			if err != nil {
				return err
			}
			fastRes, err := runKernel(fast, k, opt)
			if err != nil {
				return err
			}
			if fastRes.ProcCycles == 0 {
				return fmt.Errorf("experiments: figure13: %s ran for zero cycles", k.Name)
			}
			res.Speedup[c.name][i] = float64(baseRes.ProcCycles) / float64(fastRes.ProcCycles)
			speed := baseRes.SimSpeedMHz
			if c.name == NameRamulator {
				speed = ramulator.SimSpeedMHz(baseRes)
			}
			res.SimSpeedMHz[c.name][i] = speed
			if c.name == NameTS {
				res.MPKI[i] = baseRes.MPKI()
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders Figure 13 (speedups).
func (r *TRCDResult) Table() string {
	t := stats.Table{
		Title:  "tRCD reduction: execution-time speedup over nominal tRCD",
		Header: []string{"workload", "EasyDRAM", "Ramulator 2.0", "MPKI", "weak rows"},
	}
	for i, n := range r.Names {
		t.AddRow(n,
			fmt.Sprintf("%.4f", r.Speedup[NameTS][i]),
			fmt.Sprintf("%.4f", r.Speedup[NameRamulator][i]),
			fmt.Sprintf("%.2f", r.MPKI[i]),
			fmt.Sprintf("%.1f%%", 100*r.WeakFraction[i]))
	}
	t.AddRow("geomean",
		fmt.Sprintf("%.4f", stats.Geomean(r.Speedup[NameTS])),
		fmt.Sprintf("%.4f", stats.Geomean(r.Speedup[NameRamulator])), "", "")
	return t.Render()
}

// SpeedTable renders Figure 14 (simulation speed).
func (r *TRCDResult) SpeedTable() string {
	t := stats.Table{
		Title:  "Simulation speed (simulated processor MHz)",
		Header: []string{"workload", "EasyDRAM", "Ramulator 2.0", "ratio"},
	}
	var ratios []float64
	for i, n := range r.Names {
		e, m := r.SimSpeedMHz[NameTS][i], r.SimSpeedMHz[NameRamulator][i]
		ratio := 0.0
		if m > 0 {
			ratio = e / m
		}
		ratios = append(ratios, ratio)
		t.AddRow(n, fmt.Sprintf("%.2f", e), fmt.Sprintf("%.2f", m), fmt.Sprintf("%.1fx", ratio))
	}
	t.AddRow("geomean",
		fmt.Sprintf("%.2f", stats.Geomean(r.SimSpeedMHz[NameTS])),
		fmt.Sprintf("%.2f", stats.Geomean(r.SimSpeedMHz[NameRamulator])),
		fmt.Sprintf("%.1fx", stats.Geomean(ratios)))
	return t.Render()
}

// AvgSpeedupPct reports the named config's mean improvement percentage.
func (r *TRCDResult) AvgSpeedupPct(name string) float64 {
	var pts []float64
	for _, s := range r.Speedup[name] {
		pts = append(pts, (s-1)*100)
	}
	return stats.Mean(pts)
}

// MaxSpeedupPct reports the named config's maximum improvement percentage.
func (r *TRCDResult) MaxSpeedupPct(name string) float64 {
	var best float64
	for _, s := range r.Speedup[name] {
		if p := (s - 1) * 100; p > best {
			best = p
		}
	}
	return best
}

var _ = clock.PS(0)
