package experiments

import (
	"fmt"

	"easydram/internal/core"
	"easydram/internal/dram"
	"easydram/internal/smc"
	"easydram/internal/stats"
	"easydram/internal/timing"
	"easydram/internal/workload"
)

// Ablations beyond the paper's evaluation (DESIGN.md §4.5): each sweeps one
// design axis of the software-defined memory controller or the modeled
// system and reports execution time on a fixed workload mix, demonstrating
// the configurability the paper's Table 1 claims for EasyDRAM.

// AblationResult holds one swept axis.
type AblationResult struct {
	Axis   string
	Labels []string
	// Cycles is the execution time per configuration.
	Cycles []float64
	// Relative is Cycles normalised to the first configuration.
	Relative []float64
}

// Table renders the sweep.
func (r *AblationResult) Table() string {
	t := stats.Table{
		Title:  fmt.Sprintf("Ablation: %s", r.Axis),
		Header: []string{"configuration", "cycles", "vs first"},
	}
	for i := range r.Labels {
		t.AddRow(r.Labels[i],
			fmt.Sprintf("%.0f", r.Cycles[i]),
			fmt.Sprintf("%.3fx", r.Relative[i]))
	}
	return t.Render()
}

func (r *AblationResult) finish() {
	base := r.Cycles[0]
	for _, c := range r.Cycles {
		r.Relative = append(r.Relative, c/base)
	}
}

// ablationRun executes k on cfg and records the point.
func (r *AblationResult) ablationRun(label string, cfg core.Config, k workload.Kernel, opt Options) error {
	res, err := runKernel(cfg, k, opt)
	if err != nil {
		return err
	}
	r.Labels = append(r.Labels, label)
	r.Cycles = append(r.Cycles, float64(res.ProcCycles))
	return nil
}

// AblationScheduler compares the bundled scheduling policies on a
// read/writeback mix where read priority matters.
func AblationScheduler(opt Options) (*AblationResult, error) {
	r := &AblationResult{Axis: "scheduling policy (reads vs writeback backlog)"}
	k := schedulerStress()
	for _, s := range []smc.Scheduler{smc.FRFCFS{}, smc.FCFS{}, smc.NewBLISS()} {
		cfg := core.TimeScalingA57()
		cfg.DRAM.Seed = opt.Seed
		cfg.Scheduler = s
		if err := r.ablationRun(s.Name(), cfg, k, opt); err != nil {
			return nil, err
		}
	}
	r.finish()
	return r, nil
}

// schedulerStress mixes a dependent-load chain with store bursts whose
// evictions flood the controller with writebacks.
func schedulerStress() workload.Kernel {
	return workload.Kernel{Name: "scheduler-stress", Body: func(g *workload.Gen) {
		for i := 0; i < 1024; i++ {
			for j := 0; j < 8; j++ {
				g.Store(uint64(256<<20) + uint64(i*8+j)*4096)
			}
			g.LoadDep(uint64(i) * 8192)
		}
	}}
}

// AblationPagePolicy compares open-page and closed-page row management on
// row-friendly (streaming) versus row-hostile (random) traffic.
func AblationPagePolicy(opt Options) (*AblationResult, error) {
	r := &AblationResult{Axis: "row-buffer policy (stream then random)"}
	mix := workload.Kernel{Name: "policy-mix", Body: func(g *workload.Gen) {
		workload.StreamTriad(16384).Body(g)
		workload.RandomAccess(64<<20, 4096).Body(g)
	}}
	for _, p := range []struct {
		name   string
		policy smc.PagePolicy
	}{{"open-page", smc.OpenPage}, {"closed-page", smc.ClosedPage}} {
		cfg := core.TimeScalingA57()
		cfg.DRAM.Seed = opt.Seed
		cfg.Policy = p.policy
		if err := r.ablationRun(p.name, cfg, mix, opt); err != nil {
			return nil, err
		}
	}
	r.finish()
	return r, nil
}

// AblationPrefetcher measures the L2 next-line prefetcher on a streaming
// kernel (helps) and a pointer chase (wastes bandwidth).
func AblationPrefetcher(opt Options) (*AblationResult, error) {
	r := &AblationResult{Axis: "L2 next-line prefetcher (stream triad)"}
	k := workload.StreamTriad(65536)
	for _, pf := range []bool{false, true} {
		cfg := core.TimeScalingA57()
		cfg.DRAM.Seed = opt.Seed
		cfg.CPU.NextLinePrefetch = pf
		label := "off"
		if pf {
			label = "next-line"
		}
		if err := r.ablationRun(label, cfg, k, opt); err != nil {
			return nil, err
		}
	}
	r.finish()
	return r, nil
}

// AblationDDR5 swaps the module for DDR5-4800-class timings (double the
// refresh rate, longer bursts) and measures a memory-intensive kernel.
func AblationDDR5(opt Options) (*AblationResult, error) {
	r := &AblationResult{Axis: "DRAM generation (gemver)"}
	k := workload.PBGemver(260)
	for _, gen := range []struct {
		name string
		t    timing.Params
	}{{"ddr4-1333", timing.DDR41333()}, {"ddr4-2400", timing.DDR42400()}, {"ddr5-4800", timing.DDR54800()}} {
		cfg := core.TimeScalingA57()
		cfg.DRAM.Seed = opt.Seed
		cfg.DRAM.Timing = gen.t
		if err := r.ablationRun(gen.name, cfg, k, opt); err != nil {
			return nil, err
		}
	}
	r.finish()
	return r, nil
}

// AblationTopology sweeps the module topology (channels x ranks) on
// MLP-heavy row-burst traffic — the workload axis the multi-channel module
// model opens. Unlike Workers or BurstCap, topology changes emulated
// results: a second channel overlaps service, and a second rank pays
// rank-to-rank turnarounds for wider banking.
func AblationTopology(opt Options) (*AblationResult, error) {
	r := &AblationResult{Axis: "module topology (channels x ranks, row-burst traffic)"}
	k := workload.SubstrateRowBurst(8192)
	for _, shape := range []struct {
		label           string
		channels, ranks int
	}{
		{"1ch x 1rk", 1, 1}, {"1ch x 2rk", 1, 2}, {"2ch x 1rk", 2, 1},
		{"2ch x 2rk", 2, 2}, {"4ch x 1rk", 4, 1},
	} {
		cfg := core.TimeScalingA57()
		cfg.DRAM.Seed = opt.Seed
		cfg.CPU.MLP = 8
		cfg.Topology = dram.Topology{Channels: shape.channels, Ranks: shape.ranks}
		if err := r.ablationRun(shape.label, cfg, k, opt); err != nil {
			return nil, err
		}
	}
	r.finish()
	return r, nil
}

// Ablations runs every sweep; the independent sweeps share the worker pool.
func Ablations(opt Options) ([]*AblationResult, error) {
	runs := []func(Options) (*AblationResult, error){
		AblationScheduler, AblationPagePolicy, AblationPrefetcher, AblationDDR5, AblationTopology,
	}
	out := make([]*AblationResult, len(runs))
	err := forEach(opt.EffectiveWorkers(), len(runs), func(i int) error {
		r, err := runs[i](opt)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
