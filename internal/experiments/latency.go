package experiments

import (
	"fmt"

	"easydram/internal/clock"
	"easydram/internal/core"
	"easydram/internal/cpu"
	"easydram/internal/stats"
	"easydram/internal/workload"
)

// LatencyProfileResult holds Figure 8 data: average processor cycles per
// load instruction for increasing lmbench working-set sizes.
type LatencyProfileResult struct {
	SizesKiB []int
	// Curves map configuration name -> cycles-per-load aligned with sizes.
	Curves map[string][]float64
}

// cortexA57Reference is the stand-in for the paper's real Jetson Nano
// measurement: the same A57 core model simulated directly at 1.43 GHz with
// a hardware memory controller (no FPGA artifacts to hide). The time-scaled
// system is supposed to approximate this curve; the non-scaled one is not.
func cortexA57Reference() core.Config {
	cfg := core.Reference1GHz()
	cfg.CPU = cpu.CortexA57()
	cfg.ProcPhys = cfg.CPU.Clock
	return cfg
}

// Figure8 sweeps the lmbench pointer chase over the three systems, fanning
// the (configuration, size) cells across the worker pool.
func Figure8(opt Options) (*LatencyProfileResult, error) {
	res := &LatencyProfileResult{
		SizesKiB: opt.LatSizesKiB,
		Curves:   make(map[string][]float64),
	}
	configs := []rcConfig{
		{NameNoTS, core.NoTimeScaling()},
		{NameTS, core.TimeScalingA57()},
		{NameCortex, cortexA57Reference()},
	}
	sizes := len(opt.LatSizesKiB)
	for _, c := range configs {
		res.Curves[c.name] = make([]float64, sizes)
	}
	err := forEach(opt.EffectiveWorkers(), len(configs)*sizes, func(i int) error {
		c, kib := configs[i/sizes], opt.LatSizesKiB[i%sizes]
		cfg := c.cfg
		cfg.DRAM.Seed = opt.Seed
		k := workload.LatMemRd(kib<<10, opt.LatAccesses)
		r, err := runKernel(cfg, k, opt)
		if err != nil {
			return err
		}
		res.Curves[c.name][i%sizes] = float64(r.Window()) / float64(opt.LatAccesses)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the latency profile.
func (r *LatencyProfileResult) Table() string {
	xs := make([]string, len(r.SizesKiB))
	for i, s := range r.SizesKiB {
		xs[i] = fmt.Sprintf("%dKiB", s)
	}
	order := []string{NameNoTS, NameTS, NameCortex}
	var series []stats.Series
	for _, n := range order {
		series = append(series, stats.Series{Name: n, Y: r.Curves[n]})
	}
	return stats.RenderSeries("lmbench memory read latency (cycles per load)", "size", xs, series)
}

// PlateauCycles reports the main-memory plateau (the largest size's value)
// for the named curve.
func (r *LatencyProfileResult) PlateauCycles(name string) float64 {
	ys := r.Curves[name]
	if len(ys) == 0 {
		return 0
	}
	return ys[len(ys)-1]
}

// ValidationResult holds the §6 time-scaling validation data.
type ValidationResult struct {
	Names     []string
	TSCycles  []clock.Cycles
	RefCycles []clock.Cycles
	ErrorPct  []float64
	AvgPct    float64
	MaxPct    float64
}

// Validation compares the time-scaled 100 MHz -> 1 GHz system against the
// directly simulated 1 GHz reference across the 28 PolyBench kernels plus
// the lmbench latency benchmark (§6). Each kernel's scaled/reference pair
// runs as one worker-pool cell.
func Validation(opt Options) (*ValidationResult, error) {
	kernels := workload.ValidationSuite(opt.KernelSize)
	kernels = append(kernels, workload.LatMemRd(1<<20, opt.LatAccesses))
	n := len(kernels)
	res := &ValidationResult{
		Names:     make([]string, n),
		TSCycles:  make([]clock.Cycles, n),
		RefCycles: make([]clock.Cycles, n),
		ErrorPct:  make([]float64, n),
	}
	err := forEach(opt.EffectiveWorkers(), n, func(i int) error {
		k := kernels[i]
		tsCfg := core.TimeScaling1GHz()
		tsCfg.DRAM.Seed = opt.Seed
		refCfg := core.Reference1GHz()
		refCfg.DRAM.Seed = opt.Seed

		ts, err := runKernel(tsCfg, k, opt)
		if err != nil {
			return err
		}
		ref, err := runKernel(refCfg, k, opt)
		if err != nil {
			return err
		}
		if ref.ProcCycles == 0 {
			return fmt.Errorf("experiments: validation: %s ran for zero cycles", k.Name)
		}
		errPct := 100 * float64(ts.ProcCycles-ref.ProcCycles) / float64(ref.ProcCycles)
		if errPct < 0 {
			errPct = -errPct
		}
		res.Names[i] = k.Name
		res.TSCycles[i] = ts.ProcCycles
		res.RefCycles[i] = ref.ProcCycles
		res.ErrorPct[i] = errPct
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.AvgPct = stats.Mean(res.ErrorPct)
	res.MaxPct = stats.Max(res.ErrorPct)
	return res, nil
}

// Table renders the validation summary.
func (r *ValidationResult) Table() string {
	t := stats.Table{
		Title:  "Time-scaling validation: 100 MHz processor scaled to 1 GHz vs 1 GHz reference",
		Header: []string{"workload", "scaled cycles", "reference cycles", "error %"},
	}
	for i, n := range r.Names {
		t.AddRow(n,
			fmt.Sprintf("%d", r.TSCycles[i]),
			fmt.Sprintf("%d", r.RefCycles[i]),
			fmt.Sprintf("%.4f", r.ErrorPct[i]))
	}
	t.AddRow("AVG", "", "", fmt.Sprintf("%.4f", r.AvgPct))
	t.AddRow("MAX", "", "", fmt.Sprintf("%.4f", r.MaxPct))
	return t.Render()
}
