package experiments

import (
	"fmt"

	"easydram/internal/alloc"
	"easydram/internal/core"
	"easydram/internal/ramulator"
	"easydram/internal/stats"
	"easydram/internal/techniques"
	"easydram/internal/workload"
)

// RowCloneResult holds Figure 10 (NoFlush) or Figure 11 (CLFLUSH) data:
// execution-time speedup of the RowClone variant over the CPU baseline,
// per configuration and data size.
type RowCloneResult struct {
	Flush bool
	Sizes []int
	// Copy and Init map configuration name -> speedups aligned with Sizes.
	Copy map[string][]float64
	Init map[string][]float64
	// CopyFallback / InitFallback are the plan fallback fractions on the
	// real (non-ideal) chip model.
	CopyFallback []float64
	InitFallback []float64
}

// rcConfig describes one evaluated platform.
type rcConfig struct {
	name string
	cfg  core.Config
}

func rowcloneConfigs() []rcConfig {
	return []rcConfig{
		{NameNoTS, core.NoTimeScaling()},
		{NameTS, core.TimeScalingA57()},
		{NameRamulator, ramulator.Config(1 << 40)}, // no truncation for microbenchmarks
	}
}

// RowClone runs the §7 case study in the given setting (flush=false is
// Figure 10 "No Flush", flush=true is Figure 11 "CLFLUSH"). Each
// (configuration, size) cell — its plan, baseline run, and RowClone run for
// both Copy and Init — executes independently on the worker pool.
func RowClone(opt Options, flush bool) (*RowCloneResult, error) {
	configs := rowcloneConfigs()
	sizes := len(opt.Sizes)
	res := &RowCloneResult{
		Flush:        flush,
		Sizes:        opt.Sizes,
		Copy:         make(map[string][]float64),
		Init:         make(map[string][]float64),
		CopyFallback: make([]float64, sizes),
		InitFallback: make([]float64, sizes),
	}
	for _, c := range configs {
		res.Copy[c.name] = make([]float64, sizes)
		res.Init[c.name] = make([]float64, sizes)
	}
	err := forEach(opt.EffectiveWorkers(), len(configs)*sizes, func(i int) error {
		c, si := configs[i/sizes], i%sizes
		size := opt.Sizes[si]
		copySp, copyFB, err := rowcloneOne(opt, c, size, flush, false)
		if err != nil {
			return err
		}
		initSp, initFB, err := rowcloneOne(opt, c, size, flush, true)
		if err != nil {
			return err
		}
		res.Copy[c.name][si] = copySp
		res.Init[c.name][si] = initSp
		if c.name == NameTS {
			res.CopyFallback[si] = copyFB
			res.InitFallback[si] = initFB
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// rowcloneOne measures one (config, size, workload) cell and returns the
// speedup plus the plan's fallback fraction.
func rowcloneOne(opt Options, c rcConfig, size int, flush, isInit bool) (float64, float64, error) {
	cfg := c.cfg
	cfg.DRAM.Seed = opt.Seed

	// Plan on a scratch system so characterization does not pollute the
	// measured run. The chip variation model is a pure function of the
	// seed, so clonability observed here holds in the measured run.
	planSys, err := core.NewSystem(cfg)
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: rowclone: %w", err)
	}
	a, err := alloc.New(planSys.Mapper(), cfg.DRAM.SubarrayRows, cfg.DRAM.RowsPerBank)
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: rowclone: %w", err)
	}
	tester := techniques.SystemTester(planSys, opt.Trials)

	rows := a.RowsFor(size)
	var plan workload.RowClonePlan
	var baseKernel workload.Kernel
	if isInit {
		dstBase, err := a.AllocContiguous(rows)
		if err != nil {
			return 0, 0, err
		}
		plan, err = techniques.PlanInit(a, dstBase, size, tester, flush)
		if err != nil {
			return 0, 0, err
		}
		baseKernel = workload.InitBench(dstBase, size, flush)
	} else {
		srcBase, err := a.AllocContiguous(rows)
		if err != nil {
			return 0, 0, err
		}
		plan, err = techniques.PlanCopy(a, srcBase, size, tester, flush)
		if err != nil {
			return 0, 0, err
		}
		// The baseline copies into a contiguous destination of its own.
		dstBase, err := a.AllocContiguous(rows)
		if err != nil {
			return 0, 0, err
		}
		baseKernel = workload.CopyBench(srcBase, dstBase, size, flush)
	}

	base, err := runKernel(cfg, baseKernel, opt)
	if err != nil {
		return 0, 0, err
	}
	rc, err := runKernel(cfg, plan.Kernel(), opt)
	if err != nil {
		return 0, 0, err
	}
	bw, rw := base.Window(), rc.Window()
	if rw <= 0 {
		return 0, 0, fmt.Errorf("experiments: rowclone: empty measured window for %s", plan.Name)
	}
	return float64(bw) / float64(rw), techniques.FallbackFraction(plan), nil
}

// Table renders the result in the paper's layout.
func (r *RowCloneResult) Table() string {
	setting := "No Flush"
	if r.Flush {
		setting = "CLFLUSH"
	}
	xs := make([]string, len(r.Sizes))
	for i, s := range r.Sizes {
		xs[i] = stats.FormatBytes(s)
	}
	order := []string{NameNoTS, NameTS, NameRamulator}
	var copySeries, initSeries []stats.Series
	for _, n := range order {
		copySeries = append(copySeries, stats.Series{Name: n, Y: r.Copy[n]})
		initSeries = append(initSeries, stats.Series{Name: n, Y: r.Init[n]})
	}
	out := stats.RenderSeries(
		fmt.Sprintf("RowClone - %s: Copy speedup over CPU baseline", setting), "size", xs, copySeries)
	out += "\n" + stats.RenderSeries(
		fmt.Sprintf("RowClone - %s: Init speedup over CPU baseline", setting), "size", xs, initSeries)
	summary := func(name string, m map[string][]float64) string {
		s := fmt.Sprintf("%-8s", name)
		for _, n := range order {
			s += fmt.Sprintf("  %s avg %.1fx (max %.1fx)", n, stats.Mean(m[n]), stats.Max(m[n]))
		}
		return s
	}
	out += "\n" + summary("Copy:", r.Copy) + "\n" + summary("Init:", r.Init) + "\n"
	return out
}
