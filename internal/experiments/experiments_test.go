package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"easydram/internal/workload"
)

// The tests below run each experiment at Quick scale and assert the
// paper-level *shape* of the results: who wins, which orderings hold, and
// which regimes appear. Absolute paper numbers are asserted only loosely
// (they depend on the authors' testbed).

func TestRowCloneNoFlushShape(t *testing.T) {
	opt := Quick()
	opt.Sizes = []int{64 << 10, 512 << 10}
	res, err := RowClone(opt, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Sizes {
		noTS := res.Copy[NameNoTS][i]
		ts := res.Copy[NameTS][i]
		if noTS < 5*ts {
			t.Errorf("size %d: NoTS copy speedup %.1fx should dwarf TS %.1fx (paper: ~20x skew)",
				res.Sizes[i], noTS, ts)
		}
		if ts < 2 {
			t.Errorf("size %d: TS copy speedup %.1fx — RowClone must still win", res.Sizes[i], ts)
		}
		if res.Init[NameTS][i] >= res.Copy[NameTS][i] {
			t.Errorf("size %d: init speedup %.1fx should trail copy %.1fx",
				res.Sizes[i], res.Init[NameTS][i], res.Copy[NameTS][i])
		}
	}
	// Copy plans find clonable destinations: essentially no fallback.
	for i, fb := range res.CopyFallback {
		if fb > 0.1 {
			t.Errorf("copy fallback %.2f at size %d", fb, res.Sizes[i])
		}
	}
	if !strings.Contains(res.Table(), "No Flush") {
		t.Fatalf("table missing setting name")
	}
}

func TestRowCloneCLFLUSHShape(t *testing.T) {
	opt := Quick()
	opt.Sizes = []int{32 << 10, 1 << 20}
	res, err := RowClone(opt, true)
	if err != nil {
		t.Fatal(err)
	}
	noFlush, err := RowClone(Options{
		Sizes: opt.Sizes, Trials: opt.Trials, Seed: opt.Seed,
		MaxProcCycles: opt.MaxProcCycles, FPRate: opt.FPRate,
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Sizes {
		// Coherence flushes must cost: CLFLUSH speedups trail No Flush.
		if res.Copy[NameTS][i] >= noFlush.Copy[NameTS][i] {
			t.Errorf("size %d: CLFLUSH copy %.1fx should trail No Flush %.1fx",
				res.Sizes[i], res.Copy[NameTS][i], noFlush.Copy[NameTS][i])
		}
	}
	// Small-size init degrades under CLFLUSH (paper: <=256 KiB with TS).
	if res.Init[NameTS][0] >= 1.5 {
		t.Errorf("small CLFLUSH init speedup %.2fx: expected heavy degradation", res.Init[NameTS][0])
	}
	// Benefits grow with size (paper observation four).
	if res.Copy[NameTS][1] <= res.Copy[NameTS][0] {
		t.Errorf("CLFLUSH copy speedup should grow with size: %.2f -> %.2f",
			res.Copy[NameTS][0], res.Copy[NameTS][1])
	}
}

func TestFigure8Shape(t *testing.T) {
	opt := Quick()
	opt.LatSizesKiB = []int{4, 64, 4096}
	res, err := Figure8(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Curves[NameTS]
	noTS := res.Curves[NameNoTS]
	cortex := res.Curves[NameCortex]

	// L1 region: all systems identical.
	if ts[0] != cortex[0] {
		t.Errorf("L1 latencies differ: ts=%.1f cortex=%.1f", ts[0], cortex[0])
	}
	// Memory region: NoTS reports far fewer cycles than the modeled real
	// system (the paper's headline observation for Figure 8).
	if noTS[2] >= cortex[2]/2 {
		t.Errorf("NoTS memory plateau %.1f should be well below the real system's %.1f", noTS[2], cortex[2])
	}
	// Time scaling tracks the real system closely.
	diff := (ts[2] - cortex[2]) / cortex[2]
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05 {
		t.Errorf("TS plateau %.1f deviates %.1f%% from the modeled system %.1f", ts[2], 100*diff, cortex[2])
	}
	// Plateaus are ordered: L1 < L2 < memory.
	if !(ts[0] < ts[1] && ts[1] < ts[2]) {
		t.Errorf("latency plateaus not ordered: %v", ts)
	}
}

func TestValidationUnderOnePercent(t *testing.T) {
	opt := Quick()
	res, err := Validation(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 29 { // 28 PolyBench + lmbench
		t.Fatalf("validated %d workloads, want 29", len(res.Names))
	}
	// On a breach, print the whole per-kernel table: the bound is an
	// aggregate, but the diagnosis starts from which kernel diverged.
	if res.MaxPct > 1.0 {
		t.Fatalf("max validation error %.3f%% exceeds the paper's 1%% bound\n%s", res.MaxPct, res.Table())
	}
	if res.AvgPct > 0.1 {
		t.Fatalf("avg validation error %.3f%% exceeds the paper's 0.1%% bound\n%s", res.AvgPct, res.Table())
	}
}

func TestFigure12Shape(t *testing.T) {
	opt := Quick()
	opt.HeatRows = 384
	res, err := Figure12(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Banks != 2 || len(res.MinTRCDns) != 2 {
		t.Fatalf("banks = %d", res.Banks)
	}
	// All rows operate below nominal (paper observation one).
	for b := range res.MinTRCDns {
		for r, v := range res.MinTRCDns[b] {
			if v >= res.NominalNs {
				t.Fatalf("bank %d row %d at nominal %.1f ns — all rows should beat nominal", b, r, v)
			}
		}
	}
	if res.StrongFraction <= 0.5 || res.StrongFraction >= 1 {
		t.Fatalf("strong fraction %.2f implausible", res.StrongFraction)
	}
	if !strings.Contains(res.Heatmap(), "strong rows") {
		t.Fatalf("heatmap missing summary")
	}
}

func TestFigure13Shape(t *testing.T) {
	opt := Quick()
	opt.KernelSize = workload.Small
	res, err := Figure13(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 11 {
		t.Fatalf("evaluated %d workloads, want 11", len(res.Names))
	}
	for i, n := range res.Names {
		for _, cfg := range []string{NameTS, NameRamulator} {
			s := res.Speedup[cfg][i]
			if s < 0.97 || s > 1.25 {
				t.Errorf("%s/%s speedup %.3f outside the plausible band", cfg, n, s)
			}
		}
	}
	// durbin is cache-resident: essentially no benefit.
	last := len(res.Names) - 1
	if res.Names[last] != "durbin" {
		t.Fatalf("last workload = %s", res.Names[last])
	}
	if res.Speedup[NameTS][last] > 1.01 {
		t.Errorf("durbin speedup %.4f should be negligible", res.Speedup[NameTS][last])
	}
	if res.MPKI[last] > 1 {
		t.Errorf("durbin MPKI %.2f should be tiny", res.MPKI[last])
	}
}

func TestFigure14Shape(t *testing.T) {
	opt := Quick()
	opt.KernelSize = workload.Small
	res, err := Figure13(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.Names {
		e, m := res.SimSpeedMHz[NameTS][i], res.SimSpeedMHz[NameRamulator][i]
		if e <= m {
			t.Errorf("%s: EasyDRAM %.2f MHz should beat Ramulator %.2f MHz", n, e, m)
		}
	}
	if !strings.Contains(res.SpeedTable(), "geomean") {
		t.Fatalf("speed table missing summary")
	}
}

func TestFigure2Shape(t *testing.T) {
	res, err := Figure2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Platforms) != 4 {
		t.Fatalf("platforms = %d", len(res.Platforms))
	}
	real, rtl, smc, ts := res.LatencyNs[0], res.LatencyNs[1], res.LatencyNs[2], res.LatencyNs[3]
	// The raw software MC is an order of magnitude slower than an RTL MC.
	if smc < 5*rtl {
		t.Errorf("software MC %.0f ns should dwarf RTL MC %.0f ns", smc, rtl)
	}
	// Time scaling restores the real system's latency.
	diff := (ts - real) / real
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.02 {
		t.Errorf("TS latency %.1f ns deviates from real %.1f ns", ts, real)
	}
	// The DRAM-array component is identical everywhere (the paper's "Main
	// Memory bar stays the same length").
	for i := 1; i < 4; i++ {
		if res.MainMemoryNs[i] != res.MainMemoryNs[0] {
			t.Errorf("DRAM component differs across platforms")
		}
	}
}

func TestTable1(t *testing.T) {
	res, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredCyclesPerSec < 1e6 || res.MeasuredCyclesPerSec > 100e6 {
		t.Fatalf("measured speed %.1fM cycles/s outside Table 1's EasyDRAM class (~10M)",
			res.MeasuredCyclesPerSec/1e6)
	}
	out := res.Render()
	if !strings.Contains(out, "EasyDRAM (this work)") || !strings.Contains(out, "measured") {
		t.Fatalf("table missing EasyDRAM row:\n%s", out)
	}
}

// TestEnergyShape pins RowClone's energy headline: in-DRAM copy moves no
// data over the bus, so its DRAM energy is far below the CPU baseline's.
func TestEnergyShape(t *testing.T) {
	opt := Quick()
	opt.Sizes = []int{256 << 10}
	res, err := Energy(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio[0] < 3 {
		t.Fatalf("RowClone energy advantage %.1fx implausibly low", res.Ratio[0])
	}
	if !strings.Contains(res.Table(), "advantage") {
		t.Fatalf("table malformed")
	}
}

// TestAblations asserts the direction of each design-axis sweep.
func TestAblations(t *testing.T) {
	opt := Quick()
	t.Run("scheduler", func(t *testing.T) {
		r, err := AblationScheduler(opt)
		if err != nil {
			t.Fatal(err)
		}
		// FCFS (index 1) must trail FR-FCFS (index 0) on the stress mix.
		if r.Relative[1] <= 1.0 {
			t.Errorf("FCFS %.3fx should be slower than FR-FCFS", r.Relative[1])
		}
	})
	t.Run("prefetcher", func(t *testing.T) {
		r, err := AblationPrefetcher(opt)
		if err != nil {
			t.Fatal(err)
		}
		// The next-line prefetcher must speed up streaming.
		if r.Relative[1] >= 1.0 {
			t.Errorf("prefetcher %.3fx should accelerate a stream", r.Relative[1])
		}
	})
	t.Run("pagepolicy", func(t *testing.T) {
		r, err := AblationPagePolicy(opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Labels) != 2 || r.Cycles[0] <= 0 || r.Cycles[1] <= 0 {
			t.Fatalf("sweep malformed: %+v", r)
		}
	})
	t.Run("ddr5", func(t *testing.T) {
		r, err := AblationDDR5(opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Labels) != 3 {
			t.Fatalf("sweep malformed: %+v", r)
		}
		if !strings.Contains(r.Table(), "ddr5-4800") {
			t.Fatalf("table missing DDR5 row")
		}
	})
}

// TestParallelHarnessDeterministic pins the concurrency model's contract:
// the worker pool must produce byte-identical rendered tables at any worker
// count, because every cell runs on its own system and writes only its own
// index-addressed slot.
func TestParallelHarnessDeterministic(t *testing.T) {
	opt := Quick()
	opt.KernelSize = workload.Tiny
	opt.LatAccesses = 500
	opt.Sizes = []int{32 << 10, 256 << 10}

	serial, parallel := opt, opt
	serial.Workers = 1
	parallel.Workers = 8

	t.Run("validation", func(t *testing.T) {
		a, err := Validation(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Validation(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if a.Table() != b.Table() {
			t.Fatalf("validation tables diverge between serial and parallel runs:\n%s\n---\n%s", a.Table(), b.Table())
		}
	})
	t.Run("figure8", func(t *testing.T) {
		a, err := Figure8(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Figure8(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if a.Table() != b.Table() {
			t.Fatalf("figure8 tables diverge between serial and parallel runs")
		}
	})
	t.Run("rowclone", func(t *testing.T) {
		a, err := RowClone(serial, false)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RowClone(parallel, false)
		if err != nil {
			t.Fatal(err)
		}
		if a.Table() != b.Table() {
			t.Fatalf("rowclone tables diverge between serial and parallel runs")
		}
	})
	t.Run("figure13", func(t *testing.T) {
		a, err := Figure13(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Figure13(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if a.Table() != b.Table() || a.SpeedTable() != b.SpeedTable() {
			t.Fatalf("figure13 tables diverge between serial and parallel runs")
		}
	})
	t.Run("figure12", func(t *testing.T) {
		a, err := Figure12(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Figure12(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if a.Heatmap() != b.Heatmap() {
			t.Fatalf("figure12 heatmaps diverge between serial and sharded runs")
		}
	})
}

// TestEffectiveWorkersDefault pins the Options.Workers zero-value contract:
// an unset pool size resolves to GOMAXPROCS, and explicit settings pass
// through untouched.
func TestEffectiveWorkersDefault(t *testing.T) {
	var opt Options
	if got, want := opt.EffectiveWorkers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("zero Workers resolved to %d, want GOMAXPROCS %d", got, want)
	}
	opt.Workers = 3
	if got := opt.EffectiveWorkers(); got != 3 {
		t.Fatalf("explicit Workers=3 resolved to %d", got)
	}
	opt.Workers = -1
	if got, want := opt.EffectiveWorkers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("negative Workers resolved to %d, want GOMAXPROCS %d", got, want)
	}
}

// TestWorkerCountByteIdentical asserts the satellite determinism contract
// directly: a 1-worker and a 4-worker run of the same quick-scale
// experiment produce byte-identical rendered output and identical headline
// numbers, as does a defaulted (Workers=0) run.
func TestWorkerCountByteIdentical(t *testing.T) {
	opt := Quick()
	opt.KernelSize = workload.Tiny
	opt.LatAccesses = 500
	opt.Sizes = []int{32 << 10, 256 << 10}

	one, four, def := opt, opt, opt
	one.Workers = 1
	four.Workers = 4
	def.Workers = 0

	render := func(o Options) (string, float64) {
		t.Helper()
		v, err := Validation(o)
		if err != nil {
			t.Fatal(err)
		}
		return v.Table(), v.AvgPct
	}
	tabOne, avgOne := render(one)
	tabFour, avgFour := render(four)
	tabDef, avgDef := render(def)
	if tabOne != tabFour || avgOne != avgFour {
		t.Fatalf("1-worker vs 4-worker results diverge:\n%s\n---\n%s", tabOne, tabFour)
	}
	if tabOne != tabDef || avgOne != avgDef {
		t.Fatalf("defaulted-worker run diverges from the serial run:\n%s\n---\n%s", tabOne, tabDef)
	}
}

// TestForEachErrorContract pins the pool's error behaviour: failures
// propagate, the lowest-index error among the cells that ran wins, and a
// serial pool covers every index up to the failure.
func TestForEachErrorContract(t *testing.T) {
	if err := forEach(4, 0, func(int) error { return nil }); err != nil {
		t.Fatalf("empty forEach: %v", err)
	}
	var covered [64]bool
	if err := forEach(4, 64, func(i int) error { covered[i] = true; return nil }); err != nil {
		t.Fatalf("forEach: %v", err)
	}
	for i, ok := range covered {
		if !ok {
			t.Fatalf("index %d never ran", i)
		}
	}
	// Parallel: some error must surface when cells fail.
	err := forEach(4, 64, func(i int) error {
		if i%2 == 1 {
			return fmt.Errorf("cell %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatalf("error not propagated")
	}
	// Serial: deterministically the first failing index.
	err = forEach(1, 64, func(i int) error {
		if i >= 5 {
			return fmt.Errorf("cell %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "cell 5 failed" {
		t.Fatalf("serial pool: want cell 5's error, got %v", err)
	}
}

func TestDisturbSweep(t *testing.T) {
	opt := Quick()
	opt.Workers = 2
	r, err := DisturbSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Table())
	if r.Escaped("none") == 0 {
		t.Fatal("unmitigated hammer escaped no flips at the top intensity")
	}
	for i := range r.Intensities {
		if trr := r.EscapedFlips[2][i]; trr != 0 {
			t.Fatalf("TRR leaked %d flips at intensity %d (threshold contract: < 2x%d aggressor ACTs between victim refreshes)",
				trr, r.Intensities[i], trrThreshold)
		}
	}
	if r.Escaped("para") > r.Escaped("none") {
		t.Fatalf("PARA escaped more flips (%d) than no mitigation (%d)", r.Escaped("para"), r.Escaped("none"))
	}
	if v := r.Overhead("trr"); v <= 0 {
		t.Fatalf("TRR reported non-positive overhead %.2f%% despite inserting refreshes", v)
	}
	// Mitigation must actually have fired where it claims to.
	if r.MitigationRefreshes[2][len(r.Intensities)-1] == 0 {
		t.Fatal("TRR row reports zero victim refreshes")
	}
}

// TestDisturbSweepWorkerIndependence pins the determinism contract the
// benchall snapshot relies on: the rendered table is byte-identical whether
// cells run serially or fanned across four workers.
func TestDisturbSweepWorkerIndependence(t *testing.T) {
	opt := Quick()
	opt.DisturbIntensities = []int{24, 48}
	run := func(workers int) string {
		o := opt
		o.Workers = workers
		r, err := DisturbSweep(o)
		if err != nil {
			t.Fatal(err)
		}
		return r.Table()
	}
	if a, b := run(1), run(4); a != b {
		t.Fatalf("sweep diverged across worker counts:\n%s\nvs\n%s", a, b)
	}
}
