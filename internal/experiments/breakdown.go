package experiments

import (
	"fmt"

	"easydram/internal/core"
	"easydram/internal/cpu"
	"easydram/internal/stats"
	"easydram/internal/workload"
)

// BreakdownResult holds Figure 2 data: where the time of a main-memory
// request goes on each platform, measured (not sketched, as in the paper's
// qualitative figure) from a dependent-load microbenchmark.
type BreakdownResult struct {
	Platforms []string
	// LatencyNs is the end-to-end per-miss latency in the platform's own
	// emulated nanoseconds.
	LatencyNs []float64
	// LatencyCycles is the same in the platform's processor cycles.
	LatencyCycles []float64
	// SchedulingNs estimates the scheduling component (software controller
	// cycles or modeled hardware latency).
	SchedulingNs []float64
	// MainMemoryNs is the DRAM-array component (identical chips everywhere
	// — the paper's "Main Memory bar stays the same length").
	MainMemoryNs []float64
}

// Platform names in Figure 2's breakdown (consumers look latencies up by
// name, so reordering or extending the platform list cannot silently
// change a derived metric).
const (
	PlatformReal  = "Real system (1.43 GHz, HW MC)"
	PlatformRTLMC = "FPGA + RTL memory controller"
	PlatformSMC   = "FPGA + software memory controller"
	PlatformTS    = "FPGA + SMC + time scaling"
)

// LatencyRatio reports platform a's per-miss latency over platform b's
// (0 when either platform is missing or b's latency is zero).
func (r *BreakdownResult) LatencyRatio(a, b string) float64 {
	var la, lb float64
	for i, p := range r.Platforms {
		if p == a {
			la = r.LatencyNs[i]
		}
		if p == b {
			lb = r.LatencyNs[i]
		}
	}
	if lb == 0 {
		return 0
	}
	return la / lb
}

// Figure2 measures the execution-time breakdown of main-memory requests on
// the four platforms of the paper's motivation figure.
func Figure2(opt Options) (*BreakdownResult, error) {
	type platform struct {
		name string
		cfg  core.Config
	}
	rtl50 := core.NoTimeScaling() // FPGA + RTL memory controller at 50 MHz
	rtl50.HardwareMC = true
	platforms := []platform{
		{PlatformReal, cortexA57Reference()},
		{PlatformRTLMC, rtl50},
		{PlatformSMC, core.NoTimeScaling()},
		{PlatformTS, core.TimeScalingA57()},
	}
	res := &BreakdownResult{}
	const misses = 512
	for _, p := range platforms {
		cfg := p.cfg
		cfg.DRAM.Seed = opt.Seed
		cfg.RefreshEnabled = false // isolate the request path
		k := missKernel(misses)
		r, err := runKernel(cfg, k, opt)
		if err != nil {
			return nil, err
		}
		perMissCycles := float64(r.Window()) / misses
		period := float64(cfg.CPU.Clock.Period()) / 1000 // ns
		res.Platforms = append(res.Platforms, p.name)
		res.LatencyCycles = append(res.LatencyCycles, perMissCycles)
		res.LatencyNs = append(res.LatencyNs, perMissCycles*period)

		dramNs := cfg.DRAM.Timing.ReadLatency().Nanoseconds()
		res.MainMemoryNs = append(res.MainMemoryNs, dramNs)
		res.SchedulingNs = append(res.SchedulingNs, perMissCycles*period-dramNs)
	}
	return res, nil
}

// missKernel emits n dependent main-memory misses with row-miss strides.
func missKernel(n int) workload.Kernel {
	return workload.Kernel{Name: "miss-breakdown", Body: func(g *workload.Gen) {
		stride := uint64(1 << 20)
		for i := 0; i < n; i++ { // warm nothing: every load is a cold miss
			if i == 0 {
				g.Mark()
			}
			g.LoadDep(uint64(i) * stride)
		}
		g.Mark()
	}}
}

// Table renders the breakdown.
func (r *BreakdownResult) Table() string {
	t := stats.Table{
		Title:  "Execution-time breakdown of a main-memory request (measured)",
		Header: []string{"platform", "latency (cycles)", "latency (ns)", "DRAM array (ns)", "non-DRAM (ns)"},
	}
	for i, p := range r.Platforms {
		t.AddRow(p,
			fmt.Sprintf("%.1f", r.LatencyCycles[i]),
			fmt.Sprintf("%.1f", r.LatencyNs[i]),
			fmt.Sprintf("%.1f", r.MainMemoryNs[i]),
			fmt.Sprintf("%.1f", r.SchedulingNs[i]))
	}
	return t.Render()
}

// Table1Result holds the qualitative platform comparison plus EasyDRAM's
// measured evaluation speed.
type Table1Result struct {
	MeasuredCyclesPerSec float64
	table                stats.Table
}

// Table1 reproduces the paper's platform-comparison table, measuring
// EasyDRAM's evaluated-CPU-cycles-per-second entry from a live run.
func Table1(opt Options) (*Table1Result, error) {
	cfg := core.TimeScalingA57()
	cfg.DRAM.Seed = opt.Seed
	k := workload.PBGemver(196)
	r, err := runKernel(cfg, k, opt)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{MeasuredCyclesPerSec: r.SimSpeedMHz * 1e6}
	res.table = stats.Table{
		Title:  "Comparison of EasyDRAM with related evaluation platforms",
		Header: []string{"platform", "real DRAM", "flexible MC", "CPU cycles/s", "accurate perf", "configurable"},
	}
	res.table.AddRow("Commercial systems", "yes", "no", "billions", "yes", "no")
	res.table.AddRow("Software simulators", "no", "yes (C/C++)", "~10K - ~1M", "yes", "yes")
	res.table.AddRow("FPGA-based simulators", "no", "no", "~4M - ~100M", "yes", "yes")
	res.table.AddRow("DRAM testing platforms", "DDR3/4", "no", "N/A", "no", "no")
	res.table.AddRow("FPGA-based emulators", "DDR3/4", "HDL", "50M - 200M", "no", "yes")
	res.table.AddRow("EasyDRAM (this work)", "DDR4", "yes (C/C++)",
		fmt.Sprintf("~%.0fM (measured)", res.MeasuredCyclesPerSec/1e6), "yes", "yes")
	return res, nil
}

// Render returns the table text.
func (r *Table1Result) Render() string { return r.table.Render() }

var _ = cpu.Config{}
