package experiments

import (
	"encoding/json"
	"testing"

	"easydram/internal/workload"
)

// TestFairnessSweepSmoke runs the full scheduler × mix × core-count grid at
// unit-test scale and checks its structural invariants plus the sweep's
// headline result: BLISS bounds the row-hit monopolies that starve cores
// under FR-FCFS.
func TestFairnessSweepSmoke(t *testing.T) {
	opt := Quick()
	opt.Cores = 4
	res, err := FairnessSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(FairnessSchedulers) * len(workload.Mixes()) * len(FairnessCoreCounts(opt))
	if len(res.Cells) != wantCells {
		t.Fatalf("grid has %d cells, want %d", len(res.Cells), wantCells)
	}
	for _, c := range res.Cells {
		if len(c.Slowdowns) != c.Cores || len(c.IPCs) != c.Cores {
			t.Fatalf("%s/%s/%d: per-core vectors sized %d/%d, want %d",
				c.Scheduler, c.Mix, c.Cores, len(c.Slowdowns), len(c.IPCs), c.Cores)
		}
		for i, s := range c.Slowdowns {
			// Contention can only slow a core down; allow a whisker below 1.0
			// for second-order timing effects.
			if s < 0.99 {
				t.Fatalf("%s/%s/%d: core %d slowdown %.3f below 1", c.Scheduler, c.Mix, c.Cores, i, s)
			}
		}
		if c.MaxSlowdown < 1 || c.Unfairness < 1 {
			t.Fatalf("%s/%s/%d: degenerate summary metrics %+v", c.Scheduler, c.Mix, c.Cores, c)
		}
		if c.WeightedSpeedup <= 0 || c.WeightedSpeedup > float64(c.Cores)+0.05 {
			t.Fatalf("%s/%s/%d: weighted speedup %.3f outside (0, cores]", c.Scheduler, c.Mix, c.Cores, c.WeightedSpeedup)
		}
	}

	// The satellite assertions: at 4 cores BLISS's per-bank streak cap must
	// reduce the victim's slowdown versus FR-FCFS, both on the mixed mix
	// (streaming hogs starving each other and delaying a cache-resident
	// pointer chase) and — with a wide margin — on the all-streaming mix,
	// where FR-FCFS lets the lockstep hogs monopolize open rows back and
	// forth (measured ~4.16 vs ~2.50 at this scale).
	for _, mix := range []string{"mixed", "streaming"} {
		fr := res.Cell("fr-fcfs", mix, 4)
		bl := res.Cell("bliss", mix, 4)
		if fr == nil || bl == nil {
			t.Fatalf("missing %s cells at 4 cores", mix)
		}
		if bl.MaxSlowdown >= fr.MaxSlowdown {
			t.Fatalf("%s: BLISS max slowdown %.3f should be below FR-FCFS %.3f",
				mix, bl.MaxSlowdown, fr.MaxSlowdown)
		}
	}
	str := res.Cell("fr-fcfs", "streaming", 4)
	strBL := res.Cell("bliss", "streaming", 4)
	if strBL.MaxSlowdown > 0.8*str.MaxSlowdown {
		t.Fatalf("streaming: BLISS max slowdown %.3f lost its margin over FR-FCFS %.3f",
			strBL.MaxSlowdown, str.MaxSlowdown)
	}

	// The latency mix is all row-miss traffic — no streaks for BLISS to cap —
	// so the schedulers must agree there (a proxy for "BLISS degenerates to
	// FCFS-with-row-hits when nobody monopolizes").
	latFR := res.Cell("fr-fcfs", "latency", 4)
	latBL := res.Cell("bliss", "latency", 4)
	if latFR.MaxSlowdown != latBL.MaxSlowdown {
		t.Fatalf("latency mix should be scheduler-insensitive: fr-fcfs %.4f vs bliss %.4f",
			latFR.MaxSlowdown, latBL.MaxSlowdown)
	}
}

// TestFairnessSweepDeterministic pins that the sweep is byte-identical at
// any worker-pool width: cells are independent systems writing to
// index-addressed slots.
func TestFairnessSweepDeterministic(t *testing.T) {
	digest := func(workers int) string {
		opt := Quick()
		opt.Workers = workers
		res, err := FairnessSweep(opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if digest(1) != digest(4) {
		t.Fatal("fairness sweep diverged across worker counts")
	}
}

// TestFairnessCoreCounts pins the -cores axis resolution.
func TestFairnessCoreCounts(t *testing.T) {
	cases := []struct {
		cores int
		want  []int
	}{
		{0, []int{2, 4}},
		{1, []int{2, 4}},
		{2, []int{2}},
		{8, []int{2, 8}},
	}
	for _, c := range cases {
		got := FairnessCoreCounts(Options{Cores: c.cores})
		if len(got) != len(c.want) {
			t.Fatalf("Cores=%d: got %v want %v", c.cores, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Cores=%d: got %v want %v", c.cores, got, c.want)
			}
		}
	}
}

// TestMixes pins the mix catalogue's contract: resolvable names, disjoint
// per-core windows, and streams that replay identically.
func TestMixes(t *testing.T) {
	names := workload.MixNames()
	if len(names) != 3 {
		t.Fatalf("want 3 mixes, got %v", names)
	}
	for _, name := range names {
		m, err := workload.MixByName(name)
		if err != nil {
			t.Fatal(err)
		}
		streams := m.Streams(3)
		if len(streams) != 3 {
			t.Fatalf("%s: want 3 streams", name)
		}
		for i, s := range streams {
			lo := uint64(i) * workload.MixWindowBytes
			hi := lo + workload.MixWindowBytes
			var op workload.Op
			n := 0
			for s.Next(&op) {
				n++
				switch op.Kind {
				case workload.OpLoad, workload.OpStore, workload.OpFlush:
					if op.Addr < lo || op.Addr >= hi {
						t.Fatalf("%s core %d: address %#x outside window [%#x, %#x)", name, i, op.Addr, lo, hi)
					}
				}
			}
			s.Close()
			if n == 0 {
				t.Fatalf("%s core %d: empty stream", name, i)
			}
		}
	}
	if _, err := workload.MixByName("no-such-mix"); err == nil {
		t.Fatal("MixByName should reject unknown names")
	}
}
