package experiments

import (
	"fmt"

	"easydram/internal/alloc"
	"easydram/internal/core"
	"easydram/internal/power"
	"easydram/internal/stats"
	"easydram/internal/techniques"
	"easydram/internal/workload"
)

// EnergyResult extends the paper's evaluation with RowClone's energy story
// (the original RowClone paper's second headline): DRAM energy of a bulk
// copy with CPU loads/stores versus in-DRAM RowClone, measured from the
// chip model's actual command counts.
type EnergyResult struct {
	Sizes []int
	// CPUnJ / RowClonenJ are measured DRAM energies per size.
	CPUnJ      []float64
	RowClonenJ []float64
	// Ratio is the energy advantage of RowClone.
	Ratio []float64
}

// Energy measures DRAM energy for the Copy workload across sizes on the
// time-scaled system.
func Energy(opt Options) (*EnergyResult, error) {
	res := &EnergyResult{Sizes: opt.Sizes}
	cfg := core.TimeScalingA57()
	cfg.DRAM.Seed = opt.Seed
	calc, err := power.NewCalculator(power.MicronEDY4016A(), cfg.DRAM.Timing)
	if err != nil {
		return nil, fmt.Errorf("experiments: energy: %w", err)
	}
	for _, size := range opt.Sizes {
		planSys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		a, err := alloc.New(planSys.Mapper(), cfg.DRAM.SubarrayRows, cfg.DRAM.RowsPerBank)
		if err != nil {
			return nil, err
		}
		src, err := a.AllocContiguous(a.RowsFor(size))
		if err != nil {
			return nil, err
		}
		plan, err := techniques.PlanCopy(a, src, size, techniques.SystemTester(planSys, opt.Trials), false)
		if err != nil {
			return nil, err
		}
		dst, err := a.AllocContiguous(a.RowsFor(size))
		if err != nil {
			return nil, err
		}

		base, err := runKernel(cfg, workload.CopyBench(src, dst, size, false), opt)
		if err != nil {
			return nil, err
		}
		rc, err := runKernel(cfg, plan.Kernel(), opt)
		if err != nil {
			return nil, err
		}
		eBase := calc.FromStats(base.Chip, base.EmulatedTime).Total()
		eRC := calc.FromStats(rc.Chip, rc.EmulatedTime).Total()
		res.CPUnJ = append(res.CPUnJ, eBase)
		res.RowClonenJ = append(res.RowClonenJ, eRC)
		ratio := 0.0
		if eRC > 0 {
			ratio = eBase / eRC
		}
		res.Ratio = append(res.Ratio, ratio)
	}
	return res, nil
}

// Table renders the energy comparison.
func (r *EnergyResult) Table() string {
	t := stats.Table{
		Title:  "DRAM energy: CPU copy vs RowClone (measured from command counts)",
		Header: []string{"size", "CPU copy (nJ)", "RowClone (nJ)", "advantage"},
	}
	for i, s := range r.Sizes {
		t.AddRow(stats.FormatBytes(s),
			fmt.Sprintf("%.0f", r.CPUnJ[i]),
			fmt.Sprintf("%.0f", r.RowClonenJ[i]),
			fmt.Sprintf("%.1fx", r.Ratio[i]))
	}
	return t.Render()
}
