package experiments

import (
	"fmt"

	"easydram/internal/core"
	"easydram/internal/smc"
	"easydram/internal/stats"
	"easydram/internal/workload"
)

// The fairness sweep (ROADMAP item 2): run every named multiprogram mix on
// N emulated cores under each scheduler and report the standard multi-core
// fairness metrics. This is BLISS's real habitat — FR-FCFS's row-hit-first
// greed lets streaming cores starve a pointer chase, and the blacklisting
// streak cap is supposed to bound that — so the sweep is the repository's
// first scheduler comparison that measures interference rather than
// single-stream throughput.

// FairnessSchedulers are the schedulers the sweep compares.
var FairnessSchedulers = []string{"fr-fcfs", "bliss"}

// FairnessCell is one (scheduler, mix, core-count) grid point: the per-core
// slowdowns (contended cycles over alone cycles, same scheduler) and their
// summary metrics.
type FairnessCell struct {
	Scheduler string
	Mix       string
	Cores     int
	// Slowdowns and IPCs are per core, in core order.
	Slowdowns []float64
	IPCs      []float64
	// MaxSlowdown is the victim's slowdown; Unfairness is max/min slowdown;
	// WeightedSpeedup is the sum of per-core 1/slowdown (n = no
	// interference).
	MaxSlowdown     float64
	Unfairness      float64
	WeightedSpeedup float64
}

// FairnessResult holds the full scheduler × mix × core-count grid.
type FairnessResult struct {
	Cells []FairnessCell
}

// Cell returns the grid point for (scheduler, mix, cores), or nil.
func (r *FairnessResult) Cell(scheduler, mix string, cores int) *FairnessCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Scheduler == scheduler && c.Mix == mix && c.Cores == cores {
			return c
		}
	}
	return nil
}

// Table renders the grid.
func (r *FairnessResult) Table() string {
	t := stats.Table{
		Title:  "Multi-core fairness: per-scheduler slowdowns under multiprogram mixes",
		Header: []string{"scheduler", "mix", "cores", "max slowdown", "unfairness", "weighted speedup"},
	}
	for _, c := range r.Cells {
		t.AddRow(c.Scheduler, c.Mix, fmt.Sprintf("%d", c.Cores),
			fmt.Sprintf("%.3f", c.MaxSlowdown),
			fmt.Sprintf("%.3f", c.Unfairness),
			fmt.Sprintf("%.3f", c.WeightedSpeedup))
	}
	return t.Render()
}

// fairnessScheduler resolves a sweep scheduler name to an instance (one per
// system: BLISS is stateful).
func fairnessScheduler(name string) (smc.Scheduler, error) {
	switch name {
	case "fr-fcfs":
		return smc.FRFCFS{}, nil
	case "bliss":
		return smc.NewBLISS(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown fairness scheduler %q", name)
	}
}

// fairnessConfig assembles one cell's system: the paper's time-scaled
// preset on a single channel (one memory controller, so the cores actually
// contend) with the given scheduler and core count.
func fairnessConfig(opt Options, scheduler string, cores int) (core.Config, error) {
	cfg := core.TimeScalingA57()
	cfg.Cores = cores
	cfg.DRAM.Seed = opt.Seed
	if opt.MaxProcCycles > 0 {
		cfg.MaxProcCycles = opt.MaxProcCycles
	}
	sched, err := fairnessScheduler(scheduler)
	if err != nil {
		return core.Config{}, err
	}
	cfg.Scheduler = sched
	return cfg, nil
}

// FairnessCoreCounts resolves the sweep's core-count axis: {2, 4} by
// default, with Options.Cores (when above 1) replacing the top point so
// `-cores 8` sweeps {2, 8}.
func FairnessCoreCounts(opt Options) []int {
	if opt.Cores > 2 {
		return []int{2, opt.Cores}
	}
	if opt.Cores == 2 {
		return []int{2}
	}
	return []int{2, 4}
}

// FairnessSweep runs the scheduler × mix × core-count grid. Each cell is
// one contended run plus one alone run per core (the slowdown baselines:
// the same relocated stream on a fresh single-core system under the same
// scheduler). Cells are independent systems fanned across the worker pool;
// results are deterministic at any worker count.
func FairnessSweep(opt Options) (*FairnessResult, error) {
	mixes := workload.Mixes()
	counts := FairnessCoreCounts(opt)
	scheds := FairnessSchedulers
	cells := make([]FairnessCell, len(scheds)*len(mixes)*len(counts))
	err := forEach(opt.EffectiveWorkers(), len(cells), func(i int) error {
		s := i / (len(mixes) * len(counts))
		m := (i / len(counts)) % len(mixes)
		n := counts[i%len(counts)]
		cell, err := fairnessCell(opt, scheds[s], mixes[m], n)
		if err != nil {
			return err
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &FairnessResult{Cells: cells}, nil
}

// fairnessCell measures one grid point.
func fairnessCell(opt Options, scheduler string, mix workload.Mix, cores int) (FairnessCell, error) {
	cfg, err := fairnessConfig(opt, scheduler, cores)
	if err != nil {
		return FairnessCell{}, err
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return FairnessCell{}, fmt.Errorf("experiments: fairness %s/%s/%d: %w", scheduler, mix.Name, cores, err)
	}
	shared, err := sys.RunStreams(mix.Streams(cores))
	if err != nil {
		return FairnessCell{}, fmt.Errorf("experiments: fairness %s/%s/%d: %w", scheduler, mix.Name, cores, err)
	}
	sharedCycles := make([]float64, cores)
	aloneCycles := make([]float64, cores)
	ipcs := make([]float64, cores)
	for c := 0; c < cores; c++ {
		sharedCycles[c] = float64(shared.PerCore[c].ProcCycles)
		ipcs[c] = shared.PerCore[c].IPC()
		// A fresh config per alone run: stateful schedulers (BLISS) must not
		// carry blacklist state from the contended run into a baseline.
		aloneCfg, err := fairnessConfig(opt, scheduler, 0)
		if err != nil {
			return FairnessCell{}, err
		}
		aloneSys, err := core.NewSystem(aloneCfg)
		if err != nil {
			return FairnessCell{}, fmt.Errorf("experiments: fairness %s/%s/%d: %w", scheduler, mix.Name, cores, err)
		}
		alone, err := aloneSys.Run(mix.CoreStream(c, cores))
		if err != nil {
			return FairnessCell{}, fmt.Errorf("experiments: fairness %s/%s/%d alone core %d: %w", scheduler, mix.Name, cores, c, err)
		}
		aloneCycles[c] = float64(alone.ProcCycles)
	}
	slow := stats.Slowdowns(sharedCycles, aloneCycles)
	return FairnessCell{
		Scheduler:       scheduler,
		Mix:             mix.Name,
		Cores:           cores,
		Slowdowns:       slow,
		IPCs:            ipcs,
		MaxSlowdown:     stats.MaxSlowdown(slow),
		Unfairness:      stats.UnfairnessIndex(slow),
		WeightedSpeedup: stats.WeightedSpeedup(slow),
	}, nil
}
