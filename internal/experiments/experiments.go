// Package experiments contains one runner per table and figure of the
// paper's evaluation (§6-§8). Each runner assembles the systems it needs,
// executes the workloads, and returns both raw numbers and a rendered
// text table, so the cmd/ tools and the benchmark harness share one
// implementation.
//
// # Concurrency model
//
// Each experiment cell — one workload on one configuration — builds an
// independent core.System, so the sweeping runners (Validation, Figure8,
// Figure13, RowClone, Ablations) fan their cells across a bounded worker
// pool (Options.Workers goroutines; 0 selects GOMAXPROCS; see forEach in
// parallel.go). Cells write results into index-addressed slots, so the
// assembled tables are byte-identical to a serial run no matter how the
// pool schedules. Figure12's weak-row characterization shards its
// (bank, row) grid the same way, one independent profiling system per
// shard: per-row outcomes are a pure function of the seeded variation
// model, so the heatmap is identical at any worker count. Single-run
// experiments (Table1, Figure2's four platforms) stay serial: they have
// nothing to fan out.
package experiments

import (
	"fmt"
	"os"
	"runtime"

	"easydram/internal/clock"
	"easydram/internal/core"
	"easydram/internal/fault"
	"easydram/internal/workload"
)

// Options tunes experiment scale. Default() reproduces the paper's sweep
// points; Quick() shrinks everything for unit tests.
type Options struct {
	// Sizes are the Copy/Init sweep points in bytes (Figures 10, 11).
	Sizes []int
	// KernelSize selects PolyBench dimensions (Figures 13, 14, §6).
	KernelSize workload.SizeClass
	// LatSizesKiB are the lmbench working-set points (Figure 8).
	LatSizesKiB []int
	// LatAccesses is the measured access count per lmbench point.
	LatAccesses int
	// HeatRows is the per-bank row count profiled for Figure 12.
	HeatRows int
	// Trials is the clonability test repeat count (§7.1).
	Trials int
	// FPRate is the Bloom filter's target false-positive rate (§8.2).
	FPRate float64
	// Seed drives the DRAM variation model.
	Seed uint64
	// MaxProcCycles aborts runaway runs.
	MaxProcCycles clock.Cycles
	// Workers bounds the experiment worker pool: the number of independent
	// system runs in flight at once. 0 selects GOMAXPROCS (see
	// EffectiveWorkers); 1 forces serial execution. Results are
	// deterministic at any setting.
	Workers int
	// BurstCap bounds row-hit burst service in the software memory
	// controller (core.Config.BurstCap): how many same-row requests one SMC
	// step may serve through a single Bender program. 0 leaves the presets'
	// serial service. Burst service is bit-identical in emulated time, so
	// every experiment result is unchanged by this knob; it only trades
	// host time (refresh-on configurations burst too: the engine replays
	// the refresh-horizon check inside each burst).
	BurstCap int
	// Channels and Ranks select the module topology every kernel runs
	// under (core.Config.Topology): independent channels and ranks per
	// channel bus. 0 leaves the presets' single-channel, single-rank
	// module, which is bit-identical to the legacy engine. Topology is a
	// workload axis: multi-channel runs overlap service and change
	// emulated timing (unlike Workers or BurstCap, which are
	// result-neutral).
	Channels int
	// Ranks is the per-channel rank count (see Channels).
	Ranks int
	// Cores selects the emulated core count the fairness sweep tops out at
	// (cmd/easydram's -cores flag): FairnessSweep runs its mixes at {2,
	// Cores} emulated cores. 0 leaves the default {2, 4} grid. Unlike
	// Workers or ShardWorkers this is a modeled-system axis: more cores
	// means more contention and different emulated timing.
	Cores int
	// ShardWorkers bounds the host worker pool that advances emulated
	// memory channels in parallel inside one run (core.Config.ShardWorkers;
	// distinct from Workers, which parallelizes across runs). Result-
	// neutral: any setting is byte-identical. 0 uses GOMAXPROCS, 1 forces
	// the serial engine path (cmd/easydram's -shard-workers flag).
	ShardWorkers int
	// DisturbIntensities are the RowHammer sweep's hammer counts: double-
	// sided activation pairs per victim site (see DisturbSweep).
	DisturbIntensities []int
	// Faults arms the default fault-injection configuration
	// (fault.DefaultConfig) on every kernel run that does not already
	// configure its own faults. Injection is deterministic in Seed.
	Faults bool
	// Mitigation selects a RowHammer mitigation policy ("para" or "trr")
	// for every kernel run that does not already configure one.
	Mitigation string
	// Verbose prints per-run health counters to stderr after each kernel:
	// DRAM protocol violations and the fault-recovery path's work
	// (cmd/easydram's -v flag).
	Verbose bool
	// ProfileLoad is a characterization store directory to warm-start
	// from: experiments that profile (Figure13, WarmStart) first try the
	// stored per-workload profile and fall back to fresh characterization
	// when it is missing, corrupt, or keyed to different silicon
	// (cmd/easydram's -load-profile flag).
	ProfileLoad string
	// ProfileSave is a directory the profiling experiments persist their
	// characterization results to, atomically, for later warm starts
	// (cmd/easydram's -save-profile flag).
	ProfileSave string
	// CheckpointPath, when set, is where the WarmStart sweep writes its
	// mid-run system checkpoint blob (cmd/easydram's -checkpoint flag).
	CheckpointPath string
}

// EffectiveWorkers resolves the worker-pool size: Workers when positive,
// otherwise runtime.GOMAXPROCS(0). Every experiment runner sizes its pool
// through this method, so a zero value always means "use the machine".
func (o Options) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Default returns the paper-scale options.
func Default() Options {
	return Options{
		Sizes: []int{
			8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10,
			512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20,
		},
		KernelSize:         workload.Eval,
		LatSizesKiB:        []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384},
		LatAccesses:        20000,
		HeatRows:           4096,
		Trials:             3,
		FPRate:             0.001,
		Seed:               1,
		MaxProcCycles:      1 << 44,
		DisturbIntensities: []int{64, 256, 1024},
	}
}

// Quick returns unit-test-scale options.
func Quick() Options {
	o := Default()
	o.Sizes = []int{8 << 10, 32 << 10, 128 << 10}
	o.KernelSize = workload.Tiny
	o.LatSizesKiB = []int{4, 64, 2048}
	o.LatAccesses = 2000
	o.HeatRows = 192
	o.DisturbIntensities = []int{24, 96}
	return o
}

// runKernel executes one kernel on a fresh system built from cfg, with the
// option-level knobs (cycle cap, burst cap) applied.
func runKernel(cfg core.Config, k workload.Kernel, opt Options) (core.Result, error) {
	if opt.MaxProcCycles > 0 {
		cfg.MaxProcCycles = opt.MaxProcCycles
	}
	if opt.BurstCap > 0 {
		cfg.BurstCap = opt.BurstCap
	}
	if opt.ShardWorkers > 0 {
		cfg.ShardWorkers = opt.ShardWorkers
	}
	// Option-level topology applies only where the experiment left the
	// preset default: a sweep that sets its own per-cell topology (the
	// AblationTopology axis) must not be trampled by the global knob.
	if opt.Channels > 0 && cfg.Topology.Channels == 0 {
		cfg.Topology.Channels = opt.Channels
	}
	if opt.Ranks > 0 && cfg.Topology.Ranks == 0 {
		cfg.Topology.Ranks = opt.Ranks
	}
	// Option-level fault injection likewise yields to per-experiment fault
	// configs (the disturb sweep arms its own seams).
	if opt.Faults && !cfg.Faults.Enabled() {
		cfg.Faults = fault.DefaultConfig()
	}
	if opt.Mitigation != "" && opt.Mitigation != "none" && cfg.Mitigation.Policy == "" {
		cfg.Mitigation = fault.MitigationConfig{Policy: opt.Mitigation, Seed: opt.Seed}
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return core.Result{}, fmt.Errorf("experiments: %s: %w", k.Name, err)
	}
	res, err := sys.Run(k.Stream())
	if err != nil {
		return core.Result{}, fmt.Errorf("experiments: %s: %w", k.Name, err)
	}
	if opt.Verbose {
		reportRun(k.Name, res)
	}
	return res, nil
}

// reportRun emits the per-run health line behind cmd/easydram's -v flag.
// Lines are written atomically (one Fprintf), so parallel cells interleave
// whole lines, never fragments; their order follows pool scheduling.
func reportRun(name string, res core.Result) {
	fmt.Fprintf(os.Stderr,
		"easydram: %s: timing_violations=%d rank_switch_violations=%d"+
			" retries=%d retry_give_ups=%d quarantined_rows=%d remapped_accesses=%d"+
			" mitigation_refreshes=%d launch_fails=%d corrupt_lines=%d short_readbacks=%d\n",
		name, res.Chip.TimingViolations, res.Chip.RankSwitchViolations,
		res.Ctrl.Retries, res.Ctrl.RetryGiveUps, res.Ctrl.QuarantinedRows,
		res.Ctrl.RemappedAccesses, res.Ctrl.MitigationRefreshes,
		res.Tile.LaunchFails, res.Tile.CorruptLines, res.Tile.ShortReadbacks)
}

// Config names used across experiment outputs (the paper's legend).
const (
	NameNoTS      = "EasyDRAM - No Time Scaling"
	NameTS        = "EasyDRAM - Time Scaling"
	NameRamulator = "Ramulator 2.0"
	NameCortex    = "Cortex A57 (modeled)"
)
