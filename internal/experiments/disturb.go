package experiments

import (
	"fmt"

	"easydram/internal/core"
	"easydram/internal/dram"
	"easydram/internal/fault"
	"easydram/internal/smc"
	"easydram/internal/stats"
	"easydram/internal/workload"
)

// DisturbPolicies are the mitigation policies the disturb sweep compares:
// no mitigation, PARA (probabilistic adjacent-row refresh), and a
// counter-based TRR.
var DisturbPolicies = []string{"none", "para", "trr"}

// disturbSites is the number of double-sided hammer sites the sweep's
// kernel attacks (distinct victim rows in one bank).
const disturbSites = 4

// disturbMinThreshold is the sweep's chip disturb floor. The TRR threshold
// below is chosen so a victim row accrues strictly fewer than
// disturbMinThreshold activations between two TRR victim refreshes
// (< 2 x trrThreshold), which is what guarantees the TRR column of the
// sweep reports zero escaped flips.
const (
	disturbMinThreshold = 64
	disturbJitter       = 64
	trrThreshold        = 16
)

// DisturbResult holds the RowHammer mitigation sweep: for each policy and
// hammer intensity (double-sided activation pairs per victim site), the
// silent bit flips that escaped, the recovery-path work, and the execution
// time relative to the unmitigated run.
type DisturbResult struct {
	Policies    []string
	Intensities []int
	// All matrices are [policy][intensity].
	EscapedFlips        [][]int64
	Retries             [][]int64
	MitigationRefreshes [][]int64
	Cycles              [][]float64
	// OverheadPct is the execution-time overhead versus the "none" policy
	// at the same intensity (0 for the "none" row itself).
	OverheadPct [][]float64
}

// Table renders the sweep.
func (r *DisturbResult) Table() string {
	t := stats.Table{
		Title:  "RowHammer disturb sweep: escaped flips and mitigation overhead",
		Header: []string{"policy", "intensity", "escaped flips", "retries", "victim refreshes", "cycles", "overhead"},
	}
	for p := range r.Policies {
		for i := range r.Intensities {
			t.AddRow(r.Policies[p],
				fmt.Sprintf("%d", r.Intensities[i]),
				fmt.Sprintf("%d", r.EscapedFlips[p][i]),
				fmt.Sprintf("%d", r.Retries[p][i]),
				fmt.Sprintf("%d", r.MitigationRefreshes[p][i]),
				fmt.Sprintf("%.0f", r.Cycles[p][i]),
				fmt.Sprintf("%+.2f%%", r.OverheadPct[p][i]))
		}
	}
	return t.Render()
}

// disturbConfig assembles the sweep's system: disturb injection armed with a
// hammer-reachable threshold, recovery on, refresh off (REF would clear the
// disturb counters mid-run and mask the policy comparison), and the given
// mitigation policy.
func disturbConfig(opt Options, policy string) core.Config {
	cfg := core.TimeScalingA57()
	cfg.RefreshEnabled = false
	cfg.DRAM.TrackData = false
	cfg.DRAM.Seed = opt.Seed
	cfg.Faults = fault.Config{
		Chip: fault.ChipConfig{
			DisturbEnabled:      true,
			DisturbMinThreshold: disturbMinThreshold,
			DisturbJitter:       disturbJitter,
		},
		Recovery: fault.RecoveryConfig{Enabled: true},
	}
	if policy != "none" {
		cfg.Mitigation = fault.MitigationConfig{Policy: policy, TRRThreshold: trrThreshold, Seed: opt.Seed}
	}
	return cfg
}

// hammerKernel builds a double-sided RowHammer kernel: per repetition it
// loads and flushes the two rows adjacent to each victim site, so every
// access misses the caches and activates an aggressor row.
func hammerKernel(cfg core.Config, reps int) (workload.Kernel, error) {
	topo := cfg.Topology.Normalize()
	banksPerRank := cfg.DRAM.BankGroups * cfg.DRAM.BanksPerGroup
	m, err := smc.NewTopologyMapper(topo, banksPerRank, cfg.DRAM.ColsPerRow)
	if err != nil {
		return workload.Kernel{}, fmt.Errorf("experiments: %w", err)
	}
	type pair struct{ lo, hi uint64 }
	var sites []pair
	for s := 0; s < disturbSites; s++ {
		victim := 101 + 200*s
		sites = append(sites, pair{
			m.Unmap(dram.Addr{Bank: 0, Row: victim - 1}),
			m.Unmap(dram.Addr{Bank: 0, Row: victim + 1}),
		})
	}
	return workload.Kernel{
		Name: fmt.Sprintf("hammer_x%d", reps),
		Body: func(g *workload.Gen) {
			g.Mark()
			for i := 0; i < reps; i++ {
				for _, p := range sites {
					g.Load(p.lo)
					g.Flush(p.lo)
					g.Load(p.hi)
					g.Flush(p.hi)
				}
			}
			g.Barrier()
			g.Mark()
		},
	}, nil
}

// DisturbSweep runs the policy x intensity grid. Cells are independent
// systems fanned across the worker pool; every number is a pure function of
// the seed, so the table is byte-identical at any worker count.
func DisturbSweep(opt Options) (*DisturbResult, error) {
	intensities := opt.DisturbIntensities
	if len(intensities) == 0 {
		intensities = Default().DisturbIntensities
	}
	r := &DisturbResult{Policies: DisturbPolicies, Intensities: intensities}
	np, ni := len(r.Policies), len(intensities)
	for p := 0; p < np; p++ {
		r.EscapedFlips = append(r.EscapedFlips, make([]int64, ni))
		r.Retries = append(r.Retries, make([]int64, ni))
		r.MitigationRefreshes = append(r.MitigationRefreshes, make([]int64, ni))
		r.Cycles = append(r.Cycles, make([]float64, ni))
		r.OverheadPct = append(r.OverheadPct, make([]float64, ni))
	}
	err := forEach(opt.EffectiveWorkers(), np*ni, func(i int) error {
		p, ix := i/ni, i%ni
		cfg := disturbConfig(opt, r.Policies[p])
		k, err := hammerKernel(cfg, intensities[ix])
		if err != nil {
			return err
		}
		res, err := runKernel(cfg, k, opt)
		if err != nil {
			return err
		}
		r.EscapedFlips[p][ix] = res.Chip.DisturbFlips
		r.Retries[p][ix] = res.Ctrl.Retries
		r.MitigationRefreshes[p][ix] = res.Ctrl.MitigationRefreshes
		r.Cycles[p][ix] = float64(res.ProcCycles)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for p := 0; p < np; p++ {
		for ix := 0; ix < ni; ix++ {
			if base := r.Cycles[0][ix]; base > 0 {
				r.OverheadPct[p][ix] = 100 * (r.Cycles[p][ix]/base - 1)
			}
		}
	}
	return r, nil
}

// Escaped reports the escaped-flip count for a policy at the sweep's
// highest intensity (-1 when the policy is unknown).
func (r *DisturbResult) Escaped(policy string) int64 {
	for p, name := range r.Policies {
		if name == policy {
			return r.EscapedFlips[p][len(r.Intensities)-1]
		}
	}
	return -1
}

// Overhead reports a policy's execution-time overhead (percent) at the
// sweep's highest intensity (0 when the policy is unknown).
func (r *DisturbResult) Overhead(policy string) float64 {
	for p, name := range r.Policies {
		if name == policy {
			return r.OverheadPct[p][len(r.Intensities)-1]
		}
	}
	return 0
}
