package experiments

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"easydram/internal/core"
	"easydram/internal/snapshot"
	"easydram/internal/stats"
	"easydram/internal/techniques"
	"easydram/internal/workload"
)

// The durable-characterization sweep (ROADMAP item 3): cold vs warm
// characterization through the snapshot store, round-trip identity of the
// stored artifact, corruption handling, and checkpoint/restore identity.
// Wall-clock timings feed the snapshot/warm_start_speedup_x benchall
// metric only — the rendered table stays machine-independent, so benchall
// reports remain byte-identical across hosts and worker counts.

// profilePath names one workload's profile file inside a store directory.
func profilePath(dir, name string) string {
	return filepath.Join(dir, name+".ezdrprof")
}

// characterizeWarm is the warm-start characterization entry shared by
// Figure13 and the WarmStart sweep: load the stored profile when one
// exists under the caller's compatibility key, otherwise characterize from
// scratch and (optionally) persist the result. A present-but-unusable
// profile — corrupt, stale, or keyed to different silicon — counts one
// stats.SnapshotFallbacks and degrades to re-characterization; a simply
// missing file is an ordinary cold start and counts nothing.
func characterizeWarm(sys *core.System, name string, extent uint64, opt Options) (*snapshot.Profile, bool, error) {
	key := techniques.ProfileCompatKey(sys, 0, extent, techniques.ReducedTRCD, opt.FPRate)
	if opt.ProfileLoad != "" {
		data, err := snapshot.ReadFile(profilePath(opt.ProfileLoad, name))
		if err == nil {
			p, derr := snapshot.DecodeProfile(data, key)
			if derr == nil {
				return p, true, nil
			}
			snapshot.RecordFallback(derr)
		} else if !errors.Is(err, fs.ErrNotExist) {
			snapshot.RecordFallback(err)
		}
	}
	p, err := techniques.Characterize(sys, 0, extent, techniques.ReducedTRCD, opt.FPRate)
	if err != nil {
		return nil, false, err
	}
	if opt.ProfileSave != "" {
		if err := snapshot.WriteFile(profilePath(opt.ProfileSave, name), p.Encode()); err != nil {
			return nil, false, err
		}
	}
	return p, false, nil
}

// WarmStartResult holds the durable-characterization sweep's outcomes.
type WarmStartResult struct {
	Names   []string
	Rows    []int
	WeakPct []float64
	// ColdSecs/WarmSecs are host wall-clock seconds of the cold
	// characterization pass vs the warm store load (machine-dependent;
	// excluded from the rendered table).
	ColdSecs []float64
	WarmSecs []float64
	// IdentityMismatches counts round-trip identity failures: a decoded
	// profile differing from the one encoded, or a checkpoint-restored run
	// differing from the uninterrupted one. Must be zero (benchtrend gates
	// it machine-independently).
	IdentityMismatches int
	// Fallbacks is the stats.SnapshotFallbacks delta over the sweep — the
	// corruption drill contributes exactly one.
	Fallbacks int64
	// CheckpointBytes is the size of the mid-run checkpoint the restore
	// drill captured.
	CheckpointBytes int
}

// SpeedupX reports the geometric-mean cold/warm characterization speedup.
func (r *WarmStartResult) SpeedupX() float64 {
	var ratios []float64
	for i := range r.ColdSecs {
		if r.WarmSecs[i] > 0 {
			ratios = append(ratios, r.ColdSecs[i]/r.WarmSecs[i])
		}
	}
	if len(ratios) == 0 {
		return 0
	}
	return stats.Geomean(ratios)
}

// Table renders the machine-independent sweep summary.
func (r *WarmStartResult) Table() string {
	t := stats.Table{
		Title:  "Durable characterization: store round-trip and restore identity",
		Header: []string{"workload", "rows", "weak rows", "round-trip"},
	}
	for i, n := range r.Names {
		verdict := "identical"
		if r.IdentityMismatches > 0 {
			verdict = "MISMATCH"
		}
		t.AddRow(n, fmt.Sprintf("%d", r.Rows[i]),
			fmt.Sprintf("%.1f%%", r.WeakPct[i]), verdict)
	}
	out := t.Render()
	out += fmt.Sprintf("corruption drill: flipped snapshot byte degraded to re-characterization (%d fallback(s) counted)\n", r.Fallbacks)
	out += fmt.Sprintf("checkpoint drill: mid-run checkpoint (%d bytes) restored bit-identically: %v\n",
		r.CheckpointBytes, r.IdentityMismatches == 0)
	return out
}

// WarmStart runs the durable-characterization sweep: for each workload,
// characterize cold, persist the profile atomically, reload it on a fresh
// system, and require the decoded artifact to be identical; then corrupt a
// stored profile and require a named error plus a counted fallback; then
// checkpoint one run mid-flight, restore it, and require the Result to be
// byte-identical to the uninterrupted run (written to opt.CheckpointPath
// when set). Profiles land in opt.ProfileSave when set, else a temporary
// store.
func WarmStart(opt Options) (*WarmStartResult, error) {
	kernels := workload.Fig13Suite(opt.KernelSize)
	if len(kernels) > 4 {
		kernels = kernels[:4]
	}
	dir := opt.ProfileSave
	if dir == "" {
		tmp, err := os.MkdirTemp("", "easydram-profiles")
		if err != nil {
			return nil, fmt.Errorf("experiments: warmstart: %w", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	res := &WarmStartResult{}
	fall0 := stats.SnapshotFallbacks.Load()
	var lastPath string
	for _, k := range kernels {
		extent := workload.Extent(k)
		profCfg := core.TimeScalingA57()
		profCfg.DRAM = core.TechniqueDRAM()
		profCfg.DRAM.Seed = opt.Seed
		profSys, err := core.NewSystem(profCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: warmstart: %w", err)
		}
		t0 := time.Now()
		cold, err := techniques.Characterize(profSys, 0, extent, techniques.ReducedTRCD, opt.FPRate)
		if err != nil {
			return nil, fmt.Errorf("experiments: warmstart: %w", err)
		}
		coldSecs := time.Since(t0).Seconds()

		path := profilePath(dir, k.Name)
		if err := snapshot.WriteFile(path, cold.Encode()); err != nil {
			return nil, fmt.Errorf("experiments: warmstart: %w", err)
		}
		warmSys, err := core.NewSystem(profCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: warmstart: %w", err)
		}
		t0 = time.Now()
		data, err := snapshot.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("experiments: warmstart: %w", err)
		}
		key := techniques.ProfileCompatKey(warmSys, 0, extent, techniques.ReducedTRCD, opt.FPRate)
		warm, err := snapshot.DecodeProfile(data, key)
		warmSecs := time.Since(t0).Seconds()
		if err != nil {
			return nil, fmt.Errorf("experiments: warmstart: %w", err)
		}
		if !reflect.DeepEqual(cold, warm) {
			res.IdentityMismatches++
		}

		res.Names = append(res.Names, k.Name)
		res.Rows = append(res.Rows, cold.Rows())
		res.WeakPct = append(res.WeakPct, 100*cold.WeakFraction())
		res.ColdSecs = append(res.ColdSecs, coldSecs)
		res.WarmSecs = append(res.WarmSecs, warmSecs)
		lastPath = path
	}

	// Corruption drill: a flipped byte must surface as a named error and
	// degrade to re-characterization, never load. The re-characterization
	// itself goes through the shared warm-start path so the fallback is
	// counted exactly where production callers count it.
	if lastPath != "" {
		data, err := os.ReadFile(lastPath)
		if err != nil {
			return nil, fmt.Errorf("experiments: warmstart: %w", err)
		}
		data[len(data)/2] ^= 0x20
		if err := os.WriteFile(lastPath, data, 0o644); err != nil {
			return nil, fmt.Errorf("experiments: warmstart: %w", err)
		}
		k := kernels[len(res.Names)-1]
		extent := workload.Extent(k)
		profCfg := core.TimeScalingA57()
		profCfg.DRAM = core.TechniqueDRAM()
		profCfg.DRAM.Seed = opt.Seed
		profSys, err := core.NewSystem(profCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: warmstart: %w", err)
		}
		wOpt := opt
		wOpt.ProfileLoad, wOpt.ProfileSave = dir, dir
		p, warm, err := characterizeWarm(profSys, k.Name, extent, wOpt)
		if err != nil {
			return nil, fmt.Errorf("experiments: warmstart: %w", err)
		}
		if warm || p == nil {
			res.IdentityMismatches++ // corrupt profile must not load
		}
	}

	// Checkpoint drill: a run checkpointed mid-flight and restored must be
	// byte-identical to the uninterrupted run.
	ckCfg := core.TimeScalingA57()
	ckCfg.DRAM.Seed = opt.Seed
	k := kernels[0]
	baseSys, err := core.NewSystem(ckCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: warmstart: %w", err)
	}
	base, err := baseSys.Run(k.Stream())
	if err != nil {
		return nil, fmt.Errorf("experiments: warmstart: %w", err)
	}
	ckSys, err := core.NewSystem(ckCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: warmstart: %w", err)
	}
	ck, blob, err := ckSys.RunCheckpoint(k.Stream(), base.ProcCycles/2)
	if err != nil {
		return nil, fmt.Errorf("experiments: warmstart: %w", err)
	}
	if !reflect.DeepEqual(ck, base) || blob == nil {
		res.IdentityMismatches++
	}
	if blob != nil {
		res.CheckpointBytes = len(blob)
		if opt.CheckpointPath != "" {
			if err := snapshot.WriteFile(opt.CheckpointPath, blob); err != nil {
				return nil, fmt.Errorf("experiments: warmstart: %w", err)
			}
		}
		reSys, err := core.NewSystem(ckCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: warmstart: %w", err)
		}
		restored, err := reSys.RunRestored(k.Stream(), blob)
		if err != nil {
			return nil, fmt.Errorf("experiments: warmstart: %w", err)
		}
		if !reflect.DeepEqual(restored, base) {
			res.IdentityMismatches++
		}
	}

	res.Fallbacks = stats.SnapshotFallbacks.Load() - fall0
	return res, nil
}
