// Package mem defines the memory-request types exchanged between the
// processor model, the EasyTile hardware buffers, and the software memory
// controller. It exists so the cpu, tile, and smc packages do not import
// each other.
package mem

import (
	"fmt"

	"easydram/internal/clock"
)

// Kind classifies a main-memory request.
type Kind uint8

// Request kinds.
const (
	// Read is a demand cache-line fill.
	Read Kind = iota + 1
	// Write is a cache-line store reaching memory (uncached or flushed).
	Write
	// Writeback is a dirty-line eviction; posted (no processor waits on it).
	Writeback
	// RowClone asks the controller to perform an in-DRAM row copy.
	RowClone
	// Profile asks the controller to test a cache line at a reduced tRCD
	// (§8.1 profiling request).
	Profile
	// Bitwise asks the controller to perform an in-DRAM bulk bitwise
	// majority (ComputeDRAM-class many-row activation; extension).
	Bitwise
	// ProfileRow asks the controller to test every cache line of the row at
	// Addr (row-aligned) at a reduced tRCD with a single Bender program —
	// the row-granularity fast path of the §8.1 characterization. The
	// response reports per-line detail in Response.Lines.
	ProfileRow
)

var kindNames = map[Kind]string{
	Read: "read", Write: "write", Writeback: "writeback",
	RowClone: "rowclone", Profile: "profile", Bitwise: "bitwise",
	ProfileRow: "profilerow",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Request is one main-memory request as it sits in the EasyTile hardware
// request buffer.
type Request struct {
	ID   uint64
	Kind Kind
	// Addr is the physical byte address (line-aligned for Read/Write/
	// Writeback, row-aligned destination for RowClone).
	Addr uint64
	// Src is the row-aligned RowClone source address.
	Src uint64
	// Tag is the processor cycle counter value when the request was issued
	// (Figure 5: requests are tagged on entry).
	Tag clock.Cycles
	// RCD is the reduced tRCD to test for Profile requests.
	RCD clock.PS
	// Rows extends a ProfileRow request to a bank stripe: the number of
	// consecutive rows (starting at Addr's row) covered by one Bender
	// program. 0 and 1 both mean a single row. Bounded by the readback
	// buffer (64 rows of a 128-column module).
	Rows int
	// Posted requests complete without the processor consuming a response.
	Posted bool
}

// Response is the controller's answer to a request. The release point at
// which the processor may consume a response (Figure 5 step 10) is not part
// of the response itself: the engine computes it while settling the step
// and tracks it in its release queue, keyed by ReqID.
type Response struct {
	ReqID uint64
	// OK reports technique-specific success: profile passed, RowClone
	// succeeded. Always true for plain reads/writes.
	OK bool
	// Lines carries ProfileRow detail: the number of leading cache lines
	// that read reliably before the first failure, counted in (row, column)
	// order across the request's rows (one row unless Request.Rows extends
	// it to a bank stripe). When every covered line passed, OK is true and
	// Lines equals rows*cols; otherwise Lines/cols full rows passed and row
	// Lines/cols failed at column Lines%cols. Zero for every other request
	// kind.
	Lines int
	// RowLines carries bank-stripe profiling detail: element r is the
	// number of leading reliable lines of the stripe's r-th row (equal to
	// the column count when the row passed). Nil for every non-profiling
	// request — the hot access path never allocates it.
	RowLines []int
}
