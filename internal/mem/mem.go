// Package mem defines the memory-request types exchanged between the
// processor model, the EasyTile hardware buffers, and the software memory
// controller. It exists so the cpu, tile, and smc packages do not import
// each other.
package mem

import (
	"fmt"

	"easydram/internal/clock"
)

// Kind classifies a main-memory request.
type Kind uint8

// Request kinds.
const (
	// Read is a demand cache-line fill.
	Read Kind = iota + 1
	// Write is a cache-line store reaching memory (uncached or flushed).
	Write
	// Writeback is a dirty-line eviction; posted (no processor waits on it).
	Writeback
	// RowClone asks the controller to perform an in-DRAM row copy.
	RowClone
	// Profile asks the controller to test a cache line at a reduced tRCD
	// (§8.1 profiling request).
	Profile
	// Bitwise asks the controller to perform an in-DRAM bulk bitwise
	// majority (ComputeDRAM-class many-row activation; extension).
	Bitwise
	// ProfileRow asks the controller to test every cache line of the row at
	// Addr (row-aligned) at a reduced tRCD with a single Bender program —
	// the row-granularity fast path of the §8.1 characterization. The
	// response reports per-line detail in Response.Lines.
	ProfileRow
)

var kindNames = map[Kind]string{
	Read: "read", Write: "write", Writeback: "writeback",
	RowClone: "rowclone", Profile: "profile", Bitwise: "bitwise",
	ProfileRow: "profilerow",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Request is one main-memory request as it sits in the EasyTile hardware
// request buffer.
type Request struct {
	ID   uint64
	Kind Kind
	// Addr is the physical byte address (line-aligned for Read/Write/
	// Writeback, row-aligned destination for RowClone).
	Addr uint64
	// Src is the row-aligned RowClone source address.
	Src uint64
	// Tag is the processor cycle counter value when the request was issued
	// (Figure 5: requests are tagged on entry).
	Tag clock.Cycles
	// RCD is the reduced tRCD to test for Profile requests.
	RCD clock.PS
	// Posted requests complete without the processor consuming a response.
	Posted bool
}

// Response is the controller's answer to a request. The release point at
// which the processor may consume a response (Figure 5 step 10) is not part
// of the response itself: the engine computes it while settling the step
// and tracks it in its release queue, keyed by ReqID.
type Response struct {
	ReqID uint64
	// OK reports technique-specific success: profile passed, RowClone
	// succeeded. Always true for plain reads/writes.
	OK bool
	// Lines carries ProfileRow detail: the number of leading cache lines of
	// the row that read reliably before the first failure (equal to the
	// row's line count when the whole row passed, so OK == (Lines == row
	// lines)). Zero for every other request kind.
	Lines int
}
