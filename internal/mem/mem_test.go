package mem

import "testing"

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Read: "read", Write: "write", Writeback: "writeback",
		RowClone: "rowclone", Profile: "profile",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d -> %q, want %q", k, k.String(), want)
		}
	}
	if Kind(200).String() == "" {
		t.Fatalf("unknown kind must render")
	}
}
