// Package trace records and replays main-memory request traces. The paper's
// Ramulator 2.0 baseline is trace-driven ("we generate traces of workloads
// and simulate each workload for 500M instructions", §8.3); this package
// provides that methodology: capture the memory-request stream of a
// workload once, then replay it against any system configuration without
// re-executing the processor-side kernel.
//
// Traces use a compact line-oriented text format:
//
//	# easydram-trace v1
//	C <cycles>          processor compute gap
//	R <addr>            line read
//	W <addr>            line write
//	F <addr>            cache-line flush
//	K <src> <dst>       RowClone
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"easydram/internal/workload"
)

// header identifies the trace format.
const header = "# easydram-trace v1"

// Record captures the op stream of kernel k into w, translating compute
// bursts into cycle gaps. It returns the number of records written.
func Record(w io.Writer, k workload.Kernel) (int, error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, header); err != nil {
		return 0, fmt.Errorf("trace: %w", err)
	}
	s := k.Stream()
	defer s.Close()
	var op workload.Op
	n := 0
	for s.Next(&op) {
		var err error
		switch op.Kind {
		case workload.OpCompute:
			_, err = fmt.Fprintf(bw, "C %d\n", op.N)
		case workload.OpLoad:
			if op.Dep {
				_, err = fmt.Fprintf(bw, "R %d d\n", op.Addr)
			} else {
				_, err = fmt.Fprintf(bw, "R %d\n", op.Addr)
			}
		case workload.OpStore:
			_, err = fmt.Fprintf(bw, "W %d\n", op.Addr)
		case workload.OpFlush:
			_, err = fmt.Fprintf(bw, "F %d\n", op.Addr)
		case workload.OpRowClone:
			_, err = fmt.Fprintf(bw, "K %d %d\n", op.Src, op.Addr)
		case workload.OpBarrier, workload.OpMark:
			// Barriers and marks are execution artifacts, not memory
			// behaviour; traces omit them.
			continue
		default:
			err = fmt.Errorf("trace: unknown op %v", op.Kind)
		}
		if err != nil {
			return n, fmt.Errorf("trace: %w", err)
		}
		n++
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("trace: %w", err)
	}
	return n, nil
}

// Parse reads a trace back into an op slice.
func Parse(r io.Reader) ([]workload.Op, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	var ops []workload.Op
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if lineNo == 1 && line != header {
				return nil, fmt.Errorf("trace: unrecognised header %q", line)
			}
			continue
		}
		fields := strings.Fields(line)
		op, err := parseFields(fields)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return ops, nil
}

func parseFields(fields []string) (workload.Op, error) {
	if len(fields) < 2 {
		return workload.Op{}, fmt.Errorf("short record %v", fields)
	}
	parse := func(s string) (uint64, error) { return strconv.ParseUint(s, 10, 64) }
	switch fields[0] {
	case "C":
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || n < 0 {
			return workload.Op{}, fmt.Errorf("bad compute count %q", fields[1])
		}
		return workload.Op{Kind: workload.OpCompute, N: n}, nil
	case "R":
		a, err := parse(fields[1])
		if err != nil {
			return workload.Op{}, fmt.Errorf("bad address %q", fields[1])
		}
		dep := len(fields) > 2 && fields[2] == "d"
		return workload.Op{Kind: workload.OpLoad, Addr: a, Dep: dep}, nil
	case "W":
		a, err := parse(fields[1])
		if err != nil {
			return workload.Op{}, fmt.Errorf("bad address %q", fields[1])
		}
		return workload.Op{Kind: workload.OpStore, Addr: a}, nil
	case "F":
		a, err := parse(fields[1])
		if err != nil {
			return workload.Op{}, fmt.Errorf("bad address %q", fields[1])
		}
		return workload.Op{Kind: workload.OpFlush, Addr: a}, nil
	case "K":
		if len(fields) < 3 {
			return workload.Op{}, fmt.Errorf("rowclone needs src and dst")
		}
		src, err := parse(fields[1])
		if err != nil {
			return workload.Op{}, fmt.Errorf("bad src %q", fields[1])
		}
		dst, err := parse(fields[2])
		if err != nil {
			return workload.Op{}, fmt.Errorf("bad dst %q", fields[2])
		}
		return workload.Op{Kind: workload.OpRowClone, Src: src, Addr: dst}, nil
	default:
		return workload.Op{}, fmt.Errorf("unknown record kind %q", fields[0])
	}
}

// Kernel wraps a parsed trace as a replayable kernel.
func Kernel(name string, ops []workload.Op) workload.Kernel {
	return workload.Kernel{Name: name, Body: func(g *workload.Gen) {
		for _, op := range ops {
			switch op.Kind {
			case workload.OpCompute:
				g.Compute(op.N)
			case workload.OpLoad:
				if op.Dep {
					g.LoadDep(op.Addr)
				} else {
					g.Load(op.Addr)
				}
			case workload.OpStore:
				g.Store(op.Addr)
			case workload.OpFlush:
				g.Flush(op.Addr)
			case workload.OpRowClone:
				g.RowClone(op.Src, op.Addr)
			}
		}
	}}
}
