package trace

import (
	"bytes"
	"strings"
	"testing"

	"easydram/internal/core"
	"easydram/internal/workload"
)

func TestRecordParseRoundTrip(t *testing.T) {
	k := workload.Kernel{Name: "mix", Body: func(g *workload.Gen) {
		g.Compute(12)
		g.Load(64)
		g.LoadDep(128)
		g.Store(4096)
		g.Flush(4096)
		g.RowClone(0, 8192)
	}}
	var buf bytes.Buffer
	n, err := Record(&buf, k)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if n != 6 {
		t.Fatalf("recorded %d ops, want 6", n)
	}
	ops, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := []workload.Op{
		{Kind: workload.OpCompute, N: 12},
		{Kind: workload.OpLoad, Addr: 64},
		{Kind: workload.OpLoad, Addr: 128, Dep: true},
		{Kind: workload.OpStore, Addr: 4096},
		{Kind: workload.OpFlush, Addr: 4096},
		{Kind: workload.OpRowClone, Src: 0, Addr: 8192},
	}
	if len(ops) != len(want) {
		t.Fatalf("parsed %d ops, want %d", len(ops), len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("op %d = %+v, want %+v", i, ops[i], want[i])
		}
	}
}

func TestBarriersOmitted(t *testing.T) {
	k := workload.Kernel{Name: "b", Body: func(g *workload.Gen) {
		g.Load(0)
		g.Mark() // barrier + mark: neither is traced
		g.Load(64)
	}}
	var buf bytes.Buffer
	if _, err := Record(&buf, k); err != nil {
		t.Fatal(err)
	}
	ops, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 {
		t.Fatalf("parsed %d ops, want 2 (barrier/mark omitted)", len(ops))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"# wrong-header\nR 0",
		"R",
		"R notanumber",
		"K 1",
		"X 5",
		"C -3",
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("input %q must fail to parse", in)
		}
	}
}

func TestParseSkipsBlanksAndComments(t *testing.T) {
	in := header + "\n\n# comment\nR 64\n"
	ops, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 {
		t.Fatalf("parsed %d ops", len(ops))
	}
}

// TestReplayMatchesDirectExecution is the methodology check: replaying a
// recorded trace through the same system configuration reproduces the
// direct run's execution time exactly.
func TestReplayMatchesDirectExecution(t *testing.T) {
	k := workload.PBGemver(32)
	var buf bytes.Buffer
	if _, err := Record(&buf, k); err != nil {
		t.Fatal(err)
	}
	ops, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	run := func(k workload.Kernel) core.Result {
		sys, err := core.NewSystem(core.TimeScalingA57())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(k.Stream())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	direct := run(k)
	replayed := run(Kernel("gemver-trace", ops))
	if direct.ProcCycles != replayed.ProcCycles {
		t.Fatalf("replay diverged: direct %d cycles, replay %d", direct.ProcCycles, replayed.ProcCycles)
	}
}
