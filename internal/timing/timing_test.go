package timing

import (
	"testing"

	"easydram/internal/clock"
)

func TestPresetsValidate(t *testing.T) {
	for _, p := range []Params{DDR41333(), DDR42400()} {
		if err := p.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	p := DDR41333()
	p.TRCD = 0
	if err := p.Validate(); err == nil {
		t.Fatalf("zero tRCD must fail validation")
	}
	p = DDR41333()
	p.TRC = p.TRAS // < tRAS + tRP
	if err := p.Validate(); err == nil {
		t.Fatalf("tRC < tRAS+tRP must fail validation")
	}
	p = DDR41333()
	p.Bus = clock.Clock{}
	if err := p.Validate(); err == nil {
		t.Fatalf("missing bus clock must fail validation")
	}
}

func TestLatencyHelpers(t *testing.T) {
	p := DDR41333()
	if p.ReadLatency() != p.TRCD+p.TCL+p.TBL {
		t.Fatalf("ReadLatency = %v", p.ReadLatency())
	}
	if p.RowHitReadLatency() != p.TCL+p.TBL {
		t.Fatalf("RowHitReadLatency = %v", p.RowHitReadLatency())
	}
	if p.RowMissCycle() != p.TRP+p.ReadLatency() {
		t.Fatalf("RowMissCycle = %v", p.RowMissCycle())
	}
}

func TestNominalValuesMatchPaper(t *testing.T) {
	p := DDR41333()
	if p.TRCD != 13500 {
		t.Fatalf("nominal tRCD = %v ps, paper uses 13.5 ns", p.TRCD)
	}
	if p.TREFI != 7800*clock.Nanosecond {
		t.Fatalf("tREFI = %v, DDR4 uses 7.8 us", p.TREFI)
	}
	if p.TREFW != 64*clock.Millisecond {
		t.Fatalf("tREFW = %v, DDR4 uses 64 ms", p.TREFW)
	}
}

func TestDDR5Preset(t *testing.T) {
	p := DDR54800()
	if err := p.Validate(); err != nil {
		t.Fatalf("DDR5 preset invalid: %v", err)
	}
	// The paper's §2.2 values: 32 ms refresh window, 3.9 us interval.
	if p.TREFW != 32*clock.Millisecond {
		t.Fatalf("DDR5 tREFW = %v, want 32 ms", p.TREFW)
	}
	if p.TREFI != 3900*clock.Nanosecond {
		t.Fatalf("DDR5 tREFI = %v, want 3.9 us", p.TREFI)
	}
	// DDR5 refreshes twice as often as DDR4.
	if p.TREFI >= DDR41333().TREFI {
		t.Fatalf("DDR5 must refresh more often than DDR4")
	}
}
