package timing

import "easydram/internal/clock"

// Shared-bus constraints of a multi-rank channel. Ranks on one channel
// share the command/data bus, so back-to-back CAS commands to different
// ranks must be spaced by the data burst plus a rank-to-rank turnaround
// (tRTRS: the bus needs dead cycles while drive responsibility moves
// between ranks). Like the per-rank Checker, the RankBus *counts*
// violations instead of stalling commands: the software memory controller
// is responsible for spacing CAS pairs, and a nonzero violation count means
// it failed to.

// RankBus tracks the shared data bus of one multi-rank channel.
type RankBus struct {
	// minGap is the minimum spacing between CAS commands to different
	// ranks: the data burst (tBL) plus the rank-to-rank turnaround.
	minGap   clock.PS
	lastRank int
	lastCAS  clock.PS
}

// NewRankBus builds the tracker for a channel with the given timing.
func NewRankBus(p Params) *RankBus {
	return &RankBus{
		minGap:   p.TBL + p.RankSwitch(),
		lastRank: -1,
		lastCAS:  -1 << 60,
	}
}

// MinGap reports the minimum different-rank CAS spacing enforced.
func (b *RankBus) MinGap() clock.PS { return b.minGap }

// NoteCAS records a CAS (RD or WR) to rank at absolute time t and returns 1
// when it violates the rank-to-rank turnaround against the previous CAS
// (different rank, spaced closer than tBL + tRTRS), 0 otherwise.
func (b *RankBus) NoteCAS(rank int, t clock.PS) int {
	violation := 0
	if b.lastRank >= 0 && b.lastRank != rank && t-b.lastCAS < b.minGap {
		violation = 1
	}
	b.lastRank = rank
	b.lastCAS = t
	return violation
}

// RankSwitch reports the rank-to-rank turnaround time (tRTRS): the dead bus
// time between CAS bursts to different ranks. When the parameter set does
// not specify TRTRS, the JEDEC-typical two bus clocks are assumed.
func (p Params) RankSwitch() clock.PS {
	if p.TRTRS > 0 {
		return p.TRTRS
	}
	return 2 * p.Bus.Period()
}
