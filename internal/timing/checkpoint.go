package timing

import (
	"easydram/internal/clock"
	"easydram/internal/snapshot"
)

// SaveState serializes the checker's full dynamic timing history. The
// constraint tables (rules, rrd, ccd, groupOf) are pure functions of the
// parameter set and are rebuilt by NewChecker, not stored.
func (c *Checker) SaveState(e *snapshot.Enc) {
	e.Int(len(c.banks))
	for i := range c.banks {
		b := &c.banks[i]
		e.Bool(b.Open)
		e.Int(b.OpenRow)
		e.I64(int64(b.ActRCD))
		for _, t := range b.last {
			e.I64(int64(t))
		}
	}
	e.Int(len(c.lastACTGroup))
	for _, t := range c.lastACTGroup {
		e.I64(int64(t))
	}
	e.I64(int64(c.lastACTAny))
	for _, t := range c.lastColGroup {
		e.I64(int64(t))
	}
	e.I64(int64(c.lastColAny))
	for _, t := range c.actWindow {
		e.I64(int64(t))
	}
	e.Int(c.actIdx)
	e.I64(int64(c.lastBus))
	e.I64(int64(c.lastREF))
}

// LoadState restores history written by SaveState into a freshly
// constructed checker of the same geometry; a geometry mismatch fails the
// decoder (the compatibility key should have caught it earlier).
func (c *Checker) LoadState(d *snapshot.Dec) {
	if n := d.Int(); n != len(c.banks) {
		if d.Err() == nil {
			d.Failf("timing: snapshot has %d banks, checker has %d", n, len(c.banks))
		}
		return
	}
	for i := range c.banks {
		b := &c.banks[i]
		b.Open = d.Bool()
		b.OpenRow = d.Int()
		b.ActRCD = clock.PS(d.I64())
		for j := range b.last {
			b.last[j] = clock.PS(d.I64())
		}
	}
	if n := d.Int(); n != len(c.lastACTGroup) {
		if d.Err() == nil {
			d.Failf("timing: snapshot has %d bank groups, checker has %d", n, len(c.lastACTGroup))
		}
		return
	}
	for i := range c.lastACTGroup {
		c.lastACTGroup[i] = clock.PS(d.I64())
	}
	c.lastACTAny = clock.PS(d.I64())
	for i := range c.lastColGroup {
		c.lastColGroup[i] = clock.PS(d.I64())
	}
	c.lastColAny = clock.PS(d.I64())
	for i := range c.actWindow {
		c.actWindow[i] = clock.PS(d.I64())
	}
	c.actIdx = d.Int()
	c.lastBus = clock.PS(d.I64())
	c.lastREF = clock.PS(d.I64())
	if c.actIdx < 0 || c.actIdx >= len(c.actWindow) {
		d.Failf("timing: actIdx %d out of range", c.actIdx)
	}
}

// SaveState serializes the rank bus's CAS history (minGap is derived from
// the timing parameters and rebuilt by NewRankBus).
func (b *RankBus) SaveState(e *snapshot.Enc) {
	e.Int(b.lastRank)
	e.I64(int64(b.lastCAS))
}

// LoadState restores history written by SaveState.
func (b *RankBus) LoadState(d *snapshot.Dec) {
	b.lastRank = d.Int()
	b.lastCAS = clock.PS(d.I64())
}
