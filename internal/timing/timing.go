// Package timing models JEDEC DDR4 timing parameters and per-bank timing
// state. It is used both by the DRAM chip model (to decide whether a command
// arrived too early and must misbehave) and by the baseline Ramulator-style
// simulator (to schedule commands legally).
package timing

import (
	"fmt"

	"easydram/internal/clock"
)

// Params holds the DDR4 timing parameters relevant to the paper, all in
// picoseconds. Names follow JESD79-4.
type Params struct {
	// Bus is the DRAM I/O bus clock (command clock).
	Bus clock.Clock

	TRCD clock.PS // ACT to internal RD/WR delay
	TRP  clock.PS // PRE to ACT delay (same bank)
	TRAS clock.PS // ACT to PRE delay (same bank)
	TRC  clock.PS // ACT to ACT delay (same bank)
	TCL  clock.PS // RD to first data (CAS latency)
	TCWL clock.PS // WR to first data (CAS write latency)
	TBL  clock.PS // burst length on the bus (BL8)
	TWR  clock.PS // write recovery (last data to PRE)
	TRTP clock.PS // RD to PRE delay

	TCCDS clock.PS // RD/WR to RD/WR, different bank group
	TCCDL clock.PS // RD/WR to RD/WR, same bank group
	TRRDS clock.PS // ACT to ACT, different bank group
	TRRDL clock.PS // ACT to ACT, same bank group
	TFAW  clock.PS // four-activate window

	TRFC  clock.PS // refresh cycle time
	TREFI clock.PS // refresh interval
	TREFW clock.PS // refresh window (retention target)

	// TRTRS is the rank-to-rank turnaround on a shared multi-rank bus
	// (dead time between CAS bursts to different ranks). 0 selects the
	// JEDEC-typical two bus clocks (see Params.RankSwitch); single-rank
	// modules never consult it.
	TRTRS clock.PS
}

// DDR41333 returns DDR4-1333-class timings matching the paper's evaluated
// module (single channel, single rank, 1333 MT/s, nominal tRCD 13.5 ns).
func DDR41333() Params {
	return Params{
		Bus:   clock.DDR4Bus1333,
		TRCD:  13500,
		TRP:   13500,
		TRAS:  36000,
		TRC:   49500,
		TCL:   13500,
		TCWL:  10500,
		TBL:   4 * 1500, // BL8 = 4 bus clocks of data
		TWR:   15000,
		TRTP:  7500,
		TCCDS: 4 * 1500,
		TCCDL: 6 * 1500,
		TRRDS: 6000,
		TRRDL: 7500,
		TFAW:  30000,
		TRFC:  350000,
		TREFI: 7800 * clock.Nanosecond,
		TREFW: 64 * clock.Millisecond,
		TRTRS: 2 * 1500,
	}
}

// DDR42400 returns DDR4-2400-class timings, used by configuration sweeps.
func DDR42400() Params {
	return Params{
		Bus:   clock.NewClock("ddr4-2400-bus", 833),
		TRCD:  13320,
		TRP:   13320,
		TRAS:  32000,
		TRC:   45320,
		TCL:   13320,
		TCWL:  10000,
		TBL:   4 * 833,
		TWR:   15000,
		TRTP:  7500,
		TCCDS: 4 * 833,
		TCCDL: 6 * 833,
		TRRDS: 3300,
		TRRDL: 4900,
		TFAW:  21000,
		TRFC:  350000,
		TREFI: 7800 * clock.Nanosecond,
		TREFW: 64 * clock.Millisecond,
		TRTRS: 2 * 833,
	}
}

// DDR54800 returns DDR5-4800-class timings. DDR5 halves the refresh window
// (tREFW 32 ms) and interval (tREFI 3.9 us) relative to DDR4 (§2.2) and
// doubles the burst length to BL16.
func DDR54800() Params {
	return Params{
		Bus:   clock.NewClock("ddr5-4800-bus", 417),
		TRCD:  16000,
		TRP:   16000,
		TRAS:  32000,
		TRC:   48000,
		TCL:   16670,
		TCWL:  14600,
		TBL:   8 * 417, // BL16 = 8 bus clocks of data
		TWR:   30000,
		TRTP:  7500,
		TCCDS: 8 * 417,
		TCCDL: 5000,
		TRRDS: 3330,
		TRRDL: 5000,
		TFAW:  13330,
		TRFC:  295000,
		TREFI: 3900 * clock.Nanosecond,
		TREFW: 32 * clock.Millisecond,
		TRTRS: 2 * 417,
	}
}

// Validate reports an error when a parameter set is internally inconsistent.
func (p Params) Validate() error {
	if !p.Bus.Valid() {
		return fmt.Errorf("timing: bus clock not set")
	}
	type check struct {
		name string
		v    clock.PS
	}
	for _, c := range []check{
		{"tRCD", p.TRCD}, {"tRP", p.TRP}, {"tRAS", p.TRAS}, {"tRC", p.TRC},
		{"tCL", p.TCL}, {"tCWL", p.TCWL}, {"tBL", p.TBL}, {"tWR", p.TWR},
		{"tRTP", p.TRTP}, {"tCCD_S", p.TCCDS}, {"tCCD_L", p.TCCDL},
		{"tRRD_S", p.TRRDS}, {"tRRD_L", p.TRRDL}, {"tFAW", p.TFAW},
		{"tRFC", p.TRFC}, {"tREFI", p.TREFI}, {"tREFW", p.TREFW},
	} {
		if c.v <= 0 {
			return fmt.Errorf("timing: %s must be positive, got %d", c.name, c.v)
		}
	}
	if p.TRC < p.TRAS+p.TRP {
		return fmt.Errorf("timing: tRC (%d) < tRAS+tRP (%d)", p.TRC, p.TRAS+p.TRP)
	}
	if p.TRAS < p.TRCD {
		return fmt.Errorf("timing: tRAS (%d) < tRCD (%d)", p.TRAS, p.TRCD)
	}
	return nil
}

// ReadLatency is the ACT-to-data latency of a row-miss read: tRCD + tCL + burst.
func (p Params) ReadLatency() clock.PS { return p.TRCD + p.TCL + p.TBL }

// RowHitReadLatency is the data latency when the row is already open.
func (p Params) RowHitReadLatency() clock.PS { return p.TCL + p.TBL }

// RowMissCycle is the full closed-row access cost: tRP + tRCD + tCL + burst.
func (p Params) RowMissCycle() clock.PS { return p.TRP + p.ReadLatency() }
