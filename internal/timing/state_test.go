package timing

import (
	"strings"
	"testing"

	"easydram/internal/clock"
)

func newTestChecker() *Checker {
	return NewChecker(DDR41333(), 4, 4)
}

func TestCmdString(t *testing.T) {
	if CmdACT.String() != "ACT" || CmdPRE.String() != "PRE" {
		t.Fatalf("command names wrong")
	}
	if !strings.Contains(Cmd(99).String(), "99") {
		t.Fatalf("unknown command should render its number")
	}
}

func TestLegalSequenceHasNoViolations(t *testing.T) {
	c := newTestChecker()
	p := c.Params()
	var tnow clock.PS
	if v := c.Apply(CmdACT, 0, tnow, 0); len(v) != 0 {
		t.Fatalf("first ACT violated: %v", v)
	}
	tnow += p.TRCD
	if v := c.Apply(CmdRD, 0, tnow, 0); len(v) != 0 {
		t.Fatalf("RD after tRCD violated: %v", v)
	}
	tnow = maxPS(c.EarliestPRE(0), tnow)
	if v := c.Apply(CmdPRE, 0, tnow, 0); len(v) != 0 {
		t.Fatalf("PRE at earliest legal time violated: %v", v)
	}
	tnow += p.TRP
	if v := c.Apply(CmdACT, 0, tnow, 0); len(v) != 0 {
		t.Fatalf("re-ACT after tRP violated: %v", v)
	}
}

func TestEarlyRDViolatesTRCD(t *testing.T) {
	c := newTestChecker()
	c.Apply(CmdACT, 0, 0, 0)
	v := c.Apply(CmdRD, 0, 5000, 0) // 5 ns < 13.5 ns
	found := false
	for _, violation := range v {
		if violation.Param == "tRCD" {
			found = true
			if violation.Shortfall != 8500 {
				t.Fatalf("tRCD shortfall = %v, want 8.5ns", violation.Shortfall)
			}
		}
	}
	if !found {
		t.Fatalf("expected tRCD violation, got %v", v)
	}
}

func TestEarlyPREViolatesTRAS(t *testing.T) {
	c := newTestChecker()
	c.Apply(CmdACT, 0, 0, 0)
	v := c.Apply(CmdPRE, 0, 3000, 0)
	found := false
	for _, violation := range v {
		if violation.Param == "tRAS" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected tRAS violation, got %v", v)
	}
}

func TestReducedRCDAnnotation(t *testing.T) {
	c := newTestChecker()
	c.Apply(CmdACT, 0, 0, 9000)
	// A RD at 9 ns is legal under the annotated reduced tRCD.
	if v := c.Apply(CmdRD, 0, 9000, 0); len(v) != 0 {
		t.Fatalf("reduced-tRCD RD flagged: %v", v)
	}
}

func TestTFAWLimitsActivates(t *testing.T) {
	c := newTestChecker()
	p := c.Params()
	// Four rapid ACTs to different banks spaced by tRRD_S.
	tnow := clock.PS(0)
	for b := 0; b < 4; b++ {
		c.Apply(CmdACT, b, tnow, 0)
		tnow += p.TRRDS
	}
	// The fifth ACT must respect tFAW from the first.
	if got := c.EarliestACT(4); got < p.TFAW {
		t.Fatalf("5th ACT allowed at %v, want >= tFAW %v", got, p.TFAW)
	}
}

func TestEarliestRDHonoursBusConflicts(t *testing.T) {
	c := newTestChecker()
	p := c.Params()
	c.Apply(CmdACT, 0, 0, 0)
	c.Apply(CmdACT, 4, 1000, 0) // different bank group
	c.Apply(CmdRD, 0, p.TRCD, 0)
	// A RD on the other bank group must wait at least tCCD_S after the
	// first RD.
	if got := c.EarliestRD(4); got < p.TRCD+p.TCCDS {
		t.Fatalf("cross-group RD allowed at %v", got)
	}
}

func TestRefreshDelaysActivate(t *testing.T) {
	c := newTestChecker()
	p := c.Params()
	c.Apply(CmdREF, 0, 0, 0)
	if got := c.EarliestACT(2); got < p.TRFC {
		t.Fatalf("ACT after REF allowed at %v, want >= tRFC %v", got, p.TRFC)
	}
}

func TestBankStateTracksOpenRow(t *testing.T) {
	c := newTestChecker()
	c.Apply(CmdACT, 1, 0, 0)
	c.Bank(1).OpenRow = 42
	if !c.Bank(1).Open {
		t.Fatalf("bank should be open after ACT")
	}
	c.Apply(CmdPRE, 1, c.EarliestPRE(1), 0)
	if c.Bank(1).Open || c.Bank(1).OpenRow != -1 {
		t.Fatalf("bank should be closed after PRE")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Param: "tRCD", Cmd: CmdRD, Shortfall: 8500}
	if !strings.Contains(v.String(), "tRCD") || !strings.Contains(v.String(), "RD") {
		t.Fatalf("violation string %q", v.String())
	}
}

func TestNumBanks(t *testing.T) {
	if newTestChecker().NumBanks() != 16 {
		t.Fatalf("expected 16 banks")
	}
}
