package timing

import (
	"fmt"

	"easydram/internal/clock"
)

// Cmd is a DRAM command kind as seen by the timing checker.
type Cmd uint8

// DRAM command kinds.
const (
	CmdACT Cmd = iota + 1
	CmdPRE
	CmdRD
	CmdWR
	CmdREF
)

var cmdNames = map[Cmd]string{
	CmdACT: "ACT", CmdPRE: "PRE", CmdRD: "RD", CmdWR: "WR", CmdREF: "REF",
}

func (c Cmd) String() string {
	if s, ok := cmdNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Cmd(%d)", uint8(c))
}

// Violation describes one timing-parameter violation observed when a command
// was issued earlier than the standard allows.
type Violation struct {
	Param     string   // e.g. "tRCD"
	Cmd       Cmd      // the command that violated the parameter
	Need      clock.PS // earliest legal issue time
	Actual    clock.PS // actual issue time
	Shortfall clock.PS
}

func (v Violation) String() string {
	return fmt.Sprintf("%s violates %s by %s", v.Cmd, v.Param, v.Shortfall)
}

// BankState tracks the timing-relevant history of a single bank.
type BankState struct {
	Open    bool
	OpenRow int
	LastACT clock.PS
	LastPRE clock.PS
	LastRD  clock.PS
	LastWR  clock.PS
	// LastWRData is when the last write burst finished on the bus.
	LastWRData clock.PS
	// ActRCD is the tRCD in effect for the currently open row (reduced-tRCD
	// techniques activate with a shorter tRCD).
	ActRCD clock.PS
}

const never = clock.PS(-1 << 62)

// NewBankState returns a bank whose history predates all commands.
func NewBankState() BankState {
	return BankState{
		OpenRow: -1, LastACT: never, LastPRE: never,
		LastRD: never, LastWR: never, LastWRData: never,
	}
}

// Checker tracks per-bank and cross-bank timing state for one rank and
// reports, for each command, the earliest legal issue time and any violations
// when the command is issued regardless.
//
// Checker never prevents a command from executing: EasyDRAM's whole purpose
// is to issue command sequences that violate the standard. The chip model
// consults the violations to decide physical behaviour.
type Checker struct {
	p          Params
	banks      []BankState
	bankGroups int
	perGroup   int
	// actWindow holds issue times of the most recent four ACTs (tFAW).
	actWindow [4]clock.PS
	actIdx    int
	lastBus   clock.PS // last data-bus occupancy end
	lastREF   clock.PS
	// viol is the reusable violation buffer Apply returns (the hot path
	// calls Apply per command; allocating a fresh slice each time dominated
	// the engine's allocation profile).
	viol []Violation
}

// NewChecker returns a Checker for bankGroups*banksPerGroup banks.
func NewChecker(p Params, bankGroups, banksPerGroup int) *Checker {
	n := bankGroups * banksPerGroup
	banks := make([]BankState, n)
	for i := range banks {
		banks[i] = NewBankState()
	}
	c := &Checker{p: p, banks: banks, bankGroups: bankGroups, perGroup: banksPerGroup, lastBus: never, lastREF: never}
	for i := range c.actWindow {
		c.actWindow[i] = never
	}
	return c
}

// Params returns the parameter set the checker enforces.
func (c *Checker) Params() Params { return c.p }

// NumBanks reports the number of banks tracked.
func (c *Checker) NumBanks() int { return len(c.banks) }

// Bank returns a pointer to the state of bank b.
func (c *Checker) Bank(b int) *BankState { return &c.banks[b] }

func (c *Checker) group(bank int) int { return bank / c.perGroup }

func maxPS(a, b clock.PS) clock.PS {
	if a > b {
		return a
	}
	return b
}

// EarliestACT reports the earliest standard-legal time for ACT on bank b.
func (c *Checker) EarliestACT(b int) clock.PS {
	bank := &c.banks[b]
	t := bank.LastPRE + c.p.TRP
	t = maxPS(t, bank.LastACT+c.p.TRC)
	t = maxPS(t, c.lastREF+c.p.TRFC)
	for _, ob := range c.banksInGroup(c.group(b)) {
		t = maxPS(t, c.banks[ob].LastACT+c.p.TRRDL)
	}
	for i := range c.banks {
		t = maxPS(t, c.banks[i].LastACT+c.p.TRRDS)
	}
	// tFAW: at most four ACTs in any tFAW window.
	oldest := c.actWindow[c.actIdx]
	t = maxPS(t, oldest+c.p.TFAW)
	return t
}

func (c *Checker) banksInGroup(g int) []int {
	out := make([]int, 0, c.perGroup)
	for i := g * c.perGroup; i < (g+1)*c.perGroup; i++ {
		out = append(out, i)
	}
	return out
}

// EarliestPRE reports the earliest standard-legal time for PRE on bank b.
func (c *Checker) EarliestPRE(b int) clock.PS {
	bank := &c.banks[b]
	t := bank.LastACT + c.p.TRAS
	t = maxPS(t, bank.LastRD+c.p.TRTP)
	t = maxPS(t, bank.LastWRData+c.p.TWR)
	return t
}

// EarliestRD reports the earliest standard-legal time for RD on bank b.
func (c *Checker) EarliestRD(b int) clock.PS {
	bank := &c.banks[b]
	t := bank.LastACT + bank.effRCD(c.p)
	t = c.colGlobal(b, t)
	return t
}

// EarliestWR reports the earliest standard-legal time for WR on bank b.
func (c *Checker) EarliestWR(b int) clock.PS {
	return c.EarliestRD(b)
}

func (bs *BankState) effRCD(p Params) clock.PS {
	if bs.ActRCD > 0 {
		return bs.ActRCD
	}
	return p.TRCD
}

func (c *Checker) colGlobal(b int, t clock.PS) clock.PS {
	g := c.group(b)
	for i := range c.banks {
		last := maxPS(c.banks[i].LastRD, c.banks[i].LastWR)
		if c.group(i) == g {
			t = maxPS(t, last+c.p.TCCDL)
		} else {
			t = maxPS(t, last+c.p.TCCDS)
		}
	}
	return t
}

// Apply records command cmd on bank b at time t with the tRCD value rcd in
// effect (0 means nominal; only meaningful for ACT). It returns the timing
// violations the issue time incurred, if any. The returned slice aliases a
// buffer reused by the next Apply call; callers must copy entries they keep.
func (c *Checker) Apply(cmd Cmd, b int, t clock.PS, rcd clock.PS) []Violation {
	c.viol = c.viol[:0]
	record := func(param string, need clock.PS) {
		if t < need {
			c.viol = append(c.viol, Violation{Param: param, Cmd: cmd, Need: need, Actual: t, Shortfall: need - t})
		}
	}
	bank := &c.banks[b]
	switch cmd {
	case CmdACT:
		record("tRP", bank.LastPRE+c.p.TRP)
		record("tRC", bank.LastACT+c.p.TRC)
		record("tFAW", c.actWindow[c.actIdx]+c.p.TFAW)
		bank.Open = true
		bank.LastACT = t
		bank.ActRCD = rcd
		c.actWindow[c.actIdx] = t
		c.actIdx = (c.actIdx + 1) % len(c.actWindow)
	case CmdPRE:
		record("tRAS", bank.LastACT+c.p.TRAS)
		record("tWR", bank.LastWRData+c.p.TWR)
		record("tRTP", bank.LastRD+c.p.TRTP)
		bank.Open = false
		bank.OpenRow = -1
		bank.LastPRE = t
	case CmdRD:
		record("tRCD", bank.LastACT+bank.effRCD(c.p))
		record("tCCD", c.lastBus) // coarse data-bus conflict
		bank.LastRD = t
		c.lastBus = t + c.p.TCL + c.p.TBL
	case CmdWR:
		record("tRCD", bank.LastACT+bank.effRCD(c.p))
		record("tCCD", c.lastBus)
		bank.LastWR = t
		bank.LastWRData = t + c.p.TCWL + c.p.TBL
		c.lastBus = bank.LastWRData
	case CmdREF:
		c.lastREF = t
	default:
		panic(fmt.Sprintf("timing: unknown command %v", cmd))
	}
	return c.viol
}
