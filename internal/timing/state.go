package timing

import (
	"fmt"

	"easydram/internal/clock"
)

// Cmd is a DRAM command kind as seen by the timing checker.
type Cmd uint8

// DRAM command kinds.
const (
	CmdACT Cmd = iota + 1
	CmdPRE
	CmdRD
	CmdWR
	CmdREF
	cmdCount
)

var cmdNames = map[Cmd]string{
	CmdACT: "ACT", CmdPRE: "PRE", CmdRD: "RD", CmdWR: "WR", CmdREF: "REF",
}

func (c Cmd) String() string {
	if s, ok := cmdNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Cmd(%d)", uint8(c))
}

// Violation describes one timing-parameter violation observed when a command
// was issued earlier than the standard allows.
type Violation struct {
	Param     string   // e.g. "tRCD"
	Cmd       Cmd      // the command that violated the parameter
	Need      clock.PS // earliest legal issue time
	Actual    clock.PS // actual issue time
	Shortfall clock.PS
}

func (v Violation) String() string {
	return fmt.Sprintf("%s violates %s by %s", v.Cmd, v.Param, v.Shortfall)
}

// Per-bank event indices into BankState.last. evtWRData records when the
// last write burst finished on the bus (the tWR reference point); the WR
// issue time itself feeds only the cross-bank column aggregates, so no
// per-bank slot exists for it.
const (
	evtACT = iota
	evtPRE
	evtRD
	evtWRData
	evtCount
)

// BankState tracks the timing-relevant history of a single bank. The
// command-issue history lives in an event-indexed array so the checker's
// precomputed constraint tables can address it without per-command field
// dispatch.
type BankState struct {
	Open    bool
	OpenRow int
	// ActRCD is the tRCD in effect for the currently open row (reduced-tRCD
	// techniques activate with a shorter tRCD).
	ActRCD clock.PS
	// last holds the most recent time of each tracked event on this bank,
	// indexed by evtACT..evtWRData.
	last [evtCount]clock.PS
}

const never = clock.PS(-1 << 62)

// NewBankState returns a bank whose history predates all commands.
func NewBankState() BankState {
	bs := BankState{OpenRow: -1}
	for i := range bs.last {
		bs.last[i] = never
	}
	return bs
}

// bankRule is one precomputed same-bank separation constraint: issuing the
// owning command at time t requires t >= bank.last[evt] + delta.
type bankRule struct {
	evt   uint8
	delta clock.PS
	param string
}

// pairDelta is a (command, command) minimum-separation table indexed by
// bank-group relation: index 0 is the different-group value, index 1 the
// same-group value (e.g. {tRRD_S, tRRD_L} for ACT->ACT).
type pairDelta [2]clock.PS

// Checker tracks per-bank and cross-bank timing state for one rank and
// reports, for each command, the earliest legal issue time and any violations
// when the command is issued regardless.
//
// Checker never prevents a command from executing: EasyDRAM's whole purpose
// is to issue command sequences that violate the standard. The chip model
// consults the violations to decide physical behaviour.
//
// The constraint logic is table-driven: same-bank constraints are flattened
// at construction into per-command bankRule lists (rules), cross-bank
// ACT->ACT and column->column constraints into bank-group-relation tables
// (rrd, ccd), and the cross-bank history into rolling per-group and global
// aggregates updated on each Apply — so neither Apply nor the Earliest*
// queries ever scan the bank array.
type Checker struct {
	p     Params
	banks []BankState
	// groupOf maps bank -> bank group (lookup table; no divide per command).
	groupOf []uint8
	// rules holds the flat same-bank constraint table per command.
	rules [cmdCount][]bankRule
	// rrd and ccd are the cross-bank (command, command) separation tables
	// indexed by bank-group relation (ACT->ACT and RD/WR->RD/WR).
	rrd pairDelta
	ccd pairDelta
	// Rolling cross-bank aggregates: most recent ACT / column command per
	// bank group and overall.
	lastACTGroup []clock.PS
	lastACTAny   clock.PS
	lastColGroup []clock.PS
	lastColAny   clock.PS
	// actWindow holds issue times of the most recent four ACTs (tFAW).
	actWindow [4]clock.PS
	actIdx    int
	lastBus   clock.PS // last data-bus occupancy end
	lastREF   clock.PS
	// viol is the reusable violation buffer Apply returns (the hot path
	// calls Apply per command; allocating a fresh slice each time dominated
	// the engine's allocation profile). collect gates whether apply builds
	// Violation records or only counts them (ApplyCount, the chip model's
	// hot path — it consumes nothing but the count).
	viol    []Violation
	collect bool
}

// NewChecker returns a Checker for bankGroups*banksPerGroup banks.
func NewChecker(p Params, bankGroups, banksPerGroup int) *Checker {
	n := bankGroups * banksPerGroup
	banks := make([]BankState, n)
	groupOf := make([]uint8, n)
	for i := range banks {
		banks[i] = NewBankState()
		groupOf[i] = uint8(i / banksPerGroup)
	}
	c := &Checker{
		p:       p,
		banks:   banks,
		groupOf: groupOf,
		rrd:     pairDelta{p.TRRDS, p.TRRDL},
		ccd:     pairDelta{p.TCCDS, p.TCCDL},
		lastBus: never,
		lastREF: never,
	}
	c.lastACTGroup = make([]clock.PS, bankGroups)
	c.lastColGroup = make([]clock.PS, bankGroups)
	for g := 0; g < bankGroups; g++ {
		c.lastACTGroup[g] = never
		c.lastColGroup[g] = never
	}
	c.lastACTAny, c.lastColAny = never, never
	for i := range c.actWindow {
		c.actWindow[i] = never
	}
	// Same-bank constraint tables, in the order violations are reported.
	// RD/WR's tRCD depends on the per-activation ActRCD and tCCD on the
	// shared data bus, so those two stay dynamic in Apply.
	c.rules[CmdACT] = []bankRule{
		{evt: evtPRE, delta: p.TRP, param: "tRP"},
		{evt: evtACT, delta: p.TRC, param: "tRC"},
	}
	c.rules[CmdPRE] = []bankRule{
		{evt: evtACT, delta: p.TRAS, param: "tRAS"},
		{evt: evtWRData, delta: p.TWR, param: "tWR"},
		{evt: evtRD, delta: p.TRTP, param: "tRTP"},
	}
	return c
}

// Params returns the parameter set the checker enforces.
func (c *Checker) Params() Params { return c.p }

// NumBanks reports the number of banks tracked.
func (c *Checker) NumBanks() int { return len(c.banks) }

// Bank returns a pointer to the state of bank b.
func (c *Checker) Bank(b int) *BankState { return &c.banks[b] }

func maxPS(a, b clock.PS) clock.PS {
	if a > b {
		return a
	}
	return b
}

// EarliestACT reports the earliest standard-legal time for ACT on bank b.
func (c *Checker) EarliestACT(b int) clock.PS {
	bank := &c.banks[b]
	t := bank.last[evtPRE] + c.p.TRP
	t = maxPS(t, bank.last[evtACT]+c.p.TRC)
	t = maxPS(t, c.lastREF+c.p.TRFC)
	t = maxPS(t, c.lastACTGroup[c.groupOf[b]]+c.rrd[1])
	t = maxPS(t, c.lastACTAny+c.rrd[0])
	// tFAW: at most four ACTs in any tFAW window.
	oldest := c.actWindow[c.actIdx]
	t = maxPS(t, oldest+c.p.TFAW)
	return t
}

// EarliestPRE reports the earliest standard-legal time for PRE on bank b.
func (c *Checker) EarliestPRE(b int) clock.PS {
	bank := &c.banks[b]
	t := bank.last[evtACT] + c.p.TRAS
	t = maxPS(t, bank.last[evtRD]+c.p.TRTP)
	t = maxPS(t, bank.last[evtWRData]+c.p.TWR)
	return t
}

// EarliestRD reports the earliest standard-legal time for RD on bank b.
func (c *Checker) EarliestRD(b int) clock.PS {
	bank := &c.banks[b]
	t := bank.last[evtACT] + bank.effRCD(&c.p)
	t = maxPS(t, c.lastColGroup[c.groupOf[b]]+c.ccd[1])
	t = maxPS(t, c.lastColAny+c.ccd[0])
	return t
}

// EarliestWR reports the earliest standard-legal time for WR on bank b.
func (c *Checker) EarliestWR(b int) clock.PS {
	return c.EarliestRD(b)
}

// effRCD is the tRCD in effect for the open row. Params is passed by
// pointer: the struct is ~20 words, and a by-value copy per RD/WR showed up
// as the hot path's largest duffcopy.
func (bs *BankState) effRCD(p *Params) clock.PS {
	if bs.ActRCD > 0 {
		return bs.ActRCD
	}
	return p.TRCD
}

// Apply records command cmd on bank b at time t with the tRCD value rcd in
// effect (0 means nominal; only meaningful for ACT). It returns the timing
// violations the issue time incurred, if any. The returned slice aliases a
// buffer reused by the next Apply call; callers must copy entries they keep.
func (c *Checker) Apply(cmd Cmd, b int, t clock.PS, rcd clock.PS) []Violation {
	c.viol = c.viol[:0]
	c.collect = true
	c.apply(cmd, b, t, rcd)
	return c.viol
}

// ApplyCount records cmd exactly like Apply but returns only the number of
// violations, building no Violation records. The chip model's hot path uses
// it: per-command violation detail is diagnostic, and constructing the
// record structs was a measurable share of every RD/WR.
func (c *Checker) ApplyCount(cmd Cmd, b int, t clock.PS, rcd clock.PS) int {
	c.collect = false
	n := c.apply(cmd, b, t, rcd)
	c.collect = true
	return n
}

// record notes one violation: always counted, materialised only when the
// caller asked for detail.
func (c *Checker) record(n *int, param string, cmd Cmd, need, t clock.PS) {
	*n++
	if c.collect {
		c.viol = append(c.viol, Violation{Param: param, Cmd: cmd, Need: need, Actual: t, Shortfall: need - t})
	}
}

func (c *Checker) apply(cmd Cmd, b int, t clock.PS, rcd clock.PS) int {
	if cmd >= cmdCount || cmd < CmdACT {
		panic(fmt.Sprintf("timing: unknown command %v", cmd))
	}
	n := 0
	bank := &c.banks[b]
	for _, r := range c.rules[cmd] {
		if need := bank.last[r.evt] + r.delta; t < need {
			c.record(&n, r.param, cmd, need, t)
		}
	}
	switch cmd {
	case CmdACT:
		if need := c.actWindow[c.actIdx] + c.p.TFAW; t < need {
			c.record(&n, "tFAW", cmd, need, t)
		}
		bank.Open = true
		bank.ActRCD = rcd
		bank.last[evtACT] = t
		c.actWindow[c.actIdx] = t
		c.actIdx = (c.actIdx + 1) % len(c.actWindow)
		g := c.groupOf[b]
		c.lastACTGroup[g] = maxPS(c.lastACTGroup[g], t)
		c.lastACTAny = maxPS(c.lastACTAny, t)
	case CmdPRE:
		bank.Open = false
		bank.OpenRow = -1
		bank.last[evtPRE] = t
	case CmdRD:
		if need := bank.last[evtACT] + bank.effRCD(&c.p); t < need {
			c.record(&n, "tRCD", cmd, need, t)
		}
		if need := c.lastBus; t < need { // coarse data-bus conflict
			c.record(&n, "tCCD", cmd, need, t)
		}
		bank.last[evtRD] = t
		c.lastBus = t + c.p.TCL + c.p.TBL
		g := c.groupOf[b]
		c.lastColGroup[g] = maxPS(c.lastColGroup[g], t)
		c.lastColAny = maxPS(c.lastColAny, t)
	case CmdWR:
		if need := bank.last[evtACT] + bank.effRCD(&c.p); t < need {
			c.record(&n, "tRCD", cmd, need, t)
		}
		if need := c.lastBus; t < need {
			c.record(&n, "tCCD", cmd, need, t)
		}
		bank.last[evtWRData] = t + c.p.TCWL + c.p.TBL
		c.lastBus = bank.last[evtWRData]
		g := c.groupOf[b]
		c.lastColGroup[g] = maxPS(c.lastColGroup[g], t)
		c.lastColAny = maxPS(c.lastColAny, t)
	case CmdREF:
		c.lastREF = t
	}
	return n
}
