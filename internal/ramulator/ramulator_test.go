package ramulator

import (
	"testing"

	"easydram/internal/core"
	"easydram/internal/cpu"
	"easydram/internal/workload"
)

func TestConfigIsValid(t *testing.T) {
	cfg := Config(0)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("baseline config invalid: %v", err)
	}
	if !cfg.DRAM.Ideal {
		t.Fatalf("the software-simulator baseline must use an ideal chip")
	}
	if !cfg.HardwareMC {
		t.Fatalf("the baseline schedules in zero simulated time")
	}
	if cfg.CPU.MaxInstructions != DefaultInstructionCap {
		t.Fatalf("instruction cap = %d", cfg.CPU.MaxInstructions)
	}
}

func TestInstructionCapApplies(t *testing.T) {
	cfg := Config(1000)
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(workload.PBGemm(16, 16, 16).Stream())
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Instructions > 1100 {
		t.Fatalf("ran %d instructions past the cap", res.CPU.Instructions)
	}
}

func TestSimpleOoOValidates(t *testing.T) {
	if err := SimpleOoO().Validate(); err != nil {
		t.Fatalf("SimpleOoO invalid: %v", err)
	}
}

func TestSimSpeedModelDecreasesWithMemoryIntensity(t *testing.T) {
	base := core.Result{ProcCycles: 1_000_000}
	base.CPU = cpu.Stats{Instructions: 1_000_000}
	light := base
	light.CPU.MemReads = 100
	heavy := base
	heavy.CPU.MemReads = 100_000
	if SimSpeedMHz(light) <= SimSpeedMHz(heavy) {
		t.Fatalf("memory-heavy workloads must simulate slower: %.2f vs %.2f",
			SimSpeedMHz(light), SimSpeedMHz(heavy))
	}
	if s := SimSpeedMHz(light); s < 0.2 || s > 3.5 {
		t.Fatalf("speed %.2f MHz outside Ramulator's published class", s)
	}
}

func TestSimSpeedZeroForEmptyRun(t *testing.T) {
	if SimSpeedMHz(core.Result{}) != 0 {
		t.Fatalf("empty run must report zero speed")
	}
}
