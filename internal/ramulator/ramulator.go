// Package ramulator assembles the paper's comparison baseline: a
// Ramulator 2.0-class cycle-level software memory simulator. Per §7.2 it
// differs from EasyDRAM in three deliberate ways:
//
//  1. it models a simple out-of-order core, not the BOOM/A57 system;
//  2. it simulates only part of a workload (an instruction cap);
//  3. it has no real-DRAM characterization: every read is reliable at any
//     tRCD and every intra-subarray RowClone succeeds, so techniques never
//     fall back.
//
// The memory side reuses the repository's DDR4 timing model with an ideal
// (zero-cost) hardware controller, which is how a software simulator
// behaves: scheduling takes no simulated time.
package ramulator

import (
	"easydram/internal/cache"
	"easydram/internal/clock"
	"easydram/internal/core"
	"easydram/internal/cpu"
	"easydram/internal/dram"
	"easydram/internal/smc"
	"easydram/internal/tile"
)

// DefaultInstructionCap mirrors the paper's 500M-instruction Ramulator
// simulations. Experiment drivers scale it with workload size.
const DefaultInstructionCap = 500_000_000

// SimpleOoO is Ramulator 2.0's simple out-of-order core model.
func SimpleOoO() cpu.Config {
	return cpu.Config{
		Name:          "ramulator-o3",
		Clock:         clock.NewClock("ramulator-3ghz", 333),
		InOrder:       false,
		IssueWidth:    4,
		MLP:           4,
		ROBWindow:     96,
		L1Lat:         2,
		L2Lat:         14,
		FlushCost:     4,
		MissIssueCost: 1,
	}
}

// Config assembles the baseline simulator configuration. maxInstructions
// caps the simulated instruction count (0 selects DefaultInstructionCap).
func Config(maxInstructions int64) core.Config {
	if maxInstructions == 0 {
		maxInstructions = DefaultInstructionCap
	}
	cpuCfg := SimpleOoO()
	cpuCfg.MaxInstructions = maxInstructions

	dramCfg := dram.DefaultConfig()
	dramCfg.TrackData = false
	dramCfg.Ideal = true

	return core.Config{
		Scaling:            false,
		HardwareMC:         true,
		FPGA:               clock.FPGA100MHz, // unused: wall time is modelled separately
		ProcPhys:           cpuCfg.Clock,
		CPU:                cpuCfg,
		Hier:               cache.HierConfig{L1Size: 32 << 10, L1Assoc: 4, L2Size: 512 << 10, L2Assoc: 8},
		DRAM:               dramCfg,
		Costs:              tile.DefaultCostModel(),
		Scheduler:          smc.FRFCFS{},
		ModeledCtrlLatency: 10 * clock.Nanosecond,
		RefreshEnabled:     true,
	}
}

// Host-cost model for Figure 14: a software simulator's wall-clock speed is
// dominated by a fixed per-instruction cost plus a per-DRAM-event cost.
// The constants are calibrated to Ramulator 2.0's published simulation
// speeds (hundreds of kHz to ~2 MHz depending on memory intensity); our Go
// reimplementation's own wall clock is deliberately not used, since it
// measures this repository, not Ramulator (see DESIGN.md §4.4).
const (
	hostSecPerInstr    = 4.0e-7 // 2.5 M instructions/s peak
	hostSecPerMemEvent = 3.0e-6 // per main-memory request
)

// SimSpeedMHz models the baseline simulator's speed in simulated processor
// MHz for the given run result.
func SimSpeedMHz(r core.Result) float64 {
	instr := float64(r.CPU.Instructions)
	if instr == 0 {
		return 0
	}
	events := float64(r.CPU.MemReads + r.CPU.MemFills + r.CPU.Writebacks)
	hostSec := instr*hostSecPerInstr + events*hostSecPerMemEvent
	if hostSec <= 0 {
		return 0
	}
	cycles := float64(r.ProcCycles)
	return cycles / hostSec / 1e6
}
