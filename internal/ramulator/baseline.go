package ramulator

import (
	"easydram/internal/core"
)

// Baseline derives the software-simulator reference for an arbitrary
// EasyDRAM configuration: the same emulated system (CPU model, cache
// hierarchy, DRAM timing and topology, scheduler policy, page policy,
// burst cap, refresh, fault and mitigation setup) simulated directly —
// no time scaling, with a zero-cost hardware controller making the same
// scheduling decisions. This generalizes the §6 validation pair
// (core.TimeScaling1GHz vs core.Reference1GHz) across every configuration
// axis, which is what lets the differential fuzzer hold the paper's <1%
// cycle-error envelope on randomly drawn configs instead of just the
// golden one.
//
// Raw Config() is deliberately NOT that reference: it models Ramulator's
// own simple out-of-order core, so its cycle counts are not comparable to
// an EasyDRAM run of a different CPU model. Baseline keeps the case's CPU
// and varies only how the memory controller's cost is accounted.
func Baseline(cfg core.Config) core.Config {
	ref := cfg
	ref.Scaling = false
	ref.HardwareMC = true
	// Without scaling the engine requires the emulated clock to BE the
	// physical clock (core.Config.Validate); a direct simulation runs the
	// processor at its emulated rate.
	ref.ProcPhys = cfg.CPU.Clock
	return ref
}
