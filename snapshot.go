package easydram

import (
	"errors"
	"fmt"
	"io/fs"

	"easydram/internal/clock"
	"easydram/internal/core"
	"easydram/internal/dram"
	"easydram/internal/snapshot"
	"easydram/internal/stats"
	"easydram/internal/techniques"
)

// Durable characterization and crash-safe checkpointing (ROADMAP item 3).
// Profiles and checkpoints are versioned, checksummed snapshot files
// written atomically (temp file + fsync + rename); every load validates
// the format version, per-section CRCs, and a compatibility key, and any
// corrupt, stale, or mismatched artifact returns a named error so callers
// degrade gracefully to fresh characterization (counted by
// stats.SnapshotFallbacks).

// WeakRowProfile is a durable characterization artifact: per-channel
// weak-row sets and Bloom filters keyed to the module's variation seed,
// topology, profiled tRCD, and profiling granularity.
type WeakRowProfile struct {
	p *snapshot.Profile
}

// WeakFraction reports the profiled weak-row fraction.
func (p *WeakRowProfile) WeakFraction() float64 { return p.p.WeakFraction() }

// Rows reports the total rows profiled across channels.
func (p *WeakRowProfile) Rows() int { return p.p.Rows() }

// Channels reports how many channels the profile covers.
func (p *WeakRowProfile) Channels() int { return len(p.p.Channels) }

// Characterize profiles every DRAM row covering [start, end) at rcd on
// every channel of the module and returns the durable artifact. Requires
// WithDataTracking on the profiling system.
func (s *System) Characterize(start, end uint64, rcd PS, fpRate float64) (*WeakRowProfile, error) {
	p, err := techniques.Characterize(s.sys, start, end, rcd, fpRate)
	if err != nil {
		return nil, fmt.Errorf("easydram: %w", err)
	}
	return &WeakRowProfile{p: p}, nil
}

// SaveProfile writes the profile to path atomically (temp file + fsync +
// rename): a crash mid-write can never leave a loadable half-profile.
func (s *System) SaveProfile(path string, p *WeakRowProfile) error {
	if err := snapshot.WriteFile(path, p.p.Encode()); err != nil {
		return fmt.Errorf("easydram: %w", err)
	}
	return nil
}

// LoadProfile loads a profile written by SaveProfile and validates it
// end to end: format version, per-section CRCs, and the compatibility key
// derived from this system's seed, topology, and the given profiling
// parameters. Any mismatch, truncation, or corruption returns a named
// snapshot error — callers fall back to Characterize.
func (s *System) LoadProfile(path string, start, end uint64, rcd PS, fpRate float64) (*WeakRowProfile, error) {
	data, err := snapshot.ReadFile(path)
	if err != nil {
		return nil, err
	}
	key := techniques.ProfileCompatKey(s.sys, start, end, rcd, fpRate)
	p, err := snapshot.DecodeProfile(data, key)
	if err != nil {
		return nil, err
	}
	return &WeakRowProfile{p: p}, nil
}

// ProfileWeakRowsWarm is the warm-start characterization entry point: it
// loads the profile at path when one exists and matches this system's
// compatibility key, and otherwise characterizes from scratch and saves
// the result to path for the next run. warm reports whether the stored
// profile was used; a failed load (missing, corrupt, stale, wrong silicon)
// increments stats.SnapshotFallbacks and is never fatal.
func (s *System) ProfileWeakRowsWarm(path string, start, end uint64, rcd PS, fpRate float64) (p *WeakRowProfile, warm bool, err error) {
	if path != "" {
		p, err := s.LoadProfile(path, start, end, rcd, fpRate)
		if err == nil {
			return p, true, nil
		}
		// An absent store is an ordinary cold start; only a present-but-
		// unusable snapshot counts as a degradation.
		if !errors.Is(err, fs.ErrNotExist) {
			snapshot.RecordFallback(err)
		}
	}
	p, err = s.Characterize(start, end, rcd, fpRate)
	if err != nil {
		return nil, false, err
	}
	if path != "" {
		if err := s.SaveProfile(path, p); err != nil {
			return nil, false, err
		}
	}
	return p, false, nil
}

// ChannelTRCDProvider is the channel-aware variant of TRCDProvider: it
// returns the tRCD to activate (channel, bank, row) with; 0 selects the
// nominal value.
type ChannelTRCDProvider func(ch, bank, row int) PS

// Provider rebuilds the reduced-tRCD scheduler hook from the profile:
// each channel's controller consults its own channel's weak-row filter.
// s supplies the address mapping — the profiling system, or any system
// with the same topology and DRAM geometry (which the compatibility key
// guarantees for a loaded profile).
func (p *WeakRowProfile) Provider(s *System, reduced PS) ChannelTRCDProvider {
	inner := techniques.ProviderFromProfile(p.p, s.sys.Mapper(), reduced)
	return func(ch, bank, row int) PS {
		return inner(dram.Addr{Chan: ch, Bank: bank, Row: row})
	}
}

// WithChannelReducedTRCD installs a channel-aware per-row tRCD provider
// (see WeakRowProfile.Provider) — the multi-channel-correct counterpart of
// WithReducedTRCD.
func WithChannelReducedTRCD(provider ChannelTRCDProvider) Option {
	return func(cfg *core.Config) {
		cfg.TRCD = func(a dram.Addr) clock.PS { return provider(a.Chan, a.Bank, a.Row) }
	}
}

// Checkpoint runs the kernel like Run and additionally captures a
// whole-system checkpoint at the first quiescent point at or after `at`
// emulated processor cycles. The returned blob is nil — with no error —
// when the run finished before reaching such a point; the Result always
// covers the complete run, bit-identical to one never checkpointed.
func (s *System) Checkpoint(k Kernel, at Cycles) (Result, []byte, error) {
	res, blob, err := s.sys.RunCheckpoint(k.Stream(), at)
	if err != nil {
		return res, nil, fmt.Errorf("easydram: %w", err)
	}
	return res, blob, nil
}

// Restore resumes a checkpointed run on a freshly built System with the
// same configuration and kernel, producing a Result byte-identical to the
// uninterrupted run. Corrupt, truncated, or mismatched blobs return a
// named snapshot error; callers fall back to a fresh Run.
func (s *System) Restore(k Kernel, blob []byte) (Result, error) {
	res, err := s.sys.RunRestored(k.Stream(), blob)
	if err != nil {
		return res, err
	}
	return res, nil
}

// SaveSnapshot writes a checkpoint blob (or any snapshot image) to path
// atomically.
func SaveSnapshot(path string, blob []byte) error {
	return snapshot.WriteFile(path, blob)
}

// LoadSnapshot reads a snapshot file written by SaveSnapshot. Structural
// validation happens at Restore/LoadProfile time.
func LoadSnapshot(path string) ([]byte, error) {
	return snapshot.ReadFile(path)
}

// SnapshotFallbacks reports how many snapshot loads have degraded to fresh
// characterization process-wide (the stats.SnapshotFallbacks counter).
func SnapshotFallbacks() int64 {
	return stats.SnapshotFallbacks.Load()
}
