module easydram

go 1.24
