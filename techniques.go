package easydram

import (
	"fmt"

	"easydram/internal/alloc"
	"easydram/internal/dram"
	"easydram/internal/techniques"
	"easydram/internal/workload"
)

// This file exposes the two case-study techniques (§7, §8) through the
// public API: RowClone bulk copy/initialisation planning and tRCD-reduction
// characterization.

// RowClonePlan describes how a bulk copy or initialisation executes: which
// rows clone in DRAM and which fall back to CPU loads/stores.
type RowClonePlan = workload.RowClonePlan

// Planner allocates rows and builds RowClone plans against a system's
// DRAM module.
type Planner struct {
	sys    *System
	alloc  *alloc.Allocator
	trials int
}

// NewPlanner returns a planner over sys. trials is the per-pair clonability
// test count (PiDRAM uses 1000; the model is deterministic, so 3 suffices).
func NewPlanner(sys *System, trials int) (*Planner, error) {
	cfg := sys.Config()
	a, err := alloc.New(sys.internal().Mapper(), cfg.DRAM.SubarrayRows, cfg.DRAM.RowsPerBank)
	if err != nil {
		return nil, fmt.Errorf("easydram: %w", err)
	}
	if trials <= 0 {
		trials = 3
	}
	return &Planner{sys: sys, alloc: a, trials: trials}, nil
}

// AllocArray reserves size bytes of row-aligned memory and returns its base.
func (p *Planner) AllocArray(size int) (uint64, error) {
	base, err := p.alloc.AllocContiguous(p.alloc.RowsFor(size))
	if err != nil {
		return 0, fmt.Errorf("easydram: %w", err)
	}
	return base, nil
}

// PlanCopy builds the plan for copying size bytes out of srcBase using
// RowClone wherever a clonable destination row exists (§7.1). flush selects
// the CLFLUSH coherence setting.
func (p *Planner) PlanCopy(srcBase uint64, size int, flush bool) (RowClonePlan, error) {
	return techniques.PlanCopy(p.alloc, srcBase, size,
		techniques.SystemTester(p.sys.internal(), p.trials), flush)
}

// PlanInit builds the plan for initialising size bytes at dstBase with a
// pattern using per-subarray source rows (§7.1).
func (p *Planner) PlanInit(dstBase uint64, size int, flush bool) (RowClonePlan, error) {
	return techniques.PlanInit(p.alloc, dstBase, size,
		techniques.SystemTester(p.sys.internal(), p.trials), flush)
}

// ReducedTRCD is the aggressive row-activation timing used for strong rows
// (9.0 ns; nominal is 13.5 ns).
const ReducedTRCD = techniques.ReducedTRCD

// ProfileWeakRows characterizes every row covering [start, end) with
// whole-row §8.1 profiling requests at the given tRCD (one host round-trip
// per row) and returns a TRCDProvider backed by a Bloom filter of the weak
// rows (§8.2), plus the weak-row fraction. Requires WithDataTracking on
// the profiling system.
func (s *System) ProfileWeakRows(start, end uint64, rcd PS, fpRate float64) (TRCDProvider, float64, error) {
	weak, st, err := techniques.ProfileWeakRows(s.sys, start, end, rcd)
	if err != nil {
		return nil, 0, fmt.Errorf("easydram: %w", err)
	}
	filter, err := techniques.BuildWeakRowFilter(weak, fpRate, s.cfg.DRAM.Seed)
	if err != nil {
		return nil, 0, fmt.Errorf("easydram: %w", err)
	}
	inner := techniques.TRCDProvider(filter, s.sys.Mapper(), start, end, rcd)
	provider := func(bank, row int) PS {
		return inner(dram.Addr{Bank: bank, Row: row})
	}
	return provider, 1 - st.StrongFraction(), nil
}
