package easydram

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented enforces the repository's documentation
// contract on the public facade (the root package), on the experiments
// package that backs every table and figure, and on the emulated-host
// packages the multi-core work touches (workload, core, cpu, cache): each
// exported symbol — type, function, method on an exported type, const, and
// var — must carry a doc comment. It is the "revive exported"-class check,
// implemented on the standard library's parser so CI needs no extra
// tooling.
func TestExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range []string{
		".",
		"internal/experiments",
		"internal/workload",
		"internal/core",
		"internal/cpu",
		"internal/cache",
	} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					checkDecl(t, fset, decl)
				}
			}
		}
	}
}

func checkDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return
		}
		if d.Doc == nil {
			t.Errorf("%s: exported %s %q has no doc comment",
				fset.Position(d.Pos()), declKind(d), d.Name.Name)
		}
	case *ast.GenDecl:
		if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
			return
		}
		for _, spec := range d.Specs {
			var names []*ast.Ident
			var doc *ast.CommentGroup
			var comment *ast.CommentGroup
			switch s := spec.(type) {
			case *ast.TypeSpec:
				names, doc, comment = []*ast.Ident{s.Name}, s.Doc, s.Comment
			case *ast.ValueSpec:
				names, doc, comment = s.Names, s.Doc, s.Comment
			}
			for _, n := range names {
				if !n.IsExported() {
					continue
				}
				// A group doc, a per-spec doc, or a trailing line comment
				// all count (const blocks conventionally document the
				// group and annotate members inline).
				if d.Doc == nil && doc == nil && comment == nil {
					t.Errorf("%s: exported %s %q has no doc comment",
						fset.Position(n.Pos()), strings.ToLower(d.Tok.String()), n.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether f is a plain function or a method whose
// receiver type is itself exported (methods on unexported types are not
// part of the documented surface).
func exportedReceiver(f *ast.FuncDecl) bool {
	if f.Recv == nil || len(f.Recv.List) == 0 {
		return true
	}
	typ := f.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func declKind(f *ast.FuncDecl) string {
	if f.Recv != nil {
		return "method"
	}
	return "func"
}
